// Backend tests: structural properties of lowering (GEP folding, cmp+jcc
// fusion, prologue/epilogue, spilling) plus IR-vs-assembly differential
// execution across representative programs.
#include <gtest/gtest.h>

#include <cmath>

#include "backend/isel.h"
#include "ir/dominance.h"
#include "backend/liveness.h"
#include "backend/phi_elim.h"
#include "backend/regalloc.h"
#include "driver/pipeline.h"
#include "frontend/codegen.h"
#include "opt/pass.h"
#include "x86/printer.h"

namespace faultlab::backend {
namespace {

using x86::Inst;
using x86::Op;

std::size_t count_op(const x86::Program& p, Op op) {
  std::size_t n = 0;
  for (const Inst& i : p.code)
    if (i.op == op) ++n;
  return n;
}

driver::CompiledProgram compile(const char* src) {
  return driver::compile(src, "t");
}

TEST(Isel, GepFoldsIntoAddressingMode) {
  // a[i] with 4-byte elements must become a scaled-index memory operand,
  // with no explicit lea/imul for the address.
  auto prog = compile(R"(
    int a[64];
    int f(int i) { return a[i]; }
    int main() { return f(5); }
  )");
  const auto* f = prog.program().function_by_name("f");
  ASSERT_NE(f, nullptr);
  bool found_scaled_load = false;
  std::size_t arithmetic_in_f = 0;
  for (std::size_t i = f->entry; i < f->entry + f->size; ++i) {
    const Inst& inst = prog.program().code[i];
    if (inst.op == Op::MovRM && inst.mem.has_index() && inst.mem.scale == 4)
      found_scaled_load = true;
    if (inst.op == Op::Imul || inst.op == Op::Lea) ++arithmetic_in_f;
  }
  EXPECT_TRUE(found_scaled_load);
  EXPECT_EQ(arithmetic_in_f, 0u);
  EXPECT_EQ(prog.run_asm().exit_value, prog.run_ir().exit_value);
}

TEST(Isel, NonPowerOfTwoStructStrideUsesImul) {
  // struct of 24 bytes: the index must be scaled by an imul (the paper's
  // expanded-GEP case).
  auto prog = compile(R"(
    struct S { long a; long b; int c; };
    struct S arr[8];
    long f(int i) { return arr[i].b; }
    int main() { arr[3].b = 77; return (int)f(3); }
  )");
  const auto* f = prog.program().function_by_name("f");
  bool found_imul = false;
  for (std::size_t i = f->entry; i < f->entry + f->size; ++i)
    if (prog.program().code[i].op == Op::Imul) found_imul = true;
  EXPECT_TRUE(found_imul);
  EXPECT_EQ(prog.run_asm().exit_value, 77);
}

TEST(Isel, CmpBranchFusion) {
  // The comparison must lower to cmp directly followed by jcc — no setcc.
  auto prog = compile(R"(
    int f(int a) { if (a > 3) return 1; return 0; }
    int main() { return f(5); }
  )");
  const auto* f = prog.program().function_by_name("f");
  bool cmp_then_jcc = false;
  std::size_t setcc = 0;
  for (std::size_t i = f->entry; i + 1 < f->entry + f->size; ++i) {
    const Inst& inst = prog.program().code[i];
    if (inst.op == Op::Cmp &&
        prog.program().code[i + 1].op == Op::Jcc)
      cmp_then_jcc = true;
    if (inst.op == Op::Setcc) ++setcc;
  }
  EXPECT_TRUE(cmp_then_jcc);
  EXPECT_EQ(setcc, 0u);
}

TEST(Isel, BoolValueUsesSetcc) {
  // Comparison used as a value (not a branch) needs setcc materialization.
  auto prog = compile(R"(
    int f(int a, int b) { return (a < b) + (b < a); }
    int main() { return f(1, 2); }
  )");
  const auto* f = prog.program().function_by_name("f");
  std::size_t setcc = 0;
  for (std::size_t i = f->entry; i < f->entry + f->size; ++i)
    if (prog.program().code[i].op == Op::Setcc) ++setcc;
  EXPECT_EQ(setcc, 2u);
  EXPECT_EQ(prog.run_asm().exit_value, 1);
}

TEST(Frame, PrologueEpiloguePushPopBalance) {
  auto prog = compile(R"(
    int helper(int a, int b, int c) { return a * b + c; }
    int main() { return helper(2, 3, 4); }
  )");
  EXPECT_EQ(count_op(prog.program(), Op::Push),
            count_op(prog.program(), Op::Pop));
  EXPECT_GE(count_op(prog.program(), Op::Push), 2u);  // at least rbp x2
  EXPECT_EQ(prog.run_asm().exit_value, 10);
}

TEST(Frame, CalleeSavesEverythingItWrites) {
  // A function with many live values must save the registers it uses;
  // a trivial function should save almost nothing beyond rbp.
  auto busy = compile(R"(
    int f(int a) {
      int v0=a+1; int v1=a+2; int v2=a+3; int v3=a+4; int v4=a+5;
      int v5=a+6; int v6=a+7; int v7=a+8;
      return v0*v1 + v2*v3 + v4*v5 + v6*v7 + v0*v7;
    }
    int main() { return f(1); }
  )");
  auto trivial = compile("int f() { return 7; } int main() { return f(); }");
  const auto count_in = [](const driver::CompiledProgram& p, const char* name,
                           Op op) {
    const auto* f = p.program().function_by_name(name);
    std::size_t n = 0;
    for (std::size_t i = f->entry; i < f->entry + f->size; ++i)
      if (p.program().code[i].op == op) ++n;
    return n;
  };
  EXPECT_GT(count_in(busy, "f", Op::Push), count_in(trivial, "f", Op::Push));
  EXPECT_EQ(busy.run_asm().exit_value, busy.run_ir().exit_value);
}

TEST(RegAlloc, HighPressureSpillsAndStaysCorrect) {
  // 20 simultaneously-live values exceed the 10 allocatable GPRs.
  std::string src = "int main() {\n";
  for (int i = 0; i < 20; ++i)
    src += "  int v" + std::to_string(i) + " = " + std::to_string(i * 3 + 1) +
           " + (" + std::to_string(i) + " * 0);\n";  // defeat constfold? no: folded
  src += "  int s = 0;\n";
  // Keep all alive until the end via a second round of uses.
  for (int i = 0; i < 20; ++i) src += "  s += v" + std::to_string(i) + ";\n";
  for (int i = 0; i < 20; ++i)
    src += "  s += v" + std::to_string(i) + " * v" +
           std::to_string((i + 7) % 20) + ";\n";
  src += "  return s & 0xff;\n}\n";

  // Compile unoptimized so the constants stay as distinct live values.
  driver::CompileOptions opts;
  opts.optimize = false;
  auto prog = driver::compile(src, "t", opts);
  EXPECT_EQ(prog.run_asm().exit_value, prog.run_ir().exit_value);
}

TEST(RegAlloc, StatsReportSpills) {
  // Directly exercise the allocator on a synthetic high-pressure function.
  auto m = mc::compile_to_ir(R"(
    double f(double a) {
      double x0=a*1.0; double x1=a*2.0; double x2=a*3.0; double x3=a*4.0;
      double x4=a*5.0; double x5=a*6.0; double x6=a*7.0; double x7=a*8.0;
      double x8=a*9.0; double x9=a*10.0; double xa=a*11.0; double xb=a*12.0;
      double xc=a*13.0; double xd=a*14.0; double xe=a*15.0;
      return ((x0+x1)+(x2+x3))+((x4+x5)+(x6+x7))+((x8+x9)+(xa+xb))+((xc+xd)+xe)
             + x0*x7 + x3*xe;
    }
    int main() { return (int)f(1.0); }
  )", "t");
  opt::run_standard_pipeline(*m);
  machine::GlobalLayout layout(*m);
  for (const auto& fn : m->functions()) {
    if (fn->is_builtin()) continue;
    split_critical_edges(*fn);
    ir::DominatorTree dom(*fn);
    fn->reorder_blocks(dom.reverse_postorder());
  }
  LoweringContext ctx = LoweringContext::build(*m, layout);
  RegAllocStats total{};
  for (const auto& fn : m->functions()) {
    if (fn->is_builtin()) continue;
    IselResult sel = select_instructions(*fn, ctx);
    eliminate_phis(sel.mf, sel.phi_copies);
    const RegAllocStats stats = allocate_registers(sel.mf);
    total.vregs += stats.vregs;
    total.spilled += stats.spilled;
  }
  EXPECT_GT(total.vregs, 20u);
  // 15+ simultaneously-live doubles vs 12 allocatable XMM: must spill.
  EXPECT_GT(total.spilled, 0u);
}

TEST(Liveness, IntervalsCoverUsesAndCrossCalls) {
  // g is recursive so the inliner leaves the call in f intact.
  auto m = mc::compile_to_ir(R"(
    int g(int x) { if (x <= 0) return 1; return g(x - 1) + x; }
    int f(int a) {
      int kept = a * 3;
      int r = g(a);
      return kept + r;
    }
    int main() { return f(5); }
  )", "t");
  opt::run_standard_pipeline(*m);
  machine::GlobalLayout layout(*m);
  LoweringContext ctx = LoweringContext::build(*m, layout);
  ir::Function* f = const_cast<ir::Function*>(m->find_function("f"));
  split_critical_edges(*f);
  ir::DominatorTree dom(*f);
  f->reorder_blocks(dom.reverse_postorder());
  IselResult sel = select_instructions(*f, ctx);
  eliminate_phis(sel.mf, sel.phi_copies);
  const LivenessResult live = compute_liveness(sel.mf);
  EXPECT_GT(live.intervals.size(), 0u);
  bool some_cross_call = false;
  for (const auto& iv : live.intervals) some_cross_call |= iv.crosses_call;
  EXPECT_TRUE(some_cross_call);  // `kept` lives across the call to g
  for (const auto& iv : live.intervals) EXPECT_LE(iv.start, iv.end);
}

TEST(PhiElim, SwapCycleHandledWithTemp) {
  // Classic swap: both phis exchange values each iteration. Wrong phi
  // lowering (sequential copies without a temp) breaks this.
  auto prog = compile(R"(
    int main() {
      int a = 1; int b = 2; int i;
      for (i = 0; i < 5; i++) { int t = a; a = b; b = t; }
      return a * 10 + b;  // 5 swaps: a=2,b=1
    }
  )");
  EXPECT_EQ(prog.run_ir().exit_value, 21);
  EXPECT_EQ(prog.run_asm().exit_value, 21);
}

TEST(Backend, DoubleConstantsComeFromPool) {
  auto prog = compile(R"(
    double f() { return 3.25; }
    int main() { return (int)(f() * 4.0); }
  )");
  // Double literals load from the constant pool: movsd xmm, [abs].
  bool pool_load = false;
  for (const Inst& i : prog.program().code)
    if (i.op == Op::MovsdRM && !i.mem.has_base()) pool_load = true;
  EXPECT_TRUE(pool_load);
  EXPECT_EQ(prog.run_asm().exit_value, 13);
}

TEST(Backend, EmitResolvesCallsAndLabels) {
  auto prog = compile(R"(
    int a() { return 1; }
    int b() { return a() + 1; }
    int c() { return b() + 1; }
    int main() { return c(); }
  )");
  for (const Inst& i : prog.program().code) {
    if (i.op == Op::Call) {
      EXPECT_GE(i.target, 0);
      EXPECT_LT(static_cast<std::size_t>(i.target), prog.program().code.size());
    }
    if (i.op == Op::Jmp || i.op == Op::Jcc) {
      EXPECT_GE(i.target, 0);
      EXPECT_LT(static_cast<std::size_t>(i.target), prog.program().code.size());
    }
  }
  EXPECT_EQ(prog.run_asm().exit_value, 3);
}

TEST(Backend, NoVirtualRegistersSurviveEmission) {
  auto prog = compile(R"(
    int main() { int s=0; int i; for(i=0;i<10;i++) s+=i*i; return s & 0x7f; }
  )");
  for (const Inst& i : prog.program().code) {
    EXPECT_FALSE(x86::is_virtual(i.dst));
    EXPECT_FALSE(x86::is_virtual(i.src));
    EXPECT_FALSE(x86::is_virtual(i.mem.base) && i.mem.base != x86::kNoReg);
    EXPECT_FALSE(x86::is_virtual(i.mem.index) && i.mem.index != x86::kNoReg);
  }
}

// ---------------------------------------------------------------------------
// Differential execution: IR interpreter vs simulator must agree.

class Differential : public ::testing::TestWithParam<const char*> {};

TEST_P(Differential, SameOutputAndExit) {
  auto prog = compile(GetParam());
  const auto r_ir = prog.run_ir();
  const auto r_asm = prog.run_asm();
  ASSERT_TRUE(r_ir.completed());
  ASSERT_TRUE(r_asm.completed());
  EXPECT_EQ(r_ir.output, r_asm.output);
  EXPECT_EQ(r_ir.exit_value, r_asm.exit_value);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, Differential,
    ::testing::Values(
        // Narrow-type arithmetic and sign handling.
        R"(int main() { char c = -100; c -= 100; short s = c; return s == 56 ? 1 : (int)s; })",
        // Deep recursion.
        R"(int ack(int m, int n) {
             if (m == 0) return n + 1;
             if (n == 0) return ack(m - 1, 1);
             return ack(m - 1, ack(m, n - 1)); }
           int main() { return ack(2, 3); })",
        // Heap-linked structures.
        R"(struct N { long v; struct N* next; };
           int main() {
             struct N* head = 0; int i;
             for (i = 1; i <= 10; i++) {
               struct N* n = (struct N*)malloc(sizeof(struct N));
               n->v = i * i; n->next = head; head = n;
             }
             long s = 0;
             while (head != 0) { s += head->v; head = head->next; }
             print_int(s); return 0; })",
        // Doubles with comparisons and conversions.
        R"(int main() {
             double x = 0.1; int n = 0;
             while (x < 100.0) { x = x * 1.7 + 0.3; n++; }
             print_int(n); print_double(x); return 0; })",
        // Mixed int widths through memory.
        R"(short tbl[64];
           int main() {
             int i; for (i = 0; i < 64; i++) tbl[i] = (short)(i * 1000);
             long s = 0; for (i = 0; i < 64; i++) s += tbl[i];
             print_int(s); return 0; })",
        // Logical operators with side effects.
        R"(int hits = 0;
           int probe(int v) { hits++; return v; }
           int main() {
             int a = probe(0) && probe(1);
             int b = probe(1) || probe(0);
             int c = probe(1) && probe(1);
             print_int(hits); print_int(a + b * 10 + c * 100); return 0; })",
        // Shifts, masks, ternaries.
        R"(int main() {
             long h = 0x9e3779b97f4a7c15L; int i; long acc = 0;
             for (i = 0; i < 32; i++) {
               acc += (h >> i) & 0xff;
               acc += (h << i) & 0xffff;
               acc = acc > 100000 ? acc - 77777 : acc;
             }
             print_int(acc); return 0; })",
        // 2-D array sweep with function calls in the inner loop.
        R"(double cell(int r, int c) { return (double)(r * 31 + c); }
           int main() {
             double sum = 0.0; int r; int c;
             for (r = 0; r < 12; r++)
               for (c = 0; c < 12; c++)
                 sum = sum + cell(r, c) * 0.25;
             print_double(sum); return 0; })",
        // String/char processing.
        R"(int main() {
             char* s = "the quick brown fox jumps over the lazy dog";
             int counts[26]; int i;
             for (i = 0; i < 26; i++) counts[i] = 0;
             i = 0;
             while (s[i] != 0) {
               if (s[i] >= 'a' && s[i] <= 'z') counts[s[i] - 'a']++;
               i++;
             }
             int distinct = 0;
             for (i = 0; i < 26; i++) if (counts[i] > 0) distinct++;
             print_int(distinct); return 0; })"));

TEST(BackendTraps, AsmCrashesMatchIrCrashes) {
  // Programs that trap must trap in BOTH engines with the same kind.
  const char* trapping[] = {
      "int main() { int z = 0; return 7 / z; }",
      "int main() { long a = 0x999999999; int* p = (int*)a; return *p; }",
  };
  for (const char* src : trapping) {
    auto prog = compile(src);
    const auto r_ir = prog.run_ir();
    const auto r_asm = prog.run_asm();
    EXPECT_TRUE(r_ir.trapped) << src;
    EXPECT_TRUE(r_asm.trapped) << src;
    EXPECT_EQ(r_ir.trap, r_asm.trap) << src;
  }
}

}  // namespace
}  // namespace faultlab::backend
