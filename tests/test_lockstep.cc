// Lockstep-lane unit tests: run_lockstep drives N resident engines from
// one shared snapshot with a single decoded micro-op fetch per step, and
// every lane's result must be byte-identical to the solo run_from it
// replaces — including lanes whose injected corruption diverges control
// flow and masks them off onto the single-lane path.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "driver/pipeline.h"
#include "machine/dispatch.h"
#include "vm/interpreter.h"
#include "x86/simulator.h"

namespace faultlab {
namespace {

using machine::DispatchMode;

/// Restores the process dispatch mode on scope exit.
struct DispatchModeGuard {
  DispatchMode saved = machine::dispatch_mode();
  ~DispatchModeGuard() { machine::set_dispatch_mode(saved); }
};

// Long enough (~100k dynamic instructions) that packs run deep stretches
// of decoded micro-ops between divergence checks; the data-dependent sum
// makes any silent lane corruption visible in the exit value.
const char* kKernel = R"(
  int a[128];
  int mix(int x, int y) { return (x ^ y) + (x >> 1); }
  int main() {
    int i; int j; long s = 0;
    for (i = 0; i < 128; i++) a[i] = i * 7;
    for (j = 0; j < 60; j++)
      for (i = 0; i < 128; i++)
        s = s + mix(a[i], a[(i + j) & 127]);
    print_int(s);
    return 0;
  }
)";

/// Flips one bit of the n-th value produced after the hook arms, then
/// detaches — a minimal stand-in for an injector hook. Different (n, bit)
/// per lane makes lanes genuinely diverge at different points.
class VmFlipHook : public vm::ExecHook {
 public:
  VmFlipHook(std::uint64_t nth, unsigned bit) : nth_(nth), bit_(bit) {}
  std::uint64_t on_result(const vm::DynValueId& id,
                          std::uint64_t raw) override {
    (void)id;
    if (++seen_ == nth_) {
      detach();
      return raw ^ (std::uint64_t{1} << bit_);
    }
    return raw;
  }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t nth_ = 0;
  unsigned bit_ = 0;
};

/// x86 counterpart: XORs one bit into a GPR after the n-th retired
/// instruction, then detaches.
class SimFlipHook : public x86::SimHook {
 public:
  SimFlipHook(std::uint64_t nth, unsigned bit) : nth_(nth), bit_(bit) {}
  void on_after(std::size_t index, const x86::Inst& inst,
                x86::MachineState& state) override {
    (void)index;
    (void)inst;
    if (++seen_ == nth_) {
      state.gpr[0] ^= std::uint64_t{1} << bit_;
      detach();
    }
  }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t nth_ = 0;
  unsigned bit_ = 0;
};

void expect_same_result(const vm::RunResult& got, const vm::RunResult& want,
                        std::size_t lane) {
  EXPECT_EQ(got.trapped, want.trapped) << "lane " << lane;
  EXPECT_EQ(got.trap, want.trap) << "lane " << lane;
  EXPECT_EQ(got.trap_pc, want.trap_pc) << "lane " << lane;
  EXPECT_EQ(got.timed_out, want.timed_out) << "lane " << lane;
  EXPECT_EQ(got.exit_value, want.exit_value) << "lane " << lane;
  EXPECT_EQ(got.dynamic_instructions, want.dynamic_instructions)
      << "lane " << lane;
  EXPECT_EQ(got.output, want.output) << "lane " << lane;
}

void expect_same_result(const x86::SimResult& got, const x86::SimResult& want,
                        std::size_t lane) {
  EXPECT_EQ(got.trapped, want.trapped) << "lane " << lane;
  EXPECT_EQ(got.trap, want.trap) << "lane " << lane;
  EXPECT_EQ(got.trap_pc, want.trap_pc) << "lane " << lane;
  EXPECT_EQ(got.timed_out, want.timed_out) << "lane " << lane;
  EXPECT_EQ(got.exit_value, want.exit_value) << "lane " << lane;
  EXPECT_EQ(got.dynamic_instructions, want.dynamic_instructions)
      << "lane " << lane;
  EXPECT_EQ(got.output, want.output) << "lane " << lane;
}

vm::Snapshot mid_snapshot_vm(const driver::CompiledProgram& prog) {
  std::vector<vm::Snapshot> snaps;
  vm::RunLimits capture;
  capture.snapshot_stride = 997;
  capture.snapshot_sink = [&](vm::Snapshot&& s) {
    snaps.push_back(std::move(s));
  };
  vm::Interpreter runner(prog.module());
  EXPECT_TRUE(runner.run("main", capture).completed());
  EXPECT_GT(snaps.size(), 2u);
  return snaps[snaps.size() / 2];
}

x86::SimSnapshot mid_snapshot_sim(const driver::CompiledProgram& prog) {
  std::vector<x86::SimSnapshot> snaps;
  x86::SimLimits capture;
  capture.snapshot_stride = 997;
  capture.snapshot_sink = [&](x86::SimSnapshot&& s) {
    snaps.push_back(std::move(s));
  };
  x86::Simulator runner(prog.program());
  EXPECT_FALSE(runner.run(capture).trapped);
  EXPECT_GT(snaps.size(), 2u);
  return snaps[snaps.size() / 2];
}

TEST(LockstepVm, CleanLanesMatchSoloRunFrom) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const vm::Snapshot mid = mid_snapshot_vm(prog);

  vm::Interpreter solo(prog.module());
  const vm::RunResult want = solo.run_from(mid);
  ASSERT_TRUE(want.completed());

  constexpr std::size_t kLanes = 4;
  std::vector<std::unique_ptr<vm::Interpreter>> owned;
  std::vector<vm::Interpreter*> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    owned.push_back(std::make_unique<vm::Interpreter>(prog.module()));
    lanes.push_back(owned.back().get());
  }
  const machine::PackCountersSnapshot before =
      machine::pack_counters_snapshot();
  std::array<vm::RunResult, kLanes> results;
  vm::Interpreter::run_lockstep(lanes.data(), kLanes, mid, {},
                                results.data());
  for (std::size_t i = 0; i < kLanes; ++i)
    expect_same_result(results[i], want, i);

  // Identical lanes never diverge: one pack, every fetch drives all four.
  const machine::PackCountersSnapshot after =
      machine::pack_counters_snapshot();
  EXPECT_EQ(after.groups, before.groups + 1);
  EXPECT_EQ(after.lanes, before.lanes + kLanes);
  EXPECT_EQ(after.divergences, before.divergences);
  EXPECT_EQ(after.lane_uops - before.lane_uops,
            kLanes * (after.uops - before.uops));
}

TEST(LockstepVm, DivergentHookLanesMatchSolo) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const vm::Snapshot mid = mid_snapshot_vm(prog);

  // Staggered flip points and bits: high bits on the running sum make
  // SDC-style divergence, and early flips can redirect control flow.
  const std::uint64_t nth[] = {3, 40, 400, 4000};
  const unsigned bit[] = {62, 31, 17, 3};
  constexpr std::size_t kLanes = 4;

  std::array<vm::RunResult, kLanes> want;
  for (std::size_t i = 0; i < kLanes; ++i) {
    VmFlipHook hook(nth[i], bit[i]);
    vm::Interpreter solo(prog.module(), &hook);
    want[i] = solo.run_from(mid);
  }

  std::vector<std::unique_ptr<VmFlipHook>> hooks;
  std::vector<std::unique_ptr<vm::Interpreter>> owned;
  std::vector<vm::Interpreter*> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    hooks.push_back(std::make_unique<VmFlipHook>(nth[i], bit[i]));
    owned.push_back(
        std::make_unique<vm::Interpreter>(prog.module(), hooks.back().get()));
    lanes.push_back(owned.back().get());
  }
  std::array<vm::RunResult, kLanes> results;
  vm::Interpreter::run_lockstep(lanes.data(), kLanes, mid, {},
                                results.data());
  for (std::size_t i = 0; i < kLanes; ++i)
    expect_same_result(results[i], want[i], i);
}

TEST(LockstepVm, SingleLaneFallsBackToRunFrom) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const vm::Snapshot mid = mid_snapshot_vm(prog);

  vm::Interpreter solo(prog.module());
  const vm::RunResult want = solo.run_from(mid);

  const machine::PackCountersSnapshot before =
      machine::pack_counters_snapshot();
  vm::Interpreter lane(prog.module());
  vm::Interpreter* lanes[] = {&lane};
  vm::RunResult result;
  vm::Interpreter::run_lockstep(lanes, 1, mid, {}, &result);
  expect_same_result(result, want, 0);
  // No pack was formed: a single lane takes the plain run_from path.
  EXPECT_EQ(machine::pack_counters_snapshot().groups, before.groups);
}

TEST(LockstepVm, SwitchDispatchFallsBackSequentially) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Switch);
  auto prog = driver::compile(kKernel, "t");
  const vm::Snapshot mid = mid_snapshot_vm(prog);

  vm::Interpreter solo(prog.module());
  const vm::RunResult want = solo.run_from(mid);

  constexpr std::size_t kLanes = 3;
  std::vector<std::unique_ptr<vm::Interpreter>> owned;
  std::vector<vm::Interpreter*> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    owned.push_back(std::make_unique<vm::Interpreter>(prog.module()));
    lanes.push_back(owned.back().get());
  }
  const machine::PackCountersSnapshot before =
      machine::pack_counters_snapshot();
  std::array<vm::RunResult, kLanes> results;
  vm::Interpreter::run_lockstep(lanes.data(), kLanes, mid, {},
                                results.data());
  for (std::size_t i = 0; i < kLanes; ++i)
    expect_same_result(results[i], want, i);
  EXPECT_EQ(machine::pack_counters_snapshot().groups, before.groups);
}

TEST(LockstepSim, CleanLanesMatchSoloRunFrom) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const x86::SimSnapshot mid = mid_snapshot_sim(prog);

  x86::Simulator solo(prog.program());
  const x86::SimResult want = solo.run_from(mid);
  ASSERT_TRUE(want.completed());

  constexpr std::size_t kLanes = 4;
  std::vector<std::unique_ptr<x86::Simulator>> owned;
  std::vector<x86::Simulator*> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    owned.push_back(std::make_unique<x86::Simulator>(prog.program()));
    lanes.push_back(owned.back().get());
  }
  const machine::PackCountersSnapshot before =
      machine::pack_counters_snapshot();
  std::array<x86::SimResult, kLanes> results;
  x86::Simulator::run_lockstep(lanes.data(), kLanes, mid, {},
                               results.data());
  for (std::size_t i = 0; i < kLanes; ++i)
    expect_same_result(results[i], want, i);

  const machine::PackCountersSnapshot after =
      machine::pack_counters_snapshot();
  EXPECT_EQ(after.groups, before.groups + 1);
  EXPECT_EQ(after.lanes, before.lanes + kLanes);
  EXPECT_EQ(after.divergences, before.divergences);
}

TEST(LockstepSim, DivergentHookLanesMatchSolo) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const x86::SimSnapshot mid = mid_snapshot_sim(prog);

  const std::uint64_t nth[] = {5, 60, 600, 6000};
  const unsigned bit[] = {62, 33, 12, 1};
  constexpr std::size_t kLanes = 4;

  std::array<x86::SimResult, kLanes> want;
  for (std::size_t i = 0; i < kLanes; ++i) {
    SimFlipHook hook(nth[i], bit[i]);
    x86::Simulator solo(prog.program());
    solo.set_hook(&hook);
    want[i] = solo.run_from(mid);
  }

  std::vector<std::unique_ptr<SimFlipHook>> hooks;
  std::vector<std::unique_ptr<x86::Simulator>> owned;
  std::vector<x86::Simulator*> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    hooks.push_back(std::make_unique<SimFlipHook>(nth[i], bit[i]));
    owned.push_back(std::make_unique<x86::Simulator>(prog.program()));
    owned.back()->set_hook(hooks.back().get());
    lanes.push_back(owned.back().get());
  }
  std::array<x86::SimResult, kLanes> results;
  x86::Simulator::run_lockstep(lanes.data(), kLanes, mid, {},
                               results.data());
  for (std::size_t i = 0; i < kLanes; ++i)
    expect_same_result(results[i], want[i], i);
}

}  // namespace
}  // namespace faultlab
