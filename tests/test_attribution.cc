// Crash-divergence attribution tests: opcode -> mapping-class folding
// across both vocabularies (IR names and asm mnemonics), per-opcode
// outcome breakdowns, and the exact decomposition of a cell's
// LLFI-vs-PINFI crash delta into per-class contributions.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "driver/pipeline.h"
#include "fault/attribution.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/scheduler.h"

namespace faultlab::fault {
namespace {

TEST(Attribution, OpcodeClassFoldsBothVocabularies) {
  // IR opcode and asm mnemonic land in the same bucket — the mapping story
  // the attribution report is built on.
  EXPECT_STREQ(opcode_class("add"), "arith");
  EXPECT_STREQ(opcode_class("imul"), "arith");
  EXPECT_STREQ(opcode_class("icmp"), "cmp");
  EXPECT_STREQ(opcode_class("test"), "cmp");
  EXPECT_STREQ(opcode_class("load"), "load");
  EXPECT_STREQ(opcode_class("mov.load"), "load");
  EXPECT_STREQ(opcode_class("store"), "store");
  EXPECT_STREQ(opcode_class("getelementptr"), "gep");
  EXPECT_STREQ(opcode_class("lea"), "gep");
  EXPECT_STREQ(opcode_class("zext"), "cast");
  EXPECT_STREQ(opcode_class("movzx"), "cast");
  EXPECT_STREQ(opcode_class("phi"), "phi/mov");
  EXPECT_STREQ(opcode_class("mov"), "phi/mov");
  EXPECT_STREQ(opcode_class("call"), "call");
  EXPECT_STREQ(opcode_class("push"), "call");
  EXPECT_STREQ(opcode_class("ret"), "call");
  EXPECT_STREQ(opcode_class("br"), "control");
  EXPECT_STREQ(opcode_class("jmp"), "control");
  EXPECT_STREQ(opcode_class("alloca"), "alloca");
  // Unknown or unresolved opcodes degrade to "other", never crash.
  EXPECT_STREQ(opcode_class(nullptr), "other");
  EXPECT_STREQ(opcode_class("frobnicate"), "other");
}

TrialRecord make_trial(Outcome outcome, const char* opcode,
                       const char* function, std::uint64_t site,
                       bool injected = true) {
  TrialRecord t;
  t.outcome = outcome;
  t.injected = injected;
  t.site_opcode = opcode;
  t.site_function = function;
  t.static_site = site;
  return t;
}

TEST(Attribution, OpcodeBreakdownGroupsCountsAndSorts) {
  CampaignResult r;
  r.app = "tiny";
  r.tool = "LLFI";
  r.category = ir::Category::All;
  r.trials.push_back(make_trial(Outcome::Crash, "getelementptr", "main", 7));
  r.trials.push_back(make_trial(Outcome::Crash, "getelementptr", "main", 9));
  r.trials.push_back(make_trial(Outcome::Benign, "getelementptr", "main", 7));
  r.trials.push_back(make_trial(Outcome::SDC, "add", "main", 3));
  r.trials.push_back(make_trial(Outcome::NotActivated, "add", "main", 3));
  // Never injected: excluded entirely from the breakdown.
  r.trials.push_back(
      make_trial(Outcome::NotActivated, "mul", "main", 4, false));

  const std::vector<OpcodeBreakdown> rows = opcode_breakdown(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].opcode, "getelementptr");  // most activated first
  EXPECT_EQ(rows[0].opcode_class, "gep");
  EXPECT_EQ(rows[0].injected, 3u);
  EXPECT_EQ(rows[0].activated, 3u);
  EXPECT_EQ(rows[0].crash, 2u);
  EXPECT_EQ(rows[0].benign, 1u);
  EXPECT_NEAR(rows[0].crash_rate().value(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rows[1].opcode, "add");
  EXPECT_EQ(rows[1].opcode_class, "arith");
  EXPECT_EQ(rows[1].injected, 2u);
  EXPECT_EQ(rows[1].activated, 1u);
  EXPECT_EQ(rows[1].sdc, 1u);
}

/// A synthetic two-tool cell where the divergence drivers are known:
/// LLFI's crashes all come from gep, PINFI's from the call machinery and
/// register movs that only exist at the assembly level.
ResultSet synthetic_cell() {
  ResultSet rs;
  CampaignResult l;
  l.app = "tiny";
  l.tool = "LLFI";
  l.category = ir::Category::All;
  l.trials.push_back(make_trial(Outcome::Crash, "getelementptr", "main", 7));
  l.trials.push_back(make_trial(Outcome::Crash, "getelementptr", "main", 7));
  l.trials.push_back(make_trial(Outcome::Crash, "getelementptr", "main", 9));
  l.trials.push_back(make_trial(Outcome::Crash, "load", "main", 11));
  for (int i = 0; i < 6; ++i)
    l.trials.push_back(make_trial(Outcome::Benign, "add", "main", 3));
  l.crash = 4;
  l.benign = 6;

  CampaignResult p;
  p.app = "tiny";
  p.tool = "PINFI";
  p.category = ir::Category::All;
  p.trials.push_back(make_trial(Outcome::Crash, "push", "main", 21));
  p.trials.push_back(make_trial(Outcome::Crash, "push", "main", 21));
  p.trials.push_back(make_trial(Outcome::Crash, "lea", "main", 30));
  p.trials.push_back(make_trial(Outcome::Crash, "mov", "main", 35));
  for (int i = 0; i < 4; ++i)
    p.trials.push_back(make_trial(Outcome::Benign, "imul", "main", 17));
  p.crash = 4;
  p.benign = 4;

  rs.add(std::move(l));
  rs.add(std::move(p));
  return rs;
}

TEST(Attribution, DeltaDecomposesExactlyAcrossClasses) {
  const ResultSet rs = synthetic_cell();
  const std::vector<CellAttribution> cells = attribute_crash_delta(rs);
  const CellAttribution* cell = nullptr;
  for (const CellAttribution& c : cells)
    if (c.valid) {
      EXPECT_EQ(cell, nullptr) << "only the 'all' cell has both tools";
      cell = &c;
    }
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->app, "tiny");
  EXPECT_EQ(cell->category, ir::Category::All);
  // PINFI 4/8 = 50%, LLFI 4/10 = 40%.
  EXPECT_NEAR(cell->crash_delta, 10.0, 1e-9);

  // The per-class signed deltas sum exactly to the cell delta.
  double sum = 0.0;
  for (const AttributionEntry& e : cell->entries) sum += e.delta_points;
  EXPECT_NEAR(sum, cell->crash_delta, 1e-9);

  auto find_class = [&](const std::string& cls) -> const AttributionEntry* {
    for (const AttributionEntry& e : cell->entries)
      if (e.opcode_class == cls) return &e;
    return nullptr;
  };
  const AttributionEntry* gep = find_class("gep");
  ASSERT_NE(gep, nullptr);
  // LLFI: 3 gep crashes over 10 activated; PINFI: 1 (lea) over 8.
  EXPECT_EQ(gep->llfi_crash.hits, 3u);
  EXPECT_EQ(gep->llfi_crash.trials, 10u);
  EXPECT_EQ(gep->pinfi_crash.hits, 1u);
  EXPECT_EQ(gep->pinfi_crash.trials, 8u);
  EXPECT_NEAR(gep->delta_points, 12.5 - 30.0, 1e-9);
  // Hottest static site on each side, labeled function:opcode@site.
  EXPECT_EQ(gep->llfi_top_site, "main:getelementptr@7");
  EXPECT_EQ(gep->pinfi_top_site, "main:lea@30");

  const AttributionEntry* call = find_class("call");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->llfi_crash.hits, 0u);
  EXPECT_EQ(call->pinfi_crash.hits, 2u);
  EXPECT_NEAR(call->delta_points, 25.0, 1e-9);
  EXPECT_EQ(call->llfi_top_site, "-");
  EXPECT_EQ(call->pinfi_top_site, "main:push@21");

  const AttributionEntry* phimov = find_class("phi/mov");
  ASSERT_NE(phimov, nullptr);
  EXPECT_NEAR(phimov->delta_points, 12.5, 1e-9);

  // Entries sort by |delta| descending: call (25) before load (12.5 down)
  // and the other 12.5-point classes.
  EXPECT_EQ(cell->entries.front().opcode_class, "call");
}

TEST(Attribution, RenderNamesDivergenceDriversAndCsvMatches) {
  const ResultSet rs = synthetic_cell();
  const std::string report = render_attribution(rs);
  EXPECT_NE(report.find("crash delta 10.0 points"), std::string::npos);
  EXPECT_NE(report.find("gep"), std::string::npos);
  EXPECT_NE(report.find("phi/mov"), std::string::npos);
  EXPECT_NE(report.find("call"), std::string::npos);
  EXPECT_NE(report.find("main:push@21"), std::string::npos);
  EXPECT_NE(report.find("main:getelementptr@7"), std::string::npos);

  const std::string csv = attribution_csv(rs).to_string();
  EXPECT_NE(csv.find("tiny,all,call,25.0000"), std::string::npos);
  EXPECT_NE(csv.find("main:lea@30"), std::string::npos);
}

TEST(Attribution, InvalidCellsWhenAToolIsMissing) {
  ResultSet rs;
  CampaignResult l;
  l.app = "tiny";
  l.tool = "LLFI";
  l.category = ir::Category::All;
  l.crash = 1;
  l.trials.push_back(make_trial(Outcome::Crash, "add", "main", 1));
  rs.add(std::move(l));
  for (const CellAttribution& c : attribute_crash_delta(rs))
    EXPECT_FALSE(c.valid);
  EXPECT_EQ(attribution_csv(rs).to_string().find("tiny"), std::string::npos);
}

// End-to-end on real engines: the decomposition invariant holds for a live
// LLFI/PINFI pair, not just hand-built records.
TEST(Attribution, RealCampaignDecompositionSumsToCellDelta) {
  const char* kProgram = R"(
    int main() {
      int data[16]; int i; long acc = 0;
      for (i = 0; i < 16; i++) data[i] = i * 7;
      for (i = 0; i < 16; i++) acc += data[i] % 5;
      print_int(acc);
      return 0;
    }
  )";
  auto prog = driver::compile(kProgram, "tiny");
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());

  fault::CampaignScheduler scheduler;
  fault::CampaignConfig cfg;
  cfg.app = "tiny";
  cfg.category = ir::Category::All;
  cfg.trials = 60;
  scheduler.add(llfi, cfg);
  scheduler.add(pinfi, cfg);
  std::vector<CampaignResult> results = scheduler.run();
  ResultSet rs;
  for (CampaignResult& r : results) rs.add(std::move(r));

  bool saw_valid = false;
  for (const CellAttribution& cell : attribute_crash_delta(rs)) {
    if (!cell.valid) continue;
    saw_valid = true;
    double sum = 0.0;
    for (const AttributionEntry& e : cell.entries) {
      sum += e.delta_points;
      // Every record resolved a real opcode, so nothing lands in "other"
      // via a null site name (the "?" bucket would betray a hole in the
      // engines' flight-recorder plumbing).
      EXPECT_NE(e.opcode_class, "");
    }
    EXPECT_NEAR(sum, cell.crash_delta, 1e-9);
  }
  EXPECT_TRUE(saw_valid);
  EXPECT_NE(render_attribution(rs).find("crash delta"), std::string::npos);
}

}  // namespace
}  // namespace faultlab::fault
