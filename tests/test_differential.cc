// Property-based differential testing: a seeded generator produces random
// mini-C programs; for each one, (a) the optimizer must preserve the
// output, and (b) the machine simulator must agree with the IR interpreter
// bit-for-bit. This cross-checks the frontend, optimizer, backend, and
// both execution engines against each other.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "driver/pipeline.h"
#include "support/rng.h"
#include "vm/interpreter.h"

namespace faultlab {
namespace {

/// Generates a random but always-terminating, trap-free mini-C program.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "int garr[16];\n";
    os << "long gacc = 7;\n";
    os << "int main() {\n";
    os << "  int i0 = " << rng_.below(100) << ";\n";
    os << "  int i1 = " << rng_.below(100) << ";\n";
    os << "  int i2 = " << rng_.below(100) << ";\n";
    os << "  long l0 = " << rng_.below(1000) << ";\n";
    os << "  long l1 = " << rng_.below(1000) << ";\n";
    os << "  double d0 = " << (rng_.below(100)) << ".25;\n";
    os << "  double d1 = " << (rng_.below(100)) << ".5;\n";
    os << "  int k;\n";
    os << "  for (k = 0; k < 16; k++) garr[k] = k * "
       << (1 + rng_.below(9)) << ";\n";
    const int statements = 8 + static_cast<int>(rng_.below(12));
    for (int s = 0; s < statements; ++s) emit_statement(os, 2);
    os << "  print_int(i0); print_int(i1); print_int(i2);\n";
    os << "  print_int(l0); print_int(l1);\n";
    os << "  print_int((long)(d0 * 1024.0)); print_int((long)(d1 * 1024.0));\n";
    os << "  print_int(gacc);\n";
    os << "  for (k = 0; k < 16; k++) print_int(garr[k]);\n";
    os << "  return 0;\n}\n";
    return os.str();
  }

 private:
  std::string int_var() {
    const char* names[] = {"i0", "i1", "i2"};
    return names[rng_.below(3)];
  }
  std::string long_var() { return rng_.chance(0.5) ? "l0" : "l1"; }
  std::string double_var() { return rng_.chance(0.5) ? "d0" : "d1"; }

  /// An int-valued expression that cannot trap.
  std::string int_expr(int depth) {
    if (depth <= 0 || rng_.chance(0.35)) {
      switch (rng_.below(4)) {
        case 0: return int_var();
        case 1: return std::to_string(rng_.below(64));
        case 2: return "garr[" + int_var() + " & 15]";
        default: return "(int)" + long_var();
      }
    }
    const std::string a = int_expr(depth - 1);
    const std::string b = int_expr(depth - 1);
    switch (rng_.below(8)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " - " + b + ")";
      case 2: return "(" + a + " * " + b + ")";
      case 3: return "(" + a + " & " + b + ")";
      case 4: return "(" + a + " | " + b + ")";
      case 5: return "(" + a + " ^ " + b + ")";
      case 6: return "(" + a + " >> " + std::to_string(rng_.below(8)) + ")";
      default:
        // Division guarded against zero and INT_MIN/-1.
        return "((" + a + " & 0xffff) / " + std::to_string(1 + rng_.below(9)) +
               ")";
    }
  }

  std::string cond_expr() {
    const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return int_expr(1) + " " + ops[rng_.below(6)] + " " + int_expr(1);
  }

  void emit_statement(std::ostringstream& os, int depth) {
    switch (rng_.below(7)) {
      case 0:
        os << "  " << int_var() << " = " << int_expr(2) << ";\n";
        return;
      case 1:
        os << "  " << long_var() << " += " << int_expr(2) << ";\n";
        return;
      case 2:
        os << "  " << double_var() << " = " << double_var() << " * 0.5 + (double)("
           << int_expr(1) << ");\n";
        return;
      case 3:
        os << "  garr[" << int_var() << " & 15] = " << int_expr(2) << ";\n";
        return;
      case 4:
        os << "  if (" << cond_expr() << ") { " << int_var() << " = "
           << int_expr(1) << "; } else { gacc += 3; }\n";
        return;
      case 5: {
        // Bounded loop.
        os << "  for (k = 0; k < " << (2 + rng_.below(10)) << "; k++) {\n";
        os << "    gacc = gacc * 3 + " << int_expr(1) << ";\n";
        os << "    gacc = gacc & 0xffffffffL;\n";
        if (depth > 0 && rng_.chance(0.4)) {
          os << "    if (" << cond_expr() << ") continue;\n";
        }
        os << "    " << int_var() << " ^= k;\n";
        os << "  }\n";
        return;
      }
      default:
        os << "  " << int_var() << " = (" << cond_expr() << ") ? "
           << int_expr(1) << " : " << int_expr(1) << ";\n";
        return;
    }
  }

  Rng rng_;
};

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, OptimizerPreservesSemantics) {
  ProgramGenerator gen(GetParam());
  const std::string src = gen.generate();

  driver::CompileOptions unopt;
  unopt.optimize = false;
  auto before = driver::compile(src, "rand", unopt);
  auto after = driver::compile(src, "rand");

  const auto r0 = before.run_ir();
  const auto r1 = after.run_ir();
  ASSERT_TRUE(r0.completed()) << src;
  ASSERT_TRUE(r1.completed()) << src;
  EXPECT_EQ(r0.output, r1.output) << src;
}

TEST_P(RandomPrograms, SimulatorMatchesInterpreter) {
  ProgramGenerator gen(GetParam() ^ 0xABCDEF);
  const std::string src = gen.generate();
  auto prog = driver::compile(src, "rand");
  const auto r_ir = prog.run_ir();
  const auto r_asm = prog.run_asm();
  ASSERT_TRUE(r_ir.completed()) << src;
  ASSERT_TRUE(r_asm.completed()) << src;
  EXPECT_EQ(r_ir.output, r_asm.output) << src;
  EXPECT_EQ(r_ir.exit_value, r_asm.exit_value) << src;
}

TEST_P(RandomPrograms, UnoptimizedSimulatorMatchesToo) {
  ProgramGenerator gen(GetParam() * 2654435761u);
  const std::string src = gen.generate();
  driver::CompileOptions unopt;
  unopt.optimize = false;
  auto prog = driver::compile(src, "rand", unopt);
  const auto r_ir = prog.run_ir();
  const auto r_asm = prog.run_asm();
  ASSERT_TRUE(r_ir.completed()) << src;
  ASSERT_TRUE(r_asm.completed()) << src;
  EXPECT_EQ(r_ir.output, r_asm.output) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace faultlab
