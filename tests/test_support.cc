// Unit tests for the support library: RNG, statistics, bit utilities,
// table/CSV writers, environment-variable parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "support/bitutil.h"
#include "support/csv.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace faultlab {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(1234);
  std::map<std::uint64_t, int> histogram;
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(8)];
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, kDraws / 8 * 0.9) << "value " << value;
    EXPECT_LT(count, kDraws / 8 * 1.1) << "value " << value;
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  // The child should not replay the parent's sequence.
  Rng b(77);
  (void)b.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(BitUtil, FlipBit) {
  EXPECT_EQ(flip_bit(0, 0), 1u);
  EXPECT_EQ(flip_bit(1, 0), 0u);
  EXPECT_EQ(flip_bit(0, 63), 0x8000000000000000ull);
  EXPECT_EQ(flip_bit(0xff, 4), 0xefull);
}

TEST(BitUtil, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xffull);
  EXPECT_EQ(low_mask(32), 0xffffffffull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
  EXPECT_EQ(sign_extend(5, 64), 5);
}

TEST(BitUtil, DoubleRoundTrip) {
  const double values[] = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  for (double d : values) EXPECT_EQ(double_of(bits_of(d)), d);
}

TEST(Stats, ProportionBasics) {
  Proportion p{25, 100};
  EXPECT_DOUBLE_EQ(p.value(), 0.25);
  EXPECT_DOUBLE_EQ(p.percent(), 25.0);
  EXPECT_NEAR(p.margin95(), 1.96 * std::sqrt(0.25 * 0.75 / 100), 1e-3);
}

TEST(Stats, ProportionEmptyTrials) {
  Proportion p{0, 0};
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
  EXPECT_DOUBLE_EQ(p.margin95(), 0.0);
  const auto w = p.wilson95();
  EXPECT_DOUBLE_EQ(w.lo, 0.0);
  EXPECT_DOUBLE_EQ(w.hi, 0.0);
}

TEST(Stats, WilsonIntervalContainsEstimate) {
  Proportion p{30, 200};
  const auto w = p.wilson95();
  EXPECT_LT(w.lo, p.value());
  EXPECT_GT(w.hi, p.value());
  EXPECT_GE(w.lo, 0.0);
  EXPECT_LE(w.hi, 1.0);
}

TEST(Stats, Overlap95) {
  Proportion a{50, 100};   // ~0.5
  Proportion b{52, 100};   // ~0.52: clearly overlapping
  Proportion c{90, 100};   // ~0.9: clearly separated from a
  EXPECT_TRUE(Proportion::overlap95(a, b));
  EXPECT_FALSE(Proportion::overlap95(a, c));
}

TEST(Stats, ZStatisticSigns) {
  Proportion a{60, 100}, b{40, 100};
  EXPECT_GT(Proportion::z_statistic(a, b), 0.0);
  EXPECT_LT(Proportion::z_statistic(b, a), 0.0);
  EXPECT_DOUBLE_EQ(Proportion::z_statistic({0, 0}, b), 0.0);
}

TEST(Stats, ProportionSaturated) {
  // hits == trials: the normal approximation collapses to a zero-width
  // interval at 1.0, which is exactly the small-n failure mode Wilson
  // avoids — its lower bound pulls away from 1 while the upper stays at 1.
  Proportion p{7, 7};
  EXPECT_DOUBLE_EQ(p.value(), 1.0);
  EXPECT_DOUBLE_EQ(p.margin95(), 0.0);
  const auto w = p.wilson95();
  EXPECT_NEAR(w.hi, 1.0, 1e-12);
  EXPECT_LT(w.lo, 1.0);
  // Closed form at p̂=1: lo = n / (n + z²).
  const double z2 = 1.959963984540054 * 1.959963984540054;
  EXPECT_NEAR(w.lo, 7.0 / (7.0 + z2), 1e-12);
}

TEST(Stats, WilsonNearZeroSmallN) {
  // 0/5 hits: the Wald interval is degenerate [0, 0]; Wilson still admits
  // the true rate may be large — hi = z² / (n + z²) ≈ 0.43 for n = 5.
  Proportion p{0, 5};
  EXPECT_DOUBLE_EQ(p.margin95(), 0.0);
  const auto w = p.wilson95();
  EXPECT_NEAR(w.lo, 0.0, 1e-12);
  const double z2 = 1.959963984540054 * 1.959963984540054;
  EXPECT_NEAR(w.hi, z2 / (5.0 + z2), 1e-12);
  // One hit in five: both ends strictly interior.
  const auto w1 = Proportion{1, 5}.wilson95();
  EXPECT_GT(w1.lo, 0.0);
  EXPECT_LT(w1.lo, 0.2);
  EXPECT_GT(w1.hi, 0.2);
  EXPECT_LT(w1.hi, 1.0);
}

TEST(Stats, WilsonBoundsAlwaysClamped) {
  // Every interval stays inside [0, 1] even at the extremes and n = 1.
  for (const Proportion p :
       {Proportion{0, 1}, Proportion{1, 1}, Proportion{0, 1000},
        Proportion{1000, 1000}, Proportion{1, 2}}) {
    const auto w = p.wilson95();
    EXPECT_GE(w.lo, 0.0);
    EXPECT_LE(w.hi, 1.0);
    EXPECT_LE(w.lo, w.hi);
  }
}

TEST(Stats, Overlap95Degenerate) {
  // Empty proportions collapse to the point interval [0, 0]: two of them
  // overlap each other but not a proportion bounded away from zero.
  EXPECT_TRUE(Proportion::overlap95({0, 0}, {0, 0}));
  EXPECT_FALSE(Proportion::overlap95({0, 0}, {90, 100}));
  // Identical saturated proportions overlap trivially, as do two
  // zero-hit proportions whose intervals both hug zero.
  EXPECT_TRUE(Proportion::overlap95({5, 5}, {5, 5}));
  EXPECT_TRUE(Proportion::overlap95({0, 50}, {0, 5}));
}

TEST(Stats, ZStatisticDegenerate) {
  // Either side empty -> 0 by contract.
  EXPECT_DOUBLE_EQ(Proportion::z_statistic({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Proportion::z_statistic({3, 10}, {0, 0}), 0.0);
  // Pooled rate of 0 or 1 makes the standard error vanish; the guard
  // returns 0 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(Proportion::z_statistic({0, 10}, {0, 20}), 0.0);
  EXPECT_DOUBLE_EQ(Proportion::z_statistic({10, 10}, {20, 20}), 0.0);
  const double z = Proportion::z_statistic({10, 10}, {0, 10});
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_GT(z, 3.0);
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, FormatHelpers) {
  EXPECT_EQ(format_percent(0.123456, 1), "12.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // All lines equal width.
  std::size_t width = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

class EnvParse : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "FAULTLAB_ENVPARSE_TEST";
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvParse, UnsetReturnsFallbackSilently) {
  ::unsetenv(kVar);
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 17u);
  EXPECT_TRUE(support::parse_env_flag(kVar, true));
  EXPECT_FALSE(support::parse_env_flag(kVar, false));
}

TEST_F(EnvParse, ParsesValidDecimal) {
  set("0");
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 0u);
  set("42");
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 42u);
  set("18446744073709551615");  // UINT64_MAX parses exactly
  EXPECT_EQ(support::parse_env_u64(kVar, 17), UINT64_MAX);
}

TEST_F(EnvParse, RejectsMalformedValues) {
  // Each of these used to be accepted (or truncated) by ad-hoc strtoull
  // call sites; the centralized parser warns and keeps the fallback.
  for (const char* bad : {"", "abc", "16abc", "1.5", "7 "}) {
    set(bad);
    EXPECT_EQ(support::parse_env_u64(kVar, 17), 17u) << "value: " << bad;
  }
}

TEST_F(EnvParse, RejectsNegativeAndOverflow) {
  set("-1");  // strtoull would silently wrap to UINT64_MAX
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 17u);
  set("18446744073709551616");  // UINT64_MAX + 1
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 17u);
  set("99999999999999999999999999");
  EXPECT_EQ(support::parse_env_u64(kVar, 17), 17u);
}

TEST_F(EnvParse, EnforcesMinimum) {
  set("0");
  EXPECT_EQ(support::parse_env_u64(kVar, 17, /*min=*/1), 17u);
  set("1");
  EXPECT_EQ(support::parse_env_u64(kVar, 17, /*min=*/1), 1u);
}

TEST_F(EnvParse, StringCanonicalizesUnsetAndEmpty) {
  ::unsetenv(kVar);
  EXPECT_EQ(support::parse_env_string(kVar), nullptr);
  set("");
  EXPECT_EQ(support::parse_env_string(kVar), nullptr);
  set("threaded");
  ASSERT_NE(support::parse_env_string(kVar), nullptr);
  EXPECT_STREQ(support::parse_env_string(kVar), "threaded");
}

TEST_F(EnvParse, ChoiceMatchesClosedSet) {
  static const char* const kChoices[] = {"threaded", "switch"};
  ::unsetenv(kVar);
  EXPECT_EQ(support::parse_env_choice(kVar, kChoices, 2, 0), 0u);
  set("switch");
  EXPECT_EQ(support::parse_env_choice(kVar, kChoices, 2, 0), 1u);
  set("threaded");
  EXPECT_EQ(support::parse_env_choice(kVar, kChoices, 2, 1), 0u);
  // Unknown values warn and keep the fallback index.
  set("interpreted");
  EXPECT_EQ(support::parse_env_choice(kVar, kChoices, 2, 1), 1u);
  set("");
  EXPECT_EQ(support::parse_env_choice(kVar, kChoices, 2, 0), 0u);
}

TEST_F(EnvParse, DoubleParsesAndClamps) {
  ::unsetenv(kVar);
  EXPECT_DOUBLE_EQ(support::parse_env_double(kVar, 0.05, 0.0, 1.0), 0.05);
  set("0.1");
  EXPECT_DOUBLE_EQ(support::parse_env_double(kVar, 0.05, 0.0, 1.0), 0.1);
  set("1");
  EXPECT_DOUBLE_EQ(support::parse_env_double(kVar, 0.05, 0.0, 1.0), 1.0);
  set("2.5e-2");
  EXPECT_DOUBLE_EQ(support::parse_env_double(kVar, 0.05, 0.0, 1.0), 0.025);
}

TEST_F(EnvParse, DoubleRejectsGarbageAndOutOfRange) {
  // Malformed, non-finite, and out-of-range values all warn and keep the
  // fallback — including NaN, which no range comparison would catch.
  for (const char* bad :
       {"", "abc", "0.1abc", "nan", "inf", "-0.5", "1.5", "1e400"}) {
    set(bad);
    EXPECT_DOUBLE_EQ(support::parse_env_double(kVar, 0.05, 0.0, 1.0), 0.05)
        << "value: " << bad;
  }
}

TEST_F(EnvParse, FlagSemantics) {
  // Historical contract: "0" is the only falsy value; empty keeps fallback.
  set("0");
  EXPECT_FALSE(support::parse_env_flag(kVar, true));
  set("1");
  EXPECT_TRUE(support::parse_env_flag(kVar, false));
  set("yes");
  EXPECT_TRUE(support::parse_env_flag(kVar, false));
  set("");
  EXPECT_TRUE(support::parse_env_flag(kVar, true));
  EXPECT_FALSE(support::parse_env_flag(kVar, false));
}

TEST(Csv, RendersRows) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.add_row({"a,b", "c"});
  EXPECT_EQ(csv.to_string(), "x,y\n1,2\n\"a,b\",c\n");
  EXPECT_THROW(csv.add_row({"too", "many", "cells"}), std::invalid_argument);
}

}  // namespace
}  // namespace faultlab
