// Error-propagation tracer tests: taint seeding, value/memory/control
// flow, call-boundary transfer, and consistency with outcome
// classification.
#include <gtest/gtest.h>

#include "driver/pipeline.h"
#include "fault/llfi.h"
#include "fault/propagation.h"

namespace faultlab::fault {
namespace {

struct Compiled {
  driver::CompiledProgram prog;
  std::string golden;

  explicit Compiled(const char* src)
      : prog(driver::compile(src, "t")), golden(prog.run_ir().output) {}

  PropagationTrace trace(ir::Category cat, std::uint64_t k, unsigned bit) {
    return trace_propagation(prog.module(), cat, k, bit, golden);
  }

  std::uint64_t targets(ir::Category cat) {
    LlfiEngine engine(prog.module());
    return engine.profile(cat);
  }
};

TEST(Propagation, SeedCountsAsContaminated) {
  Compiled c(R"(
    int main() {
      int x = 40 + 2;  // folds; keep live work below
      int i; long s = 0;
      for (i = 0; i < 10; i++) s += i;
      print_int(s + x);
      return 0;
    }
  )");
  const std::uint64_t n = c.targets(ir::Category::All);
  ASSERT_GT(n, 0u);
  const PropagationTrace t = c.trace(ir::Category::All, 1, 0);
  EXPECT_TRUE(t.injected);
  EXPECT_GE(t.contaminated_values, 1u);
}

TEST(Propagation, ArithmeticChainSpreadsTaint) {
  // A value feeding a long dependent chain must contaminate many values.
  Compiled c(R"(
    int main() {
      long acc = 3;
      int i;
      for (i = 0; i < 50; i++) acc = acc * 3 + 1;
      print_int(acc & 0xffff);
      return 0;
    }
  )");
  // Inject into an early 'arithmetic' instance: the loop-carried
  // dependency drags the taint through every later iteration.
  const PropagationTrace t = c.trace(ir::Category::Arithmetic, 2, 3);
  ASSERT_TRUE(t.injected);
  // Values dedupe per (frame, instruction): the loop body runs in one
  // frame, so the footprint saturates at its static size — but the taint
  // must keep flowing around the loop, visible as contaminated branches.
  EXPECT_GE(t.contaminated_values, 5u);
  EXPECT_GT(t.contaminated_branches, 20u);
  EXPECT_EQ(t.outcome == Outcome::SDC || t.outcome == Outcome::Benign ||
                t.outcome == Outcome::Crash,
            true);
}

TEST(Propagation, TaintFlowsThroughMemory) {
  Compiled c(R"(
    int buf[16];
    int main() {
      int i;
      for (i = 0; i < 16; i++) buf[i] = i;
      long s = 0;
      for (i = 0; i < 16; i++) s += buf[i];
      print_int(s);
      return 0;
    }
  )");
  // Inject into an arithmetic result in the fill loop: the store puts the
  // taint into buf, the sum loop loads it back out.
  const PropagationTrace t = c.trace(ir::Category::Arithmetic, 3, 1);
  ASSERT_TRUE(t.injected);
  if (t.outcome == Outcome::SDC) {
    EXPECT_GT(t.contaminated_memory_bytes, 0u);
    EXPECT_GT(t.first_memory_hop, 0u);
    EXPECT_GT(t.contaminated_outputs, 0u);
  }
}

TEST(Propagation, BranchContaminationDetected) {
  Compiled c(R"(
    int main() {
      int i; long s = 0;
      for (i = 0; i < 32; i++) {
        if ((i & 3) == 0) s += 5;
        else s += 1;
      }
      print_int(s);
      return 0;
    }
  )");
  // cmp-category injections flip branch decisions directly.
  const std::uint64_t n = c.targets(ir::Category::Cmp);
  ASSERT_GT(n, 0u);
  bool saw_branch_taint = false;
  for (std::uint64_t k = 1; k <= std::min<std::uint64_t>(n, 8); ++k) {
    const PropagationTrace t = c.trace(ir::Category::Cmp, k, 0);
    if (t.contaminated_branches > 0) saw_branch_taint = true;
  }
  EXPECT_TRUE(saw_branch_taint);
}

TEST(Propagation, TaintCrossesCallBoundary) {
  Compiled c(R"(
    long mystery(long v) { if (v > 100) return v * 3; return v + 7; }
    int main() {
      long x = 50;
      int i;
      for (i = 0; i < 8; i++) x = mystery(x);
      print_int(x);
      return 0;
    }
  )");
  // NOTE: mystery is small enough to be inlined by the pipeline, which is
  // fine — the taint then flows intra-procedurally. To force a real call,
  // check the unoptimized module instead.
  driver::CompileOptions opts;
  opts.optimize = false;
  auto raw = driver::compile(R"(
    long mystery9(long v) {
      long a0 = v + 1;  long a1 = a0 * 3; long a2 = a1 ^ 5;
      if (a2 > 1000000) return a2;
      return a2 + v;
    }
    int main() {
      long x = 3;
      int i;
      for (i = 0; i < 6; i++) x = mystery9(x);
      print_int(x);
      return 0;
    }
  )", "t", opts);
  const std::string golden = raw.run_ir().output;
  LlfiEngine engine(raw.module());
  const std::uint64_t n = engine.profile(ir::Category::Arithmetic);
  ASSERT_GT(n, 0u);
  bool spread_through_call = false;
  for (std::uint64_t k = 1; k <= std::min<std::uint64_t>(n, 10); ++k) {
    const PropagationTrace t =
        trace_propagation(raw.module(), ir::Category::Arithmetic, k, 2, golden);
    // Values contaminated across several call frames show up as a larger
    // footprint than one function body could produce alone.
    if (t.contaminated_values > 12) spread_through_call = true;
  }
  EXPECT_TRUE(spread_through_call);
}

TEST(Propagation, SdcImpliesContaminatedOutput) {
  Compiled c(R"(
    int main() {
      long s = 1;
      int i;
      for (i = 1; i <= 12; i++) s *= i;
      print_int(s);
      return 0;
    }
  )");
  const std::uint64_t n = c.targets(ir::Category::Arithmetic);
  int checked = 0;
  for (std::uint64_t k = 1; k <= n && checked < 24; ++k, ++checked) {
    const PropagationTrace t = c.trace(ir::Category::Arithmetic, k, 7);
    if (t.outcome == Outcome::SDC) {
      // Corruption that reached the output must have been traced there.
      EXPECT_GT(t.contaminated_outputs, 0u)
          << "SDC with no traced output contamination (k=" << k << ")";
    }
  }
}

TEST(Propagation, BenignFaultsHaveBoundedSpread) {
  // Flip a value that is immediately overwritten/masked: spread stays tiny.
  Compiled c(R"(
    int main() {
      int i; long s = 0;
      for (i = 0; i < 20; i++) {
        int dead = i * 17;      // used once, then discarded
        s += (dead & 0);        // masked to zero: taint dies at the and
        s += i;
      }
      print_int(s);
      return 0;
    }
  )");
  // The `dead & 0` instcombines away under -O; compile unoptimized.
  driver::CompileOptions opts;
  opts.optimize = false;
  auto raw = driver::compile(R"(
    int main() {
      int i; long s = 0;
      for (i = 0; i < 20; i++) {
        int dead = i * 17;
        s += (dead & 0);
        s += i;
      }
      print_int(s);
      return 0;
    }
  )", "t", opts);
  const std::string golden = raw.run_ir().output;
  // dead's result feeds only the and-with-zero; taint cannot escape it.
  LlfiEngine engine(raw.module());
  (void)engine;
  const PropagationTrace t =
      trace_propagation(raw.module(), ir::Category::All, 5, 1, golden);
  EXPECT_TRUE(t.injected);
  EXPECT_EQ(t.outcome != Outcome::Crash, true);
}

TEST(Propagation, RenderTraceIsReadable) {
  PropagationTrace t;
  t.injected = true;
  t.outcome = Outcome::SDC;
  t.instructions_after_injection = 1234;
  t.contaminated_values = 56;
  t.contaminated_sites = {1, 2, 3};
  t.contaminated_memory_bytes = 8;
  t.contaminated_outputs = 1;
  t.first_output_hop = 900;
  const std::string s = render_trace(t);
  EXPECT_NE(s.find("sdc"), std::string::npos);
  EXPECT_NE(s.find("56"), std::string::npos);
  EXPECT_NE(s.find("3 static sites"), std::string::npos);
  EXPECT_NE(s.find("900"), std::string::npos);
}

TEST(Propagation, DeterministicForSameDraw) {
  Compiled c(R"(
    int main() {
      long h = 7; int i;
      for (i = 0; i < 64; i++) h = h * 31 + i;
      print_int(h & 0xffffff);
      return 0;
    }
  )");
  const PropagationTrace a = c.trace(ir::Category::All, 17, 5);
  const PropagationTrace b = c.trace(ir::Category::All, 17, 5);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.contaminated_values, b.contaminated_values);
  EXPECT_EQ(a.contaminated_memory_bytes, b.contaminated_memory_bytes);
  EXPECT_EQ(a.instructions_after_injection, b.instructions_after_injection);
}

}  // namespace
}  // namespace faultlab::fault
