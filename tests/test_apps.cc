// Benchmark application tests: every mini app compiles, runs to completion
// on both engines with identical output, produces its self-check values,
// and exposes a healthy instruction-category mix for the experiments.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"

namespace faultlab::apps {
namespace {

class AppCase : public ::testing::TestWithParam<const char*> {
 protected:
  driver::CompiledProgram compile_app() {
    return driver::compile(benchmark(GetParam()).source, GetParam());
  }
};

TEST_P(AppCase, CompilesAndRunsOnBothEngines) {
  auto prog = compile_app();
  const auto r_ir = prog.run_ir();
  const auto r_asm = prog.run_asm();
  ASSERT_TRUE(r_ir.completed()) << "IR run failed";
  ASSERT_TRUE(r_asm.completed()) << "ASM run failed";
  EXPECT_EQ(r_ir.output, r_asm.output);
  EXPECT_EQ(r_ir.exit_value, r_asm.exit_value);
  EXPECT_FALSE(r_ir.output.empty());
}

TEST_P(AppCase, DeterministicAcrossRuns) {
  auto prog = compile_app();
  EXPECT_EQ(prog.run_ir().output, prog.run_ir().output);
  EXPECT_EQ(prog.run_asm().output, prog.run_asm().output);
}

TEST_P(AppCase, ReasonableDynamicSize) {
  // Large enough for meaningful injection sampling, small enough for
  // thousand-trial campaigns.
  auto prog = compile_app();
  const auto r = prog.run_ir();
  EXPECT_GT(r.dynamic_instructions, 100'000u);
  EXPECT_LT(r.dynamic_instructions, 50'000'000u);
}

TEST_P(AppCase, HasInjectionTargetsInMainCategories) {
  auto prog = compile_app();
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());
  for (ir::Category c : {ir::Category::Arithmetic, ir::Category::Cmp,
                         ir::Category::Load, ir::Category::All}) {
    EXPECT_GT(llfi.profile(c), 0u) << ir::category_name(c);
    EXPECT_GT(pinfi.profile(c), 0u) << ir::category_name(c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCase,
                         ::testing::Values("bzip2", "libquantum", "ocean",
                                           "hmmer", "mcf", "raytrace"));

TEST(AppsRegistry, HasSixInPaperOrder) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "bzip2");
  EXPECT_EQ(all[1].name, "libquantum");
  EXPECT_EQ(all[2].name, "ocean");
  EXPECT_EQ(all[3].name, "hmmer");
  EXPECT_EQ(all[4].name, "mcf");
  EXPECT_EQ(all[5].name, "raytrace");
  EXPECT_THROW(benchmark("gcc"), std::out_of_range);
  for (const auto& b : all) {
    EXPECT_FALSE(b.description.empty());
    EXPECT_FALSE(b.suite.empty());
    EXPECT_FALSE(b.input.empty());
  }
}

TEST(AppBzip2, RoundTripIsLossless) {
  auto prog = driver::compile(benchmark("bzip2").source, "bzip2");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  // Exit code is the mismatch count; the compressed stream must decode
  // back to the exact input.
  EXPECT_EQ(r.exit_value, 0);
  // Compression actually compresses: packed size (3rd line) < input (1st).
  std::istringstream in(r.output);
  long n = 0, rle_n = 0, packed_n = 0;
  in >> n >> rle_n >> packed_n;
  EXPECT_EQ(n, 4096);
  EXPECT_LT(rle_n, n);
  EXPECT_LT(packed_n, n);
}

TEST(AppLibquantum, GroverAmplifiesMarkedState) {
  auto prog = driver::compile(benchmark("libquantum").source, "libquantum");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  std::istringstream in(r.output);
  long p_marked = 0, total = 0;
  in >> p_marked >> total;
  // Marked-state probability far above uniform (1/256 ~ 3906 ppm).
  EXPECT_GT(p_marked, 500000);  // > 50%
  // Norm is preserved (~1.0 in ppm).
  EXPECT_NEAR(total, 1000000, 2000);
}

TEST(AppOcean, RelaxationReducesResidual) {
  auto prog = driver::compile(benchmark("ocean").source, "ocean");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  std::istringstream in(r.output);
  long first_ppb = 0, final_ppb = 0;
  in >> first_ppb >> final_ppb;
  // Relaxation must shrink the residual by orders of magnitude.
  EXPECT_GT(first_ppb, 0);
  EXPECT_LT(final_ppb, first_ppb / 10);
}

TEST(AppHmmer, HomologousSequencesScoreHigher) {
  auto prog = driver::compile(benchmark("hmmer").source, "hmmer");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  std::istringstream in(r.output);
  long nseq = 0, hits = 0, best = 0, best_seq = 0;
  in >> nseq >> hits >> best >> best_seq;
  EXPECT_EQ(nseq, 12);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, nseq);       // only the biased third scores high
  EXPECT_EQ(best_seq % 3, 0);  // a homologous (biased) sequence wins
}

TEST(AppMcf, FlowIsConsistent) {
  auto prog = driver::compile(benchmark("mcf").source, "mcf");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  std::istringstream in(r.output);
  long flow = 0, cost = 0, augmentations = 0, violations = 0;
  in >> flow >> cost >> augmentations >> violations;
  EXPECT_GT(flow, 0);
  EXPECT_GT(cost, 0);
  EXPECT_GT(augmentations, 0);
  EXPECT_EQ(violations, 0);  // conservation holds at every internal node
}

TEST(AppRaytrace, ImageHasStructure) {
  auto prog = driver::compile(benchmark("raytrace").source, "raytrace");
  const auto r = prog.run_ir();
  ASSERT_TRUE(r.completed());
  std::istringstream in(r.output);
  long check = 0, bright = 0, center = 0, corner = 0;
  in >> check >> bright >> center >> corner;
  // Center pixel hits the main sphere; a corner sees mostly sky.
  EXPECT_GT(center, 0);
  EXPECT_NE(center, corner);
  EXPECT_GT(bright, 784);  // not a black image
  EXPECT_LT(bright, 784 * 255);  // not saturated
}

TEST(Apps, CategoryMixMatchesPaperShape) {
  // Aggregate over all six apps: LLFI sees more 'all' and 'load'
  // instructions than PINFI; cmp counts are comparable (Table IV).
  std::uint64_t llfi_all = 0, pinfi_all = 0;
  std::uint64_t llfi_load = 0, pinfi_load = 0;
  std::uint64_t llfi_cmp = 0, pinfi_cmp = 0;
  for (const auto& b : all_benchmarks()) {
    auto prog = driver::compile(b.source, b.name);
    fault::LlfiEngine llfi(prog.module());
    fault::PinfiEngine pinfi(prog.program());
    llfi_all += llfi.profile(ir::Category::All);
    pinfi_all += pinfi.profile(ir::Category::All);
    llfi_load += llfi.profile(ir::Category::Load);
    pinfi_load += pinfi.profile(ir::Category::Load);
    llfi_cmp += llfi.profile(ir::Category::Cmp);
    pinfi_cmp += pinfi.profile(ir::Category::Cmp);
  }
  EXPECT_GT(llfi_all, pinfi_all);
  EXPECT_GT(llfi_load, pinfi_load);
  const double cmp_ratio =
      static_cast<double>(llfi_cmp) / static_cast<double>(pinfi_cmp);
  EXPECT_GT(cmp_ratio, 0.7);
  EXPECT_LT(cmp_ratio, 1.4);
}

}  // namespace
}  // namespace faultlab::apps
