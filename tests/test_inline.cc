// Function-inliner tests: site selection, body cloning (branches, phis,
// allocas, nested calls), return wiring, and semantic preservation under
// recursion and multiple call sites.
#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "ir/verifier.h"
#include "opt/pass.h"
#include "vm/interpreter.h"

namespace faultlab::opt {
namespace {

using ir::Function;
using ir::Opcode;

std::size_t count_calls_to(const Function& f, const std::string& callee) {
  std::size_t n = 0;
  for (const auto& bb : f.blocks())
    for (const auto& instr : bb->instructions())
      if (auto* call = dynamic_cast<const ir::CallInst*>(instr.get()))
        if (call->callee()->name() == callee) ++n;
  return n;
}

std::int64_t run(const ir::Module& m) {
  vm::Interpreter vm(m);
  auto r = vm.run();
  EXPECT_TRUE(r.completed());
  return r.exit_value;
}

TEST(Inliner, InlinesSmallHelper) {
  auto m = mc::compile_to_ir(R"(
    int twice(int x) { return x * 2; }
    int main() { return twice(21); }
  )", "t");
  Function* main_fn = m->find_function("main");
  ASSERT_EQ(count_calls_to(*main_fn, "twice"), 1u);
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(count_calls_to(*main_fn, "twice"), 0u);
  EXPECT_EQ(run(*m), 42);
}

TEST(Inliner, SkipsDirectRecursion) {
  auto m = mc::compile_to_ir(R"(
    int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
    int main() { return fact(5); }
  )", "t");
  Function* main_fn = m->find_function("main");
  // fact calls itself, so it must never be inlined anywhere.
  make_inline()->run(*main_fn);
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(count_calls_to(*main_fn, "fact"), 1u);
  EXPECT_EQ(run(*m), 120);
}

TEST(Inliner, SkipsBuiltinsAndLargeFunctions) {
  std::string big = "int big(int x) { int s = x;\n";
  for (int i = 0; i < 120; ++i)
    big += "  s = s + " + std::to_string(i) + "; s = s ^ 3;\n";
  big += "  return s; }\n";
  auto m = mc::compile_to_ir(
      big + "int main() { print_int(7); return big(1); }", "t");
  Function* main_fn = m->find_function("main");
  make_inline()->run(*main_fn);
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(count_calls_to(*main_fn, "big"), 1u);       // too large
  EXPECT_EQ(count_calls_to(*main_fn, "print_int"), 1u);  // builtin
}

TEST(Inliner, MultipleCallSitesEachCloned) {
  auto m = mc::compile_to_ir(R"(
    int sq(int x) { return x * x; }
    int main() { return sq(3) + sq(4) + sq(5); }
  )", "t");
  Function* main_fn = m->find_function("main");
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(count_calls_to(*main_fn, "sq"), 0u);
  EXPECT_EQ(run(*m), 9 + 16 + 25);
}

TEST(Inliner, CalleeWithBranchesAndMultipleReturns) {
  auto m = mc::compile_to_ir(R"(
    int clamp(int v) {
      if (v < 0) return 0;
      if (v > 100) return 100;
      return v;
    }
    int main() { return clamp(-5) * 10000 + clamp(250) * 10 + clamp(7); }
  )", "t");
  Function* main_fn = m->find_function("main");
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(run(*m), 0 * 10000 + 100 * 10 + 7);
}

TEST(Inliner, CalleeWithLoopPhis) {
  auto m = mc::compile_to_ir(R"(
    int sum_to(int n) {
      int s = 0;
      int i;
      for (i = 1; i <= n; i++) s += i;
      return s;
    }
    int main() { return sum_to(10) + sum_to(4); }
  )", "t");
  // Promote to SSA first so the callee contains real phi nodes.
  for (const auto& f : m->functions()) {
    if (f->is_builtin()) continue;
    make_simplify_cfg()->run(*f);
    make_mem2reg()->run(*f);
    f->renumber();
  }
  ir::verify_or_throw(*m);
  Function* main_fn = m->find_function("main");
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(run(*m), 55 + 10);
}

TEST(Inliner, CalleeWithLocalArrays) {
  auto m = mc::compile_to_ir(R"(
    int tbl_sum(int seed) {
      int tbl[8];
      int i;
      for (i = 0; i < 8; i++) tbl[i] = seed + i;
      int s = 0;
      for (i = 0; i < 8; i++) s += tbl[i];
      return s;
    }
    int main() { return tbl_sum(1) + tbl_sum(100); }
  )", "t");
  Function* main_fn = m->find_function("main");
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  // Each clone must have its own alloca (no aliasing between sites).
  EXPECT_EQ(run(*m), (8 + 28) + (800 + 28));
}

TEST(Inliner, NestedHelpersCollapseOverRounds) {
  auto m = mc::compile_to_ir(R"(
    int add1(int x) { return x + 1; }
    int add2(int x) { return add1(add1(x)); }
    int main() { return add2(40); }
  )", "t");
  Function* main_fn = m->find_function("main");
  // Round 1 inlines add2 (bringing add1 calls in); round 2 inlines those.
  make_inline()->run(*main_fn);
  make_inline()->run(*main_fn);
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(count_calls_to(*main_fn, "add1"), 0u);
  EXPECT_EQ(count_calls_to(*main_fn, "add2"), 0u);
  EXPECT_EQ(run(*m), 42);
}

TEST(Inliner, VoidCalleeAndIgnoredResult) {
  auto m = mc::compile_to_ir(R"(
    int counter = 0;
    void bump(int by) { counter += by; }
    int probe() { counter += 100; return counter; }
    int main() {
      bump(1);
      bump(2);
      probe();          // result ignored
      return counter;
    }
  )", "t");
  Function* main_fn = m->find_function("main");
  EXPECT_TRUE(make_inline()->run(*main_fn));
  main_fn->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(run(*m), 103);
}

TEST(Inliner, PreservesOutputAcrossWholePipeline) {
  const char* src = R"(
    double mix(double a, double b) { return a * 0.75 + b * 0.25; }
    int idx(int r, int c) { return r * 8 + c; }
    double grid[64];
    int main() {
      int r; int c;
      for (r = 0; r < 8; r++)
        for (c = 0; c < 8; c++)
          grid[idx(r, c)] = (double)(r * c);
      double acc = 0.0;
      for (r = 1; r < 8; r++)
        acc = mix(acc, grid[idx(r, r)]);
      print_int((long)(acc * 1000.0));
      return 0;
    }
  )";
  auto plain = mc::compile_to_ir(src, "t");
  vm::Interpreter vm_plain(*plain);
  const auto golden = vm_plain.run();

  auto optimized = mc::compile_to_ir(src, "t");
  run_standard_pipeline(*optimized);
  vm::Interpreter vm_opt(*optimized);
  const auto r = vm_opt.run();
  EXPECT_EQ(golden.output, r.output);
  // And the pipeline actually removed the helper calls from main.
  EXPECT_EQ(count_calls_to(*optimized->find_function("main"), "idx"), 0u);
  EXPECT_EQ(count_calls_to(*optimized->find_function("main"), "mix"), 0u);
}

TEST(Inliner, MutualRecursionTerminates) {
  auto m = mc::compile_to_ir(R"(
    int odd(int n) { if (n == 0) return 0; return even(n - 1); }
    int even(int n) { if (n == 0) return 1; return odd(n - 1); }
    int main() { return even(9); }
  )", "t");
  // Bounded rounds must terminate and stay correct (self-calls appear
  // after one round and are never inlined).
  for (int round = 0; round < 8; ++round)
    for (const auto& f : m->functions())
      if (!f->is_builtin()) make_inline()->run(*f);
  for (const auto& f : m->functions())
    if (!f->is_builtin()) f->renumber();
  ir::verify_or_throw(*m);
  EXPECT_EQ(run(*m), 0);
}

}  // namespace
}  // namespace faultlab::opt
