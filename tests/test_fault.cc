// Fault-injection framework tests: outcome classification, LLFI/PINFI
// engines (profiling, injection, activation), campaign determinism, and
// the analysis helpers.
#include <gtest/gtest.h>

#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/compare.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/report.h"

namespace faultlab::fault {
namespace {

TEST(Outcome, ClassificationMatrix) {
  const std::string golden = "42\n";
  EXPECT_EQ(classify(true, true, false, false, "42\n", golden),
            Outcome::Benign);
  EXPECT_EQ(classify(true, true, false, false, "43\n", golden), Outcome::SDC);
  EXPECT_EQ(classify(true, true, true, false, "", golden), Outcome::Crash);
  EXPECT_EQ(classify(true, true, false, true, "", golden), Outcome::Hang);
  EXPECT_EQ(classify(false, false, false, false, "42\n", golden),
            Outcome::NotActivated);
  EXPECT_EQ(classify(true, false, false, false, "42\n", golden),
            Outcome::NotActivated);
}

/// A small program with work in every category.
const char* kTestProgram = R"(
  int data[32];
  double weights[32];
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      data[i] = i * 7 + 3;
      weights[i] = (double)i * 0.5;
    }
    long acc = 0;
    double wacc = 0.0;
    for (i = 0; i < 32; i++) {
      if (data[i] % 3 == 0) acc += data[i];
      wacc = wacc + weights[i] * 1.25;
    }
    print_int(acc);
    print_int((long)(wacc * 100.0));
    return 0;
  }
)";

struct Engines {
  driver::CompiledProgram prog;
  LlfiEngine llfi;
  PinfiEngine pinfi;

  Engines()
      : prog(driver::compile(kTestProgram, "t")),
        llfi(prog.module()),
        pinfi(prog.program()) {}
};

TEST(Engines, GoldenRunsAgree) {
  Engines e;
  EXPECT_EQ(e.llfi.golden_output(), e.pinfi.golden_output());
  EXPECT_GT(e.llfi.golden_instructions(), 0u);
  EXPECT_GT(e.pinfi.golden_instructions(), 0u);
}

TEST(Engines, ProfileCountsAreConsistent) {
  Engines e;
  for (ir::Category c : ir::kAllCategories) {
    const std::uint64_t l = e.llfi.profile(c);
    const std::uint64_t p = e.pinfi.profile(c);
    // Profiling is deterministic.
    EXPECT_EQ(l, e.llfi.profile(c)) << ir::category_name(c);
    EXPECT_EQ(p, e.pinfi.profile(c)) << ir::category_name(c);
  }
  // Table IV shape: the IR executes more 'all' and 'load' instructions;
  // cmp counts are close.
  EXPECT_GT(e.llfi.profile(ir::Category::All), 0u);
  EXPECT_GT(e.llfi.profile(ir::Category::Load),
            e.pinfi.profile(ir::Category::Load) / 2);
  const std::uint64_t lcmp = e.llfi.profile(ir::Category::Cmp);
  const std::uint64_t pcmp = e.pinfi.profile(ir::Category::Cmp);
  EXPECT_LT(lcmp > pcmp ? lcmp - pcmp : pcmp - lcmp, lcmp / 2 + 16);
}

TEST(Engines, InjectionIsDeterministicPerDraw) {
  Engines e;
  Rng rng1(123), rng2(123);
  const TrialRecord a = e.llfi.inject(ir::Category::All, 50, rng1);
  const TrialRecord b = e.llfi.inject(ir::Category::All, 50, rng2);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.bit, b.bit);
  EXPECT_EQ(a.static_site, b.static_site);
}

TEST(Engines, InjectionReachesTarget) {
  Engines e;
  const std::uint64_t n = e.llfi.profile(ir::Category::All);
  Rng rng(7);
  const TrialRecord first = e.llfi.inject(ir::Category::All, 1, rng);
  const TrialRecord last = e.llfi.inject(ir::Category::All, n, rng);
  EXPECT_TRUE(first.injected);
  EXPECT_TRUE(last.injected);
}

TEST(Engines, LlfiHighActivationByConstruction) {
  // LLFI only targets values with users, so activation should be very
  // high (the paper's motivation for the def-use filter).
  Engines e;
  Rng rng(99);
  int activated = 0;
  const std::uint64_t n = e.llfi.profile(ir::Category::All);
  for (int t = 0; t < 40; ++t) {
    Rng trial = rng.fork();
    const TrialRecord r =
        e.llfi.inject(ir::Category::All, rng.range(1, n), trial);
    if (r.outcome != Outcome::NotActivated) ++activated;
  }
  EXPECT_GE(activated, 36);  // >= 90%
}

TEST(Engines, PinfiFlagHeuristicRaisesActivation) {
  Engines e;
  FaultModel no_heuristic;
  no_heuristic.pinfi_flag_heuristic = false;
  PinfiEngine without(e.prog.program(), no_heuristic);

  auto activation_rate = [&](PinfiEngine& engine) {
    Rng rng(5);
    const std::uint64_t n = engine.profile(ir::Category::Cmp);
    if (n == 0) return -1.0;
    int activated = 0;
    constexpr int kTrials = 50;
    for (int t = 0; t < kTrials; ++t) {
      Rng trial = rng.fork();
      const TrialRecord r =
          engine.inject(ir::Category::Cmp, rng.range(1, n), trial);
      if (r.outcome != Outcome::NotActivated) ++activated;
    }
    return static_cast<double>(activated) / kTrials;
  };

  const double with_rate = activation_rate(e.pinfi);
  const double without_rate = activation_rate(without);
  ASSERT_GE(with_rate, 0.0);
  // With the heuristic, every cmp injection hits a bit the jcc reads.
  EXPECT_GT(with_rate, 0.95);
  EXPECT_LT(without_rate, with_rate);
}

TEST(Engines, SdcRequiresOutputDifference) {
  // Every SDC-classified trial must, by definition, have completed with
  // output != golden; spot-check by re-running a known SDC draw.
  Engines e;
  Rng rng(31);
  const std::uint64_t n = e.llfi.profile(ir::Category::Load);
  for (int t = 0; t < 30; ++t) {
    Rng trial = rng.fork();
    const TrialRecord r =
        e.llfi.inject(ir::Category::Load, rng.range(1, n), trial);
    if (r.outcome == Outcome::SDC) return;  // found one: good
  }
  // No SDC in 30 load injections would be surprising but not a failure of
  // the mechanism; don't assert.
  SUCCEED();
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  Engines e;
  CampaignConfig cfg;
  cfg.app = "t";
  cfg.category = ir::Category::All;
  cfg.trials = 24;
  cfg.seed = 2024;
  cfg.threads = 1;
  const CampaignResult serial = run_campaign(e.llfi, cfg);
  cfg.threads = 4;
  const CampaignResult parallel = run_campaign(e.llfi, cfg);
  EXPECT_EQ(serial.crash, parallel.crash);
  EXPECT_EQ(serial.sdc, parallel.sdc);
  EXPECT_EQ(serial.benign, parallel.benign);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].outcome, parallel.trials[i].outcome);
    EXPECT_EQ(serial.trials[i].dynamic_target,
              parallel.trials[i].dynamic_target);
  }
}

TEST(Campaign, CountsSumToTrials) {
  Engines e;
  CampaignConfig cfg;
  cfg.app = "t";
  cfg.category = ir::Category::Arithmetic;
  cfg.trials = 30;
  const CampaignResult r = run_campaign(e.pinfi, cfg);
  EXPECT_EQ(r.crash + r.sdc + r.benign + r.hang + r.not_activated, 30u);
  EXPECT_EQ(r.trials.size(), 30u);
  EXPECT_GT(r.profiled_count, 0u);
  EXPECT_EQ(r.tool, "PINFI");
}

TEST(Campaign, EmptyCategoryYieldsNoTrials) {
  // A program without any double math has no 'cast' instructions at the
  // assembly level... our test program has none either at IR? It has
  // (double)i -> sitofp. Use a cast-free program instead.
  auto prog = driver::compile(
      "int main() { int i; long s = 0; for (i=0;i<9;i++) s += 1; "
      "print_int(s); return 0; }",
      "t");
  PinfiEngine pinfi(prog.program());
  CampaignConfig cfg;
  cfg.app = "t";
  cfg.category = ir::Category::Cast;
  cfg.trials = 5;
  const CampaignResult r = run_campaign(pinfi, cfg);
  EXPECT_EQ(r.profiled_count, 0u);
  EXPECT_TRUE(r.trials.empty());
}

TEST(Analysis, ResultSetLookupAndCsv) {
  ResultSet rs;
  CampaignResult a;
  a.app = "app1";
  a.tool = "LLFI";
  a.category = ir::Category::All;
  a.crash = 30;
  a.sdc = 10;
  a.benign = 60;
  rs.add(a);
  CampaignResult b = a;
  b.tool = "PINFI";
  b.crash = 25;
  rs.add(b);

  EXPECT_NE(rs.find("app1", "LLFI", ir::Category::All), nullptr);
  EXPECT_EQ(rs.find("app1", "LLFI", ir::Category::Cmp), nullptr);
  EXPECT_EQ(rs.apps(), std::vector<std::string>{"app1"});

  const std::string csv = results_csv(rs).to_string();
  EXPECT_NE(csv.find("app1,LLFI,all"), std::string::npos);
  EXPECT_NE(csv.find("app1,PINFI,all"), std::string::npos);
}

TEST(Analysis, CompareCellsAndSummary) {
  ResultSet rs;
  auto mk = [](const char* tool, ir::Category cat, std::size_t crash,
               std::size_t sdc) {
    CampaignResult r;
    r.app = "x";
    r.tool = tool;
    r.category = cat;
    r.crash = crash;
    r.sdc = sdc;
    r.benign = 100 - crash - sdc;
    return r;
  };
  rs.add(mk("LLFI", ir::Category::All, 60, 10));
  rs.add(mk("PINFI", ir::Category::All, 20, 12));
  rs.add(mk("LLFI", ir::Category::Cmp, 3, 30));
  rs.add(mk("PINFI", ir::Category::Cmp, 2, 31));

  const HeadlineFindings h = summarize(rs);
  EXPECT_NEAR(h.max_crash_delta, 40.0, 1e-9);
  EXPECT_EQ(h.max_crash_category, ir::Category::All);
  EXPECT_NEAR(h.mean_cmp_crash_delta, 1.0, 1e-9);
  EXPECT_GT(h.mean_other_crash_delta, h.mean_cmp_crash_delta);
  EXPECT_GT(h.sdc_agreement_fraction, 0.0);

  const std::string summary = render_summary(h);
  EXPECT_NE(summary.find("40.0 points"), std::string::npos);
}

TEST(Reports, RenderPaperShapes) {
  ResultSet rs;
  for (const char* tool : {"LLFI", "PINFI"}) {
    for (ir::Category cat : ir::kAllCategories) {
      CampaignResult r;
      r.app = "demo";
      r.tool = tool;
      r.category = cat;
      r.profiled_count = 12345;
      r.crash = 20;
      r.sdc = 10;
      r.benign = 70;
      rs.add(r);
    }
  }
  EXPECT_NE(render_figure3(rs).find("Figure 3"), std::string::npos);
  EXPECT_NE(render_table4(rs).find("Table IV"), std::string::npos);
  EXPECT_NE(render_table4(rs).find("12,345"), std::string::npos);
  EXPECT_NE(render_figure4(rs).find("(e) all"), std::string::npos);
  EXPECT_NE(render_table5(rs).find("Table V"), std::string::npos);
}

TEST(FaultModel, LlfiTypeWidthRespected) {
  // With type-width flips, an i1 (cmp) destination can only see bit 0.
  Engines e;
  Rng rng(17);
  const std::uint64_t n = e.llfi.profile(ir::Category::Cmp);
  ASSERT_GT(n, 0u);
  for (int t = 0; t < 20; ++t) {
    Rng trial = rng.fork();
    const TrialRecord r =
        e.llfi.inject(ir::Category::Cmp, rng.range(1, n), trial);
    EXPECT_EQ(r.bit, 0u);  // i1 destination: only bit 0 exists
  }
}

}  // namespace
}  // namespace faultlab::fault
