// Report rendering edge cases: missing cells, zero activation, CSV export,
// and cross-tool comparison bounds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fault/compare.h"
#include "fault/report.h"

namespace faultlab::fault {
namespace {

CampaignResult make_result(const std::string& app, const char* tool,
                           ir::Category cat, std::size_t crash,
                           std::size_t sdc, std::size_t benign,
                           std::uint64_t profiled = 1000) {
  CampaignResult r;
  r.app = app;
  r.tool = tool;
  r.category = cat;
  r.profiled_count = profiled;
  r.crash = crash;
  r.sdc = sdc;
  r.benign = benign;
  return r;
}

TEST(Report, HandlesMissingToolGracefully) {
  ResultSet rs;
  rs.add(make_result("solo", "LLFI", ir::Category::All, 10, 5, 85));
  // No PINFI counterpart: rendering must not crash and must mark gaps.
  EXPECT_NO_THROW(render_figure3(rs));
  EXPECT_NO_THROW(render_figure4(rs));
  EXPECT_NO_THROW(render_table5(rs));
  const std::string t5 = render_table5(rs);
  EXPECT_NE(t5.find("-"), std::string::npos);
}

TEST(Report, HandlesZeroActivation) {
  ResultSet rs;
  CampaignResult r = make_result("dead", "LLFI", ir::Category::Cast, 0, 0, 0);
  r.not_activated = 100;
  rs.add(r);
  EXPECT_EQ(r.activated(), 0u);
  EXPECT_NO_THROW(render_figure4(rs));
  EXPECT_NO_THROW(render_table4(rs));
}

TEST(Report, Table4PercentagesAgainstAll) {
  ResultSet rs;
  rs.add(make_result("app", "LLFI", ir::Category::All, 1, 1, 1, 1000));
  rs.add(make_result("app", "LLFI", ir::Category::Load, 1, 1, 1, 500));
  const std::string t4 = render_table4(rs);
  EXPECT_NE(t4.find("(50%)"), std::string::npos);
}

TEST(Report, CsvSaveRoundTrip) {
  ResultSet rs;
  rs.add(make_result("app", "LLFI", ir::Category::All, 30, 10, 60));
  const std::string path = ::testing::TempDir() + "faultlab_test.csv";
  results_csv(rs).save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("crash_pct"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("app,LLFI,all,transient,1000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Compare, InvalidCellsExcluded) {
  ResultSet rs;
  rs.add(make_result("a", "LLFI", ir::Category::All, 10, 10, 80));
  // PINFI side has zero activated trials -> cell invalid.
  CampaignResult dead = make_result("a", "PINFI", ir::Category::All, 0, 0, 0);
  rs.add(dead);
  const auto cells = compare_cells(rs);
  for (const auto& c : cells)
    if (c.app == "a" && c.category == ir::Category::All)
      EXPECT_FALSE(c.valid);
  const HeadlineFindings h = summarize(rs);
  EXPECT_DOUBLE_EQ(h.max_crash_delta, 0.0);
}

TEST(Compare, CiOverlapTracksSampleSize) {
  ResultSet rs;
  // Same point estimates, tiny samples: CIs overlap.
  rs.add(make_result("b", "LLFI", ir::Category::All, 3, 2, 5));
  rs.add(make_result("b", "PINFI", ir::Category::All, 5, 2, 3));
  const auto cells = compare_cells(rs);
  bool found = false;
  for (const auto& c : cells) {
    if (c.app == "b" && c.category == ir::Category::All) {
      found = true;
      EXPECT_TRUE(c.valid);
      EXPECT_TRUE(c.sdc_ci_overlap);  // both 20% SDC
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compare, AppsPreserveInsertionOrder) {
  ResultSet rs;
  rs.add(make_result("zeta", "LLFI", ir::Category::All, 1, 1, 1));
  rs.add(make_result("alpha", "LLFI", ir::Category::All, 1, 1, 1));
  rs.add(make_result("zeta", "PINFI", ir::Category::All, 1, 1, 1));
  EXPECT_EQ(rs.apps(), (std::vector<std::string>{"zeta", "alpha"}));
}

}  // namespace
}  // namespace faultlab::fault
