// x86 ISA and simulator tests: structural queries, flag semantics,
// hand-assembled program execution, categories, hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "machine/memory.h"
#include "support/bitutil.h"
#include "x86/category.h"
#include "x86/printer.h"
#include "x86/simulator.h"

namespace faultlab::x86 {
namespace {

Inst mov_ri(RegId dst, std::int64_t imm, unsigned w = 8) {
  Inst i;
  i.op = Op::MovRI;
  i.dst = dst;
  i.imm = imm;
  i.src_kind = SrcKind::Imm;
  i.width = static_cast<std::uint8_t>(w);
  return i;
}

Inst alu_rr(Op op, RegId dst, RegId src, unsigned w = 8) {
  Inst i;
  i.op = op;
  i.dst = dst;
  i.src = src;
  i.src_kind = SrcKind::Reg;
  i.width = static_cast<std::uint8_t>(w);
  return i;
}

Inst alu_ri(Op op, RegId dst, std::int64_t imm, unsigned w = 8) {
  Inst i;
  i.op = op;
  i.dst = dst;
  i.imm = imm;
  i.src_kind = SrcKind::Imm;
  i.width = static_cast<std::uint8_t>(w);
  return i;
}

Inst ret() {
  Inst i;
  i.op = Op::Ret;
  return i;
}

/// Wraps a raw instruction sequence as `main` and runs it.
SimResult run_program(std::vector<Inst> code, SimHook* hook = nullptr) {
  Program p;
  p.code = std::move(code);
  p.functions.push_back({"main", 0, p.code.size()});
  p.entry_index = 0;
  p.data_size = 0;
  Simulator sim(p, hook);
  return sim.run();
}

TEST(Isa, CondFlagBitsMatchX86) {
  EXPECT_EQ(cond_flag_bits(Cond::E), std::vector<unsigned>{kFlagZF});
  EXPECT_EQ(cond_flag_bits(Cond::L),
            (std::vector<unsigned>{kFlagSF, kFlagOF}));
  EXPECT_EQ(cond_flag_bits(Cond::B), std::vector<unsigned>{kFlagCF});
  EXPECT_EQ(cond_flag_bits(Cond::A),
            (std::vector<unsigned>{kFlagCF, kFlagZF}));
}

TEST(Isa, CondHolds) {
  const std::uint64_t zf = 1ull << kFlagZF;
  const std::uint64_t cf = 1ull << kFlagCF;
  const std::uint64_t sf = 1ull << kFlagSF;
  const std::uint64_t of = 1ull << kFlagOF;
  EXPECT_TRUE(cond_holds(Cond::E, zf));
  EXPECT_FALSE(cond_holds(Cond::NE, zf));
  EXPECT_TRUE(cond_holds(Cond::L, sf));      // SF != OF
  EXPECT_TRUE(cond_holds(Cond::L, of));
  EXPECT_FALSE(cond_holds(Cond::L, sf | of));
  EXPECT_TRUE(cond_holds(Cond::GE, 0));
  EXPECT_TRUE(cond_holds(Cond::B, cf));
  EXPECT_TRUE(cond_holds(Cond::A, 0));
  EXPECT_FALSE(cond_holds(Cond::A, cf));
  EXPECT_FALSE(cond_holds(Cond::A, zf));
}

TEST(Isa, DestRegAndReadsQueries) {
  Inst add = alu_rr(Op::Add, RCX, RDX, 8);
  EXPECT_EQ(dest_reg(add), RCX);
  std::vector<RegId> reads;
  collect_reads(add, reads);
  EXPECT_NE(std::find(reads.begin(), reads.end(), RCX), reads.end());
  EXPECT_NE(std::find(reads.begin(), reads.end(), RDX), reads.end());

  Inst store;
  store.op = Op::MovMR;
  store.dst = RSI;
  store.mem.base = RDI;
  EXPECT_EQ(dest_reg(store), kNoReg);
  reads.clear();
  collect_reads(store, reads);
  EXPECT_NE(std::find(reads.begin(), reads.end(), RSI), reads.end());
  EXPECT_NE(std::find(reads.begin(), reads.end(), RDI), reads.end());

  Inst cmp = alu_rr(Op::Cmp, RAX, RBX, 8);
  EXPECT_EQ(dest_reg(cmp), kNoReg);
  EXPECT_TRUE(writes_flags(cmp));
}

TEST(Isa, DestOverwriteWidths) {
  EXPECT_TRUE(dest_fully_overwrites(mov_ri(RAX, 1, 8)));
  EXPECT_TRUE(dest_fully_overwrites(mov_ri(RAX, 1, 4)));  // zero-extends
  EXPECT_FALSE(dest_fully_overwrites(mov_ri(RAX, 1, 1)));  // merges
  Inst setcc;
  setcc.op = Op::Setcc;
  setcc.dst = RAX;
  EXPECT_FALSE(dest_fully_overwrites(setcc));
}

TEST(Simulator, MovAndZeroExtension32) {
  auto r = run_program({
      mov_ri(RAX, -1, 8),          // rax = all ones
      mov_ri(RCX, 0x11223344, 4),  // 32-bit write
      alu_rr(Op::MovRR, RAX, RCX, 4),
      ret(),
  });
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.exit_value, 0x11223344);
}

TEST(Simulator, FlagsFromCmpAndJcc) {
  // if (3 < 5) rax = 1 else rax = 2
  Inst cmp = alu_ri(Op::Cmp, RCX, 5, 8);
  Inst jl;
  jl.op = Op::Jcc;
  jl.cond = Cond::L;
  jl.target = 5;
  Inst jmp;
  jmp.op = Op::Jmp;
  jmp.target = 7;  // to ret
  auto r = run_program({
      mov_ri(RCX, 3),        // 0
      cmp,                   // 1
      jl,                    // 2
      mov_ri(RAX, 2),        // 3
      jmp,                   // 4  (skip the then-branch)
      mov_ri(RAX, 1),        // 5
      jmp,                   // 6
      ret(),                 // 7
  });
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.exit_value, 1);
}

TEST(Simulator, SubSetsCarryAndOverflow) {
  struct Probe final : SimHook {
    std::uint64_t flags_after_cmp = 0;
    void on_after(std::size_t, const Inst& inst, MachineState& s) override {
      if (inst.op == Op::Cmp) flags_after_cmp = s.rflags;
    }
  } probe;
  // cmp 1, 2 -> borrow: CF set, result negative: SF set.
  auto r = run_program(
      {mov_ri(RCX, 1), alu_ri(Op::Cmp, RCX, 2, 8), ret()}, &probe);
  ASSERT_TRUE(r.completed());
  EXPECT_TRUE((probe.flags_after_cmp >> kFlagCF) & 1);
  EXPECT_TRUE((probe.flags_after_cmp >> kFlagSF) & 1);
  EXPECT_FALSE((probe.flags_after_cmp >> kFlagZF) & 1);
}

TEST(Simulator, StackPushPopRoundTrip) {
  Inst push;
  push.op = Op::Push;
  push.dst = RCX;
  Inst pop;
  pop.op = Op::Pop;
  pop.dst = RAX;
  auto r = run_program({mov_ri(RCX, 777), push, pop, ret()});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.exit_value, 777);
}

TEST(Simulator, CorruptedReturnAddressTrapsAsInvalidJump) {
  // Overwrite the saved return address ([rsp]) then ret.
  Inst clobber;
  clobber.op = Op::MovMI;
  clobber.mem.base = RSP;
  clobber.imm = 0x1234;
  clobber.width = 8;
  auto r = run_program({clobber, ret()});
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::InvalidJump);
}

TEST(Simulator, DivideByZeroTraps) {
  auto r = run_program({
      mov_ri(RAX, 10),
      mov_ri(RCX, 0),
      alu_rr(Op::Idiv, RAX, RCX, 8),
      ret(),
  });
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::DivideByZero);
}

TEST(Simulator, SseScalarArithmetic) {
  // xmm1 = 3.0; xmm2 = 4.0; xmm1 = xmm1*xmm1 + xmm2*xmm2; rax = cvttsd2si
  const RegId x1 = kXmmBase + 1, x2 = kXmmBase + 2;
  Inst load1 = mov_ri(RBX, static_cast<std::int64_t>(bits_of(3.0)));
  Inst movq1;
  movq1.op = Op::MovqXR;
  movq1.dst = x1;
  movq1.src = RBX;
  movq1.src_kind = SrcKind::Reg;
  Inst load2 = mov_ri(RDX, static_cast<std::int64_t>(bits_of(4.0)));
  Inst movq2;
  movq2.op = Op::MovqXR;
  movq2.dst = x2;
  movq2.src = RDX;
  movq2.src_kind = SrcKind::Reg;
  Inst sq1 = alu_rr(Op::Mulsd, x1, x1);
  Inst sq2 = alu_rr(Op::Mulsd, x2, x2);
  Inst sum = alu_rr(Op::Addsd, x1, x2);
  Inst cvt;
  cvt.op = Op::Cvttsd2si;
  cvt.dst = RAX;
  cvt.src = x1;
  cvt.src_kind = SrcKind::Reg;
  cvt.width = 8;
  auto r = run_program({load1, movq1, load2, movq2, sq1, sq2, sum, cvt, ret()});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.exit_value, 25);
}

TEST(Simulator, UcomisdNaNSetsAllThree) {
  struct Probe final : SimHook {
    std::uint64_t flags = 0;
    void on_after(std::size_t, const Inst& inst, MachineState& s) override {
      if (inst.op == Op::Ucomisd) flags = s.rflags;
    }
  } probe;
  const RegId x1 = kXmmBase + 1;
  Inst nan_bits = mov_ri(RBX, static_cast<std::int64_t>(
                                   bits_of(std::nan(""))));
  Inst movq;
  movq.op = Op::MovqXR;
  movq.dst = x1;
  movq.src = RBX;
  movq.src_kind = SrcKind::Reg;
  Inst cmp = alu_rr(Op::Ucomisd, x1, x1);
  auto r = run_program({nan_bits, movq, cmp, ret()}, &probe);
  ASSERT_TRUE(r.completed());
  EXPECT_TRUE((probe.flags >> kFlagZF) & 1);
  EXPECT_TRUE((probe.flags >> kFlagPF) & 1);
  EXPECT_TRUE((probe.flags >> kFlagCF) & 1);
  // Both ordered predicates are false when unordered (NaN).
  EXPECT_FALSE(cond_holds(Cond::FpEq, probe.flags));
  EXPECT_FALSE(cond_holds(Cond::FpNe, probe.flags));
}

TEST(Simulator, TimeoutDetection) {
  Inst spin;
  spin.op = Op::Jmp;
  spin.target = 0;
  Program p;
  p.code = {spin};
  p.functions.push_back({"main", 0, 1});
  p.entry_index = 0;
  Simulator sim(p);
  SimLimits limits;
  limits.max_instructions = 1000;
  auto r = sim.run(limits);
  EXPECT_TRUE(r.timed_out);
}

// ---------------------------------------------------------------------------
// Snapshot / resume (what PINFI's checkpointed trial execution builds on).

/// sum(0..n-1) via a cmp/jcc loop: enough dynamic instructions to land
/// several snapshots mid-loop.
Program sum_loop_program(std::int64_t n) {
  Inst cmp = alu_ri(Op::Cmp, RCX, n, 8);
  Inst jge;
  jge.op = Op::Jcc;
  jge.cond = Cond::GE;
  jge.target = 7;
  Inst body = alu_rr(Op::Add, RAX, RCX, 8);
  Inst step = alu_ri(Op::Add, RCX, 1, 8);
  Inst back;
  back.op = Op::Jmp;
  back.target = 2;
  Program p;
  p.code = {mov_ri(RCX, 0), mov_ri(RAX, 0), cmp, jge, body, step, back, ret()};
  p.functions.push_back({"main", 0, p.code.size()});
  p.entry_index = 0;
  p.data_size = 0;
  return p;
}

TEST(SimSnapshotTest, ResumeReproducesDirectRunFromEverySnapshot) {
  const Program p = sum_loop_program(10'000);
  Simulator direct(p);
  const SimResult golden = direct.run();
  ASSERT_TRUE(golden.completed());
  EXPECT_EQ(golden.exit_value, 10'000LL * 9'999 / 2);

  std::vector<SimSnapshot> snaps;
  SimLimits capture;
  capture.snapshot_stride = 7'000;
  capture.snapshot_sink = [&](SimSnapshot&& s) {
    snaps.push_back(std::move(s));
  };
  Simulator recorder(p);
  const SimResult recorded = recorder.run(capture);
  ASSERT_TRUE(recorded.completed());
  EXPECT_EQ(recorded.exit_value, golden.exit_value);
  EXPECT_EQ(recorded.dynamic_instructions, golden.dynamic_instructions);
  ASSERT_GE(snaps.size(), 3u);

  for (const SimSnapshot& snap : snaps) {
    Simulator resumer(p);
    const SimResult r = resumer.run_from(snap);
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.exit_value, golden.exit_value);
    EXPECT_EQ(r.dynamic_instructions, golden.dynamic_instructions);
  }
}

TEST(SimSnapshotTest, SnapshotReusableAcrossResumes) {
  const Program p = sum_loop_program(5'000);
  std::vector<SimSnapshot> snaps;
  SimLimits capture;
  capture.snapshot_stride = 4'000;
  capture.snapshot_sink = [&](SimSnapshot&& s) {
    snaps.push_back(std::move(s));
  };
  Simulator recorder(p);
  const SimResult golden = recorder.run(capture);
  ASSERT_TRUE(golden.completed());
  ASSERT_GE(snaps.size(), 1u);

  Simulator a(p);
  Simulator b(p);
  const SimResult ra = a.run_from(snaps.front());
  const SimResult rb = b.run_from(snaps.front());
  EXPECT_EQ(ra.exit_value, golden.exit_value);
  EXPECT_EQ(rb.exit_value, golden.exit_value);
  EXPECT_EQ(ra.dynamic_instructions, rb.dynamic_instructions);
}

TEST(SimSnapshotTest, ResumedRunHonoursTotalInstructionBudget) {
  Inst spin;
  spin.op = Op::Jmp;
  spin.target = 0;
  Program p;
  p.code = {spin};
  p.functions.push_back({"main", 0, 1});
  p.entry_index = 0;

  std::vector<SimSnapshot> snaps;
  SimLimits capture;
  capture.snapshot_stride = 500;
  capture.max_instructions = 1'200;
  capture.snapshot_sink = [&](SimSnapshot&& s) {
    snaps.push_back(std::move(s));
  };
  Simulator recorder(p);
  EXPECT_TRUE(recorder.run(capture).timed_out);
  ASSERT_GE(snaps.size(), 1u);
  ASSERT_GE(snaps.front().executed, 500u);

  // Budget counts the skipped prefix: the resumed run stops where a
  // from-scratch run would.
  Simulator resumer(p);
  SimLimits limits;
  limits.max_instructions = 800;
  const SimResult r = resumer.run_from(snaps.front(), limits);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LE(r.dynamic_instructions, 801u);
  EXPECT_GT(r.dynamic_instructions, snaps.front().executed);
}

TEST(Categories, Table3AsmSide) {
  Inst add = alu_rr(Op::Add, RAX, RCX, 8);
  Inst lea;
  lea.op = Op::Lea;
  lea.dst = RAX;
  lea.mem.base = RCX;
  Inst load;
  load.op = Op::MovRM;
  load.dst = RAX;
  load.mem.base = RCX;
  load.width = 8;
  Inst store;
  store.op = Op::MovMR;
  store.dst = RAX;
  store.mem.base = RCX;
  Inst cvt;
  cvt.op = Op::Cvtsi2sd;
  cvt.dst = kXmmBase + 1;
  cvt.src = RAX;
  Inst movzx;
  movzx.op = Op::MovzxRR;
  movzx.dst = RAX;
  movzx.src = RCX;
  movzx.src_width = 1;
  Inst cmp = alu_rr(Op::Cmp, RAX, RCX, 8);
  Inst jcc;
  jcc.op = Op::Jcc;

  using ir::Category;
  EXPECT_TRUE(asm_in_category(add, nullptr, Category::Arithmetic));
  EXPECT_TRUE(asm_in_category(lea, nullptr, Category::Arithmetic));
  EXPECT_TRUE(asm_in_category(cvt, nullptr, Category::Cast));
  EXPECT_FALSE(asm_in_category(movzx, nullptr, Category::Cast));  // DATAXFER
  EXPECT_TRUE(asm_in_category(load, nullptr, Category::Load));
  EXPECT_FALSE(asm_in_category(store, nullptr, Category::Load));
  EXPECT_FALSE(asm_in_category(store, nullptr, Category::All));  // no dest
  EXPECT_TRUE(asm_in_category(movzx, nullptr, Category::All));
  // cmp only counts when followed by a conditional branch.
  EXPECT_TRUE(asm_in_category(cmp, &jcc, Category::Cmp));
  EXPECT_FALSE(asm_in_category(cmp, &add, Category::Cmp));
  EXPECT_FALSE(asm_in_category(cmp, nullptr, Category::Cmp));
}

TEST(Printer, DisassemblesReadably) {
  Inst load;
  load.op = Op::MovRM;
  load.dst = RAX;
  load.mem.base = RBP;
  load.mem.index = RCX;
  load.mem.scale = 4;
  load.mem.disp = -24;
  load.width = 4;
  const std::string s = to_string(load);
  EXPECT_NE(s.find("mov"), std::string::npos);
  EXPECT_NE(s.find("eax"), std::string::npos);
  EXPECT_NE(s.find("rbp"), std::string::npos);
  EXPECT_NE(s.find("rcx*4"), std::string::npos);
}

TEST(ProgramAddressing, CodeAddressRoundTrip) {
  Program p;
  p.code.resize(10);
  const std::uint64_t addr = Program::address_of_index(7);
  EXPECT_EQ(p.index_of_address(addr), 7);
  EXPECT_EQ(p.index_of_address(addr + 1), -1);   // misaligned
  EXPECT_EQ(p.index_of_address(Program::address_of_index(10)), -1);  // oob
  EXPECT_EQ(p.index_of_address(0x1000), -1);     // below code base
}

}  // namespace
}  // namespace faultlab::x86
