// Optimizer tests: pass-level unit behaviour plus whole-pipeline semantic
// preservation on executable programs.
#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "ir/irbuilder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "opt/pass.h"
#include "vm/interpreter.h"

namespace faultlab::opt {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Value;

std::size_t count_op(const Function& f, Opcode op) {
  std::size_t n = 0;
  for (const auto& bb : f.blocks())
    for (const auto& instr : bb->instructions())
      if (instr->opcode() == op) ++n;
  return n;
}

TEST(Mem2Reg, PromotesScalarSlotAndInsertsPhi) {
  auto m = mc::compile_to_ir(R"(
    int f(int n) {
      int x = 0;
      if (n > 0) x = 1; else x = 2;
      return x;
    })", "t");
  Function* f = m->find_function("f");
  ASSERT_GT(count_op(*f, Opcode::Alloca), 0u);

  auto simplify = make_simplify_cfg();
  simplify->run(*f);
  auto pass = make_mem2reg();
  EXPECT_TRUE(pass->run(*f));
  f->renumber();
  ir::verify_or_throw(*m);

  EXPECT_EQ(count_op(*f, Opcode::Alloca), 0u);
  EXPECT_GE(count_op(*f, Opcode::Phi), 1u);
  EXPECT_EQ(count_op(*f, Opcode::Load), 0u);
  EXPECT_EQ(count_op(*f, Opcode::Store), 0u);
}

TEST(Mem2Reg, LeavesAddressTakenSlotsAlone) {
  auto m = mc::compile_to_ir(R"(
    int g(int* p) { return *p; }
    int f() {
      int x = 5;
      return g(&x);
    })", "t");
  Function* f = m->find_function("f");
  auto pass = make_mem2reg();
  pass->run(*f);
  // x's slot is address-taken: must survive.
  EXPECT_EQ(count_op(*f, Opcode::Alloca), 1u);
}

TEST(Mem2Reg, LeavesArraysAlone) {
  auto m = mc::compile_to_ir(R"(
    int f() {
      int a[4];
      a[0] = 1;
      return a[0];
    })", "t");
  Function* f = m->find_function("f");
  auto pass = make_mem2reg();
  pass->run(*f);
  EXPECT_EQ(count_op(*f, Opcode::Alloca), 1u);
}

TEST(Mem2Reg, LoopVariableGetsHeaderPhi) {
  auto m = mc::compile_to_ir(R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) s += i;
      return s;
    })", "t");
  Function* f = m->find_function("f");
  make_simplify_cfg()->run(*f);
  make_mem2reg()->run(*f);
  f->renumber();
  ir::verify_or_throw(*m);
  EXPECT_GE(count_op(*f, Opcode::Phi), 2u);  // s and i
}

TEST(ConstFold, FoldsArithmeticChains) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* x = b.add(m.const_i32(2), m.const_i32(3));
  Value* y = b.mul(x, m.const_i32(4));
  b.ret(y);
  f->renumber();

  make_const_fold()->run(*f);
  make_const_fold()->run(*f);  // second round folds the dependent mul
  make_dce()->run(*f);
  ASSERT_EQ(f->entry()->size(), 1u);
  auto* ret = static_cast<ir::RetInst*>(f->entry()->instr(0));
  EXPECT_EQ(static_cast<ir::ConstantInt*>(ret->value())->signed_value(), 20);
}

TEST(ConstFold, DoesNotFoldTrappingDivision) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* x = b.binary(Opcode::SDiv, m.const_i32(5), m.const_i32(0));
  b.ret(x);
  f->renumber();
  EXPECT_FALSE(make_const_fold()->run(*f));
  EXPECT_EQ(count_op(*f, Opcode::SDiv), 1u);
}

TEST(ConstFold, FoldsComparisonsAndCasts) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i64(), {}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* cmp = b.icmp(ir::ICmpPred::SLT, m.const_i32(-5), m.const_i32(3));
  Value* wide = b.cast(Opcode::ZExt, cmp, t.i64());
  Value* sext = b.cast(Opcode::SExt, m.const_int(t.i8(), 0xF0), t.i64());
  Value* sum = b.add(wide, sext);
  b.ret(sum);
  f->renumber();
  for (int i = 0; i < 3; ++i) make_const_fold()->run(*f);
  make_dce()->run(*f);
  auto* ret = static_cast<ir::RetInst*>(f->entry()->instr(0));
  // true(1) + sext(0xF0 as i8 = -16) = -15
  EXPECT_EQ(static_cast<ir::ConstantInt*>(ret->value())->signed_value(), -15);
}

TEST(InstCombine, IdentityAndAbsorbing) {
  Module m("t");
  auto& t = m.types();
  Function* f =
      m.create_function(t.func_type(t.i32(), {t.i32()}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* a0 = b.add(f->arg(0), m.const_i32(0));   // -> arg
  Value* m1 = b.mul(a0, m.const_i32(1));          // -> arg
  Value* x0 = b.binary(Opcode::Xor, m1, m1);      // -> 0
  Value* o = b.binary(Opcode::Or, x0, f->arg(0)); // -> arg
  b.ret(o);
  f->renumber();
  while (make_inst_combine()->run(*f) || make_dce()->run(*f)) {
  }
  ASSERT_EQ(f->entry()->size(), 1u);
  auto* ret = static_cast<ir::RetInst*>(f->entry()->instr(0));
  EXPECT_EQ(ret->value(), f->arg(0));
}

TEST(InstCombine, FoldsBoolZextRoundTrip) {
  // icmp ne (zext i1 x), 0 -> x   (the cmp-count-preserving fold)
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {t.i32()}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* then_bb = f->create_block("then");
  BasicBlock* else_bb = f->create_block("else");
  IRBuilder b(m);
  b.set_insert_point(entry);
  Value* flag = b.icmp(ir::ICmpPred::SGT, f->arg(0), m.const_i32(0));
  Value* wide = b.cast(Opcode::ZExt, flag, t.i32());
  Value* again = b.icmp(ir::ICmpPred::NE, wide, m.const_i32(0));
  b.cond_br(again, then_bb, else_bb);
  b.set_insert_point(then_bb);
  b.ret(m.const_i32(1));
  b.set_insert_point(else_bb);
  b.ret(m.const_i32(0));
  f->renumber();

  make_inst_combine()->run(*f);
  make_dce()->run(*f);
  EXPECT_EQ(count_op(*f, Opcode::ICmp), 1u);
  EXPECT_EQ(count_op(*f, Opcode::ZExt), 0u);
}

TEST(Cse, DeduplicatesPureExpressions) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {t.i32()}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* x = b.add(f->arg(0), m.const_i32(7));
  Value* y = b.add(f->arg(0), m.const_i32(7));  // duplicate
  Value* z = b.add(x, y);
  b.ret(z);
  f->renumber();
  EXPECT_TRUE(make_cse()->run(*f));
  make_dce()->run(*f);
  EXPECT_EQ(count_op(*f, Opcode::Add), 2u);  // one add + the sum
}

TEST(Cse, LoadReuseStopsAtStore) {
  auto m = mc::compile_to_ir(R"(
    int g;
    int f() {
      int a = g;
      int b = g;      // reusable
      g = a + b;
      int c = g;      // NOT reusable: store intervenes
      return c;
    })", "t");
  Function* f = m->find_function("f");
  make_simplify_cfg()->run(*f);
  make_mem2reg()->run(*f);
  const std::size_t loads_before = count_op(*f, Opcode::Load);
  make_cse()->run(*f);
  make_dce()->run(*f);
  const std::size_t loads_after = count_op(*f, Opcode::Load);
  EXPECT_EQ(loads_before, 3u);
  EXPECT_EQ(loads_after, 2u);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks) {
  auto m = mc::compile_to_ir(R"(
    int f() {
      return 1;
      return 2;
    })", "t");
  Function* f = m->find_function("f");
  const std::size_t before = f->num_blocks();
  make_simplify_cfg()->run(*f);
  EXPECT_LE(f->num_blocks(), before);
  EXPECT_EQ(f->num_blocks(), 1u);
}

TEST(SimplifyCfg, FoldsConstantBranches) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* live = f->create_block("live");
  BasicBlock* dead = f->create_block("dead");
  IRBuilder b(m);
  b.set_insert_point(entry);
  b.cond_br(m.const_i1(true), live, dead);
  b.set_insert_point(live);
  b.ret(m.const_i32(1));
  b.set_insert_point(dead);
  b.ret(m.const_i32(2));
  f->renumber();

  EXPECT_TRUE(make_simplify_cfg()->run(*f));
  f->renumber();
  ir::verify_or_throw(m);
  EXPECT_EQ(f->num_blocks(), 1u);  // entry merged with live, dead removed
}

TEST(Dce, RemovesDeadPhiCycles) {
  // Two phis feeding only each other across a loop must both die.
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* loop = f->create_block("loop");
  BasicBlock* exit = f->create_block("exit");
  IRBuilder b(m);
  b.set_insert_point(entry);
  b.br(loop);
  b.set_insert_point(loop);
  ir::PhiInst* p1 = b.phi(t.i32());
  ir::PhiInst* p2 = b.phi(t.i32());
  p1->add_incoming(m.const_i32(0), entry);
  p1->add_incoming(p2, loop);
  p2->add_incoming(m.const_i32(1), entry);
  p2->add_incoming(p1, loop);
  b.cond_br(m.const_i1(true), exit, loop);
  b.set_insert_point(exit);
  b.ret(m.const_i32(9));
  f->renumber();

  EXPECT_TRUE(make_dce()->run(*f));
  EXPECT_EQ(count_op(*f, Opcode::Phi), 0u);
}

TEST(Dce, KeepsSideEffectsAndTraps) {
  auto m = mc::compile_to_ir(R"(
    int f(int a, int b) {
      int unused = a / b;    // may trap: must not be removed
      print_int(1);          // side effect
      return 0;
    })", "t");
  Function* f = m->find_function("f");
  make_simplify_cfg()->run(*f);
  make_mem2reg()->run(*f);
  make_dce()->run(*f);
  EXPECT_EQ(count_op(*f, Opcode::SDiv), 1u);
  EXPECT_EQ(count_op(*f, Opcode::Call), 1u);
}

// ---------------------------------------------------------------------------
// Whole-pipeline semantic preservation.

class PipelinePreservation : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelinePreservation, OutputUnchangedByOptimization) {
  auto m = mc::compile_to_ir(GetParam(), "t");
  vm::Interpreter before(*m);
  const auto r0 = before.run();
  ASSERT_TRUE(r0.completed());

  const PipelineStats stats = run_standard_pipeline(*m);
  EXPECT_LE(stats.instructions_after, stats.instructions_before);

  vm::Interpreter after(*m);
  const auto r1 = after.run();
  ASSERT_TRUE(r1.completed());
  EXPECT_EQ(r0.output, r1.output);
  EXPECT_EQ(r0.exit_value, r1.exit_value);
  EXPECT_LE(r1.dynamic_instructions, r0.dynamic_instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PipelinePreservation,
    ::testing::Values(
        R"(int main() { int s=0; int i; for(i=0;i<50;i++) s+=i*i; print_int(s); return 0; })",
        R"(int fib(int n){ if(n<2) return n; return fib(n-1)+fib(n-2); }
           int main(){ print_int(fib(15)); return 0; })",
        R"(int main() { double x=1.0; int i; for(i=0;i<30;i++) x=x*1.1-0.05;
           print_double(x); return 0; })",
        R"(int g[20];
           int main(){ int i; for(i=0;i<20;i++) g[i]=i;
           int s=0; for(i=0;i<20;i+=2) s+=g[i]; print_int(s); return 0; })",
        R"(struct P { int x; int y; };
           int main(){ struct P p; p.x=1; p.y=2;
           int i; for(i=0;i<10;i++){ p.x+=p.y; p.y=p.x-p.y; }
           print_int(p.x*100+p.y); return 0; })",
        R"(int main(){ char* s = "hello world"; int n=0;
           while(s[n] != 0) n++; print_int(n); return 0; })",
        R"(int main(){ long h=1469598103934665603L; int i;
           for(i=0;i<64;i++){ h = (h ^ i) * 1099511628211L; }
           print_int(h & 0xffffffffL); return 0; })"));

TEST(Pipeline, IdempotentSecondRun) {
  auto m = mc::compile_to_ir(
      "int main(){ int i; int s=0; for(i=0;i<9;i++) s+=i; print_int(s); return 0; }",
      "t");
  run_standard_pipeline(*m);
  const std::size_t n1 = m->find_function("main")->num_instructions();
  run_standard_pipeline(*m);
  EXPECT_EQ(m->find_function("main")->num_instructions(), n1);
}

}  // namespace
}  // namespace faultlab::opt
