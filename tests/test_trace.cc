// Trace-layer tests: micro-op decode round-trips for both engines,
// armed-window side exits and hook re-arming, dispatch-mode equivalence
// (trap PCs, observation schedules, checkpoint resume mid-trace), and the
// trace-cache counters behind the manifest's dispatch columns.
#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "machine/dispatch.h"
#include "machine/runtime.h"
#include "vm/interpreter.h"
#include "vm/trace.h"
#include "x86/simulator.h"
#include "x86/trace.h"

namespace faultlab {
namespace {

using machine::DispatchMode;

/// Restores the process dispatch mode on scope exit.
struct DispatchModeGuard {
  DispatchMode saved = machine::dispatch_mode();
  ~DispatchModeGuard() { machine::set_dispatch_mode(saved); }
};

// Long enough (~100k dynamic instructions) that checkpoints, re-arm
// windows, and fast-path stretches all occur; calls + arrays + nested
// loops keep several basic blocks hot.
const char* kKernel = R"(
  int a[128];
  int mix(int x, int y) { return (x ^ y) + (x >> 1); }
  int main() {
    int i; int j; long s = 0;
    for (i = 0; i < 128; i++) a[i] = i * 7;
    for (j = 0; j < 60; j++)
      for (i = 0; i < 128; i++)
        s = s + mix(a[i], a[(i + j) & 127]);
    print_int(s);
    return 0;
  }
)";

// Divides by zero mid-run (i == 5), several iterations into the loop, so
// the trap fires from inside a decoded trace.
const char* kTrapKernel = R"(
  int main() {
    int i; long s = 0;
    for (i = 0; i < 10; i = i + 1)
      s = s + 100 / (5 - i);
    print_int(s);
    return 0;
  }
)";

TEST(VmTraceDecode, DecodesEveryAppBlockOneToOne) {
  for (const auto& b : apps::all_benchmarks()) {
    auto prog = driver::compile(b.source, b.name);
    machine::GlobalLayout layout(prog.module());
    vm::TraceCache cache(layout);
    for (const auto& fn : prog.module().functions()) {
      if (fn->blocks().empty()) continue;  // declarations have no traces
      vm::TraceFunction& tf = cache.function(*fn);
      for (const auto& bb : fn->blocks()) {
        vm::TraceBlock* tb = cache.block(tf, bb.get());
        ASSERT_NE(tb, nullptr)
            << b.name << "/" << fn->name() << ": block failed to decode";
        // The uop array is 1:1 with the block's instructions (phi runs
        // collapse into PhiGroup + Pad fillers), so interpreter PCs map
        // onto trace PCs without translation.
        EXPECT_EQ(tb->uops.size(), bb->size());
      }
    }
  }
}

TEST(X86TraceDecode, MirrorsEveryInstruction) {
  for (const auto& b : apps::all_benchmarks()) {
    auto prog = driver::compile(b.source, b.name);
    const x86::Program& p = prog.program();
    x86::XTrace trace(p);
    ASSERT_EQ(trace.uops.size(), p.code.size() + 1);
    EXPECT_EQ(trace.uops.back().op, x86::XOp::TrapFetch);
    for (std::size_t i = 0; i < p.code.size(); ++i) {
      const x86::Inst& inst = p.code[i];
      const x86::XUOp& u = trace.uops[i];
      EXPECT_EQ(static_cast<unsigned>(u.op), static_cast<unsigned>(inst.op));
      EXPECT_EQ(u.inst, &inst);
      switch (inst.op) {
        case x86::Op::Jmp:
        case x86::Op::Jcc:
        case x86::Op::Call:
          EXPECT_EQ(u.target_ok,
                    inst.target >= 0 &&
                        static_cast<std::size_t>(inst.target) < p.code.size());
          if (u.target_ok) {
            EXPECT_EQ(u.target, static_cast<std::size_t>(inst.target));
          }
          EXPECT_EQ(u.ret_addr, x86::Program::address_of_index(i + 1));
          break;
        case x86::Op::CallBuiltin:
          if (inst.target >= 0 &&
              static_cast<std::size_t>(inst.target) < p.builtins.size())
            EXPECT_EQ(u.sig,
                      &p.builtins[static_cast<std::size_t>(inst.target)]);
          else
            EXPECT_EQ(u.sig, nullptr);
          break;
        default:
          break;
      }
    }
  }
}

TEST(X86TraceDecode, InvalidBranchTargetDecodesAsNotOk) {
  x86::Program p;
  x86::Inst jmp;
  jmp.op = x86::Op::Jmp;
  jmp.target = 99;  // out of range for a 1-instruction program
  p.code.push_back(jmp);
  x86::XTrace trace(p);
  EXPECT_EQ(trace.uops[0].op, x86::XOp::Jmp);
  EXPECT_FALSE(trace.uops[0].target_ok);
  EXPECT_EQ(trace.uops[1].op, x86::XOp::TrapFetch);
}

TEST(DispatchCounters, X86TraceLifecycleFeedsGauge) {
  auto prog = driver::compile(kKernel, "t");
  const auto before = machine::dispatch_counters_snapshot();
  {
    x86::XTrace trace(prog.program());
    const auto during = machine::dispatch_counters_snapshot();
    EXPECT_EQ(during.trace_decodes, before.trace_decodes + 1);
    EXPECT_EQ(during.decoded_blocks, before.decoded_blocks + 1);
  }
  const auto after = machine::dispatch_counters_snapshot();
  EXPECT_EQ(after.decoded_blocks, before.decoded_blocks);
}

TEST(DispatchCounters, ThreadedVmRunDecodesHitsAndFoldsGauge) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "t");
  const auto before = machine::dispatch_counters_snapshot();
  {
    vm::Interpreter interp(prog.module());
    ASSERT_TRUE(interp.run("main").completed());
    const auto during = machine::dispatch_counters_snapshot();
    EXPECT_GT(during.trace_decodes, before.trace_decodes);
    EXPECT_GT(during.trace_hits, before.trace_hits);
    EXPECT_GT(during.decoded_blocks, before.decoded_blocks);
    // The resident cache decodes each block once: a second run must not
    // decode anything new.
    ASSERT_TRUE(interp.run("main").completed());
    const auto again = machine::dispatch_counters_snapshot();
    EXPECT_EQ(again.trace_decodes, during.trace_decodes);
    EXPECT_GT(again.trace_hits, during.trace_hits);
  }
  const auto after = machine::dispatch_counters_snapshot();
  EXPECT_EQ(after.decoded_blocks, before.decoded_blocks);
}

TEST(DispatchCounters, SwitchModeNeverTouchesTraces) {
  DispatchModeGuard guard;
  machine::set_dispatch_mode(DispatchMode::Switch);
  auto prog = driver::compile(kKernel, "t");
  const auto before = machine::dispatch_counters_snapshot();
  ASSERT_TRUE(prog.run_ir().completed());
  ASSERT_FALSE(prog.run_asm().trapped);
  const auto after = machine::dispatch_counters_snapshot();
  EXPECT_EQ(after.trace_decodes, before.trace_decodes);
  EXPECT_EQ(after.trace_hits, before.trace_hits);
}

TEST(DispatchEquiv, GoldenRunsMatchSwitchOnAllApps) {
  DispatchModeGuard guard;
  for (const auto& b : apps::all_benchmarks()) {
    auto prog = driver::compile(b.source, b.name);
    machine::set_dispatch_mode(DispatchMode::Switch);
    const vm::RunResult vs = prog.run_ir();
    const x86::SimResult xs = prog.run_asm();
    machine::set_dispatch_mode(DispatchMode::Threaded);
    const vm::RunResult vt = prog.run_ir();
    const x86::SimResult xt = prog.run_asm();
    EXPECT_EQ(vt.exit_value, vs.exit_value) << b.name;
    EXPECT_EQ(vt.dynamic_instructions, vs.dynamic_instructions) << b.name;
    EXPECT_EQ(vt.output, vs.output) << b.name;
    EXPECT_EQ(vt.trapped, vs.trapped) << b.name;
    EXPECT_EQ(xt.exit_value, xs.exit_value) << b.name;
    EXPECT_EQ(xt.dynamic_instructions, xs.dynamic_instructions) << b.name;
    EXPECT_EQ(xt.output, xs.output) << b.name;
    EXPECT_EQ(xt.trapped, xs.trapped) << b.name;
  }
}

TEST(DispatchEquiv, TrapPcExactOnBothEngines) {
  DispatchModeGuard guard;
  auto prog = driver::compile(kTrapKernel, "trap");
  machine::set_dispatch_mode(DispatchMode::Switch);
  const vm::RunResult vs = prog.run_ir();
  const x86::SimResult xs = prog.run_asm();
  machine::set_dispatch_mode(DispatchMode::Threaded);
  const vm::RunResult vt = prog.run_ir();
  const x86::SimResult xt = prog.run_asm();

  ASSERT_TRUE(vs.trapped);
  ASSERT_TRUE(vt.trapped);
  EXPECT_EQ(vt.trap, vs.trap);
  EXPECT_EQ(vt.trap_pc, vs.trap_pc);
  EXPECT_EQ(vt.trap_address, vs.trap_address);
  EXPECT_EQ(vt.dynamic_instructions, vs.dynamic_instructions);
  EXPECT_EQ(vt.output, vs.output);

  ASSERT_TRUE(xs.trapped);
  ASSERT_TRUE(xt.trapped);
  EXPECT_EQ(xt.trap, xs.trap);
  EXPECT_EQ(xt.trap_pc, xs.trap_pc);
  EXPECT_EQ(xt.trap_address, xs.trap_address);
  EXPECT_EQ(xt.dynamic_instructions, xs.dynamic_instructions);
  EXPECT_EQ(xt.output, xs.output);
}

/// Hook that starts dormant (fast path until `wake`), observes `window`
/// instructions, then detaches for good — the shape of an injection hook's
/// armed window, without any injection.
class WindowHook final : public vm::ExecHook {
 public:
  WindowHook(std::uint64_t wake, std::uint64_t window) : window_(window) {
    detach(wake);
  }
  void on_instruction(const ir::Instruction&) override {
    if (++seen_ == window_) detach();
  }
  std::uint64_t seen() const noexcept { return seen_; }

 private:
  std::uint64_t window_;
  std::uint64_t seen_ = 0;
};

TEST(DispatchEquiv, DormantHookRearmsAtExactInstruction) {
  DispatchModeGuard guard;
  auto prog = driver::compile(kKernel, "t");

  machine::set_dispatch_mode(DispatchMode::Switch);
  WindowHook slow_hook(1000, 500);
  const vm::RunResult vs = prog.run_ir(&slow_hook);
  ASSERT_TRUE(vs.completed());
  ASSERT_EQ(slow_hook.seen(), 500u);  // window fully observed

  machine::set_dispatch_mode(DispatchMode::Threaded);
  const auto before = machine::dispatch_counters_snapshot();
  WindowHook fast_hook(1000, 500);
  const vm::RunResult vt = prog.run_ir(&fast_hook);
  const auto after = machine::dispatch_counters_snapshot();

  // Identical observation schedule: the fast path must side-exit at the
  // re-arm boundary so the hook sees exactly the same 500 instructions...
  EXPECT_EQ(fast_hook.seen(), slow_hook.seen());
  EXPECT_EQ(vt.exit_value, vs.exit_value);
  EXPECT_EQ(vt.dynamic_instructions, vs.dynamic_instructions);
  EXPECT_EQ(vt.output, vs.output);
  // ...and the boundary crossings show up as trace invalidations.
  EXPECT_GT(after.trace_invalidations, before.trace_invalidations);
}

TEST(DispatchEquiv, CheckpointResumeMidTraceVm) {
  DispatchModeGuard guard;
  auto prog = driver::compile(kKernel, "t");
  // An odd stride lands resume points mid-block; the switch capture run is
  // the reference schedule.
  std::vector<vm::Snapshot> snaps;
  vm::RunLimits capture;
  capture.snapshot_stride = 997;
  capture.snapshot_sink = [&](vm::Snapshot&& s) {
    snaps.push_back(std::move(s));
  };
  machine::set_dispatch_mode(DispatchMode::Switch);
  const vm::RunResult full = prog.run_ir(nullptr, capture);
  ASSERT_TRUE(full.completed());
  ASSERT_GT(snaps.size(), 2u);

  // Threaded capture stops fast execution at each snapshot point: the
  // snapshot schedule must be position-identical.
  std::vector<std::uint64_t> threaded_at;
  vm::RunLimits recapture;
  recapture.snapshot_stride = 997;
  recapture.snapshot_sink = [&](vm::Snapshot&& s) {
    threaded_at.push_back(s.executed);
  };
  machine::set_dispatch_mode(DispatchMode::Threaded);
  ASSERT_TRUE(prog.run_ir(nullptr, recapture).completed());
  ASSERT_EQ(threaded_at.size(), snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i)
    EXPECT_EQ(threaded_at[i], snaps[i].executed) << "snapshot " << i;

  // Resuming from a mid-run snapshot replays the identical suffix in
  // either mode (side entry into the middle of a decoded block).
  const vm::Snapshot& mid = snaps[snaps.size() / 2];
  for (DispatchMode mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
    machine::set_dispatch_mode(mode);
    vm::Interpreter resumed(prog.module());
    const vm::RunResult r = resumed.run_from(mid);
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.exit_value, full.exit_value);
    EXPECT_EQ(r.dynamic_instructions, full.dynamic_instructions);
    EXPECT_EQ(r.output, full.output);
  }
}

TEST(DispatchEquiv, CheckpointResumeMidTraceSim) {
  DispatchModeGuard guard;
  auto prog = driver::compile(kKernel, "t");
  std::vector<x86::SimSnapshot> snaps;
  x86::SimLimits capture;
  capture.snapshot_stride = 997;
  capture.snapshot_sink = [&](x86::SimSnapshot&& s) {
    snaps.push_back(std::move(s));
  };
  machine::set_dispatch_mode(DispatchMode::Switch);
  const x86::SimResult full = prog.run_asm(nullptr, capture);
  ASSERT_FALSE(full.trapped);
  ASSERT_GT(snaps.size(), 2u);

  std::vector<std::uint64_t> threaded_at;
  x86::SimLimits recapture;
  recapture.snapshot_stride = 997;
  recapture.snapshot_sink = [&](x86::SimSnapshot&& s) {
    threaded_at.push_back(s.executed);
  };
  machine::set_dispatch_mode(DispatchMode::Threaded);
  ASSERT_FALSE(prog.run_asm(nullptr, recapture).trapped);
  ASSERT_EQ(threaded_at.size(), snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i)
    EXPECT_EQ(threaded_at[i], snaps[i].executed) << "snapshot " << i;

  const x86::SimSnapshot& mid = snaps[snaps.size() / 2];
  for (DispatchMode mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
    machine::set_dispatch_mode(mode);
    x86::Simulator resumed(prog.program());
    const x86::SimResult r = resumed.run_from(mid);
    EXPECT_FALSE(r.trapped);
    EXPECT_EQ(r.exit_value, full.exit_value);
    EXPECT_EQ(r.dynamic_instructions, full.dynamic_instructions);
    EXPECT_EQ(r.output, full.output);
  }
}

void expect_same_campaign(const fault::CampaignResult& a,
                          const fault::CampaignResult& b) {
  EXPECT_EQ(a.profiled_count, b.profiled_count);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.hang, b.hang);
  EXPECT_EQ(a.not_activated, b.not_activated);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    const fault::TrialRecord& x = a.trials[i];
    const fault::TrialRecord& y = b.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.dynamic_target, y.dynamic_target) << "trial " << i;
    EXPECT_EQ(x.bit, y.bit) << "trial " << i;
    EXPECT_EQ(x.static_site, y.static_site) << "trial " << i;
    EXPECT_EQ(x.injected, y.injected) << "trial " << i;
    EXPECT_EQ(x.trap_pc, y.trap_pc) << "trial " << i;
    EXPECT_EQ(x.inject_instruction, y.inject_instruction) << "trial " << i;
    EXPECT_EQ(x.total_instructions, y.total_instructions) << "trial " << i;
    EXPECT_EQ(x.instructions_after_injection(),
              y.instructions_after_injection())
        << "trial " << i;
  }
}

fault::CampaignResult run_cell(driver::CompiledProgram& prog, bool pinfi,
                               const fault::Model& model) {
  // Small stride so many trials resume from snapshots (run_from entering
  // mid-trace) while others run from scratch.
  const fault::CheckpointPolicy checkpoints{2000, true};
  fault::CampaignConfig cfg;
  cfg.app = "kernel";
  cfg.trials = 40;
  cfg.seed = 0x7e57;
  cfg.threads = 2;
  if (pinfi) {
    fault::PinfiEngine engine(prog.program(), {}, checkpoints, model);
    return fault::run_campaign(engine, cfg);
  }
  fault::LlfiEngine engine(prog.module(), {}, checkpoints, model);
  return fault::run_campaign(engine, cfg);
}

TEST(DispatchEquiv, CampaignRecordsMatchSwitchBothTools) {
  DispatchModeGuard guard;
  auto prog = driver::compile(kKernel, "t");
  for (bool pinfi : {false, true}) {
    machine::set_dispatch_mode(DispatchMode::Switch);
    const fault::CampaignResult sw = run_cell(prog, pinfi, {});
    machine::set_dispatch_mode(DispatchMode::Threaded);
    const fault::CampaignResult th = run_cell(prog, pinfi, {});
    expect_same_campaign(sw, th);
  }
}

TEST(DispatchEquiv, PersistentModelRearmsIdentically) {
  // Stuck-at faults keep the hook re-arming at every re-execution of the
  // armed site: the fast path must side-exit at every rearm_at boundary.
  DispatchModeGuard guard;
  auto prog = driver::compile(kKernel, "t");
  fault::Model model;
  model.kind = fault::FaultKind::Permanent;
  for (bool pinfi : {false, true}) {
    machine::set_dispatch_mode(DispatchMode::Switch);
    const fault::CampaignResult sw = run_cell(prog, pinfi, model);
    machine::set_dispatch_mode(DispatchMode::Threaded);
    const fault::CampaignResult th = run_cell(prog, pinfi, model);
    expect_same_campaign(sw, th);
  }
}

}  // namespace
}  // namespace faultlab
