// Campaign monitor tests: rate window behaviour, per-cell tallies and
// Wilson-CI convergence, the stall watchdog (via the test clock seam),
// atomic status snapshots, scheduler integration (monitor on/off result
// equivalence, manifest convergence columns), and the always-on
// fault::PhaseStats accounting the ETA model leans on.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/scheduler.h"
#include "obs/monitor.h"
#include "support/stats.h"
#include "support/timer.h"

namespace faultlab::obs {
namespace {

TEST(RateWindowTest, EmptyAndSingleSample) {
  RateWindow w;
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
  // One sample: only the since-start average is available.
  w.sample(2.0, 10);
  EXPECT_EQ(w.samples(), 1u);
  EXPECT_DOUBLE_EQ(w.rate(), 5.0);
}

TEST(RateWindowTest, WindowRateTracksRecentSamplesOnly) {
  RateWindow w;
  // Slow warm-up: 10 trials over the first 10 seconds (1/s)...
  w.sample(0.0, 0);
  w.sample(10.0, 10);
  EXPECT_DOUBLE_EQ(w.rate(), 1.0);
  // ...then steady state at 100/s. Once the slow points rotate out of the
  // 32-sample ring, the window rate converges to the recent rate; the
  // since-start average never would.
  for (int i = 1; i <= 64; ++i)
    w.sample(10.0 + i, 10 + static_cast<std::uint64_t>(i) * 100);
  EXPECT_DOUBLE_EQ(w.rate(), 100.0);
}

TEST(RateWindowTest, DropsNonIncreasingTimestamps) {
  RateWindow w;
  w.sample(1.0, 5);
  w.sample(1.0, 9);   // same timestamp: dropped
  w.sample(0.5, 12);  // going backwards: dropped
  EXPECT_EQ(w.samples(), 1u);
  w.sample(2.0, 15);
  EXPECT_EQ(w.samples(), 2u);
  EXPECT_DOUBLE_EQ(w.rate(), 10.0);  // (15 - 5) / (2.0 - 1.0)
}

TEST(MonitorOptionsTest, FromEnvParsesAndRejects) {
  ::setenv("FAULTLAB_CI_TARGET", "0.02", 1);
  ::setenv("FAULTLAB_WATCHDOG", "4", 1);
  ::setenv("FAULTLAB_STATUS_INTERVAL", "250", 1);
  ::setenv("FAULTLAB_STATUS", "/tmp/s.json", 1);
  MonitorOptions o = MonitorOptions::from_env();
  EXPECT_DOUBLE_EQ(o.ci_target, 0.02);
  EXPECT_DOUBLE_EQ(o.watchdog_factor, 4.0);
  EXPECT_EQ(o.status_interval_ms, 250u);
  EXPECT_EQ(o.status_path, "/tmp/s.json");
  // "0" means off, like the other FAULTLAB_* file switches; garbage knobs
  // warn and keep their defaults.
  ::setenv("FAULTLAB_STATUS", "0", 1);
  ::setenv("FAULTLAB_CI_TARGET", "2.0", 1);   // above 1: rejected
  ::setenv("FAULTLAB_WATCHDOG", "zero", 1);   // not a number
  ::setenv("FAULTLAB_STATUS_INTERVAL", "0", 1);  // below min 1
  o = MonitorOptions::from_env();
  EXPECT_TRUE(o.status_path.empty());
  EXPECT_DOUBLE_EQ(o.ci_target, 0.05);
  EXPECT_DOUBLE_EQ(o.watchdog_factor, 8.0);
  EXPECT_EQ(o.status_interval_ms, 1000u);
  ::unsetenv("FAULTLAB_CI_TARGET");
  ::unsetenv("FAULTLAB_WATCHDOG");
  ::unsetenv("FAULTLAB_STATUS_INTERVAL");
  ::unsetenv("FAULTLAB_STATUS");
}

TEST(CampaignMonitorTest, TalliesAndConvergence) {
  MonitorOptions options;
  options.ci_target = 0.05;
  CampaignMonitor monitor(options, /*workers=*/2);
  const std::size_t big = monitor.add_cell("mcf", "llfi", "all", "transient",
                                           /*planned_trials=*/200);
  const std::size_t small = monitor.add_cell("mcf", "pinfi", "all",
                                             "transient", 200);
  // 100 activated trials, all crashes: Wilson 95% half-width ~0.018 < 0.05.
  for (int i = 0; i < 100; ++i)
    monitor.record(0, big, MonitorOutcome::Crash, 1.0);
  // 10 activated trials cannot converge at a 0.05 target.
  for (int i = 0; i < 8; ++i)
    monitor.record(1, small, MonitorOutcome::Benign, 2.0);
  monitor.record(1, small, MonitorOutcome::SDC, 2.0);
  monitor.record(1, small, MonitorOutcome::NotActivated, 2.0);

  const MonitorCellStatus b = monitor.cell_status(big);
  EXPECT_EQ(b.done, 100u);
  EXPECT_EQ(b.activated, 100u);
  EXPECT_DOUBLE_EQ(b.crash_share, 1.0);
  EXPECT_GT(b.ci_lo, 0.9);
  EXPECT_LE(b.ci_hi, 1.0);
  EXPECT_LT(b.ci_halfwidth, 0.05);
  EXPECT_TRUE(b.converged);
  EXPECT_EQ(b.in_flight, 0u);
  EXPECT_GT(b.p50_ms, 0.0);
  EXPECT_GE(b.p99_ms, b.p50_ms);

  const MonitorCellStatus s = monitor.cell_status(small);
  EXPECT_EQ(s.done, 10u);
  EXPECT_EQ(s.activated, 9u);  // NotActivated excluded
  EXPECT_EQ(s.outcomes[static_cast<std::size_t>(MonitorOutcome::SDC)], 1u);
  EXPECT_DOUBLE_EQ(s.crash_share, 0.0);
  EXPECT_FALSE(s.converged);

  const MonitorSummary sum = monitor.summary();
  EXPECT_EQ(sum.trials_done, 110u);
  EXPECT_EQ(sum.trials_total, 400u);
  EXPECT_EQ(sum.cells, 2u);
  EXPECT_EQ(sum.converged_cells, 1u);
}

TEST(CampaignMonitorTest, WatchdogFlagsStalledTrialOnce) {
  MonitorOptions options;
  options.watchdog_factor = 8.0;
  CampaignMonitor monitor(options, /*workers=*/2);
  const std::size_t cell =
      monitor.add_cell("mcf", "llfi", "all", "transient", 100);
  // Establish a trustworthy p99 (>= kWatchdogMinSamples completions at
  // ~1 ms each), then leave one trial in flight.
  for (std::uint64_t i = 0; i < CampaignMonitor::kWatchdogMinSamples; ++i)
    monitor.record(0, cell, MonitorOutcome::Benign, 1.0);
  monitor.begin_trial(0, cell);
  monitor.poll();
  EXPECT_EQ(monitor.summary().watchdog_flags, 0u);  // young trial: quiet

  // Age the in-flight trial by 10 s — far past 8 x p99(~1 ms).
  monitor.advance_clock_for_test(10u * 1000 * 1000);
  monitor.poll();
  EXPECT_EQ(monitor.summary().watchdog_flags, 1u);
  EXPECT_EQ(monitor.cell_status(cell).watchdog_flags, 1u);
  const std::vector<MonitorWorkerStatus> workers = monitor.worker_status();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_TRUE(workers[0].running);
  EXPECT_TRUE(workers[0].flagged);
  EXPECT_FALSE(workers[1].running);

  // Re-scanning must not double-flag the same in-flight trial.
  monitor.poll();
  monitor.poll();
  EXPECT_EQ(monitor.summary().watchdog_flags, 1u);

  // Completion clears the slot; the flag tally stays as history.
  monitor.record(0, cell, MonitorOutcome::Hang, 10000.0);
  EXPECT_FALSE(monitor.worker_status()[0].running);
  EXPECT_EQ(monitor.summary().watchdog_flags, 1u);
  EXPECT_EQ(monitor.cell_status(cell).in_flight, 0u);
}

TEST(CampaignMonitorTest, StatusJsonCarriesSchemaAndCells) {
  MonitorOptions options;
  CampaignMonitor monitor(options, 1);
  monitor.add_cell("mcf", "llfi", "arithmetic", "transient", 50);
  for (int i = 0; i < 5; ++i)
    monitor.record(0, 0, MonitorOutcome::Crash, 1.0);
  const std::string doc = monitor.status_json(/*final_snapshot=*/false);
  EXPECT_NE(doc.find("\"schema\": \"faultlab-status\""), std::string::npos);
  EXPECT_NE(doc.find("\"v\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"final\": false"), std::string::npos);
  EXPECT_NE(doc.find("\"category\": \"arithmetic\""), std::string::npos);
  EXPECT_NE(doc.find("\"crash\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"trials_done\": 5"), std::string::npos);
}

TEST(CampaignMonitorTest, SnapshotFilePublishedAtomically) {
  const std::string path =
      ::testing::TempDir() + "faultlab_monitor_snapshot.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  {
    MonitorOptions options;
    options.status_path = path;
    options.status_interval_ms = 10;
    CampaignMonitor monitor(options, 1);
    monitor.add_cell("mcf", "llfi", "all", "transient", 3);
    monitor.start();
    for (int i = 0; i < 3; ++i)
      monitor.record(0, 0, MonitorOutcome::Benign, 1.0);
    monitor.finish();
    EXPECT_GE(monitor.summary().status_writes, 1u);
  }
  // The final snapshot exists, the temp file does not (rename published
  // it), and the document is marked final with the full tally.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"final\": true"), std::string::npos);
  EXPECT_NE(content.str().find("\"trials_done\": 3"), std::string::npos);
  std::remove(path.c_str());
}

/// A small program with work in every category (mirrors test_scheduler.cc).
const char* kMonitorProgram = R"(
  int data[32];
  double weights[32];
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      data[i] = i * 7 + 3;
      weights[i] = (double)i * 0.5;
    }
    long acc = 0;
    double wacc = 0.0;
    for (i = 0; i < 32; i++) {
      if (data[i] % 3 == 0) acc += data[i];
      wacc = wacc + weights[i] * 1.25;
    }
    print_int(acc);
    print_int((long)(wacc * 100.0));
    return 0;
  }
)";

std::vector<fault::CampaignResult> run_monitored_grid(
    fault::LlfiEngine& llfi, fault::PinfiEngine& pinfi, bool monitored,
    fault::RunManifest* manifest_out, double ci_target = 0.05) {
  fault::SchedulerOptions options;
  options.threads = 2;
  if (monitored) {
    MonitorOptions mopts;
    mopts.ci_target = ci_target;
    options.monitor = mopts;
  }
  fault::CampaignScheduler scheduler(options);
  for (ir::Category c : {ir::Category::All, ir::Category::Arithmetic}) {
    fault::CampaignConfig cfg;
    cfg.app = "grid";
    cfg.category = c;
    cfg.trials = 16;
    cfg.seed = 7;
    scheduler.add(llfi, cfg);
    scheduler.add(pinfi, cfg);
  }
  std::vector<fault::CampaignResult> results = scheduler.run();
  if (manifest_out != nullptr) *manifest_out = scheduler.manifest();
  return results;
}

TEST(MonitorSchedulerTest, ResultsIdenticalWithMonitorOnAndOff) {
  auto prog = driver::compile(kMonitorProgram, "grid");
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());
  fault::RunManifest with_monitor;
  fault::RunManifest without_monitor;
  const auto monitored =
      run_monitored_grid(llfi, pinfi, true, &with_monitor);
  const auto plain =
      run_monitored_grid(llfi, pinfi, false, &without_monitor);
  ASSERT_EQ(monitored.size(), plain.size());
  for (std::size_t i = 0; i < monitored.size(); ++i) {
    ASSERT_EQ(monitored[i].trials.size(), plain[i].trials.size());
    for (std::size_t t = 0; t < monitored[i].trials.size(); ++t) {
      EXPECT_EQ(monitored[i].trials[t].outcome, plain[i].trials[t].outcome)
          << "campaign " << i << " trial " << t;
      EXPECT_EQ(monitored[i].trials[t].bit, plain[i].trials[t].bit);
    }
  }
  // Convergence columns come from the final tallies, not the monitor, so
  // both manifests agree (watchdog flags can only exist with the monitor,
  // and no trial here runs long enough to trip one).
  ASSERT_EQ(with_monitor.campaigns.size(), without_monitor.campaigns.size());
  for (std::size_t i = 0; i < with_monitor.campaigns.size(); ++i) {
    EXPECT_EQ(with_monitor.campaigns[i].converged,
              without_monitor.campaigns[i].converged);
    EXPECT_DOUBLE_EQ(with_monitor.campaigns[i].ci_halfwidth,
                     without_monitor.campaigns[i].ci_halfwidth);
    EXPECT_EQ(with_monitor.campaigns[i].watchdog_flags, 0u);
  }
}

TEST(MonitorSchedulerTest, ManifestConvergenceMatchesWilson) {
  auto prog = driver::compile(kMonitorProgram, "grid");
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());
  fault::RunManifest manifest;
  run_monitored_grid(llfi, pinfi, true, &manifest,
                     /*ci_target=*/0.5);  // loose: tiny campaigns converge
  EXPECT_DOUBLE_EQ(manifest.ci_target, 0.5);
  for (const fault::CampaignTiming& t : manifest.campaigns) {
    const Proportion crash{t.crash, t.activated};
    const Proportion::Interval ci = crash.wilson95();
    EXPECT_NEAR(t.ci_halfwidth, (ci.hi - ci.lo) / 2.0, 1e-12);
    EXPECT_EQ(t.converged,
              t.activated > 0 && t.ci_halfwidth <= manifest.ci_target);
  }
  // The CSV rendering carries the new columns.
  const std::string csv = fault::manifest_csv(manifest).to_string();
  EXPECT_NE(csv.find("converged"), std::string::npos);
  EXPECT_NE(csv.find("ci_halfwidth"), std::string::npos);
  EXPECT_NE(csv.find("watchdog_flags"), std::string::npos);
  EXPECT_NE(csv.find("ci_target"), std::string::npos);
}

// ---- fault::PhaseStats coverage (previously only surfaced in benches) ----

fault::PhaseStats run_phase_campaign(fault::InjectorEngine& engine,
                                     std::size_t threads,
                                     double* wall_out) {
  fault::SchedulerOptions options;
  options.threads = threads;
  fault::CampaignScheduler scheduler(options);
  fault::CampaignConfig cfg;
  cfg.app = "grid";
  cfg.category = ir::Category::All;
  cfg.trials = 24;
  cfg.seed = 13;
  scheduler.add(engine, cfg);
  WallTimer timer;
  scheduler.run();
  if (wall_out != nullptr) *wall_out = timer.seconds();
  return engine.phase_stats();
}

TEST(PhaseStatsTest, NonNegativeAndMonotonicAcrossRuns) {
  auto prog = driver::compile(kMonitorProgram, "grid");
  fault::LlfiEngine llfi(prog.module());
  double wall = 0.0;
  const fault::PhaseStats first = run_phase_campaign(llfi, 1, &wall);
  EXPECT_GE(first.restore_seconds, 0.0);
  EXPECT_GE(first.execute_seconds, 0.0);
  EXPECT_GE(first.classify_seconds, 0.0);
  EXPECT_GT(first.execute_seconds, 0.0);  // trials definitely executed
  // Phase clocks are cumulative per engine: a second campaign only adds.
  const fault::PhaseStats second = run_phase_campaign(llfi, 1, &wall);
  EXPECT_GE(second.restore_seconds, first.restore_seconds);
  EXPECT_GE(second.execute_seconds, first.execute_seconds);
  EXPECT_GE(second.classify_seconds, first.classify_seconds);
}

TEST(PhaseStatsTest, BoundedByWallTimeAcrossThreads) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto prog = driver::compile(kMonitorProgram, "grid");
    fault::LlfiEngine llfi(prog.module());
    fault::PinfiEngine pinfi(prog.program());
    for (fault::InjectorEngine* engine :
         {static_cast<fault::InjectorEngine*>(&llfi),
          static_cast<fault::InjectorEngine*>(&pinfi)}) {
      double wall = 0.0;
      const fault::PhaseStats stats =
          run_phase_campaign(*engine, threads, &wall);
      const double busy = stats.restore_seconds + stats.execute_seconds +
                          stats.classify_seconds;
      // N workers can accumulate at most N seconds of phase time per wall
      // second; 1.25 covers clock-read granularity at these tiny scales.
      EXPECT_LE(busy,
                wall * static_cast<double>(threads) * 1.25 + 0.05)
          << engine->tool_name() << " with " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace faultlab::obs
