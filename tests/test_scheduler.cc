// Campaign scheduler tests: grid determinism across thread counts,
// single-pass profiling equivalence, exception propagation from trial
// workers, manifest contents, and FAULTLAB_TRIALS parsing.
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/scheduler.h"

namespace faultlab::fault {
namespace {

/// A small program with work in every category.
const char* kGridProgram = R"(
  int data[32];
  double weights[32];
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      data[i] = i * 7 + 3;
      weights[i] = (double)i * 0.5;
    }
    long acc = 0;
    double wacc = 0.0;
    for (i = 0; i < 32; i++) {
      if (data[i] % 3 == 0) acc += data[i];
      wacc = wacc + weights[i] * 1.25;
    }
    print_int(acc);
    print_int((long)(wacc * 100.0));
    return 0;
  }
)";

void expect_same_records(const std::vector<TrialRecord>& a,
                         const std::vector<TrialRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "trial " << i;
    EXPECT_EQ(a[i].dynamic_target, b[i].dynamic_target) << "trial " << i;
    EXPECT_EQ(a[i].bit, b[i].bit) << "trial " << i;
    EXPECT_EQ(a[i].static_site, b[i].static_site) << "trial " << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << "trial " << i;
  }
}

std::vector<CampaignResult> run_grid(LlfiEngine& llfi, PinfiEngine& pinfi,
                                     std::size_t threads) {
  SchedulerOptions options;
  options.threads = threads;
  CampaignScheduler scheduler(options);
  for (ir::Category c :
       {ir::Category::All, ir::Category::Arithmetic, ir::Category::Load}) {
    CampaignConfig cfg;
    cfg.app = "grid";
    cfg.category = c;
    cfg.trials = 12;
    cfg.seed = 99;
    scheduler.add(llfi, cfg);
    scheduler.add(pinfi, cfg);
  }
  return scheduler.run();
}

TEST(Scheduler, GridDeterministicAcrossThreadCounts) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  const std::vector<CampaignResult> serial = run_grid(llfi, pinfi, 1);
  const std::vector<CampaignResult> parallel = run_grid(llfi, pinfi, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].app, parallel[i].app);
    EXPECT_EQ(serial[i].tool, parallel[i].tool);
    EXPECT_EQ(serial[i].category, parallel[i].category);
    EXPECT_EQ(serial[i].profiled_count, parallel[i].profiled_count);
    EXPECT_EQ(serial[i].crash, parallel[i].crash);
    EXPECT_EQ(serial[i].sdc, parallel[i].sdc);
    EXPECT_EQ(serial[i].benign, parallel[i].benign);
    EXPECT_EQ(serial[i].hang, parallel[i].hang);
    EXPECT_EQ(serial[i].not_activated, parallel[i].not_activated);
    EXPECT_EQ(serial[i].injected_trials, parallel[i].injected_trials);
    expect_same_records(serial[i].trials, parallel[i].trials);
  }
}

TEST(Scheduler, MatchesRunCampaignCellByCell) {
  // The scheduler must be a pure orchestration change: each grid cell's
  // records equal what the single-campaign wrapper produces.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  const std::vector<CampaignResult> grid = run_grid(llfi, pinfi, 2);
  for (const CampaignResult& cell : grid) {
    CampaignConfig cfg;
    cfg.app = cell.app;
    cfg.category = cell.category;
    cfg.trials = 12;
    cfg.seed = 99;
    cfg.threads = 1;
    InjectorEngine& engine =
        cell.tool == "LLFI" ? static_cast<InjectorEngine&>(llfi) : pinfi;
    const CampaignResult solo = run_campaign(engine, cfg);
    EXPECT_EQ(solo.profiled_count, cell.profiled_count);
    expect_same_records(solo.trials, cell.trials);
  }
}

TEST(Scheduler, CheckpointedMatchesDirectCellByCellAtAnyThreadCount) {
  // The acceptance bar for checkpoint/restore: resuming trials from
  // mid-run snapshots (at a deliberately dense stride) must reproduce the
  // direct-execution records cell by cell, for 1, 2, and 4 workers.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi_direct(prog.module(), {}, {0, /*enabled=*/false});
  PinfiEngine pinfi_direct(prog.program(), {}, {0, /*enabled=*/false});
  const std::vector<CampaignResult> direct =
      run_grid(llfi_direct, pinfi_direct, 1);
  EXPECT_EQ(llfi_direct.checkpoint_stats().restored_trials, 0u);
  EXPECT_EQ(pinfi_direct.checkpoint_stats().restored_trials, 0u);

  for (std::size_t threads : {1u, 2u, 4u}) {
    LlfiEngine llfi(prog.module(), {}, {/*stride=*/500, true});
    PinfiEngine pinfi(prog.program(), {}, {/*stride=*/500, true});
    const std::vector<CampaignResult> checkpointed =
        run_grid(llfi, pinfi, threads);
    ASSERT_EQ(checkpointed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(checkpointed[i].profiled_count, direct[i].profiled_count);
      EXPECT_EQ(checkpointed[i].crash, direct[i].crash);
      EXPECT_EQ(checkpointed[i].sdc, direct[i].sdc);
      EXPECT_EQ(checkpointed[i].benign, direct[i].benign);
      EXPECT_EQ(checkpointed[i].hang, direct[i].hang);
      EXPECT_EQ(checkpointed[i].not_activated, direct[i].not_activated);
      expect_same_records(checkpointed[i].trials, direct[i].trials);
    }
    // The dense stride guarantees snapshots exist and most trials resume.
    const CheckpointStats ls = llfi.checkpoint_stats();
    const CheckpointStats ps = pinfi.checkpoint_stats();
    EXPECT_GT(ls.snapshots, 0u) << threads << " threads";
    EXPECT_GT(ps.snapshots, 0u) << threads << " threads";
    EXPECT_GT(ls.restored_trials, 0u) << threads << " threads";
    EXPECT_GT(ps.restored_trials, 0u) << threads << " threads";
    EXPECT_GT(ls.skipped_instructions, 0u);
    EXPECT_GT(ps.skipped_instructions, 0u);
  }
}

class CheckpointEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("FAULTLAB_CHECKPOINTS");
    unsetenv("FAULTLAB_SNAPSHOT_STRIDE");
  }
};

TEST_F(CheckpointEnv, PolicyParsesEnvironment) {
  unsetenv("FAULTLAB_CHECKPOINTS");
  unsetenv("FAULTLAB_SNAPSHOT_STRIDE");
  CheckpointPolicy p = CheckpointPolicy::from_env();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.stride, 0u);

  setenv("FAULTLAB_CHECKPOINTS", "0", 1);
  EXPECT_FALSE(CheckpointPolicy::from_env().enabled);
  setenv("FAULTLAB_CHECKPOINTS", "junk", 1);  // warns, falls back to on
  EXPECT_TRUE(CheckpointPolicy::from_env().enabled);

  setenv("FAULTLAB_SNAPSHOT_STRIDE", "12345", 1);
  EXPECT_EQ(CheckpointPolicy::from_env().stride, 12345u);
  setenv("FAULTLAB_SNAPSHOT_STRIDE", "-3", 1);  // warns, falls back to auto
  EXPECT_EQ(CheckpointPolicy::from_env().stride, 0u);
}

TEST_F(CheckpointEnv, EffectiveStrideSelection) {
  CheckpointPolicy p;
  p.enabled = false;
  EXPECT_EQ(p.effective_stride(1'000'000), 0u);  // disabled -> no snapshots
  p.enabled = true;
  p.stride = 777;
  EXPECT_EQ(p.effective_stride(1'000'000), 777u);  // explicit wins
  p.stride = 0;
  // Automatic: golden length over kAutoWindows, floored at kMinStride.
  EXPECT_EQ(p.effective_stride(64 * 50'000), 50'000u);
  EXPECT_EQ(p.effective_stride(1'000), CheckpointPolicy::kMinStride);
}

TEST(Scheduler, ProfileAllMatchesPerCategoryProfile) {
  for (const char* name : {"mcf", "libquantum"}) {
    auto prog = driver::compile(apps::benchmark(name).source, name);
    LlfiEngine llfi(prog.module());
    PinfiEngine pinfi(prog.program());
    const CategoryCounts lcounts = llfi.profile_all();
    const CategoryCounts pcounts = pinfi.profile_all();
    for (ir::Category c : ir::kAllCategories) {
      EXPECT_EQ(lcounts[c], llfi.profile(c))
          << name << " LLFI " << ir::category_name(c);
      EXPECT_EQ(pcounts[c], pinfi.profile(c))
          << name << " PINFI " << ir::category_name(c);
    }
  }
}

/// Engine whose inject() always throws — the std::terminate repro.
class ThrowingEngine final : public InjectorEngine {
 public:
  const char* tool_name() const noexcept override { return "MOCK"; }
  std::uint64_t profile(ir::Category) override { return 8; }
  TrialRecord inject(ir::Category, std::uint64_t, Rng&) override {
    throw std::runtime_error("injector exploded");
  }
  const std::string& golden_output() const noexcept override {
    return golden_;
  }
  std::uint64_t golden_instructions() const noexcept override { return 1; }

 private:
  std::string golden_;
};

TEST(Scheduler, ThrowingEngineSurfacesAsCampaignError) {
  ThrowingEngine engine;
  CampaignConfig cfg;
  cfg.app = "boomapp";
  cfg.category = ir::Category::All;
  cfg.trials = 6;
  cfg.threads = 4;
  try {
    run_campaign(engine, cfg);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.app(), "boomapp");
    EXPECT_EQ(e.tool(), "MOCK");
    EXPECT_EQ(e.category(), ir::Category::All);
    EXPECT_NE(std::string(e.what()).find("boomapp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injector exploded"),
              std::string::npos);
    ASSERT_NE(e.cause(), nullptr);
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
}

TEST(Scheduler, ThrowingCampaignInAGridStillThrows) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  ThrowingEngine bad;
  CampaignScheduler scheduler;
  CampaignConfig good;
  good.app = "grid";
  good.category = ir::Category::All;
  good.trials = 4;
  scheduler.add(llfi, good);
  CampaignConfig boom;
  boom.app = "boomapp";
  boom.category = ir::Category::Cmp;
  boom.trials = 4;
  scheduler.add(bad, boom);
  EXPECT_THROW(scheduler.run(), CampaignError);
}

TEST(Scheduler, ManifestRecordsTimingsAndCounters) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  SchedulerOptions options;
  options.threads = 2;
  std::size_t progress_calls = 0;
  options.progress = [&](const SchedulerProgress& p) {
    if (p.completed != nullptr) ++progress_calls;
  };
  CampaignScheduler scheduler(options);
  CampaignConfig cfg;
  cfg.app = "grid";
  cfg.category = ir::Category::All;
  cfg.trials = 10;
  scheduler.add(llfi, cfg);
  scheduler.add(pinfi, cfg);
  const std::vector<CampaignResult> results = scheduler.run();

  const RunManifest& m = scheduler.manifest();
  EXPECT_EQ(m.threads, 2u);
  EXPECT_GE(m.wall_seconds, 0.0);
  EXPECT_GE(m.profile_seconds, 0.0);
  ASSERT_EQ(m.campaigns.size(), 2u);
  EXPECT_EQ(progress_calls, 2u);
  for (std::size_t i = 0; i < m.campaigns.size(); ++i) {
    EXPECT_EQ(m.campaigns[i].app, results[i].app);
    EXPECT_EQ(m.campaigns[i].tool, results[i].tool);
    EXPECT_EQ(m.campaigns[i].trials, results[i].trials.size());
    EXPECT_EQ(m.campaigns[i].injected, results[i].injected_trials);
    EXPECT_EQ(m.campaigns[i].activated, results[i].activated());
    EXPECT_GT(m.campaigns[i].wall_seconds, 0.0);
  }

  const std::string csv = manifest_csv(m).to_string();
  EXPECT_NE(csv.find("trials_per_second"), std::string::npos);
  EXPECT_NE(csv.find("grid,LLFI,all"), std::string::npos);
  EXPECT_NE(csv.find("grid,PINFI,all"), std::string::npos);
}

TEST(Scheduler, EmptyAndZeroTrialCampaigns) {
  CampaignScheduler empty;
  EXPECT_TRUE(empty.run().empty());

  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  CampaignScheduler scheduler;
  CampaignConfig cfg;
  cfg.app = "grid";
  cfg.category = ir::Category::All;
  cfg.trials = 0;
  scheduler.add(llfi, cfg);
  const std::vector<CampaignResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].profiled_count, 0u);
  EXPECT_TRUE(results[0].trials.empty());
  EXPECT_EQ(results[0].activated(), 0u);
}

class DefaultTrialsEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("FAULTLAB_TRIALS"); }
  std::size_t with(const char* value) {
    setenv("FAULTLAB_TRIALS", value, 1);
    return default_trials();
  }
};

TEST_F(DefaultTrialsEnv, ParsesAndRejects) {
  unsetenv("FAULTLAB_TRIALS");
  EXPECT_EQ(default_trials(), 150u);          // unset -> default
  EXPECT_EQ(with("200"), 200u);               // plain number
  EXPECT_EQ(with("37abc"), 150u);             // trailing garbage rejected
  EXPECT_EQ(with("abc"), 150u);               // non-numeric rejected
  EXPECT_EQ(with(""), 150u);                  // empty rejected
  EXPECT_EQ(with("-5"), 150u);                // non-positive rejected
  EXPECT_EQ(with("0"), 150u);                 // zero rejected
  EXPECT_EQ(with("99999999999999999999999"), 150u);  // overflow rejected
}

}  // namespace
}  // namespace faultlab::fault
