// Campaign scheduler tests: grid determinism across thread counts,
// single-pass profiling equivalence, exception propagation from trial
// workers, manifest contents, and FAULTLAB_TRIALS parsing.
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/checkpoint_store.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/scheduler.h"

namespace faultlab::fault {
namespace {

/// A small program with work in every category.
const char* kGridProgram = R"(
  int data[32];
  double weights[32];
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      data[i] = i * 7 + 3;
      weights[i] = (double)i * 0.5;
    }
    long acc = 0;
    double wacc = 0.0;
    for (i = 0; i < 32; i++) {
      if (data[i] % 3 == 0) acc += data[i];
      wacc = wacc + weights[i] * 1.25;
    }
    print_int(acc);
    print_int((long)(wacc * 100.0));
    return 0;
  }
)";

void expect_same_records(const std::vector<TrialRecord>& a,
                         const std::vector<TrialRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "trial " << i;
    EXPECT_EQ(a[i].dynamic_target, b[i].dynamic_target) << "trial " << i;
    EXPECT_EQ(a[i].bit, b[i].bit) << "trial " << i;
    EXPECT_EQ(a[i].static_site, b[i].static_site) << "trial " << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << "trial " << i;
  }
}

std::vector<CampaignResult> run_grid(LlfiEngine& llfi, PinfiEngine& pinfi,
                                     std::size_t threads) {
  SchedulerOptions options;
  options.threads = threads;
  CampaignScheduler scheduler(options);
  for (ir::Category c :
       {ir::Category::All, ir::Category::Arithmetic, ir::Category::Load}) {
    CampaignConfig cfg;
    cfg.app = "grid";
    cfg.category = c;
    cfg.trials = 12;
    cfg.seed = 99;
    scheduler.add(llfi, cfg);
    scheduler.add(pinfi, cfg);
  }
  return scheduler.run();
}

TEST(Scheduler, GridDeterministicAcrossThreadCounts) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  const std::vector<CampaignResult> serial = run_grid(llfi, pinfi, 1);
  const std::vector<CampaignResult> parallel = run_grid(llfi, pinfi, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].app, parallel[i].app);
    EXPECT_EQ(serial[i].tool, parallel[i].tool);
    EXPECT_EQ(serial[i].category, parallel[i].category);
    EXPECT_EQ(serial[i].profiled_count, parallel[i].profiled_count);
    EXPECT_EQ(serial[i].crash, parallel[i].crash);
    EXPECT_EQ(serial[i].sdc, parallel[i].sdc);
    EXPECT_EQ(serial[i].benign, parallel[i].benign);
    EXPECT_EQ(serial[i].hang, parallel[i].hang);
    EXPECT_EQ(serial[i].not_activated, parallel[i].not_activated);
    EXPECT_EQ(serial[i].injected_trials, parallel[i].injected_trials);
    expect_same_records(serial[i].trials, parallel[i].trials);
  }
}

TEST(Scheduler, MatchesRunCampaignCellByCell) {
  // The scheduler must be a pure orchestration change: each grid cell's
  // records equal what the single-campaign wrapper produces.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  const std::vector<CampaignResult> grid = run_grid(llfi, pinfi, 2);
  for (const CampaignResult& cell : grid) {
    CampaignConfig cfg;
    cfg.app = cell.app;
    cfg.category = cell.category;
    cfg.trials = 12;
    cfg.seed = 99;
    cfg.threads = 1;
    InjectorEngine& engine =
        cell.tool == "LLFI" ? static_cast<InjectorEngine&>(llfi) : pinfi;
    const CampaignResult solo = run_campaign(engine, cfg);
    EXPECT_EQ(solo.profiled_count, cell.profiled_count);
    expect_same_records(solo.trials, cell.trials);
  }
}

TEST(Scheduler, CheckpointedMatchesDirectCellByCellAtAnyThreadCount) {
  // The acceptance bar for checkpoint/restore: resuming trials from
  // mid-run snapshots (at a deliberately dense stride) must reproduce the
  // direct-execution records cell by cell, for 1, 2, and 4 workers.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi_direct(prog.module(), {}, {0, /*enabled=*/false});
  PinfiEngine pinfi_direct(prog.program(), {}, {0, /*enabled=*/false});
  const std::vector<CampaignResult> direct =
      run_grid(llfi_direct, pinfi_direct, 1);
  EXPECT_EQ(llfi_direct.checkpoint_stats().restored_trials, 0u);
  EXPECT_EQ(pinfi_direct.checkpoint_stats().restored_trials, 0u);

  for (std::size_t threads : {1u, 2u, 4u}) {
    LlfiEngine llfi(prog.module(), {}, {/*stride=*/500, true});
    PinfiEngine pinfi(prog.program(), {}, {/*stride=*/500, true});
    const std::vector<CampaignResult> checkpointed =
        run_grid(llfi, pinfi, threads);
    ASSERT_EQ(checkpointed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(checkpointed[i].profiled_count, direct[i].profiled_count);
      EXPECT_EQ(checkpointed[i].crash, direct[i].crash);
      EXPECT_EQ(checkpointed[i].sdc, direct[i].sdc);
      EXPECT_EQ(checkpointed[i].benign, direct[i].benign);
      EXPECT_EQ(checkpointed[i].hang, direct[i].hang);
      EXPECT_EQ(checkpointed[i].not_activated, direct[i].not_activated);
      expect_same_records(checkpointed[i].trials, direct[i].trials);
    }
    // The dense stride guarantees snapshots exist and most trials resume.
    const CheckpointStats ls = llfi.checkpoint_stats();
    const CheckpointStats ps = pinfi.checkpoint_stats();
    EXPECT_GT(ls.snapshots, 0u) << threads << " threads";
    EXPECT_GT(ps.snapshots, 0u) << threads << " threads";
    EXPECT_GT(ls.restored_trials, 0u) << threads << " threads";
    EXPECT_GT(ps.restored_trials, 0u) << threads << " threads";
    EXPECT_GT(ls.skipped_instructions, 0u);
    EXPECT_GT(ps.skipped_instructions, 0u);
  }
}

TEST(Scheduler, SnapshotBudgetEvictsWithoutChangingOutcomes) {
  // A page budget far below the unbudgeted live set forces evictions at
  // capture time; trials whose window was evicted fall back to an earlier
  // live snapshot (or a from-scratch run), so every record must still match
  // the unbudgeted grid.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi_ref(prog.module(), {}, {/*stride=*/500, true});
  PinfiEngine pinfi_ref(prog.program(), {}, {/*stride=*/500, true});
  const std::vector<CampaignResult> reference =
      run_grid(llfi_ref, pinfi_ref, 2);

  CheckpointPolicy capped_policy;
  capped_policy.stride = 500;
  capped_policy.budget_pages = 48;
  LlfiEngine llfi(prog.module(), {}, capped_policy);
  PinfiEngine pinfi(prog.program(), {}, capped_policy);
  const std::vector<CampaignResult> capped = run_grid(llfi, pinfi, 2);

  ASSERT_EQ(capped.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_same_records(capped[i].trials, reference[i].trials);
  // The budget actually bit (the dense stride over-captures way past 48
  // pages), and it bit on both engines' stores.
  EXPECT_GT(llfi.checkpoint_stats().evictions, 0u);
  EXPECT_GT(pinfi.checkpoint_stats().evictions, 0u);
  EXPECT_EQ(llfi_ref.checkpoint_stats().evictions, 0u);
  EXPECT_EQ(pinfi_ref.checkpoint_stats().evictions, 0u);
}

TEST(Engines, EvictedSnapshotsFallBackWithoutChangingRecords) {
  // LRU eviction after trials have run: squeezing the budget to below a
  // single snapshot evicts every resume point, and the same draw must
  // produce the same record from scratch.
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine reference(prog.module(), {}, {/*stride=*/500, true});
  LlfiEngine squeezed(prog.module(), {}, {/*stride=*/500, true});
  reference.profile_all();
  squeezed.profile_all();
  const std::uint64_t n = reference.profile(ir::Category::All);
  ASSERT_GT(n, 0u);

  const std::uint64_t k = n;  // late instance: resumes from a late window
  Rng r1(7);
  Rng r2(7);
  const TrialRecord warm = reference.inject(ir::Category::All, k, r1);
  EXPECT_TRUE(warm.restored);

  squeezed.set_snapshot_budget(1);  // below any snapshot: evicts everything
  EXPECT_GT(squeezed.checkpoint_stats().evictions, 0u);
  const TrialRecord cold = squeezed.inject(ir::Category::All, k, r2);
  EXPECT_FALSE(cold.restored);
  EXPECT_EQ(cold.outcome, warm.outcome);
  EXPECT_EQ(cold.bit, warm.bit);
  EXPECT_EQ(cold.static_site, warm.static_site);
  EXPECT_EQ(cold.injected, warm.injected);
}

/// Minimal snapshot shape the store needs: a golden position plus a paged
/// memory image.
struct FakeMemory {
  std::size_t pages = 0;
  std::size_t mapped_pages() const noexcept { return pages; }
};
struct FakeSnapshot {
  std::uint64_t executed = 0;
  FakeMemory memory;
};

CategoryCounts seen_all(std::uint64_t n) {
  CategoryCounts c;
  c[ir::Category::All] = n;
  return c;
}

TEST(CheckpointStore, BeforeAndWindowAgreeAndSkipDeadEntries) {
  CheckpointStore<FakeSnapshot> store;
  for (std::uint64_t i = 0; i < 4; ++i)
    store.add({(i + 1) * 100, {10}}, seen_all((i + 1) * 10));

  // k=25: entries with seen {10,20,30,40} -> latest with seen < 25 is #1.
  EXPECT_EQ(store.window_of(ir::Category::All, 25), 1u);
  const auto* entry = store.before(ir::Category::All, 25);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->executed, 200u);
  // k=5: every prefix already contains >= 5? No — all seen >= 10, so no
  // resumable point exists and the trial runs from scratch.
  EXPECT_EQ(store.window_of(ir::Category::All, 5), store.kNoWindow);
  EXPECT_EQ(store.before(ir::Category::All, 5), nullptr);

  // Evict down to 20 pages (two entries). Untouched entries tie on LRU, so
  // interval thinning picks victims; before() then walks left to the
  // nearest live entry instead of resuming from a dead one.
  store.set_budget(20);
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_LE(store.live_pages(), 20u);
  const auto* fallback = store.before(ir::Category::All, 35);
  ASSERT_NE(fallback, nullptr);
  EXPECT_TRUE(fallback->alive);
  EXPECT_LT(fallback->seen[ir::Category::All], 35u);
}

TEST(CheckpointStore, LruKeepsTouchedEntriesAndThinsUntouchedOnes) {
  CheckpointStore<FakeSnapshot> store;
  for (std::uint64_t i = 0; i < 4; ++i)
    store.add({(i + 1) * 100, {10}}, seen_all((i + 1) * 10));

  // Touch entry #1 (k=25 resumes from it); it must outlive untouched peers.
  ASSERT_NE(store.before(ir::Category::All, 25), nullptr);
  store.set_budget(20);
  EXPECT_EQ(store.live_count(), 2u);
  const auto* kept = store.before(ir::Category::All, 25);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->executed, 200u);  // the touched entry survived

  // The newest entry has an unbounded trailing gap, so among untouched
  // entries it is thinned last: it is the other survivor.
  EXPECT_EQ(store.before(ir::Category::All, 45)->executed, 400u);
}

TEST(CheckpointStore, BudgetEnforcedDuringCapture) {
  CheckpointStore<FakeSnapshot> store;
  store.set_budget(25);
  for (std::uint64_t i = 0; i < 8; ++i) {
    store.add({(i + 1) * 100, {10}}, seen_all((i + 1) * 10));
    EXPECT_LE(store.live_pages(), 25u) << "after add " << i;
  }
  EXPECT_EQ(store.size(), 8u);  // dead entries keep their counters
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.evictions(), 6u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.live_pages(), 0u);
  EXPECT_EQ(store.evictions(), 6u);  // cumulative, like the engine stats
}

class CheckpointEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("FAULTLAB_CHECKPOINTS");
    unsetenv("FAULTLAB_SNAPSHOT_STRIDE");
    unsetenv("FAULTLAB_SNAPSHOT_BUDGET");
  }
};

TEST_F(CheckpointEnv, PolicyParsesEnvironment) {
  unsetenv("FAULTLAB_CHECKPOINTS");
  unsetenv("FAULTLAB_SNAPSHOT_STRIDE");
  CheckpointPolicy p = CheckpointPolicy::from_env();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.stride, 0u);

  setenv("FAULTLAB_CHECKPOINTS", "0", 1);
  EXPECT_FALSE(CheckpointPolicy::from_env().enabled);
  setenv("FAULTLAB_CHECKPOINTS", "junk", 1);  // warns, falls back to on
  EXPECT_TRUE(CheckpointPolicy::from_env().enabled);

  setenv("FAULTLAB_SNAPSHOT_STRIDE", "12345", 1);
  EXPECT_EQ(CheckpointPolicy::from_env().stride, 12345u);
  setenv("FAULTLAB_SNAPSHOT_STRIDE", "-3", 1);  // warns, falls back to auto
  EXPECT_EQ(CheckpointPolicy::from_env().stride, 0u);

  EXPECT_EQ(CheckpointPolicy::from_env().budget_pages, 0u);  // unlimited
  setenv("FAULTLAB_SNAPSHOT_BUDGET", "4096", 1);
  EXPECT_EQ(CheckpointPolicy::from_env().budget_pages, 4096u);
  setenv("FAULTLAB_SNAPSHOT_BUDGET", "junk", 1);  // warns, falls back
  EXPECT_EQ(CheckpointPolicy::from_env().budget_pages, 0u);
}

TEST_F(CheckpointEnv, EffectiveStrideSelection) {
  CheckpointPolicy p;
  p.enabled = false;
  EXPECT_EQ(p.effective_stride(1'000'000), 0u);  // disabled -> no snapshots
  p.enabled = true;
  p.stride = 777;
  EXPECT_EQ(p.effective_stride(1'000'000), 777u);  // explicit wins
  p.stride = 0;
  // Automatic: golden length over kAutoWindows, floored at kMinStride.
  EXPECT_EQ(p.effective_stride(64 * 50'000), 50'000u);
  EXPECT_EQ(p.effective_stride(1'000), CheckpointPolicy::kMinStride);
}

TEST(Scheduler, ProfileAllMatchesPerCategoryProfile) {
  for (const char* name : {"mcf", "libquantum"}) {
    auto prog = driver::compile(apps::benchmark(name).source, name);
    LlfiEngine llfi(prog.module());
    PinfiEngine pinfi(prog.program());
    const CategoryCounts lcounts = llfi.profile_all();
    const CategoryCounts pcounts = pinfi.profile_all();
    for (ir::Category c : ir::kAllCategories) {
      EXPECT_EQ(lcounts[c], llfi.profile(c))
          << name << " LLFI " << ir::category_name(c);
      EXPECT_EQ(pcounts[c], pinfi.profile(c))
          << name << " PINFI " << ir::category_name(c);
    }
  }
}

/// Engine whose inject() always throws — the std::terminate repro.
class ThrowingEngine final : public InjectorEngine {
 public:
  const char* tool_name() const noexcept override { return "MOCK"; }
  std::uint64_t profile(ir::Category) override { return 8; }
  TrialRecord inject(ir::Category, std::uint64_t, Rng&) override {
    throw std::runtime_error("injector exploded");
  }
  const std::string& golden_output() const noexcept override {
    return golden_;
  }
  std::uint64_t golden_instructions() const noexcept override { return 1; }

 private:
  std::string golden_;
};

TEST(Scheduler, ThrowingEngineSurfacesAsCampaignError) {
  ThrowingEngine engine;
  CampaignConfig cfg;
  cfg.app = "boomapp";
  cfg.category = ir::Category::All;
  cfg.trials = 6;
  cfg.threads = 4;
  try {
    run_campaign(engine, cfg);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.app(), "boomapp");
    EXPECT_EQ(e.tool(), "MOCK");
    EXPECT_EQ(e.category(), ir::Category::All);
    EXPECT_NE(std::string(e.what()).find("boomapp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injector exploded"),
              std::string::npos);
    ASSERT_NE(e.cause(), nullptr);
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
}

TEST(Scheduler, ThrowingCampaignInAGridStillThrows) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  ThrowingEngine bad;
  CampaignScheduler scheduler;
  CampaignConfig good;
  good.app = "grid";
  good.category = ir::Category::All;
  good.trials = 4;
  scheduler.add(llfi, good);
  CampaignConfig boom;
  boom.app = "boomapp";
  boom.category = ir::Category::Cmp;
  boom.trials = 4;
  scheduler.add(bad, boom);
  EXPECT_THROW(scheduler.run(), CampaignError);
}

TEST(Scheduler, ManifestRecordsTimingsAndCounters) {
  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  PinfiEngine pinfi(prog.program());
  SchedulerOptions options;
  options.threads = 2;
  std::size_t progress_calls = 0;
  options.progress = [&](const SchedulerProgress& p) {
    if (p.completed != nullptr) ++progress_calls;
  };
  CampaignScheduler scheduler(options);
  CampaignConfig cfg;
  cfg.app = "grid";
  cfg.category = ir::Category::All;
  cfg.trials = 10;
  scheduler.add(llfi, cfg);
  scheduler.add(pinfi, cfg);
  const std::vector<CampaignResult> results = scheduler.run();

  const RunManifest& m = scheduler.manifest();
  EXPECT_EQ(m.threads, 2u);
  EXPECT_GE(m.wall_seconds, 0.0);
  EXPECT_GE(m.profile_seconds, 0.0);
  ASSERT_EQ(m.campaigns.size(), 2u);
  EXPECT_EQ(progress_calls, 2u);
  for (std::size_t i = 0; i < m.campaigns.size(); ++i) {
    EXPECT_EQ(m.campaigns[i].app, results[i].app);
    EXPECT_EQ(m.campaigns[i].tool, results[i].tool);
    EXPECT_EQ(m.campaigns[i].trials, results[i].trials.size());
    EXPECT_EQ(m.campaigns[i].injected, results[i].injected_trials);
    EXPECT_EQ(m.campaigns[i].activated, results[i].activated());
    EXPECT_GT(m.campaigns[i].wall_seconds, 0.0);
  }

  const std::string csv = manifest_csv(m).to_string();
  EXPECT_NE(csv.find("trials_per_second"), std::string::npos);
  EXPECT_NE(csv.find("grid,LLFI,all"), std::string::npos);
  EXPECT_NE(csv.find("grid,PINFI,all"), std::string::npos);
}

TEST(Scheduler, EmptyAndZeroTrialCampaigns) {
  CampaignScheduler empty;
  EXPECT_TRUE(empty.run().empty());

  auto prog = driver::compile(kGridProgram, "grid");
  LlfiEngine llfi(prog.module());
  CampaignScheduler scheduler;
  CampaignConfig cfg;
  cfg.app = "grid";
  cfg.category = ir::Category::All;
  cfg.trials = 0;
  scheduler.add(llfi, cfg);
  const std::vector<CampaignResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].profiled_count, 0u);
  EXPECT_TRUE(results[0].trials.empty());
  EXPECT_EQ(results[0].activated(), 0u);
}

class DefaultTrialsEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("FAULTLAB_TRIALS"); }
  std::size_t with(const char* value) {
    setenv("FAULTLAB_TRIALS", value, 1);
    return default_trials();
  }
};

TEST_F(DefaultTrialsEnv, ParsesAndRejects) {
  unsetenv("FAULTLAB_TRIALS");
  EXPECT_EQ(default_trials(), 150u);          // unset -> default
  EXPECT_EQ(with("200"), 200u);               // plain number
  EXPECT_EQ(with("37abc"), 150u);             // trailing garbage rejected
  EXPECT_EQ(with("abc"), 150u);               // non-numeric rejected
  EXPECT_EQ(with(""), 150u);                  // empty rejected
  EXPECT_EQ(with("-5"), 150u);                // non-positive rejected
  EXPECT_EQ(with("0"), 150u);                 // zero rejected
  EXPECT_EQ(with("99999999999999999999999"), 150u);  // overflow rejected
}

}  // namespace
}  // namespace faultlab::fault
