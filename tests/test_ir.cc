// Unit tests for the IR core: type system, use lists, builder, printer,
// verifier.
#include <gtest/gtest.h>

#include "ir/category.h"
#include "ir/irbuilder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace faultlab::ir {
namespace {

TEST(TypeSystem, IntWidthsAndUniquing) {
  TypeContext ctx;
  const Type* i32 = ctx.i32();
  EXPECT_TRUE(i32->is_int());
  EXPECT_EQ(i32->int_bits(), 32u);
  EXPECT_EQ(i32, ctx.int_type(32));          // interned
  EXPECT_NE(i32, ctx.i64());
  EXPECT_THROW(ctx.int_type(13), std::invalid_argument);
}

TEST(TypeSystem, SizesAndAlignment) {
  TypeContext ctx;
  EXPECT_EQ(ctx.i8()->size_in_bytes(), 1u);
  EXPECT_EQ(ctx.i16()->size_in_bytes(), 2u);
  EXPECT_EQ(ctx.i32()->size_in_bytes(), 4u);
  EXPECT_EQ(ctx.i64()->size_in_bytes(), 8u);
  EXPECT_EQ(ctx.i1()->size_in_bytes(), 1u);
  EXPECT_EQ(ctx.double_type()->size_in_bytes(), 8u);
  EXPECT_EQ(ctx.ptr_to(ctx.i8())->size_in_bytes(), 8u);
  EXPECT_EQ(ctx.array_of(ctx.i32(), 10)->size_in_bytes(), 40u);
}

TEST(TypeSystem, StructLayoutWithPadding) {
  TypeContext ctx;
  // { i8, i64, i32 } -> offsets 0, 8, 16; size 24 (8-aligned).
  const Type* s =
      ctx.make_struct("S", {ctx.i8(), ctx.i64(), ctx.i32()});
  EXPECT_EQ(s->struct_field_offset(0), 0u);
  EXPECT_EQ(s->struct_field_offset(1), 8u);
  EXPECT_EQ(s->struct_field_offset(2), 16u);
  EXPECT_EQ(s->size_in_bytes(), 24u);
  EXPECT_EQ(s->alignment(), 8u);
}

TEST(TypeSystem, SelfReferentialStruct) {
  TypeContext ctx;
  const Type* node = ctx.declare_struct("Node");
  ctx.define_struct(node, {ctx.i32(), ctx.ptr_to(node)});
  EXPECT_EQ(node->struct_fields().size(), 2u);
  EXPECT_EQ(node->struct_fields()[1]->pointee(), node);
  EXPECT_EQ(node->size_in_bytes(), 16u);
  EXPECT_THROW(ctx.define_struct(node, {}), std::invalid_argument);
  EXPECT_THROW(ctx.declare_struct("Node"), std::invalid_argument);
}

TEST(TypeSystem, PointerUniquing) {
  TypeContext ctx;
  EXPECT_EQ(ctx.ptr_to(ctx.i32()), ctx.ptr_to(ctx.i32()));
  EXPECT_NE(ctx.ptr_to(ctx.i32()), ctx.ptr_to(ctx.i64()));
  EXPECT_EQ(ctx.ptr_to(ctx.i32())->to_string(), "i32*");
}

TEST(Constants, InternedByValueAndType) {
  Module m("t");
  EXPECT_EQ(m.const_i32(5), m.const_i32(5));
  EXPECT_NE(m.const_i32(5), m.const_i32(6));
  EXPECT_NE(static_cast<Value*>(m.const_i32(5)),
            static_cast<Value*>(m.const_i64(5)));
  EXPECT_EQ(m.const_double(1.5), m.const_double(1.5));
  EXPECT_EQ(m.const_i32(-1)->raw(), 0xffffffffull);  // truncated to width
  EXPECT_EQ(m.const_i32(-1)->signed_value(), -1);
}

/// Builds `int add3(int a) { return a + 3; }` by hand.
std::unique_ptr<Module> make_add3() {
  auto m = std::make_unique<Module>("t");
  auto& t = m->types();
  Function* f = m->create_function(t.func_type(t.i32(), {t.i32()}), "add3");
  IRBuilder b(*m);
  b.set_insert_point(f->create_block("entry"));
  Value* sum = b.add(f->arg(0), m->const_i32(3));
  b.ret(sum);
  f->renumber();
  return m;
}

TEST(UseLists, TrackUsers) {
  auto m = make_add3();
  Function* f = m->find_function("add3");
  Instruction* add = f->entry()->instr(0);
  EXPECT_EQ(add->opcode(), Opcode::Add);
  EXPECT_TRUE(add->has_uses());
  EXPECT_EQ(add->uses().size(), 1u);
  EXPECT_EQ(add->uses()[0].user->opcode(), Opcode::Ret);
  EXPECT_EQ(f->arg(0)->uses().size(), 1u);
}

TEST(UseLists, ReplaceAllUsesWith) {
  auto m = make_add3();
  Function* f = m->find_function("add3");
  Instruction* add = f->entry()->instr(0);
  Value* c = m->const_i32(99);
  add->replace_all_uses_with(c);
  EXPECT_FALSE(add->has_uses());
  auto* ret = static_cast<RetInst*>(f->entry()->instr(1));
  EXPECT_EQ(ret->value(), c);
}

TEST(UseLists, SetOperandMaintainsBothSides) {
  auto m = make_add3();
  Function* f = m->find_function("add3");
  Instruction* add = f->entry()->instr(0);
  Value* c5 = m->const_i32(5);
  const std::size_t before = c5->uses().size();
  add->set_operand(1, c5);
  EXPECT_EQ(c5->uses().size(), before + 1);
  EXPECT_EQ(m->const_i32(3)->uses().size(), 0u);
}

TEST(UseLists, PhiIncomingRemoval) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* a = f->create_block("a");
  BasicBlock* b = f->create_block("b");
  BasicBlock* merge = f->create_block("merge");
  IRBuilder builder(m);
  builder.set_insert_point(entry);
  builder.cond_br(m.const_i1(true), a, b);
  builder.set_insert_point(a);
  builder.br(merge);
  builder.set_insert_point(b);
  builder.br(merge);
  builder.set_insert_point(merge);
  PhiInst* phi = builder.phi(t.i32());
  phi->add_incoming(m.const_i32(1), a);
  phi->add_incoming(m.const_i32(2), b);
  builder.ret(phi);
  f->renumber();
  EXPECT_TRUE(verify(m).empty()) << verify(m)[0];

  phi->remove_incoming(0);
  EXPECT_EQ(phi->num_incoming(), 1u);
  EXPECT_EQ(phi->incoming_block(0), b);
  EXPECT_EQ(phi->incoming_value(0), m.const_i32(2));
  EXPECT_EQ(m.const_i32(1)->uses().size(), 0u);
}

TEST(Printer, RendersFunction) {
  auto m = make_add3();
  const std::string text = to_string(*m->find_function("add3"));
  EXPECT_NE(text.find("define i32 @add3"), std::string::npos);
  EXPECT_NE(text.find("add i32"), std::string::npos);
  EXPECT_NE(text.find("ret i32"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormed) {
  auto m = make_add3();
  EXPECT_TRUE(verify(*m).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.void_type(), {}), "f");
  f->create_block("entry");  // empty block, no terminator
  const auto errors = verify(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsUseNotDominatedByDef) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* a = f->create_block("a");
  BasicBlock* b = f->create_block("b");
  IRBuilder builder(m);
  builder.set_insert_point(entry);
  builder.cond_br(m.const_i1(true), a, b);
  builder.set_insert_point(a);
  Value* x = builder.add(m.const_i32(1), m.const_i32(2));
  builder.ret(x);
  builder.set_insert_point(b);
  builder.ret(x);  // x does not dominate this use
  f->renumber();
  const auto errors = verify(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("dominated"), std::string::npos);
}

TEST(Verifier, RejectsArgumentCountMismatch) {
  Module m("t");
  auto& t = m.types();
  Function* callee = m.create_function(t.func_type(t.i32(), {t.i32()}), "g");
  {
    IRBuilder gb(m);
    gb.set_insert_point(callee->create_block("entry"));
    gb.ret(callee->arg(0));
  }
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  IRBuilder builder(m);
  builder.set_insert_point(f->create_block("entry"));
  Value* r = builder.call(m.find_function("g"), {});  // missing argument
  builder.ret(r);
  f->renumber();
  const auto errors = verify(m);
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const auto& e : errors)
    found |= e.find("argument count") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Verifier, RejectsPhiPredMismatch) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* merge = f->create_block("merge");
  IRBuilder builder(m);
  builder.set_insert_point(entry);
  builder.br(merge);
  builder.set_insert_point(merge);
  PhiInst* phi = builder.phi(t.i32());
  phi->add_incoming(m.const_i32(1), entry);
  phi->add_incoming(m.const_i32(2), merge);  // merge is not a pred
  builder.ret(phi);
  f->renumber();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Instructions, CategoriesFollowTable3) {
  auto m = make_add3();
  Function* f = m->find_function("add3");
  Instruction* add = f->entry()->instr(0);
  EXPECT_TRUE(ir_in_category(*add, Category::Arithmetic));
  EXPECT_TRUE(ir_in_category(*add, Category::All));
  EXPECT_FALSE(ir_in_category(*add, Category::Load));
  EXPECT_FALSE(ir_in_category(*add, Category::Cast));
  Instruction* ret = f->entry()->instr(1);
  EXPECT_FALSE(ir_in_category(*ret, Category::All));  // no dest register
}

TEST(Instructions, GepResultTypeComputation) {
  Module m("t");
  auto& t = m.types();
  const Type* s = t.make_struct("S", {t.i32(), t.double_type()});
  const Type* arr = t.array_of(s, 4);
  Function* f =
      m.create_function(t.func_type(t.void_type(), {t.ptr_to(arr)}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* gep = b.gep(f->arg(0),
                     {m.const_i64(0), m.const_i64(2), m.const_i32(1)});
  EXPECT_EQ(gep->type(), t.ptr_to(t.double_type()));
  b.ret_void();
  f->renumber();
  EXPECT_TRUE(verify(m).empty());
}

TEST(Instructions, ConversionCastSubset) {
  EXPECT_TRUE(is_conversion_cast(Opcode::SExt));
  EXPECT_TRUE(is_conversion_cast(Opcode::FPToSI));
  EXPECT_FALSE(is_conversion_cast(Opcode::Bitcast));
  EXPECT_FALSE(is_conversion_cast(Opcode::PtrToInt));
  EXPECT_FALSE(is_conversion_cast(Opcode::IntToPtr));
}

TEST(Module, GlobalCreationAndInit) {
  Module m("t");
  auto& t = m.types();
  GlobalVariable* g = m.create_global(t.array_of(t.i32(), 3), "g",
                                      {1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0});
  EXPECT_EQ(g->value_type()->array_count(), 3u);
  EXPECT_TRUE(g->type()->is_ptr());
  EXPECT_EQ(m.find_global("g"), g);
  EXPECT_THROW(m.create_global(t.i32(), "g"), std::invalid_argument);
  // Default initializer is zero-filled to the type size.
  GlobalVariable* z = m.create_global(t.i64(), "z");
  EXPECT_EQ(z->initializer().size(), 8u);
}

}  // namespace
}  // namespace faultlab::ir
