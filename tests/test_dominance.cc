// Unit tests for dominator tree and dominance frontier computation.
#include <gtest/gtest.h>

#include "ir/dominance.h"
#include "ir/irbuilder.h"

namespace faultlab::ir {
namespace {

/// Diamond: entry -> (a, b) -> merge -> exit.
struct Diamond {
  Module m{"t"};
  Function* f = nullptr;
  BasicBlock *entry, *a, *b, *merge, *exit;

  Diamond() {
    auto& t = m.types();
    f = m.create_function(t.func_type(t.void_type(), {}), "f");
    entry = f->create_block("entry");
    a = f->create_block("a");
    b = f->create_block("b");
    merge = f->create_block("merge");
    exit = f->create_block("exit");
    IRBuilder builder(m);
    builder.set_insert_point(entry);
    builder.cond_br(m.const_i1(true), a, b);
    builder.set_insert_point(a);
    builder.br(merge);
    builder.set_insert_point(b);
    builder.br(merge);
    builder.set_insert_point(merge);
    builder.br(exit);
    builder.set_insert_point(exit);
    builder.ret_void();
    f->renumber();
  }
};

TEST(Dominance, DiamondIdoms) {
  Diamond d;
  DominatorTree dom(*d.f);
  EXPECT_EQ(dom.idom(d.entry), nullptr);
  EXPECT_EQ(dom.idom(d.a), d.entry);
  EXPECT_EQ(dom.idom(d.b), d.entry);
  EXPECT_EQ(dom.idom(d.merge), d.entry);  // not a, not b
  EXPECT_EQ(dom.idom(d.exit), d.merge);
}

TEST(Dominance, DominatesIsReflexiveAndTransitive) {
  Diamond d;
  DominatorTree dom(*d.f);
  EXPECT_TRUE(dom.dominates(d.entry, d.entry));
  EXPECT_TRUE(dom.dominates(d.entry, d.exit));
  EXPECT_TRUE(dom.dominates(d.merge, d.exit));
  EXPECT_FALSE(dom.dominates(d.a, d.merge));
  EXPECT_FALSE(dom.dominates(d.a, d.b));
}

TEST(Dominance, DiamondFrontiers) {
  Diamond d;
  DominatorTree dom(*d.f);
  EXPECT_EQ(dom.frontier(d.a), std::set<const BasicBlock*>{d.merge});
  EXPECT_EQ(dom.frontier(d.b), std::set<const BasicBlock*>{d.merge});
  EXPECT_TRUE(dom.frontier(d.entry).empty());
  EXPECT_TRUE(dom.frontier(d.merge).empty());
}

TEST(Dominance, LoopFrontierIncludesHeader) {
  // entry -> header -> body -> header (back edge); header -> exit.
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.void_type(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* header = f->create_block("header");
  BasicBlock* body = f->create_block("body");
  BasicBlock* exit = f->create_block("exit");
  IRBuilder b(m);
  b.set_insert_point(entry);
  b.br(header);
  b.set_insert_point(header);
  b.cond_br(m.const_i1(true), body, exit);
  b.set_insert_point(body);
  b.br(header);
  b.set_insert_point(exit);
  b.ret_void();
  f->renumber();

  DominatorTree dom(*f);
  EXPECT_EQ(dom.idom(body), header);
  EXPECT_EQ(dom.idom(exit), header);
  // The body's frontier contains the loop header (phi placement point).
  EXPECT_TRUE(dom.frontier(body).count(header));
  EXPECT_TRUE(dom.frontier(header).count(header));
}

TEST(Dominance, UnreachableBlocksHandled) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.void_type(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* dead = f->create_block("dead");
  IRBuilder b(m);
  b.set_insert_point(entry);
  b.ret_void();
  b.set_insert_point(dead);
  b.ret_void();
  f->renumber();

  DominatorTree dom(*f);
  EXPECT_TRUE(dom.reachable(entry));
  EXPECT_FALSE(dom.reachable(dead));
  EXPECT_EQ(dom.reverse_postorder().size(), 1u);
}

TEST(Dominance, ValueDominatesWithinBlock) {
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {t.i32()}), "f");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Value* x = b.add(f->arg(0), m.const_i32(1));
  Value* y = b.mul(x, m.const_i32(2));
  b.ret(y);
  f->renumber();

  DominatorTree dom(*f);
  auto* xi = static_cast<Instruction*>(x);
  auto* yi = static_cast<Instruction*>(y);
  EXPECT_TRUE(dom.value_dominates(xi, yi));
  EXPECT_FALSE(dom.value_dominates(yi, xi));
}

TEST(Dominance, PhiUsesReadOnIncomingEdges) {
  // Loop phi that uses a value defined in the body: the def must dominate
  // the body (the incoming block), not the phi itself.
  Module m("t");
  auto& t = m.types();
  Function* f = m.create_function(t.func_type(t.i32(), {}), "f");
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* header = f->create_block("header");
  BasicBlock* body = f->create_block("body");
  BasicBlock* exit = f->create_block("exit");
  IRBuilder b(m);
  b.set_insert_point(entry);
  b.br(header);
  b.set_insert_point(header);
  PhiInst* phi = b.phi(t.i32());
  Value* cond = b.icmp(ICmpPred::SLT, phi, m.const_i32(10));
  b.cond_br(cond, body, exit);
  b.set_insert_point(body);
  Value* next = b.add(phi, m.const_i32(1));
  b.br(header);
  b.set_insert_point(exit);
  b.ret(phi);
  phi->add_incoming(m.const_i32(0), entry);
  phi->add_incoming(next, body);
  f->renumber();

  DominatorTree dom(*f);
  EXPECT_TRUE(dom.value_dominates(static_cast<Instruction*>(next), phi));
}

}  // namespace
}  // namespace faultlab::ir
