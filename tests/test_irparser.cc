// Textual IR parser tests: hand-written snippets, error reporting, and —
// the strongest check — print/parse round-trips over every mini benchmark
// with behavioural equivalence on the VM.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "frontend/codegen.h"
#include "ir/irparser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "opt/pass.h"
#include "vm/interpreter.h"

namespace faultlab::ir {
namespace {

TEST(IrParser, ParsesMinimalFunction) {
  auto m = parse_module(R"(
declare void @print_int(i64 %arg0)

define i32 @main() {
bb0:
  %t0 = add i32 40, 2
  %t1 = sext i32 %t0 to i64
  call void @print_int(i64 %t1)
  ret i32 %t0
}
)");
  vm::Interpreter vm(*m);
  const auto r = vm.run();
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.exit_value, 42);
  EXPECT_EQ(r.output, "42\n");
}

TEST(IrParser, ControlFlowAndPhis) {
  auto m = parse_module(R"(
define i32 @main() {
bb0:
  br label %bb1
bb1:
  %t0 = phi i32 [ 0, %bb0 ], [ %t3, %bb2 ]
  %t1 = phi i32 [ 0, %bb0 ], [ %t4, %bb2 ]
  %t2 = icmp slt i32 %t0, 10
  br i1 %t2, label %bb2, label %bb3
bb2:
  %t3 = add i32 %t0, 1
  %t4 = add i32 %t1, %t0
  br label %bb1
bb3:
  ret i32 %t1
}
)");
  vm::Interpreter vm(*m);
  EXPECT_EQ(vm.run().exit_value, 45);  // 0+1+...+9
}

TEST(IrParser, GlobalsStructsAndGeps) {
  auto m = parse_module(R"(
%Pair = type { i32, i64 }
@counts = global [4 x i32] x"01000000020000000300000004000000"
@pair = global %Pair zeroinitializer

define i64 @main() {
bb0:
  %t0 = getelementptr [4 x i32]* @counts, i64 0, i64 2
  %t1 = load i32, i32* %t0
  %t2 = getelementptr %Pair* @pair, i64 0, i32 1
  store i64 700, i64* %t2
  %t3 = load i64, i64* %t2
  %t4 = sext i32 %t1 to i64
  %t5 = add i64 %t3, %t4
  ret i64 %t5
}
)");
  vm::Interpreter vm(*m);
  EXPECT_EQ(vm.run().exit_value, 703);
}

TEST(IrParser, DoublesRoundTripBitExactly) {
  auto m = parse_module(R"(
declare void @print_double(double %arg0)

define i32 @main() {
bb0:
  %t0 = fadd double 0.10000000000000001, 0.20000000000000001
  call void @print_double(double %t0)
  %t1 = fcmp ogt double %t0, 0.29999999999999998
  %t2 = zext i1 %t1 to i32
  ret i32 %t2
}
)");
  vm::Interpreter vm(*m);
  const auto r = vm.run();
  // 0.1 + 0.2 > 0.3 in IEEE doubles: the classic.
  EXPECT_EQ(r.exit_value, 1);
}

TEST(IrParser, ForwardReferencesAcrossBlocks) {
  // %t2 is used in bb1 but textually defined in bb2, which dominates bb1
  // ... cannot dominate; instead use a value defined later in text but
  // earlier in control flow via block ordering quirks.
  auto m = parse_module(R"(
define i32 @main() {
bb0:
  br label %bb2
bb1:
  %t0 = add i32 %t3, 1
  ret i32 %t0
bb2:
  %t3 = add i32 20, 21
  br label %bb1
}
)");
  vm::Interpreter vm(*m);
  EXPECT_EQ(vm.run().exit_value, 42);
}

TEST(IrParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_module("define i32 @f() {\nbb0:\n  frobnicate\n}\n"),
               IrParseError);
  EXPECT_THROW(parse_module("define i32 @f() {\nbb0:\n  ret i32 %t9\n}\n"),
               std::exception);  // undefined value
  EXPECT_THROW(parse_module("@g = global i32 x\"zz\"\n"), IrParseError);
  EXPECT_THROW(parse_module("@g = global i32 x\"0011223344\"\n"),
               IrParseError);  // initializer size mismatch
  EXPECT_THROW(parse_module(R"(
define i32 @f() {
bb0:
  %t0 = icmp wat i32 1, 2
  ret i32 0
}
)"),
               IrParseError);
}

TEST(IrParser, ErrorsCarryLineNumbers) {
  try {
    parse_module("define i32 @f() {\nbb0:\n  bogus i32 1\n}\n");
    FAIL() << "expected IrParseError";
  } catch (const IrParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Round-trip property: print(parse(print(M))) == print(M), and the parsed
// module behaves identically.

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsFixedPoint) {
  const auto& bench = apps::benchmark(GetParam());
  auto m = mc::compile_to_ir(bench.source, bench.name);
  opt::run_standard_pipeline(*m);

  const std::string text1 = to_string(*m);
  auto parsed = parse_module(text1, bench.name);
  const std::string text2 = to_string(*parsed);
  EXPECT_EQ(text1, text2);

  vm::Interpreter vm_orig(*m);
  vm::Interpreter vm_parsed(*parsed);
  const auto r1 = vm_orig.run();
  const auto r2 = vm_parsed.run();
  ASSERT_TRUE(r1.completed());
  ASSERT_TRUE(r2.completed());
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.exit_value, r2.exit_value);
  EXPECT_EQ(r1.dynamic_instructions, r2.dynamic_instructions);
}

INSTANTIATE_TEST_SUITE_P(Apps, RoundTrip,
                         ::testing::Values("bzip2", "libquantum", "ocean",
                                           "hmmer", "mcf", "raytrace"));

TEST(RoundTripUnoptimized, AllocaHeavyModule) {
  auto m = mc::compile_to_ir(R"(
    struct V { double x; double y; };
    int main() {
      struct V v;
      v.x = 1.5; v.y = 2.5;
      double* p = &v.x;
      print_double(*p + v.y);
      return 0;
    }
  )", "t");
  const std::string text1 = to_string(*m);
  auto parsed = parse_module(text1, "t");
  EXPECT_EQ(to_string(*parsed), text1);
  vm::Interpreter a(*m), b(*parsed);
  EXPECT_EQ(a.run().output, b.run().output);
}

}  // namespace
}  // namespace faultlab::ir
