// IR interpreter tests: instruction semantics (edge cases), traps, hooks,
// activation-relevant bookkeeping.
#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "ir/irbuilder.h"
#include "support/bitutil.h"
#include "vm/interpreter.h"

namespace faultlab::vm {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Value;

/// Builds `i64 main() { ret <op>(a, b) }` over i64 and runs it.
std::int64_t eval_binary64(Opcode op, std::int64_t a, std::int64_t b) {
  Module m("t");
  auto& t = m.types();
  auto* f = m.create_function(t.func_type(t.i64(), {}), "main");
  IRBuilder builder(m);
  builder.set_insert_point(f->create_block("entry"));
  builder.ret(builder.binary(op, m.const_i64(a), m.const_i64(b)));
  f->renumber();
  Interpreter vm(m);
  auto r = vm.run();
  EXPECT_TRUE(r.completed());
  return r.exit_value;
}

TEST(VmSemantics, WrappingArithmetic64) {
  EXPECT_EQ(eval_binary64(Opcode::Add, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(eval_binary64(Opcode::Sub, INT64_MIN, 1), INT64_MAX);
  EXPECT_EQ(eval_binary64(Opcode::Mul, 1LL << 62, 4), 0);
}

TEST(VmSemantics, SignedDivisionTruncates) {
  EXPECT_EQ(eval_binary64(Opcode::SDiv, -7, 2), -3);
  EXPECT_EQ(eval_binary64(Opcode::SRem, -7, 2), -1);
  EXPECT_EQ(eval_binary64(Opcode::SDiv, 7, -2), -3);
}

TEST(VmSemantics, ShiftCountMasking) {
  // x86-style: 64-bit shifts mask the count by 63.
  EXPECT_EQ(eval_binary64(Opcode::Shl, 1, 64), 1);  // 64 & 63 == 0
  EXPECT_EQ(eval_binary64(Opcode::Shl, 1, 65), 2);
  EXPECT_EQ(eval_binary64(Opcode::AShr, -8, 1), -4);
  EXPECT_EQ(static_cast<std::uint64_t>(eval_binary64(Opcode::LShr, -8, 1)),
            0x7ffffffffffffffcull);
}

TEST(VmSemantics, NarrowWidthWrapping) {
  Module m("t");
  auto& t = m.types();
  auto* f = m.create_function(t.func_type(t.i64(), {}), "main");
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  // (200 + 100) as i8 = 300 & 0xff = 44; sext to i64 = 44.
  Value* sum = b.add(m.const_int(t.i8(), 200), m.const_int(t.i8(), 100));
  b.ret(b.cast(Opcode::SExt, sum, t.i64()));
  f->renumber();
  Interpreter vm(m);
  EXPECT_EQ(vm.run().exit_value, 44);
}

TEST(VmTraps, DivisionByZeroAndOverflow) {
  {
    Module m("t");
    auto& t = m.types();
    auto* f = m.create_function(t.func_type(t.i64(), {}), "main");
    IRBuilder b(m);
    b.set_insert_point(f->create_block("entry"));
    b.ret(b.binary(Opcode::SDiv, m.const_i64(1), m.const_i64(0)));
    f->renumber();
    Interpreter vm(m);
    auto r = vm.run();
    EXPECT_TRUE(r.trapped);
    EXPECT_EQ(r.trap, machine::TrapKind::DivideByZero);
  }
  // INT64_MIN / -1 overflows: x86 #DE.
  EXPECT_TRUE([&] {
    Module m("t");
    auto& t = m.types();
    auto* f = m.create_function(t.func_type(t.i64(), {}), "main");
    IRBuilder b(m);
    b.set_insert_point(f->create_block("entry"));
    b.ret(b.binary(Opcode::SDiv, m.const_i64(INT64_MIN), m.const_i64(-1)));
    f->renumber();
    Interpreter vm(m);
    return vm.run().trapped;
  }());
}

TEST(VmTraps, StackOverflowOnRunawayRecursion) {
  auto m = mc::compile_to_ir(
      "int f(int n) { int big[200]; big[0] = n; return f(n + 1) + big[0]; }"
      "int main() { return f(0); }",
      "t");
  Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::StackOverflow);
}

TEST(VmTraps, WildPointerTraps) {
  auto m = mc::compile_to_ir(
      "int main() { long x = 0x123456789; int* p = (int*)x; return *p; }",
      "t");
  Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::UnmappedAccess);
}

TEST(VmLimits, TimeoutOnInfiniteLoop) {
  auto m = mc::compile_to_ir("int main() { while (1) {} return 0; }", "t");
  Interpreter vm(*m);
  RunLimits limits;
  limits.max_instructions = 10'000;
  auto r = vm.run("main", limits);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.trapped);
}

TEST(VmSemantics, FloatingPointSpecials) {
  auto m = mc::compile_to_ir(R"(
    int main() {
      double inf = 1.0 / 0.0;       // IEEE: no trap
      double nan = inf - inf;
      print_int(inf > 1e308);
      print_int(nan == nan);        // NaN compares false (ordered)
      print_int(nan < 1.0);
      return 0;
    })", "t");
  Interpreter vm(*m);
  auto r = vm.run();
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.output, "1\n0\n0\n");
}

TEST(VmSemantics, FpToSiSaturatesLikeCvttsd2si) {
  auto m = mc::compile_to_ir(R"(
    int main() {
      double big = 1e300;
      long x = (long)big;
      print_int(x);
      double nan = (1.0/0.0) - (1.0/0.0);
      print_int((long)nan);
      return 0;
    })", "t");
  Interpreter vm(*m);
  auto r = vm.run();
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.output, "-9223372036854775808\n-9223372036854775808\n");
}

// ---------------------------------------------------------------------------
// Hook machinery (what the LLFI injector builds on).

struct CountingHook final : ExecHook {
  std::uint64_t instructions = 0;
  std::uint64_t results = 0;
  std::uint64_t reads = 0;
  void on_instruction(const ir::Instruction&) override { ++instructions; }
  std::uint64_t on_result(const DynValueId&, std::uint64_t raw) override {
    ++results;
    return raw;
  }
  void on_operand_read(const DynValueId&, const ir::Instruction&) override {
    ++reads;
  }
};

TEST(VmHooks, ObservesEveryInstructionAndRead) {
  auto m = mc::compile_to_ir(
      "int main() { int s = 0; int i; for (i=0;i<5;i++) s += i; return s; }",
      "t");
  CountingHook hook;
  Interpreter vm(*m, &hook);
  auto r = vm.run();
  EXPECT_EQ(hook.instructions, r.dynamic_instructions);
  EXPECT_GT(hook.results, 0u);
  EXPECT_GT(hook.reads, 0u);
}

/// Corrupting a result through the hook must change downstream behaviour.
struct FlipOnceHook final : ExecHook {
  std::uint64_t countdown;
  unsigned bit;
  bool fired = false;
  DynValueId injected{};
  bool read_back = false;

  FlipOnceHook(std::uint64_t n, unsigned b) : countdown(n), bit(b) {}

  std::uint64_t on_result(const DynValueId& id, std::uint64_t raw) override {
    if (fired || countdown-- != 0) return raw;
    fired = true;
    injected = id;
    return flip_bit(raw, bit);
  }
  void on_operand_read(const DynValueId& id, const ir::Instruction&) override {
    if (fired && id == injected) read_back = true;
  }
};

TEST(VmHooks, ResultRewriteIsVisibleAndTracked) {
  // Unoptimized module: plenty of live results to corrupt.
  auto m2 = mc::compile_to_ir(
      "int main() { int a = 3; int b = a + 4; return b * 2; }", "t");
  FlipOnceHook hook(2, 0);  // flip bit 0 of the third produced result
  Interpreter vm(*m2, &hook);
  auto r = vm.run();
  EXPECT_TRUE(hook.fired);
  if (hook.read_back) {
    // Behaviour changed somewhere downstream: exit differs from golden 14.
    Interpreter golden(*m2);
    EXPECT_NE(r.exit_value, golden.run().exit_value);
  }
}

TEST(VmDeterminism, RepeatedRunsIdentical) {
  auto m = mc::compile_to_ir(R"(
    int main() {
      long h = 7; int i;
      for (i = 0; i < 100; i++) h = h * 31 + i;
      print_int(h);
      return 0;
    })", "t");
  Interpreter vm(*m);
  const auto r1 = vm.run();
  const auto r2 = vm.run();
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.dynamic_instructions, r2.dynamic_instructions);
}

// ---------------------------------------------------------------------------
// Snapshot / resume (what the checkpointed trial execution builds on).

TEST(VmSnapshot, ResumeReproducesDirectRunFromEverySnapshot) {
  auto m = mc::compile_to_ir(R"(
    int main() {
      int s = 0; int i;
      print_int(12345);
      for (i = 0; i < 2000; i++) s += i * 3 + (s >> 5);
      print_int(s);
      return s & 127;
    })", "t");
  Interpreter vm(*m);
  const auto golden = vm.run();
  ASSERT_TRUE(golden.completed());

  std::vector<Snapshot> snaps;
  RunLimits capture;
  capture.snapshot_stride = 3'000;
  capture.snapshot_sink = [&](Snapshot&& s) { snaps.push_back(std::move(s)); };
  Interpreter recorder(*m);
  const auto recorded = recorder.run("main", capture);
  ASSERT_TRUE(recorded.completed());
  EXPECT_EQ(recorded.output, golden.output);
  EXPECT_EQ(recorded.dynamic_instructions, golden.dynamic_instructions);
  ASSERT_GE(snaps.size(), 3u);

  for (const Snapshot& snap : snaps) {
    // A fresh interpreter resumes any snapshot of the same module; the
    // result must report whole-logical-run totals including the prefix.
    Interpreter resumer(*m);
    const auto r = resumer.run_from(snap);
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.exit_value, golden.exit_value);
    EXPECT_EQ(r.output, golden.output);
    EXPECT_EQ(r.dynamic_instructions, golden.dynamic_instructions);
  }
}

TEST(VmSnapshot, ResumePreservesCallFramesAndHeap) {
  auto m = mc::compile_to_ir(R"(
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() {
      int* buf = (int*)malloc(40);
      int i;
      for (i = 0; i < 10; i++) buf[i] = fib(i);
      for (i = 0; i < 10; i++) print_int(buf[i]);
      free((char*)buf);
      return 0;
    })", "t");
  Interpreter vm(*m);
  const auto golden = vm.run();
  ASSERT_TRUE(golden.completed());

  std::vector<Snapshot> snaps;
  RunLimits capture;
  capture.snapshot_stride = 500;  // dense: some land mid-recursion
  capture.snapshot_sink = [&](Snapshot&& s) { snaps.push_back(std::move(s)); };
  Interpreter recorder(*m);
  ASSERT_TRUE(recorder.run("main", capture).completed());
  ASSERT_GE(snaps.size(), 2u);

  bool saw_deep_stack = false;
  for (const Snapshot& snap : snaps) {
    saw_deep_stack = saw_deep_stack || snap.frames.size() > 2;
    Interpreter resumer(*m);
    const auto r = resumer.run_from(snap);
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.output, golden.output);
    EXPECT_EQ(r.dynamic_instructions, golden.dynamic_instructions);
  }
  EXPECT_TRUE(saw_deep_stack);  // at least one snapshot inside fib()
}

TEST(VmSnapshot, SnapshotReusableAndIsolatedAcrossResumes) {
  auto m = mc::compile_to_ir(R"(
    int g;
    int main() {
      int i;
      for (i = 0; i < 1000; i++) g = g * 3 + i;
      print_int(g);
      return 0;
    })", "t");
  std::vector<Snapshot> snaps;
  RunLimits capture;
  capture.snapshot_stride = 2'000;
  capture.snapshot_sink = [&](Snapshot&& s) { snaps.push_back(std::move(s)); };
  Interpreter recorder(*m);
  const auto golden = recorder.run("main", capture);
  ASSERT_TRUE(golden.completed());
  ASSERT_GE(snaps.size(), 1u);

  // Resuming twice from the same snapshot must give the same answer: the
  // first resume's writes must not leak into the shared CoW pages.
  Interpreter a(*m);
  Interpreter b(*m);
  const auto ra = a.run_from(snaps.front());
  const auto rb = b.run_from(snaps.front());
  EXPECT_EQ(ra.output, golden.output);
  EXPECT_EQ(rb.output, golden.output);
  EXPECT_EQ(ra.dynamic_instructions, rb.dynamic_instructions);
}

TEST(VmSnapshot, ResumedRunHonoursTotalInstructionBudget) {
  auto m = mc::compile_to_ir("int main() { while (1) {} return 0; }", "t");
  std::vector<Snapshot> snaps;
  RunLimits capture;
  capture.snapshot_stride = 5'000;
  capture.max_instructions = 12'000;
  capture.snapshot_sink = [&](Snapshot&& s) { snaps.push_back(std::move(s)); };
  Interpreter recorder(*m);
  EXPECT_TRUE(recorder.run("main", capture).timed_out);
  ASSERT_GE(snaps.size(), 1u);
  ASSERT_GE(snaps.front().executed, 5'000u);

  // The budget is on *total* instructions including the skipped prefix: a
  // resumed trial must stop where the from-scratch run would, not
  // `max_instructions` later.
  Interpreter resumer(*m);
  RunLimits limits;
  limits.max_instructions = 8'000;
  const auto r = resumer.run_from(snaps.front(), limits);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LE(r.dynamic_instructions, 8'000u + 1);
  EXPECT_GT(r.dynamic_instructions, snaps.front().executed);
}

TEST(VmApi, MissingEntryThrows) {
  auto m = mc::compile_to_ir("int main() { return 0; }", "t");
  Interpreter vm(*m);
  EXPECT_THROW(vm.run("not_there"), std::invalid_argument);
}

}  // namespace
}  // namespace faultlab::vm
