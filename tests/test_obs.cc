// Observability tests: metrics registry (sharded counters/histograms merge
// exactly under concurrency, log2 bucket boundaries, percentile
// interpolation), span tracing (bounded ring, sort order, RAII spans), and
// the Chrome-trace/JSONL exporters — including the guarantee that the
// disabled path records nothing and never allocates.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string_view>
#include <thread>

#include "driver/pipeline.h"
#include "fault/llfi.h"
#include "fault/scheduler.h"
#include "machine/dispatch.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Global allocation counter backing the no-allocation test below. Every
// operator new in this binary bumps it; the test snapshots the counter
// around the disabled-tracer path and expects a zero delta.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace faultlab::obs {
namespace {

TEST(Metrics, ConcurrentCounterIncrementsSumExactly) {
  Registry registry;
  Counter counter = registry.counter("trials");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20'000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (std::thread& th : pool) th.join();
  counter.add(5);  // weighted add on the main thread's shard
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.counter("trials"), nullptr);
  EXPECT_EQ(snap.counter("trials")->value, kThreads * kPerThread + 5);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // Bucket index is the bit width: 0 -> 0, 1 -> 1, [2,3] -> 2, and bucket
  // b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1023), 10u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1024), 11u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(~0ull), 64u);
  for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    const std::uint64_t lo = HistogramSnapshot::bucket_lo(b);
    const std::uint64_t hi = HistogramSnapshot::bucket_hi(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(HistogramSnapshot::bucket_of(lo), b);
    EXPECT_EQ(HistogramSnapshot::bucket_of(hi), b);
  }
}

TEST(Metrics, HistogramExactStatsAndConcurrentMerge) {
  Registry registry;
  Histogram hist = registry.histogram("latency");
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5'000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        hist.record(t * 100 + 7);  // distinct per-thread constants
    });
  for (std::thread& th : pool) th.join();
  const MetricsSnapshot snap = registry.snapshot();
  const auto* entry = snap.histogram("latency");
  ASSERT_NE(entry, nullptr);
  const HistogramSnapshot& h = entry->hist;
  EXPECT_EQ(h.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t)
    expected_sum += (t * 100 + 7) * kPerThread;
  EXPECT_EQ(h.sum, expected_sum);
  EXPECT_EQ(h.min, 7u);
  EXPECT_EQ(h.max, 307u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(expected_sum) /
                                 static_cast<double>(h.count));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(Metrics, HistogramPercentileInterpolationAndClamping) {
  Registry registry;
  Histogram hist = registry.histogram("h");
  // Constant data: every percentile is the constant, thanks to the
  // [min, max] clamp (bucket interpolation alone would smear it).
  for (int i = 0; i < 100; ++i) hist.record(42);
  HistogramSnapshot h = registry.snapshot().histogram("h")->hist;
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);

  Registry registry2;
  Histogram spread = registry2.histogram("h");
  for (int i = 0; i < 90; ++i) spread.record(10);     // bucket 4
  for (int i = 0; i < 10; ++i) spread.record(5000);   // bucket 13
  h = registry2.snapshot().histogram("h")->hist;
  EXPECT_GE(h.percentile(50.0), 10.0);
  EXPECT_LT(h.percentile(50.0), 16.0);  // inside bucket_of(10)'s range
  EXPECT_GE(h.percentile(99.0), 4096.0);
  EXPECT_LE(h.percentile(99.0), 5000.0);  // clamped to the observed max
  EXPECT_LE(h.percentile(50.0), h.percentile(95.0));
  EXPECT_LE(h.percentile(95.0), h.percentile(99.0));
  // Empty histogram reports zeros.
  Registry registry3;
  registry3.histogram("empty");
  EXPECT_DOUBLE_EQ(
      registry3.snapshot().histogram("empty")->hist.percentile(50.0), 0.0);
}

TEST(Metrics, PercentileSortedLinearInterpolation) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 50.0), 25.0);  // rank 1.5
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 25.0), 17.5);  // rank 0.75
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 50.0), 0.0);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  Registry registry;
  Counter a = registry.counter("x");
  Counter b = registry.counter("x");  // same metric, second handle
  a.add(2);
  b.add(3);
  EXPECT_EQ(registry.snapshot().counter("x")->value, 5u);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);

  Gauge g = registry.gauge("stride");
  g.set(500);
  g.add(-100);
  EXPECT_EQ(registry.snapshot().gauge("stride")->value, 400);
  // Default-constructed handles are inert, not crashes.
  Counter{}.add();
  Gauge{}.set(1);
  Histogram{}.record(1);
}

TEST(Metrics, RegistryGrowsPastTheOldFixedSlotCap) {
  // 20 histograms need ~1380 cells — past the 1024 cells a shard used to
  // hold in one fixed array. Segments must grow on demand and every handle
  // must keep pointing at its own cells.
  Registry registry;
  std::vector<Histogram> hists;
  for (int i = 0; i < 20; ++i)
    hists.push_back(registry.histogram("h" + std::to_string(i)));
  Counter late = registry.counter("late");  // lands in a grown segment
  for (int i = 0; i < 20; ++i)
    hists[static_cast<std::size_t>(i)].record(
        static_cast<std::uint64_t>(i + 1));
  late.add(7);

  const MetricsSnapshot snap = registry.snapshot();
  for (int i = 0; i < 20; ++i) {
    const auto* entry = snap.histogram("h" + std::to_string(i));
    ASSERT_NE(entry, nullptr) << i;
    EXPECT_EQ(entry->hist.count, 1u) << i;
    EXPECT_EQ(entry->hist.sum, static_cast<std::uint64_t>(i + 1)) << i;
  }
  EXPECT_EQ(snap.counter("late")->value, 7u);
}

TEST(Metrics, ConcurrentWritesRaceSegmentCreation) {
  // Threads hammering a metric in a not-yet-materialized segment race the
  // lazy CAS publish; exactly one segment must win and no increment may be
  // lost.
  Registry registry;
  for (int i = 0; i < 200; ++i)
    registry.counter("pad" + std::to_string(i));  // push past segment 0
  Counter counter = registry.counter("hot");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(registry.snapshot().counter("hot")->value, kThreads * kPerThread);
}

TEST(Metrics, RegistryCellCapacityStillBounded) {
  // The dynamic segments raise the ceiling (128 cells x 1024 segments), but
  // a runaway registration loop must still hit a wall, not OOM.
  Registry registry;
  bool threw = false;
  try {
    for (int i = 0; i < 3000; ++i)  // 3000 histograms > 131072 cells
      registry.histogram("h" + std::to_string(i));
  } catch (const std::length_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(Trace, RingOverwritesOldestAndCountsDropped) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    Span s;
    s.name = "s";
    s.start_us = i;
    tracer.record(std::move(s));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().start_us, 2u);  // oldest two were overwritten
  EXPECT_EQ(spans.back().start_us, 5u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, SpansSortParentsBeforeChildrenOnTies) {
  Tracer tracer;
  tracer.set_enabled(true);
  Span child;
  child.name = "child";
  child.start_us = 100;
  child.dur_us = 10;
  tracer.record(std::move(child));
  Span parent;
  parent.name = "parent";
  parent.start_us = 100;
  parent.dur_us = 50;
  tracer.record(std::move(parent));
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "parent");  // longer span first on ties
  EXPECT_STREQ(spans[1].name, "child");
}

TEST(Trace, ScopedSpanRecordsNameTagsAndNesting) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "trial", "scheduler");
    ASSERT_TRUE(outer.active());
    outer.tag("app", std::string_view("mcf"));
    outer.tag("outcome", "SDC");
    outer.tag("k", std::uint64_t{42});
    ScopedSpan inner(tracer, "execute", "phase");
    inner.finish();
    inner.finish();  // idempotent
  }
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // The outer span starts no later and lives at least as long, so the sort
  // puts it first.
  EXPECT_STREQ(spans[0].name, "trial");
  EXPECT_STREQ(spans[1].name, "execute");
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_GE(spans[0].start_us + spans[0].dur_us,
            spans[1].start_us + spans[1].dur_us);
  ASSERT_EQ(spans[0].tags.size(), 3u);
  EXPECT_EQ(spans[0].tags[0].first, "app");
  EXPECT_EQ(spans[0].tags[0].second, "mcf");
  EXPECT_EQ(spans[0].tags[2].second, "42");
}

TEST(Trace, DisabledPathRecordsNothingAndNeverAllocates) {
  Tracer tracer;  // disabled by default
  bool any_active = false;
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span(tracer, "trial", "scheduler");
    any_active |= span.active();
    span.tag("app", std::string_view("mcf"));
    span.tag("outcome", "SDC");
    span.tag("k", std::uint64_t{12345});
    span.finish();
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_FALSE(any_active);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

std::vector<Span> sample_spans() {
  std::vector<Span> spans;
  Span a;
  a.name = "trial";
  a.cat = "scheduler";
  a.start_us = 10;
  a.dur_us = 90;
  a.tid = 1;
  a.tags.emplace_back("app", "mcf");
  a.tags.emplace_back("note", "quote\" back\\slash\nline");
  spans.push_back(std::move(a));
  Span b;
  b.name = "execute";
  b.cat = "phase";
  b.start_us = 20;
  b.dur_us = 70;
  b.tid = 1;
  spans.push_back(std::move(b));
  return spans;
}

TEST(Export, ChromeTraceShapeAndEscaping) {
  std::ostringstream os;
  write_chrome_trace(sample_spans(), os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trial\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"app\":\"mcf\""), std::string::npos);
  // Control characters and quotes escaped, never raw (the only literal
  // newlines are the one-event-per-line separators).
  EXPECT_NE(json.find("quote\\\" back\\\\slash\\nline"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Export, JsonlOneObjectPerLine) {
  std::ostringstream os;
  write_spans_jsonl(sample_spans(), os);
  std::istringstream in(os.str());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(os.str().find("\"ts_us\":10"), std::string::npos);
  EXPECT_NE(os.str().find("\"dur_us\":90"), std::string::npos);
}

TEST(Export, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Export, ExportTraceSelectsFormatBySuffix) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (Span& s : sample_spans()) tracer.record(std::move(s));
  const std::string dir = ::testing::TempDir();
  const std::string chrome_path = dir + "/obs_test_trace.json";
  const std::string jsonl_path = dir + "/obs_test_trace.jsonl";
  ASSERT_TRUE(export_trace(tracer, chrome_path));
  ASSERT_TRUE(export_trace(tracer, jsonl_path));
  std::stringstream chrome, jsonl;
  chrome << std::ifstream(chrome_path).rdbuf();
  jsonl << std::ifstream(jsonl_path).rdbuf();
  EXPECT_EQ(chrome.str().rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(jsonl.str().rfind("{\"name\":", 0), 0u);
  EXPECT_FALSE(export_trace(tracer, dir + "/no/such/dir/trace.json"));
  std::remove(chrome_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(Export, MetricsJsonIncludesStatsAndSparseBuckets) {
  Registry registry;
  registry.counter("checkpoint.restores").add(12);
  registry.gauge("stride").set(500);
  Histogram h = registry.histogram("vm.run_instructions");
  for (int i = 0; i < 10; ++i) h.record(1000);
  const std::string json = metrics_json(registry.snapshot());
  EXPECT_NE(json.find("\"checkpoint.restores\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"stride\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"vm.run_instructions\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// Extracts the integer following `"key":` in a serialized event line.
std::uint64_t field_u64(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(Events, MultiThreadedRoundTripSpillsWholeLines) {
  const std::string path = "events_roundtrip_test.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path));
  // 4 writers x 256 records at ~300 bytes each pushes every shard past the
  // 64KB spill threshold several times, so the test covers both the
  // buffered and the mid-run spill paths.
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 256;
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&log, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TrialEvent e;
        e.app = "mcf";
        e.tool = "LLFI";
        e.category = "all";
        e.worker = t;
        e.seq = i;
        e.trial = t * kPerThread + i;
        e.k = i + 1;
        e.bit = 13;
        e.static_site = 7;
        e.opcode = "getelementptr";
        e.function = "main";
        e.injected = true;
        e.activated = true;
        e.outcome = "crash";
        e.trap = "unmapped-access";
        e.trap_pc = 99;
        e.inject_instruction = 10;
        e.instructions_total = 25;
        e.instructions_after_injection = 15;
        e.checkpoint_hit = i % 2 == 0;
        e.latency_ms = 0.5;
        log.append(e);
      }
    });
  for (std::thread& th : pool) th.join();
  log.close();
  EXPECT_EQ(log.appended(), kThreads * kPerThread);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), kThreads * kPerThread);
  std::vector<std::uint64_t> next_seq(kThreads, 0);
  std::vector<std::uint64_t> counts(kThreads, 0);
  for (const std::string& line : lines) {
    // Shards interleave in the file, but every line must be complete JSON
    // with the schema preamble — no torn writes across the spill boundary.
    EXPECT_EQ(line.rfind("{\"v\":1,\"app\":\"mcf\"", 0), 0u);
    EXPECT_EQ(line.back(), '}');
    const std::uint64_t worker = field_u64(line, "worker");
    ASSERT_LT(worker, kThreads);
    // Per-worker ordering survives the sharded buffering.
    EXPECT_EQ(field_u64(line, "seq"), next_seq[worker]);
    ++next_seq[worker];
    ++counts[worker];
  }
  for (std::uint32_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(counts[t], kPerThread) << "worker " << t;

  EXPECT_NE(lines[0].find("\"opcode\":\"getelementptr\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"function\":\"main\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trap\":\"unmapped-access\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trap_pc\":99"), std::string::npos);
  EXPECT_NE(lines[0].find("\"instructions_after_injection\":15"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Events, EscapesStringsAndOmitsTrapPcWithoutTrap) {
  const std::string path = "events_escape_test.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path));
  TrialEvent e;
  e.app = "a\"b\\c";
  e.tool = "PINFI";
  e.category = "all";
  e.outcome = "benign";  // no trap: opcode/function/trap stay null
  log.append(e);
  log.close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"app\":\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"opcode\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"trap\":null"), std::string::npos);
  EXPECT_EQ(lines[0].find("trap_pc"), std::string::npos);
  EXPECT_NE(lines[0].find("\"checkpoint\":\"miss\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Events, OpenFailureLeavesLogInert) {
  EventLog log;
  EXPECT_FALSE(log.open("no_such_directory_xyz/events.jsonl"));
  EXPECT_FALSE(log.enabled());
  TrialEvent e;
  log.append(e);
  EXPECT_EQ(log.appended(), 0u);
}

TEST(Events, DisabledPathRecordsNothingAndNeverAllocates) {
  EventLog log;  // never opened: the disabled path is one relaxed load
  TrialEvent e;
  e.app = "mcf";
  e.tool = "LLFI";
  e.category = "all";
  e.opcode = "add";
  e.outcome = "benign";
  e.latency_ms = 1.25;
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) log.append(e);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(log.appended(), 0u);
}

// End-to-end: a real campaign grid under an enabled global tracer yields
// one "trial" span per trial, tagged for slicing, with phase spans nested
// inside — and the manifest carries coherent latency percentiles.
TEST(Observability, SchedulerEmitsTrialSpansAndLatencyPercentiles) {
  const char* kProgram = R"(
    int main() {
      int i; long acc = 0;
      for (i = 0; i < 50; i++) acc += i * 3;
      print_int(acc);
      return 0;
    }
  )";
  auto prog = driver::compile(kProgram, "tiny");
  fault::LlfiEngine llfi(prog.module());

  // Pin lockstep lanes to 1: this test asserts the per-trial span shape
  // (grouped trials emit one "trial_group" span instead — covered below).
  const std::size_t saved_lanes = machine::lane_count();
  machine::set_lane_count(1);
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  fault::SchedulerOptions options;
  options.threads = 2;
  fault::CampaignScheduler scheduler(options);
  fault::CampaignConfig cfg;
  cfg.app = "tiny";
  cfg.category = ir::Category::All;
  cfg.trials = 8;
  scheduler.add(llfi, cfg);
  const std::vector<fault::CampaignResult> results = scheduler.run();
  tracer.set_enabled(false);
  machine::set_lane_count(saved_lanes);

  std::size_t trial_spans = 0, execute_spans = 0;
  bool saw_tags = false;
  for (const Span& s : tracer.spans()) {
    if (std::string_view(s.name) == "trial") {
      ++trial_spans;
      bool app = false, tool = false, category = false, k = false,
           checkpoint = false, outcome = false;
      for (const auto& [key, value] : s.tags) {
        app |= key == "app" && value == "tiny";
        tool |= key == "tool" && value == "LLFI";
        category |= key == "category" && value == "all";
        k |= key == "k";
        checkpoint |= key == "checkpoint" &&
                      (value == "hit" || value == "miss");
        outcome |= key == "outcome";
      }
      saw_tags = app && tool && category && k && checkpoint && outcome;
      EXPECT_TRUE(saw_tags) << "trial span missing a required tag";
    } else if (std::string_view(s.name) == "execute") {
      ++execute_spans;
    }
  }
  EXPECT_EQ(trial_spans, 8u);
  EXPECT_EQ(execute_spans, 8u);  // one execute phase nested per trial

  ASSERT_EQ(scheduler.manifest().campaigns.size(), 1u);
  const fault::CampaignTiming& t = scheduler.manifest().campaigns[0];
  EXPECT_EQ(t.trials, 8u);
  EXPECT_EQ(t.crash + t.sdc + t.benign + t.hang + t.not_activated, 8u);
  EXPECT_LE(t.restored, t.trials);
  EXPECT_EQ(t.restored,
            static_cast<std::size_t>(std::count_if(
                results[0].trials.begin(), results[0].trials.end(),
                [](const fault::TrialRecord& r) { return r.restored; })));
  EXPECT_GT(t.p50_ms, 0.0);
  EXPECT_LE(t.p50_ms, t.p95_ms);
  EXPECT_LE(t.p95_ms, t.p99_ms);
  EXPECT_GE(t.hit_rate(), 0.0);
  EXPECT_LE(t.hit_rate(), 1.0);
  tracer.clear();
}

TEST(Observability, SchedulerEmitsGroupSpansWhenLanesEnabled) {
  const char* kProgram = R"(
    int main() {
      int i; long acc = 0;
      for (i = 0; i < 50; i++) acc += i * 3;
      print_int(acc);
      return 0;
    }
  )";
  auto prog = driver::compile(kProgram, "tiny");
  fault::LlfiEngine llfi(prog.module());

  const std::size_t saved_lanes = machine::lane_count();
  machine::set_lane_count(4);
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  fault::SchedulerOptions options;
  options.threads = 1;
  fault::CampaignScheduler scheduler(options);
  fault::CampaignConfig cfg;
  cfg.app = "tiny";
  cfg.category = ir::Category::All;
  cfg.trials = 8;
  scheduler.add(llfi, cfg);
  const std::vector<fault::CampaignResult> results = scheduler.run();
  tracer.set_enabled(false);
  machine::set_lane_count(saved_lanes);

  // Trials pack into lane groups, so the tracer sees "trial_group" spans
  // whose lanes tags sum to the trial count; any remainder (a window
  // boundary can leave a 1-trial tail) still emits a plain "trial" span.
  std::size_t group_trials = 0, single_trials = 0;
  for (const Span& s : tracer.spans()) {
    if (std::string_view(s.name) == "trial_group") {
      bool app = false, tool = false, category = false, checkpoint = false;
      std::size_t lanes = 0;
      for (const auto& [key, value] : s.tags) {
        app |= key == "app" && value == "tiny";
        tool |= key == "tool" && value == "LLFI";
        category |= key == "category" && value == "all";
        checkpoint |= key == "checkpoint" &&
                      (value == "hit" || value == "miss");
        if (key == "lanes") lanes = std::stoul(std::string(value));
      }
      EXPECT_TRUE(app && tool && category && checkpoint)
          << "trial_group span missing a required tag";
      EXPECT_GE(lanes, 2u);
      EXPECT_LE(lanes, 4u);
      group_trials += lanes;
    } else if (std::string_view(s.name) == "trial") {
      ++single_trials;
    }
  }
  EXPECT_EQ(group_trials + single_trials, 8u);
  EXPECT_GT(group_trials, 0u);

  ASSERT_EQ(scheduler.manifest().campaigns.size(), 1u);
  const fault::CampaignTiming& t = scheduler.manifest().campaigns[0];
  EXPECT_EQ(t.trials, 8u);
  EXPECT_EQ(t.crash + t.sdc + t.benign + t.hang + t.not_activated, 8u);
  EXPECT_EQ(results[0].trials.size(), 8u);
  tracer.clear();
}

}  // namespace
}  // namespace faultlab::obs
