// Fault-propagation tracer tests (obs/propagation.h): taint-transfer
// semantics of both shadow trackers (mask-on-overwrite, store-to-load
// edges, flags taint), divergence-point exactness against hand-built
// golden journals, engine-level result invariance with tracing on/off,
// and the event-log flush guarantee when a campaign dies mid-run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/engine.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/scheduler.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/module.h"
#include "obs/events.h"
#include "obs/propagation.h"
#include "x86/isa.h"

namespace faultlab::fault {
namespace {

/// Restores the FAULTLAB_PROP override on scope exit so a failing test
/// cannot leak a tracing-enabled process state into later tests.
struct ScopedProp {
  explicit ScopedProp(bool on) { obs::set_prop_enabled(on); }
  ~ScopedProp() { obs::set_prop_enabled(false); }
};

// ---------------------------------------------------------------------------
// SimPropTracer unit semantics (hand-built x86::Inst streams).

x86::Inst mov_rr(x86::RegId dst, x86::RegId src) {
  x86::Inst inst{};
  inst.op = x86::Op::MovRR;
  inst.dst = dst;
  inst.src = src;
  inst.src_kind = x86::SrcKind::Reg;
  return inst;
}

x86::Inst mov_ri(x86::RegId dst, std::int64_t imm) {
  x86::Inst inst{};
  inst.op = x86::Op::MovRI;
  inst.dst = dst;
  inst.imm = imm;
  inst.src_kind = x86::SrcKind::Imm;
  return inst;
}

TEST(SimProp, TaintTransfersThroughRegisterCopy) {
  obs::SimPropTracer tracer(nullptr);
  tracer.plant_root_gpr(1, 10);  // rcx is the root, depth 0
  const x86::Inst copy = mov_rr(0, 1);  // mov rax, rcx
  tracer.on_before(11, 0, copy);
  tracer.commit();
  const obs::PropSummary s = tracer.summary();
  EXPECT_TRUE(s.traced);
  EXPECT_EQ(s.tainted_reads, 1u);
  EXPECT_EQ(s.fanout, 1u);
  EXPECT_EQ(s.depth, 1u);
  EXPECT_GE(s.peak_tainted_values, 2u);  // rcx and rax together
}

TEST(SimProp, UntaintedOverwriteIsAMaskingEvent) {
  obs::SimPropTracer tracer(nullptr);
  tracer.plant_root_gpr(1, 10);
  const x86::Inst kill = mov_ri(1, 5);  // mov rcx, 5 — full overwrite
  tracer.on_before(11, 0, kill);
  tracer.commit();
  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.masking_events, 1u);
  EXPECT_EQ(s.fanout, 0u);
  // The taint died before anything read it.
  EXPECT_EQ(s.tainted_reads, 0u);
}

TEST(SimProp, StoreToLoadEdgeThroughShadowMemory) {
  obs::SimPropTracer tracer(nullptr);
  tracer.plant_root_gpr(1, 10);

  x86::Inst store{};  // mov [0x2000], rcx
  store.op = x86::Op::MovMR;
  store.dst = 1;
  tracer.on_before(11, 0, store);
  tracer.on_memory(store, 0x2000, 8, /*is_store=*/true);
  tracer.commit();

  x86::Inst load{};  // mov rax, [0x2000]
  load.op = x86::Op::MovRM;
  load.dst = 0;
  tracer.on_before(12, 1, load);
  tracer.on_memory(load, 0x2000, 8, /*is_store=*/false);
  tracer.commit();

  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.tainted_stores, 1u);
  EXPECT_EQ(s.store_load_edges, 1u);
  EXPECT_GE(s.peak_tainted_pages, 1u);
  EXPECT_EQ(s.fanout, 1u);  // the load's destination picked the taint up
}

TEST(SimProp, LoadFromUntaintedPageStaysClean) {
  obs::SimPropTracer tracer(nullptr);
  tracer.plant_root_gpr(1, 10);
  x86::Inst load{};
  load.op = x86::Op::MovRM;
  load.dst = 0;
  tracer.on_before(11, 0, load);
  tracer.on_memory(load, 0x9000, 8, /*is_store=*/false);
  tracer.commit();
  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.store_load_edges, 0u);
  EXPECT_EQ(s.fanout, 0u);
}

TEST(SimProp, ComparisonTaintsFlagsAndBranchCountsAsTainted) {
  obs::SimPropTracer tracer(nullptr);
  tracer.plant_root_gpr(1, 10);

  x86::Inst cmp{};  // cmp rcx, 0
  cmp.op = x86::Op::Cmp;
  cmp.dst = 1;
  cmp.src_kind = x86::SrcKind::Imm;
  tracer.on_before(11, 0, cmp);
  tracer.commit();

  x86::Inst jcc{};  // je <target>
  jcc.op = x86::Op::Jcc;
  tracer.on_before(12, 1, jcc);
  tracer.commit();

  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.tainted_branches, 1u);
  EXPECT_GE(s.depth, 1u);  // flags derived from the root
}

TEST(SimProp, DivergencePointIsExact) {
  // Golden journal: code indices 5, 6, 7, 8 at positions 1..4.
  obs::GoldenJournal journal;
  for (std::size_t i = 5; i <= 8; ++i)
    journal.pc.push_back(obs::sim_pc_fingerprint(i));

  obs::SimPropTracer tracer(&journal);
  tracer.plant_root_gpr(0, 2);  // injected at dynamic position 2
  const x86::Inst nop = mov_ri(3, 0);
  tracer.on_before(1, 5, nop);
  tracer.on_before(2, 6, nop);
  tracer.on_before(3, 7, nop);
  EXPECT_FALSE(tracer.summary().diverged);
  tracer.on_before(4, 99, nop);  // journal expected index 8
  const obs::PropSummary s = tracer.summary();
  EXPECT_TRUE(s.diverged);
  EXPECT_EQ(s.divergence_pc, 99u);
  EXPECT_EQ(s.divergence_offset, 2u);  // positions 2 -> 4
}

TEST(SimProp, RunningPastJournalEndDiverges) {
  obs::GoldenJournal journal;
  journal.pc = {obs::sim_pc_fingerprint(0), obs::sim_pc_fingerprint(1)};
  obs::SimPropTracer tracer(&journal);
  tracer.plant_root_gpr(0, 1);
  const x86::Inst nop = mov_ri(3, 0);
  tracer.on_before(1, 0, nop);
  tracer.on_before(2, 1, nop);
  EXPECT_FALSE(tracer.summary().diverged);
  tracer.on_before(3, 2, nop);  // golden run ended at position 2
  EXPECT_TRUE(tracer.summary().diverged);
}

// ---------------------------------------------------------------------------
// VmPropTracer unit semantics, driven with real IR instructions from a
// tiny compiled module (DynValueId defs must be live instruction
// pointers, but the tracer itself only cares about identity).

struct VmHarness {
  driver::CompiledProgram prog;
  std::vector<const ir::Instruction*> instrs;

  VmHarness()
      : prog(driver::compile(
            "int g[4];\n"
            "int main() { int i; long s = 0;\n"
            "  for (i = 0; i < 4; i++) { g[i] = i * 3; s += g[i]; }\n"
            "  print_int(s); return 0; }",
            "vmprop")) {
    for (const auto& fn : prog.module().functions())
      for (const auto& block : fn->blocks())
        for (const auto& instr : block->instructions())
          instrs.push_back(instr.get());
    EXPECT_GE(instrs.size(), 4u);
  }
};

TEST(VmProp, OperandReadPropagatesTaintToResult) {
  VmHarness h;
  obs::VmPropTracer tracer(nullptr);
  const vm::DynValueId root{1, h.instrs[0]};
  tracer.plant_root(root, 5);

  const ir::Instruction& user = *h.instrs[1];
  tracer.on_instruction(6, user);
  tracer.on_operand_read(root, user);
  tracer.on_result(vm::DynValueId{1, &user});

  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.tainted_reads, 1u);
  EXPECT_EQ(s.fanout, 1u);
  EXPECT_EQ(s.depth, 1u);
}

TEST(VmProp, UntaintedRedefinitionMasks) {
  VmHarness h;
  obs::VmPropTracer tracer(nullptr);
  const vm::DynValueId root{1, h.instrs[0]};
  tracer.plant_root(root, 5);
  // The same def re-executes (loop iteration) with clean operands: the
  // tainted value is overwritten by an untainted result.
  tracer.on_instruction(6, *h.instrs[0]);
  tracer.on_result(root);
  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.masking_events, 1u);
  EXPECT_EQ(s.fanout, 0u);
}

TEST(VmProp, StoreToLoadEdgeThroughShadowPages) {
  VmHarness h;
  obs::VmPropTracer tracer(nullptr);
  const vm::DynValueId root{1, h.instrs[0]};
  tracer.plant_root(root, 5);

  const ir::Instruction& store = *h.instrs[1];
  tracer.on_instruction(6, store);
  tracer.on_operand_read(root, store);  // tainted stored value
  tracer.on_memory_access(store, 0x4000, 8, /*is_store=*/true);

  const ir::Instruction& load = *h.instrs[2];
  tracer.on_instruction(7, load);
  tracer.on_memory_access(load, 0x4000, 8, /*is_store=*/false);
  tracer.on_result(vm::DynValueId{1, &load});

  const obs::PropSummary s = tracer.summary();
  EXPECT_EQ(s.tainted_stores, 1u);
  EXPECT_EQ(s.store_load_edges, 1u);
  EXPECT_GE(s.fanout, 1u);
  EXPECT_GE(s.peak_tainted_pages, 1u);
}

TEST(VmProp, DivergencePointIsExact) {
  VmHarness h;
  obs::GoldenJournal journal;
  journal.pc = {obs::vm_pc_fingerprint(*h.instrs[0]),
                obs::vm_pc_fingerprint(*h.instrs[1]),
                obs::vm_pc_fingerprint(*h.instrs[2])};
  obs::VmPropTracer tracer(&journal);
  tracer.plant_root(vm::DynValueId{1, h.instrs[0]}, 1);
  tracer.on_instruction(1, *h.instrs[0]);
  tracer.on_instruction(2, *h.instrs[1]);
  EXPECT_FALSE(tracer.summary().diverged);
  tracer.on_instruction(3, *h.instrs[3]);  // golden expected instrs[2]
  const obs::PropSummary s = tracer.summary();
  EXPECT_TRUE(s.diverged);
  EXPECT_EQ(s.divergence_pc, h.instrs[3]->id());
  EXPECT_EQ(s.divergence_offset, 2u);
}

// ---------------------------------------------------------------------------
// Engine-level invariance: tracing must never change trial results, and
// traced trials must carry a filled summary.

const char* kEngineProgram = R"(
  int data[16];
  int main() {
    int i; long acc = 0;
    for (i = 0; i < 16; i++) data[i] = i * 5 + 1;
    for (i = 0; i < 16; i++) {
      if (data[i] % 2 == 0) acc += data[i];
      else acc -= i;
    }
    print_int(acc);
    return 0;
  }
)";

template <typename Engine, typename Source>
void expect_tracing_invariant(Source& source) {
  constexpr int kTrials = 30;
  std::vector<TrialRecord> plain, traced;
  {
    ScopedProp off(false);
    Engine engine(source);
    const std::uint64_t n = engine.profile(ir::Category::All);
    ASSERT_GT(n, 0u);
    Rng rng(42);
    for (int t = 0; t < kTrials; ++t) {
      Rng trial = rng.fork();
      plain.push_back(engine.inject(ir::Category::All, rng.range(1, n), trial));
    }
  }
  {
    ScopedProp on(true);
    Engine engine(source);
    const std::uint64_t n = engine.profile(ir::Category::All);
    Rng rng(42);
    for (int t = 0; t < kTrials; ++t) {
      Rng trial = rng.fork();
      traced.push_back(
          engine.inject(ir::Category::All, rng.range(1, n), trial));
    }
  }
  int diverged = 0;
  for (int t = 0; t < kTrials; ++t) {
    EXPECT_EQ(plain[t].outcome, traced[t].outcome) << "trial " << t;
    EXPECT_EQ(plain[t].bit, traced[t].bit) << "trial " << t;
    EXPECT_EQ(plain[t].static_site, traced[t].static_site) << "trial " << t;
    EXPECT_EQ(plain[t].injected, traced[t].injected) << "trial " << t;
    EXPECT_FALSE(plain[t].prop.traced) << "trial " << t;
    if (traced[t].injected) {
      EXPECT_TRUE(traced[t].prop.traced) << "trial " << t;
      if (traced[t].prop.diverged) {
        ++diverged;
        EXPECT_GE(traced[t].prop.divergence_offset, 1u) << "trial " << t;
      }
    } else {
      EXPECT_FALSE(traced[t].prop.traced) << "trial " << t;
    }
  }
  // A 30-trial all-category campaign on this program reliably produces at
  // least one control-flow divergence (crashes and flipped branches).
  EXPECT_GE(diverged, 1);
}

TEST(PropEngine, LlfiResultsUnchangedByTracing) {
  auto prog = driver::compile(kEngineProgram, "prop_llfi");
  expect_tracing_invariant<LlfiEngine>(prog.module());
}

TEST(PropEngine, PinfiResultsUnchangedByTracing) {
  auto prog = driver::compile(kEngineProgram, "prop_pinfi");
  expect_tracing_invariant<PinfiEngine>(prog.program());
}

// ---------------------------------------------------------------------------
// Event-shard flush on CampaignError unwind: a worker dying mid-run must
// not lose the trials that already completed (scheduler.cc's
// EventFlushGuard).

/// Succeeds for the first four inject() calls, then explodes — the
/// completed trials' events sit in un-flushed shard buffers when the
/// CampaignError unwinds the scheduler.
class PartialThrowingEngine final : public InjectorEngine {
 public:
  const char* tool_name() const noexcept override { return "MOCK"; }
  std::uint64_t profile(ir::Category) override { return 64; }
  TrialRecord inject(ir::Category, std::uint64_t k, Rng&) override {
    if (calls_.fetch_add(1) >= 4)
      throw std::runtime_error("worker killed mid-run");
    TrialRecord record;
    record.outcome = Outcome::Benign;
    record.injected = true;
    record.dynamic_target = k;
    record.static_site = 7;
    record.site_opcode = "mock";
    record.site_function = "main";
    return record;
  }
  const std::string& golden_output() const noexcept override {
    return golden_;
  }
  std::uint64_t golden_instructions() const noexcept override { return 1; }

 private:
  std::atomic<int> calls_{0};
  std::string golden_ = "ok\n";
};

TEST(PropEvents, ShardsFlushedWhenCampaignDiesMidRun) {
  const std::string path = ::testing::TempDir() + "prop_flush_events.jsonl";
  ASSERT_TRUE(obs::EventLog::global().open(path));

  PartialThrowingEngine engine;
  CampaignConfig cfg;
  cfg.app = "flushapp";
  cfg.category = ir::Category::All;
  cfg.trials = 12;
  cfg.threads = 1;  // deterministic: exactly 4 trials complete
  EXPECT_THROW(run_campaign(engine, cfg), CampaignError);

  const std::uint64_t appended = obs::EventLog::global().appended();
  EXPECT_EQ(appended, 4u);

  // Read the file BEFORE close(): only the unwind-path flush can have
  // written these bytes.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    // Every flushed record must be a complete JSON object.
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"app\":\"flushapp\""), std::string::npos);
  }
  EXPECT_EQ(lines, appended);

  obs::EventLog::global().close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace faultlab::fault
