// Frontend tests: lexer tokens, parser structure/errors, sema rules, and
// codegen behaviour checked by executing small programs on the VM.
#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "vm/interpreter.h"

namespace faultlab::mc {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(Lexer, TokenizesOperatorsGreedily) {
  auto toks = tokenize("a <<= b >> c <= d < e -> f ->");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[1], Tok::ShlAssign);
  EXPECT_EQ(kinds[3], Tok::Shr);
  EXPECT_EQ(kinds[5], Tok::Le);
  EXPECT_EQ(kinds[7], Tok::Lt);
  EXPECT_EQ(kinds[9], Tok::Arrow);
}

TEST(Lexer, IntegerLiterals) {
  auto toks = tokenize("0 42 0x1F 123L 7l");
  EXPECT_EQ(toks[0].int_value, 0u);
  EXPECT_EQ(toks[1].int_value, 42u);
  EXPECT_EQ(toks[2].int_value, 31u);
  EXPECT_EQ(toks[3].int_value, 123u);
  EXPECT_EQ(toks[3].text, "L");
  EXPECT_EQ(toks[4].text, "L");
}

TEST(Lexer, FloatLiterals) {
  auto toks = tokenize("1.5 2.0e3 4e-2");
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.04);
}

TEST(Lexer, CharAndStringEscapes) {
  auto toks = tokenize(R"('a' '\n' '\0' "hi\tthere")");
  EXPECT_EQ(toks[0].int_value, static_cast<std::uint64_t>('a'));
  EXPECT_EQ(toks[1].int_value, static_cast<std::uint64_t>('\n'));
  EXPECT_EQ(toks[2].int_value, 0u);
  EXPECT_EQ(toks[3].text, "hi\tthere");
}

TEST(Lexer, CommentsSkipped) {
  auto toks = tokenize("a // line comment\n /* block\n comment */ b");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].kind, Tok::End);
}

TEST(Lexer, ErrorsCarryPosition) {
  try {
    tokenize("abc\n   $");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// ---------------------------------------------------------------------------
// Parser

TEST(Parser, BuildsTranslationUnit) {
  auto tu = parse(R"(
    struct Point { int x; int y; };
    int g = 5;
    double arr[4] = { 1.0, 2.0 };
    int main() { return 0; }
  )");
  ASSERT_EQ(tu.structs.size(), 1u);
  EXPECT_EQ(tu.structs[0].fields.size(), 2u);
  ASSERT_EQ(tu.globals.size(), 2u);
  ASSERT_EQ(tu.globals[1].array_dims.size(), 1u);
  EXPECT_EQ(tu.globals[1].array_dims[0], 4);
  EXPECT_EQ(tu.globals[1].init.size(), 2u);
  ASSERT_EQ(tu.functions.size(), 1u);
}

TEST(Parser, PrecedenceShapesTree) {
  auto tu = parse("int f() { return 1 + 2 * 3; }");
  const Stmt& ret = *tu.functions[0].body->body[0];
  const Expr& add = *ret.expr;
  ASSERT_EQ(add.kind, ExprKind::Binary);
  EXPECT_EQ(add.binary_op, BinaryOp::Add);
  EXPECT_EQ(add.child(1)->binary_op, BinaryOp::Mul);
}

TEST(Parser, RejectsUnsigned) {
  EXPECT_THROW(parse("unsigned int x;"), CompileError);
}

TEST(Parser, RejectsBadSyntax) {
  EXPECT_THROW(parse("int f( { }"), CompileError);
  EXPECT_THROW(parse("int f() { int ; }"), CompileError);
  EXPECT_THROW(parse("int f() { 1 + ; }"), CompileError);
  EXPECT_THROW(parse("int f() { if 1 ) {} }"), CompileError);
  EXPECT_THROW(parse("int f() { return 0; "), CompileError);
}

TEST(Parser, ForHeaderVariants) {
  EXPECT_NO_THROW(parse("int f() { for (;;) break; return 0; }"));
  EXPECT_NO_THROW(parse("int f() { int i; for (i=0; i<3; i++) {} return 0; }"));
  EXPECT_NO_THROW(parse("int f() { for (int i=0; i<3; i++) {} return 0; }"));
}

// ---------------------------------------------------------------------------
// Sema / codegen errors

TEST(Sema, RejectsUnknownIdentifier) {
  EXPECT_THROW(compile_to_ir("int f() { return nope; }", "t"), CompileError);
}

TEST(Sema, RejectsUnknownStruct) {
  EXPECT_THROW(compile_to_ir("struct Missing* p;", "t"), CompileError);
}

TEST(Sema, RejectsCallArity) {
  EXPECT_THROW(
      compile_to_ir("int g(int a) { return a; } int f() { return g(); }", "t"),
      CompileError);
}

TEST(Sema, RejectsImplicitPointerConversion) {
  EXPECT_THROW(
      compile_to_ir("int f(int* p) { double* q; q = p; return 0; }", "t"),
      CompileError);
}

TEST(Sema, AllowsExplicitPointerCast) {
  EXPECT_NO_THROW(compile_to_ir(
      "int f(int* p) { double* q; q = (double*)p; return 0; }", "t"));
}

TEST(Sema, RejectsBreakOutsideLoop) {
  EXPECT_THROW(compile_to_ir("int f() { break; return 0; }", "t"),
               CompileError);
}

TEST(Sema, RejectsRedefinition) {
  EXPECT_THROW(compile_to_ir("int f() { int x; int x; return 0; }", "t"),
               CompileError);
  EXPECT_THROW(compile_to_ir("int f() { return 0; } int f() { return 1; }", "t"),
               CompileError);
}

TEST(Sema, RejectsVoidPointer) {
  EXPECT_THROW(compile_to_ir("void* p;", "t"), CompileError);
}

TEST(Sema, RejectsAssignToAggregate) {
  EXPECT_THROW(
      compile_to_ir("int f() { int a[3]; int b[3]; a = b; return 0; }", "t"),
      CompileError);
}

TEST(Sema, BuiltinsAreDeclared) {
  auto m = compile_to_ir("int main() { print_int(1); return 0; }", "t");
  EXPECT_NE(m->find_function("print_int"), nullptr);
  EXPECT_TRUE(m->find_function("malloc")->is_builtin());
}

// ---------------------------------------------------------------------------
// Codegen behaviour (executed on the VM)

std::string run_output(const std::string& src) {
  auto m = compile_to_ir(src, "t");
  vm::Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_FALSE(r.trapped) << "program trapped";
  EXPECT_FALSE(r.timed_out);
  return r.output;
}

std::int64_t run_exit(const std::string& src) {
  auto m = compile_to_ir(src, "t");
  vm::Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_FALSE(r.trapped);
  return r.exit_value;
}

TEST(Codegen, ArithmeticAndPrecedence) {
  EXPECT_EQ(run_exit("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(run_exit("int main() { return (2 + 3) * 4 % 7; }"), 6);
  EXPECT_EQ(run_exit("int main() { return -17 / 5; }"), -3);   // C truncation
  EXPECT_EQ(run_exit("int main() { return -17 % 5; }"), -2);
}

TEST(Codegen, BitwiseAndShifts) {
  EXPECT_EQ(run_exit("int main() { return (0xF0 | 0x0F) & 0x3C; }"), 0x3C);
  EXPECT_EQ(run_exit("int main() { return 1 << 10; }"), 1024);
  EXPECT_EQ(run_exit("int main() { return -8 >> 1; }"), -4);  // arithmetic
  EXPECT_EQ(run_exit("int main() { return ~0 & 0xFF; }"), 0xFF);
  EXPECT_EQ(run_exit("int main() { return 5 ^ 3; }"), 6);
}

TEST(Codegen, ComparisonsYieldInt) {
  EXPECT_EQ(run_exit("int main() { return (3 < 5) + (5 <= 5) + (6 > 7); }"), 2);
  EXPECT_EQ(run_exit("int main() { return (1 == 1) * 10 + (1 != 1); }"), 10);
}

TEST(Codegen, ShortCircuitEvaluation) {
  // The right operand must not run when the left decides.
  const std::string src = R"(
    int calls = 0;
    int bump() { calls++; return 1; }
    int main() {
      int a = 0 && bump();
      int b = 1 || bump();
      print_int(calls);
      print_int(a);
      print_int(b);
      return 0;
    }
  )";
  EXPECT_EQ(run_output(src), "0\n0\n1\n");
}

TEST(Codegen, TernaryAndNestedConditionals) {
  EXPECT_EQ(run_exit("int main() { return 1 ? 2 : 3; }"), 2);
  EXPECT_EQ(run_exit("int main() { int x = 7; return x > 5 ? x > 6 ? 10 : 20 : 30; }"),
            10);
}

TEST(Codegen, LoopsAndControlFlow) {
  EXPECT_EQ(run_exit(R"(int main() {
    int s = 0; int i;
    for (i = 0; i < 10; i++) { if (i == 3) continue; if (i == 8) break; s += i; }
    return s; })"),
            0 + 1 + 2 + 4 + 5 + 6 + 7);
  EXPECT_EQ(run_exit(R"(int main() {
    int n = 0; do { n++; } while (n < 5); return n; })"),
            5);
  EXPECT_EQ(run_exit(R"(int main() {
    int n = 100; while (n > 3) n /= 2; return n; })"),
            3);
}

TEST(Codegen, IncrementDecrementSemantics) {
  EXPECT_EQ(run_exit("int main() { int x = 5; int y = x++; return x * 10 + y; }"),
            65);
  EXPECT_EQ(run_exit("int main() { int x = 5; int y = ++x; return x * 10 + y; }"),
            66);
  EXPECT_EQ(run_exit("int main() { int x = 5; return x-- - --x; }"), 2);
}

TEST(Codegen, CompoundAssignments) {
  EXPECT_EQ(run_exit(R"(int main() {
    int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1;
    return x; })"),
            17);
}

TEST(Codegen, PointerDerefAndAddressOf) {
  EXPECT_EQ(run_exit(R"(int main() {
    int x = 41; int* p = &x; *p = *p + 1; return x; })"),
            42);
}

TEST(Codegen, PointerArithmeticAndDifference) {
  EXPECT_EQ(run_exit(R"(int main() {
    int a[10]; int i;
    for (i = 0; i < 10; i++) a[i] = i * i;
    int* p = a; int* q = p + 7;
    long d = q - p;
    return *q + (int)d; })"),
            49 + 7);
}

TEST(Codegen, ArraysAndNestedIndexing) {
  EXPECT_EQ(run_exit(R"(int main() {
    int m[3][4]; int r; int c; int s = 0;
    for (r = 0; r < 3; r++) for (c = 0; c < 4; c++) m[r][c] = r * 10 + c;
    for (r = 0; r < 3; r++) s += m[r][r];
    return s; })"),
            0 + 11 + 22);
}

TEST(Codegen, StructFieldsAndArrow) {
  EXPECT_EQ(run_exit(R"(
    struct Pair { int a; long b; };
    int main() {
      struct Pair p;
      p.a = 3; p.b = 4;
      struct Pair* q = &p;
      q->a += 10;
      return q->a + (int)q->b;
    })"),
            17);
}

TEST(Codegen, StructArraysAndPointerChains) {
  EXPECT_EQ(run_exit(R"(
    struct Node { int v; struct Node* next; };
    int main() {
      struct Node nodes[4];
      int i;
      for (i = 0; i < 4; i++) { nodes[i].v = i + 1; nodes[i].next = 0; }
      for (i = 0; i < 3; i++) nodes[i].next = &nodes[i + 1];
      int sum = 0;
      struct Node* p = &nodes[0];
      while (p != 0) { sum += p->v; p = p->next; }
      return sum;
    })"),
            10);
}

TEST(Codegen, DoubleArithmeticAndConversions) {
  EXPECT_EQ(run_output(R"(int main() {
    double d = 7.5; int i = (int)d; double e = (double)i / 2.0;
    print_int(i); print_double(e);
    print_double(sqrt(2.0) * sqrt(2.0));
    return 0; })"),
            "7\n3.5\n2\n");
}

TEST(Codegen, CharTypeNarrowing) {
  EXPECT_EQ(run_exit(R"(int main() {
    char c = 200;        // wraps to -56 as signed char
    int i = c;
    return i == -56; })"),
            1);
}

TEST(Codegen, ShortType) {
  EXPECT_EQ(run_exit(R"(int main() {
    short s = 40000;     // wraps to -25536
    return s < 0; })"),
            1);
}

TEST(Codegen, LongArithmetic64Bit) {
  EXPECT_EQ(run_output(R"(int main() {
    long big = 1L << 40;
    print_int(big + 5);
    long prod = 1000000L * 1000000L;
    print_int(prod);
    return 0; })"),
            "1099511627781\n1000000000000\n");
}

TEST(Codegen, GlobalInitializers) {
  EXPECT_EQ(run_output(R"(
    int scalar = -7;
    long big = 1099511627776;
    double d = 2.5;
    int arr[5] = { 10, 20, 30 };
    int main() {
      print_int(scalar); print_int(big); print_double(d);
      print_int(arr[0] + arr[1] + arr[2] + arr[3] + arr[4]);
      return 0; })"),
            "-7\n1099511627776\n2.5\n60\n");
}

TEST(Codegen, StringsAndChars) {
  EXPECT_EQ(run_output(R"(int main() {
    char* s = "ab\n";
    print_str(s);
    print_char('x'); print_char('\n');
    return 0; })"),
            "ab\nx\n");
}

TEST(Codegen, RecursionAndMutualCalls) {
  // Mini-C needs no prototypes: all signatures are declared before any
  // body is compiled, so mutual recursion works without forward decls.
  EXPECT_EQ(run_exit(R"(
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int main() { return is_even(10) * 10 + is_odd(7); }
  )"),
            11);
}

TEST(Codegen, MallocFreeRoundTrip) {
  EXPECT_EQ(run_exit(R"(int main() {
    long* p = (long*)malloc(8 * sizeof(long));
    int i;
    for (i = 0; i < 8; i++) p[i] = i * 100;
    long sum = 0;
    for (i = 0; i < 8; i++) sum += p[i];
    free((char*)p);
    return (int)(sum / 100); })"),
            28);
}

TEST(Codegen, SizeofValues) {
  EXPECT_EQ(run_output(R"(
    struct S { char c; long l; int i; };
    int main() {
      print_int(sizeof(char)); print_int(sizeof(short));
      print_int(sizeof(int)); print_int(sizeof(long));
      print_int(sizeof(double)); print_int(sizeof(int*));
      print_int(sizeof(struct S));
      return 0; })"),
            "1\n2\n4\n8\n8\n8\n24\n");
}

TEST(Codegen, LogicalNotAndUnaryOps) {
  EXPECT_EQ(run_exit("int main() { return !0 * 10 + !5 + -(-3); }"), 13);
}

TEST(Codegen, DivisionByZeroTraps) {
  auto m = compile_to_ir("int main() { int z = 0; return 5 / z; }", "t");
  vm::Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::DivideByZero);
}

TEST(Codegen, NullDerefTraps) {
  auto m = compile_to_ir("int main() { int* p = 0; return *p; }", "t");
  vm::Interpreter vm(*m);
  auto r = vm.run();
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.trap, machine::TrapKind::UnmappedAccess);
}

}  // namespace
}  // namespace faultlab::mc
