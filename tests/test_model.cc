// Hardware fault-model library tests: spec parsing, naming, corruption
// semantics, the FaultPlan draw discipline, and end-to-end campaigns for
// every builtin model on both engines (including determinism across
// re-runs and checkpoint on/off for the time trigger).
#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/model.h"
#include "fault/pinfi.h"

namespace faultlab::fault {
namespace {

TEST(Model, DefaultIsThePaperModel) {
  const Model m;
  EXPECT_EQ(m.kind, FaultKind::Transient);
  EXPECT_EQ(m.mask, FaultMask::SingleBit);
  EXPECT_EQ(m.target, FaultTarget::RegisterDest);
  EXPECT_EQ(m.trigger, FaultTrigger::Access);
  EXPECT_FALSE(m.persistent());
  EXPECT_EQ(m.name(), "transient");
}

TEST(Model, ParseKinds) {
  EXPECT_EQ(Model::parse("transient").kind, FaultKind::Transient);
  EXPECT_EQ(Model::parse("intermittent").kind, FaultKind::Intermittent);
  const Model s0 = Model::parse("stuck-at-0");
  EXPECT_EQ(s0.kind, FaultKind::Permanent);
  EXPECT_FALSE(s0.stuck_value);
  const Model s1 = Model::parse("stuck-at-1");
  EXPECT_EQ(s1.kind, FaultKind::Permanent);
  EXPECT_TRUE(s1.stuck_value);
  // "permanent" is an alias for stuck-at-1.
  EXPECT_EQ(Model::parse("permanent").name(), "stuck-at-1");
  EXPECT_TRUE(s1.persistent());
  EXPECT_TRUE(Model::parse("intermittent").persistent());
}

TEST(Model, ParseOptions) {
  const Model m =
      Model::parse("intermittent:burst=8,gap=2,bits=3,trigger=time");
  EXPECT_EQ(m.kind, FaultKind::Intermittent);
  EXPECT_EQ(m.burst_length, 8u);
  EXPECT_EQ(m.burst_gap, 2u);
  EXPECT_EQ(m.mask, FaultMask::MultiBit);
  EXPECT_EQ(m.mask_bits, 3u);
  EXPECT_EQ(m.trigger, FaultTrigger::Time);

  const Model b = Model::parse("stuck-at-0:mask=byte,target=mem");
  EXPECT_EQ(b.mask, FaultMask::Byte);
  EXPECT_EQ(b.target, FaultTarget::MemoryCell);

  // bits=1 stays single-bit.
  EXPECT_EQ(Model::parse("transient:bits=1").mask, FaultMask::SingleBit);
}

TEST(Model, ParseRejectsBadSpecs) {
  std::string error;
  const Model bad = Model::parse("cosmic-ray", &error);
  EXPECT_EQ(bad.name(), "transient");  // falls back to the default model
  EXPECT_NE(error.find("cosmic-ray"), std::string::npos);

  EXPECT_NE(Model::parse("transient:bits=0", &error).name(), "zzz");
  EXPECT_NE(error.find("bits"), std::string::npos);
  Model::parse("transient:bits=9", &error);
  EXPECT_NE(error.find("bits"), std::string::npos);
  Model::parse("intermittent:burst=0", &error);
  EXPECT_NE(error.find("burst"), std::string::npos);
  Model::parse("intermittent:gap=65", &error);
  EXPECT_NE(error.find("gap"), std::string::npos);
  Model::parse("transient:nonsense=1", &error);
  EXPECT_NE(error.find("nonsense"), std::string::npos);
  Model::parse("transient:garbage", &error);
  EXPECT_NE(error.find("key=value"), std::string::npos);
  // Overflowing numbers are rejected, not wrapped.
  Model::parse("intermittent:burst=99999999999999999999", &error);
  EXPECT_NE(error.find("burst"), std::string::npos);
}

TEST(Model, Names) {
  EXPECT_EQ(Model::parse("intermittent:burst=4,gap=1").name(),
            "intermittent-b4g1");
  EXPECT_EQ(Model::parse("transient:bits=2").name(), "transient-m2");
  EXPECT_EQ(Model::parse("stuck-at-0:mask=byte").name(), "stuck-at-0-byte");
  EXPECT_EQ(Model::parse("stuck-at-1:target=mem,trigger=time").name(),
            "stuck-at-1-mem-time");
}

TEST(Model, RoundTripThroughName) {
  // Every builtin model's name parses back to an equivalent model.
  for (const Model& m : Model::builtin_suite()) {
    std::string error;
    const Model back = Model::parse(m.name(), &error);
    EXPECT_EQ(back.name(), m.name()) << error;
  }
}

TEST(Model, ApplySemantics) {
  Model transient;
  EXPECT_EQ(transient.apply(0b1010, 0b0110), 0b1100u);  // XOR

  Model stuck1 = Model::parse("stuck-at-1");
  EXPECT_EQ(stuck1.apply(0b0000, 0b0110), 0b0110u);
  EXPECT_EQ(stuck1.apply(0b0110, 0b0110), 0b0110u);  // already stuck: latent

  Model stuck0 = Model::parse("stuck-at-0");
  EXPECT_EQ(stuck0.apply(0b1111, 0b0110), 0b1001u);
  EXPECT_EQ(stuck0.apply(0b1001, 0b0110), 0b1001u);

  Model intermittent = Model::parse("intermittent");
  EXPECT_EQ(intermittent.apply(0b1010, 0b0110), 0b1100u);  // XOR like transient
}

TEST(Model, FromEnvParsesAndFallsBack) {
  ::setenv("FAULTLAB_FAULT_MODEL", "stuck-at-0:mask=byte", 1);
  EXPECT_EQ(Model::from_env().name(), "stuck-at-0-byte");
  ::setenv("FAULTLAB_FAULT_MODEL", "not-a-model", 1);
  EXPECT_EQ(Model::from_env().name(), "transient");  // warns, falls back
  ::unsetenv("FAULTLAB_FAULT_MODEL");
  EXPECT_EQ(Model::from_env().name(), "transient");
}

TEST(FaultPlan, DefaultConsumesExactlyOneDraw) {
  // The transient single-bit plan must replicate the historical
  // rng.below(space) draw byte-for-byte so default campaigns stay
  // bit-identical to the pre-model code.
  Rng a(42), b(42);
  const FaultPlan plan(Model{}, a, 64);
  const std::uint64_t expected = b.below(64);
  EXPECT_EQ(plan.primary_bit(64), expected % 64);
  // Both rngs must now be in the same state: no extra draws happened.
  EXPECT_EQ(a(), b());
}

TEST(FaultPlan, MultiBitDrawsExtraAndDeduplicates) {
  Model m = Model::parse("transient:bits=4");
  Rng rng(7);
  const FaultPlan plan(m, rng, 64);
  unsigned bits[FaultPlan::kMaxBits];
  const unsigned n = plan.bits_for(64, bits);
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 4u);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_LT(bits[i], 64u);
    for (unsigned j = i + 1; j < n; ++j) EXPECT_NE(bits[i], bits[j]);
  }
  // The realized mask has exactly n set bits.
  EXPECT_EQ(static_cast<unsigned>(__builtin_popcountll(plan.mask_for(64))), n);
}

TEST(FaultPlan, ByteMaskIsAlignedWindow) {
  Model m = Model::parse("transient:mask=byte");
  Rng rng(3);
  const FaultPlan plan(m, rng, 64);
  const std::uint64_t mask = plan.mask_for(64);
  EXPECT_EQ(__builtin_popcountll(mask), 8);
  // Aligned: the mask is 0xff shifted by a multiple of 8 containing the
  // primary bit.
  const unsigned base = (plan.primary_bit(64) / 8) * 8;
  EXPECT_EQ(mask, std::uint64_t{0xff} << base);
  // Narrow destinations clip the window.
  const std::uint64_t narrow = plan.mask_for(4);
  EXPECT_EQ(narrow, 0xfull & (0xffull << ((plan.primary_bit(4) / 8) * 8)));
}

TEST(FaultPlan, NarrowWidthFoldsDraws) {
  Rng rng(11);
  const FaultPlan plan(Model{}, rng, 64);
  EXPECT_LT(plan.primary_bit(1), 1u);
  EXPECT_LT(plan.primary_bit(16), 16u);
  EXPECT_EQ(plan.mask_for(1) & ~std::uint64_t{1}, 0u);
}

/// A small program with work in every category (mirrors test_fault.cc).
const char* kModelProgram = R"(
  int data[32];
  double weights[32];
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      data[i] = i * 7 + 3;
      weights[i] = (double)i * 0.5;
    }
    long acc = 0;
    double wacc = 0.0;
    for (i = 0; i < 32; i++) {
      if (data[i] % 3 == 0) acc += data[i];
      wacc = wacc + weights[i] * 1.25;
    }
    print_int(acc);
    print_int((long)(wacc * 100.0));
    return 0;
  }
)";

CampaignConfig small_config(std::size_t trials = 40) {
  CampaignConfig cfg;
  cfg.app = "t";
  cfg.category = ir::Category::All;
  cfg.trials = trials;
  cfg.seed = 99;
  cfg.threads = 1;
  return cfg;
}

/// Per-trial fingerprint for equality checks across engine configurations.
std::string fingerprint(const CampaignResult& r) {
  std::string out;
  for (const TrialRecord& t : r.trials) {
    out += outcome_name(t.outcome);
    out += ':';
    out += std::to_string(t.dynamic_target);
    out += ':';
    out += std::to_string(t.bit);
    out += ':';
    out += std::to_string(t.inject_instruction);
    out += ';';
  }
  return out;
}

TEST(ModelCampaign, BuiltinSuiteRunsOnBothEngines) {
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  for (const Model& m : Model::builtin_suite()) {
    LlfiEngine llfi(prog.module(), {}, CheckpointPolicy::from_env(), m);
    PinfiEngine pinfi(prog.program(), {}, CheckpointPolicy::from_env(), m);
    for (InjectorEngine* engine : {static_cast<InjectorEngine*>(&llfi),
                                   static_cast<InjectorEngine*>(&pinfi)}) {
      const CampaignResult r = run_campaign(*engine, small_config());
      EXPECT_EQ(r.fault_model, m.name());
      EXPECT_GT(r.injected_trials, 0u)
          << engine->tool_name() << " under " << m.name();
      EXPECT_GT(r.activated(), 0u)
          << engine->tool_name() << " under " << m.name();
    }
  }
}

TEST(ModelCampaign, DeterministicAcrossEngineInstances) {
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  for (const Model& m : Model::builtin_suite()) {
    LlfiEngine a(prog.module(), {}, CheckpointPolicy::from_env(), m);
    LlfiEngine b(prog.module(), {}, CheckpointPolicy::from_env(), m);
    EXPECT_EQ(fingerprint(run_campaign(a, small_config())),
              fingerprint(run_campaign(b, small_config())))
        << "LLFI under " << m.name();
    PinfiEngine c(prog.program(), {}, CheckpointPolicy::from_env(), m);
    PinfiEngine d(prog.program(), {}, CheckpointPolicy::from_env(), m);
    EXPECT_EQ(fingerprint(run_campaign(c, small_config())),
              fingerprint(run_campaign(d, small_config())))
        << "PINFI under " << m.name();
  }
}

TEST(ModelCampaign, CheckpointsDoNotPerturbAnyModel) {
  // Checkpointed resumption must be invisible to every model, including
  // the time trigger (whose arm point is an absolute dynamic index) and
  // the persistent models (whose hooks re-fire long after the snapshot).
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  CheckpointPolicy off;
  off.enabled = false;
  std::vector<Model> models = Model::builtin_suite();
  models.push_back(Model::parse("transient:trigger=time"));
  models.push_back(Model::parse("stuck-at-1:trigger=time"));
  for (const Model& m : models) {
    LlfiEngine with_cp(prog.module(), {}, CheckpointPolicy::from_env(), m);
    LlfiEngine without_cp(prog.module(), {}, off, m);
    EXPECT_EQ(fingerprint(run_campaign(with_cp, small_config())),
              fingerprint(run_campaign(without_cp, small_config())))
        << "LLFI under " << m.name();
    PinfiEngine p_with(prog.program(), {}, CheckpointPolicy::from_env(), m);
    PinfiEngine p_without(prog.program(), {}, off, m);
    EXPECT_EQ(fingerprint(run_campaign(p_with, small_config())),
              fingerprint(run_campaign(p_without, small_config())))
        << "PINFI under " << m.name();
  }
}

TEST(ModelCampaign, DefaultModelMatchesExplicitTransient) {
  // An engine built with the default-constructed Model must reproduce the
  // plain two-argument construction (the pre-model code path) exactly.
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  LlfiEngine plain(prog.module());
  LlfiEngine explicit_model(prog.module(), {}, CheckpointPolicy::from_env(),
                            Model{});
  EXPECT_EQ(fingerprint(run_campaign(plain, small_config())),
            fingerprint(run_campaign(explicit_model, small_config())));
}

TEST(ModelCampaign, MemoryCellTargetsRejected) {
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  const Model mem = Model::parse("transient:target=mem");
  EXPECT_THROW(
      LlfiEngine(prog.module(), {}, CheckpointPolicy::from_env(), mem),
      std::runtime_error);
  EXPECT_THROW(
      PinfiEngine(prog.program(), {}, CheckpointPolicy::from_env(), mem),
      std::runtime_error);
}

TEST(ModelCampaign, PermanentActivatesMoreThanTransient) {
  // A stuck-at fault re-fires on every re-execution of the armed site, so
  // over a whole campaign it can only activate at least as often as the
  // single-shot transient under the same draws.
  driver::CompiledProgram prog = driver::compile(kModelProgram, "t");
  LlfiEngine transient(prog.module());
  LlfiEngine stuck(prog.module(), {}, CheckpointPolicy::from_env(),
                   Model::parse("stuck-at-1"));
  const CampaignResult rt = run_campaign(transient, small_config());
  const CampaignResult rs = run_campaign(stuck, small_config());
  EXPECT_GE(rs.activated(), rt.activated());
}

}  // namespace
}  // namespace faultlab::fault
