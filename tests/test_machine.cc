// Machine substrate tests: paged memory, traps, runtime builtins, global
// layout.
#include <gtest/gtest.h>

#include "frontend/sema.h"
#include "machine/memory.h"
#include "machine/runtime.h"
#include "support/bitutil.h"
#include "support/rng.h"

namespace faultlab::machine {
namespace {

std::uint64_t low_mask_for(unsigned size) {
  return size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
}

TEST(Memory, UnmappedAccessTraps) {
  Memory mem;
  EXPECT_THROW(mem.read(0x5000, 4), TrapException);
  EXPECT_THROW(mem.write(0x5000, 4, 1), TrapException);
  try {
    mem.read(0x1234, 1);
    FAIL();
  } catch (const TrapException& e) {
    EXPECT_EQ(e.kind(), TrapKind::UnmappedAccess);
    EXPECT_EQ(e.address(), 0x1234u);
  }
}

TEST(Memory, NullPageNeverMapped) {
  Memory mem;
  mem.map_range(Layout::kGlobalBase, 4096);
  EXPECT_THROW(mem.read(0, 8), TrapException);
  EXPECT_THROW(mem.read(8, 8), TrapException);
}

TEST(Memory, ReadWriteRoundTripAllWidths) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  for (unsigned size : {1u, 2u, 4u, 8u}) {
    const std::uint64_t value = 0x1122334455667788ull & low_mask_for(size);
    mem.write(0x10040, size, value);
    EXPECT_EQ(mem.read(0x10040, size), value) << "size " << size;
  }
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 4, 0x0A0B0C0D);
  EXPECT_EQ(mem.read(0x10000, 1), 0x0Du);
  EXPECT_EQ(mem.read(0x10003, 1), 0x0Au);
}

TEST(Memory, PageStraddlingAccess) {
  Memory mem;
  mem.map_range(0x10000, 2 * Memory::kPageSize);
  const std::uint64_t addr = 0x10000 + Memory::kPageSize - 3;
  mem.write(addr, 8, 0x1122334455667788ull);
  EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
}

TEST(Memory, PartiallyUnmappedStraddleTraps) {
  Memory mem;
  mem.map_range(0x10000, Memory::kPageSize);  // only the first page
  const std::uint64_t addr = 0x10000 + Memory::kPageSize - 3;
  EXPECT_THROW(mem.write(addr, 8, 1), TrapException);
}

TEST(Memory, BulkBytes) {
  Memory mem;
  mem.map_range(0x20000, 8192);
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  mem.write_bytes(0x20000, data.data(), data.size());
  std::vector<std::uint8_t> back(5000);
  mem.read_bytes(0x20000, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(Memory, PageStraddlingAllWidthsAndOffsets) {
  // Every (width, offset) combination that crosses the page boundary must
  // round-trip — these are exactly the accesses the single-entry page cache
  // cannot serve from one page.
  Memory mem;
  mem.map_range(0x10000, 2 * Memory::kPageSize);
  const std::uint64_t boundary = 0x10000 + Memory::kPageSize;
  for (unsigned size : {2u, 4u, 8u}) {
    for (unsigned before = 1; before < size; ++before) {
      const std::uint64_t addr = boundary - before;
      const std::uint64_t value = 0xF1E2D3C4B5A69788ull & low_mask_for(size);
      mem.write(addr, size, value);
      EXPECT_EQ(mem.read(addr, size), value)
          << "size " << size << " offset -" << before;
      // Byte-level check: the write must land little-endian across pages.
      for (unsigned i = 0; i < size; ++i)
        EXPECT_EQ(mem.read(addr + i, 1), (value >> (8 * i)) & 0xff)
            << "size " << size << " offset -" << before << " byte " << i;
    }
  }
}

TEST(Memory, StraddlingWriteThenSameLocationCachedRead) {
  // A straddling access touches two pages; the cache must not serve stale
  // data for either afterwards.
  Memory mem;
  mem.map_range(0x10000, 2 * Memory::kPageSize);
  const std::uint64_t boundary = 0x10000 + Memory::kPageSize;
  mem.write(boundary - 8, 8, 0xAAAAAAAAAAAAAAAAull);  // first page only
  mem.write(boundary, 8, 0xBBBBBBBBBBBBBBBBull);      // second page only
  mem.write(boundary - 4, 8, 0x1111222233334444ull);  // straddles both
  EXPECT_EQ(mem.read(boundary - 8, 4), 0xAAAAAAAAu);  // untouched prefix
  EXPECT_EQ(mem.read(boundary - 4, 4), 0x33334444u);  // straddle low half
  EXPECT_EQ(mem.read(boundary, 4), 0x11112222u);      // straddle high half
  EXPECT_EQ(mem.read(boundary + 4, 4), 0xBBBBBBBBu);  // untouched suffix
}

TEST(Memory, SnapshotIsolatedFromLaterWrites) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 111);
  Memory::Snapshot snap = mem.snapshot();
  EXPECT_EQ(snap.mapped_pages(), 1u);

  // Writes after the snapshot must not leak into it (copy-on-write).
  mem.write(0x10000, 8, 222);
  mem.map_range(0x20000, 4096);
  mem.write(0x20000, 8, 333);

  mem.restore(snap);
  EXPECT_EQ(mem.read(0x10000, 8), 111u);
  EXPECT_FALSE(mem.is_mapped(0x20000));
  EXPECT_THROW(mem.read(0x20000, 8), TrapException);
}

TEST(Memory, WritesAfterRestoreDoNotCorruptSnapshot) {
  // The other CoW direction: a restored image shares pages with the
  // snapshot, and writing through it must clone, not mutate the original.
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 111);
  Memory::Snapshot snap = mem.snapshot();

  mem.restore(snap);
  mem.write(0x10000, 8, 999);
  EXPECT_EQ(mem.read(0x10000, 8), 999u);

  mem.restore(snap);  // snapshot still pristine
  EXPECT_EQ(mem.read(0x10000, 8), 111u);
}

TEST(Memory, SnapshotSharedAcrossTwoRestores) {
  // Two memories restored from one snapshot must diverge independently —
  // the checkpoint layer does exactly this from concurrent trial workers.
  Memory a;
  a.map_range(0x10000, 4096);
  a.write(0x10000, 8, 7);
  Memory::Snapshot snap = a.snapshot();

  Memory b;
  b.restore(snap);
  a.restore(snap);
  a.write(0x10000, 8, 100);
  b.write(0x10008, 8, 200);
  EXPECT_EQ(a.read(0x10000, 8), 100u);
  EXPECT_EQ(a.read(0x10008, 8), 0u);
  EXPECT_EQ(b.read(0x10000, 8), 7u);
  EXPECT_EQ(b.read(0x10008, 8), 200u);
}

TEST(Memory, SnapshotSurvivesSourceReset) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 42);
  Memory::Snapshot snap = mem.snapshot();
  mem.reset();
  EXPECT_EQ(mem.mapped_pages(), 0u);
  mem.restore(snap);
  EXPECT_EQ(mem.read(0x10000, 8), 42u);
}

TEST(Memory, CacheInvalidatedByRestore) {
  // Prime the read cache on a page, restore an older image of that page,
  // and make sure the next read sees the restored bytes, not the cache.
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 1);
  Memory::Snapshot snap = mem.snapshot();
  mem.write(0x10000, 8, 2);
  EXPECT_EQ(mem.read(0x10000, 8), 2u);  // cache hot with the new page
  mem.restore(snap);
  EXPECT_EQ(mem.read(0x10000, 8), 1u);
}

TEST(Memory, ResetClearsMappings) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 42);
  mem.reset();
  EXPECT_EQ(mem.mapped_pages(), 0u);
  EXPECT_THROW(mem.read(0x10000, 8), TrapException);
}

TEST(Memory, DeltaRestoreWalksOnlyDirtyPages) {
  Memory mem;
  mem.map_range(0x10000, 8 * Memory::kPageSize);
  for (std::uint64_t p = 0; p < 8; ++p)
    mem.write(0x10000 + p * Memory::kPageSize, 8, p + 1);
  Memory::Snapshot snap = mem.snapshot();

  mem.restore(snap);  // arms dirty tracking against `snap`
  mem.write(0x10000, 8, 100);
  mem.write(0x10000 + 3 * Memory::kPageSize, 8, 300);
  const Memory::RestoreStats r = mem.restore_delta(snap);
  EXPECT_TRUE(r.delta);
  EXPECT_EQ(r.pages, 2u);  // only the two cloned pages, not all eight
  for (std::uint64_t p = 0; p < 8; ++p)
    EXPECT_EQ(mem.read(0x10000 + p * Memory::kPageSize, 8), p + 1);
}

TEST(Memory, DeltaRestoreFallsBackToFullWithoutABase) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 1);
  Memory::Snapshot snap = mem.snapshot();
  // No restore(snap) has happened yet: the image does not derive from the
  // snapshot, so the delta path must not be taken.
  mem.write(0x10000, 8, 2);
  const Memory::RestoreStats r = mem.restore_delta(snap);
  EXPECT_FALSE(r.delta);
  EXPECT_EQ(mem.read(0x10000, 8), 1u);
  // reset() disarms tracking: the next restore_delta is full again.
  mem.reset();
  EXPECT_FALSE(mem.restore_delta(snap).delta);
  EXPECT_EQ(mem.read(0x10000, 8), 1u);
}

TEST(Memory, DeltaRestoreAgainstDifferentSnapshotFallsBack) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 1);
  Memory::Snapshot a = mem.snapshot();
  mem.write(0x10000, 8, 2);
  Memory::Snapshot b = mem.snapshot();

  mem.restore(a);
  mem.write(0x10000, 8, 3);
  // Delta base is `a`; resetting to `b` must detect the mismatch.
  EXPECT_FALSE(mem.restore_delta(b).delta);
  EXPECT_EQ(mem.read(0x10000, 8), 2u);
  // ...and that full fallback re-arms tracking against `b`.
  mem.write(0x10000, 8, 4);
  const Memory::RestoreStats r = mem.restore_delta(b);
  EXPECT_TRUE(r.delta);
  EXPECT_EQ(mem.read(0x10000, 8), 2u);
}

TEST(Memory, DeltaRestoreUnmapsPagesMappedSinceTheSnapshot) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  Memory::Snapshot snap = mem.snapshot();
  mem.restore(snap);
  mem.map_range(0x20000, 2 * Memory::kPageSize);  // absent from the snapshot
  mem.write(0x20000, 8, 7);
  const Memory::RestoreStats r = mem.restore_delta(snap);
  EXPECT_TRUE(r.delta);
  EXPECT_EQ(mem.mapped_pages(), snap.mapped_pages());
  EXPECT_FALSE(mem.is_mapped(0x20000));
  EXPECT_THROW(mem.read(0x20000, 8), TrapException);
}

TEST(Memory, DeltaRestoreUnderCowPageAliasing) {
  // Snapshot pages are aliased by the snapshot, the restored image, and a
  // second memory restored from the same snapshot. Dirty writes through one
  // image must never leak into the snapshot or the other image, and a delta
  // reset must bring back the exact shared page.
  Memory a;
  a.map_range(0x10000, 2 * Memory::kPageSize);
  a.write(0x10000, 8, 11);
  a.write(0x10000 + Memory::kPageSize, 8, 22);
  Memory::Snapshot snap = a.snapshot();

  Memory b;
  b.restore(snap);
  a.restore(snap);
  a.write(0x10000, 8, 1111);                      // clone in a only
  b.write(0x10000 + Memory::kPageSize, 8, 2222);  // clone in b only

  const Memory::RestoreStats ra = a.restore_delta(snap);
  EXPECT_TRUE(ra.delta);
  EXPECT_EQ(ra.pages, 1u);
  EXPECT_EQ(a.read(0x10000, 8), 11u);
  EXPECT_EQ(b.read(0x10000 + Memory::kPageSize, 8), 2222u);  // b untouched

  const Memory::RestoreStats rb = b.restore_delta(snap);
  EXPECT_TRUE(rb.delta);
  EXPECT_EQ(rb.pages, 1u);
  EXPECT_EQ(b.read(0x10000 + Memory::kPageSize, 8), 22u);
}

TEST(Memory, DeltaRestoreInvalidatesCachePrecisely) {
  // The last-page cache holds a writable pointer to a dirty page; the delta
  // walk must demote/invalidate it so the next read sees snapshot bytes.
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 1);
  Memory::Snapshot snap = mem.snapshot();
  mem.restore(snap);
  mem.write(0x10000, 8, 2);             // cache hot and writable
  EXPECT_EQ(mem.read(0x10000, 8), 2u);  // served from the cache
  EXPECT_TRUE(mem.restore_delta(snap).delta);
  EXPECT_EQ(mem.read(0x10000, 8), 1u);
  // A snapshot also demotes the cache: writing after it must still clone.
  mem.write(0x10000, 8, 3);
  EXPECT_TRUE(mem.restore_delta(snap).delta);
  EXPECT_EQ(mem.read(0x10000, 8), 1u);
}

TEST(Memory, DeltaRestoreEquivalenceFuzz) {
  // Random write/map/restore workload executed twice — once with full
  // restores, once with delta restores — must produce byte-identical
  // images at every reset.
  constexpr std::uint64_t kBase = 0x10000;
  constexpr std::uint64_t kPages = 32;
  Memory full;
  Memory delta;
  for (Memory* m : {&full, &delta}) m->map_range(kBase, kPages * Memory::kPageSize);

  Rng rng(0xF00D);
  Memory::Snapshot snap_full = full.snapshot();
  Memory::Snapshot snap_delta = delta.snapshot();
  full.restore(snap_full);
  delta.restore(snap_delta);

  for (int round = 0; round < 200; ++round) {
    const int writes = static_cast<int>(rng.below(8));
    for (int w = 0; w < writes; ++w) {
      const std::uint64_t page = rng.below(kPages);
      const std::uint64_t offset = rng.below(Memory::kPageSize - 8);
      const std::uint64_t value = rng();
      full.write(kBase + page * Memory::kPageSize + offset, 8, value);
      delta.write(kBase + page * Memory::kPageSize + offset, 8, value);
    }
    switch (rng.below(4)) {
      case 0:  // reset both images to the snapshot
        full.restore(snap_full);
        delta.restore_delta(snap_delta);
        break;
      case 1: {  // re-snapshot: later resets target the new image
        snap_full = full.snapshot();
        snap_delta = delta.snapshot();
        full.restore(snap_full);
        delta.restore_delta(snap_delta);
        break;
      }
      default:
        break;  // keep writing
    }
    for (int probe = 0; probe < 8; ++probe) {
      const std::uint64_t page = rng.below(kPages);
      const std::uint64_t offset = rng.below(Memory::kPageSize - 8);
      const std::uint64_t addr = kBase + page * Memory::kPageSize + offset;
      ASSERT_EQ(full.read(addr, 8), delta.read(addr, 8))
          << "round " << round << " addr " << addr;
    }
    ASSERT_EQ(full.mapped_pages(), delta.mapped_pages());
  }
}

TEST(Runtime, HeapAllocAlignmentAndGrowth) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(10);
  const std::uint64_t b = rt.heap_alloc(1);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GT(b, a);
  mem.write(a, 8, 7);  // allocation is mapped
  EXPECT_EQ(mem.read(a, 8), 7u);
}

TEST(Runtime, HeapExhaustionReturnsNull) {
  Memory mem;
  Runtime rt(mem);
  EXPECT_EQ(rt.heap_alloc(1ull << 40), 0u);
}

TEST(Runtime, DoubleFreeAndBadFreeTrap) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(16);
  rt.heap_free(a);
  EXPECT_THROW(rt.heap_free(a), TrapException);
  EXPECT_THROW(rt.heap_free(0x123456), TrapException);
  rt.heap_free(0);  // free(NULL) is a no-op
}

TEST(Runtime, PrintBuiltinsFormat) {
  Memory mem;
  Runtime rt(mem);
  rt.call_builtin("print_int", {static_cast<std::uint64_t>(-42)});
  rt.call_builtin("print_double", {bits_of(2.5)});
  rt.call_builtin("print_char", {'x'});
  EXPECT_EQ(rt.output(), "-42\n2.5\nx");
}

TEST(Runtime, PrintStrReadsSimulatedMemoryAndTraps) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(8);
  const char* s = "hey";
  mem.write_bytes(a, reinterpret_cast<const std::uint8_t*>(s), 4);
  rt.call_builtin("print_str", {a});
  EXPECT_EQ(rt.output(), "hey");
  EXPECT_THROW(rt.call_builtin("print_str", {0x40}), TrapException);
}

TEST(Runtime, MathBuiltins) {
  Memory mem;
  Runtime rt(mem);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("sqrt", {bits_of(9.0)})), 3.0);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("fabs", {bits_of(-2.5)})), 2.5);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("floor", {bits_of(2.9)})), 2.0);
}

TEST(Runtime, IsBuiltinMatchesSemaList) {
  for (const auto& spec : mc::builtin_specs())
    EXPECT_TRUE(Runtime::is_builtin(spec.name)) << spec.name;
  EXPECT_FALSE(Runtime::is_builtin("nonsense"));
}

TEST(GlobalLayout, AssignsAlignedNonOverlappingAddresses) {
  ir::Module m("t");
  auto& t = m.types();
  auto* a = m.create_global(t.i8(), "a");
  auto* b = m.create_global(t.double_type(), "b");
  auto* c = m.create_global(t.array_of(t.i32(), 10), "c");
  GlobalLayout layout(m);
  EXPECT_EQ(layout.address_of(a), Layout::kGlobalBase);
  EXPECT_EQ(layout.address_of(b) % 8, 0u);
  EXPECT_GE(layout.address_of(c), layout.address_of(b) + 8);
  EXPECT_GE(layout.total_size(), 1u + 8u + 40u);
}

TEST(GlobalLayout, MaterializesInitializers) {
  ir::Module m("t");
  auto& t = m.types();
  m.create_global(t.i32(), "x", {0x78, 0x56, 0x34, 0x12});
  GlobalLayout layout(m);
  Memory mem;
  layout.materialize(mem);
  EXPECT_EQ(mem.read(Layout::kGlobalBase, 4), 0x12345678u);
}

TEST(Trap, NamesAreStable) {
  EXPECT_STREQ(trap_kind_name(TrapKind::UnmappedAccess), "unmapped-access");
  EXPECT_STREQ(trap_kind_name(TrapKind::DivideByZero), "divide-by-zero");
  EXPECT_STREQ(trap_kind_name(TrapKind::InvalidJump), "invalid-jump");
}

}  // namespace
}  // namespace faultlab::machine
