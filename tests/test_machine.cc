// Machine substrate tests: paged memory, traps, runtime builtins, global
// layout.
#include <gtest/gtest.h>

#include "frontend/sema.h"
#include "machine/memory.h"
#include "machine/runtime.h"
#include "support/bitutil.h"

namespace faultlab::machine {
namespace {

std::uint64_t low_mask_for(unsigned size) {
  return size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
}

TEST(Memory, UnmappedAccessTraps) {
  Memory mem;
  EXPECT_THROW(mem.read(0x5000, 4), TrapException);
  EXPECT_THROW(mem.write(0x5000, 4, 1), TrapException);
  try {
    mem.read(0x1234, 1);
    FAIL();
  } catch (const TrapException& e) {
    EXPECT_EQ(e.kind(), TrapKind::UnmappedAccess);
    EXPECT_EQ(e.address(), 0x1234u);
  }
}

TEST(Memory, NullPageNeverMapped) {
  Memory mem;
  mem.map_range(Layout::kGlobalBase, 4096);
  EXPECT_THROW(mem.read(0, 8), TrapException);
  EXPECT_THROW(mem.read(8, 8), TrapException);
}

TEST(Memory, ReadWriteRoundTripAllWidths) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  for (unsigned size : {1u, 2u, 4u, 8u}) {
    const std::uint64_t value = 0x1122334455667788ull & low_mask_for(size);
    mem.write(0x10040, size, value);
    EXPECT_EQ(mem.read(0x10040, size), value) << "size " << size;
  }
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 4, 0x0A0B0C0D);
  EXPECT_EQ(mem.read(0x10000, 1), 0x0Du);
  EXPECT_EQ(mem.read(0x10003, 1), 0x0Au);
}

TEST(Memory, PageStraddlingAccess) {
  Memory mem;
  mem.map_range(0x10000, 2 * Memory::kPageSize);
  const std::uint64_t addr = 0x10000 + Memory::kPageSize - 3;
  mem.write(addr, 8, 0x1122334455667788ull);
  EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
}

TEST(Memory, PartiallyUnmappedStraddleTraps) {
  Memory mem;
  mem.map_range(0x10000, Memory::kPageSize);  // only the first page
  const std::uint64_t addr = 0x10000 + Memory::kPageSize - 3;
  EXPECT_THROW(mem.write(addr, 8, 1), TrapException);
}

TEST(Memory, BulkBytes) {
  Memory mem;
  mem.map_range(0x20000, 8192);
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  mem.write_bytes(0x20000, data.data(), data.size());
  std::vector<std::uint8_t> back(5000);
  mem.read_bytes(0x20000, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(Memory, ResetClearsMappings) {
  Memory mem;
  mem.map_range(0x10000, 4096);
  mem.write(0x10000, 8, 42);
  mem.reset();
  EXPECT_EQ(mem.mapped_pages(), 0u);
  EXPECT_THROW(mem.read(0x10000, 8), TrapException);
}

TEST(Runtime, HeapAllocAlignmentAndGrowth) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(10);
  const std::uint64_t b = rt.heap_alloc(1);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GT(b, a);
  mem.write(a, 8, 7);  // allocation is mapped
  EXPECT_EQ(mem.read(a, 8), 7u);
}

TEST(Runtime, HeapExhaustionReturnsNull) {
  Memory mem;
  Runtime rt(mem);
  EXPECT_EQ(rt.heap_alloc(1ull << 40), 0u);
}

TEST(Runtime, DoubleFreeAndBadFreeTrap) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(16);
  rt.heap_free(a);
  EXPECT_THROW(rt.heap_free(a), TrapException);
  EXPECT_THROW(rt.heap_free(0x123456), TrapException);
  rt.heap_free(0);  // free(NULL) is a no-op
}

TEST(Runtime, PrintBuiltinsFormat) {
  Memory mem;
  Runtime rt(mem);
  rt.call_builtin("print_int", {static_cast<std::uint64_t>(-42)});
  rt.call_builtin("print_double", {bits_of(2.5)});
  rt.call_builtin("print_char", {'x'});
  EXPECT_EQ(rt.output(), "-42\n2.5\nx");
}

TEST(Runtime, PrintStrReadsSimulatedMemoryAndTraps) {
  Memory mem;
  Runtime rt(mem);
  const std::uint64_t a = rt.heap_alloc(8);
  const char* s = "hey";
  mem.write_bytes(a, reinterpret_cast<const std::uint8_t*>(s), 4);
  rt.call_builtin("print_str", {a});
  EXPECT_EQ(rt.output(), "hey");
  EXPECT_THROW(rt.call_builtin("print_str", {0x40}), TrapException);
}

TEST(Runtime, MathBuiltins) {
  Memory mem;
  Runtime rt(mem);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("sqrt", {bits_of(9.0)})), 3.0);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("fabs", {bits_of(-2.5)})), 2.5);
  EXPECT_DOUBLE_EQ(double_of(rt.call_builtin("floor", {bits_of(2.9)})), 2.0);
}

TEST(Runtime, IsBuiltinMatchesSemaList) {
  for (const auto& spec : mc::builtin_specs())
    EXPECT_TRUE(Runtime::is_builtin(spec.name)) << spec.name;
  EXPECT_FALSE(Runtime::is_builtin("nonsense"));
}

TEST(GlobalLayout, AssignsAlignedNonOverlappingAddresses) {
  ir::Module m("t");
  auto& t = m.types();
  auto* a = m.create_global(t.i8(), "a");
  auto* b = m.create_global(t.double_type(), "b");
  auto* c = m.create_global(t.array_of(t.i32(), 10), "c");
  GlobalLayout layout(m);
  EXPECT_EQ(layout.address_of(a), Layout::kGlobalBase);
  EXPECT_EQ(layout.address_of(b) % 8, 0u);
  EXPECT_GE(layout.address_of(c), layout.address_of(b) + 8);
  EXPECT_GE(layout.total_size(), 1u + 8u + 40u);
}

TEST(GlobalLayout, MaterializesInitializers) {
  ir::Module m("t");
  auto& t = m.types();
  m.create_global(t.i32(), "x", {0x78, 0x56, 0x34, 0x12});
  GlobalLayout layout(m);
  Memory mem;
  layout.materialize(mem);
  EXPECT_EQ(mem.read(Layout::kGlobalBase, 4), 0x12345678u);
}

TEST(Trap, NamesAreStable) {
  EXPECT_STREQ(trap_kind_name(TrapKind::UnmappedAccess), "unmapped-access");
  EXPECT_STREQ(trap_kind_name(TrapKind::DivideByZero), "divide-by-zero");
  EXPECT_STREQ(trap_kind_name(TrapKind::InvalidJump), "invalid-jump");
}

}  // namespace
}  // namespace faultlab::machine
