// Systematic instruction-semantics parity: for every integer/fp opcode,
// width, and comparison predicate, build a minimal IR function over random
// and boundary operand values and require the IR interpreter and the x86
// simulator to compute identical results. This pins down the semantic
// contract (wrapping, shift masking, division traps, IEEE behaviour,
// conversion saturation) that both LLFI and PINFI campaigns rely on for
// byte-identical golden runs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "driver/pipeline.h"
#include "ir/verifier.h"
#include "support/bitutil.h"
#include "ir/irbuilder.h"
#include "machine/runtime.h"
#include "support/rng.h"
#include "vm/interpreter.h"
#include "x86/simulator.h"

namespace faultlab {
namespace {

using ir::Opcode;

/// Builds `i64 main() { print_int(sext(op(a, b))); ret 0 }` over width
/// `bits` and runs it on both engines; returns {ir ok, equal}.
struct BinaryCase {
  Opcode op;
  unsigned bits;
  std::uint64_t a, b;
};

std::pair<bool, bool> run_binary_case(const BinaryCase& c) {
  auto m = std::make_unique<ir::Module>("t");
  auto& t = m->types();
  // print_int so the result flows through the shared runtime.
  auto* print_int =
      m->create_function(t.func_type(t.void_type(), {t.i64()}), "print_int",
                         /*is_builtin=*/true);
  auto* main_fn = m->create_function(t.func_type(t.i32(), {}), "main");
  ir::IRBuilder b(*m);
  b.set_insert_point(main_fn->create_block("entry"));
  const ir::Type* ty = t.int_type(c.bits);
  ir::Value* r = b.binary(c.op, m->const_int(ty, c.a), m->const_int(ty, c.b));
  ir::Value* wide =
      c.bits == 64 ? r : b.cast(Opcode::SExt, r, t.i64());
  b.call(print_int, {wide});
  b.ret(m->const_i32(0));
  main_fn->renumber();
  ir::verify_or_throw(*m);

  vm::Interpreter vm(*m);
  const auto r_ir = vm.run();

  machine::GlobalLayout layout(*m);
  const x86::Program prog = driver::lower_module(*m, layout);
  x86::Simulator sim(prog);
  const auto r_asm = sim.run();

  const bool both_trap = r_ir.trapped && r_asm.trapped;
  if (both_trap) return {true, r_ir.trap == r_asm.trap};
  if (r_ir.trapped != r_asm.trapped) return {true, false};
  return {true, r_ir.output == r_asm.output};
}

class IntBinaryParity
    : public ::testing::TestWithParam<std::tuple<Opcode, unsigned>> {};

TEST_P(IntBinaryParity, RandomAndBoundaryOperands) {
  const auto [op, bits] = GetParam();
  Rng rng(0xBEEF ^ (static_cast<std::uint64_t>(op) << 8) ^ bits);
  const std::uint64_t mask = low_mask(bits);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cases;
  // Boundaries: zero, one, minus-one, sign bit, mixed.
  const std::uint64_t specials[] = {0, 1, mask, std::uint64_t{1} << (bits - 1),
                                    mask >> 1, 2};
  for (std::uint64_t x : specials)
    for (std::uint64_t y : specials) cases.emplace_back(x & mask, y & mask);
  for (int i = 0; i < 40; ++i)
    cases.emplace_back(rng() & mask, rng() & mask);

  for (const auto& [a, b] : cases) {
    const auto [ok, equal] = run_binary_case({op, bits, a, b});
    ASSERT_TRUE(ok);
    EXPECT_TRUE(equal) << ir::opcode_name(op) << " i" << bits << " a=" << a
                       << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndWidths, IntBinaryParity,
    ::testing::Combine(::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul,
                                         Opcode::SDiv, Opcode::SRem,
                                         Opcode::And, Opcode::Or, Opcode::Xor,
                                         Opcode::Shl, Opcode::LShr,
                                         Opcode::AShr),
                       ::testing::Values(8u, 16u, 32u, 64u)),
    [](const auto& info) {
      return std::string(ir::opcode_name(std::get<0>(info.param))) + "_i" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Floating point: arithmetic and ordered comparisons, including specials.

class FpParity : public ::testing::TestWithParam<Opcode> {};

TEST_P(FpParity, ArithmeticOverSpecials) {
  const Opcode op = GetParam();
  const double specials[] = {0.0,   -0.0,  1.0,    -1.5,   1e300,
                             -1e300, 1e-300, 0.1,   3.5,    -2.25};
  for (double a : specials) {
    for (double b : specials) {
      auto m = std::make_unique<ir::Module>("t");
      auto& t = m->types();
      auto* print_double = m->create_function(
          t.func_type(t.void_type(), {t.double_type()}), "print_double", true);
      auto* main_fn = m->create_function(t.func_type(t.i32(), {}), "main");
      ir::IRBuilder builder(*m);
      builder.set_insert_point(main_fn->create_block("entry"));
      ir::Value* r =
          builder.binary(op, m->const_double(a), m->const_double(b));
      builder.call(print_double, {r});
      builder.ret(m->const_i32(0));
      main_fn->renumber();
      ir::verify_or_throw(*m);

      vm::Interpreter vm(*m);
      const auto r_ir = vm.run();
      machine::GlobalLayout layout(*m);
      const x86::Program prog = driver::lower_module(*m, layout);
      x86::Simulator sim(prog);
      const auto r_asm = sim.run();
      ASSERT_TRUE(r_ir.completed());
      ASSERT_TRUE(r_asm.completed());
      EXPECT_EQ(r_ir.output, r_asm.output)
          << ir::opcode_name(op) << " " << a << ", " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FpOps, FpParity,
                         ::testing::Values(Opcode::FAdd, Opcode::FSub,
                                           Opcode::FMul, Opcode::FDiv),
                         [](const auto& info) {
                           return ir::opcode_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Comparison predicates, both int (all ten) and fp (all six, incl. NaN).

class ICmpParity : public ::testing::TestWithParam<ir::ICmpPred> {};

TEST_P(ICmpParity, AllPredicatesAgree) {
  const ir::ICmpPred pred = GetParam();
  Rng rng(static_cast<std::uint64_t>(pred) + 99);
  const std::int64_t specials[] = {0, 1, -1, INT64_MAX, INT64_MIN, 42, -42};
  std::vector<std::pair<std::int64_t, std::int64_t>> cases;
  for (auto x : specials)
    for (auto y : specials) cases.emplace_back(x, y);
  for (int i = 0; i < 20; ++i)
    cases.emplace_back(static_cast<std::int64_t>(rng()),
                       static_cast<std::int64_t>(rng()));

  for (const auto& [a, b] : cases) {
    auto m = std::make_unique<ir::Module>("t");
    auto& t = m->types();
    auto* print_int = m->create_function(
        t.func_type(t.void_type(), {t.i64()}), "print_int", true);
    auto* main_fn = m->create_function(t.func_type(t.i32(), {}), "main");
    ir::IRBuilder builder(*m);
    builder.set_insert_point(main_fn->create_block("entry"));
    ir::Value* flag = builder.icmp(pred, m->const_i64(a), m->const_i64(b));
    builder.call(print_int,
                 {builder.cast(Opcode::ZExt, flag, t.i64())});
    builder.ret(m->const_i32(0));
    main_fn->renumber();
    ir::verify_or_throw(*m);

    vm::Interpreter vm(*m);
    machine::GlobalLayout layout(*m);
    const x86::Program prog = driver::lower_module(*m, layout);
    x86::Simulator sim(prog);
    EXPECT_EQ(vm.run().output, sim.run().output)
        << ir::icmp_pred_name(pred) << " " << a << ", " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Preds, ICmpParity,
    ::testing::Values(ir::ICmpPred::EQ, ir::ICmpPred::NE, ir::ICmpPred::SLT,
                      ir::ICmpPred::SLE, ir::ICmpPred::SGT, ir::ICmpPred::SGE,
                      ir::ICmpPred::ULT, ir::ICmpPred::ULE, ir::ICmpPred::UGT,
                      ir::ICmpPred::UGE),
    [](const auto& info) { return ir::icmp_pred_name(info.param); });

class FCmpParity : public ::testing::TestWithParam<ir::FCmpPred> {};

TEST_P(FCmpParity, OrderedPredicatesAgreeIncludingNaN) {
  const ir::FCmpPred pred = GetParam();
  const double nan = std::nan("");
  const double specials[] = {0.0, -0.0, 1.0, -1.0, 1e300, -1e-300, nan};
  for (double a : specials) {
    for (double b : specials) {
      auto m = std::make_unique<ir::Module>("t");
      auto& t = m->types();
      auto* print_int = m->create_function(
          t.func_type(t.void_type(), {t.i64()}), "print_int", true);
      auto* main_fn = m->create_function(t.func_type(t.i32(), {}), "main");
      ir::IRBuilder builder(*m);
      builder.set_insert_point(main_fn->create_block("entry"));
      ir::Value* flag =
          builder.fcmp(pred, m->const_double(a), m->const_double(b));
      builder.call(print_int, {builder.cast(Opcode::ZExt, flag, t.i64())});
      builder.ret(m->const_i32(0));
      main_fn->renumber();
      ir::verify_or_throw(*m);

      vm::Interpreter vm(*m);
      machine::GlobalLayout layout(*m);
      const x86::Program prog = driver::lower_module(*m, layout);
      x86::Simulator sim(prog);
      EXPECT_EQ(vm.run().output, sim.run().output)
          << ir::fcmp_pred_name(pred) << " " << a << ", " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Preds, FCmpParity,
    ::testing::Values(ir::FCmpPred::OEQ, ir::FCmpPred::ONE, ir::FCmpPred::OLT,
                      ir::FCmpPred::OLE, ir::FCmpPred::OGT, ir::FCmpPred::OGE),
    [](const auto& info) { return ir::fcmp_pred_name(info.param); });

// ---------------------------------------------------------------------------
// Conversions: every cast pair the frontend can emit, over boundaries.

TEST(CastParity, IntWideningNarrowingAndFpConversions) {
  struct CastCase {
    Opcode op;
    unsigned from_bits, to_bits;  // 0 = double
  };
  const CastCase cases[] = {
      {Opcode::SExt, 8, 64},   {Opcode::SExt, 16, 32}, {Opcode::SExt, 32, 64},
      {Opcode::ZExt, 8, 64},   {Opcode::ZExt, 32, 64}, {Opcode::Trunc, 64, 8},
      {Opcode::Trunc, 64, 32}, {Opcode::Trunc, 32, 16},
      {Opcode::SIToFP, 64, 0}, {Opcode::SIToFP, 32, 0},
      {Opcode::FPToSI, 0, 64}, {Opcode::FPToSI, 0, 32},
  };
  Rng rng(2014);
  for (const CastCase& c : cases) {
    for (int trial = 0; trial < 25; ++trial) {
      auto m = std::make_unique<ir::Module>("t");
      auto& t = m->types();
      auto* print_int = m->create_function(
          t.func_type(t.void_type(), {t.i64()}), "print_int", true);
      auto* print_double = m->create_function(
          t.func_type(t.void_type(), {t.double_type()}), "print_double", true);
      auto* main_fn = m->create_function(t.func_type(t.i32(), {}), "main");
      ir::IRBuilder builder(*m);
      builder.set_insert_point(main_fn->create_block("entry"));

      ir::Value* src;
      const ir::Type* to_type =
          c.to_bits == 0 ? t.double_type() : t.int_type(c.to_bits);
      if (c.from_bits == 0) {
        const double inputs[] = {0.5, -3.9, 1e18, -1e18, 1e300, 0.0};
        src = m->const_double(inputs[trial % 6]);
      } else {
        src = m->const_int(t.int_type(c.from_bits),
                           rng() & low_mask(c.from_bits));
      }
      ir::Value* converted = builder.cast(c.op, src, to_type);
      if (to_type->is_double()) {
        builder.call(print_double, {converted});
      } else {
        ir::Value* wide = c.to_bits == 64
                              ? converted
                              : builder.cast(Opcode::SExt, converted, t.i64());
        builder.call(print_int, {wide});
      }
      builder.ret(m->const_i32(0));
      main_fn->renumber();
      ir::verify_or_throw(*m);

      vm::Interpreter vm(*m);
      machine::GlobalLayout layout(*m);
      const x86::Program prog = driver::lower_module(*m, layout);
      x86::Simulator sim(prog);
      EXPECT_EQ(vm.run().output, sim.run().output)
          << ir::opcode_name(c.op) << " from " << c.from_bits << " to "
          << c.to_bits << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace faultlab
