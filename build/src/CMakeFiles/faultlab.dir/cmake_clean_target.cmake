file(REMOVE_RECURSE
  "libfaultlab.a"
)
