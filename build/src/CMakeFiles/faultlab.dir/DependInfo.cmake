
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cc" "src/CMakeFiles/faultlab.dir/apps/apps.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/apps.cc.o.d"
  "/root/repo/src/apps/bzip2.cc" "src/CMakeFiles/faultlab.dir/apps/bzip2.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/bzip2.cc.o.d"
  "/root/repo/src/apps/hmmer.cc" "src/CMakeFiles/faultlab.dir/apps/hmmer.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/hmmer.cc.o.d"
  "/root/repo/src/apps/libquantum.cc" "src/CMakeFiles/faultlab.dir/apps/libquantum.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/libquantum.cc.o.d"
  "/root/repo/src/apps/mcf.cc" "src/CMakeFiles/faultlab.dir/apps/mcf.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/mcf.cc.o.d"
  "/root/repo/src/apps/ocean.cc" "src/CMakeFiles/faultlab.dir/apps/ocean.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/ocean.cc.o.d"
  "/root/repo/src/apps/raytrace.cc" "src/CMakeFiles/faultlab.dir/apps/raytrace.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/apps/raytrace.cc.o.d"
  "/root/repo/src/backend/emit.cc" "src/CMakeFiles/faultlab.dir/backend/emit.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/emit.cc.o.d"
  "/root/repo/src/backend/frame.cc" "src/CMakeFiles/faultlab.dir/backend/frame.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/frame.cc.o.d"
  "/root/repo/src/backend/isel.cc" "src/CMakeFiles/faultlab.dir/backend/isel.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/isel.cc.o.d"
  "/root/repo/src/backend/liveness.cc" "src/CMakeFiles/faultlab.dir/backend/liveness.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/liveness.cc.o.d"
  "/root/repo/src/backend/phi_elim.cc" "src/CMakeFiles/faultlab.dir/backend/phi_elim.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/phi_elim.cc.o.d"
  "/root/repo/src/backend/regalloc.cc" "src/CMakeFiles/faultlab.dir/backend/regalloc.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/backend/regalloc.cc.o.d"
  "/root/repo/src/driver/pipeline.cc" "src/CMakeFiles/faultlab.dir/driver/pipeline.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/driver/pipeline.cc.o.d"
  "/root/repo/src/fault/campaign.cc" "src/CMakeFiles/faultlab.dir/fault/campaign.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/campaign.cc.o.d"
  "/root/repo/src/fault/compare.cc" "src/CMakeFiles/faultlab.dir/fault/compare.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/compare.cc.o.d"
  "/root/repo/src/fault/llfi.cc" "src/CMakeFiles/faultlab.dir/fault/llfi.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/llfi.cc.o.d"
  "/root/repo/src/fault/outcome.cc" "src/CMakeFiles/faultlab.dir/fault/outcome.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/outcome.cc.o.d"
  "/root/repo/src/fault/pinfi.cc" "src/CMakeFiles/faultlab.dir/fault/pinfi.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/pinfi.cc.o.d"
  "/root/repo/src/fault/propagation.cc" "src/CMakeFiles/faultlab.dir/fault/propagation.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/propagation.cc.o.d"
  "/root/repo/src/fault/report.cc" "src/CMakeFiles/faultlab.dir/fault/report.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/fault/report.cc.o.d"
  "/root/repo/src/frontend/ast.cc" "src/CMakeFiles/faultlab.dir/frontend/ast.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/frontend/ast.cc.o.d"
  "/root/repo/src/frontend/codegen.cc" "src/CMakeFiles/faultlab.dir/frontend/codegen.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/frontend/codegen.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/CMakeFiles/faultlab.dir/frontend/lexer.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/faultlab.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/frontend/parser.cc.o.d"
  "/root/repo/src/frontend/sema.cc" "src/CMakeFiles/faultlab.dir/frontend/sema.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/frontend/sema.cc.o.d"
  "/root/repo/src/ir/basic_block.cc" "src/CMakeFiles/faultlab.dir/ir/basic_block.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/basic_block.cc.o.d"
  "/root/repo/src/ir/category.cc" "src/CMakeFiles/faultlab.dir/ir/category.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/category.cc.o.d"
  "/root/repo/src/ir/constant.cc" "src/CMakeFiles/faultlab.dir/ir/constant.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/constant.cc.o.d"
  "/root/repo/src/ir/dominance.cc" "src/CMakeFiles/faultlab.dir/ir/dominance.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/dominance.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/CMakeFiles/faultlab.dir/ir/function.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/function.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/faultlab.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/irbuilder.cc" "src/CMakeFiles/faultlab.dir/ir/irbuilder.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/irbuilder.cc.o.d"
  "/root/repo/src/ir/irparser.cc" "src/CMakeFiles/faultlab.dir/ir/irparser.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/irparser.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/CMakeFiles/faultlab.dir/ir/module.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/faultlab.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/type.cc" "src/CMakeFiles/faultlab.dir/ir/type.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/type.cc.o.d"
  "/root/repo/src/ir/value.cc" "src/CMakeFiles/faultlab.dir/ir/value.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/value.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/faultlab.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/ir/verifier.cc.o.d"
  "/root/repo/src/machine/memory.cc" "src/CMakeFiles/faultlab.dir/machine/memory.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/machine/memory.cc.o.d"
  "/root/repo/src/machine/runtime.cc" "src/CMakeFiles/faultlab.dir/machine/runtime.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/machine/runtime.cc.o.d"
  "/root/repo/src/opt/constfold.cc" "src/CMakeFiles/faultlab.dir/opt/constfold.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/constfold.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/CMakeFiles/faultlab.dir/opt/cse.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/CMakeFiles/faultlab.dir/opt/dce.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/dce.cc.o.d"
  "/root/repo/src/opt/inline.cc" "src/CMakeFiles/faultlab.dir/opt/inline.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/inline.cc.o.d"
  "/root/repo/src/opt/instcombine.cc" "src/CMakeFiles/faultlab.dir/opt/instcombine.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/instcombine.cc.o.d"
  "/root/repo/src/opt/mem2reg.cc" "src/CMakeFiles/faultlab.dir/opt/mem2reg.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/mem2reg.cc.o.d"
  "/root/repo/src/opt/pass.cc" "src/CMakeFiles/faultlab.dir/opt/pass.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/pass.cc.o.d"
  "/root/repo/src/opt/simplifycfg.cc" "src/CMakeFiles/faultlab.dir/opt/simplifycfg.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/opt/simplifycfg.cc.o.d"
  "/root/repo/src/support/csv.cc" "src/CMakeFiles/faultlab.dir/support/csv.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/support/csv.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/faultlab.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/faultlab.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/faultlab.dir/support/table.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/support/table.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/CMakeFiles/faultlab.dir/vm/interpreter.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/vm/interpreter.cc.o.d"
  "/root/repo/src/x86/category.cc" "src/CMakeFiles/faultlab.dir/x86/category.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/x86/category.cc.o.d"
  "/root/repo/src/x86/isa.cc" "src/CMakeFiles/faultlab.dir/x86/isa.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/x86/isa.cc.o.d"
  "/root/repo/src/x86/printer.cc" "src/CMakeFiles/faultlab.dir/x86/printer.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/x86/printer.cc.o.d"
  "/root/repo/src/x86/program.cc" "src/CMakeFiles/faultlab.dir/x86/program.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/x86/program.cc.o.d"
  "/root/repo/src/x86/simulator.cc" "src/CMakeFiles/faultlab.dir/x86/simulator.cc.o" "gcc" "src/CMakeFiles/faultlab.dir/x86/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
