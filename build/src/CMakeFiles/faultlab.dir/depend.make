# Empty dependencies file for faultlab.
# This may be replaced when dependencies are built.
