# Empty dependencies file for faultlab_tests.
# This may be replaced when dependencies are built.
