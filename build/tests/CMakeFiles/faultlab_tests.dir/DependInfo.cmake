
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/faultlab_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_backend.cc" "tests/CMakeFiles/faultlab_tests.dir/test_backend.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_backend.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/faultlab_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_dominance.cc" "tests/CMakeFiles/faultlab_tests.dir/test_dominance.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_dominance.cc.o.d"
  "/root/repo/tests/test_fault.cc" "tests/CMakeFiles/faultlab_tests.dir/test_fault.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_fault.cc.o.d"
  "/root/repo/tests/test_frontend.cc" "tests/CMakeFiles/faultlab_tests.dir/test_frontend.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_frontend.cc.o.d"
  "/root/repo/tests/test_inline.cc" "tests/CMakeFiles/faultlab_tests.dir/test_inline.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_inline.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/faultlab_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_irparser.cc" "tests/CMakeFiles/faultlab_tests.dir/test_irparser.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_irparser.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/faultlab_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_opt.cc" "tests/CMakeFiles/faultlab_tests.dir/test_opt.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_opt.cc.o.d"
  "/root/repo/tests/test_propagation.cc" "tests/CMakeFiles/faultlab_tests.dir/test_propagation.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_propagation.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/faultlab_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_semantics.cc" "tests/CMakeFiles/faultlab_tests.dir/test_semantics.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_semantics.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/faultlab_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/faultlab_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_x86.cc" "tests/CMakeFiles/faultlab_tests.dir/test_x86.cc.o" "gcc" "tests/CMakeFiles/faultlab_tests.dir/test_x86.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faultlab.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
