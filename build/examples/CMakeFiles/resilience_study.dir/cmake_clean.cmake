file(REMOVE_RECURSE
  "CMakeFiles/resilience_study.dir/resilience_study.cpp.o"
  "CMakeFiles/resilience_study.dir/resilience_study.cpp.o.d"
  "resilience_study"
  "resilience_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
