# Empty compiler generated dependencies file for propagation_trace.
# This may be replaced when dependencies are built.
