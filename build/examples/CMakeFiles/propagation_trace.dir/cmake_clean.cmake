file(REMOVE_RECURSE
  "CMakeFiles/propagation_trace.dir/propagation_trace.cpp.o"
  "CMakeFiles/propagation_trace.dir/propagation_trace.cpp.o.d"
  "propagation_trace"
  "propagation_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
