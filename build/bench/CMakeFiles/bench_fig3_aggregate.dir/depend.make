# Empty dependencies file for bench_fig3_aggregate.
# This may be replaced when dependencies are built.
