# Empty compiler generated dependencies file for bench_table5_crash.
# This may be replaced when dependencies are built.
