file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_crash.dir/bench_table5_crash.cc.o"
  "CMakeFiles/bench_table5_crash.dir/bench_table5_crash.cc.o.d"
  "bench_table5_crash"
  "bench_table5_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
