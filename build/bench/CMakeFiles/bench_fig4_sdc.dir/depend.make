# Empty dependencies file for bench_fig4_sdc.
# This may be replaced when dependencies are built.
