file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sdc.dir/bench_fig4_sdc.cc.o"
  "CMakeFiles/bench_fig4_sdc.dir/bench_fig4_sdc.cc.o.d"
  "bench_fig4_sdc"
  "bench_fig4_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
