#!/usr/bin/env python3
"""Render a static HTML campaign dashboard from faultlab observability files.

Merges up to three artifacts of one campaign run:

  * the FAULTLAB_EVENTS trial event log (JSONL, required) — per-trial
    outcomes, injection sites, trap kinds, propagation distances;
  * the FAULTLAB_METRICS JSON snapshot (optional) — counters/gauges/
    histograms from the metrics registry;
  * the run manifest CSV (optional, written by examples/fault_campaign as
    <results>.csv.manifest.csv or by manifest_csv()) — wall time, threads,
    checkpoint hit rates, exact latency percentiles.

and writes a single self-contained HTML file (inline CSS + SVG, no
external assets, stdlib only):

  * per-(app, tool, category) outcome stacks with Wilson 95% error bars on
    the crash and SDC shares;
  * a crash-divergence attribution table per cell — the same mapping-class
    decomposition as fault/attribution.cc, naming the gep/phi/call drivers;
  * a trap-kind histogram over all crashing trials;
  * trial latency p50/p95/p99 (from the event log, plus the manifest's
    exact values when provided) and the metrics snapshot's histograms;
  * a lockstep-lane panel — mean pack occupancy, mean active lanes
    (lane-uops per shared fetch), divergence rate, and a histogram of
    the micro-op offsets at which lanes diverged from their pack.

With --status, renders a FAULTLAB_STATUS campaign snapshot (schema v1)
instead: grid progress, per-cell convergence table, per-worker state, and
watchdog events. Mid-run snapshots get a <meta refresh> tag matched to the
snapshot cadence, so a browser pointed at the output follows the campaign
live (re-run the tool in a loop, or point it straight at the snapshot the
campaign keeps rewriting).

Usage:
  tools/faultlab_report.py --events EV.jsonl [--metrics M.json]
                           [--manifest MANIFEST.csv] -o OUT.html
  tools/faultlab_report.py --status STATUS.json -o OUT.html
"""

import argparse
import csv
import html
import json
import math
import sys

OUTCOMES = ("crash", "sdc", "benign", "hang", "not-activated")
OUTCOME_COLORS = {
    "crash": "#c0392b",
    "sdc": "#e67e22",
    "benign": "#27ae60",
    "hang": "#8e44ad",
    "not-activated": "#95a5a6",
}
TRAP_KINDS = (
    "unmapped-access", "divide-by-zero", "invalid-jump", "stack-overflow",
    "bad-free", "unreachable",
)

# Mirror of fault/attribution.cc's mapping-class table: IR opcode names and
# asm mnemonics folded into one comparable vocabulary.
OPCODE_CLASSES = {}
for _cls, _ops in {
    "arith": (
        "add", "sub", "mul", "sdiv", "udiv", "srem", "urem", "and", "or",
        "xor", "shl", "lshr", "ashr", "fadd", "fsub", "fmul", "fdiv",
        "imul", "sar", "shr", "neg", "not", "idiv", "irem", "addsd",
        "subsd", "mulsd", "divsd", "sqrtsd",
    ),
    "cmp": ("icmp", "fcmp", "cmp", "test", "ucomisd", "set"),
    "load": ("load", "mov.load", "movzx.load", "movsx.load", "movsd.load"),
    "store": ("store",),
    "gep": ("getelementptr", "lea"),
    "cast": (
        "trunc", "zext", "sext", "fptosi", "sitofp", "bitcast", "ptrtoint",
        "inttoptr", "movzx", "movsx", "cvtsi2sd", "cvttsd2si",
    ),
    "phi/mov": ("phi", "select", "mov", "movsd", "movq", "cmov"),
    "call": ("call", "callb", "ret", "push", "pop"),
    "control": ("br", "jmp", "j"),
    "alloca": ("alloca",),
}.items():
    for _op in _ops:
        OPCODE_CLASSES[_op] = _cls


def opcode_class(opcode):
    if opcode is None:
        return "other"
    return OPCODE_CLASSES.get(opcode, "other")


def wilson95(hits, trials):
    """Wilson score interval, matching support/stats.h."""
    if trials == 0:
        return (0.0, 0.0)
    z = 1.959963984540054
    n = float(trials)
    p = hits / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def percentile(sorted_values, pct):
    if not sorted_values:
        return 0.0
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def load_events(path):
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {e}") from e
    return records


def load_manifest(path):
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return list(csv.DictReader(fh))


def group_cells(events):
    """Groups events by (app, tool, category) in first-seen order."""
    cells = {}
    for ev in events:
        key = (ev.get("app", "?"), ev.get("tool", "?"),
               ev.get("category", "?"))
        cells.setdefault(key, []).append(ev)
    return cells


def esc(text):
    return html.escape(str(text), quote=True)


def outcome_stack_svg(cell_events):
    """A horizontal stacked outcome bar with Wilson error bars on the
    crash and SDC shares (over activated trials, the paper's convention)."""
    activated = [e for e in cell_events if e.get("outcome") != "not-activated"]
    n = len(activated)
    counts = {o: 0 for o in OUTCOMES}
    for ev in cell_events:
        counts[ev.get("outcome", "benign")] = \
            counts.get(ev.get("outcome", "benign"), 0) + 1
    width, bar_h = 560, 26
    parts = [
        f'<svg width="{width}" height="{bar_h + 14}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    if n == 0:
        parts.append(
            f'<text x="0" y="{bar_h - 8}" font-size="12">'
            "no activated trials</text></svg>"
        )
        return "".join(parts), counts, n
    x = 0.0
    for outcome in ("crash", "sdc", "benign", "hang"):
        share = counts[outcome] / n
        w = share * width
        if w > 0:
            parts.append(
                f'<rect x="{x:.1f}" y="0" width="{w:.1f}" '
                f'height="{bar_h}" fill="{OUTCOME_COLORS[outcome]}">'
                f"<title>{outcome}: {counts[outcome]}/{n} "
                f"({100.0 * share:.1f}%)</title></rect>"
            )
            if w > 34:
                parts.append(
                    f'<text x="{x + w / 2:.1f}" y="{bar_h - 8}" '
                    'font-size="11" fill="#fff" text-anchor="middle">'
                    f"{100.0 * share:.0f}%</text>"
                )
        x += w
    # Wilson error bars under the bar: crash interval then sdc interval.
    y = bar_h + 6
    offset = 0.0
    for outcome in ("crash", "sdc"):
        lo, hi = wilson95(counts[outcome], n)
        x0, x1 = lo * width + offset, hi * width + offset
        parts.append(
            f'<line x1="{x0:.1f}" y1="{y}" x2="{x1:.1f}" y2="{y}" '
            f'stroke="{OUTCOME_COLORS[outcome]}" stroke-width="3">'
            f"<title>{outcome} Wilson 95%: [{100 * lo:.1f}, "
            f"{100 * hi:.1f}]%</title></line>"
        )
        offset += counts[outcome] / n * width
        y += 4
    parts.append("</svg>")
    return "".join(parts), counts, n


def attribution_rows(cells):
    """Per-(app, category) mapping-class crash decomposition, mirroring
    fault/attribution.cc (delta = PINFI - LLFI in points)."""
    by_cell = {}
    for (app, tool, category), events in cells.items():
        by_cell.setdefault((app, category), {})[tool] = events
    rows = []
    for (app, category), tools in sorted(by_cell.items()):
        llfi = tools.get("LLFI")
        pinfi = tools.get("PINFI")
        if not llfi or not pinfi:
            continue

        def side(events):
            activated = [
                e for e in events if e.get("outcome") != "not-activated"
            ]
            per_class = {}
            for ev in activated:
                if ev.get("outcome") != "crash":
                    continue
                cls = opcode_class(ev.get("opcode"))
                entry = per_class.setdefault(cls, {"crash": 0, "sites": {}})
                entry["crash"] += 1
                site = (
                    f"{ev.get('function') or '?'}:"
                    f"{ev.get('opcode') or '?'}@{ev.get('site', 0)}"
                )
                entry["sites"][site] = entry["sites"].get(site, 0) + 1
            return per_class, len(activated)

        l_by, l_n = side(llfi)
        p_by, p_n = side(pinfi)
        if l_n == 0 or p_n == 0:
            continue
        classes = sorted(set(l_by) | set(p_by))
        entries = []
        for cls in classes:
            lc = l_by.get(cls, {}).get("crash", 0)
            pc = p_by.get(cls, {}).get("crash", 0)
            delta = 100.0 * pc / p_n - 100.0 * lc / l_n

            def top(by):
                sites = by.get(cls, {}).get("sites", {})
                if not sites:
                    return "-"
                return max(sorted(sites), key=lambda s: sites[s])

            entries.append({
                "class": cls,
                "delta": delta,
                "llfi": (lc, l_n),
                "pinfi": (pc, p_n),
                "llfi_top": top(l_by),
                "pinfi_top": top(p_by),
            })
        entries.sort(key=lambda e: (-abs(e["delta"]), e["class"]))
        cell_delta = sum(e["delta"] for e in entries)
        rows.append({
            "app": app,
            "category": category,
            "delta": cell_delta,
            "entries": entries,
        })
    return rows


def fault_model_rows(events):
    """Per-(fault model, tool) outcome tallies, in first-seen model order.
    Events from logs written before the fault_model field existed default
    to the paper's transient baseline."""
    groups = {}
    order = []
    for ev in events:
        key = (ev.get("fault_model") or "transient", ev.get("tool", "?"))
        if key not in groups:
            groups[key] = {o: 0 for o in OUTCOMES}
            order.append(key)
        outcome = ev.get("outcome", "benign")
        groups[key][outcome] = groups[key].get(outcome, 0) + 1
    rows = []
    for model, tool in order:
        counts = groups[(model, tool)]
        activated = sum(counts[o] for o in OUTCOMES[:4])
        rows.append({
            "model": model,
            "tool": tool,
            "counts": counts,
            "activated": activated,
        })
    return rows


DISPATCH_FIELDS = (
    "dispatch_mode", "trace_decodes", "trace_hits", "trace_invalidations",
    "decoded_blocks",
)


def dispatch_summary(manifest, metrics):
    """Dispatch-mode provenance and trace-cache counters, preferring the
    manifest's run-level columns (repeated per row) and falling back to the
    metrics snapshot's dispatch.* counters/gauge. Empty dict when neither
    source has dispatch data (pre-dispatch artifacts)."""
    row = {}
    if manifest and "dispatch_mode" in manifest[0]:
        for field in DISPATCH_FIELDS:
            row[field] = manifest[0].get(field, "")
    elif metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        if any(k.startswith("dispatch.") for k in (*counters, *gauges)):
            row = {
                "trace_decodes": counters.get("dispatch.trace_decodes", 0),
                "trace_hits": counters.get("dispatch.trace_hits", 0),
                "trace_invalidations":
                    counters.get("dispatch.trace_invalidations", 0),
                "decoded_blocks": gauges.get("dispatch.decoded_blocks", 0),
            }
    if not row:
        return {}
    try:
        hits = float(row.get("trace_hits", 0) or 0)
        exits = float(row.get("trace_invalidations", 0) or 0)
        if hits > 0:
            row["fast-path retention"] = f"{100.0 * (1.0 - exits / hits):.2f}%"
    except ValueError:
        pass
    return row


LOCKSTEP_FIELDS = (
    "lanes", "pack_groups", "pack_lanes", "pack_uops", "pack_lane_uops",
    "pack_divergences", "mean_pack_lanes",
)


def lockstep_summary(manifest, metrics):
    """Lockstep-lane provenance: lane cap plus pack counters, preferring the
    manifest's run-level columns and falling back to the metrics snapshot's
    pack.* counters. Adds derived occupancy figures: mean pack occupancy
    (lanes per group at start) and mean active lanes (lane-uops per shared
    fetch — what the amortization actually bought after divergence masking).
    Empty dict when neither source has lane data (pre-lockstep artifacts)."""
    row = {}
    if manifest and "pack_groups" in manifest[0]:
        for field in LOCKSTEP_FIELDS:
            row[field] = manifest[0].get(field, "")
    elif metrics:
        counters = metrics.get("counters", {})
        if any(k.startswith("pack.") for k in counters):
            row = {
                "pack_groups": counters.get("pack.groups", 0),
                "pack_lanes": counters.get("pack.lanes", 0),
                "pack_uops": counters.get("pack.uops", 0),
                "pack_lane_uops": counters.get("pack.lane_uops", 0),
                "pack_divergences": counters.get("pack.divergences", 0),
            }
    if not row:
        return {}
    try:
        groups = float(row.get("pack_groups", 0) or 0)
        lanes = float(row.get("pack_lanes", 0) or 0)
        uops = float(row.get("pack_uops", 0) or 0)
        lane_uops = float(row.get("pack_lane_uops", 0) or 0)
        divergences = float(row.get("pack_divergences", 0) or 0)
        if groups > 0 and "mean_pack_lanes" not in row:
            row["mean_pack_lanes"] = f"{lanes / groups:.2f}"
        if uops > 0:
            row["mean active lanes"] = f"{lane_uops / uops:.2f}"
        if lanes > 0:
            row["divergence rate"] = f"{100.0 * divergences / lanes:.1f}%"
    except ValueError:
        pass
    return row


def divergence_histogram_svg(metrics):
    """Bar chart of pack.divergence_offset — the log2-bucketed micro-op
    offset (from the shared snapshot) at which lanes left their pack.
    Returns '' when the metrics snapshot has no such histogram."""
    hist = (metrics or {}).get("histograms", {}).get("pack.divergence_offset")
    buckets = (hist or {}).get("buckets") or []
    if not buckets:
        return ""
    peak = max(count for _, count in buckets) or 1
    bar_w, gap, h = 46, 10, 120
    width = len(buckets) * (bar_w + gap)
    parts = [
        f'<svg width="{width}" height="{h + 34}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, (lo, count) in enumerate(buckets):
        x = i * (bar_w + gap)
        bh = h * count / peak
        label = f"{lo:,}" if lo < 1 << 20 else f"2^{max(lo, 1).bit_length() - 1}"
        parts.append(
            f'<rect x="{x}" y="{h - bh:.1f}" width="{bar_w}" '
            f'height="{bh:.1f}" fill="#2980b9">'
            f"<title>&#8805;{lo:,} uops: {count} lanes</title></rect>"
            f'<text x="{x + bar_w / 2}" y="{h + 12}" font-size="9" '
            f'text-anchor="middle">{esc(label)}</text>'
            f'<text x="{x + bar_w / 2}" y="{h + 26}" font-size="11" '
            f'text-anchor="middle">{count}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def traced_events(events):
    """Schema-v2 records carrying a propagation summary (FAULTLAB_PROP)."""
    return [
        e for e in events
        if isinstance(e.get("prop"), dict) and e["prop"].get("traced")
    ]


def log2_bucket_histogram_svg(values, fill, unit):
    """Small log2-bucketed bar chart of a non-negative integer metric."""
    if not values:
        return ""
    buckets = {}
    for v in values:
        lo = 0 if v == 0 else 1 << (int(v).bit_length() - 1)
        buckets[lo] = buckets.get(lo, 0) + 1
    items = sorted(buckets.items())
    peak = max(count for _, count in items) or 1
    bar_w, gap, h = 34, 8, 80
    width = len(items) * (bar_w + gap)
    parts = [
        f'<svg width="{width}" height="{h + 30}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, (lo, count) in enumerate(items):
        x = i * (bar_w + gap)
        bh = h * count / peak
        parts.append(
            f'<rect x="{x}" y="{h - bh:.1f}" width="{bar_w}" '
            f'height="{bh:.1f}" fill="{fill}">'
            f"<title>&#8805;{lo:,} {unit}: {count} trials</title></rect>"
            f'<text x="{x + bar_w / 2}" y="{h + 12}" font-size="9" '
            f'text-anchor="middle">{lo:,}</text>'
            f'<text x="{x + bar_w / 2}" y="{h + 24}" font-size="10" '
            f'text-anchor="middle">{count}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def prop_class_rows(traced):
    """Per-(tool, mapping class) propagation statistics over traced
    trials: depth/fan-out distributions plus masking and divergence
    tallies, mirroring fault/attribution.cc's propagation_attribution_csv."""
    groups = {}
    for ev in traced:
        key = (ev.get("tool", "?"), opcode_class(ev.get("opcode")))
        groups.setdefault(key, []).append(ev)
    rows = []
    for (tool, cls), evs in sorted(groups.items()):
        depths = sorted(e["prop"].get("depth", 0) for e in evs)
        fanouts = sorted(e["prop"].get("fanout", 0) for e in evs)
        rows.append({
            "tool": tool,
            "class": cls,
            "traced": len(evs),
            "depths": depths,
            "fanouts": fanouts,
            "diverged": sum(1 for e in evs if e["prop"].get("diverged")),
            "masking": sum(e["prop"].get("masking_events", 0) for e in evs),
            "store_load": sum(
                e["prop"].get("store_load_edges", 0) for e in evs
            ),
        })
    return rows


def prop_fate(ev):
    """Folds a traced trial into the masked/propagated/crashed taxonomy:
    crashed (crash or hang), propagated (SDC, or benign with a control-flow
    divergence — the fault travelled but the output survived), or masked
    (benign, control flow never left the golden path)."""
    outcome = ev.get("outcome")
    if outcome in ("crash", "hang"):
        return "crashed"
    if outcome == "sdc" or ev["prop"].get("diverged"):
        return "propagated"
    return "masked"


PROP_FATES = ("masked", "propagated", "crashed")
PROP_FATE_COLORS = {
    "masked": "#27ae60", "propagated": "#f39c12", "crashed": "#c0392b",
}


def prop_fate_stack_svg(evs):
    """Horizontal masked/propagated/crashed stack over traced activated
    trials."""
    activated = [e for e in evs if e.get("outcome") != "not-activated"]
    n = len(activated)
    if n == 0:
        return "", 0
    counts = {f: 0 for f in PROP_FATES}
    for ev in activated:
        counts[prop_fate(ev)] += 1
    width, bar_h = 560, 24
    parts = [
        f'<svg width="{width}" height="{bar_h + 4}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    x = 0.0
    for fate in PROP_FATES:
        share = counts[fate] / n
        w = share * width
        if w > 0:
            parts.append(
                f'<rect x="{x:.1f}" y="0" width="{w:.1f}" '
                f'height="{bar_h}" fill="{PROP_FATE_COLORS[fate]}">'
                f"<title>{fate}: {counts[fate]}/{n} "
                f"({100.0 * share:.1f}%)</title></rect>"
            )
            if w > 46:
                parts.append(
                    f'<text x="{x + w / 2:.1f}" y="{bar_h - 7}" '
                    'font-size="11" fill="#fff" text-anchor="middle">'
                    f"{100.0 * share:.0f}%</text>"
                )
        x += w
    parts.append("</svg>")
    return "".join(parts), n


def divergence_cdf_svg(by_tool):
    """Divergence-offset CDF per tool (dynamic instructions between
    injection and first control-flow divergence, log2 x axis)."""
    series = {
        tool: sorted(
            e["prop"].get("divergence_offset", 0)
            for e in evs
            if e["prop"].get("diverged")
        )
        for tool, evs in by_tool.items()
    }
    series = {t: v for t, v in series.items() if v}
    if not series:
        return ""
    colors = {"LLFI": "#2980b9", "PINFI": "#8e44ad"}
    max_off = max(v[-1] for v in series.values())
    max_log = max(1.0, math.log2(max_off + 1))
    width, h, pad = 560, 140, 24
    parts = [
        f'<svg width="{width}" height="{h + 40}" '
        f'xmlns="http://www.w3.org/2000/svg">',
        f'<line x1="{pad}" y1="{h}" x2="{width}" y2="{h}" stroke="#999"/>',
        f'<line x1="{pad}" y1="0" x2="{pad}" y2="{h}" stroke="#999"/>',
        f'<text x="4" y="12" font-size="9">100%</text>',
        f'<text x="{(width + pad) / 2}" y="{h + 34}" font-size="10" '
        'text-anchor="middle">instructions after injection (log2)</text>',
    ]
    for tool, offsets in sorted(series.items()):
        color = colors.get(tool, "#16a085")
        n = len(offsets)
        points = []
        for i, off in enumerate(offsets):
            x = pad + (width - pad) * math.log2(off + 1) / max_log
            y = h - h * (i + 1) / n
            points.append(f"{x:.1f},{y:.1f}")
        parts.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{color}" stroke-width="2">'
            f"<title>{tool}: {n} diverged trials, median offset "
            f"{offsets[n // 2]:,}</title></polyline>"
        )
        parts.append(
            f'<text x="{width - 50}" '
            f'y="{14 + 14 * sorted(series).index(tool)}" font-size="11" '
            f'fill="{color}">{esc(tool)}</text>'
        )
    # Log-decade ticks.
    tick = 1
    while tick <= max_off:
        x = pad + (width - pad) * math.log2(tick + 1) / max_log
        parts.append(
            f'<line x1="{x:.1f}" y1="{h}" x2="{x:.1f}" y2="{h + 4}" '
            'stroke="#999"/>'
            f'<text x="{x:.1f}" y="{h + 16}" font-size="9" '
            f'text-anchor="middle">{tick:,}</text>'
        )
        tick *= 10
    parts.append("</svg>")
    return "".join(parts)


def trap_histogram_svg(events):
    counts = {t: 0 for t in TRAP_KINDS}
    for ev in events:
        trap = ev.get("trap")
        if trap in counts:
            counts[trap] += 1
    peak = max(counts.values()) or 1
    bar_w, gap, h = 72, 14, 120
    width = len(TRAP_KINDS) * (bar_w + gap)
    parts = [
        f'<svg width="{width}" height="{h + 34}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, trap in enumerate(TRAP_KINDS):
        x = i * (bar_w + gap)
        bh = h * counts[trap] / peak
        parts.append(
            f'<rect x="{x}" y="{h - bh:.1f}" width="{bar_w}" '
            f'height="{bh:.1f}" fill="#c0392b">'
            f"<title>{trap}: {counts[trap]}</title></rect>"
            f'<text x="{x + bar_w / 2}" y="{h + 12}" font-size="9" '
            f'text-anchor="middle">{esc(trap)}</text>'
            f'<text x="{x + bar_w / 2}" y="{h + 26}" font-size="11" '
            f'text-anchor="middle">{counts[trap]}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render(events, metrics, manifest):
    cells = group_cells(events)
    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>faultlab campaign dashboard</title><style>",
        "body{font-family:sans-serif;margin:24px;color:#222}",
        "h1{font-size:20px}h2{font-size:16px;margin-top:28px}",
        "table{border-collapse:collapse;margin:8px 0}",
        "td,th{border:1px solid #ccc;padding:4px 8px;font-size:12px;",
        "text-align:left}",
        "th{background:#f4f4f4}",
        ".cell{margin:10px 0}.label{font-size:13px;font-weight:bold}",
        ".legend span{display:inline-block;margin-right:14px;font-size:12px}",
        ".swatch{display:inline-block;width:10px;height:10px;",
        "margin-right:4px}",
        "</style></head><body>",
        "<h1>faultlab campaign dashboard</h1>",
        f"<p>{len(events)} trial events, {len(cells)} campaign cell(s).</p>",
    ]

    out.append("<h2>Outcome breakdown (activated trials)</h2><p class='legend'>")
    for outcome in OUTCOMES[:4]:
        out.append(
            f"<span><span class='swatch' style='background:"
            f"{OUTCOME_COLORS[outcome]}'></span>{outcome}</span>"
        )
    out.append(
        "</span></p><p>Whisker lines under each bar: Wilson 95% intervals "
        "for the crash and SDC shares.</p>"
    )
    for (app, tool, category), cell_events in cells.items():
        svg, counts, n = outcome_stack_svg(cell_events)
        out.append(
            f"<div class='cell'><div class='label'>{esc(app)} / {esc(tool)}"
            f" / {esc(category)} — {n} activated of {len(cell_events)}"
            f"</div>{svg}</div>"
        )

    out.append("<h2>Crash-divergence attribution (PINFI − LLFI)</h2>")
    rows = attribution_rows(cells)
    if not rows:
        out.append(
            "<p>Needs both tools' events for the same (app, category) "
            "cell.</p>"
        )
    for row in rows:
        out.append(
            f"<h3 style='font-size:14px'>{esc(row['app'])} / "
            f"{esc(row['category'])} — crash delta "
            f"{row['delta']:+.1f} points</h3>"
        )
        out.append(
            "<table><tr><th>class</th><th>delta (pts)</th>"
            "<th>LLFI share</th><th>PINFI share</th>"
            "<th>LLFI top site</th><th>PINFI top site</th></tr>"
        )
        for e in row["entries"]:
            def share(pair):
                hits, n = pair
                if n == 0:
                    return "-"
                lo, hi = wilson95(hits, n)
                return (
                    f"{100.0 * hits / n:.1f}% "
                    f"[{100 * lo:.1f}, {100 * hi:.1f}]"
                )
            out.append(
                f"<tr><td>{esc(e['class'])}</td>"
                f"<td>{e['delta']:+.1f}</td>"
                f"<td>{share(e['llfi'])}</td><td>{share(e['pinfi'])}</td>"
                f"<td>{esc(e['llfi_top'])}</td>"
                f"<td>{esc(e['pinfi_top'])}</td></tr>"
            )
        out.append("</table>")

    out.append("<h2>Fault models</h2>")
    out.append(
        "<p>Outcome shares per hardware fault model and tool (rates over "
        "activated trials, Wilson 95% on the crash share).</p>"
    )
    out.append(
        "<table><tr><th>fault model</th><th>tool</th><th>trials</th>"
        "<th>activated</th><th>crash</th><th>sdc</th><th>benign</th>"
        "<th>hang</th><th>crash rate</th><th>sdc rate</th></tr>"
    )
    for row in fault_model_rows(events):
        counts = row["counts"]
        n = row["activated"]
        trials = n + counts["not-activated"]

        def rate(hits, n=n):
            if n == 0:
                return "-"
            lo, hi = wilson95(hits, n)
            return f"{100.0 * hits / n:.1f}% [{100 * lo:.1f}, {100 * hi:.1f}]"

        out.append(
            f"<tr><td>{esc(row['model'])}</td><td>{esc(row['tool'])}</td>"
            f"<td>{trials}</td><td>{n}</td>"
            f"<td>{counts['crash']}</td><td>{counts['sdc']}</td>"
            f"<td>{counts['benign']}</td><td>{counts['hang']}</td>"
            f"<td>{rate(counts['crash'])}</td>"
            f"<td>{rate(counts['sdc'])}</td></tr>"
        )
    out.append("</table>")

    out.append("<h2>Trap kinds (crashing trials)</h2>")
    out.append(trap_histogram_svg(events))

    traced = traced_events(events)
    if traced:
        out.append("<h2>Fault propagation (FAULTLAB_PROP traces)</h2>")
        out.append(
            f"<p>{len(traced)} traced trials. Taint depth is the longest "
            "def-use chain rooted at the corrupted bits; fan-out counts "
            "tainted reads of any tainted value.</p>"
        )
        out.append(
            "<h3>Depth and fan-out per mapping class</h3>"
            "<table><tr><th>tool</th><th>class</th><th>traced</th>"
            "<th>depth p50/p95/max</th><th>depth histogram</th>"
            "<th>fan-out p50/p95/max</th><th>fan-out histogram</th>"
            "<th>diverged</th><th>masking events</th>"
            "<th>store&#8594;load edges</th></tr>"
        )
        for row in prop_class_rows(traced):
            depths, fanouts = row["depths"], row["fanouts"]
            out.append(
                f"<tr><td>{esc(row['tool'])}</td><td>{esc(row['class'])}"
                f"</td><td>{row['traced']}</td>"
                f"<td>{percentile(depths, 50):.0f} / "
                f"{percentile(depths, 95):.0f} / {depths[-1]:,}</td>"
                f"<td>{log2_bucket_histogram_svg(depths, '#2980b9', 'depth')}"
                "</td>"
                f"<td>{percentile(fanouts, 50):.0f} / "
                f"{percentile(fanouts, 95):.0f} / {fanouts[-1]:,}</td>"
                f"<td>{log2_bucket_histogram_svg(fanouts, '#8e44ad', 'uses')}"
                "</td>"
                f"<td>{row['diverged']}</td><td>{row['masking']}</td>"
                f"<td>{row['store_load']}</td></tr>"
            )
        out.append("</table>")

        out.append(
            "<h3>Masked vs propagated vs crashed</h3>"
            "<p>Activated traced trials only. Propagated means the fault "
            "left the golden control-flow path or corrupted output; masked "
            "means it stayed on-path and the output survived.</p>"
        )
        by_tool = {}
        for ev in traced:
            by_tool.setdefault(ev.get("tool", "?"), []).append(ev)
        out.append("<table>")
        for tool, evs in sorted(by_tool.items()):
            svg, n = prop_fate_stack_svg(evs)
            if n:
                out.append(
                    f"<tr><td>{esc(tool)} ({n})</td><td>{svg}</td></tr>"
                )
        out.append("</table>")
        legend = " ".join(
            f'<span style="color:{PROP_FATE_COLORS[f]}">&#9632; {f}</span>'
            for f in PROP_FATES
        )
        out.append(f"<p>{legend}</p>")

        cdf = divergence_cdf_svg(by_tool)
        if cdf:
            out.append(
                "<h3>Divergence-offset CDF</h3>"
                "<p>How many dynamic instructions each diverging trial "
                "executed past the injection before leaving the golden "
                "control-flow path &mdash; asm-level faults (PINFI) tend to "
                "diverge sooner than IR-level ones (LLFI).</p>"
            )
            out.append(cdf)

    out.append("<h2>Trial latency</h2>")
    out.append(
        "<table><tr><th>app</th><th>tool</th><th>category</th>"
        "<th>trials</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th>"
        "<th>mean propagation (instrs after injection)</th></tr>"
    )
    for (app, tool, category), cell_events in cells.items():
        lat = sorted(
            float(e.get("latency_ms", 0.0)) for e in cell_events
        )
        injected = [e for e in cell_events if e.get("injected")]
        prop = (
            sum(e.get("instructions_after_injection", 0) for e in injected)
            / len(injected)
            if injected
            else 0.0
        )
        out.append(
            f"<tr><td>{esc(app)}</td><td>{esc(tool)}</td>"
            f"<td>{esc(category)}</td><td>{len(cell_events)}</td>"
            f"<td>{percentile(lat, 50):.2f}</td>"
            f"<td>{percentile(lat, 95):.2f}</td>"
            f"<td>{percentile(lat, 99):.2f}</td>"
            f"<td>{prop:,.0f}</td></tr>"
        )
    out.append("</table>")

    dispatch = dispatch_summary(manifest, metrics)
    if dispatch:
        out.append("<h2>Dispatch</h2>")
        out.append(
            "<p>Micro-op trace-cache activity: blocks decoded once and "
            "replayed by the threaded fast path; invalidations are "
            "armed-window side exits onto the hooked slow path.</p>"
        )
        out.append("<table><tr>")
        for key in dispatch:
            out.append(f"<th>{esc(key)}</th>")
        out.append("</tr><tr>")
        for value in dispatch.values():
            out.append(f"<td>{esc(value)}</td>")
        out.append("</tr></table>")

    lockstep = lockstep_summary(manifest, metrics)
    if lockstep:
        out.append("<h2>Lockstep lanes</h2>")
        out.append(
            "<p>Same-window trials packed into lane groups driven by one "
            "decoded micro-op fetch. Mean active lanes is lane-uops per "
            "shared fetch — the realized amortization after divergence "
            "masking.</p>"
        )
        out.append("<table><tr>")
        for key in lockstep:
            out.append(f"<th>{esc(key)}</th>")
        out.append("</tr><tr>")
        for value in lockstep.values():
            out.append(f"<td>{esc(value)}</td>")
        out.append("</tr></table>")
        svg = divergence_histogram_svg(metrics)
        if svg:
            out.append(
                "<h3 style='font-size:14px'>Divergence offsets "
                "(micro-ops from the shared snapshot, log2 buckets)</h3>"
            )
            out.append(svg)

    if manifest:
        out.append("<h2>Run manifest</h2><table><tr>")
        keys = list(manifest[0].keys())
        for key in keys:
            out.append(f"<th>{esc(key)}</th>")
        out.append("</tr>")
        for row in manifest:
            out.append("<tr>")
            for key in keys:
                out.append(f"<td>{esc(row.get(key, ''))}</td>")
            out.append("</tr>")
        out.append("</table>")

    if metrics:
        out.append("<h2>Metrics snapshot</h2>")
        counters = metrics.get("counters", {})
        if counters:
            out.append("<table><tr><th>counter</th><th>value</th></tr>")
            for name, value in counters.items():
                out.append(
                    f"<tr><td>{esc(name)}</td><td>{esc(value)}</td></tr>"
                )
            out.append("</table>")
        gauges = metrics.get("gauges", {})
        if gauges:
            out.append("<table><tr><th>gauge</th><th>value</th></tr>")
            for name, value in gauges.items():
                out.append(
                    f"<tr><td>{esc(name)}</td><td>{esc(value)}</td></tr>"
                )
            out.append("</table>")
        hists = metrics.get("histograms", {})
        if hists:
            out.append(
                "<table><tr><th>histogram</th><th>count</th><th>mean</th>"
                "<th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>"
            )
            for name, h in hists.items():
                out.append(
                    f"<tr><td>{esc(name)}</td><td>{h.get('count', 0)}</td>"
                    f"<td>{h.get('mean', 0):.2f}</td>"
                    f"<td>{h.get('p50', 0):.2f}</td>"
                    f"<td>{h.get('p95', 0):.2f}</td>"
                    f"<td>{h.get('p99', 0):.2f}</td>"
                    f"<td>{h.get('max', 0)}</td></tr>"
                )
            out.append("</table>")

    out.append("</body></html>\n")
    return "".join(out)


def fmt_duration(seconds):
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def progress_bar_svg(done, total, converged_cells, cells_total):
    width, h = 560, 22
    frac = done / total if total else 0.0
    return (
        f'<svg width="{width}" height="{h}" '
        'xmlns="http://www.w3.org/2000/svg">'
        f'<rect x="0" y="0" width="{width}" height="{h}" fill="#eee"/>'
        f'<rect x="0" y="0" width="{frac * width:.1f}" height="{h}" '
        'fill="#2980b9"/>'
        f'<text x="{width / 2}" y="{h - 6}" font-size="12" fill="#222" '
        f'text-anchor="middle">{done:,}/{total:,} trials '
        f'({100.0 * frac:.1f}%) — {converged_cells}/{cells_total} cells '
        "converged</text></svg>"
    )


def render_status(doc):
    """Renders a FAULTLAB_STATUS snapshot (schema v1) into a standalone HTML
    page. Mid-run snapshots auto-refresh at the snapshot cadence so the page
    can be pointed at the file the campaign keeps rewriting."""
    final = bool(doc.get("final"))
    interval_ms = int(doc.get("status_interval_ms", 1000) or 1000)
    refresh_s = max(1, (interval_ms + 999) // 1000)
    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>faultlab campaign status</title>",
    ]
    if not final:
        out.append(f"<meta http-equiv='refresh' content='{refresh_s}'>")
    out.append(
        "<style>"
        "body{font-family:sans-serif;margin:24px;color:#222}"
        "h1{font-size:20px}h2{font-size:16px;margin-top:28px}"
        "table{border-collapse:collapse;margin:8px 0}"
        "td,th{border:1px solid #ccc;padding:4px 8px;font-size:12px;"
        "text-align:left}"
        "th{background:#f4f4f4}"
        ".ok{color:#27ae60;font-weight:bold}"
        ".warn{color:#c0392b;font-weight:bold}"
        ".muted{color:#888}"
        "</style></head><body>"
    )
    state = "final" if final else f"live (refreshing every {refresh_s}s)"
    out.append(f"<h1>faultlab campaign status — {esc(state)}</h1>")
    out.append(progress_bar_svg(
        int(doc.get("trials_done", 0)), int(doc.get("trials_total", 0)),
        int(doc.get("converged_cells", 0)), int(doc.get("cells_total", 0)),
    ))
    rate = float(doc.get("rate_trials_per_second", 0.0))
    eta = float(doc.get("eta_seconds", 0.0))
    wd = int(doc.get("watchdog_flags", 0))
    out.append("<table><tr>")
    summary = [
        ("elapsed", fmt_duration(doc.get("elapsed_seconds", 0.0))),
        ("rate", f"{rate:.2f} trials/s" if rate > 0 else "-"),
        ("eta", fmt_duration(eta) if not final and eta > 0 else "-"),
        ("workers", str(doc.get("workers_total", 0))),
        ("ci target", f"{float(doc.get('ci_target', 0.0)):.4f}"),
        ("watchdog flags", str(wd)),
        ("snapshot writes", str(doc.get("status_writes", 0))),
        ("dispatch", doc.get("dispatch_mode", "") or "-"),
    ]
    for key, _ in summary:
        out.append(f"<th>{esc(key)}</th>")
    out.append("</tr><tr>")
    for key, value in summary:
        cls = " class='warn'" if key == "watchdog flags" and wd else ""
        out.append(f"<td{cls}>{esc(value)}</td>")
    out.append("</tr></table>")

    out.append("<h2>Cells</h2>")
    out.append(
        "<p>Crash share over activated trials with Wilson 95% interval; a "
        "cell converges when the CI half-width drops below the target.</p>"
    )
    out.append(
        "<table><tr><th>app</th><th>tool</th><th>category</th>"
        "<th>model</th><th>done</th><th>crash</th><th>sdc</th>"
        "<th>benign</th><th>hang</th><th>n/a</th><th>crash share</th>"
        "<th>CI ±</th><th>converged</th><th>p50 ms</th><th>p99 ms</th>"
        "<th>in flight</th><th>wd</th></tr>"
    )
    for cell in doc.get("cells", []):
        share = float(cell.get("crash_share", 0.0))
        lo = float(cell.get("ci_lo", 0.0))
        hi = float(cell.get("ci_hi", 0.0))
        conv = bool(cell.get("converged"))
        conv_td = ("<td class='ok'>yes</td>" if conv
                   else "<td class='muted'>no</td>")
        wd_cell = int(cell.get("watchdog_flags", 0))
        wd_td = (f"<td class='warn'>{wd_cell}</td>" if wd_cell
                 else "<td>0</td>")
        out.append(
            f"<tr><td>{esc(cell.get('app', '?'))}</td>"
            f"<td>{esc(cell.get('tool', '?'))}</td>"
            f"<td>{esc(cell.get('category', '?'))}</td>"
            f"<td>{esc(cell.get('fault_model', '?'))}</td>"
            f"<td>{cell.get('done', 0)}/{cell.get('trials', 0)}</td>"
            f"<td>{cell.get('crash', 0)}</td><td>{cell.get('sdc', 0)}</td>"
            f"<td>{cell.get('benign', 0)}</td><td>{cell.get('hang', 0)}</td>"
            f"<td>{cell.get('not_activated', 0)}</td>"
            f"<td>{100.0 * share:.1f}% [{100 * lo:.1f}, {100 * hi:.1f}]</td>"
            f"<td>{float(cell.get('ci_halfwidth', 0.0)):.4f}</td>"
            f"{conv_td}"
            f"<td>{float(cell.get('p50_ms', 0.0)):.2f}</td>"
            f"<td>{float(cell.get('p99_ms', 0.0)):.2f}</td>"
            f"<td>{cell.get('in_flight', 0)}</td>{wd_td}</tr>"
        )
    out.append("</table>")

    workers = doc.get("workers", [])
    if workers:
        out.append("<h2>Workers</h2>")
        out.append(
            "<table><tr><th>worker</th><th>state</th><th>cell</th>"
            "<th>trial age ms</th><th>trials done</th>"
            "<th>flagged</th></tr>"
        )
        for w in workers:
            flagged = bool(w.get("flagged"))
            flag_td = ("<td class='warn'>stalled</td>" if flagged
                       else "<td>-</td>")
            out.append(
                f"<tr><td>{w.get('worker', 0)}</td>"
                f"<td>{esc(w.get('state', '?'))}</td>"
                f"<td>{esc(w.get('cell') or '-')}</td>"
                f"<td>{float(w.get('trial_age_ms', 0.0)):.0f}</td>"
                f"<td>{w.get('trials_done', 0)}</td>{flag_td}</tr>"
            )
        out.append("</table>")

    events = doc.get("watchdog_events", [])
    dropped = int(doc.get("watchdog_events_dropped", 0))
    out.append("<h2>Watchdog</h2>")
    if not events:
        out.append("<p class='muted'>No stalled trials observed.</p>")
    else:
        out.append(
            "<table><tr><th>at</th><th>worker</th><th>cell</th>"
            "<th>trial age ms</th><th>threshold ms</th></tr>"
        )
        for ev in events:
            out.append(
                f"<tr><td>{fmt_duration(ev.get('elapsed_seconds', 0.0))}"
                f"</td><td>{ev.get('worker', 0)}</td>"
                f"<td>{esc(ev.get('cell') or '-')}</td>"
                f"<td>{float(ev.get('trial_age_ms', 0.0)):.0f}</td>"
                f"<td>{float(ev.get('threshold_ms', 0.0)):.0f}</td></tr>"
            )
        out.append("</table>")
        if dropped:
            out.append(
                f"<p class='muted'>{dropped} earlier event(s) dropped "
                "(bounded buffer).</p>"
            )

    phases = doc.get("phases", {})
    counters = doc.get("counters", {})
    out.append("<h2>Phase split and engine counters</h2>")
    out.append("<table><tr><th>phase</th><th>seconds</th></tr>")
    for key in ("restore_seconds", "execute_seconds", "classify_seconds"):
        out.append(
            f"<tr><td>{esc(key)}</td>"
            f"<td>{float(phases.get(key, 0.0)):.3f}</td></tr>"
        )
    out.append("</table>")
    if counters:
        out.append("<table><tr><th>counter</th><th>value</th></tr>")
        for name, value in counters.items():
            out.append(f"<tr><td>{esc(name)}</td><td>{esc(value)}</td></tr>")
        out.append("</table>")

    out.append("</body></html>\n")
    return "".join(out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events",
                        help="FAULTLAB_EVENTS JSONL path")
    parser.add_argument("--status",
                        help="FAULTLAB_STATUS snapshot JSON path; renders "
                             "the live-status page instead of the event "
                             "dashboard")
    parser.add_argument("--metrics", help="FAULTLAB_METRICS JSON path")
    parser.add_argument("--manifest", help="run manifest CSV path")
    parser.add_argument("-o", "--out", required=True,
                        help="output HTML path")
    args = parser.parse_args(argv)

    if bool(args.events) == bool(args.status):
        print("error: exactly one of --events or --status is required",
              file=sys.stderr)
        return 2

    if args.status:
        try:
            with open(args.status, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {args.status}: {e}", file=sys.stderr)
            return 1
        document = render_status(doc)
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(document)
        except OSError as e:
            print(f"error: {args.out}: {e}", file=sys.stderr)
            return 1
        kind = "final" if doc.get("final") else "live"
        print(
            f"{args.out}: {kind} status page, "
            f"{doc.get('trials_done', 0)}/{doc.get('trials_total', 0)} "
            f"trials, {doc.get('converged_cells', 0)}/"
            f"{doc.get('cells_total', 0)} cells converged"
        )
        return 0

    try:
        events = load_events(args.events)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if not events:
        print(f"error: {args.events}: no trial events", file=sys.stderr)
        return 1

    metrics = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as fh:
                metrics = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {args.metrics}: {e}", file=sys.stderr)
            return 1

    manifest = None
    if args.manifest:
        try:
            manifest = load_manifest(args.manifest)
        except OSError as e:
            print(f"error: {args.manifest}: {e}", file=sys.stderr)
            return 1

    document = render(events, metrics, manifest)
    try:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(document)
    except OSError as e:
        print(f"error: {args.out}: {e}", file=sys.stderr)
        return 1
    print(
        f"{args.out}: dashboard with {len(events)} events "
        f"({len(group_cells(events))} cells)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
