#!/usr/bin/env python3
"""One-shot terminal summary of a FAULTLAB_STATUS campaign snapshot.

Reads the schema-v1 status JSON the scheduler atomically rewrites while a
campaign runs (and finalizes at exit) and prints a compact plain-text
summary: overall progress, per-cell convergence, stalled workers, and
watchdog events. Designed for scripts and CI — exit-code gates let a
pipeline wait on convergence or fail on stalls:

  exit 0  snapshot read and all requested gates passed
  exit 1  snapshot unreadable or not a v1 status document
  exit 3  a --require-converged / --require-final / --max-watchdog gate
          failed (snapshot itself was fine)

Usage:
  tools/faultlab_status.py STATUS.json [--cells] [--watch N]
      [--require-converged N] [--require-final] [--max-watchdog N]

--watch N re-reads and re-prints every N seconds until the snapshot goes
final (gates are evaluated against the last snapshot read). stdlib only.
"""

import argparse
import json
import sys
import time


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != "faultlab-status" \
            or doc.get("v") != 1:
        raise ValueError("not a faultlab-status v1 document")
    return doc


def fmt_duration(seconds):
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def print_summary(doc, show_cells):
    final = bool(doc.get("final"))
    done = int(doc.get("trials_done", 0))
    total = int(doc.get("trials_total", 0))
    pct = 100.0 * done / total if total else 0.0
    rate = float(doc.get("rate_trials_per_second", 0.0))
    eta = float(doc.get("eta_seconds", 0.0))
    wd = int(doc.get("watchdog_flags", 0))
    state = "final" if final else "running"
    line = (
        f"[{state}] {done}/{total} trials ({pct:.1f}%)  "
        f"conv {doc.get('converged_cells', 0)}/{doc.get('cells_total', 0)}  "
        f"elapsed {fmt_duration(doc.get('elapsed_seconds', 0.0))}"
    )
    if rate > 0:
        line += f"  {rate:.2f}/s"
    if not final and eta > 0:
        line += f"  eta {fmt_duration(eta)}"
    if wd:
        line += f"  WATCHDOG x{wd}"
    print(line)

    if show_cells:
        for cell in doc.get("cells", []):
            name = (
                f"{cell.get('app', '?')}/{cell.get('tool', '?')}/"
                f"{cell.get('category', '?')}"
            )
            share = 100.0 * float(cell.get("crash_share", 0.0))
            lo = 100.0 * float(cell.get("ci_lo", 0.0))
            hi = 100.0 * float(cell.get("ci_hi", 0.0))
            mark = "converged" if cell.get("converged") else (
                f"ci±{float(cell.get('ci_halfwidth', 0.0)):.4f}")
            cell_line = (
                f"  {name:<28} {cell.get('done', 0):>6}/"
                f"{cell.get('trials', 0):<6} crash {share:5.1f}% "
                f"[{lo:.1f}, {hi:.1f}]  {mark}"
            )
            if int(cell.get("watchdog_flags", 0)):
                cell_line += f"  wd x{cell.get('watchdog_flags')}"
            print(cell_line)

    flagged = [w for w in doc.get("workers", []) if w.get("flagged")]
    for w in flagged:
        print(
            f"  worker {w.get('worker')} stalled in {w.get('cell') or '?'} "
            f"for {float(w.get('trial_age_ms', 0.0)) / 1000.0:.1f}s"
        )
    dropped = int(doc.get("watchdog_events_dropped", 0))
    if dropped:
        print(f"  ({dropped} earlier watchdog event(s) dropped)")


def check_gates(doc, args):
    failures = []
    if args.require_final and not doc.get("final"):
        failures.append("snapshot is not final")
    conv = int(doc.get("converged_cells", 0))
    if args.require_converged is not None and conv < args.require_converged:
        failures.append(
            f"converged cells {conv} < required {args.require_converged}")
    wd = int(doc.get("watchdog_flags", 0))
    if args.max_watchdog is not None and wd > args.max_watchdog:
        failures.append(
            f"watchdog flags {wd} > allowed {args.max_watchdog}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("status", help="FAULTLAB_STATUS snapshot JSON path")
    parser.add_argument("--cells", action="store_true",
                        help="print the per-cell convergence table")
    parser.add_argument("--watch", type=float, metavar="N",
                        help="re-read every N seconds until the snapshot "
                             "goes final")
    parser.add_argument("--require-converged", type=int, metavar="N",
                        help="exit 3 unless at least N cells converged")
    parser.add_argument("--require-final", action="store_true",
                        help="exit 3 unless the snapshot is final")
    parser.add_argument("--max-watchdog", type=int, metavar="N",
                        help="exit 3 if more than N watchdog flags")
    args = parser.parse_args(argv)

    doc = None
    while True:
        try:
            doc = load(args.status)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"error: {args.status}: {e}", file=sys.stderr)
            return 1
        print_summary(doc, args.cells)
        if args.watch is None or doc.get("final"):
            break
        time.sleep(max(0.1, args.watch))

    failures = check_gates(doc, args)
    for failure in failures:
        print(f"gate failed: {failure}", file=sys.stderr)
    return 3 if failures else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into head/grep that exited early; not an error.
        sys.exit(0)
