#!/usr/bin/env python3
"""Validate a faultlab trace export (Chrome trace-event JSON or JSONL).

Checks that the file is what Perfetto / chrome://tracing will accept and
that the span structure matches what the campaign scheduler promises:

  * the JSON parses; Chrome exports carry a `traceEvents` list of "X"
    (complete) events with numeric ts/dur and a pid/tid;
  * every `trial` span is tagged with app, tool, category, k, checkpoint
    (hit|miss), and outcome;
  * every `trial_group` span (a lockstep lane group covering several
    trials at once; see FAULTLAB_LANES) is tagged with app, tool,
    category, checkpoint, and an integer lanes >= 2;
  * phase spans (restore/execute/classify) nest inside a trial or
    trial_group span on the same thread (engine-level golden/profile
    spans are exempt — they run outside any trial);
  * optionally, the number of trials covered — trial spans plus the sum
    of the trial_group lanes tags — matches --expect-trials.

With --events, the file is instead validated as a FAULTLAB_EVENTS trial
event log (one JSON object per line, schema v1 from src/obs/events.h):

  * every record carries the full required key set with sane types;
  * enum fields hold known values (outcome, trap kind, checkpoint);
  * `seq` is monotonic per worker (0, 1, 2, ... — the writer promises
    per-worker ordering even though shards interleave in the file);
  * cross-field consistency: a crash carries a trap (and only a crash
    does), activation implies injection, and the propagation distance
    equals instructions_total - inject_instruction for injected trials.

With --status, the file is instead validated as a FAULTLAB_STATUS campaign
snapshot (schema v1 from src/obs/monitor.h):

  * the header carries the full required key set with sane types and a
    `final` flag;
  * per-cell tallies are internally consistent (outcomes sum to `done`,
    `activated` = done - not_activated, Wilson bounds ordered, `converged`
    matches the half-width vs ci_target comparison);
  * per-worker records and watchdog events are well-formed;
  * when `final` is true the quiescent cross-checks apply too: every cell
    complete, no in-flight trials, worker tallies sum to `trials_done`.

Usage:
  tools/validate_trace.py TRACE [--expect-trials N]
  tools/validate_trace.py --events EVENTS.jsonl [--expect-trials N]
  tools/validate_trace.py --status STATUS.json [--expect-trials N]
                          [--expect-converged N]

Exit status 0 when the file is valid, 1 otherwise (with a message per
violation on stderr). Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

REQUIRED_TRIAL_TAGS = ("app", "tool", "category", "k", "checkpoint", "outcome")
REQUIRED_GROUP_TAGS = ("app", "tool", "category", "lanes", "checkpoint")
PHASE_NAMES = ("restore", "execute", "classify")

EVENT_REQUIRED_KEYS = (
    "v", "app", "tool", "category", "fault_model", "worker", "seq", "trial",
    "k", "bit", "site", "opcode", "function", "injected", "activated",
    "outcome", "trap", "inject_instruction", "instructions_total",
    "instructions_after_injection", "checkpoint", "latency_ms",
)
EVENT_OUTCOMES = ("benign", "sdc", "crash", "hang", "not-activated")
EVENT_TRAP_KINDS = (
    "unmapped-access", "divide-by-zero", "invalid-jump", "stack-overflow",
    "bad-free", "unreachable",
)
# Schema v2 (FAULTLAB_PROP): every v1 field unchanged plus an additive
# "prop" object carrying the per-trial propagation summary.
EVENT_PROP_INT_KEYS = (
    "depth", "fanout", "tainted_reads", "masking_events", "store_load_edges",
    "tainted_stores", "tainted_branches", "peak_tainted_values",
    "peak_tainted_pages", "divergence_pc", "divergence_offset",
)
EVENT_PROP_BOOL_KEYS = ("traced", "diverged")


def load_events(path):
    """Returns the list of event dicts from a Chrome JSON or JSONL export."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".jsonl"):
        events = []
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"line {lineno}: invalid JSON: {e}") from e
        # Normalize the JSONL shape (ts_us/dur_us, flat tags) to the Chrome
        # event shape so the checks below are format-agnostic.
        normalized = []
        for ev in events:
            args = {
                k: v
                for k, v in ev.items()
                if k not in ("name", "cat", "ts_us", "dur_us", "tid")
            }
            normalized.append(
                {
                    "name": ev.get("name"),
                    "cat": ev.get("cat"),
                    "ph": "X",
                    "ts": ev.get("ts_us"),
                    "dur": ev.get("dur_us"),
                    "pid": 1,
                    "tid": ev.get("tid"),
                    "args": args,
                }
            )
        return normalized
    doc = json.loads(text)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("top-level object must contain 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    return events


def group_lanes(ev):
    """Lane count of a trial_group span (0 when missing/mistyped)."""
    lanes = ev.get("args", {}).get("lanes")
    if isinstance(lanes, str) and lanes.isdigit():
        lanes = int(lanes)
    return lanes if isinstance(lanes, int) and not isinstance(
        lanes, bool) else 0


def covered_trials(events):
    """Trials covered by a trace: trial spans plus trial_group lanes."""
    count = 0
    for ev in events:
        if ev.get("name") == "trial":
            count += 1
        elif ev.get("name") == "trial_group":
            count += group_lanes(ev)
    return count


def validate(events):
    """Yields one message per violation."""
    trials = []
    groups = []
    phases = []
    for i, ev in enumerate(events):
        where = f"event {i} ({ev.get('name', '?')!r})"
        for field in ("name", "cat", "ph", "ts", "dur", "tid"):
            if field not in ev:
                yield f"{where}: missing field '{field}'"
        if ev.get("ph") != "X":
            yield f"{where}: ph is {ev.get('ph')!r}, expected 'X'"
        for field in ("ts", "dur"):
            if field in ev and not isinstance(ev[field], (int, float)):
                yield f"{where}: '{field}' is not numeric"
        if ev.get("name") == "trial":
            trials.append(ev)
        elif ev.get("name") == "trial_group":
            groups.append(ev)
        elif ev.get("name") in PHASE_NAMES:
            phases.append(ev)

    for i, trial in enumerate(trials):
        args = trial.get("args", {})
        for tag in REQUIRED_TRIAL_TAGS:
            if tag not in args:
                yield f"trial span {i}: missing tag '{tag}'"
        if args.get("checkpoint") not in ("hit", "miss", None):
            yield (
                f"trial span {i}: checkpoint tag is "
                f"{args.get('checkpoint')!r}, expected 'hit' or 'miss'"
            )

    for i, group in enumerate(groups):
        args = group.get("args", {})
        for tag in REQUIRED_GROUP_TAGS:
            if tag not in args:
                yield f"trial_group span {i}: missing tag '{tag}'"
        if args.get("checkpoint") not in ("hit", "miss", None):
            yield (
                f"trial_group span {i}: checkpoint tag is "
                f"{args.get('checkpoint')!r}, expected 'hit' or 'miss'"
            )
        if "lanes" in args and group_lanes(group) < 2:
            yield (
                f"trial_group span {i}: lanes tag is "
                f"{args.get('lanes')!r}, expected an integer >= 2"
            )

    # Nesting: each phase span must sit inside some trial or trial_group
    # span on its thread. Spans are integral microseconds, so containment
    # may be exact.
    by_tid = {}
    for trial in trials + groups:
        by_tid.setdefault(trial.get("tid"), []).append(
            (trial.get("ts", 0), trial.get("ts", 0) + trial.get("dur", 0))
        )
    for i, phase in enumerate(phases):
        start = phase.get("ts", 0)
        end = start + phase.get("dur", 0)
        windows = by_tid.get(phase.get("tid"), [])
        if not any(lo <= start and end <= hi for lo, hi in windows):
            yield (
                f"phase span {i} ({phase.get('name')!r}, tid "
                f"{phase.get('tid')}): [{start}, {end}] us not nested in "
                "any trial or trial_group span on its thread"
            )


def load_event_log(path):
    """Returns the list of trial-event dicts from a FAULTLAB_EVENTS JSONL."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"line {lineno}: invalid JSON: {e}") from e
            if not isinstance(record, dict):
                raise ValueError(f"line {lineno}: not a JSON object")
            record["_line"] = lineno
            records.append(record)
    return records


def validate_events(records):
    """Yields one message per event-log violation."""
    seq_by_worker = {}
    for record in records:
        where = f"line {record['_line']}"
        for key in EVENT_REQUIRED_KEYS:
            if key not in record:
                yield f"{where}: missing key '{key}'"
        version = record.get("v")
        if version not in (1, 2):
            yield (
                f"{where}: schema version is {version!r}, expected 1 or 2"
            )
        if version == 1 and "prop" in record:
            yield f"{where}: v1 record carries a 'prop' object"
        if version == 2:
            prop = record.get("prop")
            if not isinstance(prop, dict):
                yield f"{where}: v2 record without a 'prop' object"
            else:
                for key in EVENT_PROP_INT_KEYS:
                    if not isinstance(prop.get(key), int) or \
                            isinstance(prop.get(key), bool):
                        yield (
                            f"{where}: prop.{key} is {prop.get(key)!r}, "
                            "expected an integer"
                        )
                for key in EVENT_PROP_BOOL_KEYS:
                    if not isinstance(prop.get(key), bool):
                        yield (
                            f"{where}: prop.{key} is {prop.get(key)!r}, "
                            "expected a boolean"
                        )
                if isinstance(prop.get("traced"), bool) and \
                        not prop["traced"]:
                    yield f"{where}: v2 record with prop.traced false"
                if isinstance(prop.get("diverged"), bool) and \
                        not prop["diverged"]:
                    for key in ("divergence_pc", "divergence_offset"):
                        if prop.get(key) not in (0, None):
                            yield (
                                f"{where}: undiverged trial carries "
                                f"prop.{key} = {prop.get(key)!r}"
                            )
        for key in ("worker", "seq", "trial", "k", "bit", "site",
                    "inject_instruction", "instructions_total",
                    "instructions_after_injection"):
            if key in record and not isinstance(record[key], int):
                yield f"{where}: '{key}' is not an integer"
        if "latency_ms" in record and not isinstance(
            record["latency_ms"], (int, float)
        ):
            yield f"{where}: 'latency_ms' is not numeric"
        for key in ("injected", "activated"):
            if key in record and not isinstance(record[key], bool):
                yield f"{where}: '{key}' is not a boolean"
        outcome = record.get("outcome")
        if outcome not in EVENT_OUTCOMES:
            yield f"{where}: unknown outcome {outcome!r}"
        trap = record.get("trap")
        if trap is not None and trap not in EVENT_TRAP_KINDS:
            yield f"{where}: unknown trap kind {trap!r}"
        fault_model = record.get("fault_model")
        if "fault_model" in record and (
            not isinstance(fault_model, str) or not fault_model
        ):
            yield (
                f"{where}: fault_model is {fault_model!r}, expected a "
                "non-empty string"
            )
        if record.get("checkpoint") not in ("hit", "miss"):
            yield (
                f"{where}: checkpoint is {record.get('checkpoint')!r}, "
                "expected 'hit' or 'miss'"
            )
        # Cross-field consistency.
        if outcome == "crash" and trap is None:
            yield f"{where}: crash outcome without a trap kind"
        if outcome in ("benign", "sdc", "hang", "not-activated") and \
                trap is not None:
            yield f"{where}: outcome {outcome!r} carries trap {trap!r}"
        if record.get("activated") and not record.get("injected"):
            yield f"{where}: activated without injected"
        if all(
            isinstance(record.get(k), int)
            for k in ("inject_instruction", "instructions_total",
                      "instructions_after_injection")
        ):
            expected = (
                max(0, record["instructions_total"]
                    - record["inject_instruction"])
                if record.get("injected")
                else 0
            )
            if record["instructions_after_injection"] != expected:
                yield (
                    f"{where}: instructions_after_injection is "
                    f"{record['instructions_after_injection']}, expected "
                    f"{expected}"
                )
        # Per-worker ordering: the writer promises a contiguous 0,1,2,...
        # seq per worker even though shard spills interleave in the file.
        worker = record.get("worker")
        seq = record.get("seq")
        if isinstance(worker, int) and isinstance(seq, int):
            expected_seq = seq_by_worker.get(worker, 0)
            if seq != expected_seq:
                yield (
                    f"{where}: worker {worker} seq {seq}, expected "
                    f"{expected_seq} (per-worker seq must be contiguous)"
                )
            seq_by_worker[worker] = max(expected_seq, seq) + 1


STATUS_HEADER_KEYS = {
    "v": int,
    "schema": str,
    "final": bool,
    "generated_unix": int,
    "elapsed_seconds": (int, float),
    "ci_target": (int, float),
    "watchdog_factor": (int, float),
    "status_interval_ms": int,
    "workers_total": int,
    "trials_total": int,
    "trials_done": int,
    "cells_total": int,
    "converged_cells": int,
    "watchdog_flags": int,
    "status_writes": int,
    "rate_trials_per_second": (int, float),
    "eta_seconds": (int, float),
    "phases": dict,
    "counters": dict,
    "dispatch_mode": str,
    "cells": list,
    "workers": list,
    "watchdog_events": list,
    "watchdog_events_dropped": int,
}
STATUS_CELL_KEYS = {
    "app": str,
    "tool": str,
    "category": str,
    "fault_model": str,
    "trials": int,
    "done": int,
    "crash": int,
    "sdc": int,
    "benign": int,
    "hang": int,
    "not_activated": int,
    "activated": int,
    "crash_share": (int, float),
    "ci_lo": (int, float),
    "ci_hi": (int, float),
    "ci_halfwidth": (int, float),
    "converged": bool,
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "mean_ms": (int, float),
    "watchdog_flags": int,
    "in_flight": int,
}
STATUS_WORKER_KEYS = {
    "worker": int,
    "state": str,
    "trial_age_ms": (int, float),
    "trials_done": int,
    "in_flight": int,
    "flagged": bool,
}
STATUS_PHASE_KEYS = ("restore_seconds", "execute_seconds", "classify_seconds")
STATUS_COUNTER_KEYS = (
    "checkpoint_snapshots", "checkpoint_restores", "delta_restores",
    "snapshot_evictions", "trace_decodes", "trace_hits",
    "trace_invalidations",
)


def check_keys(obj, spec, where):
    """Yields a message per missing or mistyped key. Note bool is an int in
    Python, so int-typed keys explicitly reject booleans."""
    for key, types in spec.items():
        if key not in obj:
            yield f"{where}: missing key '{key}'"
            continue
        value = obj[key]
        if types is int or types == (int, float):
            if isinstance(value, bool) or not isinstance(value, types):
                yield f"{where}: '{key}' is not numeric"
        elif not isinstance(value, types):
            yield f"{where}: '{key}' has wrong type {type(value).__name__}"


def validate_status(doc):
    """Yields one message per status-snapshot violation (schema v1)."""
    if not isinstance(doc, dict):
        yield "top-level value is not a JSON object"
        return
    yield from check_keys(doc, STATUS_HEADER_KEYS, "header")
    if doc.get("v") != 1:
        yield f"header: schema version is {doc.get('v')!r}, expected 1"
    if doc.get("schema") != "faultlab-status":
        yield (
            f"header: schema is {doc.get('schema')!r}, expected "
            "'faultlab-status'"
        )
    final = doc.get("final") is True

    phases = doc.get("phases", {})
    if isinstance(phases, dict):
        for key in STATUS_PHASE_KEYS:
            value = phases.get(key)
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or value < 0:
                yield f"phases: '{key}' is not a non-negative number"
    counters = doc.get("counters", {})
    if isinstance(counters, dict):
        for key in STATUS_COUNTER_KEYS:
            value = counters.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or \
                    value < 0:
                yield f"counters: '{key}' is not a non-negative integer"

    ci_target = doc.get("ci_target")
    cells = doc.get("cells", [])
    if not isinstance(cells, list):
        cells = []
    if isinstance(doc.get("cells_total"), int) and \
            doc["cells_total"] != len(cells):
        yield (
            f"header: cells_total is {doc['cells_total']}, but {len(cells)} "
            "cells are listed"
        )
    converged_count = 0
    cell_done = 0
    cell_watchdog = 0
    for i, cell in enumerate(cells):
        where = f"cell {i}"
        if not isinstance(cell, dict):
            yield f"{where}: not a JSON object"
            continue
        yield from check_keys(cell, STATUS_CELL_KEYS, where)
        try:
            outcomes = sum(
                cell[k] for k in ("crash", "sdc", "benign", "hang",
                                  "not_activated")
            )
            if cell["done"] != outcomes:
                yield (
                    f"{where}: done is {cell['done']}, but outcomes sum to "
                    f"{outcomes}"
                )
            if cell["activated"] != cell["done"] - cell["not_activated"]:
                yield (
                    f"{where}: activated is {cell['activated']}, expected "
                    f"done - not_activated = "
                    f"{cell['done'] - cell['not_activated']}"
                )
            if cell["done"] > cell["trials"]:
                yield (
                    f"{where}: done {cell['done']} exceeds planned trials "
                    f"{cell['trials']}"
                )
            if not 0.0 <= cell["ci_lo"] <= cell["ci_hi"] <= 1.0:
                yield (
                    f"{where}: Wilson bounds [{cell['ci_lo']}, "
                    f"{cell['ci_hi']}] are not ordered within [0, 1]"
                )
            halfwidth = (cell["ci_hi"] - cell["ci_lo"]) / 2.0
            if abs(cell["ci_halfwidth"] - halfwidth) > 1e-3:
                yield (
                    f"{where}: ci_halfwidth {cell['ci_halfwidth']} != "
                    f"(ci_hi - ci_lo) / 2 = {halfwidth:.6f}"
                )
            if isinstance(ci_target, (int, float)):
                expected = (
                    cell["activated"] > 0
                    and cell["ci_halfwidth"] <= ci_target
                )
                if cell["converged"] != expected:
                    yield (
                        f"{where}: converged is {cell['converged']}, but "
                        f"half-width {cell['ci_halfwidth']} vs ci_target "
                        f"{ci_target} implies {expected}"
                    )
            if cell["converged"]:
                converged_count += 1
            cell_done += cell["done"]
            cell_watchdog += cell["watchdog_flags"]
            if final and cell["done"] != cell["trials"]:
                yield (
                    f"{where}: final snapshot but done {cell['done']} != "
                    f"planned {cell['trials']}"
                )
            if final and cell["in_flight"] != 0:
                yield (
                    f"{where}: final snapshot but in_flight is "
                    f"{cell['in_flight']}"
                )
        except (KeyError, TypeError):
            pass  # missing/mistyped keys already reported by check_keys

    if isinstance(doc.get("converged_cells"), int) and \
            doc["converged_cells"] != converged_count:
        yield (
            f"header: converged_cells is {doc['converged_cells']}, but "
            f"{converged_count} cells are marked converged"
        )
    if final and isinstance(doc.get("trials_done"), int) and \
            doc["trials_done"] != cell_done:
        yield (
            f"header: trials_done is {doc['trials_done']}, but cell tallies "
            f"sum to {cell_done}"
        )
    if final and isinstance(doc.get("trials_total"), int) and \
            isinstance(doc.get("trials_done"), int) and \
            doc["trials_done"] != doc["trials_total"]:
        yield (
            f"header: final snapshot but trials_done {doc['trials_done']} "
            f"!= trials_total {doc['trials_total']}"
        )
    if final and isinstance(doc.get("watchdog_flags"), int) and \
            doc["watchdog_flags"] != cell_watchdog:
        yield (
            f"header: watchdog_flags is {doc['watchdog_flags']}, but cell "
            f"flags sum to {cell_watchdog}"
        )

    workers = doc.get("workers", [])
    if not isinstance(workers, list):
        workers = []
    if isinstance(doc.get("workers_total"), int) and \
            doc["workers_total"] != len(workers):
        yield (
            f"header: workers_total is {doc['workers_total']}, but "
            f"{len(workers)} workers are listed"
        )
    worker_done = 0
    for i, worker in enumerate(workers):
        where = f"worker {i}"
        if not isinstance(worker, dict):
            yield f"{where}: not a JSON object"
            continue
        yield from check_keys(worker, STATUS_WORKER_KEYS, where)
        state = worker.get("state")
        if state not in ("running", "idle"):
            yield f"{where}: unknown state {state!r}"
        cell_ref = worker.get("cell")
        if state == "running" and not isinstance(cell_ref, str):
            yield f"{where}: running but cell is {cell_ref!r}"
        if state == "idle" and cell_ref is not None:
            yield f"{where}: idle but cell is {cell_ref!r}"
        if final and state == "running":
            yield f"{where}: final snapshot but state is 'running'"
        if final and worker.get("in_flight") not in (0, None):
            yield (
                f"{where}: final snapshot but in_flight is "
                f"{worker.get('in_flight')}"
            )
        if isinstance(worker.get("in_flight"), int) and \
                state == "idle" and worker["in_flight"] != 0:
            yield f"{where}: idle but in_flight is {worker['in_flight']}"
        if isinstance(worker.get("trials_done"), int):
            worker_done += worker["trials_done"]
    if final and isinstance(doc.get("trials_done"), int) and \
            worker_done != doc["trials_done"]:
        yield (
            f"header: worker trials_done sum to {worker_done}, expected "
            f"{doc['trials_done']}"
        )

    events = doc.get("watchdog_events", [])
    if not isinstance(events, list):
        events = []
    for i, ev in enumerate(events):
        where = f"watchdog event {i}"
        if not isinstance(ev, dict):
            yield f"{where}: not a JSON object"
            continue
        for key in ("worker", "cell", "trial_age_ms", "threshold_ms",
                    "elapsed_seconds"):
            if key not in ev:
                yield f"{where}: missing key '{key}'"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to the exported trace")
    parser.add_argument(
        "--expect-trials",
        type=int,
        default=None,
        help="fail unless exactly N 'trial' spans are present",
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help="validate a FAULTLAB_EVENTS trial event log instead of a trace",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="validate a FAULTLAB_STATUS campaign snapshot instead of a "
        "trace",
    )
    parser.add_argument(
        "--expect-prop",
        action="store_true",
        help="with --events: fail unless every record is schema v2 with a "
        "propagation summary (a FAULTLAB_PROP run)",
    )
    parser.add_argument(
        "--expect-converged",
        type=int,
        default=None,
        help="with --status: fail unless at least N cells are converged",
    )
    args = parser.parse_args(argv)

    if args.status and args.events:
        parser.error("--status and --events are mutually exclusive")

    if args.status:
        try:
            with open(args.trace, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as e:
            print(f"{args.trace}: {e}", file=sys.stderr)
            return 1
        errors = list(validate_status(doc))
        if args.expect_trials is not None and \
                doc.get("trials_done") != args.expect_trials:
            errors.append(
                f"expected trials_done == {args.expect_trials}, found "
                f"{doc.get('trials_done')}"
            )
        if args.expect_converged is not None and not (
            isinstance(doc.get("converged_cells"), int)
            and doc["converged_cells"] >= args.expect_converged
        ):
            errors.append(
                f"expected >= {args.expect_converged} converged cells, "
                f"found {doc.get('converged_cells')}"
            )
        for message in errors:
            print(f"{args.trace}: {message}", file=sys.stderr)
        if not errors:
            kind = "final" if doc.get("final") else "mid-run"
            print(
                f"{args.trace}: OK — {kind} snapshot, "
                f"{doc.get('trials_done')}/{doc.get('trials_total')} trials, "
                f"{doc.get('converged_cells')}/{doc.get('cells_total')} "
                "cells converged"
            )
        return 1 if errors else 0

    if args.events:
        try:
            records = load_event_log(args.trace)
        except (OSError, ValueError) as e:
            print(f"{args.trace}: {e}", file=sys.stderr)
            return 1
        errors = list(validate_events(records))
        if not records:
            errors.append("no event records found")
        if args.expect_trials is not None and len(records) != \
                args.expect_trials:
            errors.append(
                f"expected {args.expect_trials} events, found {len(records)}"
            )
        if args.expect_prop:
            untraced = sum(1 for r in records if r.get("v") != 2)
            if untraced:
                errors.append(
                    f"expected every record at schema v2 with a prop "
                    f"summary, found {untraced} without"
                )
        for message in errors:
            print(f"{args.trace}: {message}", file=sys.stderr)
        if not errors:
            workers = {r.get("worker") for r in records}
            print(
                f"{args.trace}: OK — {len(records)} trial events from "
                f"{len(workers)} worker(s)"
            )
        return 1 if errors else 0

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"{args.trace}: {e}", file=sys.stderr)
        return 1

    errors = list(validate(events))
    trial_count = covered_trials(events)
    group_count = sum(1 for ev in events if ev.get("name") == "trial_group")
    if trial_count == 0:
        errors.append("no 'trial' or 'trial_group' spans found")
    if args.expect_trials is not None and trial_count != args.expect_trials:
        errors.append(
            f"expected {args.expect_trials} trials covered, found "
            f"{trial_count}"
        )

    for message in errors:
        print(f"{args.trace}: {message}", file=sys.stderr)
    if not errors:
        print(
            f"{args.trace}: OK — {len(events)} events, "
            f"{trial_count} trials covered ({group_count} lane groups)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
