#!/usr/bin/env python3
"""Validate a faultlab trace export (Chrome trace-event JSON or JSONL).

Checks that the file is what Perfetto / chrome://tracing will accept and
that the span structure matches what the campaign scheduler promises:

  * the JSON parses; Chrome exports carry a `traceEvents` list of "X"
    (complete) events with numeric ts/dur and a pid/tid;
  * every `trial` span is tagged with app, tool, category, k, checkpoint
    (hit|miss), and outcome;
  * phase spans (restore/execute/classify) nest inside a trial span on the
    same thread (engine-level golden/profile spans are exempt — they run
    outside any trial);
  * optionally, the number of trial spans matches --expect-trials.

Usage:
  tools/validate_trace.py TRACE [--expect-trials N]

Exit status 0 when the trace is valid, 1 otherwise (with a message per
violation on stderr). Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

REQUIRED_TRIAL_TAGS = ("app", "tool", "category", "k", "checkpoint", "outcome")
PHASE_NAMES = ("restore", "execute", "classify")


def load_events(path):
    """Returns the list of event dicts from a Chrome JSON or JSONL export."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".jsonl"):
        events = []
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"line {lineno}: invalid JSON: {e}") from e
        # Normalize the JSONL shape (ts_us/dur_us, flat tags) to the Chrome
        # event shape so the checks below are format-agnostic.
        normalized = []
        for ev in events:
            args = {
                k: v
                for k, v in ev.items()
                if k not in ("name", "cat", "ts_us", "dur_us", "tid")
            }
            normalized.append(
                {
                    "name": ev.get("name"),
                    "cat": ev.get("cat"),
                    "ph": "X",
                    "ts": ev.get("ts_us"),
                    "dur": ev.get("dur_us"),
                    "pid": 1,
                    "tid": ev.get("tid"),
                    "args": args,
                }
            )
        return normalized
    doc = json.loads(text)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("top-level object must contain 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    return events


def validate(events):
    """Yields one message per violation."""
    trials = []
    phases = []
    for i, ev in enumerate(events):
        where = f"event {i} ({ev.get('name', '?')!r})"
        for field in ("name", "cat", "ph", "ts", "dur", "tid"):
            if field not in ev:
                yield f"{where}: missing field '{field}'"
        if ev.get("ph") != "X":
            yield f"{where}: ph is {ev.get('ph')!r}, expected 'X'"
        for field in ("ts", "dur"):
            if field in ev and not isinstance(ev[field], (int, float)):
                yield f"{where}: '{field}' is not numeric"
        if ev.get("name") == "trial":
            trials.append(ev)
        elif ev.get("name") in PHASE_NAMES:
            phases.append(ev)

    for i, trial in enumerate(trials):
        args = trial.get("args", {})
        for tag in REQUIRED_TRIAL_TAGS:
            if tag not in args:
                yield f"trial span {i}: missing tag '{tag}'"
        if args.get("checkpoint") not in ("hit", "miss", None):
            yield (
                f"trial span {i}: checkpoint tag is "
                f"{args.get('checkpoint')!r}, expected 'hit' or 'miss'"
            )

    # Nesting: each phase span must sit inside some trial span on its
    # thread. Spans are integral microseconds, so containment may be exact.
    by_tid = {}
    for trial in trials:
        by_tid.setdefault(trial.get("tid"), []).append(
            (trial.get("ts", 0), trial.get("ts", 0) + trial.get("dur", 0))
        )
    for i, phase in enumerate(phases):
        start = phase.get("ts", 0)
        end = start + phase.get("dur", 0)
        windows = by_tid.get(phase.get("tid"), [])
        if not any(lo <= start and end <= hi for lo, hi in windows):
            yield (
                f"phase span {i} ({phase.get('name')!r}, tid "
                f"{phase.get('tid')}): [{start}, {end}] us not nested in "
                "any trial span on its thread"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to the exported trace")
    parser.add_argument(
        "--expect-trials",
        type=int,
        default=None,
        help="fail unless exactly N 'trial' spans are present",
    )
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"{args.trace}: {e}", file=sys.stderr)
        return 1

    errors = list(validate(events))
    trial_count = sum(1 for ev in events if ev.get("name") == "trial")
    if trial_count == 0:
        errors.append("no 'trial' spans found")
    if args.expect_trials is not None and trial_count != args.expect_trials:
        errors.append(
            f"expected {args.expect_trials} trial spans, found {trial_count}"
        )

    for message in errors:
        print(f"{args.trace}: {message}", file=sys.stderr)
    if not errors:
        print(
            f"{args.trace}: OK — {len(events)} events, "
            f"{trial_count} trial spans"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
