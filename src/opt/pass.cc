#include "opt/pass.h"

#include "ir/verifier.h"

namespace faultlab::opt {

namespace {

std::size_t count_opcode(const ir::Module& module, ir::Opcode op) {
  std::size_t n = 0;
  for (const auto& f : module.functions())
    for (const auto& bb : f->blocks())
      for (const auto& instr : bb->instructions())
        if (instr->opcode() == op) ++n;
  return n;
}

std::size_t count_instructions(const ir::Module& module) {
  std::size_t n = 0;
  for (const auto& f : module.functions()) n += f->num_instructions();
  return n;
}

}  // namespace

PipelineStats run_standard_pipeline(ir::Module& module) {
  PipelineStats stats;
  stats.instructions_before = count_instructions(module);
  stats.allocas_before = count_opcode(module, ir::Opcode::Alloca);

  std::vector<std::unique_ptr<Pass>> pipeline;
  pipeline.push_back(make_simplify_cfg());
  pipeline.push_back(make_inline());
  pipeline.push_back(make_mem2reg());
  pipeline.push_back(make_inst_combine());
  pipeline.push_back(make_const_fold());
  pipeline.push_back(make_cse());
  pipeline.push_back(make_dce());
  pipeline.push_back(make_simplify_cfg());

  constexpr std::size_t kMaxIterations = 8;
  bool changed = true;
  while (changed && stats.iterations < kMaxIterations) {
    changed = false;
    ++stats.iterations;
    for (const auto& f : module.functions()) {
      if (f->is_builtin()) continue;
      for (auto& pass : pipeline)
        changed |= pass->run(*f);
    }
  }

  for (const auto& f : module.functions()) f->renumber();
  ir::verify_or_throw(module);

  stats.instructions_after = count_instructions(module);
  stats.allocas_after = count_opcode(module, ir::Opcode::Alloca);
  stats.phis_after = count_opcode(module, ir::Opcode::Phi);
  return stats;
}

}  // namespace faultlab::opt
