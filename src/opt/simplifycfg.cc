// CFG cleanup: removes unreachable blocks, folds constant conditional
// branches, threads trivial forwarding blocks, and merges straight-line
// block pairs.
#include <set>

#include "ir/irbuilder.h"
#include "opt/pass.h"

namespace faultlab::opt {

namespace {

using ir::BasicBlock;
using ir::BranchInst;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::PhiInst;

void remove_phi_edges_from(BasicBlock* successor, BasicBlock* dead_pred) {
  for (PhiInst* phi : successor->phis()) {
    for (unsigned i = 0; i < phi->num_incoming(); ++i) {
      if (phi->incoming_block(i) == dead_pred) {
        phi->remove_incoming(i);
        break;
      }
    }
  }
}

/// Replace single-incoming phis by their value.
bool collapse_trivial_phis(Function& fn) {
  bool changed = false;
  for (const auto& bb : fn.blocks()) {
    for (std::size_t i = 0; i < bb->size();) {
      auto* phi = dynamic_cast<PhiInst*>(bb->instr(i));
      if (phi == nullptr) break;
      if (phi->num_incoming() == 1) {
        phi->replace_all_uses_with(phi->incoming_value(0));
        bb->erase(i);
        changed = true;
        continue;
      }
      // All incomings identical (and not the phi itself).
      bool uniform = phi->num_incoming() > 0;
      for (unsigned k = 1; k < phi->num_incoming(); ++k)
        uniform &= phi->incoming_value(k) == phi->incoming_value(0);
      if (uniform && phi->incoming_value(0) != phi) {
        phi->replace_all_uses_with(phi->incoming_value(0));
        bb->erase(i);
        changed = true;
        continue;
      }
      ++i;
    }
  }
  return changed;
}

bool fold_constant_branches(Function& fn) {
  bool changed = false;
  for (const auto& bb : fn.blocks()) {
    auto* br = dynamic_cast<BranchInst*>(bb->terminator());
    if (br == nullptr || !br->is_conditional()) continue;
    BasicBlock* taken = nullptr;
    if (auto* c = dynamic_cast<ir::ConstantInt*>(br->condition())) {
      taken = c->raw() & 1 ? br->true_target() : br->false_target();
    } else if (br->true_target() == br->false_target()) {
      taken = br->true_target();
    }
    if (taken == nullptr) continue;
    BasicBlock* not_taken =
        taken == br->true_target() ? br->false_target() : br->true_target();
    if (not_taken != taken) remove_phi_edges_from(not_taken, bb.get());
    const std::size_t term_index = bb->index_of(br);
    bb->erase(term_index);
    ir::IRBuilder builder(*fn.parent());
    builder.set_insert_point(bb.get());
    builder.br(taken);
    changed = true;
  }
  return changed;
}

bool remove_unreachable(Function& fn) {
  std::set<const BasicBlock*> reachable;
  std::vector<BasicBlock*> work{fn.entry()};
  while (!work.empty()) {
    BasicBlock* bb = work.back();
    work.pop_back();
    if (!reachable.insert(bb).second) continue;
    for (BasicBlock* s : bb->successors()) work.push_back(s);
  }
  if (reachable.size() == fn.num_blocks()) return false;

  std::vector<BasicBlock*> dead;
  for (const auto& bb : fn.blocks())
    if (!reachable.count(bb.get())) dead.push_back(bb.get());

  // Detach dead blocks from live phis, then break all def-use edges inside
  // the dead region so the blocks can be destroyed in any order.
  for (BasicBlock* bb : dead)
    for (BasicBlock* s : bb->successors())
      if (reachable.count(s)) remove_phi_edges_from(s, bb);
  for (BasicBlock* bb : dead)
    for (const auto& instr : bb->instructions()) instr->clear_operands();
  for (BasicBlock* bb : dead) fn.erase_block(bb);
  return true;
}

/// Merge `bb` with its unique successor when that successor has `bb` as its
/// unique predecessor (classic straight-line merge).
bool merge_blocks(Function& fn) {
  bool changed = false;
  auto preds = fn.predecessors();
  for (std::size_t i = 0; i < fn.num_blocks(); ++i) {
    BasicBlock* bb = fn.block(i);
    auto* br = dynamic_cast<BranchInst*>(bb->terminator());
    if (br == nullptr || br->is_conditional()) continue;
    BasicBlock* succ = br->true_target();
    if (succ == bb || succ == fn.entry()) continue;
    if (preds.at(succ).size() != 1) continue;
    if (!succ->phis().empty()) continue;

    // Move all instructions of succ into bb (dropping bb's terminator).
    bb->erase(bb->index_of(br));
    while (!succ->empty()) bb->append(succ->take(0));
    // Rewire phis in succ's successors to name bb as predecessor.
    for (BasicBlock* next : bb->successors()) {
      for (PhiInst* phi : next->phis()) {
        for (unsigned k = 0; k < phi->num_incoming(); ++k)
          if (phi->incoming_block(k) == succ) phi->set_incoming_block(k, bb);
      }
    }
    fn.erase_block(succ);
    changed = true;
    preds = fn.predecessors();
    i = static_cast<std::size_t>(-1);  // restart scan
  }
  return changed;
}

class SimplifyCfg final : public Pass {
 public:
  const char* name() const noexcept override { return "simplifycfg"; }
  bool run(Function& fn) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      local |= fold_constant_branches(fn);
      local |= remove_unreachable(fn);
      local |= collapse_trivial_phis(fn);
      local |= merge_blocks(fn);
      changed |= local;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_simplify_cfg() {
  return std::make_unique<SimplifyCfg>();
}

}  // namespace faultlab::opt
