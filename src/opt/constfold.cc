// Constant folding for integer/fp arithmetic, comparisons, casts and
// selects whose operands are all constants. Division traps are NOT folded
// (they must still trap at runtime).
#include <cmath>
#include <limits>

#include "opt/pass.h"
#include "support/bitutil.h"

namespace faultlab::opt {

namespace {

using ir::ConstantDouble;
using ir::ConstantInt;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

const ConstantInt* as_int(const Value* v) {
  return dynamic_cast<const ConstantInt*>(v);
}
const ConstantDouble* as_double(const Value* v) {
  return dynamic_cast<const ConstantDouble*>(v);
}

/// Folds `instr` to a constant, or returns null when not foldable.
Value* fold(ir::Module& module, const Instruction& instr) {
  const Opcode op = instr.opcode();

  if (ir::is_int_binary(op)) {
    const ConstantInt* a = as_int(instr.operand(0));
    const ConstantInt* b = as_int(instr.operand(1));
    if (a == nullptr || b == nullptr) return nullptr;
    const unsigned bits = instr.type()->int_bits();
    const std::uint64_t ua = a->raw();
    const std::uint64_t ub = b->raw();
    const std::int64_t sa = a->signed_value();
    const std::int64_t sb = b->signed_value();
    const unsigned shift = static_cast<unsigned>(ub & (bits >= 64 ? 63 : 31));
    std::uint64_t r;
    switch (op) {
      case Opcode::Add: r = ua + ub; break;
      case Opcode::Sub: r = ua - ub; break;
      case Opcode::Mul: r = ua * ub; break;
      case Opcode::And: r = ua & ub; break;
      case Opcode::Or: r = ua | ub; break;
      case Opcode::Xor: r = ua ^ ub; break;
      case Opcode::Shl: r = ua << shift; break;
      case Opcode::LShr: r = ua >> shift; break;
      case Opcode::AShr: r = static_cast<std::uint64_t>(sa >> shift); break;
      case Opcode::SDiv:
        if (sb == 0 || (sb == -1 && ua == (std::uint64_t{1} << (bits - 1))))
          return nullptr;  // would trap; leave it
        r = static_cast<std::uint64_t>(sa / sb);
        break;
      case Opcode::SRem:
        if (sb == 0 || (sb == -1 && ua == (std::uint64_t{1} << (bits - 1))))
          return nullptr;
        r = static_cast<std::uint64_t>(sa % sb);
        break;
      case Opcode::UDiv:
        if (ub == 0) return nullptr;
        r = ua / ub;
        break;
      case Opcode::URem:
        if (ub == 0) return nullptr;
        r = ua % ub;
        break;
      default:
        return nullptr;
    }
    return module.const_int(instr.type(), r);
  }

  if (ir::is_fp_binary(op)) {
    const ConstantDouble* a = as_double(instr.operand(0));
    const ConstantDouble* b = as_double(instr.operand(1));
    if (a == nullptr || b == nullptr) return nullptr;
    double r;
    switch (op) {
      case Opcode::FAdd: r = a->value() + b->value(); break;
      case Opcode::FSub: r = a->value() - b->value(); break;
      case Opcode::FMul: r = a->value() * b->value(); break;
      case Opcode::FDiv: r = a->value() / b->value(); break;
      default: return nullptr;
    }
    return module.const_double(r);
  }

  switch (op) {
    case Opcode::ICmp: {
      const auto& cmp = static_cast<const ir::ICmpInst&>(instr);
      const ConstantInt* a = as_int(cmp.lhs());
      const ConstantInt* b = as_int(cmp.rhs());
      if (a == nullptr || b == nullptr) return nullptr;
      const std::uint64_t ua = a->raw(), ub = b->raw();
      const std::int64_t sa = a->signed_value(), sb = b->signed_value();
      bool r;
      switch (cmp.predicate()) {
        case ir::ICmpPred::EQ: r = ua == ub; break;
        case ir::ICmpPred::NE: r = ua != ub; break;
        case ir::ICmpPred::SLT: r = sa < sb; break;
        case ir::ICmpPred::SLE: r = sa <= sb; break;
        case ir::ICmpPred::SGT: r = sa > sb; break;
        case ir::ICmpPred::SGE: r = sa >= sb; break;
        case ir::ICmpPred::ULT: r = ua < ub; break;
        case ir::ICmpPred::ULE: r = ua <= ub; break;
        case ir::ICmpPred::UGT: r = ua > ub; break;
        case ir::ICmpPred::UGE: r = ua >= ub; break;
        default: return nullptr;
      }
      return module.const_i1(r);
    }
    case Opcode::FCmp: {
      const auto& cmp = static_cast<const ir::FCmpInst&>(instr);
      const ConstantDouble* a = as_double(cmp.lhs());
      const ConstantDouble* b = as_double(cmp.rhs());
      if (a == nullptr || b == nullptr) return nullptr;
      const double x = a->value(), y = b->value();
      bool r;
      switch (cmp.predicate()) {
        case ir::FCmpPred::OEQ: r = x == y; break;
        case ir::FCmpPred::ONE: r = x < y || x > y; break;
        case ir::FCmpPred::OLT: r = x < y; break;
        case ir::FCmpPred::OLE: r = x <= y; break;
        case ir::FCmpPred::OGT: r = x > y; break;
        case ir::FCmpPred::OGE: r = x >= y; break;
        default: return nullptr;
      }
      return module.const_i1(r);
    }
    case Opcode::Trunc: {
      const ConstantInt* a = as_int(instr.operand(0));
      if (a == nullptr) return nullptr;
      return module.const_int(instr.type(), a->raw());
    }
    case Opcode::ZExt: {
      const ConstantInt* a = as_int(instr.operand(0));
      if (a == nullptr) return nullptr;
      return module.const_int(instr.type(), a->raw());
    }
    case Opcode::SExt: {
      const ConstantInt* a = as_int(instr.operand(0));
      if (a == nullptr) return nullptr;
      return module.const_int(instr.type(),
                              static_cast<std::uint64_t>(a->signed_value()));
    }
    case Opcode::SIToFP: {
      const ConstantInt* a = as_int(instr.operand(0));
      if (a == nullptr) return nullptr;
      return module.const_double(static_cast<double>(a->signed_value()));
    }
    case Opcode::FPToSI: {
      const ConstantDouble* a = as_double(instr.operand(0));
      if (a == nullptr) return nullptr;
      const double d = a->value();
      std::int64_t out;
      if (std::isnan(d) || d >= 9.2233720368547758e18 ||
          d < -9.2233720368547758e18)
        out = std::numeric_limits<std::int64_t>::min();
      else
        out = static_cast<std::int64_t>(d);
      return module.const_int(instr.type(), static_cast<std::uint64_t>(out));
    }
    case Opcode::Select: {
      const ConstantInt* cond = as_int(instr.operand(0));
      if (cond == nullptr) return nullptr;
      return cond->raw() & 1 ? instr.operand(1) : instr.operand(2);
    }
    default:
      return nullptr;
  }
}

class ConstFold final : public Pass {
 public:
  const char* name() const noexcept override { return "constfold"; }
  bool run(Function& fn) override {
    ir::Module& module = *fn.parent();
    bool changed = false;
    for (const auto& bb : fn.blocks()) {
      for (std::size_t i = 0; i < bb->size();) {
        Instruction* instr = bb->instr(i);
        Value* folded = instr->has_result() ? fold(module, *instr) : nullptr;
        if (folded != nullptr) {
          instr->replace_all_uses_with(folded);
          bb->erase(i);
          changed = true;
          continue;
        }
        ++i;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_const_fold() { return std::make_unique<ConstFold>(); }

}  // namespace faultlab::opt
