// Dead-code elimination: removes unused, side-effect-free instructions,
// including dead phi webs (phis only used by other dead phis).
#include <set>

#include "opt/pass.h"

namespace faultlab::opt {

namespace {

using ir::Function;
using ir::Instruction;
using ir::Opcode;

bool has_side_effects(const Instruction& instr) {
  switch (instr.opcode()) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Br:
    case Opcode::Ret:
      return true;
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
      return true;  // may trap; removing would change behaviour
    default:
      return false;
  }
}

class Dce final : public Pass {
 public:
  const char* name() const noexcept override { return "dce"; }

  bool run(Function& fn) override {
    // Mark: every side-effecting instruction is a root; everything it
    // transitively reads is live. This sweeps dead phi cycles too.
    std::set<const Instruction*> live;
    std::vector<const Instruction*> work;
    for (const auto& bb : fn.blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (has_side_effects(*instr)) {
          live.insert(instr.get());
          work.push_back(instr.get());
        }
      }
    }
    while (!work.empty()) {
      const Instruction* instr = work.back();
      work.pop_back();
      for (unsigned i = 0; i < instr->num_operands(); ++i) {
        const auto* def =
            dynamic_cast<const Instruction*>(instr->operand(i));
        if (def != nullptr && live.insert(def).second) work.push_back(def);
      }
    }

    bool changed = false;
    for (const auto& bb : fn.blocks()) {
      for (std::size_t i = bb->size(); i-- > 0;) {
        Instruction* instr = bb->instr(i);
        if (live.count(instr)) continue;
        instr->clear_operands();  // may be part of a dead phi cycle
        if (instr->has_uses()) continue;  // used by another dead instr; next pass
        bb->erase(i);
        changed = true;
      }
    }
    // Second sweep for freshly unreferenced dead instructions.
    for (const auto& bb : fn.blocks()) {
      for (std::size_t i = bb->size(); i-- > 0;) {
        Instruction* instr = bb->instr(i);
        if (!live.count(instr) && !instr->has_uses()) {
          bb->erase(i);
          changed = true;
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dce() { return std::make_unique<Dce>(); }

}  // namespace faultlab::opt
