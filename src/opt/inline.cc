// Function inlining: replaces calls to small, non-recursive functions with
// a clone of their body. Part of the "standard optimizations" pipeline —
// without it, trivial helpers (grid index functions, max2/max3, ...) keep
// their full call/prologue/epilogue overhead at the assembly level, which
// no production compiler would exhibit.
#include <map>

#include "ir/irbuilder.h"
#include "opt/pass.h"

namespace faultlab::opt {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Value;

constexpr std::size_t kMaxCalleeInstructions = 90;
constexpr std::size_t kMaxCalleeBlocks = 14;

bool calls_self(const Function& fn) {
  for (const auto& bb : fn.blocks())
    for (const auto& instr : bb->instructions())
      if (auto* call = dynamic_cast<const ir::CallInst*>(instr.get()))
        if (call->callee() == &fn) return true;
  return false;
}

bool inlinable(const Function& callee, const Function& caller) {
  if (callee.is_builtin() || &callee == &caller) return false;
  if (callee.num_blocks() == 0 || callee.num_blocks() > kMaxCalleeBlocks)
    return false;
  if (callee.num_instructions() > kMaxCalleeInstructions) return false;
  return !calls_self(callee);
}

/// Clones `callee`'s body into `caller` at the given call site.
class Cloner {
 public:
  Cloner(Function& caller, ir::CallInst& call)
      : caller_(caller), call_(call), callee_(*call.callee()) {}

  void run() {
    map_arguments();
    create_blocks();
    split_call_block();
    clone_instructions();
    patch_phis();
    wire_up();
  }

 private:
  void map_arguments() {
    for (unsigned i = 0; i < call_.num_args(); ++i)
      value_map_[callee_.arg(i)] = call_.arg(i);
  }

  void create_blocks() {
    for (const auto& bb : callee_.blocks())
      block_map_[bb.get()] =
          caller_.create_block(callee_.name() + "." + bb->name());
  }

  void split_call_block() {
    BasicBlock* block = call_.parent();
    const std::size_t call_index = block->index_of(&call_);
    continuation_ = caller_.create_block(block->name() + ".cont");
    // Move everything after the call (including the terminator) into the
    // continuation block.
    while (block->size() > call_index + 1)
      continuation_->append(block->take(call_index + 1));
    // Successor phis that named the original block now flow from the
    // continuation.
    for (BasicBlock* succ : continuation_->successors()) {
      for (ir::PhiInst* phi : succ->phis())
        for (unsigned i = 0; i < phi->num_incoming(); ++i)
          if (phi->incoming_block(i) == block)
            phi->set_incoming_block(i, continuation_);
    }
    call_block_ = block;
  }

  Value* mapped(Value* v) const {
    auto it = value_map_.find(v);
    return it == value_map_.end() ? v : it->second;
  }

  void clone_instructions() {
    Module& m = *caller_.parent();
    for (const auto& bb : callee_.blocks()) {
      BasicBlock* target = block_map_.at(bb.get());
      for (const auto& instr : bb->instructions()) {
        Instruction* copy = clone_one(m, *instr, target);
        if (copy != nullptr) value_map_[instr.get()] = copy;
      }
    }
  }

  /// Clones one instruction into `target`; returns null for rets (turned
  /// into branches to the continuation).
  Instruction* clone_one(Module& m, Instruction& instr, BasicBlock* target) {
    auto op = [&](unsigned i) { return mapped(instr.operand(i)); };
    const ir::Type* void_type = m.types().void_type();
    switch (instr.opcode()) {
      case Opcode::Ret: {
        auto& ret = static_cast<ir::RetInst&>(instr);
        if (ret.has_value())
          returns_.emplace_back(mapped(ret.value()), target);
        else
          returns_.emplace_back(nullptr, target);
        return target->append(
            std::make_unique<ir::BranchInst>(void_type, continuation_));
      }
      case Opcode::Br: {
        auto& br = static_cast<ir::BranchInst&>(instr);
        if (br.is_conditional())
          return target->append(std::make_unique<ir::BranchInst>(
              void_type, op(0), block_map_.at(br.true_target()),
              block_map_.at(br.false_target())));
        return target->append(std::make_unique<ir::BranchInst>(
            void_type, block_map_.at(br.true_target())));
      }
      case Opcode::Phi: {
        // Operands are patched afterwards (they may be forward refs).
        auto phi = std::make_unique<ir::PhiInst>(instr.type(), instr.name());
        pending_phis_.emplace_back(static_cast<ir::PhiInst*>(phi.get()),
                                   static_cast<ir::PhiInst*>(&instr));
        return target->append(std::move(phi));
      }
      case Opcode::Call: {
        auto& call = static_cast<ir::CallInst&>(instr);
        std::vector<Value*> args;
        for (unsigned i = 0; i < call.num_args(); ++i) args.push_back(op(i));
        return target->append(std::make_unique<ir::CallInst>(
            call.type(), call.callee(), std::move(args), call.name()));
      }
      case Opcode::Alloca: {
        auto& al = static_cast<ir::AllocaInst&>(instr);
        return target->append(std::make_unique<ir::AllocaInst>(
            al.type(), al.allocated_type(), al.name()));
      }
      case Opcode::Load:
        return target->append(
            std::make_unique<ir::LoadInst>(op(0), instr.name()));
      case Opcode::Store:
        return target->append(
            std::make_unique<ir::StoreInst>(void_type, op(0), op(1)));
      case Opcode::Gep: {
        auto& gep = static_cast<ir::GepInst&>(instr);
        std::vector<Value*> indices;
        for (unsigned i = 0; i < gep.num_indices(); ++i)
          indices.push_back(mapped(gep.index(i)));
        return target->append(std::make_unique<ir::GepInst>(
            gep.type(), op(0), std::move(indices), gep.name()));
      }
      case Opcode::ICmp: {
        auto& cmp = static_cast<ir::ICmpInst&>(instr);
        return target->append(std::make_unique<ir::ICmpInst>(
            cmp.type(), cmp.predicate(), op(0), op(1), cmp.name()));
      }
      case Opcode::FCmp: {
        auto& cmp = static_cast<ir::FCmpInst&>(instr);
        return target->append(std::make_unique<ir::FCmpInst>(
            cmp.type(), cmp.predicate(), op(0), op(1), cmp.name()));
      }
      case Opcode::Select:
        return target->append(std::make_unique<ir::SelectInst>(
            op(0), op(1), op(2), instr.name()));
      default:
        break;
    }
    if (ir::is_int_binary(instr.opcode()) || ir::is_fp_binary(instr.opcode()))
      return target->append(std::make_unique<ir::BinaryInst>(
          instr.opcode(), op(0), op(1), instr.name()));
    if (ir::is_cast(instr.opcode()))
      return target->append(std::make_unique<ir::CastInst>(
          instr.opcode(), op(0), instr.type(), instr.name()));
    assert(false && "unhandled opcode in inliner");
    return nullptr;
  }

  void patch_phis() {
    for (auto& [copy, original] : pending_phis_) {
      for (unsigned i = 0; i < original->num_incoming(); ++i) {
        copy->add_incoming(mapped(original->incoming_value(i)),
                           block_map_.at(original->incoming_block(i)));
      }
    }
  }

  void wire_up() {
    Module& m = *caller_.parent();
    // Replace the call's value with the return value (phi when several).
    if (call_.has_result() && call_.has_uses()) {
      Value* result = nullptr;
      if (returns_.size() == 1) {
        result = returns_[0].first;
      } else {
        ir::IRBuilder b(m);
        b.set_insert_point(continuation_);
        ir::PhiInst* phi = b.phi(call_.type(), callee_.name() + ".ret");
        for (auto& [value, block] : returns_) phi->add_incoming(value, block);
        result = phi;
      }
      call_.replace_all_uses_with(result);
    }
    // The call block now jumps into the cloned entry.
    BasicBlock* cloned_entry = block_map_.at(callee_.entry());
    call_block_->erase(call_block_->index_of(&call_));
    ir::IRBuilder b(m);
    b.set_insert_point(call_block_);
    b.br(cloned_entry);
  }

  Function& caller_;
  ir::CallInst& call_;
  const Function& callee_;
  BasicBlock* call_block_ = nullptr;
  BasicBlock* continuation_ = nullptr;
  std::map<const Value*, Value*> value_map_;
  std::map<const BasicBlock*, BasicBlock*> block_map_;
  std::vector<std::pair<ir::PhiInst*, ir::PhiInst*>> pending_phis_;
  std::vector<std::pair<Value*, BasicBlock*>> returns_;  // value may be null
};

class Inliner final : public Pass {
 public:
  const char* name() const noexcept override { return "inline"; }

  bool run(Function& fn) override {
    bool changed = false;
    // Snapshot call sites first: inlining mutates the block list.
    std::vector<ir::CallInst*> sites;
    for (const auto& bb : fn.blocks())
      for (const auto& instr : bb->instructions())
        if (auto* call = dynamic_cast<ir::CallInst*>(instr.get()))
          if (inlinable(*call->callee(), fn)) sites.push_back(call);
    for (ir::CallInst* call : sites) {
      Cloner(fn, *call).run();
      changed = true;
    }
    if (changed) fn.renumber();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_inline() { return std::make_unique<Inliner>(); }

}  // namespace faultlab::opt
