// Local common-subexpression elimination (per basic block), with a memory
// clobber model for loads: a load is reusable until the next store or call.
#include <map>
#include <tuple>
#include <vector>

#include "opt/pass.h"

namespace faultlab::opt {

namespace {

using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

/// Structural key identifying a pure expression within one block.
struct ExprKey {
  Opcode op;
  int subkind;  // cmp predicate or 0
  const ir::Type* type;
  std::vector<const Value*> operands;

  auto tie() const { return std::tie(op, subkind, type, operands); }
  bool operator<(const ExprKey& other) const { return tie() < other.tie(); }
};

bool is_pure_candidate(const Instruction& instr) {
  const Opcode op = instr.opcode();
  if (ir::is_int_binary(op)) {
    // Division can trap; still safe to CSE (same operands, same behaviour),
    // but re-using avoids the second trap site — identical semantics.
    return true;
  }
  if (ir::is_fp_binary(op) || ir::is_cast(op)) return true;
  switch (op) {
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::Gep:
    case Opcode::Select:
      return true;
    default:
      return false;
  }
}

int subkind_of(const Instruction& instr) {
  if (instr.opcode() == Opcode::ICmp)
    return 1 + static_cast<int>(
                   static_cast<const ir::ICmpInst&>(instr).predicate());
  if (instr.opcode() == Opcode::FCmp)
    return 100 + static_cast<int>(
                     static_cast<const ir::FCmpInst&>(instr).predicate());
  return 0;
}

class Cse final : public Pass {
 public:
  const char* name() const noexcept override { return "cse"; }

  bool run(Function& fn) override {
    bool changed = false;
    for (const auto& bb : fn.blocks()) {
      std::map<ExprKey, Instruction*> available;
      std::map<const Value*, Instruction*> available_loads;  // by address
      for (std::size_t i = 0; i < bb->size();) {
        Instruction* instr = bb->instr(i);
        const Opcode op = instr->opcode();

        if (op == Opcode::Store || op == Opcode::Call) {
          available_loads.clear();  // conservative clobber
          ++i;
          continue;
        }
        if (op == Opcode::Load) {
          const Value* addr = instr->operand(0);
          auto it = available_loads.find(addr);
          if (it != available_loads.end() && it->second->type() == instr->type()) {
            instr->replace_all_uses_with(it->second);
            bb->erase(i);
            changed = true;
            continue;
          }
          available_loads[addr] = instr;
          ++i;
          continue;
        }
        if (!is_pure_candidate(*instr)) {
          ++i;
          continue;
        }
        ExprKey key{op, subkind_of(*instr), instr->type(), {}};
        for (unsigned k = 0; k < instr->num_operands(); ++k)
          key.operands.push_back(instr->operand(k));
        auto it = available.find(key);
        if (it != available.end()) {
          instr->replace_all_uses_with(it->second);
          bb->erase(i);
          changed = true;
          continue;
        }
        available.emplace(std::move(key), instr);
        ++i;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_cse() { return std::make_unique<Cse>(); }

}  // namespace faultlab::opt
