// Light algebraic simplification: identity/absorbing elements and a few
// strength reductions. Runs before constant folding so produced constants
// propagate.
#include "opt/pass.h"
#include "support/bitutil.h"

namespace faultlab::opt {

namespace {

using ir::ConstantInt;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

bool is_int_const(const Value* v, std::uint64_t value) {
  const auto* c = dynamic_cast<const ConstantInt*>(v);
  return c != nullptr && c->raw() == value;
}

bool is_all_ones(const Value* v) {
  const auto* c = dynamic_cast<const ConstantInt*>(v);
  if (c == nullptr) return false;
  const unsigned bits = c->type()->int_bits();
  return c->raw() == faultlab::low_mask(bits);
}

/// Returns the replacement value, or null when nothing applies.
Value* simplify(ir::Module& module, Instruction& instr) {
  Value* a = instr.num_operands() > 0 ? instr.operand(0) : nullptr;
  Value* b = instr.num_operands() > 1 ? instr.operand(1) : nullptr;
  switch (instr.opcode()) {
    case Opcode::Add:
      if (is_int_const(b, 0)) return a;
      if (is_int_const(a, 0)) return b;
      return nullptr;
    case Opcode::Sub:
      if (is_int_const(b, 0)) return a;
      if (a == b) return module.const_int(instr.type(), 0);
      return nullptr;
    case Opcode::Mul:
      if (is_int_const(b, 1)) return a;
      if (is_int_const(a, 1)) return b;
      if (is_int_const(b, 0) || is_int_const(a, 0))
        return module.const_int(instr.type(), 0);
      return nullptr;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (is_int_const(b, 1)) return a;
      return nullptr;
    case Opcode::And:
      if (is_int_const(b, 0) || is_int_const(a, 0))
        return module.const_int(instr.type(), 0);
      if (is_all_ones(b)) return a;
      if (is_all_ones(a)) return b;
      if (a == b) return a;
      return nullptr;
    case Opcode::Or:
      if (is_int_const(b, 0)) return a;
      if (is_int_const(a, 0)) return b;
      if (a == b) return a;
      return nullptr;
    case Opcode::Xor:
      if (is_int_const(b, 0)) return a;
      if (is_int_const(a, 0)) return b;
      if (a == b) return module.const_int(instr.type(), 0);
      return nullptr;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (is_int_const(b, 0)) return a;
      return nullptr;
    case Opcode::Select:
      if (instr.operand(1) == instr.operand(2)) return instr.operand(1);
      return nullptr;
    case Opcode::ICmp: {
      // icmp ne (zext i1 %x), 0  ->  %x
      // This undoes the front-end's bool->int->bool roundtrip, matching the
      // cmp+branch shape a production compiler emits (important for the
      // paper's 'cmp' category counts).
      const auto& cmp = static_cast<const ir::ICmpInst&>(instr);
      if (cmp.predicate() != ir::ICmpPred::NE || !is_int_const(b, 0))
        return nullptr;
      auto* zext = dynamic_cast<Instruction*>(a);
      if (zext != nullptr && zext->opcode() == Opcode::ZExt &&
          zext->operand(0)->type()->is_bool())
        return zext->operand(0);
      return nullptr;
    }
    default:
      return nullptr;
  }
}

class InstCombine final : public Pass {
 public:
  const char* name() const noexcept override { return "instcombine"; }
  bool run(Function& fn) override {
    ir::Module& module = *fn.parent();
    bool changed = false;
    for (const auto& bb : fn.blocks()) {
      for (std::size_t i = 0; i < bb->size();) {
        Instruction* instr = bb->instr(i);
        Value* repl = instr->has_result() ? simplify(module, *instr) : nullptr;
        if (repl != nullptr && repl != instr) {
          instr->replace_all_uses_with(repl);
          bb->erase(i);
          changed = true;
          continue;
        }
        ++i;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_inst_combine() {
  return std::make_unique<InstCombine>();
}

}  // namespace faultlab::opt
