// mem2reg: promotes scalar stack slots to SSA registers using the classic
// iterated-dominance-frontier phi placement + dominator-tree renaming
// algorithm. This is the pass that *creates* the phi nodes whose assembly
// lowering (register spilling) the paper's Table I row 2 discusses.
#include <map>
#include <set>

#include "ir/dominance.h"
#include "opt/pass.h"

namespace faultlab::opt {

namespace {

using ir::AllocaInst;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::LoadInst;
using ir::Opcode;
using ir::PhiInst;
using ir::StoreInst;
using ir::Value;

/// An alloca is promotable when every use is a direct load from it or a
/// store *to* it (never a store *of* it, a GEP, a call argument, ...).
bool is_promotable(const AllocaInst& alloca) {
  if (!alloca.allocated_type()->is_scalar()) return false;
  for (const ir::Use& use : alloca.uses()) {
    switch (use.user->opcode()) {
      case Opcode::Load:
        break;
      case Opcode::Store:
        if (use.index != 1) return false;  // address operand only
        break;
      default:
        return false;
    }
  }
  return true;
}

class Mem2Reg final : public Pass {
 public:
  const char* name() const noexcept override { return "mem2reg"; }

  bool run(Function& fn) override {
    if (fn.num_blocks() == 0) return false;
    std::vector<AllocaInst*> candidates;
    for (const auto& bb : fn.blocks())
      for (const auto& instr : bb->instructions())
        if (auto* al = dynamic_cast<AllocaInst*>(instr.get()))
          if (is_promotable(*al)) candidates.push_back(al);
    if (candidates.empty()) return false;

    ir::DominatorTree dom(fn);
    // Map each candidate to an ordinal.
    std::map<const AllocaInst*, std::size_t> ordinal;
    for (std::size_t i = 0; i < candidates.size(); ++i)
      ordinal[candidates[i]] = i;

    place_phis(fn, dom, candidates, ordinal);
    rename(fn, dom, ordinal);
    cleanup(fn, candidates);
    return true;
  }

 private:
  // phi -> alloca ordinal it merges
  std::map<const PhiInst*, std::size_t> phi_slot_;

  void place_phis(Function& fn, const ir::DominatorTree& dom,
                  const std::vector<AllocaInst*>& candidates,
                  const std::map<const AllocaInst*, std::size_t>& ordinal) {
    phi_slot_.clear();
    ir::Module& module = *fn.parent();
    for (AllocaInst* alloca : candidates) {
      // Blocks containing a store to this slot.
      std::set<const BasicBlock*> def_blocks;
      for (const ir::Use& use : alloca->uses())
        if (use.user->opcode() == Opcode::Store)
          def_blocks.insert(use.user->parent());

      // Iterated dominance frontier worklist.
      std::set<const BasicBlock*> has_phi;
      std::vector<const BasicBlock*> work(def_blocks.begin(), def_blocks.end());
      while (!work.empty()) {
        const BasicBlock* bb = work.back();
        work.pop_back();
        for (const BasicBlock* frontier : dom.frontier(bb)) {
          if (!has_phi.insert(frontier).second) continue;
          auto* target = const_cast<BasicBlock*>(frontier);
          auto phi = std::make_unique<PhiInst>(alloca->allocated_type(),
                                               alloca->name() + ".phi");
          phi_slot_[phi.get()] = ordinal.at(alloca);
          target->insert(0, std::move(phi));
          if (!def_blocks.count(frontier)) work.push_back(frontier);
        }
      }
      (void)module;
    }
  }

  void rename(Function& fn, const ir::DominatorTree& dom,
              const std::map<const AllocaInst*, std::size_t>& ordinal) {
    // Children lists of the dominator tree.
    std::map<const BasicBlock*, std::vector<const BasicBlock*>> children;
    for (const BasicBlock* bb : dom.reverse_postorder())
      if (const BasicBlock* parent = dom.idom(bb)) children[parent].push_back(bb);

    ir::Module& module = *fn.parent();
    std::vector<Value*> current(ordinal.size(), nullptr);
    rename_block(fn.entry(), children, ordinal, current, module, dom);
  }

  void rename_block(const BasicBlock* bb,
                    const std::map<const BasicBlock*,
                                   std::vector<const BasicBlock*>>& children,
                    const std::map<const AllocaInst*, std::size_t>& ordinal,
                    std::vector<Value*> current,  // by value: scoped copies
                    ir::Module& module, const ir::DominatorTree& dom) {
    auto* block = const_cast<BasicBlock*>(bb);
    for (std::size_t i = 0; i < block->size();) {
      Instruction* instr = block->instr(i);
      if (auto* phi = dynamic_cast<PhiInst*>(instr)) {
        auto it = phi_slot_.find(phi);
        if (it != phi_slot_.end()) current[it->second] = phi;
        ++i;
        continue;
      }
      if (auto* load = dynamic_cast<LoadInst*>(instr)) {
        auto* alloca = dynamic_cast<AllocaInst*>(load->pointer());
        if (alloca != nullptr && ordinal.count(alloca)) {
          Value* live = current[ordinal.at(alloca)];
          if (live == nullptr) live = default_value(module, load->type());
          load->replace_all_uses_with(live);
          block->erase(i);
          continue;
        }
      }
      if (auto* store = dynamic_cast<StoreInst*>(instr)) {
        auto* alloca = dynamic_cast<AllocaInst*>(store->pointer());
        if (alloca != nullptr && ordinal.count(alloca)) {
          current[ordinal.at(alloca)] = store->stored_value();
          block->erase(i);
          continue;
        }
      }
      ++i;
    }

    // Feed this path's current values into successor phis.
    for (BasicBlock* succ : block->successors()) {
      for (PhiInst* phi : succ->phis()) {
        auto it = phi_slot_.find(phi);
        if (it == phi_slot_.end()) continue;
        Value* live = current[it->second];
        if (live == nullptr) live = default_value(module, phi->type());
        phi->add_incoming(live, block);
      }
    }

    auto it = children.find(bb);
    if (it != children.end())
      for (const BasicBlock* child : it->second)
        rename_block(child, children, ordinal, current, module, dom);
  }

  static Value* default_value(ir::Module& module, const ir::Type* type) {
    // Reading an uninitialized local is UB in C; we define it as zero so
    // runs are deterministic.
    if (type->is_double()) return module.const_double(0.0);
    if (type->is_ptr()) return module.const_null(type);
    return module.const_int(type, 0);
  }

  void cleanup(Function&, const std::vector<AllocaInst*>& candidates) {
    for (AllocaInst* alloca : candidates) {
      assert(!alloca->has_uses() && "promoted alloca still used");
      BasicBlock* bb = alloca->parent();
      bb->erase(bb->index_of(alloca));
    }
    phi_slot_.clear();
  }
};

}  // namespace

std::unique_ptr<Pass> make_mem2reg() { return std::make_unique<Mem2Reg>(); }

}  // namespace faultlab::opt
