// Optimization pass framework and the standard pipeline.
//
// The paper compiles its benchmarks "with the same standard optimizations
// enabled"; our pipeline plays that role: CFG cleanup, mem2reg (SSA/phi
// construction), algebraic simplification, constant folding, local CSE and
// dead-code elimination. Each pass reports whether it changed anything so
// the pipeline can run to a fixpoint.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace faultlab::opt {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const noexcept = 0;
  /// Returns true when the function was modified.
  virtual bool run(ir::Function& function) = 0;
};

std::unique_ptr<Pass> make_simplify_cfg();
std::unique_ptr<Pass> make_inline();
std::unique_ptr<Pass> make_mem2reg();
std::unique_ptr<Pass> make_const_fold();
std::unique_ptr<Pass> make_inst_combine();
std::unique_ptr<Pass> make_cse();
std::unique_ptr<Pass> make_dce();

struct PipelineStats {
  std::size_t instructions_before = 0;
  std::size_t instructions_after = 0;
  std::size_t phis_after = 0;     // phi nodes present post-pipeline (mem2reg)
  std::size_t allocas_before = 0;
  std::size_t allocas_after = 0;  // before-after == promoted or folded away
  std::size_t iterations = 0;
};

/// Runs the standard pipeline over every function until fixpoint (bounded),
/// verifying the module afterwards. Returns summary statistics.
PipelineStats run_standard_pipeline(ir::Module& module);

}  // namespace faultlab::opt
