// Shared checkpoint container for the injector engines.
//
// Both LLFI and PINFI capture the same thing during profile_all(): an
// execution snapshot every stride instructions plus the per-category
// instance counters at that point. This template owns that sequence, the
// "nearest resumable point before the k-th instance" query, and the
// snapshot memory budget: when the summed mapped-page counts of live
// snapshots exceed the budget, entries are evicted — least-recently-used
// first, interval thinning (smallest coverage gap left behind) as the
// tie-break — and a trial whose ideal window was evicted transparently
// falls back to the nearest earlier live one (or a from-scratch run).
//
// Thread-safety contract: add()/clear()/set_budget() are capture/setup
// operations and must not run concurrently with trials; before() and
// window_of() are safe to call from many trial workers at once (the only
// mutation is the per-entry LRU stamp, a relaxed atomic).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>

#include "fault/engine.h"
#include "ir/category.h"

namespace faultlab::fault {

template <typename SnapshotT>
class CheckpointStore {
 public:
  static constexpr std::uint64_t kNoWindow = InjectorEngine::kNoWindow;

  struct Entry {
    SnapshotT snapshot;
    CategoryCounts seen;
    std::uint64_t executed = 0;  ///< golden position (kept after eviction)
    std::size_t pages = 0;       ///< mapped pages at capture time
    bool alive = true;
    mutable std::atomic<std::uint64_t> last_touch{0};
  };

  /// Drops all entries (a new profiling run starts). Eviction counters are
  /// cumulative across profiling runs, matching the engines' other stats.
  void clear() {
    entries_.clear();
    live_pages_ = 0;
    live_count_ = 0;
  }

  void set_budget(std::uint64_t pages) {
    budget_pages_ = pages;
    enforce_budget();
  }

  /// Appends a snapshot captured at `seen` instance counts, then evicts
  /// until the live set fits the budget again.
  void add(SnapshotT&& snapshot, const CategoryCounts& seen) {
    Entry& e = entries_.emplace_back();  // deque: growth never moves entries
    e.executed = snapshot.executed;
    e.pages = snapshot.memory.mapped_pages();
    e.snapshot = std::move(snapshot);
    e.seen = seen;
    live_pages_ += e.pages;
    ++live_count_;
    enforce_budget();
  }

  /// Latest live entry whose prefix holds fewer than k `category`
  /// instances, or nullptr (run from scratch). Stamps the entry's LRU
  /// clock.
  const Entry* before(ir::Category category, std::uint64_t k) const {
    const std::size_t idx = index_before(category, k);
    if (idx == entries_.size()) return nullptr;
    const Entry& e = entries_[idx];
    e.last_touch.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return &e;
  }

  /// Index of the entry before() would resume from, or kNoWindow. Used by
  /// the scheduler to group trials sharing a resident snapshot; does not
  /// stamp the LRU clock.
  std::uint64_t window_of(ir::Category category, std::uint64_t k) const {
    const std::size_t idx = index_before(category, k);
    return idx == entries_.size() ? kNoWindow
                                  : static_cast<std::uint64_t>(idx);
  }

  /// Latest live entry captured strictly before dynamic instruction `t`,
  /// or nullptr (run from scratch). The time-triggered analogue of
  /// before(): resuming it replays every instruction from `executed` to
  /// `t`, so a hook armed at `t` misses nothing. Stamps the LRU clock.
  const Entry* before_time(std::uint64_t t) const {
    const std::size_t idx = index_before_time(t);
    if (idx == entries_.size()) return nullptr;
    const Entry& e = entries_[idx];
    e.last_touch.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return &e;
  }

  /// Index of the entry before_time() would resume from, or kNoWindow.
  std::uint64_t window_of_time(std::uint64_t t) const {
    const std::size_t idx = index_before_time(t);
    return idx == entries_.size() ? kNoWindow
                                  : static_cast<std::uint64_t>(idx);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t live_count() const noexcept { return live_count_; }
  std::uint64_t live_pages() const noexcept { return live_pages_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t budget_pages() const noexcept { return budget_pages_; }

 private:
  /// Index of the latest live entry with seen[category] < k, or size().
  std::size_t index_before(ir::Category category, std::uint64_t k) const {
    // Entries are in execution order and seen-counts are monotonic (dead
    // entries keep their counters), so binary search still applies; walk
    // left past evicted entries to the nearest live resume point.
    std::size_t hi = entries_.size();
    std::size_t lo = 0;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries_[mid].seen[category] < k)
        lo = mid + 1;
      else
        hi = mid;
    }
    while (lo > 0) {
      if (entries_[lo - 1].alive) return lo - 1;
      --lo;
    }
    return entries_.size();
  }

  /// Index of the latest live entry with executed < t, or size(). Same
  /// shape as index_before(): executed counts are strictly increasing, so
  /// binary search applies, then walk left past evicted entries.
  std::size_t index_before_time(std::uint64_t t) const {
    std::size_t hi = entries_.size();
    std::size_t lo = 0;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries_[mid].executed < t)
        lo = mid + 1;
      else
        hi = mid;
    }
    while (lo > 0) {
      if (entries_[lo - 1].alive) return lo - 1;
      --lo;
    }
    return entries_.size();
  }

  void enforce_budget() {
    if (budget_pages_ == 0) return;
    while (live_pages_ > budget_pages_ && live_count_ > 0) evict_one();
  }

  /// Evicts the live entry with the oldest LRU stamp; among equals, the
  /// one whose removal leaves the smallest gap between its live neighbours
  /// (interval thinning — untouched stores degrade to evenly-thinned
  /// coverage instead of dropping a whole flank). The final live entry
  /// has an unbounded trailing gap, so the most recent resume point
  /// survives longest.
  void evict_one() {
    constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
    std::size_t victim = entries_.size();
    std::uint64_t victim_touch = kInf;
    std::uint64_t victim_gap = kInf;
    std::uint64_t prev_executed = 0;  // golden run starts at instruction 0
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].alive) continue;
      std::uint64_t next_executed = kInf;
      for (std::size_t j = i + 1; j < entries_.size(); ++j) {
        if (entries_[j].alive) {
          next_executed = entries_[j].executed;
          break;
        }
      }
      const std::uint64_t touch =
          entries_[i].last_touch.load(std::memory_order_relaxed);
      const std::uint64_t gap =
          next_executed == kInf ? kInf : next_executed - prev_executed;
      if (touch < victim_touch ||
          (touch == victim_touch && gap < victim_gap)) {
        victim = i;
        victim_touch = touch;
        victim_gap = gap;
      }
      prev_executed = entries_[i].executed;
    }
    if (victim == entries_.size()) return;
    Entry& e = entries_[victim];
    e.alive = false;
    e.snapshot = SnapshotT{};  // release the pages now
    live_pages_ -= e.pages;
    --live_count_;
    ++evictions_;
  }

  std::deque<Entry> entries_;
  std::uint64_t budget_pages_ = 0;
  std::uint64_t live_pages_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t evictions_ = 0;
  mutable std::atomic<std::uint64_t> clock_{0};
};

}  // namespace faultlab::fault
