#include "fault/campaign.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace faultlab::fault {

CampaignResult run_campaign(InjectorEngine& engine,
                            const CampaignConfig& config) {
  CampaignResult result;
  result.app = config.app;
  result.tool = engine.tool_name();
  result.category = config.category;
  result.profiled_count = engine.profile(config.category);

  if (result.profiled_count == 0) return result;  // nothing to inject into

  // Draw every trial's target instance and bit stream sequentially so the
  // campaign is deterministic regardless of the worker count.
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(config.category) << 32));
  struct Draw {
    std::uint64_t k;
    Rng trial_rng;
  };
  std::vector<Draw> draws;
  draws.reserve(config.trials);
  for (std::size_t t = 0; t < config.trials; ++t) {
    const std::uint64_t k = rng.range(1, result.profiled_count);
    draws.push_back({k, rng.fork()});
  }

  std::vector<TrialRecord> records(config.trials);
  std::size_t workers = config.threads != 0
                            ? config.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, config.trials == 0 ? 1 : config.trials);

  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    while (true) {
      const std::size_t t = next.fetch_add(1);
      if (t >= config.trials) return;
      records[t] = engine.inject(config.category, draws[t].k,
                                 draws[t].trial_rng);
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }

  for (const TrialRecord& record : records) {
    switch (record.outcome) {
      case Outcome::Crash: ++result.crash; break;
      case Outcome::SDC: ++result.sdc; break;
      case Outcome::Benign: ++result.benign; break;
      case Outcome::Hang: ++result.hang; break;
      case Outcome::NotActivated: ++result.not_activated; break;
    }
  }
  result.trials = std::move(records);
  return result;
}

std::size_t default_trials() {
  if (const char* env = std::getenv("FAULTLAB_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 150;
}

}  // namespace faultlab::fault
