#include "fault/campaign.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "fault/scheduler.h"

namespace faultlab::fault {

CampaignResult run_campaign(InjectorEngine& engine,
                            const CampaignConfig& config) {
  SchedulerOptions options;
  options.threads = config.threads;
  CampaignScheduler scheduler(options);
  scheduler.add(engine, config);
  std::vector<CampaignResult> results = scheduler.run();
  return std::move(results.front());
}

std::size_t default_trials() {
  constexpr std::size_t kDefault = 150;
  const char* env = std::getenv("FAULTLAB_TRIALS");
  if (env == nullptr) return kDefault;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (errno == ERANGE || end == env || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr,
                 "warning: FAULTLAB_TRIALS='%s' is not a positive integer; "
                 "using %zu\n",
                 env, kDefault);
    return kDefault;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace faultlab::fault
