#include "fault/campaign.h"

#include <utility>

#include "fault/scheduler.h"
#include "support/env.h"

namespace faultlab::fault {

CampaignResult run_campaign(InjectorEngine& engine,
                            const CampaignConfig& config) {
  SchedulerOptions options;
  options.threads = config.threads;
  CampaignScheduler scheduler(options);
  scheduler.add(engine, config);
  std::vector<CampaignResult> results = scheduler.run();
  return std::move(results.front());
}

std::size_t default_trials() {
  return static_cast<std::size_t>(
      support::parse_env_u64("FAULTLAB_TRIALS", 150, /*min=*/1));
}

}  // namespace faultlab::fault
