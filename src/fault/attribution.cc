#include "fault/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "support/table.h"

namespace faultlab::fault {

namespace {

struct ClassRule {
  const char* opcode;
  const char* cls;
};

// Both vocabularies in one table: IR opcode names (ir::opcode_name) and
// asm mnemonics (pinfi's site labels). The classes encode the paper's
// mapping story — lea is the assembly shadow of getelementptr, reg movs
// and cmov are where phi/select land after register allocation, and
// push/pop/ret are the call machinery only PINFI can corrupt.
constexpr ClassRule kRules[] = {
    // arithmetic / logic
    {"add", "arith"}, {"sub", "arith"}, {"mul", "arith"}, {"sdiv", "arith"},
    {"udiv", "arith"}, {"srem", "arith"}, {"urem", "arith"}, {"and", "arith"},
    {"or", "arith"}, {"xor", "arith"}, {"shl", "arith"}, {"lshr", "arith"},
    {"ashr", "arith"}, {"fadd", "arith"}, {"fsub", "arith"}, {"fmul", "arith"},
    {"fdiv", "arith"}, {"imul", "arith"}, {"sar", "arith"}, {"shr", "arith"},
    {"neg", "arith"}, {"not", "arith"}, {"idiv", "arith"}, {"irem", "arith"},
    {"addsd", "arith"}, {"subsd", "arith"}, {"mulsd", "arith"},
    {"divsd", "arith"}, {"sqrtsd", "arith"},
    // comparisons (setcc materializes a compare's result)
    {"icmp", "cmp"}, {"fcmp", "cmp"}, {"cmp", "cmp"}, {"test", "cmp"},
    {"ucomisd", "cmp"}, {"set", "cmp"},
    // memory
    {"load", "load"}, {"mov.load", "load"}, {"movzx.load", "load"},
    {"movsx.load", "load"}, {"movsd.load", "load"},
    {"store", "store"},
    // address arithmetic
    {"getelementptr", "gep"}, {"lea", "gep"},
    // width / representation changes
    {"trunc", "cast"}, {"zext", "cast"}, {"sext", "cast"},
    {"fptosi", "cast"}, {"sitofp", "cast"}, {"bitcast", "cast"},
    {"ptrtoint", "cast"}, {"inttoptr", "cast"}, {"movzx", "cast"},
    {"movsx", "cast"}, {"cvtsi2sd", "cast"}, {"cvttsd2si", "cast"},
    // register shuffling
    {"phi", "phi/mov"}, {"select", "phi/mov"}, {"mov", "phi/mov"},
    {"movsd", "phi/mov"}, {"movq", "phi/mov"}, {"cmov", "phi/mov"},
    // call machinery (stack discipline: PINFI-only territory)
    {"call", "call"}, {"callb", "call"}, {"ret", "call"}, {"push", "call"},
    {"pop", "call"},
    // control flow
    {"br", "control"}, {"jmp", "control"}, {"j", "control"},
    // frame setup
    {"alloca", "alloca"},
};

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt4(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

/// Crash share of a class rendered with its Wilson 95% CI (over the cell's
/// activated total, so shares sum to the cell crash rate).
std::string share_ci(const Proportion& p) {
  if (p.trials == 0) return "-";
  const Proportion::Interval ci = p.wilson95();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%% [%.1f, %.1f]", p.percent(),
                ci.lo * 100.0, ci.hi * 100.0);
  return buf;
}

/// Per-class accumulator for one tool's half of a cell.
struct ClassSide {
  std::size_t crash = 0;
  std::size_t activated = 0;
  /// crash count per static site, for the "hottest site" label.
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> sites;
  std::map<std::pair<std::string, std::uint64_t>, std::string> site_label;
};

std::string top_site(const ClassSide& side) {
  const std::pair<std::string, std::uint64_t>* best = nullptr;
  std::size_t best_count = 0;
  for (const auto& [site, count] : side.sites)
    if (count > best_count) {  // map order breaks ties deterministically
      best = &site;
      best_count = count;
    }
  if (best == nullptr) return "-";
  return side.site_label.at(*best);
}

void accumulate(const CampaignResult& r, std::map<std::string, ClassSide>& by) {
  for (const TrialRecord& t : r.trials) {
    if (!t.injected) continue;
    const bool activated = t.outcome != Outcome::NotActivated;
    if (!activated) continue;
    ClassSide& side = by[opcode_class(t.site_opcode)];
    ++side.activated;
    if (t.outcome != Outcome::Crash) continue;
    ++side.crash;
    const char* fn = t.site_function != nullptr ? t.site_function : "?";
    const char* op = t.site_opcode != nullptr ? t.site_opcode : "?";
    const auto key = std::make_pair(std::string(fn), t.static_site);
    ++side.sites[key];
    if (side.site_label.find(key) == side.site_label.end()) {
      std::string label = fn;
      label += ':';
      label += op;
      label += '@';
      label += std::to_string(t.static_site);
      side.site_label.emplace(key, std::move(label));
    }
  }
}

}  // namespace

const char* opcode_class(const char* opcode) noexcept {
  if (opcode == nullptr) return "other";
  for (const ClassRule& rule : kRules)
    if (std::strcmp(rule.opcode, opcode) == 0) return rule.cls;
  return "other";
}

std::vector<OpcodeBreakdown> opcode_breakdown(const CampaignResult& r) {
  std::map<std::string, OpcodeBreakdown> by;
  for (const TrialRecord& t : r.trials) {
    if (!t.injected) continue;
    const char* op = t.site_opcode != nullptr ? t.site_opcode : "?";
    OpcodeBreakdown& b = by[op];
    if (b.opcode.empty()) {
      b.opcode = op;
      b.opcode_class = opcode_class(t.site_opcode);
    }
    ++b.injected;
    if (t.outcome == Outcome::NotActivated) continue;
    ++b.activated;
    switch (t.outcome) {
      case Outcome::Crash: ++b.crash; break;
      case Outcome::SDC: ++b.sdc; break;
      case Outcome::Benign: ++b.benign; break;
      case Outcome::Hang: ++b.hang; break;
      case Outcome::NotActivated: break;
    }
  }
  std::vector<OpcodeBreakdown> out;
  out.reserve(by.size());
  for (auto& [name, b] : by) out.push_back(std::move(b));
  std::sort(out.begin(), out.end(),
            [](const OpcodeBreakdown& a, const OpcodeBreakdown& b) {
              if (a.activated != b.activated) return a.activated > b.activated;
              return a.opcode < b.opcode;
            });
  return out;
}

std::vector<CellAttribution> attribute_crash_delta(const ResultSet& rs) {
  std::vector<CellAttribution> out;
  for (const std::string& app : rs.apps()) {
    for (ir::Category category : ir::kAllCategories) {
      CellAttribution cell;
      cell.app = app;
      cell.category = category;
      const CampaignResult* l = rs.find(app, "LLFI", category);
      const CampaignResult* p = rs.find(app, "PINFI", category);
      if (l == nullptr || p == nullptr || l->activated() == 0 ||
          p->activated() == 0) {
        out.push_back(std::move(cell));
        continue;
      }
      cell.valid = true;
      cell.crash_delta =
          p->crash_rate().percent() - l->crash_rate().percent();
      std::map<std::string, ClassSide> llfi_by, pinfi_by;
      accumulate(*l, llfi_by);
      accumulate(*p, pinfi_by);
      std::map<std::string, bool> classes;
      for (const auto& [cls, side] : llfi_by) classes[cls] = true;
      for (const auto& [cls, side] : pinfi_by) classes[cls] = true;
      for (const auto& [cls, present] : classes) {
        (void)present;
        AttributionEntry entry;
        entry.opcode_class = cls;
        const auto li = llfi_by.find(cls);
        const auto pi = pinfi_by.find(cls);
        // Denominator is the *cell's* activated total, so each tool's
        // class shares sum to its cell crash rate and the entry deltas
        // sum to the cell delta.
        entry.llfi_crash = {li != llfi_by.end() ? li->second.crash : 0,
                            l->activated()};
        entry.pinfi_crash = {pi != pinfi_by.end() ? pi->second.crash : 0,
                             p->activated()};
        entry.delta_points =
            entry.pinfi_crash.percent() - entry.llfi_crash.percent();
        entry.llfi_top_site =
            li != llfi_by.end() ? top_site(li->second) : "-";
        entry.pinfi_top_site =
            pi != pinfi_by.end() ? top_site(pi->second) : "-";
        cell.entries.push_back(std::move(entry));
      }
      std::sort(cell.entries.begin(), cell.entries.end(),
                [](const AttributionEntry& a, const AttributionEntry& b) {
                  const double da = std::fabs(a.delta_points);
                  const double db = std::fabs(b.delta_points);
                  if (da != db) return da > db;
                  return a.opcode_class < b.opcode_class;
                });
      out.push_back(std::move(cell));
    }
  }
  return out;
}

std::string render_attribution(const ResultSet& rs) {
  std::ostringstream os;
  os << "Crash-divergence attribution: per mapping class, each tool's share "
        "of the\ncell's crash rate (Wilson 95% CI) and the hottest static "
        "site on each side.\nDeltas are signed (PINFI - LLFI) and sum to the "
        "cell's crash divergence.\n";
  for (const CellAttribution& cell : attribute_crash_delta(rs)) {
    if (!cell.valid) continue;
    os << "\n[" << cell.app << " / " << ir::category_name(cell.category)
       << "]  crash delta " << fmt1(cell.crash_delta) << " points\n";
    TextTable table({"class", "delta", "LLFI share", "PINFI share",
                     "LLFI top site", "PINFI top site"});
    for (const AttributionEntry& e : cell.entries)
      table.add_row({e.opcode_class, fmt1(e.delta_points),
                     share_ci(e.llfi_crash), share_ci(e.pinfi_crash),
                     e.llfi_top_site, e.pinfi_top_site});
    os << table.to_string();
  }
  return os.str();
}

namespace {

/// Appends one cell-entry row; `prefix` holds any leading columns (the
/// per-model dump prepends the model name, the plain dump passes none).
void add_attribution_row(CsvWriter& csv, std::vector<std::string> prefix,
                         const CellAttribution& cell,
                         const AttributionEntry& e) {
  const Proportion::Interval lw = e.llfi_crash.wilson95();
  const Proportion::Interval pw = e.pinfi_crash.wilson95();
  std::vector<std::string> row = std::move(prefix);
  row.push_back(cell.app);
  row.push_back(ir::category_name(cell.category));
  row.push_back(e.opcode_class);
  row.push_back(fmt4(e.delta_points));
  row.push_back(std::to_string(e.llfi_crash.hits));
  row.push_back(std::to_string(e.llfi_crash.trials));
  row.push_back(fmt4(e.llfi_crash.percent()));
  row.push_back(fmt4(lw.lo * 100.0));
  row.push_back(fmt4(lw.hi * 100.0));
  row.push_back(std::to_string(e.pinfi_crash.hits));
  row.push_back(std::to_string(e.pinfi_crash.trials));
  row.push_back(fmt4(e.pinfi_crash.percent()));
  row.push_back(fmt4(pw.lo * 100.0));
  row.push_back(fmt4(pw.hi * 100.0));
  row.push_back(e.llfi_top_site);
  row.push_back(e.pinfi_top_site);
  csv.add_row(std::move(row));
}

constexpr const char* kAttributionColumns[] = {
    "app", "category", "class", "delta_points", "llfi_crash",
    "llfi_activated", "llfi_share_pct", "llfi_wilson_lo", "llfi_wilson_hi",
    "pinfi_crash", "pinfi_activated", "pinfi_share_pct", "pinfi_wilson_lo",
    "pinfi_wilson_hi", "llfi_top_site", "pinfi_top_site"};

}  // namespace

CsvWriter attribution_csv(const ResultSet& rs) {
  CsvWriter csv({std::begin(kAttributionColumns),
                 std::end(kAttributionColumns)});
  for (const CellAttribution& cell : attribute_crash_delta(rs)) {
    if (!cell.valid) continue;
    for (const AttributionEntry& e : cell.entries)
      add_attribution_row(csv, {}, cell, e);
  }
  return csv;
}

CsvWriter model_attribution_csv(
    const std::vector<std::pair<std::string, ResultSet>>& per_model) {
  std::vector<std::string> columns{"fault_model"};
  columns.insert(columns.end(), std::begin(kAttributionColumns),
                 std::end(kAttributionColumns));
  CsvWriter csv(std::move(columns));
  for (const auto& [model, rs] : per_model) {
    for (const CellAttribution& cell : attribute_crash_delta(rs)) {
      if (!cell.valid) continue;
      for (const AttributionEntry& e : cell.entries)
        add_attribution_row(csv, {model}, cell, e);
    }
  }
  return csv;
}

namespace {

/// Per-class propagation accumulator over one campaign's traced trials.
struct PropAgg {
  std::size_t traced = 0;
  std::size_t diverged = 0;
  std::size_t masked = 0;  ///< traced trials with >=1 masking event
  std::uint64_t depth_sum = 0;
  std::uint32_t depth_max = 0;
  std::uint64_t fanout_sum = 0;
  std::uint32_t fanout_max = 0;
  std::uint64_t tainted_reads = 0;
  std::uint64_t masking_events = 0;
  std::uint64_t store_load_edges = 0;
  std::uint64_t tainted_stores = 0;
  std::uint64_t tainted_branches = 0;
  std::uint32_t peak_values_max = 0;
  std::uint32_t peak_pages_max = 0;
  std::uint64_t divergence_offset_sum = 0;  ///< over diverged trials only
  std::uint64_t divergence_offset_max = 0;

  void add(const obs::PropSummary& p) {
    ++traced;
    depth_sum += p.depth;
    depth_max = std::max(depth_max, p.depth);
    fanout_sum += p.fanout;
    fanout_max = std::max(fanout_max, p.fanout);
    tainted_reads += p.tainted_reads;
    masking_events += p.masking_events;
    if (p.masking_events > 0) ++masked;
    store_load_edges += p.store_load_edges;
    tainted_stores += p.tainted_stores;
    tainted_branches += p.tainted_branches;
    peak_values_max = std::max(peak_values_max, p.peak_tainted_values);
    peak_pages_max = std::max(peak_pages_max, p.peak_tainted_pages);
    if (p.diverged) {
      ++diverged;
      divergence_offset_sum += p.divergence_offset;
      divergence_offset_max =
          std::max(divergence_offset_max, p.divergence_offset);
    }
  }
};

std::string mean_of(std::uint64_t sum, std::size_t n) {
  return n == 0 ? std::string("0.0000")
                : fmt4(static_cast<double>(sum) / static_cast<double>(n));
}

}  // namespace

CsvWriter propagation_attribution_csv(
    const std::vector<std::pair<std::string, ResultSet>>& per_model) {
  CsvWriter csv({"fault_model", "app", "category", "tool", "class",
                 "traced", "diverged", "diverged_pct", "masked",
                 "mean_depth", "max_depth", "mean_fanout", "max_fanout",
                 "tainted_reads", "masking_events", "store_load_edges",
                 "tainted_stores", "tainted_branches", "peak_values_max",
                 "peak_pages_max", "mean_divergence_offset",
                 "max_divergence_offset"});
  for (const auto& [model, rs] : per_model) {
    for (const CampaignResult& r : rs.all()) {
      // std::map keys the classes alphabetically — deterministic row order
      // independent of trial order within the campaign.
      std::map<std::string, PropAgg> by;
      for (const TrialRecord& t : r.trials) {
        if (!t.injected || !t.prop.traced) continue;
        by[opcode_class(t.site_opcode)].add(t.prop);
      }
      for (const auto& [cls, agg] : by) {
        const Proportion div{agg.diverged, agg.traced};
        csv.add_row({model, r.app, ir::category_name(r.category), r.tool,
                     cls, std::to_string(agg.traced),
                     std::to_string(agg.diverged), fmt4(div.percent()),
                     std::to_string(agg.masked),
                     mean_of(agg.depth_sum, agg.traced),
                     std::to_string(agg.depth_max),
                     mean_of(agg.fanout_sum, agg.traced),
                     std::to_string(agg.fanout_max),
                     std::to_string(agg.tainted_reads),
                     std::to_string(agg.masking_events),
                     std::to_string(agg.store_load_edges),
                     std::to_string(agg.tainted_stores),
                     std::to_string(agg.tainted_branches),
                     std::to_string(agg.peak_values_max),
                     std::to_string(agg.peak_pages_max),
                     mean_of(agg.divergence_offset_sum, agg.diverged),
                     std::to_string(agg.divergence_offset_max)});
      }
    }
  }
  return csv;
}

}  // namespace faultlab::fault
