// CheckpointPolicy: stride selection and environment overrides for the
// checkpoint/restore trial layer (see engine.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/engine.h"

namespace faultlab::fault {

namespace {

/// Parses a non-negative decimal env var; returns `fallback` (with a
/// one-line warning) on garbage, trailing junk, or overflow.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (errno == ERANGE || end == env || *end != '\0' || env[0] == '-') {
    std::fprintf(stderr,
                 "warning: %s='%s' is not a non-negative integer; ignoring\n",
                 name, env);
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

CheckpointMetrics& checkpoint_metrics() {
  static CheckpointMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::global();
    return CheckpointMetrics{
        registry.counter("checkpoint.snapshots"),
        registry.counter("checkpoint.restores"),
        registry.counter("checkpoint.restored_pages"),
        registry.counter("checkpoint.skipped_instructions"),
        registry.counter("checkpoint.delta_restores"),
        registry.counter("checkpoint.delta_pages"),
        registry.counter("checkpoint.evictions"),
        registry.histogram("checkpoint.dirty_pages"),
    };
  }();
  return metrics;
}

CheckpointPolicy CheckpointPolicy::from_env() {
  CheckpointPolicy policy;
  policy.enabled = env_u64("FAULTLAB_CHECKPOINTS", 1) != 0;
  policy.stride = env_u64("FAULTLAB_SNAPSHOT_STRIDE", 0);
  policy.budget_pages = env_u64("FAULTLAB_SNAPSHOT_BUDGET", 0);
  return policy;
}

std::uint64_t CheckpointPolicy::effective_stride(
    std::uint64_t golden_instructions) const {
  if (!enabled) return 0;
  if (stride != 0) return stride;
  return std::max<std::uint64_t>(golden_instructions / kAutoWindows,
                                 kMinStride);
}

}  // namespace faultlab::fault
