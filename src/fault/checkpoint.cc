// CheckpointPolicy: stride selection and environment overrides for the
// checkpoint/restore trial layer (see engine.h).
#include "fault/engine.h"
#include "support/env.h"

namespace faultlab::fault {

CheckpointMetrics& checkpoint_metrics() {
  static CheckpointMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::global();
    return CheckpointMetrics{
        registry.counter("checkpoint.snapshots"),
        registry.counter("checkpoint.restores"),
        registry.counter("checkpoint.restored_pages"),
        registry.counter("checkpoint.skipped_instructions"),
        registry.counter("checkpoint.delta_restores"),
        registry.counter("checkpoint.delta_pages"),
        registry.counter("checkpoint.evictions"),
        registry.histogram("checkpoint.dirty_pages"),
    };
  }();
  return metrics;
}

CheckpointPolicy CheckpointPolicy::from_env() {
  CheckpointPolicy policy;
  policy.enabled = support::parse_env_u64("FAULTLAB_CHECKPOINTS", 1) != 0;
  policy.stride = support::parse_env_u64("FAULTLAB_SNAPSHOT_STRIDE", 0);
  policy.budget_pages = support::parse_env_u64("FAULTLAB_SNAPSHOT_BUDGET", 0);
  return policy;
}

std::uint64_t CheckpointPolicy::effective_stride(
    std::uint64_t golden_instructions) const {
  if (!enabled) return 0;
  if (stride != 0) return stride;
  return std::max<std::uint64_t>(golden_instructions / kAutoWindows,
                                 kMinStride);
}

}  // namespace faultlab::fault
