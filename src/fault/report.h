// Report generation: renders campaign results in the shapes of the paper's
// evaluation artifacts (Figure 3, Table IV, Figure 4, Table V) plus CSV for
// downstream tooling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "support/csv.h"

namespace faultlab::fault {

/// A bag of campaign results across (app × tool × category).
class ResultSet {
 public:
  void add(CampaignResult result) { results_.push_back(std::move(result)); }
  const std::vector<CampaignResult>& all() const noexcept { return results_; }

  const CampaignResult* find(const std::string& app, const std::string& tool,
                             ir::Category category) const noexcept;

  std::vector<std::string> apps() const;  ///< in insertion order, unique

 private:
  std::vector<CampaignResult> results_;
};

/// Figure 3: aggregated crash/SDC/benign breakdown, 'all' category.
std::string render_figure3(const ResultSet& rs);
/// Table IV: dynamic instruction counts per category for both tools (each
/// non-'all' category also shown as a percentage of its tool's 'all').
std::string render_table4(const ResultSet& rs);
/// Figure 4 (a-e): SDC percentage with 95% CI per category.
std::string render_figure4(const ResultSet& rs);
/// Table V: crash percentage per category.
std::string render_table5(const ResultSet& rs);

/// Full machine-readable dump (one row per campaign).
CsvWriter results_csv(const ResultSet& rs);

}  // namespace faultlab::fault
