#include "fault/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#if defined(_WIN32)
#include <io.h>
#define FAULTLAB_ISATTY _isatty
#define FAULTLAB_FILENO _fileno
#else
#include <unistd.h>
#define FAULTLAB_ISATTY isatty
#define FAULTLAB_FILENO fileno
#endif

#include "machine/dispatch.h"
#include "machine/trap.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "support/env.h"
#include "support/stats.h"
#include "support/timer.h"

namespace faultlab::fault {

namespace {

std::string describe(const std::string& app, const std::string& tool,
                     ir::Category category, const std::exception_ptr& cause) {
  std::string what = "unknown exception";
  try {
    std::rethrow_exception(cause);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  std::string out = "campaign [";
  out += app;
  out += " / ";
  out += tool;
  out += " / ";
  out += ir::category_name(category);
  out += "] failed: ";
  out += what;
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// CI half-widths live in [0, 0.5]; three decimals would round a 0.0447
/// half-width into the 0.045 bucket, so they get one more digit.
std::string fmt_double4(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

/// FAULTLAB_THREADS: worker-count override for runs where the caller left
/// SchedulerOptions::threads at 0 (the A/B equivalence tests sweep this
/// across processes). Unset or unparsable (warned) means "no override".
std::size_t env_threads() {
  return static_cast<std::size_t>(
      support::parse_env_u64("FAULTLAB_THREADS", 0));
}

/// Whether stderr is an interactive terminal. When it is not (CI logs,
/// redirection to a file), the progress reporter falls back to plain
/// newline-terminated lines instead of in-place \r redraws, so captured
/// logs carry no ANSI control sequences.
bool stderr_is_tty() {
  static const bool tty = FAULTLAB_ISATTY(FAULTLAB_FILENO(stderr)) != 0;
  return tty;
}

/// Live counters shared by the workers and the progress reporter. All
/// relaxed: the heartbeat tolerates slightly stale reads.
struct ProgressCounters {
  std::atomic<std::size_t> outcomes[5] = {};  // indexed by fault::Outcome
  /// Per-worker busy time (microseconds actually spent inside trials),
  /// for the utilization gauges.
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_us;
  std::size_t workers = 0;

  void size_workers(std::size_t n) {
    workers = n;
    busy_us = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i)
      busy_us[i].store(0, std::memory_order_relaxed);
  }
};

/// How the monitor counts a fault::Outcome (obs is independent of the
/// fault layer, so the scheduler translates at the boundary).
obs::MonitorOutcome to_monitor_outcome(Outcome o) noexcept {
  switch (o) {
    case Outcome::Crash: return obs::MonitorOutcome::Crash;
    case Outcome::SDC: return obs::MonitorOutcome::SDC;
    case Outcome::Benign: return obs::MonitorOutcome::Benign;
    case Outcome::Hang: return obs::MonitorOutcome::Hang;
    case Outcome::NotActivated: break;
  }
  return obs::MonitorOutcome::NotActivated;
}

/// FAULTLAB_PROGRESS=1 stderr heartbeat: overall completion + ETA, running
/// outcome tallies, and per-worker utilization gauges. Always called under
/// the scheduler mutex (from finalize() and the workers' periodic ticks),
/// so the counters are read without tearing the line. On a TTY the line is
/// redrawn in place (\r...\033[K); otherwise each report is a plain
/// newline-terminated line. `rate` comes from the caller's sliding recent
/// window (the since-start average overestimates remaining time while the
/// checkpoint caches warm up); when the monitor is active its ETA model
/// and converged/watchdog tallies ride along.
void print_progress(std::size_t trials_done, std::size_t trials_total,
                    std::size_t campaigns_done, std::size_t campaigns_total,
                    double elapsed_seconds, const ProgressCounters& counters,
                    double rate, double eta,
                    const obs::MonitorSummary* msum) {
  const double pct =
      trials_total != 0
          ? 100.0 * static_cast<double>(trials_done) /
                static_cast<double>(trials_total)
          : 100.0;
  const auto tally = [&](Outcome o) {
    return counters.outcomes[static_cast<std::size_t>(o)].load(
        std::memory_order_relaxed);
  };
  // Utilization gauges: busy-time share of wall time, per worker (capped at
  // 8 gauges so the line stays readable on wide pools).
  std::string util;
  const std::size_t shown = std::min<std::size_t>(counters.workers, 8);
  for (std::size_t w = 0; w < shown; ++w) {
    const double busy =
        static_cast<double>(
            counters.busy_us[w].load(std::memory_order_relaxed)) /
        1e6;
    const double u =
        elapsed_seconds > 0.0
            ? std::min(100.0, 100.0 * busy / elapsed_seconds)
            : 0.0;
    if (!util.empty()) util += '|';
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.0f", u);
    util += buf;
  }
  if (shown < counters.workers) util += "|..";
  std::string conv;
  if (msum != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "  conv %zu/%zu  wd %llu",
                  msum->converged_cells, msum->cells,
                  static_cast<unsigned long long>(msum->watchdog_flags));
    conv = buf;
  }
  const bool tty = stderr_is_tty();
  std::fprintf(stderr,
               "%s[faultlab] %zu/%zu trials (%.1f%%)  %.1f trials/s  "
               "ETA %.1fs  [%zu/%zu campaigns]%s  "
               "crash %zu  sdc %zu  benign %zu  hang %zu  n/a %zu  "
               "util %s%%%s",
               tty ? "\r" : "", trials_done, trials_total, pct, rate, eta,
               campaigns_done, campaigns_total, conv.c_str(),
               tally(Outcome::Crash), tally(Outcome::SDC),
               tally(Outcome::Benign), tally(Outcome::Hang),
               tally(Outcome::NotActivated), util.c_str(),
               tty ? "\033[K" : "\n");
  if (tty && campaigns_done == campaigns_total) std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace

CampaignError::CampaignError(std::string app, std::string tool,
                             ir::Category category, std::exception_ptr cause)
    : std::runtime_error(describe(app, tool, category, cause)),
      app_(std::move(app)),
      tool_(std::move(tool)),
      category_(category),
      cause_(std::move(cause)) {}

CampaignScheduler::CampaignScheduler(SchedulerOptions options)
    : options_(std::move(options)) {}

void CampaignScheduler::add(InjectorEngine& engine, CampaignConfig config) {
  entries_.push_back({&engine, std::move(config)});
}

std::vector<CampaignResult> CampaignScheduler::run() {
  struct Draw {
    std::uint64_t k;
    Rng trial_rng;
  };
  struct Campaign {
    Entry* entry = nullptr;
    std::vector<Draw> draws;
    /// Execution-order permutation: draw indices stable-sorted by k, so
    /// consecutive trials resume from the same checkpoint window and the
    /// engine's snapshot pages stay warm. Purely an execution-order
    /// reshuffle — draws are still generated sequentially from the seed and
    /// each record lands back at its draw index, so CSV output is
    /// byte-identical to the unsorted order at any thread count.
    std::vector<std::size_t> order;
    std::vector<TrialRecord> records;
    /// Per-trial wall time in milliseconds, written by the executing worker
    /// into the trial's own slot (no contention); finalize() sorts a copy
    /// for the manifest's exact latency percentiles.
    std::vector<double> latency_ms;
    CampaignResult result;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> started{false};
    WallTimer timer;  // reset when the first trial is dispatched
    bool finalized = false;
  };

  WallTimer run_timer;
  // Event shards must reach disk on *every* exit path out of run() — the
  // happy path flushes explicitly below, but an exception unwinding out of
  // profiling (an engine failure inside profile_all) or a CampaignError
  // re-thrown after the pool joins would otherwise drop whole shard
  // buffers of trials that did finish. flush() is idempotent, so the
  // guard's second flush on the happy path is a no-op.
  struct EventFlushGuard {
    ~EventFlushGuard() {
      if (obs::EventLog::global().enabled()) obs::EventLog::global().flush();
    }
  } event_flush_guard;
  manifest_ = RunManifest{};
  manifest_.model = options_.model;
  manifest_.dispatch_mode =
      machine::dispatch_mode_name(machine::dispatch_mode());
  manifest_.lanes = machine::lane_count();
  const machine::DispatchCountersSnapshot dispatch_before =
      machine::dispatch_counters_snapshot();
  const machine::PackCountersSnapshot pack_before =
      machine::pack_counters_snapshot();

  // Phase 1 — profiling: one single-pass instrumented golden run per
  // distinct engine covers every category it appears with.
  WallTimer profile_timer;
  std::vector<std::pair<InjectorEngine*, CategoryCounts>> profiles;
  for (const Entry& entry : entries_) {
    const auto known = std::find_if(
        profiles.begin(), profiles.end(),
        [&](const auto& p) { return p.first == entry.engine; });
    if (known == profiles.end())
      profiles.emplace_back(entry.engine, entry.engine->profile_all());
  }
  manifest_.profile_seconds = profile_timer.seconds();

  // Phase 2 — draws: generated sequentially per campaign from its seed, so
  // the trial stream is independent of worker count and scheduling order.
  std::deque<Campaign> campaigns;
  std::size_t total = 0;
  for (Entry& entry : entries_) {
    Campaign& c = campaigns.emplace_back();
    c.entry = &entry;
    const CategoryCounts& counts =
        std::find_if(profiles.begin(), profiles.end(),
                     [&](const auto& p) { return p.first == entry.engine; })
            ->second;
    c.result.app = entry.config.app;
    c.result.tool = entry.engine->tool_name();
    c.result.category = entry.config.category;
    c.result.fault_model = entry.engine->fault_model().name();
    c.result.profiled_count = counts[entry.config.category];
    if (c.result.profiled_count > 0 && entry.config.trials > 0) {
      Rng rng(entry.config.seed ^
              (static_cast<std::uint64_t>(entry.config.category) << 32));
      c.draws.reserve(entry.config.trials);
      for (std::size_t t = 0; t < entry.config.trials; ++t) {
        const std::uint64_t k = rng.range(1, c.result.profiled_count);
        c.draws.push_back({k, rng.fork()});
      }
      c.order.resize(entry.config.trials);
      for (std::size_t t = 0; t < entry.config.trials; ++t) c.order[t] = t;
      std::stable_sort(c.order.begin(), c.order.end(),
                       [&c](std::size_t a, std::size_t b) {
                         return c.draws[a].k < c.draws[b].k;
                       });
      c.records.resize(entry.config.trials);
      c.latency_ms.resize(entry.config.trials, 0.0);
      c.remaining.store(entry.config.trials, std::memory_order_relaxed);
      total += entry.config.trials;
    }
  }
  manifest_.campaigns.resize(campaigns.size());

  // Chunking: consecutive k-sorted trials that resume from the same
  // checkpoint window form one unit of work, so the worker that claims a
  // chunk keeps one snapshot resident and resets via the delta path between
  // its trials. Chunks are capped so a single hot window cannot serialize
  // the pool; splitting a window only costs one full restore per extra
  // chunk. Purely an execution grouping — never affects results.
  struct Chunk {
    std::size_t campaign;
    std::size_t begin;  // positions in the campaign's `order` permutation
    std::size_t end;
  };
  constexpr std::size_t kMaxChunk = 64;
  std::vector<Chunk> chunks;
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const Campaign& c = campaigns[i];
    if (c.order.empty()) continue;
    const InjectorEngine& engine = *c.entry->engine;
    const ir::Category category = c.entry->config.category;
    std::size_t begin = 0;
    std::uint64_t window = engine.window_of(category, c.draws[c.order[0]].k);
    for (std::size_t p = 1; p < c.order.size(); ++p) {
      const std::uint64_t w = engine.window_of(category, c.draws[c.order[p]].k);
      if (w != window || p - begin >= kMaxChunk) {
        chunks.push_back({i, begin, p});
        begin = p;
        window = w;
      }
    }
    chunks.push_back({i, begin, c.order.size()});
  }

  // Phase 3 — trials: one shared queue of window chunks over all
  // campaigns; idle workers steal the next undone chunk regardless of
  // which campaign it belongs to.
  std::mutex mutex;  // guards finalization, progress, and error capture
  std::exception_ptr first_error;
  std::size_t error_campaign = 0;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> trials_done{0};
  std::size_t campaigns_done = 0;

  const bool progress_line = obs::progress_enabled();
  // Gate on the global log's open state rather than the cached env bool:
  // identical for FAULTLAB_EVENTS users (global() opens from the env on
  // first use), but lets bench_perf toggle the recorder programmatically
  // to measure its overhead in one process.
  const bool events_on = obs::EventLog::global().enabled();
  ProgressCounters progress_counters;
  std::size_t workers = options_.threads != 0 ? options_.threads
                                              : env_threads();
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(chunks.size(), 1));
  progress_counters.size_workers(workers);

  // Campaign monitor: forced on by SchedulerOptions::monitor, otherwise
  // spun up when the environment configures a status path or the progress
  // heartbeat wants convergence data. Purely observational — it never
  // influences scheduling, so results stay byte-identical with it on or
  // off (the StatusEquiv fixtures enforce this).
  const obs::MonitorOptions monitor_options =
      options_.monitor ? *options_.monitor : obs::MonitorOptions::from_env();
  manifest_.ci_target = monitor_options.ci_target;
  std::unique_ptr<obs::CampaignMonitor> monitor;
  if (options_.monitor.has_value() || !monitor_options.status_path.empty() ||
      progress_line) {
    monitor =
        std::make_unique<obs::CampaignMonitor>(monitor_options, workers);
    for (const Campaign& c : campaigns)
      monitor->add_cell(c.result.app, c.result.tool,
                        ir::category_name(c.result.category),
                        c.result.fault_model, c.draws.size());
    std::vector<InjectorEngine*> engines;
    engines.reserve(profiles.size());
    for (const auto& p : profiles) engines.push_back(p.first);
    const std::string dispatch_mode = manifest_.dispatch_mode;
    monitor->set_aux_source([engines, dispatch_before, dispatch_mode] {
      obs::MonitorAux aux;
      for (InjectorEngine* engine : engines) {
        const PhaseStats phases = engine->phase_stats();
        aux.restore_seconds += phases.restore_seconds;
        aux.execute_seconds += phases.execute_seconds;
        aux.classify_seconds += phases.classify_seconds;
        const CheckpointStats ck = engine->checkpoint_stats();
        aux.checkpoint_snapshots += ck.snapshots;
        aux.checkpoint_restores += ck.restored_trials;
        aux.delta_restores += ck.delta_restores;
        aux.snapshot_evictions += ck.evictions;
      }
      const machine::DispatchCountersSnapshot now =
          machine::dispatch_counters_snapshot();
      aux.trace_decodes = now.trace_decodes - dispatch_before.trace_decodes;
      aux.trace_hits = now.trace_hits - dispatch_before.trace_hits;
      aux.trace_invalidations =
          now.trace_invalidations - dispatch_before.trace_invalidations;
      aux.dispatch_mode = dispatch_mode;
      return aux;
    });
    monitor->start();
  }

  // Heartbeat rate/ETA over a sliding recent window: with checkpoint
  // warm-up the since-start average undercounts the steady-state rate and
  // overestimates remaining time early in a run. Called under the
  // scheduler mutex.
  obs::RateWindow heartbeat_rate;
  auto emit_progress = [&](std::size_t done, std::size_t campaigns_done_now) {
    const double elapsed = run_timer.seconds();
    heartbeat_rate.sample(elapsed, done);
    const double rate = heartbeat_rate.rate();
    double eta =
        rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
    obs::MonitorSummary msum;
    if (monitor) {
      msum = monitor->summary();
      // The monitor's model folds in the engines' phase split early on;
      // prefer it while it has a signal.
      if (msum.eta_seconds > 0.0) eta = msum.eta_seconds;
    }
    print_progress(done, total, campaigns_done_now, campaigns.size(),
                   elapsed, progress_counters, rate, eta,
                   monitor ? &msum : nullptr);
  };

  auto finalize = [&](std::size_t index) {
    // Called with all of the campaign's records written; aggregation walks
    // them in trial order, so counters are thread-count independent.
    Campaign& c = campaigns[index];
    std::size_t restored = 0;
    std::size_t delta_restores = 0;
    std::uint64_t restored_pages = 0;
    for (const TrialRecord& record : c.records) {
      if (record.injected) ++c.result.injected_trials;
      if (record.restored) {
        ++restored;
        restored_pages += record.restored_pages;
      }
      if (record.delta_restored) ++delta_restores;
      switch (record.outcome) {
        case Outcome::Crash: ++c.result.crash; break;
        case Outcome::SDC: ++c.result.sdc; break;
        case Outcome::Benign: ++c.result.benign; break;
        case Outcome::Hang: ++c.result.hang; break;
        case Outcome::NotActivated: ++c.result.not_activated; break;
      }
    }
    c.result.trials = std::move(c.records);
    c.result.wall_seconds = c.started.load(std::memory_order_relaxed)
                                ? c.timer.seconds()
                                : 0.0;
    c.finalized = true;

    CampaignTiming& timing = manifest_.campaigns[index];
    timing.app = c.result.app;
    timing.tool = c.result.tool;
    timing.category = c.result.category;
    timing.fault_model = c.result.fault_model;
    timing.seed = c.entry->config.seed;
    timing.profiled_count = c.result.profiled_count;
    timing.trials = c.result.trials.size();
    timing.injected = c.result.injected_trials;
    timing.activated = c.result.activated();
    timing.crash = c.result.crash;
    timing.sdc = c.result.sdc;
    timing.benign = c.result.benign;
    timing.hang = c.result.hang;
    timing.not_activated = c.result.not_activated;
    timing.restored = restored;
    timing.delta_restores = delta_restores;
    timing.mean_restored_pages =
        restored != 0 ? static_cast<double>(restored_pages) /
                            static_cast<double>(restored)
                      : 0.0;
    timing.wall_seconds = c.result.wall_seconds;
    if (!c.latency_ms.empty()) {
      std::sort(c.latency_ms.begin(), c.latency_ms.end());
      timing.p50_ms = obs::percentile_sorted(c.latency_ms, 50.0);
      timing.p95_ms = obs::percentile_sorted(c.latency_ms, 95.0);
      timing.p99_ms = obs::percentile_sorted(c.latency_ms, 99.0);
    }
    // Convergence verdict from the final tallies — deliberately not read
    // from the monitor, so the manifest carries the same values whether or
    // not it ran.
    const Proportion crash_share{timing.crash, timing.activated};
    const Proportion::Interval ci = crash_share.wilson95();
    timing.ci_halfwidth = (ci.hi - ci.lo) / 2.0;
    timing.converged =
        timing.activated > 0 && timing.ci_halfwidth <= manifest_.ci_target;
    if (monitor)
      timing.watchdog_flags = monitor->cell_status(index).watchdog_flags;

    ++campaigns_done;
    if (progress_line)
      emit_progress(trials_done.load(std::memory_order_relaxed),
                    campaigns_done);
    if (options_.progress) {
      SchedulerProgress p;
      p.campaigns_total = campaigns.size();
      p.campaigns_done = campaigns_done;
      p.trials_total = total;
      p.trials_done = trials_done.load(std::memory_order_relaxed);
      p.completed = &c.result;
      options_.progress(p);
    }
  };

  {
    // Campaigns with nothing to run (zero targets or zero trials) complete
    // immediately.
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < campaigns.size(); ++i)
      if (campaigns[i].records.empty()) finalize(i);
  }

  auto work = [&](std::size_t worker) {
    obs::Tracer& tracer = obs::Tracer::global();
    std::uint64_t seq = 0;  // per-worker monotonic event number
    // This worker's resident execution contexts, one per engine it has run
    // trials for. A context's address space survives across trials, which
    // is what keeps same-window resets on the delta path; engines without
    // contexts get a cached nullptr (inject_in then falls back to a
    // per-trial run). The engine list is tiny, so linear scan beats a map.
    std::vector<std::pair<InjectorEngine*, std::unique_ptr<TrialContext>>>
        contexts;
    const auto context_for = [&contexts](InjectorEngine* engine) {
      for (auto& [known, context] : contexts)
        if (known == engine) return context.get();
      contexts.emplace_back(engine, engine->make_context());
      return contexts.back().second.get();
    };
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t which = next.fetch_add(1, std::memory_order_relaxed);
      if (which >= chunks.size()) return;
      const Chunk& chunk = chunks[which];
      const std::size_t index = chunk.campaign;
      Campaign& c = campaigns[index];
      if (!c.started.exchange(true, std::memory_order_relaxed))
        c.timer.reset();
      TrialContext* context = context_for(c.entry->engine);
      // Lane grouping: consecutive k-sorted trials of this chunk share a
      // checkpoint window, so up to lane_count() of them can run as one
      // lockstep group through inject_group(). gn == 1 (FAULTLAB_LANES=1,
      // a chunk tail, or an engine without contexts) takes the exact
      // pre-lanes per-trial path. Purely an execution grouping: each
      // trial draws only from its own rng, so records are byte-identical
      // at any lane count.
      const std::size_t lane_cap =
          context != nullptr ? machine::lane_count() : 1;
      std::size_t p = chunk.begin;
      while (p < chunk.end) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t gn = std::min(lane_cap, chunk.end - p);
        if (gn > 1) {
          try {
            if (monitor) monitor->begin_group(worker, index, gn);
            InjectorEngine::GroupTrial group[machine::kMaxLanes];
            for (std::size_t j = 0; j < gn; ++j) {
              const std::size_t trial = c.order[p + j];
              group[j] = {c.draws[trial].k, &c.draws[trial].trial_rng,
                          &c.records[trial]};
            }
            double group_ms = 0.0;
            {
              WallTimer group_timer;
              obs::ScopedSpan span(tracer, "trial_group", "scheduler");
              c.entry->engine->inject_group(
                  context, c.entry->config.category, group, gn);
              group_ms = group_timer.seconds() * 1000.0;
              if (span.active()) {
                span.tag("app", c.result.app);
                span.tag("tool", c.result.tool);
                span.tag("category", ir::category_name(c.result.category));
                span.tag("lanes", static_cast<std::uint64_t>(gn));
                span.tag("checkpoint",
                         c.records[c.order[p]].restored ? "hit" : "miss");
              }
            }
            // The group's wall time is shared work: split it evenly so
            // the manifest latency percentiles stay comparable to
            // lanes=1.
            const double per_ms = group_ms / static_cast<double>(gn);
            for (std::size_t j = 0; j < gn; ++j) {
              const std::size_t trial = c.order[p + j];
              const TrialRecord& record = c.records[trial];
              c.latency_ms[trial] = per_ms;
              if (monitor)
                monitor->record(worker, index,
                                to_monitor_outcome(record.outcome), per_ms);
              if (events_on) {
                obs::TrialEvent ev;
                ev.app = c.result.app.c_str();
                ev.tool = c.result.tool.c_str();
                ev.category = ir::category_name(c.result.category);
                ev.fault_model = c.result.fault_model.c_str();
                ev.worker = static_cast<std::uint32_t>(worker);
                ev.seq = seq++;
                ev.trial = trial;
                ev.k = c.draws[trial].k;
                ev.bit = record.bit;
                ev.static_site = record.static_site;
                ev.opcode = record.site_opcode;
                ev.function = record.site_function;
                ev.injected = record.injected;
                ev.activated = record.injected &&
                               record.outcome != Outcome::NotActivated;
                ev.outcome = outcome_name(record.outcome);
                if (record.outcome == Outcome::Crash) {
                  ev.trap = machine::trap_kind_name(record.trap);
                  ev.trap_pc = record.trap_pc;
                }
                ev.inject_instruction = record.inject_instruction;
                ev.instructions_total = record.total_instructions;
                ev.instructions_after_injection =
                    record.instructions_after_injection();
                ev.checkpoint_hit = record.restored;
                ev.latency_ms = per_ms;
                if (record.prop.traced) ev.prop = &record.prop;
                obs::EventLog::global().append(ev);
              }
              if (progress_line) {
                progress_counters
                    .outcomes[static_cast<std::size_t>(record.outcome)]
                    .fetch_add(1, std::memory_order_relaxed);
                progress_counters.busy_us[worker].fetch_add(
                    static_cast<std::uint64_t>(per_ms * 1000.0),
                    std::memory_order_relaxed);
              }
            }
            const std::size_t done =
                trials_done.fetch_add(gn, std::memory_order_relaxed) + gn;
            if (c.remaining.fetch_sub(gn, std::memory_order_acq_rel) == gn) {
              std::lock_guard<std::mutex> lock(mutex);
              finalize(index);
            } else if (progress_line && done % 64 < gn) {
              std::lock_guard<std::mutex> lock(mutex);
              emit_progress(done, campaigns_done);
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (first_error == nullptr) {
              first_error = std::current_exception();
              error_campaign = index;
            }
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          p += gn;
          continue;
        }
        const std::size_t trial = c.order[p];
        try {
          if (monitor) monitor->begin_trial(worker, index);
          {
            WallTimer trial_timer;
            obs::ScopedSpan span(tracer, "trial", "scheduler");
            c.records[trial] = c.entry->engine->inject_in(
                context, c.entry->config.category, c.draws[trial].k,
                c.draws[trial].trial_rng);
            c.latency_ms[trial] = trial_timer.seconds() * 1000.0;
            if (span.active()) {
              const TrialRecord& record = c.records[trial];
              span.tag("app", c.result.app);
              span.tag("tool", c.result.tool);
              span.tag("category", ir::category_name(c.result.category));
              span.tag("k", c.draws[trial].k);
              span.tag("checkpoint", record.restored ? "hit" : "miss");
              span.tag("outcome", outcome_name(record.outcome));
            }
          }
          const TrialRecord& record = c.records[trial];
          if (monitor)
            monitor->record(worker, index, to_monitor_outcome(record.outcome),
                            c.latency_ms[trial]);
          if (events_on) {
            obs::TrialEvent ev;
            ev.app = c.result.app.c_str();
            ev.tool = c.result.tool.c_str();
            ev.category = ir::category_name(c.result.category);
            ev.fault_model = c.result.fault_model.c_str();
            ev.worker = static_cast<std::uint32_t>(worker);
            ev.seq = seq++;
            ev.trial = trial;
            ev.k = c.draws[trial].k;
            ev.bit = record.bit;
            ev.static_site = record.static_site;
            ev.opcode = record.site_opcode;
            ev.function = record.site_function;
            ev.injected = record.injected;
            ev.activated =
                record.injected && record.outcome != Outcome::NotActivated;
            ev.outcome = outcome_name(record.outcome);
            if (record.outcome == Outcome::Crash) {
              ev.trap = machine::trap_kind_name(record.trap);
              ev.trap_pc = record.trap_pc;
            }
            ev.inject_instruction = record.inject_instruction;
            ev.instructions_total = record.total_instructions;
            ev.instructions_after_injection =
                record.instructions_after_injection();
            ev.checkpoint_hit = record.restored;
            ev.latency_ms = c.latency_ms[trial];
            if (record.prop.traced) ev.prop = &record.prop;
            obs::EventLog::global().append(ev);
          }
          const std::size_t done =
              trials_done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_line) {
            progress_counters
                .outcomes[static_cast<std::size_t>(record.outcome)]
                .fetch_add(1, std::memory_order_relaxed);
            progress_counters.busy_us[worker].fetch_add(
                static_cast<std::uint64_t>(c.latency_ms[trial] * 1000.0),
                std::memory_order_relaxed);
          }
          if (c.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex);
            finalize(index);
          } else if (progress_line && done % 64 == 0) {
            // Heartbeat between campaign completions, so long campaigns
            // still tick.
            std::lock_guard<std::mutex> lock(mutex);
            emit_progress(done, campaigns_done);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
            error_campaign = index;
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        ++p;
      }
    }
  };

  if (total > 0) {
    if (workers <= 1) {
      work(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work, w);
      for (std::thread& th : pool) th.join();
    }
  }
  // Final quiescent snapshot (marked "final": its cross-field invariants
  // hold exactly) + ticker shutdown before the manifest is sealed.
  if (monitor) monitor->finish();
  manifest_.threads = workers;
  manifest_.wall_seconds = run_timer.seconds();
  const machine::DispatchCountersSnapshot dispatch_after =
      machine::dispatch_counters_snapshot();
  manifest_.trace_decodes =
      dispatch_after.trace_decodes - dispatch_before.trace_decodes;
  manifest_.trace_hits =
      dispatch_after.trace_hits - dispatch_before.trace_hits;
  manifest_.trace_invalidations = dispatch_after.trace_invalidations -
                                  dispatch_before.trace_invalidations;
  manifest_.decoded_blocks = dispatch_after.decoded_blocks;
  const machine::PackCountersSnapshot pack_after =
      machine::pack_counters_snapshot();
  manifest_.pack_groups = pack_after.groups - pack_before.groups;
  manifest_.pack_lanes = pack_after.lanes - pack_before.lanes;
  manifest_.pack_uops = pack_after.uops - pack_before.uops;
  manifest_.pack_lane_uops = pack_after.lane_uops - pack_before.lane_uops;
  manifest_.pack_divergences =
      pack_after.divergences - pack_before.divergences;

  // Persist spans/metrics/events now rather than only at exit, so
  // long-lived processes (benches running several grids) leave a trace per
  // grid and a failed run still ships what it captured.
  machine::publish_dispatch_metrics();
  if (obs::Tracer::global().enabled() || obs::metrics_enabled())
    obs::flush_observability();
  if (events_on) obs::EventLog::global().flush();

  if (first_error != nullptr) {
    const Campaign& c = campaigns[error_campaign];
    throw CampaignError(c.result.app, c.result.tool, c.result.category,
                        first_error);
  }

  std::vector<CampaignResult> out;
  out.reserve(campaigns.size());
  for (Campaign& c : campaigns) out.push_back(std::move(c.result));
  entries_.clear();
  return out;
}

CsvWriter manifest_csv(const RunManifest& manifest) {
  CsvWriter csv({"app", "tool", "category", "fault_model", "seed", "trials",
                 "profiled_count", "injected", "activated", "crash", "sdc",
                 "benign", "hang", "not_activated", "restored",
                 "checkpoint_hit_rate", "delta_restores",
                 "mean_restored_pages", "wall_seconds", "trials_per_second",
                 "p50_ms", "p95_ms", "p99_ms", "threads", "profile_seconds",
                 "total_wall_seconds", "pinfi_flag_heuristic",
                 "pinfi_xmm_prune", "llfi_type_width",
                 "llfi_gep_as_arithmetic", "dispatch_mode", "trace_decodes",
                 "trace_hits", "trace_invalidations", "decoded_blocks",
                 "converged", "ci_halfwidth", "watchdog_flags",
                 "ci_target", "lanes", "pack_groups", "pack_lanes",
                 "pack_uops", "pack_lane_uops", "pack_divergences",
                 "mean_pack_lanes"});
  for (const CampaignTiming& t : manifest.campaigns) {
    csv.add_row({t.app, t.tool, ir::category_name(t.category), t.fault_model,
                 std::to_string(t.seed), std::to_string(t.trials),
                 std::to_string(t.profiled_count), std::to_string(t.injected),
                 std::to_string(t.activated), std::to_string(t.crash),
                 std::to_string(t.sdc), std::to_string(t.benign),
                 std::to_string(t.hang), std::to_string(t.not_activated),
                 std::to_string(t.restored), fmt_double(t.hit_rate()),
                 std::to_string(t.delta_restores),
                 fmt_double(t.mean_restored_pages),
                 fmt_double(t.wall_seconds),
                 fmt_double(t.trials_per_second()), fmt_double(t.p50_ms),
                 fmt_double(t.p95_ms), fmt_double(t.p99_ms),
                 std::to_string(manifest.threads),
                 fmt_double(manifest.profile_seconds),
                 fmt_double(manifest.wall_seconds),
                 std::to_string(manifest.model.pinfi_flag_heuristic ? 1 : 0),
                 std::to_string(manifest.model.pinfi_xmm_prune ? 1 : 0),
                 std::to_string(manifest.model.llfi_type_width ? 1 : 0),
                 std::to_string(
                     manifest.model.llfi_gep_as_arithmetic ? 1 : 0),
                 manifest.dispatch_mode,
                 std::to_string(manifest.trace_decodes),
                 std::to_string(manifest.trace_hits),
                 std::to_string(manifest.trace_invalidations),
                 std::to_string(manifest.decoded_blocks),
                 std::to_string(t.converged ? 1 : 0),
                 fmt_double4(t.ci_halfwidth),
                 std::to_string(t.watchdog_flags),
                 fmt_double4(manifest.ci_target),
                 std::to_string(manifest.lanes),
                 std::to_string(manifest.pack_groups),
                 std::to_string(manifest.pack_lanes),
                 std::to_string(manifest.pack_uops),
                 std::to_string(manifest.pack_lane_uops),
                 std::to_string(manifest.pack_divergences),
                 fmt_double(manifest.mean_pack_lanes())});
  }
  return csv;
}

}  // namespace faultlab::fault
