#include "fault/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "support/timer.h"

namespace faultlab::fault {

namespace {

std::string describe(const std::string& app, const std::string& tool,
                     ir::Category category, const std::exception_ptr& cause) {
  std::string what = "unknown exception";
  try {
    std::rethrow_exception(cause);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  std::string out = "campaign [";
  out += app;
  out += " / ";
  out += tool;
  out += " / ";
  out += ir::category_name(category);
  out += "] failed: ";
  out += what;
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

CampaignError::CampaignError(std::string app, std::string tool,
                             ir::Category category, std::exception_ptr cause)
    : std::runtime_error(describe(app, tool, category, cause)),
      app_(std::move(app)),
      tool_(std::move(tool)),
      category_(category),
      cause_(std::move(cause)) {}

CampaignScheduler::CampaignScheduler(SchedulerOptions options)
    : options_(std::move(options)) {}

void CampaignScheduler::add(InjectorEngine& engine, CampaignConfig config) {
  entries_.push_back({&engine, std::move(config)});
}

std::vector<CampaignResult> CampaignScheduler::run() {
  struct Draw {
    std::uint64_t k;
    Rng trial_rng;
  };
  struct Campaign {
    Entry* entry = nullptr;
    std::vector<Draw> draws;
    /// Execution-order permutation: draw indices stable-sorted by k, so
    /// consecutive trials resume from the same checkpoint window and the
    /// engine's snapshot pages stay warm. Purely an execution-order
    /// reshuffle — draws are still generated sequentially from the seed and
    /// each record lands back at its draw index, so CSV output is
    /// byte-identical to the unsorted order at any thread count.
    std::vector<std::size_t> order;
    std::vector<TrialRecord> records;
    CampaignResult result;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> started{false};
    WallTimer timer;  // reset when the first trial is dispatched
    bool finalized = false;
  };

  WallTimer run_timer;
  manifest_ = RunManifest{};
  manifest_.model = options_.model;

  // Phase 1 — profiling: one single-pass instrumented golden run per
  // distinct engine covers every category it appears with.
  WallTimer profile_timer;
  std::vector<std::pair<InjectorEngine*, CategoryCounts>> profiles;
  for (const Entry& entry : entries_) {
    const auto known = std::find_if(
        profiles.begin(), profiles.end(),
        [&](const auto& p) { return p.first == entry.engine; });
    if (known == profiles.end())
      profiles.emplace_back(entry.engine, entry.engine->profile_all());
  }
  manifest_.profile_seconds = profile_timer.seconds();

  // Phase 2 — draws: generated sequentially per campaign from its seed, so
  // the trial stream is independent of worker count and scheduling order.
  std::deque<Campaign> campaigns;
  std::vector<std::size_t> ends;  // cumulative trial count, per campaign
  std::size_t total = 0;
  for (Entry& entry : entries_) {
    Campaign& c = campaigns.emplace_back();
    c.entry = &entry;
    const CategoryCounts& counts =
        std::find_if(profiles.begin(), profiles.end(),
                     [&](const auto& p) { return p.first == entry.engine; })
            ->second;
    c.result.app = entry.config.app;
    c.result.tool = entry.engine->tool_name();
    c.result.category = entry.config.category;
    c.result.profiled_count = counts[entry.config.category];
    if (c.result.profiled_count > 0 && entry.config.trials > 0) {
      Rng rng(entry.config.seed ^
              (static_cast<std::uint64_t>(entry.config.category) << 32));
      c.draws.reserve(entry.config.trials);
      for (std::size_t t = 0; t < entry.config.trials; ++t) {
        const std::uint64_t k = rng.range(1, c.result.profiled_count);
        c.draws.push_back({k, rng.fork()});
      }
      c.order.resize(entry.config.trials);
      for (std::size_t t = 0; t < entry.config.trials; ++t) c.order[t] = t;
      std::stable_sort(c.order.begin(), c.order.end(),
                       [&c](std::size_t a, std::size_t b) {
                         return c.draws[a].k < c.draws[b].k;
                       });
      c.records.resize(entry.config.trials);
      c.remaining.store(entry.config.trials, std::memory_order_relaxed);
      total += entry.config.trials;
    }
    ends.push_back(total);
  }
  manifest_.campaigns.resize(campaigns.size());

  // Phase 3 — trials: one shared queue over all campaigns; workers steal
  // the next undone trial regardless of which campaign it belongs to.
  std::mutex mutex;  // guards finalization, progress, and error capture
  std::exception_ptr first_error;
  std::size_t error_campaign = 0;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> trials_done{0};
  std::size_t campaigns_done = 0;

  auto finalize = [&](std::size_t index) {
    // Called with all of the campaign's records written; aggregation walks
    // them in trial order, so counters are thread-count independent.
    Campaign& c = campaigns[index];
    for (const TrialRecord& record : c.records) {
      if (record.injected) ++c.result.injected_trials;
      switch (record.outcome) {
        case Outcome::Crash: ++c.result.crash; break;
        case Outcome::SDC: ++c.result.sdc; break;
        case Outcome::Benign: ++c.result.benign; break;
        case Outcome::Hang: ++c.result.hang; break;
        case Outcome::NotActivated: ++c.result.not_activated; break;
      }
    }
    c.result.trials = std::move(c.records);
    c.result.wall_seconds = c.started.load(std::memory_order_relaxed)
                                ? c.timer.seconds()
                                : 0.0;
    c.finalized = true;

    CampaignTiming& timing = manifest_.campaigns[index];
    timing.app = c.result.app;
    timing.tool = c.result.tool;
    timing.category = c.result.category;
    timing.seed = c.entry->config.seed;
    timing.profiled_count = c.result.profiled_count;
    timing.trials = c.result.trials.size();
    timing.injected = c.result.injected_trials;
    timing.activated = c.result.activated();
    timing.wall_seconds = c.result.wall_seconds;

    ++campaigns_done;
    if (options_.progress) {
      SchedulerProgress p;
      p.campaigns_total = campaigns.size();
      p.campaigns_done = campaigns_done;
      p.trials_total = total;
      p.trials_done = trials_done.load(std::memory_order_relaxed);
      p.completed = &c.result;
      options_.progress(p);
    }
  };

  {
    // Campaigns with nothing to run (zero targets or zero trials) complete
    // immediately.
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < campaigns.size(); ++i)
      if (campaigns[i].records.empty()) finalize(i);
  }

  auto work = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= total) return;
      const std::size_t index = static_cast<std::size_t>(
          std::upper_bound(ends.begin(), ends.end(), t) - ends.begin());
      Campaign& c = campaigns[index];
      const std::size_t base = index == 0 ? 0 : ends[index - 1];
      const std::size_t trial = c.order[t - base];
      try {
        if (!c.started.exchange(true, std::memory_order_relaxed))
          c.timer.reset();
        c.records[trial] = c.entry->engine->inject(
            c.entry->config.category, c.draws[trial].k,
            c.draws[trial].trial_rng);
        trials_done.fetch_add(1, std::memory_order_relaxed);
        if (c.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(mutex);
          finalize(index);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (first_error == nullptr) {
          first_error = std::current_exception();
          error_campaign = index;
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::size_t workers =
      options_.threads != 0
          ? options_.threads
          : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(total, 1));
  if (total > 0) {
    if (workers <= 1) {
      work();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
      for (std::thread& th : pool) th.join();
    }
  }
  manifest_.threads = workers;
  manifest_.wall_seconds = run_timer.seconds();

  if (first_error != nullptr) {
    const Campaign& c = campaigns[error_campaign];
    throw CampaignError(c.result.app, c.result.tool, c.result.category,
                        first_error);
  }

  std::vector<CampaignResult> out;
  out.reserve(campaigns.size());
  for (Campaign& c : campaigns) out.push_back(std::move(c.result));
  entries_.clear();
  return out;
}

CsvWriter manifest_csv(const RunManifest& manifest) {
  CsvWriter csv({"app", "tool", "category", "seed", "trials",
                 "profiled_count", "injected", "activated", "wall_seconds",
                 "trials_per_second", "threads", "profile_seconds",
                 "total_wall_seconds", "pinfi_flag_heuristic",
                 "pinfi_xmm_prune", "llfi_type_width",
                 "llfi_gep_as_arithmetic"});
  for (const CampaignTiming& t : manifest.campaigns) {
    csv.add_row({t.app, t.tool, ir::category_name(t.category),
                 std::to_string(t.seed), std::to_string(t.trials),
                 std::to_string(t.profiled_count), std::to_string(t.injected),
                 std::to_string(t.activated), fmt_double(t.wall_seconds),
                 fmt_double(t.trials_per_second()),
                 std::to_string(manifest.threads),
                 fmt_double(manifest.profile_seconds),
                 fmt_double(manifest.wall_seconds),
                 std::to_string(manifest.model.pinfi_flag_heuristic ? 1 : 0),
                 std::to_string(manifest.model.pinfi_xmm_prune ? 1 : 0),
                 std::to_string(manifest.model.llfi_type_width ? 1 : 0),
                 std::to_string(
                     manifest.model.llfi_gep_as_arithmetic ? 1 : 0)});
  }
  return csv;
}

}  // namespace faultlab::fault
