// PINFI analog: fault injection at the assembly level through the machine
// simulator, playing the role Intel PIN plays in the paper.
//
// Target selection follows the paper's PINFI (Section IV):
//  * static candidates are instructions with a register destination in the
//    requested Table III category, plus flag-writing compares whose next
//    instruction is a conditional jump,
//  * one dynamic instance is chosen uniformly from the profiled count,
//  * a single bit of the destination register is flipped after the
//    instruction retires; for compares, only the EFLAGS bit(s) the
//    following jcc reads (heuristic 1); for double-precision results, only
//    the low 64 XMM bits (heuristic 2),
//  * activation is tracked architecturally: the corrupted register (or
//    flag bit) must be read before being overwritten.
//
// Trial execution is checkpointed the same way as LlfiEngine's:
// profile_all()'s instrumented golden run captures copy-on-write simulator
// snapshots every `CheckpointPolicy` stride (with per-category instance
// counters), and inject() resumes from the nearest snapshot before its
// injection point. Results are bit-identical to direct execution.
#pragma once

#include <atomic>
#include <vector>

#include "fault/engine.h"
#include "x86/program.h"
#include "x86/simulator.h"

namespace faultlab::fault {

class PinfiEngine final : public InjectorEngine {
 public:
  /// The program must outlive the engine.
  PinfiEngine(const x86::Program& program, FaultModel model = {},
              CheckpointPolicy checkpoints = CheckpointPolicy::from_env());

  const char* tool_name() const noexcept override { return "PINFI"; }
  std::uint64_t profile(ir::Category category) override;
  CategoryCounts profile_all() override;  ///< one run, all categories
  TrialRecord inject(ir::Category category, std::uint64_t k,
                     Rng& rng) override;
  const std::string& golden_output() const noexcept override {
    return golden_output_;
  }
  std::uint64_t golden_instructions() const noexcept override {
    return golden_instructions_;
  }
  CheckpointStats checkpoint_stats() const override;

  /// Static PINFI target predicate (exposed for tests/benches).
  static bool is_target(const x86::Inst& inst, const x86::Inst* next,
                        ir::Category category);

 private:
  /// A resumable point in the golden run: simulator snapshot plus how many
  /// dynamic instances of each category precede it.
  struct Checkpoint {
    x86::SimSnapshot snapshot;
    CategoryCounts seen;
  };

  x86::SimLimits faulty_limits() const;
  const Checkpoint* checkpoint_before(ir::Category category,
                                      std::uint64_t k) const;

  const x86::Program& program_;
  FaultModel model_;
  CheckpointPolicy checkpoint_policy_;
  std::string golden_output_;
  std::uint64_t golden_instructions_ = 0;
  /// Captured by profile_all (single-threaded, before trials); read-only
  /// during the trial phase, so concurrent inject() calls are safe.
  std::vector<Checkpoint> checkpoints_;
  std::uint64_t checkpoint_stride_ = 0;
  mutable std::atomic<std::uint64_t> trials_{0};
  mutable std::atomic<std::uint64_t> restored_trials_{0};
  mutable std::atomic<std::uint64_t> skipped_instructions_{0};
};

}  // namespace faultlab::fault
