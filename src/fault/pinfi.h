// PINFI analog: fault injection at the assembly level through the machine
// simulator, playing the role Intel PIN plays in the paper.
//
// Target selection follows the paper's PINFI (Section IV):
//  * static candidates are instructions with a register destination in the
//    requested Table III category, plus flag-writing compares whose next
//    instruction is a conditional jump,
//  * one dynamic instance is chosen uniformly from the profiled count,
//  * a single bit of the destination register is flipped after the
//    instruction retires; for compares, only the EFLAGS bit(s) the
//    following jcc reads (heuristic 1); for double-precision results, only
//    the low 64 XMM bits (heuristic 2),
//  * activation is tracked architecturally: the corrupted register (or
//    flag bit) must be read before being overwritten.
//
// Trial execution is checkpointed the same way as LlfiEngine's:
// profile_all()'s instrumented golden run captures copy-on-write simulator
// snapshots every `CheckpointPolicy` stride (with per-category instance
// counters), and inject() resumes from the nearest snapshot before its
// injection point. Results are bit-identical to direct execution.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "fault/checkpoint_store.h"
#include "fault/engine.h"
#include "obs/propagation.h"
#include "x86/program.h"
#include "x86/simulator.h"

namespace faultlab::fault {

class PinfiEngine final : public InjectorEngine {
 public:
  /// The program must outlive the engine. `fault_model` selects the
  /// hardware fault model (fault::Model — kind/mask/trigger); `model`
  /// keeps the tool-heuristic knobs. Memory-cell targets are rejected
  /// here with std::runtime_error: PINFI corrupts architectural registers
  /// only.
  PinfiEngine(const x86::Program& program, FaultModel model = {},
              CheckpointPolicy checkpoints = CheckpointPolicy::from_env(),
              Model fault_model = Model::from_env());

  const char* tool_name() const noexcept override { return "PINFI"; }
  std::uint64_t profile(ir::Category category) override;
  CategoryCounts profile_all() override;  ///< one run, all categories
  TrialRecord inject(ir::Category category, std::uint64_t k,
                     Rng& rng) override;
  TrialRecord inject_in(TrialContext* context, ir::Category category,
                        std::uint64_t k, Rng& rng) override;
  void inject_group(TrialContext* context, ir::Category category,
                    GroupTrial* trials, std::size_t count) override;
  std::unique_ptr<TrialContext> make_context() override;
  std::uint64_t window_of(ir::Category category,
                          std::uint64_t k) const override;
  const Model& fault_model() const noexcept override { return fault_model_; }
  const std::string& golden_output() const noexcept override {
    return golden_output_;
  }
  std::uint64_t golden_instructions() const noexcept override {
    return golden_instructions_;
  }
  CheckpointStats checkpoint_stats() const override;
  PhaseStats phase_stats() const override;

  /// Re-applies a snapshot page budget after profiling (tests/tools; the
  /// campaign path sets it via CheckpointPolicy). Evicts LRU-first, so
  /// windows no trial has resumed from go before hot ones. Must not run
  /// concurrently with trials.
  void set_snapshot_budget(std::uint64_t pages) {
    checkpoints_.set_budget(pages);
  }

  /// Static PINFI target predicate (exposed for tests/benches).
  static bool is_target(const x86::Inst& inst, const x86::Inst* next,
                        ir::Category category);

 private:
  /// Per-worker resident simulator: its address space persists between
  /// trials, so same-window trials reset via the O(dirty) delta path.
  /// Grouped trials add extra resident lane simulators on demand (lane 0
  /// is the original `sim`); each lane's address space also persists, so
  /// lanes ride the delta path across groups too.
  struct Context final : TrialContext {
    explicit Context(const x86::Program& p) : program(p), sim(p) {}
    x86::Simulator* lane(std::size_t i) {
      if (i == 0) return &sim;
      while (extra.size() < i)
        extra.push_back(std::make_unique<x86::Simulator>(program));
      return extra[i - 1].get();
    }
    const x86::Program& program;
    x86::Simulator sim;
    std::vector<std::unique_ptr<x86::Simulator>> extra;
  };

  x86::SimLimits faulty_limits() const;
  TrialRecord run_trial(Context& context, ir::Category category,
                        std::uint64_t k, Rng& rng);
  /// Restore-side accounting shared by the single-lane and grouped paths:
  /// engine atomics plus the checkpoint-metrics mirror. Call only for
  /// trials that actually resumed from a snapshot.
  void account_restore(const x86::SimResult& r,
                       std::uint64_t snapshot_executed) const;
  /// Dynamic instruction index at which a time-triggered fault arms for
  /// trial (category, k): k's share of the golden run, scaled by the
  /// profiled category density. Zero (= fall back to access trigger)
  /// until profile_all() has filled the category counts.
  std::uint64_t time_trigger_point(ir::Category category,
                                   std::uint64_t k) const;

  const x86::Program& program_;
  FaultModel model_;
  Model fault_model_;
  CheckpointPolicy checkpoint_policy_;
  std::string golden_output_;
  std::uint64_t golden_instructions_ = 0;
  /// Propagation tracing (obs/propagation.h): latched from prop_enabled()
  /// at construction; the golden pc journal is captured by the ctor's
  /// golden run iff tracing is on, then read-only during trials.
  bool trace_prop_ = false;
  obs::GoldenJournal journal_;
  /// Filled by profile_all (single-threaded, before trials); during the
  /// trial phase workers only query it (thread-safe), so concurrent
  /// inject() calls are safe.
  CheckpointStore<x86::SimSnapshot> checkpoints_;
  CategoryCounts profile_counts_;  ///< filled by profile_all (time trigger)
  std::uint64_t checkpoint_stride_ = 0;
  mutable std::atomic<std::uint64_t> trials_{0};
  mutable std::atomic<std::uint64_t> restored_trials_{0};
  mutable std::atomic<std::uint64_t> skipped_instructions_{0};
  mutable std::atomic<std::uint64_t> delta_restores_{0};
  mutable std::atomic<std::uint64_t> restored_pages_{0};
  mutable std::atomic<std::uint64_t> restore_nanos_{0};
  mutable std::atomic<std::uint64_t> execute_nanos_{0};
  mutable std::atomic<std::uint64_t> classify_nanos_{0};
};

}  // namespace faultlab::fault
