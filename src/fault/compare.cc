#include "fault/compare.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace faultlab::fault {

std::vector<CellComparison> compare_cells(const ResultSet& rs) {
  std::vector<CellComparison> out;
  for (const std::string& app : rs.apps()) {
    for (ir::Category c : ir::kAllCategories) {
      const CampaignResult* l = rs.find(app, "LLFI", c);
      const CampaignResult* p = rs.find(app, "PINFI", c);
      CellComparison cell;
      cell.app = app;
      cell.category = c;
      if (l != nullptr && p != nullptr && l->activated() > 0 &&
          p->activated() > 0) {
        cell.valid = true;
        cell.llfi_sdc = l->sdc_rate().percent();
        cell.pinfi_sdc = p->sdc_rate().percent();
        cell.llfi_crash = l->crash_rate().percent();
        cell.pinfi_crash = p->crash_rate().percent();
        cell.sdc_ci_overlap =
            Proportion::overlap95(l->sdc_rate(), p->sdc_rate());
        cell.crash_delta = std::fabs(cell.llfi_crash - cell.pinfi_crash);
      }
      out.push_back(std::move(cell));
    }
  }
  return out;
}

HeadlineFindings summarize(const ResultSet& rs) {
  HeadlineFindings h;
  const auto cells = compare_cells(rs);
  std::size_t valid = 0, overlapping = 0;
  std::size_t cmp_cells = 0, other_cells = 0;
  double cmp_delta_sum = 0.0, other_delta_sum = 0.0;
  for (const CellComparison& c : cells) {
    if (!c.valid) continue;
    ++valid;
    if (c.sdc_ci_overlap) ++overlapping;
    if (c.crash_delta > h.max_crash_delta) {
      h.max_crash_delta = c.crash_delta;
      h.max_crash_app = c.app;
      h.max_crash_category = c.category;
    }
    if (c.category == ir::Category::Cmp) {
      ++cmp_cells;
      cmp_delta_sum += c.crash_delta;
    } else {
      ++other_cells;
      other_delta_sum += c.crash_delta;
    }
  }
  if (valid > 0)
    h.sdc_agreement_fraction =
        static_cast<double>(overlapping) / static_cast<double>(valid);
  if (cmp_cells > 0)
    h.mean_cmp_crash_delta = cmp_delta_sum / static_cast<double>(cmp_cells);
  if (other_cells > 0)
    h.mean_other_crash_delta =
        other_delta_sum / static_cast<double>(other_cells);
  return h;
}

std::string render_summary(const HeadlineFindings& h) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "SDC agreement: LLFI and PINFI 95%% CIs overlap in %.0f%% of "
                "cells\n",
                h.sdc_agreement_fraction * 100.0);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "Max crash divergence: %.1f points (%s, %s category)\n",
                h.max_crash_delta, h.max_crash_app.c_str(),
                ir::category_name(h.max_crash_category));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "Mean crash divergence: cmp %.1f points vs other categories "
                "%.1f points\n",
                h.mean_cmp_crash_delta, h.mean_other_crash_delta);
  os << buf;
  return os.str();
}

}  // namespace faultlab::fault
