#include "fault/model.h"

#include <cstdio>
#include <cstdlib>

#include "support/bitutil.h"
#include "support/env.h"

namespace faultlab::fault {
namespace {

constexpr unsigned kMaxBurst = 64;

bool parse_uint(const std::string& text, unsigned* out) {
  if (text.empty()) return false;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (~0u - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  *out = value;
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Decodes a canonical display name (as produced by Model::name() and
// printed in CSVs) back into a model: kind stem plus the optional
// -m<bits>/-byte, -mem, and -time suffixes, stripped right to left.
bool parse_name(const std::string& name, Model* model) {
  std::string label = name;
  const auto strip_suffix = [&label](const std::string& suffix) {
    if (label.size() > suffix.size() &&
        label.compare(label.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      label.erase(label.size() - suffix.size());
      return true;
    }
    return false;
  };
  if (strip_suffix("-time")) model->trigger = FaultTrigger::Time;
  if (strip_suffix("-mem")) model->target = FaultTarget::MemoryCell;
  if (strip_suffix("-byte")) {
    model->mask = FaultMask::Byte;
  } else {
    const std::size_t m = label.rfind("-m");
    unsigned bits = 0;
    if (m != std::string::npos && parse_uint(label.substr(m + 2), &bits) &&
        bits >= 2 && bits <= FaultPlan::kMaxBits) {
      model->mask = FaultMask::MultiBit;
      model->mask_bits = bits;
      label.erase(m);
    }
  }
  if (label == "transient") {
    model->kind = FaultKind::Transient;
    return true;
  }
  if (label == "stuck-at-0" || label == "stuck-at-1") {
    model->kind = FaultKind::Permanent;
    model->stuck_value = label == "stuck-at-1";
    return true;
  }
  constexpr const char* kIntermittentStem = "intermittent-b";
  if (label.rfind(kIntermittentStem, 0) == 0) {
    const std::string rest = label.substr(std::string(kIntermittentStem).size());
    const std::size_t g = rest.find('g');
    unsigned burst = 0, gap = 0;
    if (g != std::string::npos && parse_uint(rest.substr(0, g), &burst) &&
        parse_uint(rest.substr(g + 1), &gap) && burst >= 1 &&
        burst <= kMaxBurst && gap <= kMaxBurst) {
      model->kind = FaultKind::Intermittent;
      model->burst_length = burst;
      model->burst_gap = gap;
      return true;
    }
  }
  return false;
}

bool parse_into(const std::string& spec, Model* model, std::string* error) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "transient") {
    model->kind = FaultKind::Transient;
  } else if (kind == "intermittent") {
    model->kind = FaultKind::Intermittent;
  } else if (kind == "stuck-at-0") {
    model->kind = FaultKind::Permanent;
    model->stuck_value = false;
  } else if (kind == "stuck-at-1" || kind == "permanent") {
    model->kind = FaultKind::Permanent;
    model->stuck_value = true;
  } else {
    // Not a spec-grammar kind: accept canonical names ("intermittent-b4g1",
    // "transient-m2") so a model printed in a CSV can be fed straight back
    // into FAULTLAB_FAULT_MODEL. Names never carry options.
    if (colon == std::string::npos && parse_name(spec, model)) return true;
    return fail(error, "unknown fault kind '" + kind + "'");
  }
  if (colon == std::string::npos) return true;

  std::string options = spec.substr(colon + 1);
  while (!options.empty()) {
    const std::size_t comma = options.find(',');
    const std::string option = options.substr(0, comma);
    options = comma == std::string::npos ? "" : options.substr(comma + 1);
    const std::size_t eq = option.find('=');
    if (eq == std::string::npos) {
      return fail(error, "option '" + option + "' is not key=value");
    }
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    unsigned number = 0;
    if (key == "bits") {
      if (!parse_uint(value, &number) || number < 1 ||
          number > FaultPlan::kMaxBits) {
        return fail(error, "bits must be 1..8, got '" + value + "'");
      }
      model->mask = number > 1 ? FaultMask::MultiBit : FaultMask::SingleBit;
      model->mask_bits = number;
    } else if (key == "mask") {
      if (value == "single") {
        model->mask = FaultMask::SingleBit;
      } else if (value == "byte") {
        model->mask = FaultMask::Byte;
      } else {
        return fail(error, "mask must be single or byte, got '" + value + "'");
      }
    } else if (key == "target") {
      if (value == "reg") {
        model->target = FaultTarget::RegisterDest;
      } else if (value == "mem") {
        model->target = FaultTarget::MemoryCell;
      } else {
        return fail(error, "target must be reg or mem, got '" + value + "'");
      }
    } else if (key == "trigger") {
      if (value == "access") {
        model->trigger = FaultTrigger::Access;
      } else if (value == "time") {
        model->trigger = FaultTrigger::Time;
      } else {
        return fail(error,
                    "trigger must be access or time, got '" + value + "'");
      }
    } else if (key == "burst") {
      if (!parse_uint(value, &number) || number < 1 || number > kMaxBurst) {
        return fail(error, "burst must be 1..64, got '" + value + "'");
      }
      model->burst_length = number;
    } else if (key == "gap") {
      if (!parse_uint(value, &number) || number > kMaxBurst) {
        return fail(error, "gap must be 0..64, got '" + value + "'");
      }
      model->burst_gap = number;
    } else {
      return fail(error, "unknown option '" + key + "'");
    }
  }
  return true;
}

}  // namespace

std::string Model::name() const {
  std::string label;
  switch (kind) {
    case FaultKind::Transient:
      label = "transient";
      break;
    case FaultKind::Intermittent:
      label = "intermittent-b" + std::to_string(burst_length) + "g" +
              std::to_string(burst_gap);
      break;
    case FaultKind::Permanent:
      label = stuck_value ? "stuck-at-1" : "stuck-at-0";
      break;
  }
  if (mask == FaultMask::MultiBit) {
    label += "-m" + std::to_string(mask_bits);
  } else if (mask == FaultMask::Byte) {
    label += "-byte";
  }
  if (target == FaultTarget::MemoryCell) label += "-mem";
  if (trigger == FaultTrigger::Time) label += "-time";
  return label;
}

std::uint64_t Model::apply(std::uint64_t value, std::uint64_t mask_value) const
    noexcept {
  if (kind == FaultKind::Permanent) {
    return stuck_value ? (value | mask_value) : (value & ~mask_value);
  }
  return value ^ mask_value;
}

Model Model::parse(const std::string& spec, std::string* error) {
  Model model;
  if (!parse_into(spec, &model, error)) return Model{};
  return model;
}

Model Model::from_env() {
  const char* env = support::parse_env_string("FAULTLAB_FAULT_MODEL");
  if (env == nullptr) return Model{};
  std::string error;
  Model model;
  if (!parse_into(env, &model, &error)) {
    std::fprintf(stderr,
                 "warning: FAULTLAB_FAULT_MODEL='%s' is invalid (%s); "
                 "using the default transient model\n",
                 env, error.c_str());
    return Model{};
  }
  return model;
}

std::vector<Model> Model::builtin_suite() {
  std::vector<Model> suite;
  suite.push_back(Model{});  // transient single-bit: the paper's model

  Model stuck;
  stuck.kind = FaultKind::Permanent;
  stuck.stuck_value = true;
  suite.push_back(stuck);

  Model intermittent;
  intermittent.kind = FaultKind::Intermittent;
  intermittent.burst_length = 4;
  intermittent.burst_gap = 1;
  suite.push_back(intermittent);

  Model multi;
  multi.mask = FaultMask::MultiBit;
  multi.mask_bits = 2;
  suite.push_back(multi);

  return suite;
}

unsigned FaultPlan::bits_for(unsigned width, unsigned out[kMaxBits]) const
    noexcept {
  const unsigned w = width == 0 ? 1 : width;
  if (model_.mask == FaultMask::Byte) {
    const unsigned base = (static_cast<unsigned>(raws_[0] % w) / 8) * 8;
    unsigned n = 0;
    for (unsigned b = base; b < base + 8 && b < w; ++b) out[n++] = b;
    return n;
  }
  unsigned n = 0;
  for (unsigned i = 0; i < num_raws_; ++i) {
    const unsigned bit = static_cast<unsigned>(raws_[i] % w);
    bool duplicate = false;
    for (unsigned j = 0; j < n; ++j) duplicate |= out[j] == bit;
    if (!duplicate) out[n++] = bit;
  }
  return n;
}

std::uint64_t FaultPlan::mask_for(unsigned width) const noexcept {
  unsigned bits[kMaxBits];
  const unsigned n = bits_for(width, bits);
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < n; ++i) mask |= flip_bit(0, bits[i]);
  return mask;
}

}  // namespace faultlab::fault
