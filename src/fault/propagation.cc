#include "fault/propagation.h"

#include <sstream>

#include "fault/llfi.h"
#include "support/bitutil.h"

namespace faultlab::fault {

namespace {

/// Dynamic taint tracker over the IR interpreter.
///
/// Contamination sources and flow rules:
///  * seed: the injected destination value,
///  * value -> value: an instruction whose operand (or read argument, or
///    loaded memory byte) is contaminated produces a contaminated result,
///  * value -> memory: a store whose value or address operand is
///    contaminated marks the written bytes,
///  * memory -> value: a load touching a contaminated byte contaminates
///    its result,
///  * call arguments carry taint into the callee frame.
///
/// Phi groups are evaluated atomically by the interpreter, so a
/// contaminated incoming value conservatively contaminates every phi of
/// the group (a slight over-approximation).
class TaintHook final : public vm::ExecHook {
 public:
  TaintHook(ir::Category category, std::uint64_t k, unsigned raw_bit)
      : category_(category), target_k_(k), raw_bit_(raw_bit) {}

  // -- target selection (same policy as LlfiEngine) ---------------------

  void on_instruction(const ir::Instruction& instr) override {
    // Phi groups evaluate atomically (reads interleave before results are
    // written), so the taint flag stays sticky across the group — a
    // conservative over-approximation, as documented above.
    if (instr.opcode() != ir::Opcode::Phi) current_reads_tainted_ = false;
    if (injected_) {
      ++trace_.instructions_after_injection;
      return;
    }
    if (LlfiEngine::is_target(instr, category_) && ++seen_ == target_k_)
      pending_ = true;
  }

  std::uint64_t on_result(const vm::DynValueId& id, std::uint64_t raw) override {
    if (pending_) {
      pending_ = false;
      injected_ = true;
      taint_value(id);
      const unsigned width = id.def->type()->register_bits();
      return flip_bit(raw, raw_bit_ % width);
    }
    if (injected_ && current_reads_tainted_) taint_value(id);
    return raw;
  }

  void on_operand_read(const vm::DynValueId& id,
                       const ir::Instruction& user) override {
    (void)user;
    if (injected_ && tainted_values_.count(key(id)))
      current_reads_tainted_ = true;
  }

  void on_argument_read(std::uint64_t frame, unsigned index,
                        const ir::Instruction& user) override {
    (void)user;
    if (injected_ && tainted_args_.count({frame, index}))
      current_reads_tainted_ = true;
  }

  void on_memory_access(const ir::Instruction& instr, std::uint64_t address,
                        unsigned size, bool is_store) override {
    if (!injected_) return;
    if (is_store) {
      if (!current_reads_tainted_) return;  // clean value to clean address
      for (unsigned b = 0; b < size; ++b) tainted_memory_.insert(address + b);
      trace_.contaminated_memory_bytes = tainted_memory_.size();
      if (trace_.first_memory_hop == 0)
        trace_.first_memory_hop = trace_.instructions_after_injection;
      (void)instr;  // the store itself has no destination register
      return;
    }
    for (unsigned b = 0; b < size; ++b) {
      if (tainted_memory_.count(address + b)) {
        current_reads_tainted_ = true;  // the load result will be tainted
        return;
      }
    }
  }

  void on_call(const ir::CallInst& call, std::uint64_t caller_frame,
               std::uint64_t callee_frame) override {
    if (!injected_) return;
    // Branch/output bookkeeping for builtins happens via the generic
    // instruction path; here we only forward taint into the callee frame.
    for (unsigned i = 0; i < call.num_args(); ++i) {
      const auto* def = dynamic_cast<const ir::Instruction*>(call.arg(i));
      if (def != nullptr && tainted_values_.count(key({caller_frame, def})))
        tainted_args_.insert({callee_frame, i});
    }
  }

  const PropagationTrace& trace() const noexcept { return trace_; }
  bool injected() const noexcept { return injected_; }

  /// Branch / output accounting. Branches and builtin calls have no
  /// on_result, so the wrapper routes every read's `user` here: a read of
  /// tainted data by a conditional branch is a control-flow divergence
  /// point; by a print builtin, externally visible corruption.
  void note_user(const ir::Instruction& user) {
    if (!injected_ || !current_reads_tainted_) return;
    if (user.opcode() == ir::Opcode::Br) {
      ++trace_.contaminated_branches;
      if (trace_.first_branch_hop == 0)
        trace_.first_branch_hop = trace_.instructions_after_injection;
    }
    if (const auto* call = dynamic_cast<const ir::CallInst*>(&user)) {
      if (call->callee()->is_builtin() &&
          call->callee()->name().rfind("print_", 0) == 0) {
        ++trace_.contaminated_outputs;
        if (trace_.first_output_hop == 0)
          trace_.first_output_hop = trace_.instructions_after_injection;
      }
    }
  }

 private:
  // DynValueId has no ordering; key on the raw pair.
  static std::pair<std::uint64_t, const ir::Instruction*> key(
      const vm::DynValueId& id) {
    return {id.frame, id.def};
  }

  void taint_value(const vm::DynValueId& id) {
    if (tainted_values_.insert(key(id)).second) {
      ++trace_.contaminated_values;
      trace_.contaminated_sites.insert(id.def->id());
    }
  }

  ir::Category category_;
  std::uint64_t target_k_;
  unsigned raw_bit_;
  std::uint64_t seen_ = 0;
  bool pending_ = false;
  bool injected_ = false;
  bool current_reads_tainted_ = false;

  std::set<std::pair<std::uint64_t, const ir::Instruction*>> tainted_values_;
  std::set<std::pair<std::uint64_t, unsigned>> tainted_args_;
  std::set<std::uint64_t> tainted_memory_;
  PropagationTrace trace_;
};

/// Wraps TaintHook to route branch/output accounting through the `user`
/// parameter of the read callbacks (which TaintHook's flat flag loses).
class AccountingHook final : public vm::ExecHook {
 public:
  AccountingHook(ir::Category category, std::uint64_t k, unsigned raw_bit)
      : inner_(category, k, raw_bit) {}

  void on_instruction(const ir::Instruction& instr) override {
    inner_.on_instruction(instr);
  }
  std::uint64_t on_result(const vm::DynValueId& id, std::uint64_t raw) override {
    return inner_.on_result(id, raw);
  }
  void on_operand_read(const vm::DynValueId& id,
                       const ir::Instruction& user) override {
    inner_.on_operand_read(id, user);
    inner_.note_user(user);
  }
  void on_argument_read(std::uint64_t frame, unsigned index,
                        const ir::Instruction& user) override {
    inner_.on_argument_read(frame, index, user);
    inner_.note_user(user);
  }
  void on_memory_access(const ir::Instruction& instr, std::uint64_t address,
                        unsigned size, bool is_store) override {
    inner_.on_memory_access(instr, address, size, is_store);
  }
  void on_call(const ir::CallInst& call, std::uint64_t caller_frame,
               std::uint64_t callee_frame) override {
    inner_.on_call(call, caller_frame, callee_frame);
  }

  const TaintHook& inner() const noexcept { return inner_; }

 private:
  TaintHook inner_;
};

}  // namespace

PropagationTrace trace_propagation(const ir::Module& module,
                                   ir::Category category, std::uint64_t k,
                                   unsigned bit,
                                   const std::string& golden_output,
                                   const vm::RunLimits& limits) {
  AccountingHook hook(category, k, bit);
  vm::Interpreter interp(module, &hook);
  const vm::RunResult r = interp.run("main", limits);

  PropagationTrace trace = hook.inner().trace();
  trace.injected = hook.inner().injected();
  // Activation for the trace's purposes: anything beyond the seed value,
  // or a contaminated memory byte, means the fault was read somewhere.
  const bool activated =
      trace.contaminated_values > 1 || trace.contaminated_memory_bytes > 0 ||
      trace.contaminated_branches > 0 || trace.contaminated_outputs > 0;
  trace.outcome = classify(trace.injected, activated, r.trapped, r.timed_out,
                           r.output, golden_output);
  return trace;
}

std::string render_trace(const PropagationTrace& t) {
  std::ostringstream os;
  os << "outcome: " << outcome_name(t.outcome) << "\n"
     << "instructions after injection: " << t.instructions_after_injection
     << "\n"
     << "contaminated values: " << t.contaminated_values << " across "
     << t.contaminated_sites.size() << " static sites\n"
     << "contaminated memory bytes: " << t.contaminated_memory_bytes << "\n"
     << "contaminated branches: " << t.contaminated_branches << "\n"
     << "contaminated outputs: " << t.contaminated_outputs << "\n";
  if (t.first_memory_hop != 0)
    os << "first reached memory after " << t.first_memory_hop
       << " instructions\n";
  if (t.first_branch_hop != 0)
    os << "first reached control flow after " << t.first_branch_hop
       << " instructions\n";
  if (t.first_output_hop != 0)
    os << "first reached program output after " << t.first_output_hop
       << " instructions\n";
  return os.str();
}

}  // namespace faultlab::fault
