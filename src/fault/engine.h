// Injector-engine interface: what a SWiFI tool must provide for the
// campaign runner. LLFI implements it over the IR interpreter; PINFI over
// the machine simulator.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fault/model.h"
#include "fault/outcome.h"
#include "ir/category.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace faultlab::fault {

/// Knobs of the fault model. Defaults reproduce the paper's setup; the
/// ablation bench flips them individually.
struct FaultModel {
  /// PINFI heuristic 1: for compares, flip only the EFLAGS bit(s) the
  /// following conditional jump reads (Figure 2a).
  bool pinfi_flag_heuristic = true;
  /// PINFI heuristic 2: for double-precision ops, prune the 128-bit XMM
  /// injection space to the low 64 bits (Figure 2b).
  bool pinfi_xmm_prune = true;
  /// LLFI flips within the destination *type* width; turning this off
  /// flips within the full 64-bit register instead (ablation).
  bool llfi_type_width = true;
  /// Section VII item 1: treat getelementptr as an arithmetic instruction
  /// when LLFI selects 'arithmetic' targets (off = paper's default LLFI).
  bool llfi_gep_as_arithmetic = false;
};

/// Checkpoint configuration shared by both engines. During the single-pass
/// instrumented profiling run (profile_all) the engine captures a
/// copy-on-write snapshot every `stride` dynamic instructions, together
/// with the per-category instance counters at that point; inject() then
/// resumes each trial from the nearest snapshot at or before its injection
/// point instead of re-executing the golden prefix.
struct CheckpointPolicy {
  /// Dynamic-instruction stride between snapshots (0 = automatic: the
  /// golden run length divided into kAutoWindows, floored at kMinStride).
  std::uint64_t stride = 0;
  /// Master switch; with checkpointing off every trial runs from main().
  bool enabled = true;
  /// Cap on the engine's resident snapshot pages, summed over live
  /// snapshots' mapped-page counts (0 = unlimited). Over-budget snapshots
  /// are evicted (LRU, interval-thinning tie-break); trials whose window
  /// was evicted fall back to the nearest earlier live snapshot, so
  /// campaign outcomes are unchanged.
  std::uint64_t budget_pages = 0;

  static constexpr std::uint64_t kAutoWindows = 64;
  static constexpr std::uint64_t kMinStride = 20'000;

  /// Environment overrides: FAULTLAB_CHECKPOINTS=0 disables,
  /// FAULTLAB_SNAPSHOT_STRIDE=<n> fixes the stride,
  /// FAULTLAB_SNAPSHOT_BUDGET=<pages> caps resident snapshot pages.
  static CheckpointPolicy from_env();

  std::uint64_t effective_stride(std::uint64_t golden_instructions) const;
};

/// Handles to the checkpoint layer's counters in the process-wide metrics
/// registry (shared by LlfiEngine and PinfiEngine; the per-engine split
/// lives in CheckpointStats below). Call sites gate every use on
/// obs::metrics_enabled(), so the disabled path costs one cached-bool
/// branch.
struct CheckpointMetrics {
  obs::Counter snapshots;             ///< snapshots captured by profile_all
  obs::Counter restores;              ///< trials resumed from a snapshot
  obs::Counter restored_pages;        ///< page-table entries rewritten
  obs::Counter skipped_instructions;  ///< golden prefix not re-executed
  obs::Counter delta_restores;        ///< restores that walked only dirty pages
  obs::Counter delta_pages;           ///< pages rewritten by delta restores
  obs::Counter evictions;             ///< snapshots evicted by the budget
  obs::Histogram dirty_pages;         ///< dirty-set size per delta restore
};

/// Lazily-registered singleton over Registry::global().
CheckpointMetrics& checkpoint_metrics();

/// Observability counters for the checkpoint layer (per engine). Atomic
/// accumulation happens inside the engines; this is the plain value handed
/// to benches and the perf manifest.
struct CheckpointStats {
  std::uint64_t snapshots = 0;        ///< snapshots captured by profile_all
  std::uint64_t stride = 0;           ///< effective stride in force
  std::uint64_t trials = 0;           ///< inject() calls observed
  std::uint64_t restored_trials = 0;  ///< trials resumed from a snapshot
  std::uint64_t skipped_instructions = 0;  ///< golden prefix not re-executed
  std::uint64_t delta_restores = 0;   ///< restores on the O(dirty) path
  std::uint64_t restored_pages = 0;   ///< page-table entries rewritten
  std::uint64_t evictions = 0;        ///< snapshots evicted by the budget

  double hit_rate() const noexcept {
    return trials != 0
               ? static_cast<double>(restored_trials) /
                     static_cast<double>(trials)
               : 0.0;
  }
  /// Mean pages rewritten per resumed trial (the delta path's headline
  /// number: O(dirty) instead of O(mapped)).
  double mean_restored_pages() const noexcept {
    return restored_trials != 0
               ? static_cast<double>(restored_pages) /
                     static_cast<double>(restored_trials)
               : 0.0;
  }
  CheckpointStats& operator+=(const CheckpointStats& o) noexcept {
    snapshots += o.snapshots;
    stride = stride == 0 ? o.stride : (o.stride == 0 ? stride
                                                     : std::min(stride, o.stride));
    trials += o.trials;
    restored_trials += o.restored_trials;
    skipped_instructions += o.skipped_instructions;
    delta_restores += o.delta_restores;
    restored_pages += o.restored_pages;
    evictions += o.evictions;
    return *this;
  }
};

/// Wall-time split of the trial loop's three phases, accumulated across
/// every trial an engine ran (always on: the cost is two steady_clock
/// reads per phase, trivial against a trial's execute time). This is the
/// aggregate behind the obs layer's per-trial phase spans, so the perf
/// manifest can report the execute-phase share without event tracing.
struct PhaseStats {
  double restore_seconds = 0.0;   ///< snapshot lookup + state reset
  double execute_seconds = 0.0;   ///< interpreter / simulator run
  double classify_seconds = 0.0;  ///< outcome classification
  PhaseStats& operator+=(const PhaseStats& o) noexcept {
    restore_seconds += o.restore_seconds;
    execute_seconds += o.execute_seconds;
    classify_seconds += o.classify_seconds;
    return *this;
  }
};

/// Dynamic instruction counts for every Table III category, indexed by
/// `ir::Category`. Produced by `InjectorEngine::profile_all()` so one
/// instrumented golden run covers the whole category grid.
struct CategoryCounts {
  std::array<std::uint64_t, ir::kNumCategories> counts{};

  std::uint64_t operator[](ir::Category c) const noexcept {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t& operator[](ir::Category c) noexcept {
    return counts[static_cast<std::size_t>(c)];
  }
};

/// Opaque per-worker execution state created by an engine's
/// make_context(). A context may only be used by one thread at a time;
/// feeding consecutive same-window trials of one campaign to the same
/// context keeps every reset on Memory's O(dirty pages) delta path,
/// because the context's resident address space still derives from that
/// window's snapshot.
class TrialContext {
 public:
  virtual ~TrialContext() = default;
};

class InjectorEngine {
 public:
  /// window_of() result for trials that run from scratch (no snapshot).
  static constexpr std::uint64_t kNoWindow = ~std::uint64_t{0};

  virtual ~InjectorEngine() = default;

  virtual const char* tool_name() const noexcept = 0;

  /// Dynamic count of category instructions in a fault-free run (the
  /// paper's Table IV entries). Also primes golden output/limits.
  virtual std::uint64_t profile(ir::Category category) = 0;

  /// Dynamic counts for *all* categories from a single instrumented run.
  /// The default falls back to one profile() run per category; LlfiEngine
  /// and PinfiEngine override it with a genuine single-pass version, which
  /// is what the campaign scheduler uses to avoid per-category golden
  /// re-runs. Must agree with profile() for every category.
  virtual CategoryCounts profile_all() {
    CategoryCounts out;
    for (ir::Category c : ir::kAllCategories) out[c] = profile(c);
    return out;
  }

  /// Runs one trial, flipping one random bit in the destination of the
  /// k-th dynamic instance (1-based) of `category`. `rng` drives the bit
  /// choice only; k comes from the campaign so both tools sample uniformly.
  virtual TrialRecord inject(ir::Category category, std::uint64_t k,
                             Rng& rng) = 0;

  /// Fresh per-worker execution state for inject_in(), or nullptr when the
  /// engine has none (the scheduler then falls back to inject()). Called
  /// after profiling, from any thread.
  virtual std::unique_ptr<TrialContext> make_context() { return nullptr; }

  /// inject() against a resident context. `context` must come from this
  /// engine's make_context() and be used by one thread at a time; trial
  /// results are identical to inject()'s — the context only changes how
  /// much state the reset has to rewrite.
  virtual TrialRecord inject_in(TrialContext* context, ir::Category category,
                                std::uint64_t k, Rng& rng) {
    (void)context;
    return inject(category, k, rng);
  }

  /// One trial of a lane group: the dynamic target, the trial's own
  /// pre-forked rng stream, and the record slot to fill. Every trial
  /// draws only from its own rng, so grouping never perturbs the streams.
  struct GroupTrial {
    std::uint64_t k = 0;
    Rng* rng = nullptr;
    TrialRecord* record = nullptr;
  };

  /// Runs `count` same-window trials against one context. Engines that
  /// support lockstep lane packing override this to execute the group
  /// batched; records are identical to calling inject_in() per trial in
  /// array order either way. The default implementation is exactly that
  /// loop.
  virtual void inject_group(TrialContext* context, ir::Category category,
                            GroupTrial* trials, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      *trials[i].record =
          inject_in(context, category, trials[i].k, *trials[i].rng);
  }

  /// Index of the snapshot window trial (category, k) resumes from, or
  /// kNoWindow for a from-scratch run. Valid after profiling; the
  /// scheduler uses it to run a window's trials back-to-back on one
  /// context. Purely a scheduling hint — grouping never changes results.
  virtual std::uint64_t window_of(ir::Category category,
                                  std::uint64_t k) const {
    (void)category;
    (void)k;
    return kNoWindow;
  }

  /// The hardware fault model this engine injects (fault::Model, not the
  /// tool-heuristic FaultModel knobs above). The base default is the
  /// paper's transient single-bit model.
  virtual const Model& fault_model() const noexcept {
    static const Model kDefault{};
    return kDefault;
  }

  /// Output of the fault-free run (SDC reference).
  virtual const std::string& golden_output() const noexcept = 0;
  /// Dynamic instruction count of the fault-free run.
  virtual std::uint64_t golden_instructions() const noexcept = 0;

  /// Checkpoint-layer counters (zero for engines without checkpointing).
  virtual CheckpointStats checkpoint_stats() const { return {}; }

  /// Accumulated restore/execute/classify wall time over every trial this
  /// engine ran (zero for engines that don't track it).
  virtual PhaseStats phase_stats() const { return {}; }
};

}  // namespace faultlab::fault
