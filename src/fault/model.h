// Declarative hardware fault models.
//
// The paper's comparison covers one fault model: a transient single
// bit-flip in the destination register of one dynamic instruction. The
// fault::Model type generalizes that along four orthogonal axes —
//
//   kind     transient (fire once) / intermittent (fire in a burst) /
//            permanent (stuck-at, fires on every re-execution of the
//            armed site);
//   mask     single bit / multi-bit mask of `mask_bits` independent
//            draws / whole byte;
//   target   register destination (the paper's model) / memory cell
//            (parsed and named, but rejected by both engines until a
//            memory-addressed injection path exists);
//   trigger  access-triggered (the k-th dynamic occurrence of the
//            instruction category, the paper's model) / time-triggered
//            (the first category instruction at or after a dynamic
//            instruction index derived from k).
//
// A Model is pure data: both engines consume it through FaultPlan, which
// freezes the trial's random draws up front so scheduling order can never
// perturb the rng stream (the determinism invariant from PR 3). The
// default-constructed Model is exactly the paper's model and consumes
// exactly one draw, so default campaigns are bit-identical to PR 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace faultlab::fault {

enum class FaultKind : std::uint8_t {
  Transient,     // corrupt one dynamic instance, then done
  Intermittent,  // corrupt a burst of re-executions of the armed site
  Permanent,     // stuck-at: corrupt every re-execution of the armed site
};

enum class FaultMask : std::uint8_t {
  SingleBit,  // one flipped/stuck bit
  MultiBit,   // union of `mask_bits` independently drawn bits
  Byte,       // the aligned byte containing the drawn bit
};

enum class FaultTarget : std::uint8_t {
  RegisterDest,  // destination register of the victim instruction
  MemoryCell,    // a memory cell (not yet supported by the engines)
};

enum class FaultTrigger : std::uint8_t {
  Access,  // arm at the k-th dynamic instruction of the category
  Time,    // arm at a dynamic instruction index derived from k
};

/// A declarative hardware fault model. Plain data; value-copied into
/// engines and hooks.
struct Model {
  FaultKind kind = FaultKind::Transient;
  FaultMask mask = FaultMask::SingleBit;
  FaultTarget target = FaultTarget::RegisterDest;
  FaultTrigger trigger = FaultTrigger::Access;

  /// Number of independent bit draws for FaultMask::MultiBit (1..8).
  /// Draws may collide and fold to the same bit, so the realized mask
  /// has *up to* mask_bits set bits.
  unsigned mask_bits = 2;

  /// Intermittent: fire on `burst_length` consecutive eligible
  /// re-executions, skipping `burst_gap` re-executions between fires.
  unsigned burst_length = 4;
  unsigned burst_gap = 1;

  /// Permanent: the stuck value (true = stuck-at-1, false = stuck-at-0).
  bool stuck_value = true;

  /// True for models whose hook must stay attached after the first
  /// corruption (intermittent and permanent).
  bool persistent() const noexcept { return kind != FaultKind::Transient; }

  /// Stable human-readable label, e.g. "transient", "stuck-at-1-m2",
  /// "intermittent-b4g1-byte-time". Used in CSVs and the event schema.
  std::string name() const;

  /// Applies this model's corruption semantics to `value` under bit
  /// `mask`: transient/intermittent XOR the mask, permanent forces the
  /// masked bits to the stuck value.
  std::uint64_t apply(std::uint64_t value, std::uint64_t mask_value) const
      noexcept;

  /// Parses a spec of the form `kind[:key=value,...]`. Kinds: transient,
  /// intermittent, stuck-at-0, stuck-at-1, permanent (alias for
  /// stuck-at-1). Keys: bits=1..8, mask=single|byte, target=reg|mem,
  /// trigger=access|time, burst=1..64, gap=0..64. Canonical names as
  /// produced by name() ("intermittent-b4g1", "transient-m2") are also
  /// accepted, so a model printed in a CSV can be re-run verbatim. On
  /// failure returns the default model and, when `error` is non-null,
  /// stores a diagnostic.
  static Model parse(const std::string& spec, std::string* error = nullptr);

  /// Reads FAULTLAB_FAULT_MODEL. Unset/empty yields the default model;
  /// an invalid spec warns on stderr and yields the default model.
  static Model from_env();

  /// The models exercised by bench_table5_crash's per-model sweep and the
  /// determinism fixtures: transient (baseline), stuck-at-1, intermittent
  /// burst-4/gap-1, and a 2-bit transient.
  static std::vector<Model> builtin_suite();
};

/// The frozen per-trial randomness of one injection. Constructed before
/// the trial executes so every model consumes a deterministic, schedule-
/// independent prefix of the trial rng. The default (single-bit) model
/// draws exactly once from `raw_space`, matching the historical
/// `rng.below(64)` / `rng.below(128)` draw of each engine byte-for-byte.
class FaultPlan {
 public:
  static constexpr unsigned kMaxBits = 8;

  FaultPlan() = default;

  FaultPlan(const Model& model, Rng& rng, unsigned raw_space)
      : model_(model), num_raws_(1) {
    raws_[0] = rng.below(raw_space);
    if (model.mask == FaultMask::MultiBit) {
      const unsigned extra =
          (model.mask_bits < 1 ? 1
                               : model.mask_bits > kMaxBits ? kMaxBits
                                                            : model.mask_bits) -
          1;
      for (unsigned i = 0; i < extra; ++i) {
        raws_[num_raws_++] = rng.below(raw_space);
      }
    }
  }

  const Model& model() const noexcept { return model_; }

  /// The primary raw draw, folded into `width`. Recorded as
  /// TrialRecord::bit for every model so CSV schemas stay stable.
  unsigned primary_bit(unsigned width) const noexcept {
    return static_cast<unsigned>(raws_[0] % (width == 0 ? 1 : width));
  }

  /// Writes the distinct target bits for a `width`-bit destination into
  /// `out` (size >= kMaxBits); returns the count. SingleBit yields one
  /// bit, MultiBit the de-duplicated folds of each raw draw, Byte the
  /// bits of the aligned byte containing the primary bit (clipped to
  /// `width`).
  unsigned bits_for(unsigned width, unsigned out[kMaxBits]) const noexcept;

  /// The union bit mask for a destination of `width` <= 64 bits.
  std::uint64_t mask_for(unsigned width) const noexcept;

  /// Applies the model's corruption to a `width`-bit value.
  std::uint64_t corrupt(std::uint64_t value, unsigned width) const noexcept {
    return model_.apply(value, mask_for(width));
  }

 private:
  Model model_{};
  unsigned num_raws_ = 0;
  std::uint64_t raws_[kMaxBits] = {};
};

}  // namespace faultlab::fault
