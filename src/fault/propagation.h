// Error-propagation tracing — the LLFI capability the paper's Section III
// highlights ("LLFI ... enables tracing the propagation of the fault among
// instructions in the program").
//
// After injecting a bit flip, the tracer follows the dynamic forward slice
// of the corrupted value: any instruction that reads a contaminated value
// produces a contaminated result; stores contaminate memory bytes; loads
// from contaminated bytes contaminate their result; branches on
// contaminated conditions mark control-flow divergence. The result is a
// quantitative picture of how far one flipped bit spreads before the run
// ends — the data behind "why did this fault become an SDC?"
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/outcome.h"
#include "ir/category.h"
#include "ir/module.h"
#include "vm/interpreter.h"

namespace faultlab::fault {

/// Aggregate statistics of one traced injection.
struct PropagationTrace {
  bool injected = false;
  Outcome outcome = Outcome::NotActivated;

  /// Dynamic instructions executed after the injection point.
  std::uint64_t instructions_after_injection = 0;
  /// Distinct contaminated SSA values, counted per (stack frame,
  /// instruction) — a loop saturates at its static footprint within one
  /// frame, while recursion multiplies it. Includes the seed.
  std::uint64_t contaminated_values = 0;
  /// Memory bytes that held contaminated data at any point.
  std::uint64_t contaminated_memory_bytes = 0;
  /// Conditional branches whose condition was contaminated (potential
  /// control-flow divergence points).
  std::uint64_t contaminated_branches = 0;
  /// Contaminated values passed to output builtins (print_*): the moment
  /// corruption becomes externally visible (SDC).
  std::uint64_t contaminated_outputs = 0;
  /// Static instructions (by per-function id) that ever produced a
  /// contaminated value — the footprint of the fault in the code.
  std::set<std::uint64_t> contaminated_sites;

  /// Dynamic distance (instructions) from injection to the first
  /// contaminated store/branch/output; 0 when none happened.
  std::uint64_t first_memory_hop = 0;
  std::uint64_t first_branch_hop = 0;
  std::uint64_t first_output_hop = 0;
};

/// Runs one injection on the IR engine with full propagation tracing.
/// `category`/`k`/`bit` select the target exactly as LlfiEngine::inject
/// does (k-th dynamic instance of the category, flipping `bit` folded by
/// the destination width).
PropagationTrace trace_propagation(const ir::Module& module,
                                   ir::Category category, std::uint64_t k,
                                   unsigned bit,
                                   const std::string& golden_output,
                                   const vm::RunLimits& limits = {});

/// Renders a short human-readable summary of a trace.
std::string render_trace(const PropagationTrace& trace);

}  // namespace faultlab::fault
