// LLFI-vs-PINFI comparison analytics — the paper's headline claims,
// computed from a ResultSet:
//  * SDC rates agree within 95% confidence intervals for most cells,
//  * crash rates diverge substantially for every category except 'cmp'.
#pragma once

#include <string>
#include <vector>

#include "fault/report.h"

namespace faultlab::fault {

struct CellComparison {
  std::string app;
  ir::Category category = ir::Category::All;
  double llfi_sdc = 0.0, pinfi_sdc = 0.0;    // percent
  double llfi_crash = 0.0, pinfi_crash = 0.0;
  bool sdc_ci_overlap = false;
  double crash_delta = 0.0;  // |llfi - pinfi| in percentage points
  bool valid = false;        // both tools have activated trials
};

std::vector<CellComparison> compare_cells(const ResultSet& rs);

struct HeadlineFindings {
  /// Fraction of valid cells where the LLFI/PINFI SDC CIs overlap.
  double sdc_agreement_fraction = 0.0;
  /// Largest crash-rate divergence over valid cells, and where.
  double max_crash_delta = 0.0;
  std::string max_crash_app;
  ir::Category max_crash_category = ir::Category::All;
  /// Mean crash delta for 'cmp' cells (the paper: small) vs others.
  double mean_cmp_crash_delta = 0.0;
  double mean_other_crash_delta = 0.0;
};

HeadlineFindings summarize(const ResultSet& rs);

std::string render_summary(const HeadlineFindings& h);

}  // namespace faultlab::fault
