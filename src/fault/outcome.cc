#include "fault/outcome.h"

namespace faultlab::fault {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Benign: return "benign";
    case Outcome::SDC: return "sdc";
    case Outcome::Crash: return "crash";
    case Outcome::Hang: return "hang";
    case Outcome::NotActivated: return "not-activated";
  }
  return "?";
}

Outcome classify(bool injected, bool activated, bool trapped, bool timed_out,
                 const std::string& output, const std::string& golden) {
  if (!injected || !activated) return Outcome::NotActivated;
  if (trapped) return Outcome::Crash;
  if (timed_out) return Outcome::Hang;
  return output == golden ? Outcome::Benign : Outcome::SDC;
}

}  // namespace faultlab::fault
