// Campaign runner: the paper's experimental procedure (Section V).
//
// For one (tool, benchmark, category): profile the dynamic count N, then
// run `trials` injections, each at a uniformly drawn dynamic instance
// k in [1, N], flipping one random bit. Outcome percentages are computed
// over *activated* faults, exactly as in the paper.
#pragma once

#include <string>
#include <vector>

#include "fault/engine.h"
#include "support/stats.h"

namespace faultlab::fault {

struct CampaignConfig {
  std::string app;  ///< benchmark name (reporting only)
  ir::Category category = ir::Category::All;
  std::size_t trials = 150;
  std::uint64_t seed = 0xfa017ab5eedULL;
  /// Worker threads for the trial loop (0 = hardware concurrency). Results
  /// are identical for any thread count: every trial's (k, bit) draw is
  /// generated sequentially up front.
  std::size_t threads = 0;
};

struct CampaignResult {
  std::string app;
  std::string tool;
  ir::Category category = ir::Category::All;
  /// Name of the hardware fault model the engine injected (Model::name();
  /// "transient" for the paper's baseline).
  std::string fault_model = "transient";
  std::uint64_t profiled_count = 0;  // N (Table IV entry)

  std::size_t crash = 0;
  std::size_t sdc = 0;
  std::size_t benign = 0;
  std::size_t hang = 0;
  std::size_t not_activated = 0;

  /// Trials whose target dynamic instance was reached (observability).
  std::size_t injected_trials = 0;
  /// Wall time of the trial loop, filled by the scheduler (0 when the
  /// campaign had nothing to run).
  double wall_seconds = 0.0;

  std::size_t activated() const noexcept { return crash + sdc + benign + hang; }
  Proportion crash_rate() const noexcept { return {crash, activated()}; }
  Proportion sdc_rate() const noexcept { return {sdc, activated()}; }
  Proportion benign_rate() const noexcept { return {benign, activated()}; }
  Proportion hang_rate() const noexcept { return {hang, activated()}; }

  std::vector<TrialRecord> trials;  ///< per-trial details (replayable)
};

/// Runs one campaign. Deterministic for a fixed (engine, config) pair.
/// Thin wrapper over CampaignScheduler (see fault/scheduler.h) — grid
/// experiments should schedule all their campaigns together instead so
/// profiling is shared and the worker pool never drains. Worker exceptions
/// surface as a catchable CampaignError; they no longer std::terminate.
CampaignResult run_campaign(InjectorEngine& engine,
                            const CampaignConfig& config);

/// Number of trials per cell, honouring the FAULTLAB_TRIALS environment
/// variable (the paper uses 1000; the default here keeps laptop turnaround
/// reasonable). Values that are not a positive decimal integer — including
/// trailing garbage ("150abc") and out-of-range numbers — fall back to the
/// default with a one-line warning on stderr.
std::size_t default_trials();

}  // namespace faultlab::fault
