#include "fault/pinfi.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "machine/dispatch.h"
#include "obs/metrics.h"
#include "obs/propagation.h"
#include "obs/trace.h"
#include "support/bitutil.h"
#include "x86/category.h"

namespace faultlab::fault {

namespace {

using x86::Inst;
using x86::kNoReg;
using x86::Op;
using x86::RegId;

/// Width in bits of the destination write (the PINFI injection space).
unsigned dest_write_bits(const Inst& inst, bool xmm_prune) {
  const RegId d = x86::dest_reg(inst);
  if (x86::is_xmm_class(d)) return xmm_prune ? 64 : 128;
  switch (inst.op) {
    case Op::MovzxRR: case Op::MovzxRM: case Op::MovsxRR: case Op::MovsxRM:
    case Op::Lea: case Op::Pop: case Op::MovqRX:
      return 64;
    case Op::Setcc:
      return 8;
    default:
      return inst.width * 8u;
  }
}

/// Opcode label recorded for an injected site. Mostly x86::op_name, but
/// memory-source movs are labelled as loads so attribution's mapping
/// classes line up with LLFI's load opcode instead of folding every mov
/// form into one bucket.
const char* site_op_name(const Inst& inst) {
  switch (inst.op) {
    case Op::MovRM: return "mov.load";
    case Op::MovzxRM: return "movzx.load";
    case Op::MovsxRM: return "movsx.load";
    case Op::MovsdRM: return "movsd.load";
    default: return x86::op_name(inst.op);
  }
}

/// Bit mask a register write covers (for killing activation tracking).
std::uint64_t written_gpr_mask(const Inst& inst) {
  if (x86::dest_fully_overwrites(inst)) return ~std::uint64_t{0};
  switch (inst.op) {
    case Op::Setcc: return 0xff;
    default:
      return low_mask(inst.width * 8u);
  }
}

/// Injection hook. Corruption is driven by the trial's FaultPlan: the
/// plan's bit draws are folded into the destination's write width at
/// injection time and materialized as bit masks (EFLAGS mask, GPR mask,
/// or two XMM lane masks), which Model::apply() then XORs (transient /
/// intermittent) or forces (stuck-at) into the retired state.
///
/// Transient models keep the PR 4 fast path: one corruption, one
/// architectural tracking pass, final detach() once the verdict is known.
/// Persistent models re-fire on every later execution of the armed static
/// site per the model's burst pattern (the masks are invariant — it is
/// the same static instruction every time) and restart tracking at each
/// fire. A nonzero `arm_time` selects the time trigger: the hook starts
/// dormant (detached with rearm_at = arm_time) and corrupts the first
/// category instruction at or after that absolute position.
///
/// When the trial resumes from a checkpoint, `already_seen` primes the
/// instance counter with the skipped prefix's count so the k-th instance
/// is still the k-th, and `base` primes the absolute position.
class PinfiHook final : public x86::SimHook {
 public:
  enum class TargetKind { None, Gpr, Xmm, Flags };

  /// A non-null `journal` arms the propagation tracer (see InjectHook in
  /// llfi.cc for the contract): post-injection detaches are suppressed so
  /// the whole post-fault suffix runs on the hooked slow path and feeds
  /// the tracer; results are unchanged, only slower.
  PinfiHook(const x86::Program& program, ir::Category category,
            std::uint64_t k, const FaultPlan& plan, const FaultModel& model,
            std::uint64_t already_seen, std::uint64_t base,
            std::uint64_t arm_time,
            const obs::GoldenJournal* journal = nullptr)
      : program_(program),
        category_(category),
        target_k_(k),
        plan_(plan),
        model_(model),
        seen_(already_seen),
        arm_time_(arm_time),
        tracing_(journal != nullptr),
        tracer_(journal) {
    if (arm_time_ != 0 && arm_time_ > base + 1) {
      executed_ = arm_time_ - 1;
      detach(arm_time_);  // sleep until the trigger point
    } else {
      executed_ = base;
    }
  }

  void on_before(std::size_t index, const Inst& inst) override {
    ++executed_;  // absolute dynamic-instruction position
    if (tracing_) tracer_.on_before(executed_, index, inst);
    if (!injected_) {
      const Inst* next = index + 1 < program_.code.size()
                             ? &program_.code[index + 1]
                             : nullptr;
      if (PinfiEngine::is_target(inst, next, category_)) {
        const bool armed = arm_time_ != 0 ? executed_ >= arm_time_
                                          : ++seen_ == target_k_;
        if (armed) {
          pending_ = true;
          pending_next_ = next;
        }
      }
      return;
    }
    if (plan_.model().persistent()) {
      if (index == static_site_) {
        const std::uint64_t o = occurrence_++;
        if (fire_at(o)) {
          pending_ = true;
          pending_next_ = saved_next_;
        }
      }
      if (!activated_ && tracking_) track(inst);
      // An intermittent hook retires only once its burst is spent AND the
      // verdict is final; permanent hooks stay attached to the end (the
      // stuck bits must keep corrupting every re-execution).
      if (!pending_ && burst_done(occurrence_) &&
          (activated_ || !tracking_) && !tracing_)
        detach();
      return;
    }
    if (!activated_ && tracking_) {
      track(inst);
      // Activated, or the corrupted bits were overwritten before any read:
      // either way the verdict is final — run the rest unhooked (unless
      // the tracer still needs every remaining callback).
      if ((activated_ || !tracking_) && !tracing_) detach();
    }
  }

  void on_memory(std::size_t index, const Inst& inst, std::uint64_t address,
                 unsigned size, bool is_store) override {
    (void)index;
    if (tracing_) tracer_.on_memory(inst, address, size, is_store);
  }

  void on_after(std::size_t index, const Inst& inst,
                x86::MachineState& state) override {
    // Normal taint transfer commits first; a corruption below then roots
    // on top of the just-retired architectural state.
    if (tracing_) tracer_.commit();
    if (!pending_) return;
    pending_ = false;
    if (!injected_) prime(index, inst);
    tracking_ = true;  // every fire restarts architectural tracking
    const Model& m = plan_.model();
    switch (kind_) {
      case TargetKind::Flags:
        state.rflags = m.apply(state.rflags, flag_mask_);
        if (tracing_) tracer_.plant_root_flags(executed_);
        return;
      case TargetKind::Xmm: {
        auto& lanes = state.xmm[target_reg_ - x86::kXmmBase];
        lanes[0] = m.apply(lanes[0], lane_mask_[0]);
        lanes[1] = m.apply(lanes[1], lane_mask_[1]);
        if (tracing_)
          tracer_.plant_root_xmm(target_reg_ - x86::kXmmBase, executed_);
        return;
      }
      case TargetKind::Gpr:
        state.gpr[target_reg_] = m.apply(state.gpr[target_reg_], gpr_mask_);
        if (tracing_) tracer_.plant_root_gpr(target_reg_, executed_);
        return;
      case TargetKind::None:
        return;
    }
  }

  bool tracing() const noexcept { return tracing_; }
  obs::PropSummary prop_summary() const noexcept { return tracer_.summary(); }
  bool injected() const noexcept { return injected_; }
  bool activated() const noexcept { return activated_; }
  unsigned bit() const noexcept { return bit_; }
  std::uint64_t static_site() const noexcept { return static_site_; }
  /// Absolute position of the first injection (base included).
  std::uint64_t inject_at() const noexcept { return inject_at_; }
  const char* site_opcode() const noexcept { return site_opcode_; }
  const char* site_function() const noexcept { return site_function_; }

 private:
  /// First-injection bookkeeping: site metadata plus the corruption masks,
  /// which are invariant across re-fires (same static instruction).
  void prime(std::size_t index, const Inst& inst) {
    injected_ = true;
    static_site_ = index;
    inject_at_ = executed_;
    site_opcode_ = site_op_name(inst);
    for (const x86::FunctionInfo& f : program_.functions)
      if (index >= f.entry && index < f.entry + f.size) {
        site_function_ = f.name.c_str();
        break;
      }
    saved_next_ = pending_next_;
    occurrence_ = 1;  // this injection was occurrence 0

    unsigned idxs[FaultPlan::kMaxBits];
    const RegId d = x86::dest_reg(inst);
    if (d == kNoReg) {
      // Compare: inject into EFLAGS, into the bits the following jcc reads
      // (heuristic 1) or anywhere in the low 16 flag bits without it.
      kind_ = TargetKind::Flags;
      if (model_.pinfi_flag_heuristic && pending_next_ != nullptr &&
          pending_next_->op == Op::Jcc) {
        const auto bits = x86::cond_flag_bits(pending_next_->cond);
        const auto space = static_cast<unsigned>(bits.size());
        const unsigned n = plan_.bits_for(space, idxs);
        for (unsigned i = 0; i < n; ++i)
          flag_mask_ |= std::uint64_t{1} << bits[idxs[i]];
        bit_ = bits[plan_.primary_bit(space)];
      } else {
        const unsigned n = plan_.bits_for(16, idxs);
        for (unsigned i = 0; i < n; ++i)
          flag_mask_ |= std::uint64_t{1} << idxs[i];
        bit_ = plan_.primary_bit(16);
      }
      return;
    }
    if (x86::is_xmm_class(d)) {
      kind_ = TargetKind::Xmm;
      target_reg_ = d;
      const unsigned width = dest_write_bits(inst, model_.pinfi_xmm_prune);
      const unsigned n = plan_.bits_for(width, idxs);
      for (unsigned i = 0; i < n; ++i)
        lane_mask_[idxs[i] >= 64 ? 1 : 0] |= std::uint64_t{1}
                                             << (idxs[i] % 64);
      bit_ = plan_.primary_bit(width);
      return;
    }
    kind_ = TargetKind::Gpr;
    target_reg_ = d;
    const unsigned width = dest_write_bits(inst, false);
    gpr_mask_ = plan_.mask_for(width);
    bit_ = plan_.primary_bit(width);
  }

  /// Whether the o-th execution of the armed site (0-based, counting the
  /// initial injection) gets corrupted: permanent always, intermittent on
  /// the burst pattern.
  bool fire_at(std::uint64_t o) const noexcept {
    const Model& m = plan_.model();
    if (m.kind == FaultKind::Permanent) return true;
    const std::uint64_t period = m.burst_gap + 1;
    return o % period == 0 && o / period < m.burst_length;
  }

  /// True when no occurrence >= next_o can fire any more (intermittent
  /// burst exhausted). Permanent faults never finish.
  bool burst_done(std::uint64_t next_o) const noexcept {
    const Model& m = plan_.model();
    return m.kind == FaultKind::Intermittent &&
           next_o / (m.burst_gap + 1) >= m.burst_length;
  }

  void track(const Inst& inst) {
    switch (kind_) {
      case TargetKind::Flags:
        if (x86::reads_flags(inst)) {
          const auto bits = x86::cond_flag_bits(inst.cond);
          std::uint64_t read_mask = 0;
          for (const unsigned b : bits) read_mask |= std::uint64_t{1} << b;
          if ((read_mask & flag_mask_) != 0) {
            activated_ = true;
            return;
          }
        }
        if (x86::writes_flags(inst)) tracking_ = false;
        return;
      case TargetKind::Gpr: {
        reads_.clear();
        x86::collect_reads(inst, reads_);
        if (std::find(reads_.begin(), reads_.end(), target_reg_) !=
            reads_.end()) {
          activated_ = true;
          return;
        }
        if (x86::dest_reg(inst) == target_reg_ &&
            (written_gpr_mask(inst) & gpr_mask_) == gpr_mask_)
          tracking_ = false;
        return;
      }
      case TargetKind::Xmm: {
        reads_.clear();
        x86::collect_reads(inst, reads_);
        const bool reads_reg =
            std::find(reads_.begin(), reads_.end(), target_reg_) !=
            reads_.end();
        // Scalar-double code only ever reads the low lane: a pure high-lane
        // corruption is never activated — the rationale for heuristic 2.
        if (reads_reg && lane_mask_[0] != 0) {
          activated_ = true;
          return;
        }
        if (x86::dest_reg(inst) == target_reg_) {
          const bool zeroes_high = inst.op == Op::MovsdRM ||
                                   inst.op == Op::MovqXR ||
                                   inst.op == Op::Cvtsi2sd;
          // Low lane is always rewritten; the high lane needs an
          // explicitly zeroing op to kill a high-lane corruption.
          const bool covers = lane_mask_[1] == 0 || zeroes_high;
          // Two-address SSE arithmetic rewrites the low lane only after
          // reading it (already handled as a read above).
          if (covers && !reads_reg) tracking_ = false;
        }
        return;
      }
      case TargetKind::None:
        return;
    }
  }

  const x86::Program& program_;
  ir::Category category_;
  std::uint64_t target_k_;
  FaultPlan plan_;
  FaultModel model_;

  std::uint64_t seen_ = 0;
  std::uint64_t arm_time_ = 0;
  bool pending_ = false;
  const Inst* pending_next_ = nullptr;
  const Inst* saved_next_ = nullptr;  // pending_next_ of the armed site
  bool injected_ = false;
  bool activated_ = false;
  bool tracking_ = false;
  TargetKind kind_ = TargetKind::None;
  RegId target_reg_ = kNoReg;
  unsigned bit_ = 0;
  std::uint64_t flag_mask_ = 0;
  std::uint64_t gpr_mask_ = 0;
  std::uint64_t lane_mask_[2] = {0, 0};
  std::uint64_t occurrence_ = 0;
  std::uint64_t static_site_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t inject_at_ = 0;
  const char* site_opcode_ = nullptr;    // borrows the static op-name table
  const char* site_function_ = nullptr;  // borrows the program's storage
  std::vector<RegId> reads_;
  bool tracing_ = false;
  obs::SimPropTracer tracer_;  // inert (empty) when tracing_ is false
};

/// Golden-run journal capture: one pc fingerprint (the code index) per
/// dynamic instruction, attached to the ctor's golden run only when
/// FAULTLAB_PROP is on.
class JournalHook final : public x86::SimHook {
 public:
  explicit JournalHook(obs::GoldenJournal* journal) : journal_(journal) {}
  void on_before(std::size_t index, const Inst& inst) override {
    (void)inst;
    journal_->pc.push_back(obs::sim_pc_fingerprint(index));
  }

 private:
  obs::GoldenJournal* journal_;
};

class ProfileHook final : public x86::SimHook {
 public:
  ProfileHook(const x86::Program& program, ir::Category category)
      : program_(program), category_(category) {}
  void on_before(std::size_t index, const Inst& inst) override {
    const Inst* next = index + 1 < program_.code.size()
                           ? &program_.code[index + 1]
                           : nullptr;
    if (PinfiEngine::is_target(inst, next, category_)) ++count_;
  }
  std::uint64_t count() const noexcept { return count_; }

 private:
  const x86::Program& program_;
  ir::Category category_;
  std::uint64_t count_ = 0;
};

/// Single-pass profiling hook: counts dynamic instances of every category
/// in one instrumented run.
class ProfileAllHook final : public x86::SimHook {
 public:
  explicit ProfileAllHook(const x86::Program& program) : program_(program) {}
  void on_before(std::size_t index, const Inst& inst) override {
    const Inst* next = index + 1 < program_.code.size()
                           ? &program_.code[index + 1]
                           : nullptr;
    for (ir::Category c : ir::kAllCategories)
      if (PinfiEngine::is_target(inst, next, c)) ++counts_[c];
  }
  const CategoryCounts& counts() const noexcept { return counts_; }

 private:
  const x86::Program& program_;
  CategoryCounts counts_;
};

/// Nanoseconds elapsed since `t0`, for the per-phase wall-time counters.
std::uint64_t nanos_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Record-fill tail shared by the single-lane and grouped paths: the
/// hook's injection facts plus the run's terminal state — everything
/// except outcome classification.
void fill_record(TrialRecord& record, const PinfiHook& hook,
                 const x86::SimResult& r, std::uint64_t k, bool restored) {
  record.dynamic_target = k;
  record.bit = hook.bit();
  record.static_site = hook.static_site();
  record.injected = hook.injected();
  record.site_opcode = hook.site_opcode();
  record.site_function = hook.site_function();
  record.total_instructions = r.dynamic_instructions;
  if (hook.injected())
    record.inject_instruction = hook.inject_at();  // absolute position
  if (r.trapped) {
    record.trap_pc = r.trap_pc;
    record.trap = r.trap;
  }
  record.restored = restored;
  record.delta_restored = r.delta_restored;
  record.restored_pages = static_cast<std::uint32_t>(r.restored_pages);
  if (hook.tracing()) record.prop = hook.prop_summary();
}

}  // namespace

bool PinfiEngine::is_target(const Inst& inst, const Inst* next,
                            ir::Category category) {
  // Note: prologue/epilogue and rsp/rbp-writing instructions are included
  // deliberately — corrupting stack-discipline code is exactly the class of
  // fault the paper says high-level injectors cannot reach.
  return x86::asm_in_category(inst, next, category);
}

PinfiEngine::PinfiEngine(const x86::Program& program, FaultModel model,
                         CheckpointPolicy checkpoints, Model fault_model)
    : program_(program),
      model_(model),
      fault_model_(fault_model),
      checkpoint_policy_(checkpoints) {
  if (fault_model_.target == FaultTarget::MemoryCell)
    throw std::runtime_error(
        "PINFI: memory-cell fault targets are not supported (architectural "
        "registers only)");
  obs::ScopedSpan span(obs::Tracer::global(), "golden", "engine");
  // With propagation tracing on, the one golden run doubles as the pc
  // journal capture (hooked, so it takes the slow path — paid once per
  // engine, only when FAULTLAB_PROP is set).
  trace_prop_ = obs::prop_enabled();
  JournalHook journal_hook(&journal_);
  x86::Simulator golden(program_, trace_prop_ ? &journal_hook : nullptr);
  const x86::SimResult r = golden.run();
  if (!r.completed())
    throw std::runtime_error("PINFI: golden run did not complete");
  golden_output_ = r.output;
  golden_instructions_ = r.dynamic_instructions;
  if (span.active()) {
    span.tag("tool", "PINFI");
    span.tag("instructions", golden_instructions_);
  }
}

x86::SimLimits PinfiEngine::faulty_limits() const {
  return {golden_instructions_ * 10 + 100'000};
}

std::uint64_t PinfiEngine::profile(ir::Category category) {
  ProfileHook hook(program_, category);
  x86::Simulator sim(program_, &hook);
  const x86::SimResult r = sim.run();
  if (!r.completed())
    throw std::runtime_error("PINFI: profiling run did not complete");
  return hook.count();
}

CategoryCounts PinfiEngine::profile_all() {
  obs::ScopedSpan span(obs::Tracer::global(), "profile", "engine");
  ProfileAllHook hook(program_);
  x86::Simulator sim(program_, &hook);
  x86::SimLimits limits;
  checkpoints_.clear();
  checkpoints_.set_budget(checkpoint_policy_.budget_pages);
  checkpoint_stride_ = checkpoint_policy_.effective_stride(golden_instructions_);
  limits.snapshot_stride = checkpoint_stride_;
  if (checkpoint_stride_ != 0) {
    // The snapshot sink fires between two dynamic instructions, so the
    // hook's counters at that moment are exactly the per-category instance
    // counts of the skipped prefix. add() enforces the page budget as the
    // run advances, so peak residency never exceeds it.
    limits.snapshot_sink = [this, &hook](x86::SimSnapshot&& snap) {
      checkpoints_.add(std::move(snap), hook.counts());
    };
  }
  const x86::SimResult r = sim.run(limits);
  if (!r.completed())
    throw std::runtime_error("PINFI: profiling run did not complete");
  if (obs::metrics_enabled()) {
    checkpoint_metrics().snapshots.add(checkpoints_.size());
    checkpoint_metrics().evictions.add(checkpoints_.size() -
                                       checkpoints_.live_count());
  }
  if (span.active()) {
    span.tag("tool", "PINFI");
    span.tag("snapshots", static_cast<std::uint64_t>(checkpoints_.size()));
    span.tag("stride", checkpoint_stride_);
  }
  profile_counts_ = hook.counts();
  return hook.counts();
}

std::uint64_t PinfiEngine::time_trigger_point(ir::Category category,
                                              std::uint64_t k) const {
  const std::uint64_t count = profile_counts_[category];
  if (count == 0) return 0;  // profile_all not run: use the access trigger
  // The k-th of `count` instances maps to its proportional position in
  // the golden run; +1 keeps the trigger strictly after instruction 0.
  return (k - 1) * golden_instructions_ / count + 1;
}

std::uint64_t PinfiEngine::window_of(ir::Category category,
                                     std::uint64_t k) const {
  if (fault_model_.trigger == FaultTrigger::Time) {
    const std::uint64_t t = time_trigger_point(category, k);
    if (t != 0) return checkpoints_.window_of_time(t);
  }
  return checkpoints_.window_of(category, k);
}

std::unique_ptr<TrialContext> PinfiEngine::make_context() {
  return std::make_unique<Context>(program_);
}

TrialRecord PinfiEngine::inject(ir::Category category, std::uint64_t k,
                                Rng& rng) {
  Context context(program_);
  return run_trial(context, category, k, rng);
}

TrialRecord PinfiEngine::inject_in(TrialContext* context, ir::Category category,
                                   std::uint64_t k, Rng& rng) {
  if (context == nullptr) return inject(category, k, rng);
  return run_trial(static_cast<Context&>(*context), category, k, rng);
}

TrialRecord PinfiEngine::run_trial(Context& context, ir::Category category,
                                   std::uint64_t k, Rng& rng) {
  obs::Tracer& tracer = obs::Tracer::global();
  // PINFI's historical draw space is [0, 128): the widest destination
  // (an unpruned XMM register). The plan consumes exactly one draw for
  // single-bit models, so the default model's rng stream matches the
  // pre-model code bit for bit.
  const FaultPlan plan(fault_model_, rng, 128);
  const std::uint64_t arm_time = fault_model_.trigger == FaultTrigger::Time
                                     ? time_trigger_point(category, k)
                                     : 0;
  const CheckpointStore<x86::SimSnapshot>::Entry* cp;
  {
    obs::ScopedSpan restore_span(tracer, "restore", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    cp = arm_time != 0 ? checkpoints_.before_time(arm_time)
                       : checkpoints_.before(category, k);
    if (restore_span.active())
      restore_span.tag("checkpoint", cp != nullptr ? "hit" : "miss");
    restore_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
  }
  PinfiHook hook(program_, category, k, plan, model_,
                 cp != nullptr ? cp->seen[category] : 0,
                 cp != nullptr ? cp->snapshot.executed : 0, arm_time,
                 trace_prop_ ? &journal_ : nullptr);
  context.sim.set_hook(&hook);
  trials_.fetch_add(1, std::memory_order_relaxed);
  x86::SimResult r;
  {
    obs::ScopedSpan exec_span(tracer, "execute", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    if (cp != nullptr) {
      restored_trials_.fetch_add(1, std::memory_order_relaxed);
      skipped_instructions_.fetch_add(cp->snapshot.executed,
                                      std::memory_order_relaxed);
      r = context.sim.run_from(cp->snapshot, faulty_limits());
    } else {
      r = context.sim.run(faulty_limits());
    }
    execute_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
    if (exec_span.active())
      exec_span.tag("instructions",
                    r.dynamic_instructions -
                        (cp != nullptr ? cp->snapshot.executed : 0));
  }
  context.sim.set_hook(nullptr);  // the hook dies with this call
  if (cp != nullptr) account_restore(r, cp->snapshot.executed);

  TrialRecord record;
  fill_record(record, hook, r, k, cp != nullptr);
  {
    obs::ScopedSpan classify_span(tracer, "classify", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    record.outcome = classify(hook.injected(), hook.activated(), r.trapped,
                              r.timed_out, r.output, golden_output_);
    classify_nanos_.fetch_add(nanos_since(phase_t0),
                              std::memory_order_relaxed);
  }
  return record;
}

void PinfiEngine::account_restore(const x86::SimResult& r,
                                  std::uint64_t snapshot_executed) const {
  restored_pages_.fetch_add(r.restored_pages, std::memory_order_relaxed);
  if (r.delta_restored)
    delta_restores_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    CheckpointMetrics& metrics = checkpoint_metrics();
    metrics.restores.add();
    metrics.restored_pages.add(r.restored_pages);
    metrics.skipped_instructions.add(snapshot_executed);
    if (r.delta_restored) {
      metrics.delta_restores.add();
      metrics.delta_pages.add(r.restored_pages);
      metrics.dirty_pages.record(r.restored_pages);
    }
  }
}

void PinfiEngine::inject_group(TrialContext* context, ir::Category category,
                               GroupTrial* trials, std::size_t count) {
  Context* ctx = static_cast<Context*>(context);
  if (ctx == nullptr || count == 0) {
    InjectorEngine::inject_group(context, category, trials, count);
    return;
  }
  // Lane packing needs every trial of the group to resume from the same
  // snapshot. Checkpoint lookup consumes no rng draws, so deciding
  // between the grouped and sequential paths first leaves each trial's
  // stream exactly where run_trial would read it.
  obs::Tracer& tracer = obs::Tracer::global();
  std::uint64_t arm_times[machine::kMaxLanes];
  const CheckpointStore<x86::SimSnapshot>::Entry* cp = nullptr;
  bool groupable = count > 1 && count <= machine::kMaxLanes;
  if (groupable) {
    obs::ScopedSpan restore_span(tracer, "restore", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      arm_times[i] = fault_model_.trigger == FaultTrigger::Time
                         ? time_trigger_point(category, trials[i].k)
                         : 0;
      const auto* entry = arm_times[i] != 0
                              ? checkpoints_.before_time(arm_times[i])
                              : checkpoints_.before(category, trials[i].k);
      if (i == 0) cp = entry;
      if (entry == nullptr || entry != cp) {
        groupable = false;
        break;
      }
    }
    if (restore_span.active())
      restore_span.tag("checkpoint", groupable ? "group-hit" : "group-miss");
    restore_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
  }
  if (!groupable) {
    for (std::size_t i = 0; i < count; ++i)
      *trials[i].record =
          run_trial(*ctx, category, trials[i].k, *trials[i].rng);
    return;
  }

  // Per-lane plan + hook, each from its own pre-forked rng stream; the
  // reserve keeps hook addresses stable while lanes register them.
  std::vector<PinfiHook> hooks;
  hooks.reserve(count);
  x86::Simulator* lanes[machine::kMaxLanes];
  x86::SimResult results[machine::kMaxLanes];
  for (std::size_t i = 0; i < count; ++i) {
    const FaultPlan plan(fault_model_, *trials[i].rng, 128);
    hooks.emplace_back(program_, category, trials[i].k, plan, model_,
                       cp->seen[category], cp->snapshot.executed,
                       arm_times[i], trace_prop_ ? &journal_ : nullptr);
    lanes[i] = ctx->lane(i);
    lanes[i]->set_hook(&hooks.back());
  }
  trials_.fetch_add(count, std::memory_order_relaxed);
  restored_trials_.fetch_add(count, std::memory_order_relaxed);
  skipped_instructions_.fetch_add(count * cp->snapshot.executed,
                                  std::memory_order_relaxed);
  {
    obs::ScopedSpan exec_span(tracer, "execute", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    x86::Simulator::run_lockstep(lanes, count, cp->snapshot, faulty_limits(),
                                 results);
    execute_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
    if (exec_span.active()) {
      exec_span.tag("lanes", static_cast<std::uint64_t>(count));
      exec_span.tag("instructions", results[0].dynamic_instructions -
                                        cp->snapshot.executed);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i]->set_hook(nullptr);
    account_restore(results[i], cp->snapshot.executed);
    fill_record(*trials[i].record, hooks[i], results[i], trials[i].k, true);
  }
  {
    obs::ScopedSpan classify_span(tracer, "classify", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i)
      trials[i].record->outcome = classify(
          hooks[i].injected(), hooks[i].activated(), results[i].trapped,
          results[i].timed_out, results[i].output, golden_output_);
    classify_nanos_.fetch_add(nanos_since(phase_t0),
                              std::memory_order_relaxed);
  }
}

CheckpointStats PinfiEngine::checkpoint_stats() const {
  CheckpointStats stats;
  stats.snapshots = checkpoints_.size();
  stats.stride = checkpoint_stride_;
  stats.trials = trials_.load(std::memory_order_relaxed);
  stats.restored_trials = restored_trials_.load(std::memory_order_relaxed);
  stats.skipped_instructions =
      skipped_instructions_.load(std::memory_order_relaxed);
  stats.delta_restores = delta_restores_.load(std::memory_order_relaxed);
  stats.restored_pages = restored_pages_.load(std::memory_order_relaxed);
  stats.evictions = checkpoints_.evictions();
  return stats;
}

PhaseStats PinfiEngine::phase_stats() const {
  PhaseStats p;
  p.restore_seconds =
      static_cast<double>(restore_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  p.execute_seconds =
      static_cast<double>(execute_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  p.classify_seconds =
      static_cast<double>(classify_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  return p;
}

}  // namespace faultlab::fault
