#include "fault/llfi.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "machine/dispatch.h"
#include "obs/metrics.h"
#include "obs/propagation.h"
#include "obs/trace.h"
#include "support/bitutil.h"

namespace faultlab::fault {

namespace {

/// Profiling hook: counts dynamic instances of the target set.
class ProfileHook final : public vm::ExecHook {
 public:
  ProfileHook(ir::Category category, const FaultModel& model)
      : category_(category), model_(model) {}
  void on_instruction(const ir::Instruction& instr) override {
    if (LlfiEngine::is_target(instr, category_, model_)) ++count_;
  }
  std::uint64_t count() const noexcept { return count_; }

 private:
  ir::Category category_;
  FaultModel model_;
  std::uint64_t count_ = 0;
};

/// Single-pass profiling hook: counts dynamic instances of every category
/// in one instrumented run.
class ProfileAllHook final : public vm::ExecHook {
 public:
  explicit ProfileAllHook(const FaultModel& model) : model_(model) {}
  void on_instruction(const ir::Instruction& instr) override {
    for (ir::Category c : ir::kAllCategories)
      if (LlfiEngine::is_target(instr, c, model_)) ++counts_[c];
  }
  const CategoryCounts& counts() const noexcept { return counts_; }

 private:
  FaultModel model_;
  CategoryCounts counts_;
};

/// Injection hook: corrupts the destination of dynamic instance k of the
/// category per the trial's FaultPlan, then watches for a read of a
/// corrupted dynamic value (activation). The raw draws happen up front
/// (in the plan) and are folded by the destination's width at injection
/// time, because the width is only known once the instance is reached.
/// When the trial resumes from a checkpoint, `already_seen` primes the
/// instance counter with the skipped prefix's count so the k-th instance
/// is still the k-th, and `base` primes the absolute dynamic-instruction
/// position.
///
/// Transient models keep the PR 4 fast path: one corrupted value, a
/// single id compare per operand read, final detach() on activation.
/// Persistent models (intermittent/permanent) re-fire on every later
/// execution of the armed static site per the model's burst pattern, and
/// track activation against a bounded ring of the most recent corrupted
/// values (older unread values age out of the window — an accepted
/// approximation that keeps per-read cost constant).
///
/// A nonzero `arm_time` selects the time trigger: the hook starts
/// dormant (detached with rearm_at = arm_time) and corrupts the first
/// category instruction at or after that absolute position. If the
/// executor's re-arm boundary lands past arm_time (it can, when arm_time
/// falls inside a phi group), the recorded inject position stays
/// arm_time-relative; the discrepancy is bounded by one phi group and is
/// identical for checkpointed and from-scratch runs.
class InjectHook final : public vm::ExecHook {
 public:
  /// A non-null `journal` arms the propagation tracer: after injection the
  /// hook stays attached (instead of its post-activation detaches) so the
  /// whole post-fault suffix runs on the hooked slow path and every
  /// callback feeds the tracer. Persistent models already stay attached to
  /// run end, so staying attached is semantics-identical — only slower.
  InjectHook(ir::Category category, std::uint64_t k, const FaultPlan& plan,
             const FaultModel& model, std::uint64_t already_seen,
             std::uint64_t base, std::uint64_t arm_time,
             const obs::GoldenJournal* journal = nullptr)
      : category_(category),
        target_k_(k),
        plan_(plan),
        model_(model),
        seen_(already_seen),
        arm_time_(arm_time),
        tracing_(journal != nullptr),
        tracer_(journal) {
    if (arm_time_ != 0 && arm_time_ > base + 1) {
      executed_ = arm_time_ - 1;
      detach(arm_time_);  // sleep until the trigger point
    } else {
      executed_ = base;
    }
  }

  void on_instruction(const ir::Instruction& instr) override {
    ++executed_;  // absolute dynamic-instruction position
    if (tracing_) tracer_.on_instruction(executed_, instr);
    if (!injected_) {
      if (LlfiEngine::is_target(instr, category_, model_)) {
        const bool armed = arm_time_ != 0 ? executed_ >= arm_time_
                                          : ++seen_ == target_k_;
        if (armed) pending_ = true;
      }
    } else if (plan_.model().persistent() && &instr == armed_def_) {
      const std::uint64_t o = occurrence_++;
      if (fire_at(o)) {
        pending_ = true;
      } else if (activated_ && burst_done(occurrence_) && !tracing_) {
        detach();  // burst spent and fault observed: nothing left to do
      }
    }
  }

  std::uint64_t on_result(const vm::DynValueId& id, std::uint64_t raw) override {
    if (!pending_) {
      if (tracing_) tracer_.on_result(id);
      return raw;
    }
    pending_ = false;
    const unsigned width =
        model_.llfi_type_width ? id.def->type()->register_bits() : 64;
    if (!injected_) {
      injected_ = true;
      armed_def_ = id.def;
      static_site_ = id.def->id();
      inject_at_ = executed_;
      site_opcode_ = ir::opcode_name(id.def->opcode());
      site_function_ = id.def->function()->name().c_str();
      bit_ = plan_.primary_bit(width);
      occurrence_ = 1;  // this injection was occurrence 0
    }
    if (!activated_) remember(id);
    if (tracing_) tracer_.plant_root(id, executed_);
    return plan_.corrupt(raw, width);
  }

  void on_operand_read(const vm::DynValueId& id,
                       const ir::Instruction& user) override {
    if (tracing_) tracer_.on_operand_read(id, user);
    if (!injected_ || activated_) return;
    if (!plan_.model().persistent()) {
      if (id == injected_id_) {
        activated_ = true;
        // Tracing keeps the hook attached: the tracer needs the rest of
        // the run's callbacks to follow the fault.
        if (!tracing_) detach();
      }
      return;
    }
    const std::size_t n = ring_next_ < kRing ? ring_next_ : kRing;
    for (std::size_t i = 0; i < n; ++i) {
      if (ring_[i] == id) {
        activated_ = true;
        ring_next_ = 0;  // read tracking is over; keep corrupting
        if (burst_done(occurrence_) && !tracing_) detach();
        return;
      }
    }
  }

  void on_argument_read(std::uint64_t frame, unsigned index,
                        const ir::Instruction& user) override {
    if (tracing_) tracer_.on_argument_read(frame, index, user);
  }

  void on_memory_access(const ir::Instruction& instr, std::uint64_t address,
                        unsigned size, bool is_store) override {
    if (tracing_) tracer_.on_memory_access(instr, address, size, is_store);
  }

  void on_call(const ir::CallInst& call, std::uint64_t caller_frame,
               std::uint64_t callee_frame) override {
    (void)caller_frame;
    if (tracing_) tracer_.on_call(call, callee_frame);
  }

  bool tracing() const noexcept { return tracing_; }
  obs::PropSummary prop_summary() const noexcept { return tracer_.summary(); }
  bool injected() const noexcept { return injected_; }
  bool activated() const noexcept { return activated_; }
  unsigned bit() const noexcept { return bit_; }
  std::uint64_t static_site() const noexcept { return static_site_; }
  /// Absolute position of the first injection (base included).
  std::uint64_t inject_at() const noexcept { return inject_at_; }
  const char* site_opcode() const noexcept { return site_opcode_; }
  const char* site_function() const noexcept { return site_function_; }

 private:
  static constexpr std::size_t kRing = 64;

  /// Whether the o-th execution of the armed site (0-based, counting the
  /// initial injection) gets corrupted: permanent always, intermittent on
  /// the burst pattern (burst_length fires, burst_gap clean executions
  /// between consecutive fires).
  bool fire_at(std::uint64_t o) const noexcept {
    const Model& m = plan_.model();
    if (m.kind == FaultKind::Permanent) return true;
    const std::uint64_t period = m.burst_gap + 1;
    return o % period == 0 && o / period < m.burst_length;
  }

  /// True when no occurrence >= next_o can fire any more (intermittent
  /// burst exhausted). Permanent faults never finish.
  bool burst_done(std::uint64_t next_o) const noexcept {
    const Model& m = plan_.model();
    return m.kind == FaultKind::Intermittent &&
           next_o / (m.burst_gap + 1) >= m.burst_length;
  }

  void remember(const vm::DynValueId& id) {
    if (!plan_.model().persistent()) {
      injected_id_ = id;
      return;
    }
    ring_[ring_next_ % kRing] = id;
    ++ring_next_;
  }

  ir::Category category_;
  std::uint64_t target_k_;
  FaultPlan plan_;
  FaultModel model_;
  std::uint64_t seen_ = 0;
  std::uint64_t arm_time_ = 0;
  bool pending_ = false;
  bool injected_ = false;
  bool activated_ = false;
  unsigned bit_ = 0;
  vm::DynValueId injected_id_;                 // transient activation target
  vm::DynValueId ring_[kRing];                 // persistent activation window
  std::size_t ring_next_ = 0;
  const ir::Instruction* armed_def_ = nullptr;  // static site, re-fire key
  std::uint64_t occurrence_ = 0;
  std::uint64_t static_site_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t inject_at_ = 0;
  const char* site_opcode_ = nullptr;    // borrows ir's static opcode table
  const char* site_function_ = nullptr;  // borrows the module's storage
  bool tracing_ = false;
  obs::VmPropTracer tracer_;  // inert (empty) when tracing_ is false
};

/// Golden-run journal capture: one pc fingerprint per dynamic instruction
/// (attached to the ctor's golden run only when FAULTLAB_PROP is on).
class JournalHook final : public vm::ExecHook {
 public:
  explicit JournalHook(obs::GoldenJournal* journal) : journal_(journal) {}
  void on_instruction(const ir::Instruction& instr) override {
    journal_->pc.push_back(obs::vm_pc_fingerprint(instr));
  }

 private:
  obs::GoldenJournal* journal_;
};

/// Nanoseconds elapsed since `t0`, for the per-phase wall-time counters.
std::uint64_t nanos_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Record-fill tail shared by the single-lane and grouped paths: the
/// hook's injection facts plus the run's terminal state — everything
/// except outcome classification.
void fill_record(TrialRecord& record, const InjectHook& hook,
                 const vm::RunResult& r, std::uint64_t k, bool restored) {
  record.dynamic_target = k;
  record.bit = hook.bit();
  record.static_site = hook.static_site();
  record.injected = hook.injected();
  record.site_opcode = hook.site_opcode();
  record.site_function = hook.site_function();
  record.total_instructions = r.dynamic_instructions;
  if (hook.injected())
    record.inject_instruction = hook.inject_at();  // absolute position
  if (r.trapped) {
    record.trap_pc = r.trap_pc;
    record.trap = r.trap;
  }
  record.restored = restored;
  record.delta_restored = r.delta_restored;
  record.restored_pages = static_cast<std::uint32_t>(r.restored_pages);
  if (hook.tracing()) record.prop = hook.prop_summary();
}

}  // namespace

bool LlfiEngine::is_target(const ir::Instruction& instr, ir::Category category,
                           const FaultModel& model) {
  if (!instr.has_uses()) return false;  // LLFI's def-use activation filter
  if (ir::ir_in_category(instr, category)) return true;
  // Section VII ablation: count getelementptr as arithmetic.
  return model.llfi_gep_as_arithmetic &&
         category == ir::Category::Arithmetic &&
         instr.opcode() == ir::Opcode::Gep && ir::ir_injectable(instr);
}

LlfiEngine::LlfiEngine(const ir::Module& module, FaultModel model,
                       CheckpointPolicy checkpoints, Model fault_model)
    : module_(module),
      model_(model),
      fault_model_(fault_model),
      checkpoint_policy_(checkpoints) {
  if (fault_model_.target == FaultTarget::MemoryCell)
    throw std::runtime_error(
        "LLFI: memory-cell fault targets are not supported (register "
        "destinations only)");
  obs::ScopedSpan span(obs::Tracer::global(), "golden", "engine");
  // With propagation tracing on, the one golden run doubles as the pc
  // journal capture (hooked, so it takes the slow path — paid once per
  // engine, only when FAULTLAB_PROP is set).
  trace_prop_ = obs::prop_enabled();
  JournalHook journal_hook(&journal_);
  vm::Interpreter golden(module_, trace_prop_ ? &journal_hook : nullptr);
  const vm::RunResult r = golden.run();
  if (!r.completed())
    throw std::runtime_error("LLFI: golden run did not complete");
  golden_output_ = r.output;
  golden_instructions_ = r.dynamic_instructions;
  if (span.active()) {
    span.tag("tool", "LLFI");
    span.tag("instructions", golden_instructions_);
  }
}

vm::RunLimits LlfiEngine::faulty_limits() const {
  // The paper detects hangs as "substantially longer than the golden run".
  return {golden_instructions_ * 10 + 100'000};
}

std::uint64_t LlfiEngine::profile(ir::Category category) {
  ProfileHook hook(category, model_);
  vm::Interpreter interp(module_, &hook);
  const vm::RunResult r = interp.run();
  if (!r.completed())
    throw std::runtime_error("LLFI: profiling run did not complete");
  return hook.count();
}

CategoryCounts LlfiEngine::profile_all() {
  obs::ScopedSpan span(obs::Tracer::global(), "profile", "engine");
  ProfileAllHook hook(model_);
  vm::Interpreter interp(module_, &hook);
  vm::RunLimits limits;
  checkpoints_.clear();
  checkpoints_.set_budget(checkpoint_policy_.budget_pages);
  checkpoint_stride_ = checkpoint_policy_.effective_stride(golden_instructions_);
  limits.snapshot_stride = checkpoint_stride_;
  if (checkpoint_stride_ != 0) {
    // The snapshot sink fires between two dynamic instructions, so the
    // hook's counters at that moment are exactly the per-category instance
    // counts of the skipped prefix. add() enforces the page budget as the
    // run advances, so peak residency never exceeds it.
    limits.snapshot_sink = [this, &hook](vm::Snapshot&& snap) {
      checkpoints_.add(std::move(snap), hook.counts());
    };
  }
  const vm::RunResult r = interp.run("main", limits);
  if (!r.completed())
    throw std::runtime_error("LLFI: profiling run did not complete");
  if (obs::metrics_enabled()) {
    checkpoint_metrics().snapshots.add(checkpoints_.size());
    checkpoint_metrics().evictions.add(checkpoints_.size() -
                                       checkpoints_.live_count());
  }
  if (span.active()) {
    span.tag("tool", "LLFI");
    span.tag("snapshots", static_cast<std::uint64_t>(checkpoints_.size()));
    span.tag("stride", checkpoint_stride_);
  }
  profile_counts_ = hook.counts();
  return hook.counts();
}

std::uint64_t LlfiEngine::time_trigger_point(ir::Category category,
                                             std::uint64_t k) const {
  const std::uint64_t count = profile_counts_[category];
  if (count == 0) return 0;  // profile_all not run: use the access trigger
  // The k-th of `count` instances maps to its proportional position in
  // the golden run; +1 keeps the trigger strictly after instruction 0.
  return (k - 1) * golden_instructions_ / count + 1;
}

std::uint64_t LlfiEngine::window_of(ir::Category category,
                                    std::uint64_t k) const {
  if (fault_model_.trigger == FaultTrigger::Time) {
    const std::uint64_t t = time_trigger_point(category, k);
    if (t != 0) return checkpoints_.window_of_time(t);
  }
  return checkpoints_.window_of(category, k);
}

std::unique_ptr<TrialContext> LlfiEngine::make_context() {
  return std::make_unique<Context>(module_);
}

TrialRecord LlfiEngine::inject(ir::Category category, std::uint64_t k,
                               Rng& rng) {
  Context context(module_);
  return run_trial(context, category, k, rng);
}

TrialRecord LlfiEngine::inject_in(TrialContext* context, ir::Category category,
                                  std::uint64_t k, Rng& rng) {
  if (context == nullptr) return inject(category, k, rng);
  return run_trial(static_cast<Context&>(*context), category, k, rng);
}

TrialRecord LlfiEngine::run_trial(Context& context, ir::Category category,
                                  std::uint64_t k, Rng& rng) {
  obs::Tracer& tracer = obs::Tracer::global();
  // LLFI's historical draw space is [0, 64): the full register width. The
  // plan consumes exactly one draw for single-bit models, so the default
  // model's rng stream matches the pre-model code bit for bit.
  const FaultPlan plan(fault_model_, rng, 64);
  const std::uint64_t arm_time = fault_model_.trigger == FaultTrigger::Time
                                     ? time_trigger_point(category, k)
                                     : 0;
  const CheckpointStore<vm::Snapshot>::Entry* cp;
  {
    obs::ScopedSpan restore_span(tracer, "restore", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    cp = arm_time != 0 ? checkpoints_.before_time(arm_time)
                       : checkpoints_.before(category, k);
    if (restore_span.active())
      restore_span.tag("checkpoint", cp != nullptr ? "hit" : "miss");
    restore_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
  }
  InjectHook hook(category, k, plan, model_,
                  cp != nullptr ? cp->seen[category] : 0,
                  cp != nullptr ? cp->snapshot.executed : 0, arm_time,
                  trace_prop_ ? &journal_ : nullptr);
  context.interp.set_hook(&hook);
  trials_.fetch_add(1, std::memory_order_relaxed);
  vm::RunResult r;
  {
    obs::ScopedSpan exec_span(tracer, "execute", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    if (cp != nullptr) {
      restored_trials_.fetch_add(1, std::memory_order_relaxed);
      skipped_instructions_.fetch_add(cp->snapshot.executed,
                                      std::memory_order_relaxed);
      r = context.interp.run_from(cp->snapshot, faulty_limits());
    } else {
      r = context.interp.run("main", faulty_limits());
    }
    execute_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
    if (exec_span.active())
      exec_span.tag("instructions",
                    r.dynamic_instructions -
                        (cp != nullptr ? cp->snapshot.executed : 0));
  }
  context.interp.set_hook(nullptr);  // the hook dies with this call
  if (cp != nullptr) account_restore(r, cp->snapshot.executed);

  TrialRecord record;
  fill_record(record, hook, r, k, cp != nullptr);
  {
    obs::ScopedSpan classify_span(tracer, "classify", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    record.outcome = classify(hook.injected(), hook.activated(), r.trapped,
                              r.timed_out, r.output, golden_output_);
    classify_nanos_.fetch_add(nanos_since(phase_t0),
                              std::memory_order_relaxed);
  }
  return record;
}

void LlfiEngine::account_restore(const vm::RunResult& r,
                                 std::uint64_t snapshot_executed) const {
  restored_pages_.fetch_add(r.restored_pages, std::memory_order_relaxed);
  if (r.delta_restored)
    delta_restores_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    CheckpointMetrics& metrics = checkpoint_metrics();
    metrics.restores.add();
    metrics.restored_pages.add(r.restored_pages);
    metrics.skipped_instructions.add(snapshot_executed);
    if (r.delta_restored) {
      metrics.delta_restores.add();
      metrics.delta_pages.add(r.restored_pages);
      metrics.dirty_pages.record(r.restored_pages);
    }
  }
}

void LlfiEngine::inject_group(TrialContext* context, ir::Category category,
                              GroupTrial* trials, std::size_t count) {
  Context* ctx = static_cast<Context*>(context);
  if (ctx == nullptr || count == 0) {
    InjectorEngine::inject_group(context, category, trials, count);
    return;
  }
  // Lane packing needs every trial of the group to resume from the same
  // snapshot. Checkpoint lookup consumes no rng draws, so deciding
  // between the grouped and sequential paths first leaves each trial's
  // stream exactly where run_trial would read it.
  obs::Tracer& tracer = obs::Tracer::global();
  std::uint64_t arm_times[machine::kMaxLanes];
  const CheckpointStore<vm::Snapshot>::Entry* cp = nullptr;
  bool groupable = count > 1 && count <= machine::kMaxLanes;
  if (groupable) {
    obs::ScopedSpan restore_span(tracer, "restore", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      arm_times[i] = fault_model_.trigger == FaultTrigger::Time
                         ? time_trigger_point(category, trials[i].k)
                         : 0;
      const auto* entry = arm_times[i] != 0
                              ? checkpoints_.before_time(arm_times[i])
                              : checkpoints_.before(category, trials[i].k);
      if (i == 0) cp = entry;
      if (entry == nullptr || entry != cp) {
        groupable = false;
        break;
      }
    }
    if (restore_span.active())
      restore_span.tag("checkpoint", groupable ? "group-hit" : "group-miss");
    restore_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
  }
  if (!groupable) {
    for (std::size_t i = 0; i < count; ++i)
      *trials[i].record =
          run_trial(*ctx, category, trials[i].k, *trials[i].rng);
    return;
  }

  // Per-lane plan + hook, each from its own pre-forked rng stream; the
  // reserve keeps hook addresses stable while lanes register them.
  std::vector<InjectHook> hooks;
  hooks.reserve(count);
  vm::Interpreter* lanes[machine::kMaxLanes];
  vm::RunResult results[machine::kMaxLanes];
  for (std::size_t i = 0; i < count; ++i) {
    const FaultPlan plan(fault_model_, *trials[i].rng, 64);
    hooks.emplace_back(category, trials[i].k, plan, model_,
                       cp->seen[category], cp->snapshot.executed,
                       arm_times[i], trace_prop_ ? &journal_ : nullptr);
    lanes[i] = ctx->lane(i);
    lanes[i]->set_hook(&hooks.back());
  }
  trials_.fetch_add(count, std::memory_order_relaxed);
  restored_trials_.fetch_add(count, std::memory_order_relaxed);
  skipped_instructions_.fetch_add(count * cp->snapshot.executed,
                                  std::memory_order_relaxed);
  {
    obs::ScopedSpan exec_span(tracer, "execute", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    vm::Interpreter::run_lockstep(lanes, count, cp->snapshot,
                                  faulty_limits(), results);
    execute_nanos_.fetch_add(nanos_since(phase_t0),
                             std::memory_order_relaxed);
    if (exec_span.active()) {
      exec_span.tag("lanes", static_cast<std::uint64_t>(count));
      exec_span.tag("instructions", results[0].dynamic_instructions -
                                        cp->snapshot.executed);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i]->set_hook(nullptr);
    account_restore(results[i], cp->snapshot.executed);
    fill_record(*trials[i].record, hooks[i], results[i], trials[i].k, true);
  }
  {
    obs::ScopedSpan classify_span(tracer, "classify", "phase");
    const auto phase_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i)
      trials[i].record->outcome = classify(
          hooks[i].injected(), hooks[i].activated(), results[i].trapped,
          results[i].timed_out, results[i].output, golden_output_);
    classify_nanos_.fetch_add(nanos_since(phase_t0),
                              std::memory_order_relaxed);
  }
}

CheckpointStats LlfiEngine::checkpoint_stats() const {
  CheckpointStats stats;
  stats.snapshots = checkpoints_.size();
  stats.stride = checkpoint_stride_;
  stats.trials = trials_.load(std::memory_order_relaxed);
  stats.restored_trials = restored_trials_.load(std::memory_order_relaxed);
  stats.skipped_instructions =
      skipped_instructions_.load(std::memory_order_relaxed);
  stats.delta_restores = delta_restores_.load(std::memory_order_relaxed);
  stats.restored_pages = restored_pages_.load(std::memory_order_relaxed);
  stats.evictions = checkpoints_.evictions();
  return stats;
}

PhaseStats LlfiEngine::phase_stats() const {
  PhaseStats p;
  p.restore_seconds =
      static_cast<double>(restore_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  p.execute_seconds =
      static_cast<double>(execute_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  p.classify_seconds =
      static_cast<double>(classify_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  return p;
}

}  // namespace faultlab::fault
