#include "fault/llfi.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/bitutil.h"

namespace faultlab::fault {

namespace {

/// Profiling hook: counts dynamic instances of the target set.
class ProfileHook final : public vm::ExecHook {
 public:
  ProfileHook(ir::Category category, const FaultModel& model)
      : category_(category), model_(model) {}
  void on_instruction(const ir::Instruction& instr) override {
    if (LlfiEngine::is_target(instr, category_, model_)) ++count_;
  }
  std::uint64_t count() const noexcept { return count_; }

 private:
  ir::Category category_;
  FaultModel model_;
  std::uint64_t count_ = 0;
};

/// Single-pass profiling hook: counts dynamic instances of every category
/// in one instrumented run.
class ProfileAllHook final : public vm::ExecHook {
 public:
  explicit ProfileAllHook(const FaultModel& model) : model_(model) {}
  void on_instruction(const ir::Instruction& instr) override {
    for (ir::Category c : ir::kAllCategories)
      if (LlfiEngine::is_target(instr, c, model_)) ++counts_[c];
  }
  const CategoryCounts& counts() const noexcept { return counts_; }

 private:
  FaultModel model_;
  CategoryCounts counts_;
};

/// Injection hook: flips one bit in the destination of dynamic instance k
/// of the category, then watches for a read of that exact dynamic value
/// (activation). The bit index is drawn uniformly in [0,64) up front and
/// folded by the destination's width at injection time, because the width
/// is only known once the instance is reached. When the trial resumes from
/// a checkpoint, `already_seen` primes the instance counter with the
/// skipped prefix's count so the k-th instance is still the k-th.
class InjectHook final : public vm::ExecHook {
 public:
  InjectHook(ir::Category category, std::uint64_t k, unsigned raw_bit,
             const FaultModel& model, std::uint64_t already_seen = 0)
      : category_(category),
        target_k_(k),
        raw_bit_(raw_bit),
        model_(model),
        seen_(already_seen) {}

  void on_instruction(const ir::Instruction& instr) override {
    ++executed_;  // dynamic instructions observed while attached
    if (!injected_ && LlfiEngine::is_target(instr, category_, model_)) {
      if (++seen_ == target_k_) pending_ = true;
    }
  }

  std::uint64_t on_result(const vm::DynValueId& id, std::uint64_t raw) override {
    if (!pending_) return raw;
    pending_ = false;
    injected_ = true;
    injected_id_ = id;
    static_site_ = id.def->id();
    inject_at_ = executed_;  // relative to attach; engine adds the prefix
    site_opcode_ = ir::opcode_name(id.def->opcode());
    site_function_ = id.def->function()->name().c_str();
    const unsigned width =
        model_.llfi_type_width ? id.def->type()->register_bits() : 64;
    bit_ = raw_bit_ % width;
    return flip_bit(raw, bit_);
  }

  void on_operand_read(const vm::DynValueId& id,
                       const ir::Instruction& user) override {
    (void)user;
    if (injected_ && !activated_ && id == injected_id_) {
      activated_ = true;
      detach();  // nothing left to observe: run the rest unhooked
    }
  }

  bool injected() const noexcept { return injected_; }
  bool activated() const noexcept { return activated_; }
  unsigned bit() const noexcept { return bit_; }
  std::uint64_t static_site() const noexcept { return static_site_; }
  std::uint64_t inject_at() const noexcept { return inject_at_; }
  const char* site_opcode() const noexcept { return site_opcode_; }
  const char* site_function() const noexcept { return site_function_; }

 private:
  ir::Category category_;
  std::uint64_t target_k_;
  unsigned raw_bit_;
  FaultModel model_;
  std::uint64_t seen_ = 0;
  bool pending_ = false;
  bool injected_ = false;
  bool activated_ = false;
  unsigned bit_ = 0;
  vm::DynValueId injected_id_;
  std::uint64_t static_site_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t inject_at_ = 0;
  const char* site_opcode_ = nullptr;    // borrows ir's static opcode table
  const char* site_function_ = nullptr;  // borrows the module's storage
};

}  // namespace

bool LlfiEngine::is_target(const ir::Instruction& instr, ir::Category category,
                           const FaultModel& model) {
  if (!instr.has_uses()) return false;  // LLFI's def-use activation filter
  if (ir::ir_in_category(instr, category)) return true;
  // Section VII ablation: count getelementptr as arithmetic.
  return model.llfi_gep_as_arithmetic &&
         category == ir::Category::Arithmetic &&
         instr.opcode() == ir::Opcode::Gep && ir::ir_injectable(instr);
}

LlfiEngine::LlfiEngine(const ir::Module& module, FaultModel model,
                       CheckpointPolicy checkpoints)
    : module_(module), model_(model), checkpoint_policy_(checkpoints) {
  obs::ScopedSpan span(obs::Tracer::global(), "golden", "engine");
  vm::Interpreter golden(module_);
  const vm::RunResult r = golden.run();
  if (!r.completed())
    throw std::runtime_error("LLFI: golden run did not complete");
  golden_output_ = r.output;
  golden_instructions_ = r.dynamic_instructions;
  if (span.active()) {
    span.tag("tool", "LLFI");
    span.tag("instructions", golden_instructions_);
  }
}

vm::RunLimits LlfiEngine::faulty_limits() const {
  // The paper detects hangs as "substantially longer than the golden run".
  return {golden_instructions_ * 10 + 100'000};
}

std::uint64_t LlfiEngine::profile(ir::Category category) {
  ProfileHook hook(category, model_);
  vm::Interpreter interp(module_, &hook);
  const vm::RunResult r = interp.run();
  if (!r.completed())
    throw std::runtime_error("LLFI: profiling run did not complete");
  return hook.count();
}

CategoryCounts LlfiEngine::profile_all() {
  obs::ScopedSpan span(obs::Tracer::global(), "profile", "engine");
  ProfileAllHook hook(model_);
  vm::Interpreter interp(module_, &hook);
  vm::RunLimits limits;
  checkpoints_.clear();
  checkpoints_.set_budget(checkpoint_policy_.budget_pages);
  checkpoint_stride_ = checkpoint_policy_.effective_stride(golden_instructions_);
  limits.snapshot_stride = checkpoint_stride_;
  if (checkpoint_stride_ != 0) {
    // The snapshot sink fires between two dynamic instructions, so the
    // hook's counters at that moment are exactly the per-category instance
    // counts of the skipped prefix. add() enforces the page budget as the
    // run advances, so peak residency never exceeds it.
    limits.snapshot_sink = [this, &hook](vm::Snapshot&& snap) {
      checkpoints_.add(std::move(snap), hook.counts());
    };
  }
  const vm::RunResult r = interp.run("main", limits);
  if (!r.completed())
    throw std::runtime_error("LLFI: profiling run did not complete");
  if (obs::metrics_enabled()) {
    checkpoint_metrics().snapshots.add(checkpoints_.size());
    checkpoint_metrics().evictions.add(checkpoints_.size() -
                                       checkpoints_.live_count());
  }
  if (span.active()) {
    span.tag("tool", "LLFI");
    span.tag("snapshots", static_cast<std::uint64_t>(checkpoints_.size()));
    span.tag("stride", checkpoint_stride_);
  }
  return hook.counts();
}

std::uint64_t LlfiEngine::window_of(ir::Category category,
                                    std::uint64_t k) const {
  return checkpoints_.window_of(category, k);
}

std::unique_ptr<TrialContext> LlfiEngine::make_context() {
  return std::make_unique<Context>(module_);
}

TrialRecord LlfiEngine::inject(ir::Category category, std::uint64_t k,
                               Rng& rng) {
  Context context(module_);
  return run_trial(context, category, k, rng);
}

TrialRecord LlfiEngine::inject_in(TrialContext* context, ir::Category category,
                                  std::uint64_t k, Rng& rng) {
  if (context == nullptr) return inject(category, k, rng);
  return run_trial(static_cast<Context&>(*context), category, k, rng);
}

TrialRecord LlfiEngine::run_trial(Context& context, ir::Category category,
                                  std::uint64_t k, Rng& rng) {
  obs::Tracer& tracer = obs::Tracer::global();
  const unsigned raw_bit = static_cast<unsigned>(rng.below(64));
  const CheckpointStore<vm::Snapshot>::Entry* cp;
  {
    obs::ScopedSpan restore_span(tracer, "restore", "phase");
    cp = checkpoints_.before(category, k);
    if (restore_span.active())
      restore_span.tag("checkpoint", cp != nullptr ? "hit" : "miss");
  }
  InjectHook hook(category, k, raw_bit, model_,
                  cp != nullptr ? cp->seen[category] : 0);
  context.interp.set_hook(&hook);
  trials_.fetch_add(1, std::memory_order_relaxed);
  vm::RunResult r;
  {
    obs::ScopedSpan exec_span(tracer, "execute", "phase");
    if (cp != nullptr) {
      restored_trials_.fetch_add(1, std::memory_order_relaxed);
      skipped_instructions_.fetch_add(cp->snapshot.executed,
                                      std::memory_order_relaxed);
      r = context.interp.run_from(cp->snapshot, faulty_limits());
    } else {
      r = context.interp.run("main", faulty_limits());
    }
    if (exec_span.active())
      exec_span.tag("instructions",
                    r.dynamic_instructions -
                        (cp != nullptr ? cp->snapshot.executed : 0));
  }
  context.interp.set_hook(nullptr);  // the hook dies with this call
  if (cp != nullptr) {
    restored_pages_.fetch_add(r.restored_pages, std::memory_order_relaxed);
    if (r.delta_restored)
      delta_restores_.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::metrics_enabled()) {
    CheckpointMetrics& metrics = checkpoint_metrics();
    if (cp != nullptr) {
      metrics.restores.add();
      metrics.restored_pages.add(r.restored_pages);
      metrics.skipped_instructions.add(cp->snapshot.executed);
      if (r.delta_restored) {
        metrics.delta_restores.add();
        metrics.delta_pages.add(r.restored_pages);
        metrics.dirty_pages.record(r.restored_pages);
      }
    }
  }

  TrialRecord record;
  record.dynamic_target = k;
  record.bit = hook.bit();
  record.static_site = hook.static_site();
  record.injected = hook.injected();
  record.site_opcode = hook.site_opcode();
  record.site_function = hook.site_function();
  record.total_instructions = r.dynamic_instructions;
  if (hook.injected())
    record.inject_instruction =
        (cp != nullptr ? cp->snapshot.executed : 0) + hook.inject_at();
  if (r.trapped) record.trap_pc = r.trap_pc;
  record.restored = cp != nullptr;
  record.delta_restored = r.delta_restored;
  record.restored_pages = static_cast<std::uint32_t>(r.restored_pages);
  {
    obs::ScopedSpan classify_span(tracer, "classify", "phase");
    record.outcome = classify(hook.injected(), hook.activated(), r.trapped,
                              r.timed_out, r.output, golden_output_);
  }
  if (r.trapped) record.trap = r.trap;
  return record;
}

CheckpointStats LlfiEngine::checkpoint_stats() const {
  CheckpointStats stats;
  stats.snapshots = checkpoints_.size();
  stats.stride = checkpoint_stride_;
  stats.trials = trials_.load(std::memory_order_relaxed);
  stats.restored_trials = restored_trials_.load(std::memory_order_relaxed);
  stats.skipped_instructions =
      skipped_instructions_.load(std::memory_order_relaxed);
  stats.delta_restores = delta_restores_.load(std::memory_order_relaxed);
  stats.restored_pages = restored_pages_.load(std::memory_order_relaxed);
  stats.evictions = checkpoints_.evictions();
  return stats;
}

}  // namespace faultlab::fault
