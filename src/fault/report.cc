#include "fault/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "machine/trap.h"
#include "support/table.h"

namespace faultlab::fault {

namespace {

std::string pct(const Proportion& p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", p.percent());
  return buf;
}

std::string pct_ci(const Proportion& p) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f%% ±%.1f", p.percent(),
                p.margin95() * 100.0);
  return buf;
}

const ir::Category kSubCategories[] = {
    ir::Category::Arithmetic, ir::Category::Cast, ir::Category::Cmp,
    ir::Category::Load};

}  // namespace

const CampaignResult* ResultSet::find(const std::string& app,
                                      const std::string& tool,
                                      ir::Category category) const noexcept {
  for (const auto& r : results_)
    if (r.app == app && r.tool == tool && r.category == category) return &r;
  return nullptr;
}

std::vector<std::string> ResultSet::apps() const {
  std::vector<std::string> out;
  for (const auto& r : results_)
    if (std::find(out.begin(), out.end(), r.app) == out.end())
      out.push_back(r.app);
  return out;
}

std::string render_figure3(const ResultSet& rs) {
  TextTable table({"Benchmark", "Tool", "Crash", "SDC", "Benign", "Hang",
                   "activated trials"});
  double crash_sum[2] = {0, 0}, sdc_sum[2] = {0, 0};
  int counts[2] = {0, 0};
  for (const std::string& app : rs.apps()) {
    for (int t = 0; t < 2; ++t) {
      const char* tool = t == 0 ? "LLFI" : "PINFI";
      const CampaignResult* r = rs.find(app, tool, ir::Category::All);
      if (r == nullptr) continue;
      if (r->activated() == 0) {
        // Rates are undefined over zero activated trials: render '-' and
        // keep the row out of the unweighted average (the same guard
        // Figure 4 and Table V apply).
        table.add_row({app, tool, "-", "-", "-", "-", "0"});
        continue;
      }
      table.add_row({app, tool, pct(r->crash_rate()), pct(r->sdc_rate()),
                     pct(r->benign_rate()), pct(r->hang_rate()),
                     std::to_string(r->activated())});
      crash_sum[t] += r->crash_rate().percent();
      sdc_sum[t] += r->sdc_rate().percent();
      ++counts[t];
    }
  }
  for (int t = 0; t < 2; ++t) {
    if (counts[t] == 0) continue;
    char crash[16], sdc[16];
    std::snprintf(crash, sizeof crash, "%.1f%%", crash_sum[t] / counts[t]);
    std::snprintf(sdc, sizeof sdc, "%.1f%%", sdc_sum[t] / counts[t]);
    table.add_row({"average", t == 0 ? "LLFI" : "PINFI", crash, sdc, "", "",
                   ""});
  }
  std::ostringstream os;
  os << "Figure 3: aggregated fault injection results (crash/SDC/benign), "
        "'all' instructions\n"
     << table.to_string();
  return os.str();
}

std::string render_table4(const ResultSet& rs) {
  TextTable table({"Program", "Tool", "All", "Arithmetic", "Cast", "Cmp",
                   "Load"});
  for (const std::string& app : rs.apps()) {
    for (const char* tool : {"LLFI", "PINFI"}) {
      const CampaignResult* all = rs.find(app, tool, ir::Category::All);
      if (all == nullptr) continue;
      std::vector<std::string> row{app, tool,
                                   format_count(all->profiled_count)};
      for (ir::Category c : kSubCategories) {
        const CampaignResult* r = rs.find(app, tool, c);
        if (r == nullptr) {
          row.push_back("-");
          continue;
        }
        char buf[48];
        const double share =
            all->profiled_count == 0
                ? 0.0
                : 100.0 * static_cast<double>(r->profiled_count) /
                      static_cast<double>(all->profiled_count);
        std::snprintf(buf, sizeof buf, "%s (%.0f%%)",
                      format_count(r->profiled_count).c_str(), share);
        row.push_back(buf);
      }
      table.add_row(std::move(row));
    }
  }
  std::ostringstream os;
  os << "Table IV: runtime (dynamic) instructions per category\n"
     << table.to_string();
  return os.str();
}

std::string render_figure4(const ResultSet& rs) {
  std::ostringstream os;
  os << "Figure 4: SDC percentage (among activated faults) with 95% CI\n";
  const ir::Category order[] = {ir::Category::Arithmetic, ir::Category::Cast,
                                ir::Category::Cmp, ir::Category::Load,
                                ir::Category::All};
  const char* names[] = {"(a) arithmetic", "(b) cast", "(c) cmp", "(d) load",
                         "(e) all"};
  for (std::size_t i = 0; i < std::size(order); ++i) {
    TextTable table({"Benchmark", "LLFI SDC", "PINFI SDC", "CIs overlap"});
    for (const std::string& app : rs.apps()) {
      const CampaignResult* l = rs.find(app, "LLFI", order[i]);
      const CampaignResult* p = rs.find(app, "PINFI", order[i]);
      std::vector<std::string> row{app};
      row.push_back(l != nullptr ? pct_ci(l->sdc_rate()) : "-");
      row.push_back(p != nullptr ? pct_ci(p->sdc_rate()) : "-");
      if (l != nullptr && p != nullptr && l->activated() > 0 &&
          p->activated() > 0)
        row.push_back(
            Proportion::overlap95(l->sdc_rate(), p->sdc_rate()) ? "yes" : "NO");
      else
        row.push_back("-");
      table.add_row(std::move(row));
    }
    os << names[i] << "\n" << table.to_string();
  }
  return os.str();
}

std::string render_table5(const ResultSet& rs) {
  TextTable table({"Program", "All L/P", "arith L/P", "Cast L/P", "Cmp L/P",
                   "Load L/P"});
  const ir::Category order[] = {ir::Category::All, ir::Category::Arithmetic,
                                ir::Category::Cast, ir::Category::Cmp,
                                ir::Category::Load};
  for (const std::string& app : rs.apps()) {
    std::vector<std::string> row{app};
    for (ir::Category c : order) {
      const CampaignResult* l = rs.find(app, "LLFI", c);
      const CampaignResult* p = rs.find(app, "PINFI", c);
      std::string cell;
      cell += l != nullptr && l->activated() > 0 ? pct(l->crash_rate()) : "-";
      cell += " / ";
      cell += p != nullptr && p->activated() > 0 ? pct(p->crash_rate()) : "-";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "Table V: crash percentage (LLFI / PINFI)\n" << table.to_string();
  return os.str();
}

CsvWriter results_csv(const ResultSet& rs) {
  // One crash-count column per trap kind, in enum order; `dominant_trap`
  // names the kind that killed the most trials ("-" when nothing crashed,
  // first-in-enum-order on ties). Counts walk the records in draw order,
  // so the columns are deterministic across thread counts.
  constexpr machine::TrapKind kTrapKinds[] = {
      machine::TrapKind::UnmappedAccess, machine::TrapKind::DivideByZero,
      machine::TrapKind::InvalidJump,    machine::TrapKind::StackOverflow,
      machine::TrapKind::BadFree,        machine::TrapKind::Unreachable};
  CsvWriter csv({"app", "tool", "category", "fault_model", "profiled_count",
                 "trials",
                 "activated", "crash", "sdc", "benign", "hang",
                 "not_activated", "crash_pct", "sdc_pct", "sdc_margin95",
                 "trap_unmapped_access", "trap_divide_by_zero",
                 "trap_invalid_jump", "trap_stack_overflow", "trap_bad_free",
                 "trap_unreachable", "dominant_trap"});
  for (const auto& r : rs.all()) {
    char crash[24], sdc[24], margin[24];
    std::snprintf(crash, sizeof crash, "%.4f", r.crash_rate().percent());
    std::snprintf(sdc, sizeof sdc, "%.4f", r.sdc_rate().percent());
    std::snprintf(margin, sizeof margin, "%.4f",
                  r.sdc_rate().margin95() * 100.0);
    std::size_t trap_counts[std::size(kTrapKinds)] = {};
    for (const TrialRecord& t : r.trials)
      if (t.outcome == Outcome::Crash)
        ++trap_counts[static_cast<std::size_t>(t.trap)];
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < std::size(kTrapKinds); ++i)
      if (trap_counts[i] > trap_counts[dominant]) dominant = i;
    const char* dominant_name =
        trap_counts[dominant] != 0
            ? machine::trap_kind_name(kTrapKinds[dominant])
            : "-";
    csv.add_row({r.app, r.tool, ir::category_name(r.category), r.fault_model,
                 std::to_string(r.profiled_count),
                 std::to_string(r.trials.size()),
                 std::to_string(r.activated()), std::to_string(r.crash),
                 std::to_string(r.sdc), std::to_string(r.benign),
                 std::to_string(r.hang), std::to_string(r.not_activated),
                 crash, sdc, margin, std::to_string(trap_counts[0]),
                 std::to_string(trap_counts[1]),
                 std::to_string(trap_counts[2]),
                 std::to_string(trap_counts[3]),
                 std::to_string(trap_counts[4]),
                 std::to_string(trap_counts[5]), dominant_name});
  }
  return csv;
}

}  // namespace faultlab::fault
