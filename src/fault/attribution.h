// Crash-divergence attribution — *why* do the tools disagree?
//
// compare.cc reports that LLFI and PINFI crash rates diverge per cell;
// this layer decomposes each cell's divergence by injection site. Every
// trial record carries the opcode and function of the site it corrupted
// (fault/outcome.h flight-recorder fields), so the crash rate of a cell
// factors exactly into per-opcode terms. Opcodes are first folded into
// *mapping classes* — a shared vocabulary where IR `getelementptr` and asm
// `lea` land in the same "gep" bucket, `phi`/reg-movs in "phi/mov",
// `call`/`push`/`pop`/`ret` in "call", and so on — because the paper's
// explanation for the divergence is precisely these mapping mismatches:
// address arithmetic, register shuffling, and stack discipline exist at
// the assembly level but have no injectable IR counterpart (or vice
// versa).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fault/compare.h"

namespace faultlab::fault {

/// Folds an engine-reported opcode name (IR or asm mnemonic) into the
/// shared mapping-class vocabulary: "arith", "cmp", "load", "store",
/// "gep", "cast", "phi/mov", "call", "control", "alloca", or "other".
/// Null or unknown names map to "other".
const char* opcode_class(const char* opcode) noexcept;

/// Per-opcode outcome breakdown of one campaign. Rates are over the
/// opcode's *activated* trials, mirroring the paper's convention.
struct OpcodeBreakdown {
  std::string opcode;        ///< opcode name as recorded by the engine
  std::string opcode_class;  ///< shared mapping class (opcode_class())
  std::size_t injected = 0;
  std::size_t activated = 0;
  std::size_t crash = 0;
  std::size_t sdc = 0;
  std::size_t benign = 0;
  std::size_t hang = 0;
  Proportion crash_rate() const noexcept { return {crash, activated}; }
  Proportion sdc_rate() const noexcept { return {sdc, activated}; }
};

/// Groups `r.trials` by site opcode (descending by activated count, ties
/// by name). Trials that never injected are skipped; trials whose site
/// opcode was not resolved aggregate under "?".
std::vector<OpcodeBreakdown> opcode_breakdown(const CampaignResult& r);

/// One mapping class's share of a cell's crash-rate divergence.
struct AttributionEntry {
  std::string opcode_class;
  /// Class crashes over the *whole cell's* activated trials, per tool —
  /// these terms sum exactly to each tool's cell crash rate, so
  /// `delta_points` decomposes the cell delta.
  Proportion llfi_crash{0, 0};
  Proportion pinfi_crash{0, 0};
  /// Signed contribution in percentage points:
  /// pinfi_crash.percent() - llfi_crash.percent(). Summing over a cell's
  /// entries reproduces the signed cell crash delta.
  double delta_points = 0.0;
  /// Most-crashing static site of the class, per tool, rendered as
  /// "function:opcode@site" ("-" when the tool has no crash in the class).
  std::string llfi_top_site;
  std::string pinfi_top_site;
};

struct CellAttribution {
  std::string app;
  ir::Category category = ir::Category::All;
  /// Signed cell divergence (pinfi - llfi crash percent).
  double crash_delta = 0.0;
  /// Every class either tool injected into, sorted by |delta_points|
  /// descending (ties by class name for determinism).
  std::vector<AttributionEntry> entries;
  bool valid = false;  ///< both tools have activated trials
};

/// Decomposes every cell of the grid. Cells missing a tool or with zero
/// activated trials on either side come back with valid == false.
std::vector<CellAttribution> attribute_crash_delta(const ResultSet& rs);

/// Human-readable report: for each valid cell, the top divergence-driving
/// mapping classes with per-tool crash shares (Wilson 95% CIs) and the
/// hottest static site on each side.
std::string render_attribution(const ResultSet& rs);

/// Machine-readable dump: one row per (cell, mapping class).
CsvWriter attribution_csv(const ResultSet& rs);

/// Cross-model variant: one row per (fault model, cell, mapping class),
/// with a leading `fault_model` column. Each pair is a model's name
/// (fault::Model::name()) and the full grid run under that model, so the
/// CSV shows which mapping classes diverge under which hardware fault
/// model (bench_table5_crash renders it as table5_models.csv).
CsvWriter model_attribution_csv(
    const std::vector<std::pair<std::string, ResultSet>>& per_model);

/// Propagation roll-up (obs/propagation.h): one row per (fault model, app,
/// category, tool, mapping class) aggregating the per-trial taint and
/// divergence statistics of propagation-traced trials (FAULTLAB_PROP).
/// Rows appear only for classes with at least one traced injected trial;
/// without tracing the CSV is just the header. bench_table5_crash renders
/// it as table5_propagation.csv — the observability counterpart to
/// table5_models.csv: where that file says *which* classes drive the
/// LLFI-vs-PINFI crash gap, this one says *how far and how wide* faults in
/// each class actually propagate before crashing, masking, or diverging.
CsvWriter propagation_attribution_csv(
    const std::vector<std::pair<std::string, ResultSet>>& per_model);

}  // namespace faultlab::fault
