// Failure taxonomy of the paper (Section V, "Failure categorization").
#pragma once

#include <cstdint>
#include <string>

#include "machine/trap.h"
#include "obs/propagation.h"

namespace faultlab::fault {

enum class Outcome : std::uint8_t {
  Benign,        // ran to completion, output matches the golden run
  SDC,           // ran to completion, output differs (silent data corruption)
  Crash,         // trapped (the simulated OS killed the program)
  Hang,          // exceeded the timeout (instruction budget)
  NotActivated,  // the corrupted value was never read before being lost
};

const char* outcome_name(Outcome o) noexcept;

/// One fault-injection trial.
struct TrialRecord {
  Outcome outcome = Outcome::NotActivated;
  machine::TrapKind trap = machine::TrapKind::UnmappedAccess;  // when Crash
  std::uint64_t dynamic_target = 0;  // k: which dynamic instance was hit
  unsigned bit = 0;                  // which bit was flipped
  std::uint64_t static_site = 0;     // instruction id / code index
  bool injected = false;             // the target instance was reached
  // Flight-recorder fields (obs/events.h): resolved by the engines so the
  // event log and the attribution analytics can name what was hit and how
  // far the fault travelled. The opcode/function pointers borrow storage
  // owned by the engine's module/program, which outlives every consumer
  // (the scheduler emits events immediately; attribution runs in-process
  // on the ResultSet while the engines are alive).
  const char* site_opcode = nullptr;    // opcode name of the injected site
  const char* site_function = nullptr;  // function containing the site
  std::uint64_t trap_pc = 0;            // static trap location (Crash only)
  std::uint64_t inject_instruction = 0; // dynamic index of the injection
  std::uint64_t total_instructions = 0; // whole-run dynamic instructions
  /// Propagation distance: dynamic instructions between the injection and
  /// the end of the run (PropagationTrace's instructions_after_injection,
  /// captured inline). Zero when the trial never injected.
  std::uint64_t instructions_after_injection() const noexcept {
    return injected && total_instructions > inject_instruction
               ? total_instructions - inject_instruction
               : 0;
  }
  // Checkpoint-layer observability (not part of the paper's record; the
  // scheduler aggregates these into per-campaign snapshot hit rates and
  // mean restored-pages. They may vary with execution order — e.g. which
  // worker ran the previous same-window trial — which is why campaign CSVs
  // and record-equality checks exclude them).
  bool restored = false;             // trial resumed from a snapshot
  bool delta_restored = false;       // reset walked only the dirty set
  std::uint32_t restored_pages = 0;  // page-table entries rewritten
  /// Taint/divergence observability (obs/propagation.h): filled only when
  /// FAULTLAB_PROP armed a tracer for this trial. Like the checkpoint
  /// fields above, excluded from campaign CSVs and record-equality checks;
  /// it feeds the v2 event log and propagation_attribution_csv.
  obs::PropSummary prop;
};

/// Classifies a finished run against the golden output. `activated` and
/// `injected` come from the injector's tracking.
Outcome classify(bool injected, bool activated, bool trapped, bool timed_out,
                 const std::string& output, const std::string& golden);

}  // namespace faultlab::fault
