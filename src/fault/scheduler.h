// Campaign scheduler: runs a whole (app × tool × category) grid of fault
// injection campaigns on one shared worker pool.
//
// Compared to calling run_campaign per cell, the scheduler
//  * profiles each engine once — a single instrumented golden run records
//    the dynamic counts of *all* categories (InjectorEngine::profile_all),
//    instead of one golden re-run per category,
//  * spins the thread pool up once for the whole grid: trials from every
//    campaign land in one shared queue that idle workers steal from, so
//    cores never drain between campaigns,
//  * captures worker exceptions via std::exception_ptr and rethrows them
//    after joining as a CampaignError naming the failing campaign, instead
//    of letting them escape a std::thread and std::terminate the process,
//  * records observability data: per-campaign wall time, trials/sec,
//    injected/activated counters, and a machine-readable run manifest.
//
//  * executes each campaign's trials in k-sorted order, grouped into
//    chunks by checkpoint window (InjectorEngine::window_of): a worker runs
//    a window's trials back-to-back against its resident per-engine
//    execution context (InjectorEngine::make_context), so every reset after
//    the first stays on Memory's O(dirty pages) delta-restore path instead
//    of rebuilding the whole address space per trial.
//
// Determinism: every trial's (k, bit-stream) draw is generated sequentially
// up front from the campaign's seed, exactly as run_campaign always did, so
// results are bit-identical for any thread count — and identical to the
// pre-scheduler per-cell loop. The k-sort and window chunking only permute
// *execution* order; each record is written back to its original draw
// index, so output order never changes.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "fault/engine.h"
#include "obs/monitor.h"
#include "support/csv.h"

namespace faultlab::fault {

/// Thrown by CampaignScheduler::run when a trial worker throws: identifies
/// the campaign and carries the original exception for rethrow.
class CampaignError : public std::runtime_error {
 public:
  CampaignError(std::string app, std::string tool, ir::Category category,
                std::exception_ptr cause);

  const std::string& app() const noexcept { return app_; }
  const std::string& tool() const noexcept { return tool_; }
  ir::Category category() const noexcept { return category_; }
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::string app_;
  std::string tool_;
  ir::Category category_;
  std::exception_ptr cause_;
};

/// Timing and counters for one campaign, as recorded in the run manifest.
struct CampaignTiming {
  std::string app;
  std::string tool;
  ir::Category category = ir::Category::All;
  std::string fault_model = "transient";  ///< Model::name() of the engine
  std::uint64_t seed = 0;
  std::uint64_t profiled_count = 0;
  std::size_t trials = 0;
  std::size_t injected = 0;
  std::size_t activated = 0;
  std::size_t crash = 0;
  std::size_t sdc = 0;
  std::size_t benign = 0;
  std::size_t hang = 0;
  std::size_t not_activated = 0;
  /// Trials resumed from a checkpoint snapshot (vs. re-running the prefix).
  std::size_t restored = 0;
  /// Restored trials whose reset walked only the dirty page set (the
  /// O(dirty) path) instead of rewriting the full page table.
  std::size_t delta_restores = 0;
  /// Mean page-table entries rewritten per restored trial.
  double mean_restored_pages = 0.0;
  double wall_seconds = 0.0;  ///< first trial dispatched -> last trial done
  /// Exact trial-latency percentiles (linear interpolation over the sorted
  /// per-trial wall times), in milliseconds. Zero when no trials ran.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Wilson 95% CI half-width of the crash share over activated trials,
  /// and whether it beat the run's ci_target. Computed from the final
  /// tallies in finalize(), so the values are identical whether or not the
  /// live monitor ran.
  double ci_halfwidth = 0.0;
  bool converged = false;
  /// Stall-watchdog flags raised against this campaign's in-flight trials
  /// (0 when the monitor was off — flags only exist while it watches).
  std::uint64_t watchdog_flags = 0;

  double trials_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
  /// Fraction of trials that resumed from a snapshot.
  double hit_rate() const noexcept {
    return trials != 0
               ? static_cast<double>(restored) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Everything needed to reproduce and audit a grid run, emitted alongside
/// the results CSV.
struct RunManifest {
  std::size_t threads = 0;        ///< worker count actually used
  FaultModel model;               ///< fault-model knobs in effect
  double profile_seconds = 0.0;   ///< single-pass profiling phase
  double wall_seconds = 0.0;      ///< whole run() call
  /// Dispatch mode in effect ("threaded" | "switch"), and the trace-cache
  /// activity attributable to this run (process-wide counter deltas across
  /// run(); see machine/dispatch.h).
  std::string dispatch_mode = "threaded";
  std::uint64_t trace_decodes = 0;
  std::uint64_t trace_hits = 0;
  std::uint64_t trace_invalidations = 0;
  std::uint64_t decoded_blocks = 0;  ///< resident when run() finished
  /// Convergence threshold the per-campaign `converged` flags were judged
  /// against (FAULTLAB_CI_TARGET or SchedulerOptions::monitor).
  double ci_target = 0.05;
  /// Lockstep lane cap in effect (FAULTLAB_LANES / machine::lane_count),
  /// plus the pack activity attributable to this run (process-wide
  /// pack-counter deltas across run(); see machine/dispatch.h).
  std::size_t lanes = 1;
  std::uint64_t pack_groups = 0;       ///< lockstep groups launched
  std::uint64_t pack_lanes = 0;        ///< lanes summed over groups
  std::uint64_t pack_uops = 0;         ///< micro-op fetches in pack mode
  std::uint64_t pack_lane_uops = 0;    ///< lane-executions those fetches drove
  std::uint64_t pack_divergences = 0;  ///< lanes masked off mid-group
  /// Mean lanes per lockstep group (pack occupancy); 0 when none ran.
  double mean_pack_lanes() const noexcept {
    return pack_groups != 0 ? static_cast<double>(pack_lanes) /
                                  static_cast<double>(pack_groups)
                            : 0.0;
  }
  std::vector<CampaignTiming> campaigns;  ///< in add() order
};

/// Snapshot passed to the progress callback each time a campaign finishes.
struct SchedulerProgress {
  std::size_t campaigns_total = 0;
  std::size_t campaigns_done = 0;
  std::size_t trials_total = 0;
  std::size_t trials_done = 0;
  /// The campaign that just completed (aggregated counters valid). Null on
  /// the initial profiling-done notification.
  const CampaignResult* completed = nullptr;
};

struct SchedulerOptions {
  /// Worker threads for the shared trial pool. 0 defers to FAULTLAB_THREADS
  /// if set, otherwise hardware concurrency.
  std::size_t threads = 0;
  /// Recorded in the run manifest (the scheduler itself is model-agnostic;
  /// the engines were constructed with it).
  FaultModel model;
  /// Invoked, serialized, from worker threads as campaigns complete.
  std::function<void(const SchedulerProgress&)> progress;
  /// Engaging this forces the campaign monitor on with these options,
  /// bypassing the environment. Disengaged (the default), run() builds
  /// options from the environment and spins the monitor up only when a
  /// status path is configured or the progress heartbeat is on. The
  /// monitor is observational only — results are byte-identical either
  /// way (StatusEquiv enforces it).
  std::optional<obs::MonitorOptions> monitor;
};

class CampaignScheduler {
 public:
  explicit CampaignScheduler(SchedulerOptions options = {});

  /// Queues one campaign. The engine must outlive run(); the same engine
  /// may back several campaigns (one per category) and is profiled once.
  void add(InjectorEngine& engine, CampaignConfig config);

  std::size_t pending() const noexcept { return entries_.size(); }

  /// Runs every queued trial on one shared pool and returns the campaign
  /// results in add() order. Clears the queue. Throws CampaignError when a
  /// worker throws (after all workers have been joined).
  std::vector<CampaignResult> run();

  /// Manifest of the last run() call.
  const RunManifest& manifest() const noexcept { return manifest_; }

 private:
  struct Entry {
    InjectorEngine* engine;
    CampaignConfig config;
  };

  SchedulerOptions options_;
  std::vector<Entry> entries_;
  RunManifest manifest_;
};

/// Machine-readable manifest dump: one row per campaign, run-level fields
/// (threads, fault-model flags) repeated on every row.
CsvWriter manifest_csv(const RunManifest& manifest);

}  // namespace faultlab::fault
