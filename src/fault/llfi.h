// LLFI analog: fault injection at the IR level through the interpreter.
//
// Target selection follows the paper's LLFI (Section III):
//  * static candidates are instructions in the requested Table III category
//    that have a destination register AND at least one user (the def-use
//    filter that guarantees high activation),
//  * one dynamic instance is chosen uniformly from the profiled count,
//  * a single bit of the destination value is flipped, within the
//    destination type's width,
//  * activation is tracked exactly: the corrupted SSA value must be read
//    by some instruction.
//
// Trial execution is checkpointed: profile_all()'s instrumented golden run
// captures copy-on-write interpreter snapshots every `CheckpointPolicy`
// stride (with the per-category instance counters at each point), and
// inject() resumes from the nearest snapshot before its injection point
// instead of re-running the golden prefix from main(). Results are
// bit-identical to direct execution.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "fault/checkpoint_store.h"
#include "fault/engine.h"
#include "ir/module.h"
#include "obs/propagation.h"
#include "vm/interpreter.h"

namespace faultlab::fault {

class LlfiEngine final : public InjectorEngine {
 public:
  /// The module must outlive the engine. `fault_model` selects the
  /// hardware fault model (fault::Model — kind/mask/trigger); `model`
  /// keeps the tool-heuristic knobs. Memory-cell targets are rejected
  /// here with std::runtime_error: LLFI corrupts SSA destinations only.
  explicit LlfiEngine(const ir::Module& module, FaultModel model = {},
                      CheckpointPolicy checkpoints = CheckpointPolicy::from_env(),
                      Model fault_model = Model::from_env());

  const char* tool_name() const noexcept override { return "LLFI"; }
  std::uint64_t profile(ir::Category category) override;
  CategoryCounts profile_all() override;  ///< one run, all categories
  TrialRecord inject(ir::Category category, std::uint64_t k,
                     Rng& rng) override;
  TrialRecord inject_in(TrialContext* context, ir::Category category,
                        std::uint64_t k, Rng& rng) override;
  void inject_group(TrialContext* context, ir::Category category,
                    GroupTrial* trials, std::size_t count) override;
  std::unique_ptr<TrialContext> make_context() override;
  std::uint64_t window_of(ir::Category category,
                          std::uint64_t k) const override;
  const Model& fault_model() const noexcept override { return fault_model_; }
  const std::string& golden_output() const noexcept override {
    return golden_output_;
  }
  std::uint64_t golden_instructions() const noexcept override {
    return golden_instructions_;
  }
  CheckpointStats checkpoint_stats() const override;
  PhaseStats phase_stats() const override;

  /// Re-applies a snapshot page budget after profiling (tests/tools; the
  /// campaign path sets it via CheckpointPolicy). Evicts LRU-first, so
  /// windows no trial has resumed from go before hot ones. Must not run
  /// concurrently with trials.
  void set_snapshot_budget(std::uint64_t pages) {
    checkpoints_.set_budget(pages);
  }

  /// Static LLFI target predicate (exposed for tests/benches).
  static bool is_target(const ir::Instruction& instr, ir::Category category,
                        const FaultModel& model = {});

 private:
  /// Per-worker resident interpreter: its address space persists between
  /// trials, so same-window trials reset via the O(dirty) delta path.
  /// Grouped trials add extra resident lane interpreters on demand (lane 0
  /// is the original `interp`); each lane's address space also persists,
  /// so lanes ride the delta path across groups too.
  struct Context final : TrialContext {
    explicit Context(const ir::Module& m) : module(m), interp(m) {}
    vm::Interpreter* lane(std::size_t i) {
      if (i == 0) return &interp;
      while (extra.size() < i)
        extra.push_back(std::make_unique<vm::Interpreter>(module));
      return extra[i - 1].get();
    }
    const ir::Module& module;
    vm::Interpreter interp;
    std::vector<std::unique_ptr<vm::Interpreter>> extra;
  };

  vm::RunLimits faulty_limits() const;
  TrialRecord run_trial(Context& context, ir::Category category,
                        std::uint64_t k, Rng& rng);
  /// Restore-side accounting shared by the single-lane and grouped paths:
  /// engine atomics plus the checkpoint-metrics mirror. Call only for
  /// trials that actually resumed from a snapshot.
  void account_restore(const vm::RunResult& r,
                       std::uint64_t snapshot_executed) const;
  /// Dynamic instruction index at which a time-triggered fault arms for
  /// trial (category, k): k's share of the golden run, scaled by the
  /// profiled category density. Zero (= fall back to access trigger)
  /// until profile_all() has filled the category counts.
  std::uint64_t time_trigger_point(ir::Category category,
                                   std::uint64_t k) const;

  const ir::Module& module_;
  FaultModel model_;
  Model fault_model_;
  CheckpointPolicy checkpoint_policy_;
  std::string golden_output_;
  std::uint64_t golden_instructions_ = 0;
  /// Propagation tracing (obs/propagation.h): latched from prop_enabled()
  /// at construction; the golden pc journal is captured by the ctor's
  /// golden run iff tracing is on, then read-only during trials.
  bool trace_prop_ = false;
  obs::GoldenJournal journal_;
  /// Filled by profile_all (single-threaded, before trials); during the
  /// trial phase workers only query it (thread-safe), so concurrent
  /// inject() calls are safe.
  CheckpointStore<vm::Snapshot> checkpoints_;
  CategoryCounts profile_counts_;  ///< filled by profile_all (time trigger)
  std::uint64_t checkpoint_stride_ = 0;
  mutable std::atomic<std::uint64_t> trials_{0};
  mutable std::atomic<std::uint64_t> restored_trials_{0};
  mutable std::atomic<std::uint64_t> skipped_instructions_{0};
  mutable std::atomic<std::uint64_t> delta_restores_{0};
  mutable std::atomic<std::uint64_t> restored_pages_{0};
  mutable std::atomic<std::uint64_t> restore_nanos_{0};
  mutable std::atomic<std::uint64_t> execute_nanos_{0};
  mutable std::atomic<std::uint64_t> classify_nanos_{0};
};

}  // namespace faultlab::fault
