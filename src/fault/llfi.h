// LLFI analog: fault injection at the IR level through the interpreter.
//
// Target selection follows the paper's LLFI (Section III):
//  * static candidates are instructions in the requested Table III category
//    that have a destination register AND at least one user (the def-use
//    filter that guarantees high activation),
//  * one dynamic instance is chosen uniformly from the profiled count,
//  * a single bit of the destination value is flipped, within the
//    destination type's width,
//  * activation is tracked exactly: the corrupted SSA value must be read
//    by some instruction.
#pragma once

#include "fault/engine.h"
#include "ir/module.h"
#include "vm/interpreter.h"

namespace faultlab::fault {

class LlfiEngine final : public InjectorEngine {
 public:
  /// The module must outlive the engine.
  LlfiEngine(const ir::Module& module, FaultModel model = {});

  const char* tool_name() const noexcept override { return "LLFI"; }
  std::uint64_t profile(ir::Category category) override;
  CategoryCounts profile_all() override;  ///< one run, all categories
  TrialRecord inject(ir::Category category, std::uint64_t k,
                     Rng& rng) override;
  const std::string& golden_output() const noexcept override {
    return golden_output_;
  }
  std::uint64_t golden_instructions() const noexcept override {
    return golden_instructions_;
  }

  /// Static LLFI target predicate (exposed for tests/benches).
  static bool is_target(const ir::Instruction& instr, ir::Category category,
                        const FaultModel& model = {});

 private:
  vm::RunLimits faulty_limits() const;

  const ir::Module& module_;
  FaultModel model_;
  std::string golden_output_;
  std::uint64_t golden_instructions_ = 0;
};

}  // namespace faultlab::fault
