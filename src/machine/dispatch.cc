#include "machine/dispatch.h"

#include <cstdio>
#include <mutex>

#include "obs/metrics.h"
#include "support/env.h"

namespace faultlab::machine {

namespace {

std::atomic<int>& mode_cell() noexcept {
  static std::atomic<int> cell{[] {
    static const char* const kChoices[] = {"threaded", "switch"};
    const std::size_t picked =
        support::parse_env_choice("FAULTLAB_DISPATCH", kChoices, 2, 0);
    return picked == 1 ? static_cast<int>(DispatchMode::Switch)
                       : static_cast<int>(DispatchMode::Threaded);
  }()};
  return cell;
}

std::size_t clamp_lanes(std::uint64_t lanes, const char* origin) noexcept {
  if (lanes < 1) {
    std::fprintf(stderr,
                 "faultlab: %s value %llu below 1; clamping to 1 lane\n",
                 origin, static_cast<unsigned long long>(lanes));
    return 1;
  }
  if (lanes > kMaxLanes) {
    std::fprintf(stderr,
                 "faultlab: %s value %llu above %zu; clamping to %zu lanes\n",
                 origin, static_cast<unsigned long long>(lanes), kMaxLanes,
                 kMaxLanes);
    return kMaxLanes;
  }
  return static_cast<std::size_t>(lanes);
}

std::atomic<std::size_t>& lanes_cell() noexcept {
  static std::atomic<std::size_t> cell{clamp_lanes(
      support::parse_env_u64("FAULTLAB_LANES", 8), "FAULTLAB_LANES")};
  return cell;
}

}  // namespace

std::size_t lane_count() noexcept {
  return lanes_cell().load(std::memory_order_relaxed);
}

void set_lane_count(std::size_t lanes) noexcept {
  lanes_cell().store(clamp_lanes(lanes, "set_lane_count"),
                     std::memory_order_relaxed);
}

DispatchMode dispatch_mode() noexcept {
  return static_cast<DispatchMode>(
      mode_cell().load(std::memory_order_relaxed));
}

void set_dispatch_mode(DispatchMode mode) noexcept {
  mode_cell().store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* dispatch_mode_name(DispatchMode mode) noexcept {
  return mode == DispatchMode::Switch ? "switch" : "threaded";
}

DispatchCounters& dispatch_counters() noexcept {
  static DispatchCounters counters;
  return counters;
}

DispatchCountersSnapshot dispatch_counters_snapshot() noexcept {
  const DispatchCounters& c = dispatch_counters();
  DispatchCountersSnapshot out;
  out.trace_decodes = c.trace_decodes.load(std::memory_order_relaxed);
  out.trace_hits = c.trace_hits.load(std::memory_order_relaxed);
  out.trace_invalidations =
      c.trace_invalidations.load(std::memory_order_relaxed);
  out.decoded_blocks = c.decoded_blocks.load(std::memory_order_relaxed);
  return out;
}

PackCounters& pack_counters() noexcept {
  static PackCounters counters;
  return counters;
}

PackCountersSnapshot pack_counters_snapshot() noexcept {
  const PackCounters& c = pack_counters();
  PackCountersSnapshot out;
  out.groups = c.groups.load(std::memory_order_relaxed);
  out.lanes = c.lanes.load(std::memory_order_relaxed);
  out.uops = c.uops.load(std::memory_order_relaxed);
  out.lane_uops = c.lane_uops.load(std::memory_order_relaxed);
  out.divergences = c.divergences.load(std::memory_order_relaxed);
  return out;
}

void record_pack_divergence_offset(std::uint64_t offset) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram histogram =
      obs::Registry::global().histogram("pack.divergence_offset");
  histogram.record(offset);
}

void publish_dispatch_metrics() {
  if (!obs::metrics_enabled()) return;
  // The registry's counters are cumulative sums of add() calls; publish
  // the delta since the last publish so the mirror tracks the atomics.
  static std::mutex mutex;
  static DispatchCountersSnapshot last;
  static PackCountersSnapshot last_pack;
  const DispatchCountersSnapshot now = dispatch_counters_snapshot();
  const PackCountersSnapshot now_pack = pack_counters_snapshot();
  std::lock_guard<std::mutex> lock(mutex);
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dispatch.trace_decodes")
      .add(now.trace_decodes - last.trace_decodes);
  registry.counter("dispatch.trace_hits")
      .add(now.trace_hits - last.trace_hits);
  registry.counter("dispatch.trace_invalidations")
      .add(now.trace_invalidations - last.trace_invalidations);
  registry.gauge("dispatch.decoded_blocks")
      .set(static_cast<std::int64_t>(now.decoded_blocks));
  registry.counter("pack.groups").add(now_pack.groups - last_pack.groups);
  registry.counter("pack.lanes").add(now_pack.lanes - last_pack.lanes);
  registry.counter("pack.uops").add(now_pack.uops - last_pack.uops);
  registry.counter("pack.lane_uops")
      .add(now_pack.lane_uops - last_pack.lane_uops);
  registry.counter("pack.divergences")
      .add(now_pack.divergences - last_pack.divergences);
  last = now;
  last_pack = now_pack;
}

}  // namespace faultlab::machine
