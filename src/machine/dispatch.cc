#include "machine/dispatch.h"

#include <mutex>

#include "obs/metrics.h"
#include "support/env.h"

namespace faultlab::machine {

namespace {

std::atomic<int>& mode_cell() noexcept {
  static std::atomic<int> cell{[] {
    static const char* const kChoices[] = {"threaded", "switch"};
    const std::size_t picked =
        support::parse_env_choice("FAULTLAB_DISPATCH", kChoices, 2, 0);
    return picked == 1 ? static_cast<int>(DispatchMode::Switch)
                       : static_cast<int>(DispatchMode::Threaded);
  }()};
  return cell;
}

}  // namespace

DispatchMode dispatch_mode() noexcept {
  return static_cast<DispatchMode>(
      mode_cell().load(std::memory_order_relaxed));
}

void set_dispatch_mode(DispatchMode mode) noexcept {
  mode_cell().store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* dispatch_mode_name(DispatchMode mode) noexcept {
  return mode == DispatchMode::Switch ? "switch" : "threaded";
}

DispatchCounters& dispatch_counters() noexcept {
  static DispatchCounters counters;
  return counters;
}

DispatchCountersSnapshot dispatch_counters_snapshot() noexcept {
  const DispatchCounters& c = dispatch_counters();
  DispatchCountersSnapshot out;
  out.trace_decodes = c.trace_decodes.load(std::memory_order_relaxed);
  out.trace_hits = c.trace_hits.load(std::memory_order_relaxed);
  out.trace_invalidations =
      c.trace_invalidations.load(std::memory_order_relaxed);
  out.decoded_blocks = c.decoded_blocks.load(std::memory_order_relaxed);
  return out;
}

void publish_dispatch_metrics() {
  if (!obs::metrics_enabled()) return;
  // The registry's counters are cumulative sums of add() calls; publish
  // the delta since the last publish so the mirror tracks the atomics.
  static std::mutex mutex;
  static DispatchCountersSnapshot last;
  const DispatchCountersSnapshot now = dispatch_counters_snapshot();
  std::lock_guard<std::mutex> lock(mutex);
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dispatch.trace_decodes")
      .add(now.trace_decodes - last.trace_decodes);
  registry.counter("dispatch.trace_hits")
      .add(now.trace_hits - last.trace_hits);
  registry.counter("dispatch.trace_invalidations")
      .add(now.trace_invalidations - last.trace_invalidations);
  registry.gauge("dispatch.decoded_blocks")
      .set(static_cast<std::int64_t>(now.decoded_blocks));
  last = now;
}

}  // namespace faultlab::machine
