// Shared runtime for both execution engines: global placement, heap
// allocator, and the builtin functions (print/malloc/math). Keeping one
// implementation guarantees the VM and the x86 simulator produce
// byte-identical golden outputs for the same program.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "machine/memory.h"

namespace faultlab::machine {

/// Assigns every module global a fixed address starting at
/// Layout::kGlobalBase and can materialize the initializers into a Memory.
class GlobalLayout {
 public:
  explicit GlobalLayout(const ir::Module& module);

  std::uint64_t address_of(const ir::GlobalVariable* g) const;
  std::uint64_t total_size() const noexcept { return total_size_; }

  /// Maps the global region and copies all initializers.
  void materialize(Memory& memory) const;

 private:
  const ir::Module& module_;
  std::map<const ir::GlobalVariable*, std::uint64_t> addresses_;
  std::uint64_t total_size_ = 0;
};

/// Heap + builtins. Argument and result values are raw 64-bit patterns
/// (doubles bit-cast), matching how both engines hold runtime values.
class Runtime {
 public:
  /// Snapshotable runtime state: program output so far plus the heap
  /// allocator's bookkeeping. Captured/restored together with a
  /// Memory::Snapshot so a trial resumed mid-run prints and allocates
  /// exactly as the golden run would from that point.
  struct State {
    std::string output;
    std::uint64_t heap_next = Layout::kHeapBase;
    std::map<std::uint64_t, std::uint64_t> live_allocations;
  };

  explicit Runtime(Memory& memory) : memory_(&memory) {}

  /// Releases heap state and output (memory mappings are reset separately).
  void reset();

  State save() const { return {output_, heap_next_, live_allocations_}; }
  void restore(const State& state) {
    output_ = state.output;
    heap_next_ = state.heap_next;
    live_allocations_ = state.live_allocations;
  }

  /// Bump allocation with 16-byte alignment; returns 0 when the request
  /// cannot be satisfied (mirroring malloc's null return).
  std::uint64_t heap_alloc(std::uint64_t size);
  /// Traps with BadFree when `addr` was never returned by heap_alloc
  /// (or already freed). Null is ignored, as in C.
  void heap_free(std::uint64_t addr);

  static bool is_builtin(const std::string& name);
  /// Invokes builtin `name`; returns the raw result (0 for void builtins).
  std::uint64_t call_builtin(const std::string& name,
                             const std::vector<std::uint64_t>& args);

  const std::string& output() const noexcept { return output_; }
  std::uint64_t heap_bytes_allocated() const noexcept { return heap_next_ - Layout::kHeapBase; }

 private:
  Memory* memory_;
  std::string output_;
  std::uint64_t heap_next_ = Layout::kHeapBase;
  std::map<std::uint64_t, std::uint64_t> live_allocations_;  // addr -> size
};

}  // namespace faultlab::machine
