// Dispatch-mode selection and trace-cache counters shared by both
// execution engines (vm::Interpreter and x86::Simulator).
//
// Each engine owns two execution paths over the same semantics:
//
//  * the *slow* path — the original per-instruction switch loop with fault
//    hooks, snapshot capture, and timeout checks woven into every step;
//  * the *fast* path — pre-decoded micro-op traces run by a threaded
//    (computed-goto) dispatch loop with no hook callouts at all. The
//    engine enters it only while no hook can observe execution (hook
//    detached with its re-arm point out of reach) and side-exits back to
//    the slow path at window boundaries.
//
// `DispatchMode::Switch` disables the fast path entirely, pinning the
// engines to the historical loop: equivalence fixtures A/B the two modes
// and require byte-identical campaign results.
//
// The counters here are always-on relaxed atomics (they are touched once
// per trace entry / decode, not per instruction, so gating them behind
// FAULTLAB_METRICS buys nothing); `publish_dispatch_metrics()` mirrors
// them into the obs registry for exporters, and the scheduler diffs
// `dispatch_counters_snapshot()` around a run for the manifest CSV.
#pragma once

#include <atomic>
#include <cstdint>

namespace faultlab::machine {

enum class DispatchMode : int {
  Threaded = 0,  ///< pre-decoded micro-op traces + slow path for armed windows
  Switch = 1,    ///< original hooked switch loop only
};

/// Process-wide dispatch mode. First call reads FAULTLAB_DISPATCH
/// ("threaded" | "switch", default threaded, unknown values warn); later
/// calls return the cached or programmatically overridden value.
DispatchMode dispatch_mode() noexcept;

/// Overrides the dispatch mode for the rest of the process (or until the
/// next override). Benches use this to run interleaved A/B pairs in one
/// process; it affects runs started after the call.
void set_dispatch_mode(DispatchMode mode) noexcept;

/// Canonical spelling, matching the FAULTLAB_DISPATCH values.
const char* dispatch_mode_name(DispatchMode mode) noexcept;

/// Hard ceiling on lockstep lanes per pack: one snapshot window's chunk is
/// at most 64 trials (the scheduler's kMaxChunk), so more lanes could
/// never fill.
inline constexpr std::size_t kMaxLanes = 64;

/// Process-wide lockstep lane count. First call reads FAULTLAB_LANES
/// (default 8, clamped to 1..kMaxLanes with a stderr warning); later calls
/// return the cached or programmatically overridden value. A count of 1
/// disables lane packing entirely — the scheduler and both engines then
/// take exactly the historical single-trial path.
std::size_t lane_count() noexcept;

/// Overrides the lane count for the rest of the process (or until the next
/// override). Benches use this to run interleaved lanes-on/off A/B pairs
/// in one process; it affects runs started after the call. Values are
/// clamped to 1..kMaxLanes.
void set_lane_count(std::size_t lanes) noexcept;

/// Trace-cache counters, accumulated process-wide across both engines.
struct DispatchCounters {
  /// Basic blocks (VM) / instruction slots (x86) decoded into micro-ops.
  std::atomic<std::uint64_t> trace_decodes{0};
  /// Fast-path entries served entirely from already-decoded traces.
  std::atomic<std::uint64_t> trace_hits{0};
  /// Fast-to-slow side exits forced by an armed/armable hook window,
  /// an imminent snapshot point, or a non-traceable program state.
  std::atomic<std::uint64_t> trace_invalidations{0};
  /// Decoded blocks currently resident across live trace caches.
  std::atomic<std::uint64_t> decoded_blocks{0};
};

DispatchCounters& dispatch_counters() noexcept;

/// Plain-value copy for manifest deltas and tests.
struct DispatchCountersSnapshot {
  std::uint64_t trace_decodes = 0;
  std::uint64_t trace_hits = 0;
  std::uint64_t trace_invalidations = 0;
  std::uint64_t decoded_blocks = 0;
};

DispatchCountersSnapshot dispatch_counters_snapshot() noexcept;

/// Lockstep lane-pack counters, accumulated process-wide across both
/// engines. Touched once per pack entry / lane exit (the hot loops
/// accumulate locally and flush on exit), so they stay always-on like the
/// trace counters above.
struct PackCounters {
  /// Lane groups that entered a lockstep pack (≥2 lanes).
  std::atomic<std::uint64_t> groups{0};
  /// Lanes summed over those groups (groups ? lanes / groups : 0 is the
  /// mean group size).
  std::atomic<std::uint64_t> lanes{0};
  /// Micro-ops fetched + dispatched by pack fast loops (one fetch serves
  /// every active lane).
  std::atomic<std::uint64_t> uops{0};
  /// Per-lane executions those dispatches drove; lane_uops / uops is the
  /// mean number of active lanes per dispatched micro-op.
  std::atomic<std::uint64_t> lane_uops{0};
  /// Lanes masked off a pack because their control flow diverged from the
  /// leader (each finishes on the single-lane slow path).
  std::atomic<std::uint64_t> divergences{0};
};

PackCounters& pack_counters() noexcept;

/// Plain-value copy for manifest deltas, benches, and tests.
struct PackCountersSnapshot {
  std::uint64_t groups = 0;
  std::uint64_t lanes = 0;
  std::uint64_t uops = 0;
  std::uint64_t lane_uops = 0;
  std::uint64_t divergences = 0;
};

PackCountersSnapshot pack_counters_snapshot() noexcept;

/// Records the in-pack position (executed instructions past the shared
/// snapshot) at which a lane's control flow left the pack. Feeds the
/// pack.divergence_offset histogram; no-op while FAULTLAB_METRICS is off.
void record_pack_divergence_offset(std::uint64_t offset);

/// Mirrors the counters into the global obs registry
/// (dispatch.trace_hits / trace_decodes / trace_invalidations counters,
/// the dispatch.decoded_blocks gauge, and the pack.* lane counters).
/// Publishes deltas since the previous publish, so repeated calls — one
/// per scheduler run — stay cumulative. No-op while FAULTLAB_METRICS is
/// off.
void publish_dispatch_metrics();

}  // namespace faultlab::machine
