// Sparse paged memory shared by the IR interpreter and the x86 simulator.
//
// Both engines run programs in the same 64-bit address space with the same
// layout, so a bit-flip that lands in a pointer has a comparable
// probability of hitting unmapped memory (and thus crashing) at both
// levels — any crash-rate difference between LLFI and PINFI then stems
// from the IR<->assembly mapping, which is what the paper measures.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "machine/trap.h"

namespace faultlab::machine {

/// Address-space layout (all engines use these constants).
struct Layout {
  static constexpr std::uint64_t kGlobalBase = 0x0001'0000;
  static constexpr std::uint64_t kHeapBase = 0x0100'0000;
  static constexpr std::uint64_t kHeapLimit = 0x0800'0000;  // 112 MiB heap
  static constexpr std::uint64_t kStackTop = 0x7fff'0000;
  static constexpr std::uint64_t kStackSize = 4ull << 20;  // 4 MiB
  static constexpr std::uint64_t kStackLimit = kStackTop - kStackSize;
  /// Simulated code addresses live here (x86 simulator instruction index
  /// scaled by 16); data accesses to this region trap.
  static constexpr std::uint64_t kCodeBase = 0x0040'0000'0000;
};

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Maps all pages covering [addr, addr+size) as zero-filled.
  void map_range(std::uint64_t addr, std::uint64_t size);
  bool is_mapped(std::uint64_t addr) const noexcept;

  /// Little-endian scalar access; size in {1,2,4,8}. Traps on unmapped.
  std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, unsigned size, std::uint64_t value);

  /// Bulk access (still traps on unmapped pages).
  void write_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::uint64_t size);
  void read_bytes(std::uint64_t addr, std::uint8_t* out,
                  std::uint64_t size) const;

  /// Releases every mapping (used between trials).
  void reset();

  std::size_t mapped_pages() const noexcept { return pages_.size(); }

 private:
  struct Page {
    std::uint8_t bytes[kPageSize];
  };
  const Page* page_for(std::uint64_t addr) const;
  Page* mutable_page_for(std::uint64_t addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace faultlab::machine
