// Sparse paged memory shared by the IR interpreter and the x86 simulator.
//
// Both engines run programs in the same 64-bit address space with the same
// layout, so a bit-flip that lands in a pointer has a comparable
// probability of hitting unmapped memory (and thus crashing) at both
// levels — any crash-rate difference between LLFI and PINFI then stems
// from the IR<->assembly mapping, which is what the paper measures.
//
// Pages are reference-counted so a whole address space can be snapshotted
// in O(mapped pages): Memory::snapshot() shares every page with the
// returned Snapshot, and the first write to a shared page clones it
// (copy-on-write). restore() rebuilds the page table from a snapshot the
// same way, which is what lets an injection trial resume from the middle
// of the golden run instead of re-executing the fault-free prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "machine/trap.h"

namespace faultlab::machine {

/// Address-space layout (all engines use these constants).
struct Layout {
  static constexpr std::uint64_t kGlobalBase = 0x0001'0000;
  static constexpr std::uint64_t kHeapBase = 0x0100'0000;
  static constexpr std::uint64_t kHeapLimit = 0x0800'0000;  // 112 MiB heap
  static constexpr std::uint64_t kStackTop = 0x7fff'0000;
  static constexpr std::uint64_t kStackSize = 4ull << 20;  // 4 MiB
  static constexpr std::uint64_t kStackLimit = kStackTop - kStackSize;
  /// Simulated code addresses live here (x86 simulator instruction index
  /// scaled by 16); data accesses to this region trap.
  static constexpr std::uint64_t kCodeBase = 0x0040'0000'0000;
};

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

  /// Copy-on-write image of a whole address space. Cheap to copy (shares
  /// pages) and safe to restore from concurrently: page reference counts
  /// are atomic and the snapshot itself is never mutated.
  class Snapshot {
   public:
    std::size_t mapped_pages() const noexcept { return pages_.size(); }

   private:
    friend class Memory;
    std::unordered_map<std::uint64_t, std::shared_ptr<struct MemoryPage>>
        pages_;
  };

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Maps all pages covering [addr, addr+size) as zero-filled. Already
  /// mapped pages keep their contents.
  void map_range(std::uint64_t addr, std::uint64_t size);
  bool is_mapped(std::uint64_t addr) const noexcept;

  /// Little-endian scalar access; size in {1,2,4,8}. Traps on unmapped.
  std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, unsigned size, std::uint64_t value);

  /// Bulk access (still traps on unmapped pages).
  void write_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::uint64_t size);
  void read_bytes(std::uint64_t addr, std::uint8_t* out,
                  std::uint64_t size) const;

  /// Releases every mapping (used between trials).
  void reset();

  /// O(mapped pages) copy-on-write capture of the current image. After the
  /// call every page is shared: the next write to each clones it first.
  Snapshot snapshot();
  /// Replaces the current image with the snapshot's (copy-on-write: pages
  /// stay shared until written).
  void restore(const Snapshot& snapshot);

  std::size_t mapped_pages() const noexcept { return pages_.size(); }

 private:
  using PageRef = std::shared_ptr<MemoryPage>;

  const MemoryPage* page_for(std::uint64_t addr) const;
  MemoryPage* mutable_page_for(std::uint64_t addr);
  void invalidate_cache() const noexcept;

  std::unordered_map<std::uint64_t, PageRef> pages_;

  // Single-entry last-page cache: scalar accesses overwhelmingly hit the
  // same page as their predecessor (stack slots, hot globals), so the
  // common path skips the hash lookup. `cached_writable_` additionally
  // records that the page is exclusively owned, i.e. writable without a
  // copy-on-write check. Invalidated by reset()/snapshot()/restore().
  static constexpr std::uint64_t kNoCachedPage = ~std::uint64_t{0};
  mutable std::uint64_t cached_page_num_ = kNoCachedPage;
  mutable MemoryPage* cached_page_ = nullptr;
  mutable bool cached_writable_ = false;
};

}  // namespace faultlab::machine
