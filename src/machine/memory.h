// Sparse paged memory shared by the IR interpreter and the x86 simulator.
//
// Both engines run programs in the same 64-bit address space with the same
// layout, so a bit-flip that lands in a pointer has a comparable
// probability of hitting unmapped memory (and thus crashing) at both
// levels — any crash-rate difference between LLFI and PINFI then stems
// from the IR<->assembly mapping, which is what the paper measures.
//
// Pages are reference-counted so a whole address space can be snapshotted
// in O(mapped pages): Memory::snapshot() shares every page with the
// returned Snapshot, and the first write to a shared page clones it
// (copy-on-write). restore() rebuilds the page table from a snapshot the
// same way, which is what lets an injection trial resume from the middle
// of the golden run instead of re-executing the fault-free prefix.
//
// restore_delta() goes one step further: after a restore the image equals
// the snapshot exactly, and it can only diverge through a CoW clone, a
// map_range() that creates a page, or reset(). Memory records the first
// two in a compact dirty-set, so restoring the *same* snapshot again only
// has to re-share the dirty pages — O(pages the trial touched), not
// O(mapped pages).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "machine/trap.h"

namespace faultlab::machine {

/// Address-space layout (all engines use these constants).
struct Layout {
  static constexpr std::uint64_t kGlobalBase = 0x0001'0000;
  static constexpr std::uint64_t kHeapBase = 0x0100'0000;
  static constexpr std::uint64_t kHeapLimit = 0x0800'0000;  // 112 MiB heap
  static constexpr std::uint64_t kStackTop = 0x7fff'0000;
  static constexpr std::uint64_t kStackSize = 4ull << 20;  // 4 MiB
  static constexpr std::uint64_t kStackLimit = kStackTop - kStackSize;
  /// Simulated code addresses live here (x86 simulator instruction index
  /// scaled by 16); data accesses to this region trap.
  static constexpr std::uint64_t kCodeBase = 0x0040'0000'0000;
};

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

  /// Copy-on-write image of a whole address space. Cheap to copy (shares
  /// pages) and safe to restore from concurrently: page reference counts
  /// are atomic and the snapshot itself is never mutated.
  class Snapshot {
   public:
    std::size_t mapped_pages() const noexcept { return pages_.size(); }
    /// Process-unique generation id assigned by Memory::snapshot().
    /// Copies share the id (they share the same immutable page table);
    /// a default-constructed Snapshot has id 0, which never matches a
    /// delta base.
    std::uint64_t id() const noexcept { return id_; }

   private:
    friend class Memory;
    std::unordered_map<std::uint64_t, std::shared_ptr<struct MemoryPage>>
        pages_;
    std::uint64_t id_ = 0;
  };

  /// What a restore_delta() call actually did, for checkpoint metrics.
  struct RestoreStats {
    std::size_t pages = 0;  ///< page-table entries rewritten
    bool delta = false;     ///< true if only the dirty set was walked
  };

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Maps all pages covering [addr, addr+size) as zero-filled. Already
  /// mapped pages keep their contents.
  void map_range(std::uint64_t addr, std::uint64_t size);
  bool is_mapped(std::uint64_t addr) const noexcept;

  /// Little-endian scalar access; size in {1,2,4,8}. Traps on unmapped.
  std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, unsigned size, std::uint64_t value);

  /// Bulk access (still traps on unmapped pages).
  void write_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::uint64_t size);
  void read_bytes(std::uint64_t addr, std::uint8_t* out,
                  std::uint64_t size) const;

  /// Releases every mapping (used between trials).
  void reset();

  /// O(mapped pages) copy-on-write capture of the current image. After the
  /// call every page is shared: the next write to each clones it first.
  Snapshot snapshot();
  /// Replaces the current image with the snapshot's (copy-on-write: pages
  /// stay shared until written). Also arms dirty-page tracking with the
  /// snapshot as the delta base, so a later restore_delta() of the same
  /// snapshot is O(pages written since).
  void restore(const Snapshot& snapshot);
  /// Equivalent to restore(), but when the image already derives from this
  /// exact snapshot (same id as the last restore, no reset() since) it only
  /// re-shares the pages recorded dirty. Falls back to a full restore on
  /// first use, after reset(), on a base mismatch, or when
  /// delta_restore_enabled() is off (env FAULTLAB_DELTA_RESTORE=0).
  RestoreStats restore_delta(const Snapshot& snapshot);

  std::size_t mapped_pages() const noexcept { return pages_.size(); }
  /// Pages diverged from the current delta base (0 when tracking is
  /// disarmed). Exposed for tests and the dirty-set histogram.
  std::size_t dirty_pages() const noexcept { return dirty_.size(); }
  /// Snapshot id the dirty set is relative to (0 = none; next
  /// restore_delta() will be a full restore).
  std::uint64_t delta_base() const noexcept { return delta_base_; }

 private:
  using PageRef = std::shared_ptr<MemoryPage>;

  const MemoryPage* page_for(std::uint64_t addr) const;
  MemoryPage* mutable_page_for(std::uint64_t addr);
  void invalidate_cache() const noexcept;
  void mark_dirty(std::uint64_t page_num) {
    if (delta_base_ != 0) dirty_.push_back(page_num);
  }

  std::unordered_map<std::uint64_t, PageRef> pages_;

  // Pages whose mapping diverged from the `delta_base_` snapshot: CoW
  // clones plus pages newly created by map_range(). Only maintained while
  // a delta base is armed (delta_base_ != 0), so golden runs pay nothing.
  // May rarely hold duplicates (a page re-cloned after an interleaved
  // snapshot()); restore_delta() assignments are idempotent so that is
  // harmless.
  std::vector<std::uint64_t> dirty_;
  std::uint64_t delta_base_ = 0;

  // Single-entry last-page cache: scalar accesses overwhelmingly hit the
  // same page as their predecessor (stack slots, hot globals), so the
  // common path skips the hash lookup. `cached_writable_` additionally
  // records that the page is exclusively owned, i.e. writable without a
  // copy-on-write check. Invalidated wholesale by reset()/restore();
  // snapshot() only demotes it to read-only (the pointer stays valid) and
  // restore_delta() invalidates it precisely — only when the cached page
  // is in the dirty set being rewritten.
  static constexpr std::uint64_t kNoCachedPage = ~std::uint64_t{0};
  mutable std::uint64_t cached_page_num_ = kNoCachedPage;
  mutable MemoryPage* cached_page_ = nullptr;
  mutable bool cached_writable_ = false;
};

/// Page-granular taint shadow over a simulated address space, used by the
/// propagation tracer (obs/propagation.h). Maps page number -> def-use
/// depth of the shallowest tainted store into the page; both engines share
/// the one implementation because they share Memory's page geometry.
/// Deliberately coarse: a tainted store marks its whole page(s), and an
/// untainted store never clears (page granularity cannot distinguish
/// bytes), so memory taint is a conservative over-approximation.
class PageShadowSet {
 public:
  /// Marks every page covering [addr, addr+size); keeps the shallowest
  /// depth when a page is already tainted.
  void taint(std::uint64_t addr, std::uint64_t size, std::uint32_t depth);
  /// True when any page covering [addr, addr+size) is tainted; writes the
  /// shallowest covering depth to *depth when provided.
  bool tainted(std::uint64_t addr, std::uint64_t size,
               std::uint32_t* depth = nullptr) const noexcept;
  std::size_t pages() const noexcept { return pages_.size(); }
  void clear() noexcept { pages_.clear(); }

 private:
  std::unordered_map<std::uint64_t, std::uint32_t> pages_;
};

/// Cached FAULTLAB_DELTA_RESTORE flag (default on; =0 disables the delta
/// path process-wide, forcing every restore_delta() to a full restore).
bool delta_restore_enabled() noexcept;

}  // namespace faultlab::machine
