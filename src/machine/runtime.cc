#include "machine/runtime.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/bitutil.h"

namespace faultlab::machine {

namespace {
std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

GlobalLayout::GlobalLayout(const ir::Module& module) : module_(module) {
  std::uint64_t cursor = Layout::kGlobalBase;
  for (const auto& g : module.globals()) {
    cursor = align_up(cursor, std::max<std::uint64_t>(g->value_type()->alignment(), 1));
    addresses_[g.get()] = cursor;
    cursor += g->value_type()->size_in_bytes();
  }
  total_size_ = cursor - Layout::kGlobalBase;
}

std::uint64_t GlobalLayout::address_of(const ir::GlobalVariable* g) const {
  auto it = addresses_.find(g);
  if (it == addresses_.end())
    throw std::logic_error("global not in layout: " + g->name());
  return it->second;
}

void GlobalLayout::materialize(Memory& memory) const {
  memory.map_range(Layout::kGlobalBase, std::max<std::uint64_t>(total_size_, 1));
  for (const auto& g : module_.globals()) {
    const auto& init = g->initializer();
    if (!init.empty())
      memory.write_bytes(addresses_.at(g.get()), init.data(), init.size());
  }
}

void Runtime::reset() {
  output_.clear();
  heap_next_ = Layout::kHeapBase;
  live_allocations_.clear();
}

std::uint64_t Runtime::heap_alloc(std::uint64_t size) {
  if (size == 0) size = 1;
  const std::uint64_t addr = align_up(heap_next_, 16);
  if (size > Layout::kHeapLimit - addr) return 0;  // out of heap: null
  memory_->map_range(addr, size);
  heap_next_ = addr + size;
  live_allocations_[addr] = size;
  return addr;
}

void Runtime::heap_free(std::uint64_t addr) {
  if (addr == 0) return;
  auto it = live_allocations_.find(addr);
  if (it == live_allocations_.end())
    throw TrapException(TrapKind::BadFree, addr);
  live_allocations_.erase(it);
  // Bump allocator: memory is not recycled; pages stay mapped. This keeps
  // trials deterministic and free() bugs detectable.
}

bool Runtime::is_builtin(const std::string& name) {
  return name == "print_int" || name == "print_double" ||
         name == "print_char" || name == "print_str" || name == "malloc" ||
         name == "free" || name == "sqrt" || name == "fabs" || name == "floor";
}

std::uint64_t Runtime::call_builtin(const std::string& name,
                                    const std::vector<std::uint64_t>& args) {
  auto arg = [&](std::size_t i) -> std::uint64_t {
    if (i >= args.size())
      throw std::logic_error("builtin " + name + ": missing argument");
    return args[i];
  };
  if (name == "print_int") {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(arg(0))));
    output_ += buf;
    output_ += '\n';
    return 0;
  }
  if (name == "print_double") {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", double_of(arg(0)));
    output_ += buf;
    output_ += '\n';
    return 0;
  }
  if (name == "print_char") {
    output_ += static_cast<char>(arg(0) & 0xff);
    return 0;
  }
  if (name == "print_str") {
    std::uint64_t p = arg(0);
    // Reads through simulated memory so a corrupted pointer traps, exactly
    // like a real puts() would segfault.
    for (std::uint64_t guard = 0; guard < (1u << 20); ++guard) {
      const std::uint64_t byte = memory_->read(p++, 1);
      if (byte == 0) return 0;
      output_ += static_cast<char>(byte);
    }
    throw TrapException(TrapKind::UnmappedAccess, p, "unterminated string");
  }
  if (name == "malloc") return heap_alloc(arg(0));
  if (name == "free") {
    heap_free(arg(0));
    return 0;
  }
  if (name == "sqrt") return bits_of(std::sqrt(double_of(arg(0))));
  if (name == "fabs") return bits_of(std::fabs(double_of(arg(0))));
  if (name == "floor") return bits_of(std::floor(double_of(arg(0))));
  throw std::logic_error("unknown builtin: " + name);
}

}  // namespace faultlab::machine
