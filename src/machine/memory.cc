#include "machine/memory.h"

#include <atomic>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "support/env.h"

namespace faultlab::machine {

struct MemoryPage {
  std::uint8_t bytes[Memory::kPageSize];
};

namespace {

/// Counts copy-on-write page clones (writes to pages shared with a
/// snapshot). The clone itself memcpys a whole page, so the counter's cost
/// is noise even when metrics are on; when off it is one cached branch.
void count_cow_clone() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter counter =
      obs::Registry::global().counter("machine.cow_page_clones");
  counter.add();
}

/// Snapshot generation ids. Never reused, so a Memory whose delta base was
/// taken from one snapshot can never mistake another snapshot for it.
std::atomic<std::uint64_t> next_snapshot_id{1};

}  // namespace

bool delta_restore_enabled() noexcept {
  static const bool enabled =
      support::parse_env_flag("FAULTLAB_DELTA_RESTORE", true);
  return enabled;
}

const char* trap_kind_name(TrapKind kind) noexcept {
  switch (kind) {
    case TrapKind::UnmappedAccess: return "unmapped-access";
    case TrapKind::DivideByZero: return "divide-by-zero";
    case TrapKind::InvalidJump: return "invalid-jump";
    case TrapKind::StackOverflow: return "stack-overflow";
    case TrapKind::BadFree: return "bad-free";
    case TrapKind::Unreachable: return "unreachable";
  }
  return "?";
}

TrapException::TrapException(TrapKind kind, std::uint64_t address,
                             std::string detail)
    : kind_(kind), address_(address) {
  std::ostringstream os;
  os << "trap: " << trap_kind_name(kind) << " at 0x" << std::hex << address;
  if (!detail.empty()) os << " (" << detail << ")";
  message_ = os.str();
}

void Memory::map_range(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t first = addr >> kPageBits;
  const std::uint64_t last = (addr + size - 1) >> kPageBits;
  for (std::uint64_t p = first; p <= last; ++p) {
    auto& slot = pages_[p];
    if (!slot) {
      slot = std::make_shared<MemoryPage>();
      std::memset(slot->bytes, 0, kPageSize);
      mark_dirty(p);  // page absent from the delta base snapshot
    }
  }
}

bool Memory::is_mapped(std::uint64_t addr) const noexcept {
  return pages_.count(addr >> kPageBits) != 0;
}

void Memory::invalidate_cache() const noexcept {
  cached_page_num_ = kNoCachedPage;
  cached_page_ = nullptr;
  cached_writable_ = false;
}

const MemoryPage* Memory::page_for(std::uint64_t addr) const {
  const std::uint64_t page_num = addr >> kPageBits;
  if (page_num == cached_page_num_) return cached_page_;
  auto it = pages_.find(page_num);
  if (it == pages_.end())
    throw TrapException(TrapKind::UnmappedAccess, addr);
  cached_page_num_ = page_num;
  cached_page_ = it->second.get();
  // Exclusively owned pages can later be written through the cache without
  // a copy-on-write check. Sharers only appear via snapshot()/restore()/
  // restore_delta(), all of which clear the writable flag (or invalidate
  // the affected entry outright), so the flag cannot go stale.
  cached_writable_ = it->second.use_count() == 1;
  return cached_page_;
}

MemoryPage* Memory::mutable_page_for(std::uint64_t addr) {
  const std::uint64_t page_num = addr >> kPageBits;
  if (page_num == cached_page_num_ && cached_writable_) return cached_page_;
  auto it = pages_.find(page_num);
  if (it == pages_.end())
    throw TrapException(TrapKind::UnmappedAccess, addr);
  PageRef& ref = it->second;
  if (ref.use_count() > 1) {
    // Shared with a snapshot (or with a sibling restored from one): clone
    // before the write so the snapshot keeps its contents.
    auto clone = std::make_shared<MemoryPage>();
    std::memcpy(clone->bytes, ref->bytes, kPageSize);
    ref = std::move(clone);
    mark_dirty(page_num);
    count_cow_clone();
  }
  cached_page_num_ = page_num;
  cached_page_ = ref.get();
  cached_writable_ = true;
  return cached_page_;
}

std::uint64_t Memory::read(std::uint64_t addr, unsigned size) const {
  const std::uint64_t offset = addr & (kPageSize - 1);
  if (offset + size <= kPageSize) {
    const MemoryPage* page = page_for(addr);
    std::uint64_t value = 0;
    std::memcpy(&value, page->bytes + offset, size);  // little-endian host
    return value;
  }
  // Page-straddling access.
  std::uint8_t buf[8] = {0};
  read_bytes(addr, buf, size);
  std::uint64_t value = 0;
  std::memcpy(&value, buf, size);
  return value;
}

void Memory::write(std::uint64_t addr, unsigned size, std::uint64_t value) {
  const std::uint64_t offset = addr & (kPageSize - 1);
  if (offset + size <= kPageSize) {
    MemoryPage* page = mutable_page_for(addr);
    std::memcpy(page->bytes + offset, &value, size);
    return;
  }
  std::uint8_t buf[8];
  std::memcpy(buf, &value, sizeof buf);
  write_bytes(addr, buf, size);
}

void Memory::write_bytes(std::uint64_t addr, const std::uint8_t* data,
                         std::uint64_t size) {
  while (size > 0) {
    const std::uint64_t offset = addr & (kPageSize - 1);
    const std::uint64_t chunk = std::min(size, kPageSize - offset);
    MemoryPage* page = mutable_page_for(addr);
    std::memcpy(page->bytes + offset, data, chunk);
    addr += chunk;
    data += chunk;
    size -= chunk;
  }
}

void Memory::read_bytes(std::uint64_t addr, std::uint8_t* out,
                        std::uint64_t size) const {
  while (size > 0) {
    const std::uint64_t offset = addr & (kPageSize - 1);
    const std::uint64_t chunk = std::min(size, kPageSize - offset);
    const MemoryPage* page = page_for(addr);
    std::memcpy(out, page->bytes + offset, chunk);
    addr += chunk;
    out += chunk;
    size -= chunk;
  }
}

void Memory::reset() {
  pages_.clear();
  invalidate_cache();
  // The image no longer derives from any snapshot: disarm delta tracking
  // so the next restore_delta() falls back to a full restore.
  delta_base_ = 0;
  dirty_.clear();
}

Memory::Snapshot Memory::snapshot() {
  Snapshot snap;
  snap.pages_ = pages_;  // shares every page: O(mapped pages), not O(bytes)
  snap.id_ = next_snapshot_id.fetch_add(1, std::memory_order_relaxed);
  // Every page is now shared, so nothing is writable — but the cached
  // pointer itself is still the right mapping for reads.
  cached_writable_ = false;
  return snap;
}

void Memory::restore(const Snapshot& snapshot) {
  pages_ = snapshot.pages_;
  invalidate_cache();
  // The image now equals `snapshot` exactly; from here it can only diverge
  // through CoW clones and map_range() creations, which mark_dirty()
  // records against this base.
  delta_base_ = snapshot.id_;
  dirty_.clear();
}

Memory::RestoreStats Memory::restore_delta(const Snapshot& snapshot) {
  if (delta_base_ == 0 || delta_base_ != snapshot.id_ ||
      !delta_restore_enabled()) {
    restore(snapshot);
    if (!delta_restore_enabled()) delta_base_ = 0;  // keep tracking off
    return {pages_.size(), false};
  }
  std::size_t touched = 0;
  for (const std::uint64_t page_num : dirty_) {
    auto snap_it = snapshot.pages_.find(page_num);
    if (snap_it == snapshot.pages_.end()) {
      pages_.erase(page_num);
    } else {
      pages_[page_num] = snap_it->second;  // re-share the snapshot's page
    }
    ++touched;
    // Precise cache invalidation: only a dirty page's mapping changed.
    if (page_num == cached_page_num_) invalidate_cache();
  }
  dirty_.clear();
  return {touched, true};
}

void PageShadowSet::taint(std::uint64_t addr, std::uint64_t size,
                          std::uint32_t depth) {
  if (size == 0) size = 1;
  const std::uint64_t first = addr >> Memory::kPageBits;
  const std::uint64_t last = (addr + size - 1) >> Memory::kPageBits;
  for (std::uint64_t page = first; page <= last; ++page) {
    auto [it, inserted] = pages_.emplace(page, depth);
    if (!inserted && depth < it->second) it->second = depth;
  }
}

bool PageShadowSet::tainted(std::uint64_t addr, std::uint64_t size,
                            std::uint32_t* depth) const noexcept {
  if (pages_.empty()) return false;
  if (size == 0) size = 1;
  const std::uint64_t first = addr >> Memory::kPageBits;
  const std::uint64_t last = (addr + size - 1) >> Memory::kPageBits;
  bool hit = false;
  std::uint32_t best = 0;
  for (std::uint64_t page = first; page <= last; ++page) {
    const auto it = pages_.find(page);
    if (it == pages_.end()) continue;
    if (!hit || it->second < best) best = it->second;
    hit = true;
  }
  if (hit && depth != nullptr) *depth = best;
  return hit;
}

}  // namespace faultlab::machine
