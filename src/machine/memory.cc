#include "machine/memory.h"

#include <cstring>
#include <sstream>

namespace faultlab::machine {

const char* trap_kind_name(TrapKind kind) noexcept {
  switch (kind) {
    case TrapKind::UnmappedAccess: return "unmapped-access";
    case TrapKind::DivideByZero: return "divide-by-zero";
    case TrapKind::InvalidJump: return "invalid-jump";
    case TrapKind::StackOverflow: return "stack-overflow";
    case TrapKind::BadFree: return "bad-free";
    case TrapKind::Unreachable: return "unreachable";
  }
  return "?";
}

TrapException::TrapException(TrapKind kind, std::uint64_t address,
                             std::string detail)
    : kind_(kind), address_(address) {
  std::ostringstream os;
  os << "trap: " << trap_kind_name(kind) << " at 0x" << std::hex << address;
  if (!detail.empty()) os << " (" << detail << ")";
  message_ = os.str();
}

void Memory::map_range(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t first = addr >> kPageBits;
  const std::uint64_t last = (addr + size - 1) >> kPageBits;
  for (std::uint64_t p = first; p <= last; ++p) {
    auto& slot = pages_[p];
    if (!slot) {
      slot = std::make_unique<Page>();
      std::memset(slot->bytes, 0, kPageSize);
    }
  }
}

bool Memory::is_mapped(std::uint64_t addr) const noexcept {
  return pages_.count(addr >> kPageBits) != 0;
}

const Memory::Page* Memory::page_for(std::uint64_t addr) const {
  auto it = pages_.find(addr >> kPageBits);
  if (it == pages_.end())
    throw TrapException(TrapKind::UnmappedAccess, addr);
  return it->second.get();
}

Memory::Page* Memory::mutable_page_for(std::uint64_t addr) {
  auto it = pages_.find(addr >> kPageBits);
  if (it == pages_.end())
    throw TrapException(TrapKind::UnmappedAccess, addr);
  return it->second.get();
}

std::uint64_t Memory::read(std::uint64_t addr, unsigned size) const {
  const std::uint64_t offset = addr & (kPageSize - 1);
  if (offset + size <= kPageSize) {
    const Page* page = page_for(addr);
    std::uint64_t value = 0;
    std::memcpy(&value, page->bytes + offset, size);  // little-endian host
    return value;
  }
  // Page-straddling access.
  std::uint8_t buf[8] = {0};
  read_bytes(addr, buf, size);
  std::uint64_t value = 0;
  std::memcpy(&value, buf, size);
  return value;
}

void Memory::write(std::uint64_t addr, unsigned size, std::uint64_t value) {
  const std::uint64_t offset = addr & (kPageSize - 1);
  if (offset + size <= kPageSize) {
    Page* page = mutable_page_for(addr);
    std::memcpy(page->bytes + offset, &value, size);
    return;
  }
  std::uint8_t buf[8];
  std::memcpy(buf, &value, sizeof buf);
  write_bytes(addr, buf, size);
}

void Memory::write_bytes(std::uint64_t addr, const std::uint8_t* data,
                         std::uint64_t size) {
  while (size > 0) {
    const std::uint64_t offset = addr & (kPageSize - 1);
    const std::uint64_t chunk = std::min(size, kPageSize - offset);
    Page* page = mutable_page_for(addr);
    std::memcpy(page->bytes + offset, data, chunk);
    addr += chunk;
    data += chunk;
    size -= chunk;
  }
}

void Memory::read_bytes(std::uint64_t addr, std::uint8_t* out,
                        std::uint64_t size) const {
  while (size > 0) {
    const std::uint64_t offset = addr & (kPageSize - 1);
    const std::uint64_t chunk = std::min(size, kPageSize - offset);
    const Page* page = page_for(addr);
    std::memcpy(out, page->bytes + offset, chunk);
    addr += chunk;
    out += chunk;
    size -= chunk;
  }
}

void Memory::reset() { pages_.clear(); }

}  // namespace faultlab::machine
