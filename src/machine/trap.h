// Trap model shared by the IR interpreter and the x86 simulator.
//
// Traps play the role OS signals play in the paper's experiments: a trial
// that traps is classified as a Crash. Exceeding the instruction budget
// plays the role of the paper's timeout detector (Hang).
#pragma once

#include <cstdint>
#include <exception>
#include <string>

namespace faultlab::machine {

enum class TrapKind : std::uint8_t {
  UnmappedAccess,   // load/store/fetch outside any mapped region (≈ SIGSEGV)
  DivideByZero,     // integer division by zero (≈ SIGFPE)
  InvalidJump,      // control transfer to a non-instruction address
  StackOverflow,    // simulated stack exhausted
  BadFree,          // free() of a pointer malloc never returned
  Unreachable,      // executed an operation with no defined semantics
};

const char* trap_kind_name(TrapKind kind) noexcept;

/// Thrown by the memory model / simulators; engines catch it and classify
/// the run as a Crash.
class TrapException : public std::exception {
 public:
  TrapException(TrapKind kind, std::uint64_t address, std::string detail = "");
  const char* what() const noexcept override { return message_.c_str(); }
  TrapKind kind() const noexcept { return kind_; }
  std::uint64_t address() const noexcept { return address_; }

 private:
  TrapKind kind_;
  std::uint64_t address_;
  std::string message_;
};

/// Thrown when a run exceeds its dynamic instruction budget; engines
/// classify it as a Hang.
class TimeoutException : public std::exception {
 public:
  const char* what() const noexcept override {
    return "instruction budget exceeded (hang)";
  }
};

}  // namespace faultlab::machine
