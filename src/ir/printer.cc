#include "ir/printer.h"

#include <iomanip>
#include <algorithm>
#include <sstream>

#include "support/bitutil.h"

namespace faultlab::ir {

namespace {

std::string value_ref(const Value& v) {
  switch (v.vkind()) {
    case ValueKind::ConstantInt: {
      const auto& ci = static_cast<const ConstantInt&>(v);
      return std::to_string(ci.signed_value());
    }
    case ValueKind::ConstantDouble: {
      // max_digits10 keeps the constant bit-exact across print/parse.
      std::ostringstream os;
      os << std::setprecision(17)
         << static_cast<const ConstantDouble&>(v).value();
      return os.str();
    }
    case ValueKind::ConstantNull:
      return "null";
    case ValueKind::GlobalVariable:
      return "@" + v.name();
    case ValueKind::Argument:
      return "%" + v.name();
    case ValueKind::Instruction: {
      // Always id-based: user-assigned names (mem2reg phis etc.) are not
      // guaranteed unique, and the parser needs unambiguous references.
      return "%t" + std::to_string(static_cast<const Instruction&>(v).id());
    }
  }
  return "?";
}

std::string typed_ref(const Value& v) {
  return v.type()->to_string() + " " + value_ref(v);
}

std::string block_ref(const BasicBlock& bb) {
  // Id-based: source-level block names (for.cond etc.) repeat across
  // nested loops, and the parser needs unambiguous targets. The original
  // name is shown as a comment on the label line.
  return "%bb" + std::to_string(bb.id());
}

void print_instruction(std::ostringstream& os, const Instruction& instr) {
  if (instr.has_result()) os << value_ref(instr) << " = ";
  switch (instr.opcode()) {
    case Opcode::ICmp: {
      const auto& cmp = static_cast<const ICmpInst&>(instr);
      os << "icmp " << icmp_pred_name(cmp.predicate()) << " "
         << typed_ref(*cmp.lhs()) << ", " << value_ref(*cmp.rhs());
      return;
    }
    case Opcode::FCmp: {
      const auto& cmp = static_cast<const FCmpInst&>(instr);
      os << "fcmp " << fcmp_pred_name(cmp.predicate()) << " "
         << typed_ref(*cmp.lhs()) << ", " << value_ref(*cmp.rhs());
      return;
    }
    case Opcode::Alloca: {
      const auto& al = static_cast<const AllocaInst&>(instr);
      os << "alloca " << al.allocated_type()->to_string();
      return;
    }
    case Opcode::Load:
      os << "load " << instr.type()->to_string() << ", "
         << typed_ref(*instr.operand(0));
      return;
    case Opcode::Store:
      os << "store " << typed_ref(*instr.operand(0)) << ", "
         << typed_ref(*instr.operand(1));
      return;
    case Opcode::Gep: {
      const auto& gep = static_cast<const GepInst&>(instr);
      os << "getelementptr " << typed_ref(*gep.base());
      for (unsigned i = 0; i < gep.num_indices(); ++i)
        os << ", " << typed_ref(*gep.index(i));
      return;
    }
    case Opcode::Phi: {
      const auto& phi = static_cast<const PhiInst&>(instr);
      os << "phi " << instr.type()->to_string() << " ";
      for (unsigned i = 0; i < phi.num_incoming(); ++i) {
        if (i) os << ", ";
        os << "[ " << value_ref(*phi.incoming_value(i)) << ", "
           << block_ref(*phi.incoming_block(i)) << " ]";
      }
      return;
    }
    case Opcode::Select:
      os << "select " << typed_ref(*instr.operand(0)) << ", "
         << typed_ref(*instr.operand(1)) << ", " << typed_ref(*instr.operand(2));
      return;
    case Opcode::Call: {
      const auto& call = static_cast<const CallInst&>(instr);
      os << "call " << call.callee()->return_type()->to_string() << " @"
         << call.callee()->name() << "(";
      for (unsigned i = 0; i < call.num_args(); ++i) {
        if (i) os << ", ";
        os << typed_ref(*call.arg(i));
      }
      os << ")";
      return;
    }
    case Opcode::Br: {
      const auto& br = static_cast<const BranchInst&>(instr);
      if (br.is_conditional()) {
        os << "br " << typed_ref(*br.condition()) << ", label "
           << block_ref(*br.true_target()) << ", label "
           << block_ref(*br.false_target());
      } else {
        os << "br label " << block_ref(*br.true_target());
      }
      return;
    }
    case Opcode::Ret: {
      const auto& ret = static_cast<const RetInst&>(instr);
      if (ret.has_value())
        os << "ret " << typed_ref(*ret.value());
      else
        os << "ret void";
      return;
    }
    default:
      break;
  }
  if (is_cast(instr.opcode())) {
    os << opcode_name(instr.opcode()) << " " << typed_ref(*instr.operand(0))
       << " to " << instr.type()->to_string();
    return;
  }
  // Binary operations.
  os << opcode_name(instr.opcode()) << " " << typed_ref(*instr.operand(0))
     << ", " << value_ref(*instr.operand(1));
}

}  // namespace

std::string to_string(const Instruction& instr) {
  std::ostringstream os;
  print_instruction(os, instr);
  return os.str();
}

std::string to_string(const Function& function) {
  std::ostringstream os;
  os << (function.is_builtin() ? "declare " : "define ")
     << function.return_type()->to_string() << " @" << function.name() << "(";
  for (std::size_t i = 0; i < function.num_args(); ++i) {
    if (i) os << ", ";
    os << typed_ref(*function.arg(i));
  }
  os << ")";
  if (function.is_builtin()) {
    os << "\n";
    return os.str();
  }
  os << " {\n";
  for (const auto& bb : function.blocks()) {
    os << "bb" << bb->id() << ":";
    if (!bb->name().empty()) os << "  ; " << bb->name();
    os << "\n";
    for (const auto& instr : bb->instructions()) {
      os << "  ";
      print_instruction(os, *instr);
      os << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_string(const Module& module) {
  std::ostringstream os;
  os << "; module " << module.name() << "\n";
  for (const Type* s : module.types().struct_types()) {
    os << "%" << s->struct_name() << " = type { ";
    for (std::size_t i = 0; i < s->struct_fields().size(); ++i) {
      if (i) os << ", ";
      os << s->struct_fields()[i]->to_string();
    }
    os << " }\n";
  }
  for (const auto& g : module.globals()) {
    os << "@" << g->name() << " = global " << g->value_type()->to_string()
       << " ";
    const auto& init = g->initializer();
    const bool all_zero =
        std::all_of(init.begin(), init.end(), [](auto b) { return b == 0; });
    if (all_zero) {
      os << "zeroinitializer\n";
    } else {
      os << "x\"";
      static const char* hex = "0123456789abcdef";
      for (std::uint8_t b : init) os << hex[b >> 4] << hex[b & 0xf];
      os << "\"\n";
    }
  }
  os << "\n";
  for (const auto& f : module.functions()) {
    // renumber so temporaries print with stable ids
    const_cast<Function&>(*f).renumber();
    os << to_string(*f) << "\n";
  }
  return os.str();
}

}  // namespace faultlab::ir
