// Type system for the FaultLab IR.
//
// The IR is strictly typed in the style of (pre-opaque-pointer) LLVM IR:
// integers of several widths, double-precision floats, typed pointers,
// fixed-size arrays, named structs, and function types. Types are uniqued
// and owned by a TypeContext; all Type pointers are interned and may be
// compared by address.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace faultlab::ir {

class TypeContext;

enum class TypeKind : std::uint8_t {
  Void,
  Int,     // i1, i8, i16, i32, i64
  Double,  // IEEE-754 binary64
  Ptr,     // typed pointer
  Array,   // fixed element count
  Struct,  // named, with ordered fields
  Func,    // return type + parameter types
};

/// An interned, immutable type. Obtain instances through TypeContext.
class Type {
 public:
  TypeKind kind() const noexcept { return kind_; }

  bool is_void() const noexcept { return kind_ == TypeKind::Void; }
  bool is_int() const noexcept { return kind_ == TypeKind::Int; }
  bool is_double() const noexcept { return kind_ == TypeKind::Double; }
  bool is_ptr() const noexcept { return kind_ == TypeKind::Ptr; }
  bool is_array() const noexcept { return kind_ == TypeKind::Array; }
  bool is_struct() const noexcept { return kind_ == TypeKind::Struct; }
  bool is_func() const noexcept { return kind_ == TypeKind::Func; }
  bool is_bool() const noexcept { return is_int() && bits_ == 1; }
  /// First-class scalar value representable in a (virtual) register.
  bool is_scalar() const noexcept { return is_int() || is_double() || is_ptr(); }

  /// Integer width in bits. Precondition: is_int().
  unsigned int_bits() const noexcept { return bits_; }

  /// Width in bits when held in a register: int width, 64 for ptr/double.
  unsigned register_bits() const noexcept {
    return is_int() ? bits_ : 64;
  }

  /// Pointee type. Precondition: is_ptr().
  const Type* pointee() const noexcept { return pointee_; }

  /// Array element type / count. Precondition: is_array().
  const Type* array_element() const noexcept { return elem_; }
  std::uint64_t array_count() const noexcept { return count_; }

  /// Struct name/fields. Precondition: is_struct().
  const std::string& struct_name() const noexcept { return name_; }
  const std::vector<const Type*>& struct_fields() const noexcept { return fields_; }
  /// Byte offset of field `index` accounting for natural alignment padding.
  std::uint64_t struct_field_offset(std::size_t index) const;

  /// Function signature. Precondition: is_func().
  const Type* func_return() const noexcept { return return_type_; }
  const std::vector<const Type*>& func_params() const noexcept { return fields_; }

  /// Storage size in bytes (natural alignment layout). Void/Func have size 0.
  std::uint64_t size_in_bytes() const;
  /// Natural alignment in bytes (1 for void).
  std::uint64_t alignment() const;

  std::string to_string() const;

 private:
  friend class TypeContext;
  Type() = default;

  TypeKind kind_ = TypeKind::Void;
  unsigned bits_ = 0;
  const Type* pointee_ = nullptr;
  const Type* elem_ = nullptr;
  std::uint64_t count_ = 0;
  std::vector<const Type*> fields_;  // struct fields or function params
  const Type* return_type_ = nullptr;
  std::string name_;
};

/// Owns and uniques all Types of one Module.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  const Type* void_type() const noexcept { return void_; }
  const Type* double_type() const noexcept { return double_; }
  const Type* int_type(unsigned bits);  ///< bits in {1,8,16,32,64}
  const Type* i1() { return int_type(1); }
  const Type* i8() { return int_type(8); }
  const Type* i16() { return int_type(16); }
  const Type* i32() { return int_type(32); }
  const Type* i64() { return int_type(64); }
  const Type* ptr_to(const Type* pointee);
  const Type* array_of(const Type* element, std::uint64_t count);
  /// Creates a fresh named struct; names must be unique per context.
  const Type* make_struct(std::string name, std::vector<const Type*> fields);
  /// Two-phase creation for self-referential structs: declare first (body
  /// empty), then define exactly once.
  const Type* declare_struct(std::string name);
  void define_struct(const Type* declared, std::vector<const Type*> fields);
  const Type* struct_by_name(const std::string& name) const noexcept;
  /// All named struct types, in creation order.
  std::vector<const Type*> struct_types() const;
  const Type* func_type(const Type* ret, std::vector<const Type*> params);

 private:
  Type* intern();
  std::vector<std::unique_ptr<Type>> pool_;
  const Type* void_ = nullptr;
  const Type* double_ = nullptr;
};

}  // namespace faultlab::ir
