#include "ir/module.h"

#include <stdexcept>

#include "support/bitutil.h"

namespace faultlab::ir {

Module::~Module() {
  // Values are destroyed in member/vector order, which does not respect
  // def-use edges; detach every operand first so no destructor touches a
  // freed value's use list.
  for (const auto& f : functions_)
    for (const auto& bb : f->blocks())
      for (const auto& instr : bb->instructions())
        instr->drop_operands_for_teardown();
}

Function* Module::create_function(const Type* func_type, std::string name,
                                  bool is_builtin) {
  if (find_function(name) != nullptr)
    throw std::invalid_argument("duplicate function: " + name);
  functions_.push_back(
      std::make_unique<Function>(this, func_type, std::move(name), is_builtin));
  return functions_.back().get();
}

Function* Module::find_function(const std::string& name) const noexcept {
  for (const auto& f : functions_)
    if (f->name() == name) return f.get();
  return nullptr;
}

GlobalVariable* Module::create_global(const Type* value_type, std::string name,
                                      std::vector<std::uint8_t> init) {
  if (find_global(name) != nullptr)
    throw std::invalid_argument("duplicate global: " + name);
  globals_.push_back(std::make_unique<GlobalVariable>(
      types_.ptr_to(value_type), value_type, std::move(name), std::move(init)));
  return globals_.back().get();
}

GlobalVariable* Module::find_global(const std::string& name) const noexcept {
  for (const auto& g : globals_)
    if (g->name() == name) return g.get();
  return nullptr;
}

ConstantInt* Module::const_int(const Type* type, std::uint64_t raw_bits) {
  raw_bits = truncate(raw_bits, type->int_bits());
  for (const auto& c : constants_) {
    auto* ci = dynamic_cast<ConstantInt*>(c.get());
    if (ci != nullptr && ci->type() == type && ci->raw() == raw_bits) return ci;
  }
  constants_.push_back(std::make_unique<ConstantInt>(type, raw_bits));
  return static_cast<ConstantInt*>(constants_.back().get());
}

ConstantInt* Module::const_i1(bool value) {
  return const_int(types_.i1(), value ? 1 : 0);
}

ConstantInt* Module::const_i32(std::int32_t value) {
  return const_int(types_.i32(), static_cast<std::uint64_t>(
                                     static_cast<std::int64_t>(value)));
}

ConstantInt* Module::const_i64(std::int64_t value) {
  return const_int(types_.i64(), static_cast<std::uint64_t>(value));
}

ConstantDouble* Module::const_double(double value) {
  for (const auto& c : constants_) {
    auto* cd = dynamic_cast<ConstantDouble*>(c.get());
    if (cd != nullptr && bits_of(cd->value()) == bits_of(value)) return cd;
  }
  constants_.push_back(std::make_unique<ConstantDouble>(types_.double_type(), value));
  return static_cast<ConstantDouble*>(constants_.back().get());
}

ConstantNull* Module::const_null(const Type* ptr_type) {
  for (const auto& c : constants_) {
    auto* cn = dynamic_cast<ConstantNull*>(c.get());
    if (cn != nullptr && cn->type() == ptr_type) return cn;
  }
  constants_.push_back(std::make_unique<ConstantNull>(ptr_type));
  return static_cast<ConstantNull*>(constants_.back().get());
}

}  // namespace faultlab::ir
