#include "ir/value.h"

#include "ir/instruction.h"

namespace faultlab::ir {

Value::~Value() = default;

void Value::remove_use(Instruction* user, unsigned index) {
  for (auto it = uses_.begin(); it != uses_.end(); ++it) {
    if (it->user == user && it->index == index) {
      uses_.erase(it);
      return;
    }
  }
  assert(false && "use not found");
}

void Value::replace_all_uses_with(Value* replacement) {
  assert(replacement != this);
  // set_operand mutates our use list; drain from the back.
  while (!uses_.empty()) {
    const Use use = uses_.back();
    use.user->set_operand(use.index, replacement);
  }
}

}  // namespace faultlab::ir
