// IRBuilder: convenience factory that appends instructions to a basic block
// and computes result types. The mini-C codegen and hand-written tests use
// this exclusively.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace faultlab::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() noexcept { return module_; }
  TypeContext& types() noexcept { return module_.types(); }

  void set_insert_point(BasicBlock* bb) { bb_ = bb; }
  BasicBlock* insert_block() const noexcept { return bb_; }

  /// True when the current block already ends in a terminator (codegen uses
  /// this to avoid emitting dead instructions after return/break).
  bool block_terminated() const noexcept {
    return bb_ != nullptr && bb_->terminator() != nullptr;
  }

  Value* binary(Opcode op, Value* lhs, Value* rhs, std::string name = "");
  Value* add(Value* a, Value* b) { return binary(Opcode::Add, a, b); }
  Value* sub(Value* a, Value* b) { return binary(Opcode::Sub, a, b); }
  Value* mul(Value* a, Value* b) { return binary(Opcode::Mul, a, b); }

  Value* icmp(ICmpPred pred, Value* lhs, Value* rhs, std::string name = "");
  Value* fcmp(FCmpPred pred, Value* lhs, Value* rhs, std::string name = "");

  Value* cast(Opcode op, Value* value, const Type* to, std::string name = "");

  Value* alloca_of(const Type* allocated, std::string name = "");
  Value* load(Value* pointer, std::string name = "");
  void store(Value* value, Value* pointer);
  Value* gep(Value* base, std::vector<Value*> indices, std::string name = "");

  PhiInst* phi(const Type* type, std::string name = "");
  Value* select(Value* cond, Value* if_true, Value* if_false,
                std::string name = "");
  Value* call(Function* callee, std::vector<Value*> args, std::string name = "");

  void br(BasicBlock* target);
  void cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  void ret(Value* value);
  void ret_void();

 private:
  Instruction* append(std::unique_ptr<Instruction> instr);
  Module& module_;
  BasicBlock* bb_ = nullptr;
};

}  // namespace faultlab::ir
