// Instruction classes of the FaultLab IR.
//
// The opcode inventory mirrors the subset of LLVM IR the paper's analysis
// depends on: integer and floating-point arithmetic, icmp/fcmp,
// alloca/load/store/getelementptr, the full conversion-cast family, phi,
// select, direct calls, branches and return.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/value.h"

namespace faultlab::ir {

class BasicBlock;
class Function;

enum class Opcode : std::uint8_t {
  // Integer binary ops.
  Add, Sub, Mul, SDiv, UDiv, SRem, URem, And, Or, Xor, Shl, LShr, AShr,
  // Floating-point binary ops.
  FAdd, FSub, FMul, FDiv,
  // Comparisons (produce i1).
  ICmp, FCmp,
  // Memory.
  Alloca, Load, Store, Gep,
  // Casts.
  Trunc, ZExt, SExt, FPToSI, SIToFP, Bitcast, PtrToInt, IntToPtr,
  // Other.
  Phi, Select, Call, Br, Ret,
};

const char* opcode_name(Opcode op) noexcept;

bool is_int_binary(Opcode op) noexcept;
bool is_fp_binary(Opcode op) noexcept;
bool is_cast(Opcode op) noexcept;
/// Casts that convert between integer widths or int<->fp — the subset the
/// paper's LLFI treats as the 'cast' injection category (Table I row 5).
bool is_conversion_cast(Opcode op) noexcept;

enum class ICmpPred : std::uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
enum class FCmpPred : std::uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

const char* icmp_pred_name(ICmpPred p) noexcept;
const char* fcmp_pred_name(FCmpPred p) noexcept;

class Instruction : public Value {
 public:
  ~Instruction() override;

  Opcode opcode() const noexcept { return op_; }
  BasicBlock* parent() const noexcept { return parent_; }
  Function* function() const noexcept;

  unsigned num_operands() const noexcept {
    return static_cast<unsigned>(operands_.size());
  }
  Value* operand(unsigned i) const {
    assert(i < operands_.size());
    return operands_[i];
  }
  void set_operand(unsigned i, Value* value);

  bool is_terminator() const noexcept {
    return op_ == Opcode::Br || op_ == Opcode::Ret;
  }
  /// Has a destination register, i.e. produces a non-void SSA value. This
  /// is the paper's precondition for being a fault-injection target.
  bool has_result() const noexcept { return !type()->is_void(); }

  /// Per-function sequential id assigned by Function::renumber(); used by
  /// the printer and by the injectors to name static injection points.
  unsigned id() const noexcept { return id_; }

  /// Detaches all operands WITH proper use-list maintenance (used when
  /// deleting instructions that may form cycles, e.g. unreachable code).
  void clear_operands();

  /// Detaches all operands WITHOUT maintaining use lists. Only Module's
  /// destructor may call this (values are destroyed in arbitrary order at
  /// teardown, so the usual bookkeeping would touch freed objects).
  void drop_operands_for_teardown() noexcept { operands_.clear(); }

 protected:
  Instruction(Opcode op, const Type* type, std::vector<Value*> operands,
              std::string name = "");
  /// Used by PhiInst to grow/shrink its incoming list.
  void append_operand(Value* value);
  void remove_operand(unsigned i);

 private:
  friend class BasicBlock;
  friend class Function;
  Opcode op_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
  unsigned id_ = 0;
};

/// Integer or floating-point two-operand arithmetic.
class BinaryInst final : public Instruction {
 public:
  BinaryInst(Opcode op, Value* lhs, Value* rhs, std::string name = "");
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }
};

class ICmpInst final : public Instruction {
 public:
  ICmpInst(const Type* i1, ICmpPred pred, Value* lhs, Value* rhs,
           std::string name = "");
  ICmpPred predicate() const noexcept { return pred_; }
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

 private:
  ICmpPred pred_;
};

class FCmpInst final : public Instruction {
 public:
  FCmpInst(const Type* i1, FCmpPred pred, Value* lhs, Value* rhs,
           std::string name = "");
  FCmpPred predicate() const noexcept { return pred_; }
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

 private:
  FCmpPred pred_;
};

class CastInst final : public Instruction {
 public:
  CastInst(Opcode op, Value* value, const Type* to, std::string name = "");
  Value* source() const { return operand(0); }
};

/// Stack slot of fixed type; result is a pointer into the current frame.
class AllocaInst final : public Instruction {
 public:
  AllocaInst(const Type* ptr_type, const Type* allocated, std::string name = "");
  const Type* allocated_type() const noexcept { return allocated_; }

 private:
  const Type* allocated_;
};

class LoadInst final : public Instruction {
 public:
  explicit LoadInst(Value* pointer, std::string name = "");
  Value* pointer() const { return operand(0); }
};

class StoreInst final : public Instruction {
 public:
  StoreInst(const Type* void_type, Value* value, Value* pointer);
  Value* stored_value() const { return operand(0); }
  Value* pointer() const { return operand(1); }
};

/// Address computation. Semantics follow LLVM's getelementptr: the first
/// index steps over whole pointees; subsequent indices drill into
/// arrays/structs. Struct field indices must be ConstantInt.
class GepInst final : public Instruction {
 public:
  GepInst(const Type* result_ptr_type, Value* base, std::vector<Value*> indices,
          std::string name = "");
  Value* base() const { return operand(0); }
  unsigned num_indices() const noexcept { return num_operands() - 1; }
  Value* index(unsigned i) const { return operand(i + 1); }

  /// Computes the result pointer type for the given base type and indices.
  static const Type* result_type(TypeContext& ctx, const Type* base_ptr,
                                 const std::vector<Value*>& indices);
};

class PhiInst final : public Instruction {
 public:
  PhiInst(const Type* type, std::string name = "");
  void add_incoming(Value* value, BasicBlock* pred);
  unsigned num_incoming() const noexcept { return num_operands(); }
  Value* incoming_value(unsigned i) const { return operand(i); }
  BasicBlock* incoming_block(unsigned i) const { return blocks_.at(i); }
  /// Value flowing in from `pred`; null when `pred` is not an incoming edge.
  Value* value_for_block(const BasicBlock* pred) const noexcept;
  void set_incoming_block(unsigned i, BasicBlock* b) { blocks_.at(i) = b; }
  void remove_incoming(unsigned i);

 private:
  std::vector<BasicBlock*> blocks_;
};

class SelectInst final : public Instruction {
 public:
  SelectInst(Value* cond, Value* if_true, Value* if_false, std::string name = "");
  Value* condition() const { return operand(0); }
  Value* true_value() const { return operand(1); }
  Value* false_value() const { return operand(2); }
};

/// Direct call. The callee is a Function (no function pointers).
class CallInst final : public Instruction {
 public:
  CallInst(const Type* result, Function* callee, std::vector<Value*> args,
           std::string name = "");
  Function* callee() const noexcept { return callee_; }
  unsigned num_args() const noexcept { return num_operands(); }
  Value* arg(unsigned i) const { return operand(i); }

 private:
  Function* callee_;
};

class BranchInst final : public Instruction {
 public:
  /// Unconditional branch.
  BranchInst(const Type* void_type, BasicBlock* target);
  /// Conditional branch on an i1.
  BranchInst(const Type* void_type, Value* cond, BasicBlock* if_true,
             BasicBlock* if_false);

  bool is_conditional() const noexcept { return num_operands() == 1; }
  Value* condition() const {
    assert(is_conditional());
    return operand(0);
  }
  BasicBlock* true_target() const noexcept { return targets_[0]; }
  BasicBlock* false_target() const noexcept {
    assert(is_conditional());
    return targets_[1];
  }
  unsigned num_targets() const noexcept { return is_conditional() ? 2 : 1; }
  BasicBlock* target(unsigned i) const { return targets_[i]; }
  void set_target(unsigned i, BasicBlock* b) { targets_[i] = b; }

 private:
  BasicBlock* targets_[2] = {nullptr, nullptr};
};

class RetInst final : public Instruction {
 public:
  /// `value` may be null for `ret void`.
  RetInst(const Type* void_type, Value* value);
  bool has_value() const noexcept { return num_operands() == 1; }
  Value* value() const {
    assert(has_value());
    return operand(0);
  }
};

}  // namespace faultlab::ir
