// Textual IR parser: reads the exact dialect ir::to_string(Module) emits,
// producing a fresh verifier-clean Module. Print -> parse -> print is a
// fixed point, which the test suite exploits for round-trip property
// testing, and which makes IR dumps a practical interchange/debug format.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "ir/module.h"

namespace faultlab::ir {

class IrParseError : public std::runtime_error {
 public:
  IrParseError(const std::string& message, std::size_t line);
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a whole module; throws IrParseError on malformed input. The
/// result is renumbered and verifier-clean.
std::unique_ptr<Module> parse_module(const std::string& text,
                                     const std::string& name = "parsed");

}  // namespace faultlab::ir
