#include "ir/irparser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <vector>

#include "ir/verifier.h"

namespace faultlab::ir {

IrParseError::IrParseError(const std::string& message, std::size_t line)
    : std::runtime_error("IR parse error at line " + std::to_string(line) +
                         ": " + message),
      line_(line) {}

namespace {

/// Cursor over one line of IR text.
class Line {
 public:
  Line(std::string text, std::size_t number)
      : text_(std::move(text)), number_(number) {
    // Strip trailing comments ("; ...") — but not inside x"..." data. The
    // comment body is kept: label lines carry the block's source name.
    bool in_string = false;
    for (std::size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == '"') in_string = !in_string;
      if (text_[i] == ';' && !in_string) {
        std::size_t c = i + 1;
        while (c < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[c])))
          ++c;
        comment_ = text_.substr(c);
        while (!comment_.empty() &&
               std::isspace(static_cast<unsigned char>(comment_.back())))
          comment_.pop_back();
        text_.resize(i);
        break;
      }
    }
  }

  const std::string& comment() const noexcept { return comment_; }

  std::size_t number() const noexcept { return number_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const std::string& word) {
    skip_ws();
    if (text_.compare(pos_, word.size(), word) == 0) {
      const std::size_t after = pos_ + word.size();
      if (after >= text_.size() ||
          (!std::isalnum(static_cast<unsigned char>(text_[after])) &&
           text_[after] != '_' && text_[after] != '.')) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  void expect(char c, const char* what) {
    if (!consume(c)) fail(std::string("expected '") + c + "' (" + what + ")");
  }

  /// Identifier: letters, digits, '_', '.'.
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  /// Signed integer or floating literal; returns the raw spelling.
  std::string number_token() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '+' || text_[pos_] == '-')) {
      // Allow exponent signs only right after e/E.
      if ((text_[pos_] == '+' || text_[pos_] == '-') &&
          !(text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))
        break;
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return text_.substr(start, pos_ - start);
  }

  std::string rest() {
    skip_ws();
    return text_.substr(pos_);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw IrParseError(message + " in: '" + text_ + "'", number_);
  }

 private:
  std::string text_;
  std::string comment_;
  std::size_t number_;
  std::size_t pos_ = 0;
};

class ModuleParser {
 public:
  ModuleParser(const std::string& text, const std::string& name)
      : module_(std::make_unique<Module>(name)) {
    std::size_t start = 0, line_number = 1;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines_.emplace_back(text.substr(start, end - start), line_number++);
      start = end + 1;
    }
  }

  std::unique_ptr<Module> run() {
    // Pass 1: struct declarations (so pointers to later structs resolve),
    // then struct bodies, globals, and function signatures.
    for (Line line : lines_) {
      if (line.consume('%')) {
        const std::string name = line.ident();
        if (line.consume('=') && line.consume_word("type"))
          module_->types().declare_struct(name);
      }
    }
    for (Line line : lines_) parse_header_line(line);
    // Pass 2: function bodies.
    parse_bodies();
    for (const auto& f : module_->functions()) f->renumber();
    verify_or_throw(*module_);
    return std::move(module_);
  }

 private:
  // -- types ---------------------------------------------------------------

  const Type* parse_type(Line& line) {
    const Type* base = nullptr;
    auto& types = module_->types();
    if (line.consume('[')) {
      const std::string count = line.number_token();
      if (!line.consume_word("x")) line.fail("expected 'x' in array type");
      const Type* elem = parse_type(line);
      line.expect(']', "array type");
      errno = 0;
      char* end = nullptr;
      const std::uint64_t n = std::strtoull(count.c_str(), &end, 10);
      if (errno == ERANGE)
        line.fail("array length '" + count + "' overflows 64 bits");
      if (end != count.c_str() + count.size() || count.empty())
        line.fail("malformed array length '" + count + "'");
      base = types.array_of(elem, n);
    } else if (line.consume('%')) {
      const std::string name = line.ident();
      base = types.struct_by_name(name);
      if (base == nullptr) line.fail("unknown struct %" + name);
    } else if (line.consume_word("void")) {
      base = types.void_type();
    } else if (line.consume_word("double")) {
      base = types.double_type();
    } else if (line.peek() == 'i') {
      const std::string word = line.ident();
      if (word.size() < 2 || word[0] != 'i')
        line.fail("expected a type, found '" + word + "'");
      base = types.int_type(
          static_cast<unsigned>(std::strtoul(word.c_str() + 1, nullptr, 10)));
    } else {
      line.fail("expected a type");
    }
    while (line.consume('*')) base = types.ptr_to(base);
    return base;
  }

  // -- module-level entities -------------------------------------------------

  void parse_header_line(Line& line) {
    if (line.at_end()) return;
    if (line.consume('%')) {
      const std::string name = line.ident();
      if (!line.consume('=') || !line.consume_word("type")) return;
      line.expect('{', "struct body");
      std::vector<const Type*> fields;
      if (!line.consume('}')) {
        do {
          fields.push_back(parse_type(line));
        } while (line.consume(','));
        line.expect('}', "struct body");
      }
      module_->types().define_struct(module_->types().struct_by_name(name),
                                     std::move(fields));
      return;
    }
    if (line.consume('@')) {
      const std::string name = line.ident();
      line.expect('=', "global");
      if (!line.consume_word("global")) line.fail("expected 'global'");
      const Type* type = parse_type(line);
      std::vector<std::uint8_t> init;
      if (line.consume_word("zeroinitializer")) {
        init.assign(type->size_in_bytes(), 0);
      } else if (line.consume('x')) {
        line.expect('"', "hex initializer");
        const std::string rest = line.rest();
        std::size_t i = 0;
        auto nibble = [&](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        while (i + 1 < rest.size() && rest[i] != '"') {
          const int hi = nibble(rest[i]), lo = nibble(rest[i + 1]);
          if (hi < 0 || lo < 0) line.fail("bad hex initializer");
          init.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
          i += 2;
        }
        if (init.size() != type->size_in_bytes())
          line.fail("initializer size does not match type");
      } else {
        line.fail("expected zeroinitializer or x\"..\"");
      }
      module_->create_global(type, name, std::move(init));
      return;
    }
    const bool is_declare = line.consume_word("declare");
    const bool is_define = !is_declare && line.consume_word("define");
    if (!is_declare && !is_define) return;
    const Type* ret = parse_type(line);
    line.expect('@', "function name");
    const std::string name = line.ident();
    line.expect('(', "parameter list");
    std::vector<const Type*> params;
    if (!line.consume(')')) {
      do {
        params.push_back(parse_type(line));
        line.expect('%', "parameter name");
        line.ident();  // positional; the name is ignored
      } while (line.consume(','));
      line.expect(')', "parameter list");
    }
    module_->create_function(module_->types().func_type(ret, std::move(params)),
                             name, is_declare);
  }

  // -- function bodies ---------------------------------------------------------

  struct PendingFixup {
    Instruction* user;
    unsigned operand;
    std::string name;  // %tN placeholder to resolve
  };

  void parse_bodies() {
    Function* current = nullptr;
    BasicBlock* block = nullptr;
    for (Line line : lines_) {
      if (line.at_end()) continue;
      Line probe = line;
      if (probe.consume_word("define")) {
        parse_type(probe);
        probe.expect('@', "function name");
        const std::string name = probe.ident();
        current = module_->find_function(name);
        begin_function(*current);
        block = nullptr;
        continue;
      }
      if (current == nullptr) continue;
      Line closer = line;
      if (closer.consume('}')) {
        finish_function(*current);
        current = nullptr;
        continue;
      }
      // Label?
      Line label = line;
      if (label.peek() != '%' && label.peek() != '@') {
        Line l2 = label;
        const std::string word = l2.ident();
        if (l2.consume(':')) {
          block = blocks_.at(word);
          continue;
        }
      }
      if (block == nullptr) line.fail("instruction outside a block");
      parse_instruction(line, *current, block);
    }
  }

  void begin_function(Function& fn) {
    blocks_.clear();
    values_.clear();
    fixups_.clear();
    placeholders_.clear();
    for (std::size_t i = 0; i < fn.num_args(); ++i)
      values_["arg" + std::to_string(i)] = fn.arg(i);
    // Pre-scan this function's lines for labels so forward branch targets
    // resolve; labels are unique ids (bbN) within a function.
    bool in_this = false;
    for (Line line : lines_) {
      Line probe = line;
      if (probe.consume_word("define")) {
        parse_type(probe);
        probe.expect('@', "function name");
        in_this = probe.ident() == fn.name();
        continue;
      }
      if (!in_this) continue;
      Line closer = line;
      if (closer.consume('}')) break;
      Line label = line;
      if (label.at_end() || label.peek() == '%' || label.peek() == '@')
        continue;
      Line l2 = label;
      const std::string word = l2.ident();
      // The label itself is the unique id (bbN); the stripped comment
      // carries the original human-readable block name, if any.
      if (l2.consume(':')) blocks_[word] = fn.create_block(line.comment());
    }
  }

  void finish_function(Function& fn) {
    // Resolve forward references through the placeholder arguments.
    for (const PendingFixup& fix : fixups_) {
      auto it = values_.find(fix.name);
      if (it == values_.end())
        throw IrParseError("undefined value %" + fix.name + " in @" + fn.name(),
                           0);
      fix.user->set_operand(fix.operand, it->second);
    }
    placeholders_.clear();
  }

  // -- values -------------------------------------------------------------------

  /// Parses a value reference of the given type. Forward references get a
  /// typed placeholder resolved in finish_function.
  Value* parse_value(Line& line, const Type* type) {
    if (line.consume('%')) {
      const std::string name = line.ident();
      auto it = values_.find(name);
      if (it != values_.end()) return it->second;
      // Forward reference: typed placeholder, recorded when used.
      placeholders_.push_back(
          std::make_unique<Argument>(type, "fwd." + name, 0));
      pending_placeholder_ = name;
      return placeholders_.back().get();
    }
    if (line.consume('@')) {
      const std::string name = line.ident();
      GlobalVariable* g = module_->find_global(name);
      if (g == nullptr) line.fail("unknown global @" + name);
      return g;
    }
    if (line.consume_word("null")) return module_->const_null(type);
    if (line.consume_word("true")) return module_->const_i1(true);
    if (line.consume_word("false")) return module_->const_i1(false);
    const std::string token = line.number_token();
    if (type->is_double())
      return module_->const_double(std::strtod(token.c_str(), nullptr));
    if (type->is_int())
      return module_->const_int(
          type, static_cast<std::uint64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    line.fail("constant of unsupported type");
  }

  /// parse_value + fixup registration, for one operand slot.
  Value* operand(Line& line, const Type* type, std::vector<std::string>& fwd) {
    pending_placeholder_.clear();
    Value* v = parse_value(line, type);
    fwd.push_back(pending_placeholder_);
    return v;
  }

  void register_fixups(Instruction* instr,
                       const std::vector<std::string>& fwd) {
    for (unsigned i = 0; i < fwd.size(); ++i)
      if (!fwd[i].empty()) fixups_.push_back({instr, i, fwd[i]});
  }

  BasicBlock* parse_label_ref(Line& line) {
    if (!line.consume_word("label")) line.fail("expected 'label'");
    line.expect('%', "block label");
    const std::string name = line.ident();
    auto it = blocks_.find(name);
    if (it == blocks_.end()) line.fail("unknown block %" + name);
    return it->second;
  }

  // -- instructions --------------------------------------------------------------

  void parse_instruction(Line& line, Function& fn, BasicBlock* block) {
    std::string result_name;
    {
      Line probe = line;
      if (probe.consume('%')) {
        const std::string name = probe.ident();
        if (probe.consume('=')) {
          result_name = name;
          line = probe;
        }
      }
    }

    auto& types = module_->types();
    std::vector<std::string> fwd;
    Instruction* made = nullptr;

    auto finish = [&](std::unique_ptr<Instruction> instr) {
      made = block->append(std::move(instr));
      register_fixups(made, fwd);
      if (!result_name.empty()) values_[result_name] = made;
    };

    // Terminators and memory first; casts/binaries by opcode name.
    if (line.consume_word("ret")) {
      if (line.consume_word("void")) {
        finish(std::make_unique<RetInst>(types.void_type(), nullptr));
        return;
      }
      const Type* t = parse_type(line);
      Value* v = operand(line, t, fwd);
      finish(std::make_unique<RetInst>(types.void_type(), v));
      return;
    }
    if (line.consume_word("br")) {
      Line probe = line;
      if (probe.consume_word("label")) {
        line = probe;
        line.expect('%', "block label");
        const std::string name = line.ident();
        finish(std::make_unique<BranchInst>(types.void_type(),
                                            blocks_.at(name)));
        return;
      }
      const Type* t = parse_type(line);
      Value* cond = operand(line, t, fwd);
      line.expect(',', "br");
      BasicBlock* then_bb = parse_label_ref(line);
      line.expect(',', "br");
      BasicBlock* else_bb = parse_label_ref(line);
      finish(std::make_unique<BranchInst>(types.void_type(), cond, then_bb,
                                          else_bb));
      return;
    }
    if (line.consume_word("store")) {
      const Type* vt = parse_type(line);
      Value* v = operand(line, vt, fwd);
      line.expect(',', "store");
      const Type* pt = parse_type(line);
      Value* p = operand(line, pt, fwd);
      finish(std::make_unique<StoreInst>(types.void_type(), v, p));
      return;
    }
    if (line.consume_word("load")) {
      parse_type(line);  // result type (redundant with the pointer's)
      line.expect(',', "load");
      const Type* pt = parse_type(line);
      Value* p = operand(line, pt, fwd);
      finish(std::make_unique<LoadInst>(p, result_name));
      return;
    }
    if (line.consume_word("alloca")) {
      const Type* allocated = parse_type(line);
      finish(std::make_unique<AllocaInst>(types.ptr_to(allocated), allocated,
                                          result_name));
      return;
    }
    if (line.consume_word("getelementptr")) {
      const Type* base_type = parse_type(line);
      Value* base = operand(line, base_type, fwd);
      std::vector<Value*> indices;
      while (line.consume(',')) {
        const Type* it = parse_type(line);
        indices.push_back(operand(line, it, fwd));
      }
      const Type* result = GepInst::result_type(types, base_type, indices);
      finish(std::make_unique<GepInst>(result, base, std::move(indices),
                                       result_name));
      return;
    }
    if (line.consume_word("phi")) {
      const Type* t = parse_type(line);
      auto phi = std::make_unique<PhiInst>(t, result_name);
      PhiInst* raw = phi.get();
      made = block->append(std::move(phi));
      if (!result_name.empty()) values_[result_name] = made;
      unsigned index = 0;
      do {
        line.expect('[', "phi incoming");
        pending_placeholder_.clear();
        Value* v = parse_value(line, t);
        const std::string placeholder = pending_placeholder_;
        line.expect(',', "phi incoming");
        line.expect('%', "phi incoming block");
        const std::string bname = line.ident();
        line.expect(']', "phi incoming");
        raw->add_incoming(v, blocks_.at(bname));
        if (!placeholder.empty())
          fixups_.push_back({raw, index, placeholder});
        ++index;
      } while (line.consume(','));
      return;
    }
    if (line.consume_word("select")) {
      const Type* ct = parse_type(line);
      Value* c = operand(line, ct, fwd);
      line.expect(',', "select");
      const Type* tt = parse_type(line);
      Value* tv = operand(line, tt, fwd);
      line.expect(',', "select");
      const Type* ft = parse_type(line);
      Value* fv = operand(line, ft, fwd);
      finish(std::make_unique<SelectInst>(c, tv, fv, result_name));
      return;
    }
    if (line.consume_word("call")) {
      parse_type(line);  // return type (redundant)
      line.expect('@', "callee");
      const std::string callee_name = line.ident();
      Function* callee = module_->find_function(callee_name);
      if (callee == nullptr) line.fail("unknown function @" + callee_name);
      line.expect('(', "call arguments");
      std::vector<Value*> args;
      if (!line.consume(')')) {
        do {
          const Type* at = parse_type(line);
          args.push_back(operand(line, at, fwd));
        } while (line.consume(','));
        line.expect(')', "call arguments");
      }
      finish(std::make_unique<CallInst>(callee->return_type(), callee,
                                        std::move(args), result_name));
      return;
    }
    if (line.consume_word("icmp")) {
      const std::string pred = line.ident();
      const Type* t = parse_type(line);
      Value* a = operand(line, t, fwd);
      line.expect(',', "icmp");
      Value* b = operand(line, t, fwd);
      finish(std::make_unique<ICmpInst>(types.i1(), icmp_pred(line, pred), a,
                                        b, result_name));
      return;
    }
    if (line.consume_word("fcmp")) {
      const std::string pred = line.ident();
      const Type* t = parse_type(line);
      Value* a = operand(line, t, fwd);
      line.expect(',', "fcmp");
      Value* b = operand(line, t, fwd);
      finish(std::make_unique<FCmpInst>(types.i1(), fcmp_pred(line, pred), a,
                                        b, result_name));
      return;
    }

    // Casts: `<op> <type> <val> to <type>`.
    static const std::pair<const char*, Opcode> kCasts[] = {
        {"trunc", Opcode::Trunc},     {"zext", Opcode::ZExt},
        {"sext", Opcode::SExt},       {"fptosi", Opcode::FPToSI},
        {"sitofp", Opcode::SIToFP},   {"bitcast", Opcode::Bitcast},
        {"ptrtoint", Opcode::PtrToInt}, {"inttoptr", Opcode::IntToPtr},
    };
    for (const auto& [word, op] : kCasts) {
      if (line.consume_word(word)) {
        const Type* from = parse_type(line);
        Value* v = operand(line, from, fwd);
        if (!line.consume_word("to")) line.fail("expected 'to'");
        const Type* to = parse_type(line);
        finish(std::make_unique<CastInst>(op, v, to, result_name));
        return;
      }
    }

    // Binary operations: `<op> <type> <a>, <b>`.
    static const std::pair<const char*, Opcode> kBinary[] = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
        {"sdiv", Opcode::SDiv}, {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
        {"urem", Opcode::URem}, {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv},
    };
    for (const auto& [word, op] : kBinary) {
      if (line.consume_word(word)) {
        const Type* t = parse_type(line);
        Value* a = operand(line, t, fwd);
        line.expect(',', "binary operand");
        Value* b = operand(line, t, fwd);
        finish(std::make_unique<BinaryInst>(op, a, b, result_name));
        return;
      }
    }
    line.fail("unknown instruction");
    (void)fn;
  }

  static ICmpPred icmp_pred(Line& line, const std::string& name) {
    static const std::pair<const char*, ICmpPred> kPreds[] = {
        {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},  {"slt", ICmpPred::SLT},
        {"sle", ICmpPred::SLE}, {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
        {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE}, {"ugt", ICmpPred::UGT},
        {"uge", ICmpPred::UGE},
    };
    for (const auto& [word, pred] : kPreds)
      if (name == word) return pred;
    line.fail("unknown icmp predicate " + name);
  }

  static FCmpPred fcmp_pred(Line& line, const std::string& name) {
    static const std::pair<const char*, FCmpPred> kPreds[] = {
        {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE}, {"olt", FCmpPred::OLT},
        {"ole", FCmpPred::OLE}, {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE},
    };
    for (const auto& [word, pred] : kPreds)
      if (name == word) return pred;
    line.fail("unknown fcmp predicate " + name);
  }

  std::unique_ptr<Module> module_;
  std::vector<Line> lines_;

  // Per-function state.
  std::map<std::string, BasicBlock*> blocks_;
  std::map<std::string, Value*> values_;  // "t3" / "arg0" -> value
  std::vector<PendingFixup> fixups_;
  std::vector<std::unique_ptr<Argument>> placeholders_;
  std::string pending_placeholder_;
};

}  // namespace

std::unique_ptr<Module> parse_module(const std::string& text,
                                     const std::string& name) {
  return ModuleParser(text, name).run();
}

}  // namespace faultlab::ir
