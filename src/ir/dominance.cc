#include "ir/dominance.h"

#include <algorithm>
#include <cassert>

namespace faultlab::ir {

namespace {

void postorder(const BasicBlock* bb, std::set<const BasicBlock*>& seen,
               std::vector<const BasicBlock*>& out) {
  if (!seen.insert(bb).second) return;
  for (const BasicBlock* succ : bb->successors()) postorder(succ, seen, out);
  out.push_back(bb);
}

}  // namespace

DominatorTree::DominatorTree(const Function& function) {
  const BasicBlock* entry = function.entry();
  if (entry == nullptr) return;

  std::set<const BasicBlock*> seen;
  std::vector<const BasicBlock*> po;
  postorder(entry, seen, po);
  rpo_.assign(po.rbegin(), po.rend());
  for (std::size_t i = 0; i < rpo_.size(); ++i) order_index_[rpo_[i]] = i;

  // Predecessors restricted to reachable blocks.
  std::map<const BasicBlock*, std::vector<const BasicBlock*>> preds;
  for (const BasicBlock* bb : rpo_)
    for (const BasicBlock* succ : bb->successors())
      if (order_index_.count(succ)) preds[succ].push_back(bb);

  // Cooper–Harvey–Kennedy iteration.
  idom_[entry] = entry;
  auto intersect = [&](const BasicBlock* a, const BasicBlock* b) {
    while (a != b) {
      while (order_index_.at(a) > order_index_.at(b)) a = idom_.at(a);
      while (order_index_.at(b) > order_index_.at(a)) b = idom_.at(b);
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock* bb : rpo_) {
      if (bb == entry) continue;
      const BasicBlock* new_idom = nullptr;
      for (const BasicBlock* p : preds[bb]) {
        if (!idom_.count(p)) continue;
        new_idom = new_idom == nullptr ? p : intersect(p, new_idom);
      }
      assert(new_idom != nullptr && "reachable block with no processed pred");
      auto it = idom_.find(bb);
      if (it == idom_.end() || it->second != new_idom) {
        idom_[bb] = new_idom;
        changed = true;
      }
    }
  }

  // Dominance frontiers.
  for (const BasicBlock* bb : rpo_) {
    const auto& ps = preds[bb];
    if (ps.size() < 2) continue;
    for (const BasicBlock* p : ps) {
      const BasicBlock* runner = p;
      while (runner != idom_.at(bb)) {
        frontier_[runner].insert(bb);
        runner = idom_.at(runner);
      }
    }
  }
}

const BasicBlock* DominatorTree::idom(const BasicBlock* bb) const {
  auto it = idom_.find(bb);
  if (it == idom_.end() || it->second == bb) return nullptr;
  return it->second;
}

bool DominatorTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  if (!reachable(b)) return true;  // vacuous: nothing executes there
  const BasicBlock* cur = b;
  while (true) {
    if (cur == a) return true;
    auto it = idom_.find(cur);
    if (it == idom_.end() || it->second == cur) return false;
    cur = it->second;
  }
}

bool DominatorTree::value_dominates(const Instruction* def,
                                    const Instruction* use) const {
  const BasicBlock* def_bb = def->parent();
  const BasicBlock* use_bb = use->parent();
  if (auto* phi = dynamic_cast<const PhiInst*>(use)) {
    // A phi reads its i-th operand at the end of the i-th incoming block.
    for (unsigned i = 0; i < phi->num_incoming(); ++i)
      if (phi->incoming_value(i) == def &&
          !dominates(def_bb, phi->incoming_block(i)))
        return false;
    return true;
  }
  if (def_bb == use_bb) {
    return def_bb->index_of(def) < use_bb->index_of(use);
  }
  return dominates(def_bb, use_bb);
}

const std::set<const BasicBlock*>& DominatorTree::frontier(
    const BasicBlock* bb) const {
  auto it = frontier_.find(bb);
  return it == frontier_.end() ? empty_ : it->second;
}

}  // namespace faultlab::ir
