// Module: the IR translation unit — owns the type context, all functions,
// globals, and interned constants.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/constant.h"
#include "ir/function.h"
#include "ir/type.h"

namespace faultlab::ir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  ~Module();

  const std::string& name() const noexcept { return name_; }
  TypeContext& types() noexcept { return types_; }
  const TypeContext& types() const noexcept { return types_; }

  Function* create_function(const Type* func_type, std::string name,
                            bool is_builtin = false);
  Function* find_function(const std::string& name) const noexcept;
  const std::vector<std::unique_ptr<Function>>& functions() const noexcept {
    return functions_;
  }

  GlobalVariable* create_global(const Type* value_type, std::string name,
                                std::vector<std::uint8_t> init = {});
  GlobalVariable* find_global(const std::string& name) const noexcept;
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const noexcept {
    return globals_;
  }

  /// Interned constants (stable addresses for the lifetime of the module).
  ConstantInt* const_int(const Type* type, std::uint64_t raw_bits);
  ConstantInt* const_i1(bool value);
  ConstantInt* const_i32(std::int32_t value);
  ConstantInt* const_i64(std::int64_t value);
  ConstantDouble* const_double(double value);
  ConstantNull* const_null(const Type* ptr_type);

 private:
  std::string name_;
  TypeContext types_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Value>> constants_;
};

}  // namespace faultlab::ir
