// Basic blocks: ordered instruction sequences ending in a terminator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace faultlab::ir {

class Function;

class BasicBlock {
 public:
  BasicBlock(Function* parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}
  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  Function* parent() const noexcept { return parent_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  unsigned id() const noexcept { return id_; }

  bool empty() const noexcept { return instructions_.empty(); }
  std::size_t size() const noexcept { return instructions_.size(); }
  Instruction* instr(std::size_t i) const { return instructions_.at(i).get(); }
  const std::vector<std::unique_ptr<Instruction>>& instructions() const noexcept {
    return instructions_;
  }

  Instruction* terminator() const noexcept {
    if (instructions_.empty()) return nullptr;
    Instruction* last = instructions_.back().get();
    return last->is_terminator() ? last : nullptr;
  }

  /// Appends `instr` and returns a raw pointer to it.
  Instruction* append(std::unique_ptr<Instruction> instr);
  /// Inserts at position `index` (0 == front, used for phi placement).
  Instruction* insert(std::size_t index, std::unique_ptr<Instruction> instr);
  /// Removes (and destroys) the instruction at `index`. The instruction
  /// must have no remaining uses.
  void erase(std::size_t index);
  /// Removes and returns the instruction at `index` without destroying it.
  std::unique_ptr<Instruction> take(std::size_t index);
  /// Index of `instr` within this block; asserts if absent.
  std::size_t index_of(const Instruction* instr) const;

  /// Successor blocks, derived from the terminator (empty if none).
  std::vector<BasicBlock*> successors() const;

  /// Leading phi instructions of this block.
  std::vector<PhiInst*> phis() const;

 private:
  friend class Function;
  Function* parent_;
  std::string name_;
  unsigned id_ = 0;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

}  // namespace faultlab::ir
