// Textual IR printer (LLVM-flavoured), used by tests, the compiler-explorer
// example, and debugging.
#pragma once

#include <string>

#include "ir/module.h"

namespace faultlab::ir {

std::string to_string(const Module& module);
std::string to_string(const Function& function);
std::string to_string(const Instruction& instr);

}  // namespace faultlab::ir
