// Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy algorithm),
// used by mem2reg for phi placement and by the verifier for SSA checking.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "ir/function.h"

namespace faultlab::ir {

class DominatorTree {
 public:
  explicit DominatorTree(const Function& function);

  /// Immediate dominator; null for the entry block and unreachable blocks.
  const BasicBlock* idom(const BasicBlock* bb) const;

  /// True when `a` dominates `b` (reflexive).
  bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// True when instruction `def`'s value is available at (strictly before)
  /// instruction `use`. Phis are treated as reading on incoming edges.
  bool value_dominates(const Instruction* def, const Instruction* use) const;

  /// Dominance frontier of `bb`.
  const std::set<const BasicBlock*>& frontier(const BasicBlock* bb) const;

  bool reachable(const BasicBlock* bb) const {
    return order_index_.count(bb) != 0;
  }

  /// Blocks in reverse postorder over the CFG (entry first).
  const std::vector<const BasicBlock*>& reverse_postorder() const noexcept {
    return rpo_;
  }

 private:
  std::vector<const BasicBlock*> rpo_;
  std::map<const BasicBlock*, std::size_t> order_index_;  // rpo position
  std::map<const BasicBlock*, const BasicBlock*> idom_;
  std::map<const BasicBlock*, std::set<const BasicBlock*>> frontier_;
  std::set<const BasicBlock*> empty_;
};

}  // namespace faultlab::ir
