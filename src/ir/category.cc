#include "ir/category.h"

namespace faultlab::ir {

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::Arithmetic: return "arithmetic";
    case Category::Cast: return "cast";
    case Category::Cmp: return "cmp";
    case Category::Load: return "load";
    case Category::All: return "all";
  }
  return "?";
}

std::optional<Category> category_from_name(const std::string& name) noexcept {
  for (Category c : kAllCategories)
    if (name == category_name(c)) return c;
  return std::nullopt;
}

bool ir_injectable(const Instruction& instr) noexcept {
  if (!instr.has_result()) return false;
  if (!instr.type()->is_scalar()) return false;
  return instr.opcode() != Opcode::Alloca;
}

bool ir_in_category(const Instruction& instr, Category c) noexcept {
  if (!ir_injectable(instr)) return false;
  const Opcode op = instr.opcode();
  switch (c) {
    case Category::Arithmetic:
      return is_int_binary(op) || is_fp_binary(op);
    case Category::Cast:
      return is_conversion_cast(op);
    case Category::Cmp:
      return op == Opcode::ICmp || op == Opcode::FCmp;
    case Category::Load:
      return op == Opcode::Load;
    case Category::All:
      return true;
  }
  return false;
}

}  // namespace faultlab::ir
