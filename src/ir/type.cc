#include "ir/type.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace faultlab::ir {

namespace {
std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}
}  // namespace

std::uint64_t Type::size_in_bytes() const {
  switch (kind_) {
    case TypeKind::Void:
    case TypeKind::Func:
      return 0;
    case TypeKind::Int:
      return bits_ <= 8 ? 1 : bits_ / 8;
    case TypeKind::Double:
    case TypeKind::Ptr:
      return 8;
    case TypeKind::Array:
      return elem_->size_in_bytes() * count_;
    case TypeKind::Struct: {
      std::uint64_t size = 0;
      for (const Type* f : fields_) {
        size = align_up(size, f->alignment());
        size += f->size_in_bytes();
      }
      return align_up(std::max<std::uint64_t>(size, 1), alignment());
    }
  }
  return 0;
}

std::uint64_t Type::alignment() const {
  switch (kind_) {
    case TypeKind::Void:
    case TypeKind::Func:
      return 1;
    case TypeKind::Int:
      return bits_ <= 8 ? 1 : bits_ / 8;
    case TypeKind::Double:
    case TypeKind::Ptr:
      return 8;
    case TypeKind::Array:
      return elem_->alignment();
    case TypeKind::Struct: {
      std::uint64_t a = 1;
      for (const Type* f : fields_) a = std::max(a, f->alignment());
      return a;
    }
  }
  return 1;
}

std::uint64_t Type::struct_field_offset(std::size_t index) const {
  assert(is_struct() && index < fields_.size());
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i <= index; ++i) {
    offset = align_up(offset, fields_[i]->alignment());
    if (i == index) return offset;
    offset += fields_[i]->size_in_bytes();
  }
  return offset;
}

std::string Type::to_string() const {
  switch (kind_) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return "i" + std::to_string(bits_);
    case TypeKind::Double:
      return "double";
    case TypeKind::Ptr:
      return pointee_->to_string() + "*";
    case TypeKind::Array:
      return "[" + std::to_string(count_) + " x " + elem_->to_string() + "]";
    case TypeKind::Struct:
      return "%" + name_;
    case TypeKind::Func: {
      std::ostringstream os;
      os << return_type_->to_string() << " (";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) os << ", ";
        os << fields_[i]->to_string();
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

TypeContext::TypeContext() {
  Type* v = intern();
  v->kind_ = TypeKind::Void;
  void_ = v;
  Type* d = intern();
  d->kind_ = TypeKind::Double;
  double_ = d;
}

Type* TypeContext::intern() {
  pool_.push_back(std::unique_ptr<Type>(new Type()));
  return pool_.back().get();
}

const Type* TypeContext::int_type(unsigned bits) {
  if (bits != 1 && bits != 8 && bits != 16 && bits != 32 && bits != 64)
    throw std::invalid_argument("unsupported integer width i" + std::to_string(bits));
  for (const auto& t : pool_)
    if (t->kind_ == TypeKind::Int && t->bits_ == bits) return t.get();
  Type* t = intern();
  t->kind_ = TypeKind::Int;
  t->bits_ = bits;
  return t;
}

const Type* TypeContext::ptr_to(const Type* pointee) {
  for (const auto& t : pool_)
    if (t->kind_ == TypeKind::Ptr && t->pointee_ == pointee) return t.get();
  Type* t = intern();
  t->kind_ = TypeKind::Ptr;
  t->pointee_ = pointee;
  return t;
}

const Type* TypeContext::array_of(const Type* element, std::uint64_t count) {
  for (const auto& t : pool_)
    if (t->kind_ == TypeKind::Array && t->elem_ == element && t->count_ == count)
      return t.get();
  Type* t = intern();
  t->kind_ = TypeKind::Array;
  t->elem_ = element;
  t->count_ = count;
  return t;
}

const Type* TypeContext::make_struct(std::string name,
                                     std::vector<const Type*> fields) {
  const Type* t = declare_struct(std::move(name));
  define_struct(t, std::move(fields));
  return t;
}

const Type* TypeContext::declare_struct(std::string name) {
  if (struct_by_name(name) != nullptr)
    throw std::invalid_argument("duplicate struct name: " + name);
  Type* t = intern();
  t->kind_ = TypeKind::Struct;
  t->name_ = std::move(name);
  return t;
}

void TypeContext::define_struct(const Type* declared,
                                std::vector<const Type*> fields) {
  assert(declared->is_struct());
  for (const auto& t : pool_) {
    if (t.get() == declared) {
      if (!t->fields_.empty())
        throw std::invalid_argument("struct defined twice: " + t->name_);
      t->fields_ = std::move(fields);
      return;
    }
  }
  throw std::invalid_argument("struct from another context");
}

const Type* TypeContext::struct_by_name(const std::string& name) const noexcept {
  for (const auto& t : pool_)
    if (t->kind_ == TypeKind::Struct && t->name_ == name) return t.get();
  return nullptr;
}

std::vector<const Type*> TypeContext::struct_types() const {
  std::vector<const Type*> out;
  for (const auto& t : pool_)
    if (t->is_struct()) out.push_back(t.get());
  return out;
}

const Type* TypeContext::func_type(const Type* ret,
                                   std::vector<const Type*> params) {
  for (const auto& t : pool_)
    if (t->kind_ == TypeKind::Func && t->return_type_ == ret && t->fields_ == params)
      return t.get();
  Type* t = intern();
  t->kind_ = TypeKind::Func;
  t->return_type_ = ret;
  t->fields_ = std::move(params);
  return t;
}

}  // namespace faultlab::ir
