#include "ir/basic_block.h"

#include <cassert>

namespace faultlab::ir {

Instruction* BasicBlock::append(std::unique_ptr<Instruction> instr) {
  instr->parent_ = this;
  instructions_.push_back(std::move(instr));
  return instructions_.back().get();
}

Instruction* BasicBlock::insert(std::size_t index,
                                std::unique_ptr<Instruction> instr) {
  assert(index <= instructions_.size());
  instr->parent_ = this;
  auto it = instructions_.insert(instructions_.begin() + index, std::move(instr));
  return it->get();
}

void BasicBlock::erase(std::size_t index) {
  assert(index < instructions_.size());
  assert(!instructions_[index]->has_uses() && "erasing instruction with uses");
  instructions_.erase(instructions_.begin() + index);
}

std::unique_ptr<Instruction> BasicBlock::take(std::size_t index) {
  assert(index < instructions_.size());
  std::unique_ptr<Instruction> out = std::move(instructions_[index]);
  instructions_.erase(instructions_.begin() + index);
  out->parent_ = nullptr;
  return out;
}

std::size_t BasicBlock::index_of(const Instruction* instr) const {
  for (std::size_t i = 0; i < instructions_.size(); ++i)
    if (instructions_[i].get() == instr) return i;
  assert(false && "instruction not in block");
  return instructions_.size();
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  if (auto* br = dynamic_cast<BranchInst*>(terminator())) {
    out.push_back(br->true_target());
    if (br->is_conditional() && br->false_target() != br->true_target())
      out.push_back(br->false_target());
  }
  return out;
}

std::vector<PhiInst*> BasicBlock::phis() const {
  std::vector<PhiInst*> out;
  for (const auto& instr : instructions_) {
    auto* phi = dynamic_cast<PhiInst*>(instr.get());
    if (phi == nullptr) break;
    out.push_back(phi);
  }
  return out;
}

}  // namespace faultlab::ir
