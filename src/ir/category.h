// Instruction categories of the paper's Table III, on the IR side.
//
// The LLFI injector selects its static targets with these predicates:
//   arithmetic — integer/fp arithmetic and logic ops (GEP is *not* counted,
//                mirroring LLVM where getelementptr is not arithmetic; this
//                asymmetry drives the paper's bzip2 'arithmetic' divergence)
//   cast       — conversion casts only (trunc/zext/sext/fptosi/sitofp),
//                the paper's Table I row-5 mitigation
//   cmp        — icmp and fcmp
//   load       — load
//   all        — every instruction with a destination register
#pragma once

#include <iterator>
#include <optional>
#include <string>

#include "ir/instruction.h"

namespace faultlab::ir {

enum class Category : std::uint8_t { Arithmetic, Cast, Cmp, Load, All };

inline constexpr Category kAllCategories[] = {
    Category::Arithmetic, Category::Cast, Category::Cmp, Category::Load,
    Category::All};

inline constexpr std::size_t kNumCategories = std::size(kAllCategories);

const char* category_name(Category c) noexcept;
std::optional<Category> category_from_name(const std::string& name) noexcept;

/// True when `instr` belongs to category `c` for LLFI target selection.
/// 'All' matches every instruction that has a destination register.
bool ir_in_category(const Instruction& instr, Category c) noexcept;

/// True when the instruction can be an injection target at all (produces a
/// scalar register value). Allocas are excluded: their result is the frame
/// address, which at the assembly level is produced by the (uninstrumented)
/// stack-pointer adjustment, not by a destination-register write.
bool ir_injectable(const Instruction& instr) noexcept;

}  // namespace faultlab::ir
