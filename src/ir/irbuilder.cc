#include "ir/irbuilder.h"

#include <cassert>

namespace faultlab::ir {

Instruction* IRBuilder::append(std::unique_ptr<Instruction> instr) {
  assert(bb_ != nullptr && "no insert point");
  assert(bb_->terminator() == nullptr && "appending after terminator");
  return bb_->append(std::move(instr));
}

Value* IRBuilder::binary(Opcode op, Value* lhs, Value* rhs, std::string name) {
  return append(std::make_unique<BinaryInst>(op, lhs, rhs, std::move(name)));
}

Value* IRBuilder::icmp(ICmpPred pred, Value* lhs, Value* rhs, std::string name) {
  return append(std::make_unique<ICmpInst>(types().i1(), pred, lhs, rhs,
                                           std::move(name)));
}

Value* IRBuilder::fcmp(FCmpPred pred, Value* lhs, Value* rhs, std::string name) {
  return append(std::make_unique<FCmpInst>(types().i1(), pred, lhs, rhs,
                                           std::move(name)));
}

Value* IRBuilder::cast(Opcode op, Value* value, const Type* to,
                       std::string name) {
  return append(std::make_unique<CastInst>(op, value, to, std::move(name)));
}

Value* IRBuilder::alloca_of(const Type* allocated, std::string name) {
  return append(std::make_unique<AllocaInst>(types().ptr_to(allocated),
                                             allocated, std::move(name)));
}

Value* IRBuilder::load(Value* pointer, std::string name) {
  return append(std::make_unique<LoadInst>(pointer, std::move(name)));
}

void IRBuilder::store(Value* value, Value* pointer) {
  append(std::make_unique<StoreInst>(types().void_type(), value, pointer));
}

Value* IRBuilder::gep(Value* base, std::vector<Value*> indices,
                      std::string name) {
  const Type* result =
      GepInst::result_type(types(), base->type(), indices);
  return append(std::make_unique<GepInst>(result, base, std::move(indices),
                                          std::move(name)));
}

PhiInst* IRBuilder::phi(const Type* type, std::string name) {
  // Phis belong at the head of the block, before any non-phi instruction.
  assert(bb_ != nullptr);
  std::size_t pos = 0;
  while (pos < bb_->size() && bb_->instr(pos)->opcode() == Opcode::Phi) ++pos;
  return static_cast<PhiInst*>(
      bb_->insert(pos, std::make_unique<PhiInst>(type, std::move(name))));
}

Value* IRBuilder::select(Value* cond, Value* if_true, Value* if_false,
                         std::string name) {
  return append(std::make_unique<SelectInst>(cond, if_true, if_false,
                                             std::move(name)));
}

Value* IRBuilder::call(Function* callee, std::vector<Value*> args,
                       std::string name) {
  return append(std::make_unique<CallInst>(callee->return_type(), callee,
                                           std::move(args), std::move(name)));
}

void IRBuilder::br(BasicBlock* target) {
  append(std::make_unique<BranchInst>(types().void_type(), target));
}

void IRBuilder::cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
  append(std::make_unique<BranchInst>(types().void_type(), cond, if_true,
                                      if_false));
}

void IRBuilder::ret(Value* value) {
  append(std::make_unique<RetInst>(types().void_type(), value));
}

void IRBuilder::ret_void() {
  append(std::make_unique<RetInst>(types().void_type(), nullptr));
}

}  // namespace faultlab::ir
