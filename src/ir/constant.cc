#include "ir/constant.h"

#include "support/bitutil.h"

namespace faultlab::ir {

std::int64_t ConstantInt::signed_value() const noexcept {
  return sign_extend(bits_, type()->int_bits());
}

}  // namespace faultlab::ir
