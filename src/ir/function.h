// Functions: argument lists plus an owned CFG of basic blocks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace faultlab::ir {

class Module;

class Function {
 public:
  Function(Module* parent, const Type* func_type, std::string name,
           bool is_builtin);
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  Module* parent() const noexcept { return parent_; }
  const std::string& name() const noexcept { return name_; }
  const Type* func_type() const noexcept { return type_; }
  const Type* return_type() const noexcept { return type_->func_return(); }

  /// Builtins (print/malloc/sqrt/...) have no body; the VM and simulator
  /// dispatch them to the shared runtime.
  bool is_builtin() const noexcept { return builtin_; }

  std::size_t num_args() const noexcept { return args_.size(); }
  Argument* arg(std::size_t i) const { return args_.at(i).get(); }

  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  std::size_t num_blocks() const noexcept { return blocks_.size(); }
  BasicBlock* block(std::size_t i) const { return blocks_.at(i).get(); }
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const noexcept {
    return blocks_;
  }

  BasicBlock* create_block(std::string name);
  /// Destroys `bb`, which must have no predecessors and whose instruction
  /// results must be unused.
  void erase_block(BasicBlock* bb);

  /// Permutes the block list into the given order; blocks not mentioned
  /// keep their relative order after the mentioned ones. Used to normalize
  /// to reverse postorder (so defs precede uses in list order) before
  /// instruction selection.
  void reorder_blocks(const std::vector<const BasicBlock*>& order);

  /// Map from block to its predecessor blocks (recomputed on each call).
  std::map<const BasicBlock*, std::vector<BasicBlock*>> predecessors() const;

  /// Assigns sequential ids to blocks and value-producing instructions;
  /// called by the printer, verifier and injectors.
  void renumber();

  /// Total instruction count across all blocks.
  std::size_t num_instructions() const noexcept;

 private:
  Module* parent_;
  const Type* type_;
  std::string name_;
  bool builtin_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  unsigned next_block_id_ = 0;
};

}  // namespace faultlab::ir
