#include "ir/function.h"

#include <cassert>

#include "ir/module.h"

namespace faultlab::ir {

Function::Function(Module* parent, const Type* func_type, std::string name,
                   bool is_builtin)
    : parent_(parent),
      type_(func_type),
      name_(std::move(name)),
      builtin_(is_builtin) {
  assert(func_type->is_func());
  const auto& params = func_type->func_params();
  args_.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(
        params[i], "arg" + std::to_string(i), static_cast<unsigned>(i)));
  }
}

BasicBlock* Function::create_block(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(this, std::move(name)));
  blocks_.back()->id_ = next_block_id_++;
  return blocks_.back().get();
}

void Function::erase_block(BasicBlock* bb) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == bb) {
      // Drop instructions back-to-front so intra-block uses disappear
      // before their defs do.
      while (!bb->empty()) {
        assert(!bb->instr(bb->size() - 1)->has_uses() &&
               "erasing block with live results");
        bb->erase(bb->size() - 1);
      }
      blocks_.erase(it);
      return;
    }
  }
  assert(false && "block not in function");
}

void Function::reorder_blocks(const std::vector<const BasicBlock*>& order) {
  std::vector<std::unique_ptr<BasicBlock>> reordered;
  reordered.reserve(blocks_.size());
  for (const BasicBlock* want : order) {
    for (auto& slot : blocks_) {
      if (slot.get() == want) {
        reordered.push_back(std::move(slot));
        break;
      }
    }
  }
  for (auto& slot : blocks_)
    if (slot != nullptr) reordered.push_back(std::move(slot));
  assert(reordered.size() == blocks_.size());
  blocks_ = std::move(reordered);
  renumber();
}

std::map<const BasicBlock*, std::vector<BasicBlock*>> Function::predecessors()
    const {
  std::map<const BasicBlock*, std::vector<BasicBlock*>> preds;
  for (const auto& bb : blocks_) preds[bb.get()];  // ensure every key exists
  for (const auto& bb : blocks_)
    for (BasicBlock* succ : bb->successors()) preds[succ].push_back(bb.get());
  return preds;
}

void Function::renumber() {
  unsigned next = 0;
  unsigned block_id = 0;
  for (const auto& bb : blocks_) {
    bb->id_ = block_id++;
    for (const auto& instr : bb->instructions()) instr->id_ = next++;
  }
  next_block_id_ = block_id;
}

std::size_t Function::num_instructions() const noexcept {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb->size();
  return n;
}

}  // namespace faultlab::ir
