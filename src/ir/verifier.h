// IR verifier: structural and SSA well-formedness checks. Run after
// frontend codegen and after every optimizer pass in debug pipelines.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace faultlab::ir {

/// Returns a list of human-readable violations; empty means the module is
/// well formed.
std::vector<std::string> verify(const Module& module);

/// Throws std::runtime_error listing violations if verification fails.
void verify_or_throw(const Module& module);

}  // namespace faultlab::ir
