// IR constants and global variables.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/value.h"

namespace faultlab::ir {

/// Integer constant; the payload is stored sign-agnostically as the raw
/// two's-complement bit pattern truncated to the type width.
class ConstantInt final : public Value {
 public:
  ConstantInt(const Type* type, std::uint64_t bits)
      : Value(ValueKind::ConstantInt, type, ""), bits_(bits) {
    assert(type->is_int());
  }
  /// Raw (zero-extended) bit pattern.
  std::uint64_t raw() const noexcept { return bits_; }
  /// Value interpreted as signed.
  std::int64_t signed_value() const noexcept;

 private:
  std::uint64_t bits_;
};

class ConstantDouble final : public Value {
 public:
  ConstantDouble(const Type* type, double value)
      : Value(ValueKind::ConstantDouble, type, ""), value_(value) {
    assert(type->is_double());
  }
  double value() const noexcept { return value_; }

 private:
  double value_;
};

/// Null pointer constant of a specific pointer type.
class ConstantNull final : public Value {
 public:
  explicit ConstantNull(const Type* type)
      : Value(ValueKind::ConstantNull, type, "") {
    assert(type->is_ptr());
  }
};

/// A module-level variable. Its Value type is a *pointer* to the value
/// type; the initializer is stored as raw little-endian bytes laid out with
/// the same rules the machine uses, so the VM and the x86 simulator can
/// both materialize it by copying bytes.
class GlobalVariable final : public Value {
 public:
  GlobalVariable(const Type* ptr_type, const Type* value_type,
                 std::string name, std::vector<std::uint8_t> init)
      : Value(ValueKind::GlobalVariable, ptr_type, std::move(name)),
        value_type_(value_type),
        init_(std::move(init)) {
    assert(ptr_type->is_ptr() && ptr_type->pointee() == value_type);
    if (init_.empty()) init_.resize(value_type->size_in_bytes(), 0);
    assert(init_.size() == value_type->size_in_bytes());
  }

  const Type* value_type() const noexcept { return value_type_; }
  const std::vector<std::uint8_t>& initializer() const noexcept { return init_; }
  std::vector<std::uint8_t>& mutable_initializer() noexcept { return init_; }

 private:
  const Type* value_type_;
  std::vector<std::uint8_t> init_;
};

}  // namespace faultlab::ir
