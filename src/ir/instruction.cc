#include "ir/instruction.h"

#include <stdexcept>

#include "ir/basic_block.h"
#include "ir/constant.h"
#include "ir/function.h"

namespace faultlab::ir {

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::UDiv: return "udiv";
    case Opcode::SRem: return "srem";
    case Opcode::URem: return "urem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "getelementptr";
    case Opcode::Trunc: return "trunc";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::PtrToInt: return "ptrtoint";
    case Opcode::IntToPtr: return "inttoptr";
    case Opcode::Phi: return "phi";
    case Opcode::Select: return "select";
    case Opcode::Call: return "call";
    case Opcode::Br: return "br";
    case Opcode::Ret: return "ret";
  }
  return "?";
}

bool is_int_binary(Opcode op) noexcept {
  return op >= Opcode::Add && op <= Opcode::AShr;
}

bool is_fp_binary(Opcode op) noexcept {
  return op >= Opcode::FAdd && op <= Opcode::FDiv;
}

bool is_cast(Opcode op) noexcept {
  return op >= Opcode::Trunc && op <= Opcode::IntToPtr;
}

bool is_conversion_cast(Opcode op) noexcept {
  switch (op) {
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::FPToSI:
    case Opcode::SIToFP:
      return true;
    default:
      return false;
  }
}

const char* icmp_pred_name(ICmpPred p) noexcept {
  switch (p) {
    case ICmpPred::EQ: return "eq";
    case ICmpPred::NE: return "ne";
    case ICmpPred::SLT: return "slt";
    case ICmpPred::SLE: return "sle";
    case ICmpPred::SGT: return "sgt";
    case ICmpPred::SGE: return "sge";
    case ICmpPred::ULT: return "ult";
    case ICmpPred::ULE: return "ule";
    case ICmpPred::UGT: return "ugt";
    case ICmpPred::UGE: return "uge";
  }
  return "?";
}

const char* fcmp_pred_name(FCmpPred p) noexcept {
  switch (p) {
    case FCmpPred::OEQ: return "oeq";
    case FCmpPred::ONE: return "one";
    case FCmpPred::OLT: return "olt";
    case FCmpPred::OLE: return "ole";
    case FCmpPred::OGT: return "ogt";
    case FCmpPred::OGE: return "oge";
  }
  return "?";
}

Instruction::Instruction(Opcode op, const Type* type,
                         std::vector<Value*> operands, std::string name)
    : Value(ValueKind::Instruction, type, std::move(name)),
      op_(op),
      operands_(std::move(operands)) {
  for (unsigned i = 0; i < operands_.size(); ++i) {
    assert(operands_[i] != nullptr);
    operands_[i]->add_use(this, i);
  }
}

Instruction::~Instruction() {
  for (unsigned i = 0; i < operands_.size(); ++i)
    if (operands_[i] != nullptr) operands_[i]->remove_use(this, i);
}

void Instruction::set_operand(unsigned i, Value* value) {
  assert(i < operands_.size() && value != nullptr);
  operands_[i]->remove_use(this, i);
  operands_[i] = value;
  value->add_use(this, i);
}

Function* Instruction::function() const noexcept {
  return parent_ != nullptr ? parent_->parent() : nullptr;
}

void Instruction::clear_operands() {
  for (unsigned i = 0; i < operands_.size(); ++i)
    operands_[i]->remove_use(this, i);
  operands_.clear();
}

void Instruction::append_operand(Value* value) {
  assert(value != nullptr);
  operands_.push_back(value);
  value->add_use(this, static_cast<unsigned>(operands_.size() - 1));
}

void Instruction::remove_operand(unsigned i) {
  assert(i < operands_.size());
  // Later operands shift down by one; their recorded use indices must too.
  operands_[i]->remove_use(this, i);
  for (unsigned j = i + 1; j < operands_.size(); ++j) {
    operands_[j]->remove_use(this, j);
  }
  operands_.erase(operands_.begin() + i);
  for (unsigned j = i; j < operands_.size(); ++j) {
    operands_[j]->add_use(this, j);
  }
}

BinaryInst::BinaryInst(Opcode op, Value* lhs, Value* rhs, std::string name)
    : Instruction(op, lhs->type(), {lhs, rhs}, std::move(name)) {
  assert(is_int_binary(op) || is_fp_binary(op));
  assert(lhs->type() == rhs->type());
}

ICmpInst::ICmpInst(const Type* i1, ICmpPred pred, Value* lhs, Value* rhs,
                   std::string name)
    : Instruction(Opcode::ICmp, i1, {lhs, rhs}, std::move(name)), pred_(pred) {
  assert(lhs->type() == rhs->type());
  assert(lhs->type()->is_int() || lhs->type()->is_ptr());
}

FCmpInst::FCmpInst(const Type* i1, FCmpPred pred, Value* lhs, Value* rhs,
                   std::string name)
    : Instruction(Opcode::FCmp, i1, {lhs, rhs}, std::move(name)), pred_(pred) {
  assert(lhs->type()->is_double() && rhs->type()->is_double());
}

CastInst::CastInst(Opcode op, Value* value, const Type* to, std::string name)
    : Instruction(op, to, {value}, std::move(name)) {
  assert(is_cast(op));
}

AllocaInst::AllocaInst(const Type* ptr_type, const Type* allocated,
                       std::string name)
    : Instruction(Opcode::Alloca, ptr_type, {}, std::move(name)),
      allocated_(allocated) {
  assert(ptr_type->is_ptr() && ptr_type->pointee() == allocated);
}

LoadInst::LoadInst(Value* pointer, std::string name)
    : Instruction(Opcode::Load, pointer->type()->pointee(), {pointer},
                  std::move(name)) {
  assert(pointer->type()->is_ptr());
  assert(type()->is_scalar());
}

StoreInst::StoreInst(const Type* void_type, Value* value, Value* pointer)
    : Instruction(Opcode::Store, void_type, {value, pointer}) {
  assert(pointer->type()->is_ptr());
  assert(pointer->type()->pointee() == value->type());
}

GepInst::GepInst(const Type* result_ptr_type, Value* base,
                 std::vector<Value*> indices, std::string name)
    : Instruction(Opcode::Gep, result_ptr_type,
                  [&] {
                    std::vector<Value*> ops{base};
                    ops.insert(ops.end(), indices.begin(), indices.end());
                    return ops;
                  }(),
                  std::move(name)) {
  assert(base->type()->is_ptr());
  assert(!indices.empty());
}

const Type* GepInst::result_type(TypeContext& ctx, const Type* base_ptr,
                                 const std::vector<Value*>& indices) {
  assert(base_ptr->is_ptr());
  const Type* current = base_ptr->pointee();
  for (std::size_t i = 1; i < indices.size(); ++i) {
    if (current->is_array()) {
      current = current->array_element();
    } else if (current->is_struct()) {
      auto* ci = dynamic_cast<ConstantInt*>(indices[i]);
      if (ci == nullptr)
        throw std::invalid_argument("struct GEP index must be constant");
      current = current->struct_fields().at(static_cast<std::size_t>(ci->raw()));
    } else {
      throw std::invalid_argument("GEP drills into non-aggregate type");
    }
  }
  return ctx.ptr_to(current);
}

PhiInst::PhiInst(const Type* type, std::string name)
    : Instruction(Opcode::Phi, type, {}, std::move(name)) {}

void PhiInst::add_incoming(Value* value, BasicBlock* pred) {
  assert(value->type() == type());
  append_operand(value);
  blocks_.push_back(pred);
}

Value* PhiInst::value_for_block(const BasicBlock* pred) const noexcept {
  for (unsigned i = 0; i < num_incoming(); ++i)
    if (blocks_[i] == pred) return incoming_value(i);
  return nullptr;
}

void PhiInst::remove_incoming(unsigned i) {
  assert(i < num_incoming());
  remove_operand(i);
  blocks_.erase(blocks_.begin() + i);
}

SelectInst::SelectInst(Value* cond, Value* if_true, Value* if_false,
                       std::string name)
    : Instruction(Opcode::Select, if_true->type(), {cond, if_true, if_false},
                  std::move(name)) {
  assert(cond->type()->is_bool());
  assert(if_true->type() == if_false->type());
}

CallInst::CallInst(const Type* result, Function* callee,
                   std::vector<Value*> args, std::string name)
    : Instruction(Opcode::Call, result, std::move(args), std::move(name)),
      callee_(callee) {
  assert(callee != nullptr);
}

BranchInst::BranchInst(const Type* void_type, BasicBlock* target)
    : Instruction(Opcode::Br, void_type, {}) {
  targets_[0] = target;
}

BranchInst::BranchInst(const Type* void_type, Value* cond, BasicBlock* if_true,
                       BasicBlock* if_false)
    : Instruction(Opcode::Br, void_type, {cond}) {
  assert(cond->type()->is_bool());
  targets_[0] = if_true;
  targets_[1] = if_false;
}

RetInst::RetInst(const Type* void_type, Value* value)
    : Instruction(Opcode::Ret, void_type,
                  value != nullptr ? std::vector<Value*>{value}
                                   : std::vector<Value*>{}) {}

}  // namespace faultlab::ir
