#include "ir/verifier.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ir/dominance.h"
#include "ir/printer.h"

namespace faultlab::ir {

namespace {

class Checker {
 public:
  explicit Checker(const Module& m) : module_(m) {}

  std::vector<std::string> run() {
    for (const auto& f : module_.functions()) {
      if (f->is_builtin()) {
        if (f->num_blocks() != 0)
          fail(*f, "builtin function has a body");
        continue;
      }
      check_function(*f);
    }
    return std::move(errors_);
  }

 private:
  void fail(const Function& f, const std::string& msg) {
    errors_.push_back("function @" + f.name() + ": " + msg);
  }
  void fail(const Instruction& i, const std::string& msg) {
    const Function* f = i.function();
    errors_.push_back("function @" + (f ? f->name() : "?") + ": '" +
                      to_string(i) + "': " + msg);
  }

  void check_function(const Function& f) {
    if (f.num_blocks() == 0) {
      fail(f, "no body");
      return;
    }
    const_cast<Function&>(f).renumber();

    auto preds = f.predecessors();
    if (!preds.at(f.entry()).empty()) fail(f, "entry block has predecessors");

    // Collect all instructions for operand-scoping checks.
    std::set<const Value*> defined;
    for (const auto& bb : f.blocks())
      for (const auto& instr : bb->instructions()) defined.insert(instr.get());
    for (std::size_t i = 0; i < f.num_args(); ++i) defined.insert(f.arg(i));

    DominatorTree dom(f);

    for (const auto& bb : f.blocks()) {
      if (bb->terminator() == nullptr) {
        fail(f, "block " + bb->name() + " lacks a terminator");
        continue;
      }
      bool seen_non_phi = false;
      for (std::size_t i = 0; i < bb->size(); ++i) {
        const Instruction* instr = bb->instr(i);
        if (instr->is_terminator() && i + 1 != bb->size())
          fail(*instr, "terminator not at end of block");
        if (instr->opcode() == Opcode::Phi) {
          if (seen_non_phi) fail(*instr, "phi after non-phi instruction");
        } else {
          seen_non_phi = true;
        }
        check_instruction(f, *instr, defined, preds, dom);
      }
    }
  }

  void check_instruction(
      const Function& f, const Instruction& instr,
      const std::set<const Value*>& defined,
      const std::map<const BasicBlock*, std::vector<BasicBlock*>>& preds,
      const DominatorTree& dom) {
    for (unsigned i = 0; i < instr.num_operands(); ++i) {
      const Value* op = instr.operand(i);
      if (op->vkind() == ValueKind::Instruction) {
        const auto* def = static_cast<const Instruction*>(op);
        if (defined.count(op) == 0) {
          fail(instr, "operand defined in another function");
        } else if (dom.reachable(instr.parent()) &&
                   !dom.value_dominates(def, &instr)) {
          fail(instr, "use not dominated by def");
        }
      } else if (op->vkind() == ValueKind::Argument) {
        if (defined.count(op) == 0) fail(instr, "argument of another function");
      }
    }
    if (const auto* phi = dynamic_cast<const PhiInst*>(&instr)) {
      const auto& expected = preds.at(instr.parent());
      if (phi->num_incoming() != expected.size()) {
        fail(instr, "phi incoming count != predecessor count");
      } else {
        for (unsigned i = 0; i < phi->num_incoming(); ++i) {
          if (std::find(expected.begin(), expected.end(),
                        phi->incoming_block(i)) == expected.end())
            fail(instr, "phi incoming block is not a predecessor");
        }
      }
    }
    if (const auto* call = dynamic_cast<const CallInst*>(&instr)) {
      const Function* callee = call->callee();
      if (callee->parent() != &module_) {
        fail(instr, "callee belongs to another module");
        return;
      }
      const auto& params = callee->func_type()->func_params();
      if (params.size() != call->num_args()) {
        fail(instr, "argument count mismatch");
      } else {
        for (unsigned i = 0; i < call->num_args(); ++i)
          if (call->arg(i)->type() != params[i])
            fail(instr, "argument type mismatch at position " + std::to_string(i));
      }
    }
    if (const auto* ret = dynamic_cast<const RetInst*>(&instr)) {
      if (f.return_type()->is_void() != !ret->has_value()) {
        fail(instr, "return arity does not match function type");
      } else if (ret->has_value() && ret->value()->type() != f.return_type()) {
        fail(instr, "return type mismatch");
      }
    }
  }

  const Module& module_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> verify(const Module& module) {
  return Checker(module).run();
}

void verify_or_throw(const Module& module) {
  auto errors = verify(module);
  if (errors.empty()) return;
  std::ostringstream os;
  os << "IR verification failed (" << errors.size() << " errors):\n";
  for (const auto& e : errors) os << "  " << e << "\n";
  throw std::runtime_error(os.str());
}

}  // namespace faultlab::ir
