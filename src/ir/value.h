// Value base class and use-list machinery for the FaultLab IR.
//
// Every SSA value (argument, constant, global, instruction result) derives
// from Value. Instructions reference their operand Values; each Value keeps
// a use-list of (instruction, operand-index) pairs, which the optimizer
// (mem2reg, DCE, CSE) and the LLFI injector's "has users" activation filter
// depend on.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace faultlab::ir {

class Instruction;

enum class ValueKind : std::uint8_t {
  Argument,
  ConstantInt,
  ConstantDouble,
  ConstantNull,
  GlobalVariable,
  Instruction,
};

/// One operand slot of an instruction that reads this value.
struct Use {
  Instruction* user = nullptr;
  unsigned index = 0;
};

class Value {
 public:
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;
  virtual ~Value();

  ValueKind vkind() const noexcept { return vkind_; }
  const Type* type() const noexcept { return type_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Use>& uses() const noexcept { return uses_; }
  bool has_uses() const noexcept { return !uses_.empty(); }

  /// Rewrites every use of this value to refer to `replacement` instead.
  void replace_all_uses_with(Value* replacement);

  bool is_constant() const noexcept {
    return vkind_ == ValueKind::ConstantInt ||
           vkind_ == ValueKind::ConstantDouble ||
           vkind_ == ValueKind::ConstantNull;
  }

 protected:
  Value(ValueKind vkind, const Type* type, std::string name)
      : vkind_(vkind), type_(type), name_(std::move(name)) {
    assert(type != nullptr);
  }

 private:
  friend class Instruction;
  void add_use(Instruction* user, unsigned index) {
    uses_.push_back({user, index});
  }
  void remove_use(Instruction* user, unsigned index);

  ValueKind vkind_;
  const Type* type_;
  std::string name_;
  std::vector<Use> uses_;
};

/// A formal parameter of a Function.
class Argument final : public Value {
 public:
  Argument(const Type* type, std::string name, unsigned index)
      : Value(ValueKind::Argument, type, std::move(name)), index_(index) {}
  unsigned index() const noexcept { return index_; }

 private:
  unsigned index_;
};

}  // namespace faultlab::ir
