// Fault-outcome flight recorder: a bounded, sharded per-trial event writer.
//
// Where obs/trace.h answers "where did the time go", the event log answers
// "what did each trial actually do": one JSON record per finished
// injection trial — which static site / opcode / bit was hit, whether the
// fault activated, what outcome it produced, which trap killed a crashing
// run and where, and how many instructions the fault travelled before the
// run ended. The stream is the raw material for crash-divergence
// attribution (fault/attribution.h) and the campaign dashboard
// (tools/faultlab_report.py).
//
// The writer is opt-in via FAULTLAB_EVENTS=<path>.jsonl and follows the
// same inert-when-disabled discipline as ScopedSpan / metrics_enabled():
// the disabled path is one cached-bool branch at the call site — no clock
// read, no formatting, no allocation. When enabled, each worker thread
// formats records into its own shard buffer (no cross-thread contention on
// the hot path) and shards spill to the file in whole lines once they pass
// a flush threshold, so memory stays bounded no matter how many trials a
// campaign runs. Lines from different workers interleave, but every line
// is complete JSON; per-worker ordering is preserved (each record carries a
// per-worker monotonic `seq`, which tools/validate_trace.py --events
// checks).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace faultlab::obs {

struct PropSummary;  // obs/propagation.h

/// True when FAULTLAB_EVENTS names a path (anything but "" or "0").
/// Cached on first call; call sites gate on it before touching the global
/// log so the disabled path costs one branch.
bool events_enabled() noexcept;

/// One finished injection trial, flattened for serialization. String
/// fields point at caller-owned storage that must stay alive for the
/// duration of the append() call only (the writer copies what it needs
/// into its shard buffer). `opcode`/`function`/`trap` may be null when the
/// trial never injected (or did not crash).
struct TrialEvent {
  const char* app = "";
  const char* tool = "";
  const char* category = "";
  /// fault::Model::name() of the injecting engine ("transient" baseline).
  const char* fault_model = "transient";
  std::uint32_t worker = 0;       ///< small sequential worker/thread id
  std::uint64_t seq = 0;          ///< per-worker monotonic event number
  std::uint64_t trial = 0;        ///< draw index within the campaign
  std::uint64_t k = 0;            ///< dynamic target instance (1-based)
  unsigned bit = 0;               ///< flipped bit
  std::uint64_t static_site = 0;  ///< instruction id / code index
  const char* opcode = nullptr;   ///< opcode name of the injected site
  const char* function = nullptr; ///< function containing the site
  bool injected = false;
  bool activated = false;
  const char* outcome = "";       ///< fault::outcome_name string
  const char* trap = nullptr;     ///< machine::trap_kind_name, Crash only
  std::uint64_t trap_pc = 0;      ///< static location of the trap, Crash only
  std::uint64_t inject_instruction = 0;  ///< dynamic index of the injection
  std::uint64_t instructions_total = 0;  ///< whole-run dynamic instructions
  /// The propagation-distance signal (PropagationTrace computes the same
  /// number offline): dynamic instructions between injection and run end.
  std::uint64_t instructions_after_injection = 0;
  bool checkpoint_hit = false;    ///< trial resumed from a snapshot
  double latency_ms = 0.0;        ///< trial wall time
  /// Non-null for propagation-traced trials (FAULTLAB_PROP=1): the record
  /// is emitted as schema v2 with an additive "prop" object. Null keeps
  /// the line byte-identical to schema v1, so existing logs and consumers
  /// are unaffected unless tracing is on.
  const PropSummary* prop = nullptr;
};

/// Streaming JSONL writer, sharded per worker thread. Thread-safe.
class EventLog {
 public:
  /// Buffered bytes per shard before it spills to the file.
  static constexpr std::size_t kFlushBytes = 64 * 1024;
  static constexpr std::size_t kNumShards = 16;

  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  /// Truncates `path` and starts accepting records. Returns false (with a
  /// stderr warning, writer stays disabled) when the file cannot be opened.
  bool open(const std::string& path);

  /// Flushes every shard and stops accepting records.
  void close();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Serializes one event into the calling thread's shard. No-op when the
  /// log is not open.
  void append(const TrialEvent& event);

  /// Writes all buffered shard bytes to the file. Called automatically on
  /// close() and by the scheduler at the end of each run so a crashed
  /// process still leaves the trials it finished on disk.
  void flush();

  /// Records appended (accepted) since open().
  std::uint64_t appended() const noexcept {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Process-wide log: opened on first use iff FAULTLAB_EVENTS is set,
  /// flushed at exit. Tests may open()/close() their own instances.
  static EventLog& global();
  /// Cached value of FAULTLAB_EVENTS, or nullptr when unset/empty/"0".
  static const char* env_path() noexcept;

 private:
  struct Shard {
    std::mutex mutex;
    std::string buffer;
  };

  void write_locked(const std::string& data);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> appended_{0};
  Shard shards_[kNumShards];
  std::mutex file_mutex_;
  void* file_ = nullptr;  // std::FILE*, opaque to keep <cstdio> out of here
};

}  // namespace faultlab::obs
