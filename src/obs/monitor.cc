#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "obs/export.h"
#include "support/env.h"
#include "support/stats.h"

namespace faultlab::obs {

namespace {

/// Doubles in the status document: shortest round-trippable-ish form, with
/// non-finite values (which JSON cannot carry) clamped to 0.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

}  // namespace

void RateWindow::sample(double seconds, std::uint64_t done) noexcept {
  if (size_ != 0) {
    const Point& newest = ring_[(head_ + size_ - 1) % kWindow];
    if (seconds <= newest.t) return;
  }
  if (size_ < kWindow) {
    ring_[(head_ + size_) % kWindow] = {seconds, done};
    ++size_;
  } else {
    ring_[head_] = {seconds, done};
    head_ = (head_ + 1) % kWindow;
  }
}

double RateWindow::rate() const noexcept {
  if (size_ == 0) return 0.0;
  const Point& oldest = ring_[head_];
  const Point& newest = ring_[(head_ + size_ - 1) % kWindow];
  if (size_ == 1)  // since-start average: the only signal we have
    return newest.t > 0.0 ? static_cast<double>(newest.done) / newest.t : 0.0;
  const double dt = newest.t - oldest.t;
  if (dt <= 0.0) return 0.0;
  return static_cast<double>(newest.done - oldest.done) / dt;
}

MonitorOptions MonitorOptions::from_env() {
  MonitorOptions o;
  o.ci_target = support::parse_env_double("FAULTLAB_CI_TARGET", o.ci_target,
                                          1e-6, 1.0);
  o.watchdog_factor = support::parse_env_double(
      "FAULTLAB_WATCHDOG", o.watchdog_factor, 1.0, 1e9);
  o.status_interval_ms = support::parse_env_u64("FAULTLAB_STATUS_INTERVAL",
                                                o.status_interval_ms, 1);
  // Like FAULTLAB_EVENTS, "0" means off (not a file named "0").
  const char* path = support::parse_env_string("FAULTLAB_STATUS");
  if (path != nullptr && !(path[0] == '0' && path[1] == '\0'))
    o.status_path = path;
  return o;
}

CampaignMonitor::CampaignMonitor(MonitorOptions options, std::size_t workers)
    : options_(std::move(options)),
      workers_(std::max<std::size_t>(workers, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

CampaignMonitor::~CampaignMonitor() { finish(); }

std::uint64_t CampaignMonitor::now_us() const noexcept {
  const auto since = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::microseconds>(since)
                 .count()) +
         clock_skew_us_.load(std::memory_order_relaxed);
}

std::size_t CampaignMonitor::add_cell(std::string app, std::string tool,
                                      std::string category,
                                      std::string fault_model,
                                      std::uint64_t planned_trials) {
  auto cell = std::make_unique<Cell>();
  cell->app = std::move(app);
  cell->tool = std::move(tool);
  cell->category = std::move(category);
  cell->fault_model = std::move(fault_model);
  cell->planned = planned_trials;
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void CampaignMonitor::set_aux_source(std::function<MonitorAux()> source) {
  aux_source_ = std::move(source);
}

void CampaignMonitor::start() {
  if (started_) return;
  started_ = true;
  epoch_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    next_snapshot_us_ = 0;  // first poll writes immediately
  }
  poll();
  // The ticker drives watchdog scans and snapshot cadence off the trial
  // workers' backs. Tick faster than the snapshot interval so the
  // watchdog and the rate window stay fresh even with long intervals.
  const std::uint64_t tick_ms =
      std::min<std::uint64_t>(options_.status_interval_ms, 250);
  ticker_ = std::thread([this, tick_ms] {
    std::unique_lock<std::mutex> lock(ticker_mutex_);
    while (!ticker_stop_) {
      ticker_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                          [this] { return ticker_stop_; });
      if (ticker_stop_) return;
      lock.unlock();
      poll();
      lock.lock();
    }
  });
}

void CampaignMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  if (ticker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ticker_mutex_);
      ticker_stop_ = true;
    }
    ticker_cv_.notify_all();
    ticker_.join();
  }
  if (!started_) return;
  // Final quiescent snapshot: workers have drained, so the document's
  // cross-field invariants hold exactly (validate_trace.py --status checks
  // them strictly when "final" is true).
  std::lock_guard<std::mutex> lock(control_mutex_);
  const double elapsed = static_cast<double>(now_us()) * 1e-6;
  rate_.sample(elapsed, trials_done_.load(std::memory_order_relaxed));
  if (!options_.status_path.empty()) write_snapshot(true);
}

void CampaignMonitor::begin_trial(std::size_t worker,
                                  std::size_t cell) noexcept {
  begin_group(worker, cell, 1);
}

void CampaignMonitor::begin_group(std::size_t worker, std::size_t cell,
                                  std::size_t group) noexcept {
  if (worker >= workers_.size() || cell >= cells_.size()) return;
  WorkerSlot& slot = workers_[worker];
  slot.started_us.store(now_us(), std::memory_order_relaxed);
  slot.flagged.store(false, std::memory_order_relaxed);
  const auto lanes = static_cast<std::uint64_t>(std::max<std::size_t>(
      group, 1));
  slot.in_flight.store(lanes, std::memory_order_relaxed);
  slot.group_size.store(lanes, std::memory_order_relaxed);
  // Release-publish the busy marker so a watchdog scan that sees the cell
  // also sees its start time and lane count.
  slot.busy_cell.store(static_cast<std::uint64_t>(cell) + 1,
                       std::memory_order_release);
}

void CampaignMonitor::record(std::size_t worker, std::size_t cell,
                             MonitorOutcome outcome,
                             double latency_ms) noexcept {
  if (cell >= cells_.size()) return;
  Cell& c = *cells_[cell];
  const auto o = static_cast<std::size_t>(outcome);
  if (o < kMonitorOutcomes)
    c.outcomes[o].fetch_add(1, std::memory_order_relaxed);
  const auto us = static_cast<std::uint64_t>(
      std::max(0.0, latency_ms) * 1000.0);
  c.latency_buckets[HistogramSnapshot::bucket_of(us)].fetch_add(
      1, std::memory_order_relaxed);
  c.latency_sum_us.fetch_add(us, std::memory_order_relaxed);
  c.done.fetch_add(1, std::memory_order_relaxed);
  trials_done_.fetch_add(1, std::memory_order_relaxed);
  if (worker < workers_.size()) {
    WorkerSlot& slot = workers_[worker];
    slot.trials_done.fetch_add(1, std::memory_order_relaxed);
    // Only the owning worker writes in_flight, so a plain load/store pair
    // is race-free; the slot stays busy until the whole group is recorded.
    const std::uint64_t left = slot.in_flight.load(std::memory_order_relaxed);
    if (left <= 1) {
      slot.in_flight.store(0, std::memory_order_relaxed);
      slot.busy_cell.store(0, std::memory_order_release);
    } else {
      slot.in_flight.store(left - 1, std::memory_order_relaxed);
    }
  }
}

MonitorCellStatus CampaignMonitor::cell_status_locked(
    std::size_t cell) const {
  MonitorCellStatus s;
  if (cell >= cells_.size()) return s;
  const Cell& c = *cells_[cell];
  s.app = c.app;
  s.tool = c.tool;
  s.category = c.category;
  s.fault_model = c.fault_model;
  s.planned = c.planned;
  for (std::size_t o = 0; o < kMonitorOutcomes; ++o)
    s.outcomes[o] = c.outcomes[o].load(std::memory_order_relaxed);
  // Derive `done` from the outcome tallies rather than loading the done
  // counter: a concurrent record() between the two reads would otherwise
  // let activated + not_activated disagree with done in a snapshot.
  s.done = 0;
  for (std::size_t o = 0; o < kMonitorOutcomes; ++o) s.done += s.outcomes[o];
  s.activated =
      s.done -
      s.outcomes[static_cast<std::size_t>(MonitorOutcome::NotActivated)];
  const Proportion crash{
      static_cast<std::size_t>(
          s.outcomes[static_cast<std::size_t>(MonitorOutcome::Crash)]),
      static_cast<std::size_t>(s.activated)};
  s.crash_share = crash.value();
  const Proportion::Interval ci = crash.wilson95();
  s.ci_lo = ci.lo;
  s.ci_hi = ci.hi;
  s.ci_halfwidth = (ci.hi - ci.lo) / 2.0;
  s.converged = s.activated > 0 && s.ci_halfwidth <= options_.ci_target;
  HistogramSnapshot hist;
  bool any_bucket = false;
  for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    hist.buckets[b] = c.latency_buckets[b].load(std::memory_order_relaxed);
    hist.count += hist.buckets[b];
    if (hist.buckets[b] != 0) {
      if (!any_bucket) hist.min = HistogramSnapshot::bucket_lo(b);
      hist.max = HistogramSnapshot::bucket_hi(b);
      any_bucket = true;
    }
  }
  hist.sum = c.latency_sum_us.load(std::memory_order_relaxed);
  if (hist.count != 0) {
    s.p50_ms = hist.percentile(50.0) / 1000.0;
    s.p99_ms = hist.percentile(99.0) / 1000.0;
    s.mean_ms = hist.mean() / 1000.0;
  }
  s.watchdog_flags = c.watchdog_flags.load(std::memory_order_relaxed);
  for (const WorkerSlot& slot : workers_)
    if (slot.busy_cell.load(std::memory_order_acquire) == cell + 1)
      s.in_flight += static_cast<std::size_t>(
          slot.in_flight.load(std::memory_order_relaxed));
  return s;
}

MonitorCellStatus CampaignMonitor::cell_status(std::size_t cell) const {
  return cell_status_locked(cell);
}

std::vector<MonitorWorkerStatus> CampaignMonitor::worker_status() const {
  std::vector<MonitorWorkerStatus> out;
  out.reserve(workers_.size());
  const std::uint64_t now = now_us();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerSlot& slot = workers_[w];
    MonitorWorkerStatus s;
    s.worker = w;
    const std::uint64_t busy =
        slot.busy_cell.load(std::memory_order_acquire);
    s.running = busy != 0;
    if (s.running) {
      s.cell = static_cast<std::size_t>(busy - 1);
      const std::uint64_t started =
          slot.started_us.load(std::memory_order_relaxed);
      s.trial_age_ms =
          now > started ? static_cast<double>(now - started) / 1000.0 : 0.0;
      s.in_flight = slot.in_flight.load(std::memory_order_relaxed);
      s.flagged = slot.flagged.load(std::memory_order_relaxed);
    }
    s.trials_done = slot.trials_done.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

double CampaignMonitor::eta_locked(double elapsed, std::uint64_t done_now,
                                   double* rate_out) const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c->planned;
  const std::uint64_t remaining = total > done_now ? total - done_now : 0;
  const double rate = rate_.rate();
  if (rate_out != nullptr) *rate_out = rate;
  if (remaining == 0) return 0.0;
  // Recent-window rate is the primary model: it reflects the current
  // steady state instead of the checkpoint warm-up. Before the window has
  // two samples, fall back to the engines' always-on phase split — mean
  // busy seconds per finished trial, spread across the pool.
  if (rate_.samples() >= 2 && rate > 0.0)
    return static_cast<double>(remaining) / rate;
  if (aux_source_ && done_now > 0) {
    const MonitorAux aux = aux_source_();
    const double busy =
        aux.restore_seconds + aux.execute_seconds + aux.classify_seconds;
    if (busy > 0.0)
      return busy / static_cast<double>(done_now) *
             static_cast<double>(remaining) /
             static_cast<double>(workers_.size());
  }
  if (rate > 0.0) return static_cast<double>(remaining) / rate;
  (void)elapsed;
  return 0.0;
}

MonitorSummary CampaignMonitor::summary() const {
  MonitorSummary s;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const MonitorCellStatus cs = cell_status_locked(i);
    s.trials_total += cs.planned;
    s.trials_done += cs.done;
    if (cs.converged) ++s.converged_cells;
  }
  s.cells = cells_.size();
  s.watchdog_flags = watchdog_flags_.load(std::memory_order_relaxed);
  s.status_writes = status_writes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(control_mutex_);
  s.eta_seconds = eta_locked(static_cast<double>(now_us()) * 1e-6,
                             s.trials_done, &s.rate_trials_per_second);
  return s;
}

void CampaignMonitor::scan_watchdog() {
  const std::uint64_t now = now_us();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerSlot& slot = workers_[w];
    const std::uint64_t busy =
        slot.busy_cell.load(std::memory_order_acquire);
    if (busy == 0 || slot.flagged.load(std::memory_order_relaxed)) continue;
    const std::size_t cell = static_cast<std::size_t>(busy - 1);
    if (cell >= cells_.size()) continue;
    Cell& c = *cells_[cell];
    if (c.done.load(std::memory_order_relaxed) < kWatchdogMinSamples)
      continue;  // p99 not yet trustworthy
    const MonitorCellStatus cs = cell_status_locked(cell);
    // A lane group legitimately occupies the slot for up to group_size
    // trial latencies (diverged lanes finish sequentially), so scale the
    // stall threshold by the group's lane count.
    const auto group = static_cast<double>(std::max<std::uint64_t>(
        slot.group_size.load(std::memory_order_relaxed), 1));
    const double threshold_ms = options_.watchdog_factor * cs.p99_ms * group;
    if (threshold_ms <= 0.0) continue;
    const std::uint64_t started =
        slot.started_us.load(std::memory_order_relaxed);
    const double age_ms =
        now > started ? static_cast<double>(now - started) / 1000.0 : 0.0;
    if (age_ms <= threshold_ms) continue;
    // Observe, don't kill: flag the slot (once per in-flight trial),
    // count it, and keep a bounded event list for the snapshot.
    slot.flagged.store(true, std::memory_order_relaxed);
    c.watchdog_flags.fetch_add(1, std::memory_order_relaxed);
    watchdog_flags_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled())
      Registry::global().counter("monitor.watchdog_flags").add(1);
    if (watchdog_events_.size() < kMaxWatchdogEvents) {
      WatchdogEvent ev;
      ev.worker = w;
      ev.cell = cell;
      ev.trial_age_ms = age_ms;
      ev.threshold_ms = threshold_ms;
      ev.elapsed_seconds = static_cast<double>(now) * 1e-6;
      watchdog_events_.push_back(ev);
    } else {
      ++watchdog_events_dropped_;
    }
  }
}

void CampaignMonitor::poll(bool force_snapshot) {
  std::unique_lock<std::mutex> lock(control_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another poller holds the baton
  const std::uint64_t now = now_us();
  rate_.sample(static_cast<double>(now) * 1e-6,
               trials_done_.load(std::memory_order_relaxed));
  scan_watchdog();
  if (options_.status_path.empty()) return;
  if (!force_snapshot && now < next_snapshot_us_) return;
  next_snapshot_us_ = now + options_.status_interval_ms * 1000;
  write_snapshot(false);
}

std::string CampaignMonitor::status_json(bool final_snapshot) const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return status_json_locked(final_snapshot);
}

std::string CampaignMonitor::status_json_locked(bool final_snapshot) const {
  const std::uint64_t now = now_us();
  const double elapsed = static_cast<double>(now) * 1e-6;
  const std::uint64_t done = trials_done_.load(std::memory_order_relaxed);
  double rate = 0.0;
  const double eta = eta_locked(elapsed, done, &rate);

  std::uint64_t total = 0;
  std::size_t converged = 0;
  std::vector<MonitorCellStatus> cells;
  cells.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells.push_back(cell_status_locked(i));
    total += cells.back().planned;
    if (cells.back().converged) ++converged;
  }

  std::string out;
  out.reserve(2048 + cells.size() * 512);
  out += "{\n  \"v\": 1,\n  \"schema\": \"faultlab-status\",\n  \"final\": ";
  out += final_snapshot ? "true" : "false";
  out += ",\n  \"generated_unix\": ";
  append_u64(out, static_cast<std::uint64_t>(std::time(nullptr)));
  out += ",\n  \"elapsed_seconds\": ";
  append_double(out, elapsed);
  out += ",\n  \"ci_target\": ";
  append_double(out, options_.ci_target);
  out += ",\n  \"watchdog_factor\": ";
  append_double(out, options_.watchdog_factor);
  out += ",\n  \"status_interval_ms\": ";
  append_u64(out, options_.status_interval_ms);
  out += ",\n  \"workers_total\": ";
  append_u64(out, workers_.size());
  out += ",\n  \"trials_total\": ";
  append_u64(out, total);
  out += ",\n  \"trials_done\": ";
  append_u64(out, done);
  out += ",\n  \"cells_total\": ";
  append_u64(out, cells.size());
  out += ",\n  \"converged_cells\": ";
  append_u64(out, converged);
  out += ",\n  \"watchdog_flags\": ";
  append_u64(out, watchdog_flags_.load(std::memory_order_relaxed));
  out += ",\n  \"status_writes\": ";
  append_u64(out, status_writes_.load(std::memory_order_relaxed));
  out += ",\n  \"rate_trials_per_second\": ";
  append_double(out, rate);
  out += ",\n  \"eta_seconds\": ";
  append_double(out, eta);

  MonitorAux aux;
  if (aux_source_) aux = aux_source_();
  out += ",\n  \"phases\": {\"restore_seconds\": ";
  append_double(out, aux.restore_seconds);
  out += ", \"execute_seconds\": ";
  append_double(out, aux.execute_seconds);
  out += ", \"classify_seconds\": ";
  append_double(out, aux.classify_seconds);
  out += "},\n  \"counters\": {\"checkpoint_snapshots\": ";
  append_u64(out, aux.checkpoint_snapshots);
  out += ", \"checkpoint_restores\": ";
  append_u64(out, aux.checkpoint_restores);
  out += ", \"delta_restores\": ";
  append_u64(out, aux.delta_restores);
  out += ", \"snapshot_evictions\": ";
  append_u64(out, aux.snapshot_evictions);
  out += ", \"trace_decodes\": ";
  append_u64(out, aux.trace_decodes);
  out += ", \"trace_hits\": ";
  append_u64(out, aux.trace_hits);
  out += ", \"trace_invalidations\": ";
  append_u64(out, aux.trace_invalidations);
  out += "},\n  \"dispatch_mode\": ";
  append_string(out, aux.dispatch_mode);

  out += ",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MonitorCellStatus& s = cells[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"app\": ";
    append_string(out, s.app);
    out += ", \"tool\": ";
    append_string(out, s.tool);
    out += ", \"category\": ";
    append_string(out, s.category);
    out += ", \"fault_model\": ";
    append_string(out, s.fault_model);
    out += ", \"trials\": ";
    append_u64(out, s.planned);
    out += ", \"done\": ";
    append_u64(out, s.done);
    out += ", \"crash\": ";
    append_u64(out, s.outcomes[0]);
    out += ", \"sdc\": ";
    append_u64(out, s.outcomes[1]);
    out += ", \"benign\": ";
    append_u64(out, s.outcomes[2]);
    out += ", \"hang\": ";
    append_u64(out, s.outcomes[3]);
    out += ", \"not_activated\": ";
    append_u64(out, s.outcomes[4]);
    out += ", \"activated\": ";
    append_u64(out, s.activated);
    out += ", \"crash_share\": ";
    append_double(out, s.crash_share);
    out += ", \"ci_lo\": ";
    append_double(out, s.ci_lo);
    out += ", \"ci_hi\": ";
    append_double(out, s.ci_hi);
    out += ", \"ci_halfwidth\": ";
    append_double(out, s.ci_halfwidth);
    out += ", \"converged\": ";
    out += s.converged ? "true" : "false";
    out += ", \"p50_ms\": ";
    append_double(out, s.p50_ms);
    out += ", \"p99_ms\": ";
    append_double(out, s.p99_ms);
    out += ", \"mean_ms\": ";
    append_double(out, s.mean_ms);
    out += ", \"watchdog_flags\": ";
    append_u64(out, s.watchdog_flags);
    out += ", \"in_flight\": ";
    append_u64(out, s.in_flight);
    out += "}";
  }
  out += "\n  ],\n  \"workers\": [";
  const std::vector<MonitorWorkerStatus> workers = worker_status();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const MonitorWorkerStatus& s = workers[w];
    out += w == 0 ? "\n    {" : ",\n    {";
    out += "\"worker\": ";
    append_u64(out, s.worker);
    out += ", \"state\": ";
    append_string(out, s.running ? "running" : "idle");
    out += ", \"cell\": ";
    if (s.running && s.cell < cells_.size()) {
      const Cell& c = *cells_[s.cell];
      append_string(out, c.app + "/" + c.tool + "/" + c.category);
    } else {
      out += "null";
    }
    out += ", \"trial_age_ms\": ";
    append_double(out, s.trial_age_ms);
    out += ", \"trials_done\": ";
    append_u64(out, s.trials_done);
    out += ", \"in_flight\": ";
    append_u64(out, s.in_flight);
    out += ", \"flagged\": ";
    out += s.flagged ? "true" : "false";
    out += "}";
  }
  out += "\n  ],\n  \"watchdog_events\": [";
  for (std::size_t i = 0; i < watchdog_events_.size(); ++i) {
    const WatchdogEvent& ev = watchdog_events_[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"worker\": ";
    append_u64(out, ev.worker);
    out += ", \"cell\": ";
    if (ev.cell < cells_.size()) {
      const Cell& c = *cells_[ev.cell];
      append_string(out, c.app + "/" + c.tool + "/" + c.category);
    } else {
      out += "null";
    }
    out += ", \"trial_age_ms\": ";
    append_double(out, ev.trial_age_ms);
    out += ", \"threshold_ms\": ";
    append_double(out, ev.threshold_ms);
    out += ", \"elapsed_seconds\": ";
    append_double(out, ev.elapsed_seconds);
    out += "}";
  }
  out += "\n  ],\n  \"watchdog_events_dropped\": ";
  append_u64(out, watchdog_events_dropped_);
  out += "\n}\n";
  return out;
}

void CampaignMonitor::write_snapshot(bool final_snapshot) {
  // Called with control_mutex_ held. Holding it through the file write is
  // fine: only the ticker and poll() callers ever contend here — never
  // trial workers.
  const std::string doc = status_json_locked(final_snapshot);
  const std::string tmp = options_.status_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      std::fprintf(stderr,
                   "warning: FAULTLAB_STATUS: cannot open '%s' for writing; "
                   "status snapshots disabled\n",
                   tmp.c_str());
    options_.status_path.clear();
    return;
  }
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  // Atomic publish: readers either see the previous snapshot or this one,
  // never a torn file.
  if (!ok || std::rename(tmp.c_str(), options_.status_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return;
  }
  status_writes_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled())
    Registry::global().counter("monitor.status_writes").add(1);
}

}  // namespace faultlab::obs
