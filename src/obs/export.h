// Export formats for the observability layer.
//
// Traces: Chrome trace-event JSON ("X" complete events, loadable in
// chrome://tracing and Perfetto) or JSONL (one span object per line, for
// jq/pandas pipelines). Metrics: one JSON object with counters, gauges,
// and histograms (count/sum/min/max/p50/p95/p99 plus non-empty buckets).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace faultlab::obs {

/// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Chrome trace-event format: {"traceEvents": [...]} with one "X" event
/// per span; tags become the event's "args".
void write_chrome_trace(const std::vector<Span>& spans, std::ostream& os);

/// JSONL: one {"name", "cat", "ts_us", "dur_us", "tid", tags...} per line.
void write_spans_jsonl(const std::vector<Span>& spans, std::ostream& os);

/// Writes the tracer's spans to `path` — JSONL when the path ends in
/// ".jsonl", Chrome trace JSON otherwise. Returns false (with a stderr
/// warning) when the file cannot be written.
bool export_trace(const Tracer& tracer, const std::string& path);

/// Metrics snapshot as a JSON object string.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Flushes process-wide observability state, honouring the environment:
/// the global tracer to $FAULTLAB_TRACE (when set), and the global metrics
/// registry to $FAULTLAB_METRICS when it names a path (a bare "1" prints a
/// short summary to stderr instead). Safe to call repeatedly — each call
/// rewrites the outputs with the cumulative state; a no-op when neither
/// variable is set. The scheduler calls this after every run.
void flush_observability();

}  // namespace faultlab::obs
