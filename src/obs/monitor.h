// Live campaign telemetry: a control-plane observability layer the
// scheduler feeds at trial boundaries.
//
// A grid run is a black box until the manifest CSV lands; the monitor
// turns it into an inspectable process while it runs:
//
//  * **Per-cell convergence.** Every (app × tool × category) cell keeps
//    running outcome tallies; a cell is *converged* once the Wilson 95%
//    CI half-width of its crash share (over activated trials — the
//    paper's convention, same closed form as support/stats.h) has dropped
//    below the `FAULTLAB_CI_TARGET` threshold. Convergence is recomputed
//    from the current tallies on every read, never latched, so a share
//    drifting back toward 0.5 can de-converge a cell.
//  * **ETA model.** A sliding recent-window trials/sec rate (RateWindow)
//    plus a fallback built from the engines' always-on fault::PhaseStats
//    restore/execute/classify split: mean per-trial busy seconds ×
//    remaining trials / workers. The window rate wins once it has two
//    samples; early in a run (checkpoint warm-up) the phase model is the
//    better predictor.
//  * **Stall watchdog.** Each worker registers its in-flight trial
//    (cell + start time); a periodic scan flags any trial whose age
//    exceeds `FAULTLAB_WATCHDOG` × the cell's running p99 latency.
//    Flagging is observational only — an event is recorded and counters
//    bump (cell, global, and a `monitor.watchdog_flags` metrics counter
//    when FAULTLAB_METRICS is on); the trial is never killed.
//  * **Status snapshots.** With `FAULTLAB_STATUS=<path>.json` set, the
//    monitor rewrites a machine-readable snapshot (schema v1, validated
//    by tools/validate_trace.py --status) every
//    `FAULTLAB_STATUS_INTERVAL` ms: grid progress, per-cell tallies / CI
//    widths / convergence, per-worker in-flight state, checkpoint and
//    dispatch counters, and the ETA. Writes are atomic
//    (write-temp-then-rename), so a reader never sees a torn file.
//
// Cost contract (same discipline as the rest of src/obs): when the
// monitor is off the scheduler pays one null-pointer branch per trial
// (BM_MonitorRecordDisabled tracks it); when on, begin_trial/record are a
// clock read plus a handful of relaxed atomics — snapshot writing and
// watchdog scanning run on the monitor's own ticker thread, never on
// trial workers. The monitor is read-only groundwork: the scheduler must
// not act on convergence (results stay byte-identical with the monitor on
// or off — the StatusEquiv fixtures enforce it).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace faultlab::obs {

/// Outcome indices as the monitor counts them (the scheduler translates
/// fault::Outcome; obs stays independent of the fault layer). The order is
/// part of the status schema.
enum class MonitorOutcome : unsigned {
  Crash = 0,
  SDC = 1,
  Benign = 2,
  Hang = 3,
  NotActivated = 4,
};
inline constexpr std::size_t kMonitorOutcomes = 5;

/// Sliding-window trial-completion rate. The since-start average
/// overestimates remaining time early in a run (checkpoint warm-up makes
/// the first trials the slowest), so ETA consumers sample (elapsed, done)
/// points and read the rate over the most recent kWindow samples. Not
/// thread-safe; callers serialize (the scheduler samples under its mutex,
/// the monitor under its own).
class RateWindow {
 public:
  static constexpr std::size_t kWindow = 32;

  /// Records a (seconds-since-start, trials-done) observation. Samples
  /// with a non-increasing timestamp are dropped.
  void sample(double seconds, std::uint64_t done) noexcept;

  /// Trials/sec over the retained window: (done_new - done_old) /
  /// (t_new - t_old). Falls back to the since-start average while fewer
  /// than two samples are held, and 0 before any sample.
  double rate() const noexcept;

  std::size_t samples() const noexcept { return size_; }

 private:
  struct Point {
    double t = 0.0;
    std::uint64_t done = 0;
  };
  Point ring_[kWindow];
  std::size_t size_ = 0;
  std::size_t head_ = 0;  // index of the oldest retained sample
};

/// Monitor configuration. from_env() reads the FAULTLAB_STATUS,
/// FAULTLAB_STATUS_INTERVAL, FAULTLAB_CI_TARGET, and FAULTLAB_WATCHDOG
/// variables; the scheduler spins a monitor up whenever a status path is
/// configured or the progress heartbeat wants convergence data.
struct MonitorOptions {
  /// Crash-share Wilson 95% CI half-width below which a cell counts as
  /// converged (FAULTLAB_CI_TARGET, a fraction in (0, 1]).
  double ci_target = 0.05;
  /// Stall threshold: an in-flight trial older than this multiple of its
  /// cell's running p99 latency gets flagged (FAULTLAB_WATCHDOG).
  double watchdog_factor = 8.0;
  /// Milliseconds between status-snapshot rewrites
  /// (FAULTLAB_STATUS_INTERVAL).
  std::uint64_t status_interval_ms = 1000;
  /// Snapshot destination (FAULTLAB_STATUS); empty disables snapshots but
  /// not the tallies/watchdog (the heartbeat still consumes them).
  std::string status_path;

  static MonitorOptions from_env();
};

/// Point-in-time view of one cell, assembled from the live tallies.
struct MonitorCellStatus {
  std::string app;
  std::string tool;
  std::string category;
  std::string fault_model;
  std::uint64_t planned = 0;  ///< trials the campaign will run
  std::uint64_t done = 0;
  std::uint64_t outcomes[kMonitorOutcomes] = {};
  std::uint64_t activated = 0;  ///< done minus not-activated
  double crash_share = 0.0;     ///< crash / activated
  double ci_lo = 0.0;           ///< Wilson 95% bounds of the crash share
  double ci_hi = 0.0;
  double ci_halfwidth = 0.0;
  bool converged = false;  ///< activated > 0 && ci_halfwidth <= ci_target
  double p50_ms = 0.0;  ///< running latency percentiles (log2 histogram)
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::uint64_t watchdog_flags = 0;
  std::uint64_t in_flight = 0;  ///< workers currently running this cell
};

/// Point-in-time view of one worker's in-flight registry slot.
struct MonitorWorkerStatus {
  std::size_t worker = 0;
  bool running = false;
  std::size_t cell = 0;  ///< valid when running
  double trial_age_ms = 0.0;
  std::uint64_t trials_done = 0;
  /// Trials of the current lane group still unrecorded (0 when idle, 1
  /// for a plain in-flight trial).
  std::uint64_t in_flight = 0;
  bool flagged = false;  ///< current trial tripped the watchdog
};

/// One watchdog flag, kept (bounded) for the status snapshot.
struct WatchdogEvent {
  std::size_t worker = 0;
  std::size_t cell = 0;
  double trial_age_ms = 0.0;   ///< age when flagged
  double threshold_ms = 0.0;   ///< factor × cell p99 at flag time
  double elapsed_seconds = 0.0;
};

/// Grid-level rollup for the heartbeat and the snapshot header.
struct MonitorSummary {
  std::uint64_t trials_total = 0;
  std::uint64_t trials_done = 0;
  std::size_t cells = 0;
  std::size_t converged_cells = 0;
  std::uint64_t watchdog_flags = 0;
  double rate_trials_per_second = 0.0;  ///< recent-window rate
  double eta_seconds = 0.0;
  std::uint64_t status_writes = 0;
};

/// Auxiliary run-level context the scheduler exposes to snapshots: the
/// engines' always-on phase split plus checkpoint/dispatch counters. Read
/// from the ticker thread, so the source callback must be thread-safe
/// (engine counters are atomics).
struct MonitorAux {
  double restore_seconds = 0.0;
  double execute_seconds = 0.0;
  double classify_seconds = 0.0;
  std::uint64_t checkpoint_snapshots = 0;
  std::uint64_t checkpoint_restores = 0;
  std::uint64_t delta_restores = 0;
  std::uint64_t snapshot_evictions = 0;
  std::uint64_t trace_decodes = 0;
  std::uint64_t trace_hits = 0;
  std::uint64_t trace_invalidations = 0;
  std::string dispatch_mode;
};

class CampaignMonitor {
 public:
  /// Completions a cell needs before its p99 is trusted by the watchdog.
  static constexpr std::uint64_t kWatchdogMinSamples = 20;
  /// Watchdog events retained for the snapshot (older ones are counted
  /// but dropped).
  static constexpr std::size_t kMaxWatchdogEvents = 64;

  CampaignMonitor(MonitorOptions options, std::size_t workers);
  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;
  ~CampaignMonitor();  ///< stops the ticker; writes no further snapshots

  const MonitorOptions& options() const noexcept { return options_; }

  /// Registers one campaign cell (call before start()). Returns the cell
  /// index the scheduler passes back into begin_trial()/record().
  std::size_t add_cell(std::string app, std::string tool,
                       std::string category, std::string fault_model,
                       std::uint64_t planned_trials);

  /// Optional run-level context merged into every snapshot.
  void set_aux_source(std::function<MonitorAux()> source);

  /// Starts the clock and, when a status path or watchdog work exists,
  /// the ticker thread (snapshot cadence + watchdog scans). Cells must
  /// all be registered.
  void start();

  /// Final snapshot + ticker shutdown. Safe to call once after the last
  /// record(); the destructor calls it too.
  void finish();

  // -- trial hot path (scheduler workers) ------------------------------
  /// Registers worker's in-flight trial. One clock read + one relaxed
  /// store. Equivalent to begin_group(worker, cell, 1).
  void begin_trial(std::size_t worker, std::size_t cell) noexcept;
  /// Registers a lockstep lane group: `group` trials of `cell` now in
  /// flight on `worker` at once. The slot stays busy until record() has
  /// been called once per trial, and the stall watchdog scales its
  /// threshold by the group size (a group legitimately ages up to
  /// group × one trial's latency when lanes diverge).
  void begin_group(std::size_t worker, std::size_t cell,
                   std::size_t group) noexcept;
  /// Folds a finished trial into the cell tallies; the worker's in-flight
  /// slot clears once every trial of its group is recorded.
  void record(std::size_t worker, std::size_t cell, MonitorOutcome outcome,
              double latency_ms) noexcept;

  // -- read side -------------------------------------------------------
  MonitorCellStatus cell_status(std::size_t cell) const;
  std::vector<MonitorWorkerStatus> worker_status() const;
  MonitorSummary summary() const;
  std::size_t cells() const noexcept { return cells_.size(); }

  /// Runs one watchdog scan and, when due (or `force`), one snapshot
  /// write. The ticker calls this periodically; tests call it directly.
  void poll(bool force_snapshot = false);

  /// The full status document (schema v1) as a JSON string.
  std::string status_json(bool final_snapshot) const;

  /// Shifts the monitor's internal clock forward — the watchdog-test seam
  /// (an in-flight trial instantly looks `us` microseconds older).
  void advance_clock_for_test(std::uint64_t us) noexcept {
    clock_skew_us_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::string app;
    std::string tool;
    std::string category;
    std::string fault_model;
    std::uint64_t planned = 0;
    std::atomic<std::uint64_t> outcomes[kMonitorOutcomes] = {};
    std::atomic<std::uint64_t> done{0};
    /// log2-bucketed latency histogram in microseconds (same bucket math
    /// as obs::HistogramSnapshot), driving the running p50/p99.
    std::atomic<std::uint64_t> latency_buckets[HistogramSnapshot::kBuckets] =
        {};
    std::atomic<std::uint64_t> latency_sum_us{0};
    std::atomic<std::uint64_t> watchdog_flags{0};
  };
  struct WorkerSlot {
    /// Cell index + 1 of the in-flight trial/group; 0 = idle. Written by
    /// the owning worker, read by the watchdog.
    std::atomic<std::uint64_t> busy_cell{0};
    std::atomic<std::uint64_t> started_us{0};
    std::atomic<std::uint64_t> trials_done{0};
    /// Trials of the current lane group still unrecorded (1 for a plain
    /// trial). Only the owning worker writes it.
    std::atomic<std::uint64_t> in_flight{0};
    /// Lane count the current group started with (watchdog scaling).
    std::atomic<std::uint64_t> group_size{1};
    std::atomic<bool> flagged{false};
  };

  std::uint64_t now_us() const noexcept;
  void scan_watchdog();
  void write_snapshot(bool final_snapshot);
  MonitorCellStatus cell_status_locked(std::size_t cell) const;
  std::string status_json_locked(bool final_snapshot) const;
  double eta_locked(double elapsed, std::uint64_t done_now,
                    double* rate_out) const;

  MonitorOptions options_;
  std::vector<std::unique_ptr<Cell>> cells_;  // stable addresses
  std::vector<WorkerSlot> workers_;
  std::function<MonitorAux()> aux_source_;
  std::atomic<std::uint64_t> trials_done_{0};
  std::atomic<std::uint64_t> watchdog_flags_{0};
  std::atomic<std::uint64_t> status_writes_{0};
  std::atomic<std::uint64_t> clock_skew_us_{0};
  std::chrono::steady_clock::time_point epoch_;
  bool started_ = false;
  bool finished_ = false;

  /// Guards the rate window, watchdog event list, and snapshot writes
  /// (ticker + poll() callers; never trial workers).
  mutable std::mutex control_mutex_;
  RateWindow rate_;
  std::vector<WatchdogEvent> watchdog_events_;
  std::uint64_t watchdog_events_dropped_ = 0;
  std::uint64_t next_snapshot_us_ = 0;

  std::thread ticker_;
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
};

}  // namespace faultlab::obs
