// Trial-level metrics registry: counters, gauges, and fixed-bucket
// log-scale histograms.
//
// Counters and histograms are sharded per worker thread: every thread gets
// its own set of atomic cells (grown segment-by-segment as metrics are
// registered), increments touch only that shard (no cross-core cache-line
// ping-pong on the trial hot path), and Registry::snapshot() merges all
// shards on read. Gauges are set rarely (stride, snapshot count), so they
// live in one shared atomic each.
//
// The process-wide registry is gated by the FAULTLAB_METRICS environment
// variable: hot paths check `metrics_enabled()` — one cached-bool branch —
// before touching any handle, so the disabled path costs nothing and
// allocates nothing. Tests construct their own Registry instances and
// bypass the gate entirely.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace faultlab::obs {

/// True when FAULTLAB_METRICS is set to anything but "" or "0". Cached on
/// first call; the gate hot paths check before recording into the global
/// registry.
bool metrics_enabled() noexcept;

/// True when FAULTLAB_PROGRESS is set to anything but "" or "0" (the
/// scheduler's opt-in live stderr progress line). Cached on first call.
bool progress_enabled() noexcept;

/// Merged view of one histogram: log2 buckets (bucket b holds values whose
/// bit width is b, i.e. [2^(b-1), 2^b - 1]; bucket 0 holds only 0), plus
/// exact count/sum/min/max.
struct HistogramSnapshot {
  /// Bucket b covers [bucket_lo(b), bucket_hi(b)]; index = bit width of the
  /// value, so 65 buckets span the whole uint64 range.
  static constexpr unsigned kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< exact; 0 when count == 0
  std::uint64_t max = 0;

  static unsigned bucket_of(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lo(unsigned bucket) noexcept;
  static std::uint64_t bucket_hi(unsigned bucket) noexcept;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Percentile p in [0,100], linearly interpolated within the containing
  /// bucket's [lo, hi] range and clamped to the exact observed [min, max]
  /// (so constant data reports the constant exactly).
  double percentile(double p) const noexcept;
};

/// Exact percentile over an ascending-sorted sample (linear interpolation
/// between order statistics). Used for the per-campaign trial-latency
/// p50/p95/p99 in the run manifest, where the full sample is available.
double percentile_sorted(const std::vector<double>& sorted, double p) noexcept;

/// Point-in-time merged view of a whole registry.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  const CounterEntry* counter(const std::string& name) const noexcept;
  const GaugeEntry* gauge(const std::string& name) const noexcept;
  const HistogramEntry* histogram(const std::string& name) const noexcept;
};

class Registry;

/// Monotonic counter handle. Cheap to copy; valid while its Registry lives.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1);

 private:
  friend class Registry;
  Counter(Registry* registry, std::size_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::size_t slot_ = 0;
};

/// Last-value gauge handle (single shared atomic; set/add are rare).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) {
    if (cell_ != nullptr) cell_->fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Log-scale histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value);

 private:
  friend class Registry;
  Histogram(Registry* registry, std::size_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::size_t slot_ = 0;
};

class Registry {
 public:
  /// Thread shards grow in fixed-size segments allocated on first touch,
  /// so the per-shard footprint tracks the metrics actually registered
  /// instead of a hard 1024-cell array. A counter takes 1 cell, a
  /// histogram kHistogramSlots; the (huge) directory bound below is the
  /// only cap, and registering past it throws.
  static constexpr std::size_t kSegmentCells = 128;  // >= kHistogramSlots
  static constexpr std::size_t kMaxSegments = 1024;
  static constexpr std::size_t kMaxCells = kSegmentCells * kMaxSegments;

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Registration is idempotent: the same name always returns a handle to
  /// the same metric (a name registered as a different kind throws).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Merged view across every thread shard, metrics in registration order.
  MetricsSnapshot snapshot() const;

  /// The process-wide registry the engines/scheduler record into (guarded
  /// by metrics_enabled() at each call site).
  static Registry& global();

 private:
  friend class Counter;
  friend class Histogram;

  // Histogram shard layout: kBuckets bucket cells, then count, sum,
  // bitwise-NOT min (so the zero-initialized cell reads as "no minimum
  // yet"), and max.
  static constexpr std::size_t kHistogramSlots =
      HistogramSnapshot::kBuckets + 4;

  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  struct Metric {
    std::string name;
    Kind kind;
    std::size_t slot = 0;   // counters/histograms: shard offset
    std::size_t index = 0;  // gauges: index into gauges_
  };
  // One shard per recording thread. Cells live in lazily CAS-published
  // segments: writers call segment_for() (allocates on first touch of a
  // segment), snapshot() peeks with segment_if() and reads absent segments
  // as zero. register_metric() never lets a metric straddle a segment
  // boundary, so a handle resolves its segment pointer once per record.
  struct Segment {
    std::array<std::atomic<std::uint64_t>, kSegmentCells> cells{};
  };
  struct Shard {
    std::array<std::atomic<Segment*>, kMaxSegments> segments{};
    ~Shard();
    Segment& segment_for(std::size_t slot);
    const Segment* segment_if(std::size_t slot) const noexcept {
      return segments[slot / kSegmentCells].load(std::memory_order_acquire);
    }
  };

  Shard& local_shard();
  const Metric& register_metric(const std::string& name, Kind kind,
                                std::size_t slots);

  mutable std::mutex mutex_;
  std::vector<Metric> metrics_;
  std::size_t next_slot_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::deque<std::atomic<std::int64_t>> gauges_;  // stable addresses
  std::uint64_t id_ = 0;  // process-unique; keys the thread-local cache
};

}  // namespace faultlab::obs
