// Structured tracing: trial-level spans recorded into a bounded in-memory
// ring, exportable as Chrome trace-event JSON (chrome://tracing / Perfetto)
// or JSONL (see obs/export.h).
//
// The span model is deliberately small: a span has a statically-allocated
// name and category, microsecond start/duration relative to the tracer's
// epoch, a small sequential thread id, and string key/value tags. The
// scheduler opens one "trial" span per injection trial; the engines nest
// restore/execute/classify phase spans inside it, plus one-off golden-run
// and profiling spans.
//
// The process-wide tracer is enabled by FAULTLAB_TRACE=<path> (the export
// destination; a .jsonl suffix selects JSONL, anything else Chrome JSON).
// When disabled, ScopedSpan construction is a single relaxed load and a
// branch — no clock read, no allocation — so the trial hot path is
// unaffected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace faultlab::obs {

/// One completed span. `name`/`cat` must point at static-lifetime strings.
struct Span {
  const char* name = "";
  const char* cat = "faultlab";
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Small sequential id for the calling thread (1, 2, 3, ... in first-use
/// order) — far more readable in a trace viewer than std::thread::id.
std::uint32_t current_thread_id() noexcept;

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction (steady clock).
  std::uint64_t now_us() const noexcept;

  /// Appends a completed span; when the ring is full the oldest span is
  /// overwritten and counted as dropped.
  void record(Span&& span);

  /// Copy of the retained spans in chronological order (parents before
  /// their children on start-time ties).
  std::vector<Span> spans() const;

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const;
  void clear();

  /// Process-wide tracer: enabled (and flushed at exit) iff FAULTLAB_TRACE
  /// is set. Tests may enable/clear it manually.
  static Tracer& global();
  /// Cached value of FAULTLAB_TRACE, or nullptr when unset/empty.
  static const char* env_path() noexcept;

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Span> ring_;     // grows to capacity_, then wraps
  std::size_t head_ = 0;       // next overwrite position once full
  std::uint64_t dropped_ = 0;
};

/// RAII span: records start on construction (when the tracer is enabled),
/// duration and tags on destruction or finish(). All members are inert when
/// the tracer was disabled at construction — tag() overloads that would
/// need to format or copy check active() first, so the disabled path never
/// allocates.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, const char* cat = "faultlab") {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    span_.name = name;
    span_.cat = cat;
    span_.tid = current_thread_id();
    span_.start_us = tracer.now_us();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  bool active() const noexcept { return tracer_ != nullptr; }

  void tag(const char* key, std::string_view value) {
    if (tracer_ != nullptr) span_.tags.emplace_back(key, std::string(value));
  }
  void tag(const char* key, const char* value) {
    if (tracer_ != nullptr) span_.tags.emplace_back(key, value);
  }
  void tag(const char* key, std::uint64_t value) {
    if (tracer_ != nullptr)
      span_.tags.emplace_back(key, std::to_string(value));
  }

  /// Ends the span now (idempotent; the destructor otherwise ends it).
  void finish() {
    if (tracer_ == nullptr) return;
    span_.dur_us = tracer_->now_us() - span_.start_us;
    tracer_->record(std::move(span_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  Span span_;
};

}  // namespace faultlab::obs
