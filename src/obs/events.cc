#include "obs/events.h"

#include <cstdio>
#include <cstdlib>

#include "obs/export.h"
#include "obs/propagation.h"
#include "obs/trace.h"
#include "support/env.h"

namespace faultlab::obs {

namespace {

/// Appends `value` as a JSON string (quoted, escaped) or null.
void append_string(std::string& out, const char* value) {
  if (value == nullptr) {
    out += "null";
    return;
  }
  out += '"';
  out += json_escape(value);
  out += '"';
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

const char* EventLog::env_path() noexcept {
  static const char* const path = [] {
    const char* env = support::parse_env_string("FAULTLAB_EVENTS");
    if (env != nullptr && env[0] == '0' && env[1] == '\0')
      return static_cast<const char*>(nullptr);  // explicit off switch
    return env;
  }();
  return path;
}

bool events_enabled() noexcept { return EventLog::env_path() != nullptr; }

EventLog& EventLog::global() {
  static EventLog* const log = [] {
    auto* instance = new EventLog();
    if (const char* path = env_path()) instance->open(path);
    std::atexit([] { EventLog::global().flush(); });
    return instance;
  }();
  return *log;
}

EventLog::~EventLog() { close(); }

bool EventLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write event log to '%s'\n",
                 path.c_str());
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  file_ = f;
  appended_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::close() {
  if (!enabled()) {
    // Never opened (or already closed): nothing buffered, nothing to do.
    std::lock_guard<std::mutex> lock(file_mutex_);
    if (file_ != nullptr) {
      std::fclose(static_cast<std::FILE*>(file_));
      file_ = nullptr;
    }
    return;
  }
  enabled_.store(false, std::memory_order_relaxed);
  flush();
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
}

void EventLog::write_locked(const std::string& data) {
  if (data.empty()) return;
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (file_ == nullptr) return;
  std::fwrite(data.data(), 1, data.size(), static_cast<std::FILE*>(file_));
  std::fflush(static_cast<std::FILE*>(file_));
}

void EventLog::flush() {
  for (Shard& shard : shards_) {
    std::string out;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      out.swap(shard.buffer);
    }
    write_locked(out);
  }
}

void EventLog::append(const TrialEvent& e) {
  if (!enabled()) return;
  Shard& shard = shards_[(current_thread_id() - 1) % kNumShards];
  std::string spill;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::string& out = shard.buffer;
    out += e.prop != nullptr ? "{\"v\":2,\"app\":" : "{\"v\":1,\"app\":";
    append_string(out, e.app);
    out += ",\"tool\":";
    append_string(out, e.tool);
    out += ",\"category\":";
    append_string(out, e.category);
    out += ",\"fault_model\":";
    append_string(out, e.fault_model);
    out += ",\"worker\":";
    append_u64(out, e.worker);
    out += ",\"seq\":";
    append_u64(out, e.seq);
    out += ",\"trial\":";
    append_u64(out, e.trial);
    out += ",\"k\":";
    append_u64(out, e.k);
    out += ",\"bit\":";
    append_u64(out, e.bit);
    out += ",\"site\":";
    append_u64(out, e.static_site);
    out += ",\"opcode\":";
    append_string(out, e.opcode);
    out += ",\"function\":";
    append_string(out, e.function);
    out += ",\"injected\":";
    out += e.injected ? "true" : "false";
    out += ",\"activated\":";
    out += e.activated ? "true" : "false";
    out += ",\"outcome\":";
    append_string(out, e.outcome);
    out += ",\"trap\":";
    append_string(out, e.trap);
    if (e.trap != nullptr) {
      out += ",\"trap_pc\":";
      append_u64(out, e.trap_pc);
    }
    out += ",\"inject_instruction\":";
    append_u64(out, e.inject_instruction);
    out += ",\"instructions_total\":";
    append_u64(out, e.instructions_total);
    out += ",\"instructions_after_injection\":";
    append_u64(out, e.instructions_after_injection);
    out += ",\"checkpoint\":";
    append_string(out, e.checkpoint_hit ? "hit" : "miss");
    out += ",\"latency_ms\":";
    char latency[32];
    std::snprintf(latency, sizeof latency, "%.6f", e.latency_ms);
    out += latency;
    if (e.prop != nullptr) {
      // Schema v2: the per-trial propagation summary, additive — every v1
      // field above is emitted unchanged, in the same order.
      const PropSummary& p = *e.prop;
      out += ",\"prop\":{\"traced\":";
      out += p.traced ? "true" : "false";
      out += ",\"depth\":";
      append_u64(out, p.depth);
      out += ",\"fanout\":";
      append_u64(out, p.fanout);
      out += ",\"tainted_reads\":";
      append_u64(out, p.tainted_reads);
      out += ",\"masking_events\":";
      append_u64(out, p.masking_events);
      out += ",\"store_load_edges\":";
      append_u64(out, p.store_load_edges);
      out += ",\"tainted_stores\":";
      append_u64(out, p.tainted_stores);
      out += ",\"tainted_branches\":";
      append_u64(out, p.tainted_branches);
      out += ",\"peak_tainted_values\":";
      append_u64(out, p.peak_tainted_values);
      out += ",\"peak_tainted_pages\":";
      append_u64(out, p.peak_tainted_pages);
      out += ",\"diverged\":";
      out += p.diverged ? "true" : "false";
      out += ",\"divergence_pc\":";
      append_u64(out, p.divergence_pc);
      out += ",\"divergence_offset\":";
      append_u64(out, p.divergence_offset);
      out += '}';
    }
    out += "}\n";
    if (out.size() >= kFlushBytes) spill.swap(out);
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
  // The spill write happens outside the shard lock: other threads keep
  // appending to their shards while this one drains to the file.
  write_locked(spill);
}

}  // namespace faultlab::obs
