// Fault-propagation tracing — per-trial taint/divergence observability.
//
// The attribution layer (fault/attribution.h) says *which* mapping classes
// the LLFI-vs-PINFI crash gap concentrates in; this layer observes *why*:
// how the flipped bit flows through def-use chains, when it gets masked,
// and where the faulty run's control flow first leaves the golden path.
// At injection the corrupted destination becomes the taint root; from then
// on every instruction the engines deliver through their hooked slow path
// updates shadow taint state (per-register bitmask over the architectural
// register file for PINFI, a dynamic-SSA-value map for LLFI, and a shared
// page-granular machine::PageShadowSet over memory) and compares the
// program counter against a golden-run journal. The per-trial result is a
// PropSummary: propagation depth and fan-out, masking events, store-to-load
// edges, peak tainted footprint, and the first control-flow divergence
// point (static pc + dynamic offset after injection).
//
// Opt-in via FAULTLAB_PROP=1 (or set_prop_enabled() for benches/tests),
// with the same inert-when-disabled discipline as the event log: the
// disabled path is one cached-bool branch at trial setup — no journal, no
// shadow state, no hook retention. Tracing never changes results: the
// tracer only *reads* the callbacks both injectors already receive, and
// keeping the injection hook attached after activation is exactly the
// (slower) path persistent fault models always take — the PropEquiv
// fixtures pin results CSVs byte-identical with the tracer on and off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "machine/memory.h"
#include "vm/interpreter.h"
#include "x86/isa.h"

namespace faultlab::obs {

/// True when FAULTLAB_PROP is set truthy (cached on first call). Trial
/// paths gate on it before building any tracer state, so the disabled
/// path costs one branch.
bool prop_enabled() noexcept;
/// Programmatic override (benches and tests; mirrors EventLog::open()'s
/// sanctioned programmatic use). Takes effect for trials set up after the
/// call — not thread-safe against concurrently *starting* campaigns.
void set_prop_enabled(bool on) noexcept;

/// Aggregate taint/divergence statistics of one traced trial. Carried on
/// fault::TrialRecord (excluded from results CSVs, like the checkpoint
/// observability fields) and serialized additively as event-schema v2.
struct PropSummary {
  bool traced = false;  ///< tracer was armed for this trial
  /// Longest def-use chain from the taint root (root = depth 0).
  std::uint32_t depth = 0;
  /// Dynamic tainted definitions derived from the root (fan-out).
  std::uint32_t fanout = 0;
  /// Reads of tainted values/registers after injection.
  std::uint32_t tainted_reads = 0;
  /// Tainted values/registers overwritten by untainted results.
  std::uint32_t masking_events = 0;
  /// Loads that picked taint back up from a tainted page.
  std::uint32_t store_load_edges = 0;
  /// Stores that carried taint into memory.
  std::uint32_t tainted_stores = 0;
  /// Conditional branches whose input (condition/flags) was tainted.
  std::uint32_t tainted_branches = 0;
  /// Peak simultaneously-tainted SSA values (LLFI) / registers (PINFI).
  std::uint32_t peak_tainted_values = 0;
  /// Peak tainted shadow-memory pages.
  std::uint32_t peak_tainted_pages = 0;
  bool diverged = false;  ///< pc stream left the golden journal
  /// Static location of the first divergent instruction (IR instruction
  /// id for LLFI, code index for PINFI) — deterministic across runs.
  std::uint64_t divergence_pc = 0;
  /// Dynamic instructions between injection and first divergence.
  std::uint64_t divergence_offset = 0;
};

/// Golden-run pc journal: one 32-bit fingerprint per dynamic instruction,
/// captured once per engine (ctor golden run) when tracing is enabled.
/// Fingerprints are only ever compared within the capturing process.
struct GoldenJournal {
  std::vector<std::uint32_t> pc;
  bool empty() const noexcept { return pc.empty(); }
};

/// In-process fingerprint of an IR instruction (pointer fold; stable for
/// the lifetime of the module, never serialized).
inline std::uint32_t vm_pc_fingerprint(const ir::Instruction& instr) noexcept {
  const auto p = reinterpret_cast<std::uintptr_t>(&instr);
  return static_cast<std::uint32_t>((p >> 4) ^ (p >> 36));
}

/// Fingerprint of an x86 instruction: its code index.
inline std::uint32_t sim_pc_fingerprint(std::size_t index) noexcept {
  return static_cast<std::uint32_t>(index);
}

/// IR-level taint tracker, driven by the LLFI injection hook's ExecHook
/// callbacks. Positions (`pos`) are absolute 1-based dynamic instruction
/// indices aligned with the golden journal, so trials resumed from a
/// checkpoint and lockstep lanes trace identically to from-scratch runs.
class VmPropTracer {
 public:
  /// `journal` may be null (no divergence detection). Not owned.
  explicit VmPropTracer(const GoldenJournal* journal) : journal_(journal) {}

  bool rooted() const noexcept { return rooted_; }

  /// Injection moment: the corrupted SSA def becomes the taint root.
  /// Re-fires (persistent/intermittent models) re-root the same trial;
  /// the divergence offset stays relative to the first injection.
  void plant_root(const vm::DynValueId& id, std::uint64_t pos);

  void on_instruction(std::uint64_t pos, const ir::Instruction& instr);
  void on_operand_read(const vm::DynValueId& id, const ir::Instruction& user);
  void on_argument_read(std::uint64_t frame, unsigned index,
                        const ir::Instruction& user);
  void on_call(const ir::Instruction& call, std::uint64_t callee_frame);
  void on_result(const vm::DynValueId& id);
  void on_memory_access(const ir::Instruction& instr, std::uint64_t addr,
                        unsigned size, bool is_store);

  /// Snapshot of the statistics so far (traced = true).
  PropSummary summary() const noexcept;

 private:
  struct Taint {
    std::uint32_t depth = 0;
    bool read = false;
  };
  struct IdHash {
    std::size_t operator()(const vm::DynValueId& id) const noexcept {
      std::uint64_t h = id.frame * 0x9e3779b97f4a7c15ULL;
      h ^= reinterpret_cast<std::uintptr_t>(id.def) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  void merge_pending(const ir::Instruction* user, std::uint32_t depth);
  void note_tainted_read(const ir::Instruction& user, std::uint32_t depth);

  const GoldenJournal* journal_;
  PropSummary summary_;
  bool rooted_ = false;
  std::uint64_t root_pos_ = 0;

  std::unordered_map<vm::DynValueId, Taint, IdHash> taint_;
  machine::PageShadowSet shadow_;
  /// Tainted callee-frame arguments: frame id -> source depth (coarse:
  /// one depth per frame, any tainted actual taints every formal read).
  std::unordered_map<std::uint64_t, std::uint32_t> arg_taint_;
  /// Source-operand taint gathered for in-flight users of the current
  /// step (phi groups keep several in flight).
  std::unordered_map<const ir::Instruction*, std::uint32_t> pending_;
  /// Tainted return value travelling from a Ret read to the call-site
  /// result definition in the caller frame.
  bool ret_pending_ = false;
  std::uint32_t ret_depth_ = 0;
  /// Taint picked up by the current load's memory read, consumed by its
  /// immediately-following on_result.
  const ir::Instruction* mem_user_ = nullptr;
  std::uint32_t mem_depth_ = 0;
};

/// Assembly-level taint tracker, driven by the PINFI injection hook.
/// Register shadow state is a bitmask + depth array over the simulated
/// register file (16 GPRs, 16 XMM low lanes, rflags); memory shadow is
/// page-granular. Taint transfer for one instruction is computed
/// structurally in on_before (pre-execution), optionally widened by
/// on_memory (exact pre-execution effective addresses), and committed in
/// on_after — matching the simulator's hook delivery order.
class SimPropTracer {
 public:
  explicit SimPropTracer(const GoldenJournal* journal) : journal_(journal) {}

  bool rooted() const noexcept { return rooted_; }

  void plant_root_gpr(unsigned reg, std::uint64_t pos);
  void plant_root_xmm(unsigned reg, std::uint64_t pos);
  void plant_root_flags(std::uint64_t pos);

  void on_before(std::uint64_t pos, std::size_t index, const x86::Inst& inst);
  void on_memory(const x86::Inst& inst, std::uint64_t addr, unsigned size,
                 bool is_store);
  /// Commits the pending register/flags taint transfer (call from
  /// on_after, i.e. once the instruction has executed).
  void commit();

  /// Snapshot of the statistics so far (traced = true).
  PropSummary summary() const noexcept;

 private:
  // Shadow slots: 0..15 GPRs, 16..31 XMM low lanes, 32 rflags.
  static constexpr unsigned kFlagsSlot = 32;
  static constexpr unsigned kNumSlots = 33;

  static int slot_of(x86::RegId reg) noexcept {
    if (x86::is_phys_gpr(reg)) return static_cast<int>(reg);
    if (x86::is_phys_xmm(reg))
      return static_cast<int>(16 + (reg - x86::kXmmBase));
    return -1;
  }
  bool slot_tainted(unsigned slot) const noexcept {
    return (taint_mask_ >> slot) & 1;
  }
  void taint_slot(unsigned slot, std::uint32_t depth) noexcept;
  void untaint_slot(unsigned slot) noexcept { taint_mask_ &= ~(1ULL << slot); }
  void note_peaks() noexcept;

  const GoldenJournal* journal_;
  PropSummary summary_;
  bool rooted_ = false;
  std::uint64_t root_pos_ = 0;

  std::uint64_t taint_mask_ = 0;  ///< bit per shadow slot
  std::uint32_t slot_depth_[kNumSlots] = {};
  machine::PageShadowSet shadow_;
  std::vector<x86::RegId> reads_;  ///< scratch for collect_reads

  // Pending transfer computed by on_before, committed by commit().
  bool pending_valid_ = false;
  int pending_dest_ = -1;
  bool pending_src_tainted_ = false;
  std::uint32_t pending_src_depth_ = 0;
  bool pending_fully_overwrites_ = false;
  bool pending_writes_flags_ = false;
};

}  // namespace faultlab::obs
