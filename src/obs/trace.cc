#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "obs/export.h"
#include "support/env.h"

namespace faultlab::obs {

std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(Span&& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = ring_;
  }
  // Chronological order; on equal start, the longer span is the parent and
  // must come first for trace viewers to nest correctly.
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;
  });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

const char* Tracer::env_path() noexcept {
  static const char* path = support::parse_env_string("FAULTLAB_TRACE");
  return path;
}

Tracer& Tracer::global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();  // leaked: must outlive all threads and atexit
    if (env_path() != nullptr) {
      t->set_enabled(true);
      // Programs that never reach a scheduler flush still get their trace.
      std::atexit([] { flush_observability(); });
    }
    return t;
  }();
  return *tracer;
}

}  // namespace faultlab::obs
