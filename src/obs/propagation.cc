#include "obs/propagation.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "ir/instruction.h"
#include "support/env.h"

namespace faultlab::obs {

namespace {
// -1 = not yet read from the environment; 0/1 = cached/overridden value.
std::atomic<int> g_prop_enabled{-1};
}  // namespace

bool prop_enabled() noexcept {
  int v = g_prop_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = support::parse_env_flag("FAULTLAB_PROP", false) ? 1 : 0;
    g_prop_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_prop_enabled(bool on) noexcept {
  g_prop_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// VmPropTracer
// ---------------------------------------------------------------------------

void VmPropTracer::plant_root(const vm::DynValueId& id, std::uint64_t pos) {
  if (!rooted_) {
    rooted_ = true;
    root_pos_ = pos;
  }
  taint_[id] = Taint{0, false};
  summary_.peak_tainted_values = std::max<std::uint32_t>(
      summary_.peak_tainted_values, static_cast<std::uint32_t>(taint_.size()));
}

void VmPropTracer::on_instruction(std::uint64_t pos,
                                  const ir::Instruction& instr) {
  if (!rooted_) return;
  // Phi groups keep several users in flight (reads for phi i interleave
  // with on_instruction for phi i+1, results land at group end); any other
  // opcode starts a fresh step.
  if (instr.opcode() != ir::Opcode::Phi && !pending_.empty()) pending_.clear();
  if (!summary_.diverged && journal_ != nullptr) {
    if (pos > journal_->pc.size() ||
        journal_->pc[pos - 1] != vm_pc_fingerprint(instr)) {
      summary_.diverged = true;
      summary_.divergence_pc = instr.id();
      summary_.divergence_offset = pos > root_pos_ ? pos - root_pos_ : 0;
    }
  }
}

void VmPropTracer::merge_pending(const ir::Instruction* user,
                                 std::uint32_t depth) {
  auto [it, inserted] = pending_.emplace(user, depth);
  if (!inserted && depth > it->second) it->second = depth;
}

void VmPropTracer::note_tainted_read(const ir::Instruction& user,
                                     std::uint32_t depth) {
  ++summary_.tainted_reads;
  switch (user.opcode()) {
    case ir::Opcode::Br:
      // read_operand is only reached for conditional branches.
      ++summary_.tainted_branches;
      break;
    case ir::Opcode::Ret:
      // The value crosses frames: the caller's call-site result is defined
      // from inside the Ret step, before the next on_instruction.
      ret_pending_ = true;
      ret_depth_ = std::max(ret_depth_, depth);
      break;
    default:
      break;
  }
  merge_pending(&user, depth);
}

void VmPropTracer::on_operand_read(const vm::DynValueId& id,
                                   const ir::Instruction& user) {
  if (!rooted_ || taint_.empty()) return;
  const auto it = taint_.find(id);
  if (it == taint_.end()) return;
  it->second.read = true;
  note_tainted_read(user, it->second.depth);
}

void VmPropTracer::on_argument_read(std::uint64_t frame, unsigned index,
                                    const ir::Instruction& user) {
  (void)index;
  if (!rooted_ || arg_taint_.empty()) return;
  const auto it = arg_taint_.find(frame);
  if (it == arg_taint_.end()) return;
  note_tainted_read(user, it->second);
}

void VmPropTracer::on_call(const ir::Instruction& call,
                           std::uint64_t callee_frame) {
  if (!rooted_) return;
  const auto it = pending_.find(&call);
  if (it == pending_.end()) return;
  // Coarse cross-frame hand-off: any tainted actual taints every formal
  // argument read of the callee frame at the actual's depth.
  arg_taint_[callee_frame] = it->second;
}

void VmPropTracer::on_result(const vm::DynValueId& id) {
  if (!rooted_) return;
  bool tainted = false;
  std::uint32_t src = 0;
  if (const auto it = pending_.find(id.def); it != pending_.end()) {
    tainted = true;
    src = it->second;
    pending_.erase(it);
  }
  if (ret_pending_ && id.def->opcode() == ir::Opcode::Call) {
    tainted = true;
    src = std::max(src, ret_depth_);
    ret_pending_ = false;
    ret_depth_ = 0;
  }
  if (mem_user_ == id.def) {
    tainted = true;
    src = std::max(src, mem_depth_);
    mem_user_ = nullptr;
  }
  const auto it = taint_.find(id);
  if (tainted) {
    const std::uint32_t depth = src + 1;
    if (it == taint_.end()) {
      taint_.emplace(id, Taint{depth, false});
    } else {
      it->second = Taint{depth, false};
    }
    ++summary_.fanout;
    summary_.depth = std::max(summary_.depth, depth);
    summary_.peak_tainted_values =
        std::max<std::uint32_t>(summary_.peak_tainted_values,
                                static_cast<std::uint32_t>(taint_.size()));
  } else if (it != taint_.end()) {
    // Untainted redefinition kills the taint: a masking event (the `read`
    // flag distinguishes values that propagated first from ones masked
    // unread, which both count — the fault's influence ends either way).
    ++summary_.masking_events;
    taint_.erase(it);
  }
}

void VmPropTracer::on_memory_access(const ir::Instruction& instr,
                                    std::uint64_t addr, unsigned size,
                                    bool is_store) {
  if (!rooted_) return;
  if (is_store) {
    const auto it = pending_.find(&instr);
    if (it == pending_.end()) return;  // neither value nor address tainted
    shadow_.taint(addr, size, it->second);
    ++summary_.tainted_stores;
    summary_.peak_tainted_pages = std::max<std::uint32_t>(
        summary_.peak_tainted_pages, static_cast<std::uint32_t>(shadow_.pages()));
    return;
  }
  std::uint32_t depth = 0;
  if (!shadow_.tainted(addr, size, &depth)) return;
  ++summary_.store_load_edges;
  // The load's on_result follows immediately; hand it the memory taint.
  mem_user_ = &instr;
  mem_depth_ = depth;
}

PropSummary VmPropTracer::summary() const noexcept {
  PropSummary s = summary_;
  s.traced = true;
  return s;
}

// ---------------------------------------------------------------------------
// SimPropTracer
// ---------------------------------------------------------------------------

void SimPropTracer::taint_slot(unsigned slot, std::uint32_t depth) noexcept {
  taint_mask_ |= 1ULL << slot;
  slot_depth_[slot] = depth;
}

void SimPropTracer::note_peaks() noexcept {
  summary_.peak_tainted_values = std::max<std::uint32_t>(
      summary_.peak_tainted_values,
      static_cast<std::uint32_t>(std::popcount(taint_mask_)));
}

void SimPropTracer::plant_root_gpr(unsigned reg, std::uint64_t pos) {
  if (!rooted_) {
    rooted_ = true;
    root_pos_ = pos;
  }
  taint_slot(reg, 0);
  note_peaks();
}

void SimPropTracer::plant_root_xmm(unsigned reg, std::uint64_t pos) {
  if (!rooted_) {
    rooted_ = true;
    root_pos_ = pos;
  }
  taint_slot(16 + reg, 0);
  note_peaks();
}

void SimPropTracer::plant_root_flags(std::uint64_t pos) {
  if (!rooted_) {
    rooted_ = true;
    root_pos_ = pos;
  }
  taint_slot(kFlagsSlot, 0);
  note_peaks();
}

void SimPropTracer::on_before(std::uint64_t pos, std::size_t index,
                              const x86::Inst& inst) {
  if (!rooted_) return;
  if (!summary_.diverged && journal_ != nullptr) {
    if (pos > journal_->pc.size() ||
        journal_->pc[pos - 1] != sim_pc_fingerprint(index)) {
      summary_.diverged = true;
      summary_.divergence_pc = index;
      summary_.divergence_offset = pos > root_pos_ ? pos - root_pos_ : 0;
    }
  }

  // Structural source scan: explicit register reads (includes address
  // registers of memory operands) plus the flags register for jcc/setcc/
  // cmov. Taint transfer commits in commit() after the instruction
  // executes; on_memory may widen the source set in between.
  reads_.clear();
  x86::collect_reads(inst, reads_);
  bool src_tainted = false;
  std::uint32_t src_depth = 0;
  for (const x86::RegId reg : reads_) {
    const int slot = slot_of(reg);
    if (slot < 0 || !slot_tainted(static_cast<unsigned>(slot))) continue;
    src_tainted = true;
    src_depth = std::max(src_depth, slot_depth_[slot]);
    ++summary_.tainted_reads;
  }
  if (x86::reads_flags(inst) && slot_tainted(kFlagsSlot)) {
    src_tainted = true;
    src_depth = std::max(src_depth, slot_depth_[kFlagsSlot]);
    ++summary_.tainted_reads;
    if (inst.op == x86::Op::Jcc) ++summary_.tainted_branches;
  }

  const x86::RegId dest = x86::dest_reg(inst);
  pending_valid_ = true;
  pending_dest_ = dest == x86::kNoReg ? -1 : slot_of(dest);
  pending_src_tainted_ = src_tainted;
  pending_src_depth_ = src_depth;
  pending_fully_overwrites_ = x86::dest_fully_overwrites(inst);
  pending_writes_flags_ = x86::writes_flags(inst);
}

void SimPropTracer::on_memory(const x86::Inst& inst, std::uint64_t addr,
                              unsigned size, bool is_store) {
  (void)inst;
  if (!rooted_ || !pending_valid_) return;
  if (is_store) {
    // Stored value and address registers were scanned by on_before; the
    // store carries the deepest tainted source into memory verbatim.
    if (!pending_src_tainted_) return;
    shadow_.taint(addr, size, pending_src_depth_);
    ++summary_.tainted_stores;
    summary_.peak_tainted_pages = std::max<std::uint32_t>(
        summary_.peak_tainted_pages, static_cast<std::uint32_t>(shadow_.pages()));
    return;
  }
  std::uint32_t depth = 0;
  if (!shadow_.tainted(addr, size, &depth)) return;
  ++summary_.store_load_edges;
  pending_src_tainted_ = true;
  pending_src_depth_ = std::max(pending_src_depth_, depth);
}

void SimPropTracer::commit() {
  if (!rooted_ || !pending_valid_) return;
  pending_valid_ = false;
  if (pending_writes_flags_) {
    if (pending_src_tainted_) {
      taint_slot(kFlagsSlot, pending_src_depth_ + 1);
      ++summary_.fanout;
      summary_.depth = std::max(summary_.depth, pending_src_depth_ + 1);
    } else if (slot_tainted(kFlagsSlot)) {
      ++summary_.masking_events;
      untaint_slot(kFlagsSlot);
    }
  }
  if (pending_dest_ >= 0) {
    const auto slot = static_cast<unsigned>(pending_dest_);
    if (pending_src_tainted_) {
      taint_slot(slot, pending_src_depth_ + 1);
      ++summary_.fanout;
      summary_.depth = std::max(summary_.depth, pending_src_depth_ + 1);
    } else if (slot_tainted(slot) && pending_fully_overwrites_) {
      ++summary_.masking_events;
      untaint_slot(slot);
    }
  }
  note_peaks();
}

PropSummary SimPropTracer::summary() const noexcept {
  PropSummary s = summary_;
  s.traced = true;
  return s;
}

}  // namespace faultlab::obs
