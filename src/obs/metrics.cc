#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "support/env.h"

namespace faultlab::obs {

namespace {

/// Relaxed atomic max (used for histogram max and the NOT-encoded min).
void atomic_max(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  static const bool on = support::parse_env_flag("FAULTLAB_METRICS", false);
  return on;
}

bool progress_enabled() noexcept {
  static const bool on = support::parse_env_flag("FAULTLAB_PROGRESS", false);
  return on;
}

unsigned HistogramSnapshot::bucket_of(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::bit_width(value));
}

std::uint64_t HistogramSnapshot::bucket_lo(unsigned bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t HistogramSnapshot::bucket_hi(unsigned bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = (p / 100.0) * static_cast<double>(count);
  std::uint64_t before = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t cum = before + buckets[b];
    if (static_cast<double>(cum) >= target) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double frac =
          std::max(0.0, target - static_cast<double>(before)) /
          static_cast<double>(buckets[b]);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    before = cum;
  }
  return static_cast<double>(max);
}

double percentile_sorted(const std::vector<double>& sorted,
                         double p) noexcept {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

const MetricsSnapshot::CounterEntry* MetricsSnapshot::counter(
    const std::string& name) const noexcept {
  for (const auto& e : counters)
    if (e.name == name) return &e;
  return nullptr;
}

const MetricsSnapshot::GaugeEntry* MetricsSnapshot::gauge(
    const std::string& name) const noexcept {
  for (const auto& e : gauges)
    if (e.name == name) return &e;
  return nullptr;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::histogram(
    const std::string& name) const noexcept {
  for (const auto& e : histograms)
    if (e.name == name) return &e;
  return nullptr;
}

void Counter::add(std::uint64_t n) {
  if (registry_ == nullptr) return;
  Registry::Segment& seg = registry_->local_shard().segment_for(slot_);
  seg.cells[slot_ % Registry::kSegmentCells].fetch_add(
      n, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) {
  if (registry_ == nullptr) return;
  // All of a histogram's cells share one segment (register_metric pads to
  // the segment boundary), so the segment resolves once.
  Registry::Segment& seg = registry_->local_shard().segment_for(slot_);
  auto* cells = seg.cells.data() + slot_ % Registry::kSegmentCells;
  constexpr unsigned kB = HistogramSnapshot::kBuckets;
  cells[HistogramSnapshot::bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  cells[kB + 0].fetch_add(1, std::memory_order_relaxed);      // count
  cells[kB + 1].fetch_add(value, std::memory_order_relaxed);  // sum
  atomic_max(cells[kB + 2], ~value);                          // ~min
  atomic_max(cells[kB + 3], value);                           // max
}

Registry::Shard::~Shard() {
  for (auto& slot : segments) delete slot.load(std::memory_order_acquire);
}

Registry::Segment& Registry::Shard::segment_for(std::size_t slot) {
  std::atomic<Segment*>& entry = segments[slot / kSegmentCells];
  Segment* seg = entry.load(std::memory_order_acquire);
  if (seg == nullptr) {
    auto* fresh = new Segment();  // cells value-initialize to 0
    if (entry.compare_exchange_strong(seg, fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      seg = fresh;
    } else {
      delete fresh;  // another publisher won; `seg` holds the winner
    }
  }
  return *seg;
}

Registry::Registry() {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() {
  // Thread-local shard cache, keyed by the registry's process-unique id so
  // a stale entry for a destroyed registry can never be confused with a
  // live one at a reused address.
  struct CacheEntry {
    std::uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache)
    if (e.registry_id == id_) return *e.shard;
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.push_back({id_, shard});
  return *shard;
}

const Registry::Metric& Registry::register_metric(const std::string& name,
                                                  Kind kind,
                                                  std::size_t slots) {
  for (const Metric& m : metrics_) {
    if (m.name != name) continue;
    if (m.kind != kind)
      throw std::logic_error("metric '" + name +
                             "' already registered with a different kind");
    return m;
  }
  // Keep every metric inside one segment so handles resolve the segment
  // pointer once: pad to the next boundary when this one would straddle.
  const std::size_t used = next_slot_ % kSegmentCells;
  if (used + slots > kSegmentCells)
    next_slot_ += kSegmentCells - used;
  if (next_slot_ + slots > kMaxCells)
    throw std::length_error("metrics registry slot capacity exhausted");
  Metric m;
  m.name = name;
  m.kind = kind;
  if (kind == Kind::Gauge) {
    m.index = gauges_.size();
    gauges_.emplace_back(0);
  } else {
    m.slot = next_slot_;
    next_slot_ += slots;
  }
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counter(this, register_metric(name, Kind::Counter, 1).slot);
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(&gauges_[register_metric(name, Kind::Gauge, 0).index]);
}

Histogram Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Histogram(this,
                   register_metric(name, Kind::Histogram, kHistogramSlots).slot);
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  auto cell = [](const Shard& shard, std::size_t slot) -> std::uint64_t {
    const Segment* seg = shard.segment_if(slot);
    if (seg == nullptr) return 0;  // never touched by this thread
    return seg->cells[slot % kSegmentCells].load(std::memory_order_relaxed);
  };
  auto merged = [this, &cell](std::size_t slot) {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += cell(*shard, slot);
    return sum;
  };
  auto merged_max = [this, &cell](std::size_t slot) {
    std::uint64_t m = 0;
    for (const auto& shard : shards_) m = std::max(m, cell(*shard, slot));
    return m;
  };
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::Counter:
        out.counters.push_back({m.name, merged(m.slot)});
        break;
      case Kind::Gauge:
        out.gauges.push_back(
            {m.name, gauges_[m.index].load(std::memory_order_relaxed)});
        break;
      case Kind::Histogram: {
        HistogramSnapshot h;
        constexpr unsigned kB = HistogramSnapshot::kBuckets;
        for (unsigned b = 0; b < kB; ++b) h.buckets[b] = merged(m.slot + b);
        h.count = merged(m.slot + kB + 0);
        h.sum = merged(m.slot + kB + 1);
        h.min = h.count == 0 ? 0 : ~merged_max(m.slot + kB + 2);
        h.max = merged_max(m.slot + kB + 3);
        out.histograms.push_back({m.name, h});
        break;
      }
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

}  // namespace faultlab::obs
