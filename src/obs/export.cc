#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/env.h"

namespace faultlab::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_event(const Span& span, std::ostream& os) {
  os << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
     << json_escape(span.cat) << "\",\"ph\":\"X\",\"ts\":" << span.start_us
     << ",\"dur\":" << span.dur_us << ",\"pid\":1,\"tid\":" << span.tid;
  if (!span.tags.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < span.tags.size(); ++i) {
      if (i != 0) os << ",";
      os << "\"" << json_escape(span.tags[i].first) << "\":\""
         << json_escape(span.tags[i].second) << "\"";
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(const std::vector<Span>& spans, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    write_event(spans[i], os);
    os << (i + 1 < spans.size() ? ",\n" : "\n");
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_spans_jsonl(const std::vector<Span>& spans, std::ostream& os) {
  for (const Span& span : spans) {
    os << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
       << json_escape(span.cat) << "\",\"ts_us\":" << span.start_us
       << ",\"dur_us\":" << span.dur_us << ",\"tid\":" << span.tid;
    for (const auto& [key, value] : span.tags)
      os << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
         << "\"";
    os << "}\n";
  }
}

bool export_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                 path.c_str());
    return false;
  }
  const std::vector<Span> spans = tracer.spans();
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl)
    write_spans_jsonl(spans, out);
  else
    write_chrome_trace(spans, out);
  return static_cast<bool>(out);
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    os << (i != 0 ? ",\n    " : "\n    ") << "\"" << json_escape(c.name)
       << "\": " << c.value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    os << (i != 0 ? ",\n    " : "\n    ") << "\"" << json_escape(g.name)
       << "\": " << g.value;
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i != 0 ? ",\n    " : "\n    ") << "\"" << json_escape(h.name)
       << "\": {\"count\": " << h.hist.count << ", \"sum\": " << h.hist.sum
       << ", \"min\": " << h.hist.min << ", \"max\": " << h.hist.max
       << ", \"mean\": " << h.hist.mean()
       << ", \"p50\": " << h.hist.percentile(50)
       << ", \"p95\": " << h.hist.percentile(95)
       << ", \"p99\": " << h.hist.percentile(99) << ", \"buckets\": [";
    bool first = true;
    for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.hist.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "[" << HistogramSnapshot::bucket_lo(b) << ", "
         << h.hist.buckets[b] << "]";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void flush_observability() {
  if (const char* path = Tracer::env_path())
    export_trace(Tracer::global(), path);
  if (!metrics_enabled()) return;
  const char* dest = support::parse_env_string("FAULTLAB_METRICS");
  if (dest == nullptr) return;
  const std::string json = metrics_json(Registry::global().snapshot());
  // "1" (a bare switch) keeps collection on but has nowhere to write a
  // file: print the summary to stderr instead.
  if (std::string_view(dest) == "1" || std::string_view(dest) == "stderr") {
    std::fputs(json.c_str(), stderr);
    return;
  }
  std::ofstream out(dest, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write metrics to '%s'\n", dest);
    return;
  }
  out << json;
}

}  // namespace faultlab::obs
