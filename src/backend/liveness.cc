#include "backend/liveness.h"

#include <algorithm>
#include <set>

namespace faultlab::backend {

namespace {

using x86::Inst;
using x86::MachineFunction;
using x86::Op;
using x86::RegId;

std::vector<std::size_t> successors_of(const MachineFunction& mf,
                                       std::size_t block_index) {
  std::vector<std::size_t> out;
  auto label_to_index = [&](std::int64_t label) -> std::size_t {
    for (std::size_t i = 0; i < mf.blocks.size(); ++i)
      if (mf.blocks[i].label == label) return i;
    return mf.blocks.size();
  };
  const auto& insts = mf.blocks[block_index].insts;
  for (const Inst& inst : insts) {
    if (inst.op == Op::Jmp || inst.op == Op::Jcc) {
      const std::size_t t = label_to_index(inst.target);
      if (t < mf.blocks.size() &&
          std::find(out.begin(), out.end(), t) == out.end())
        out.push_back(t);
    }
  }
  return out;
}

}  // namespace

LivenessResult compute_liveness(const MachineFunction& mf) {
  LivenessResult result;
  const std::size_t nblocks = mf.blocks.size();

  // Per-block use/def of virtual registers.
  std::vector<std::set<RegId>> use(nblocks), def(nblocks), live_in(nblocks),
      live_out(nblocks);
  std::vector<std::vector<std::size_t>> succ(nblocks);

  result.block_start_position.resize(nblocks);
  std::size_t position = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    result.block_start_position[b] = position;
    position += mf.blocks[b].insts.size();
    succ[b] = successors_of(mf, b);
    std::vector<RegId> reads;
    for (const Inst& inst : mf.blocks[b].insts) {
      reads.clear();
      x86::collect_reads(inst, reads);
      for (RegId r : reads)
        if (x86::is_virtual(r) && !def[b].count(r)) use[b].insert(r);
      const RegId d = x86::dest_reg(inst);
      if (x86::is_virtual(d) && x86::dest_fully_overwrites(inst))
        def[b].insert(d);
      else if (x86::is_virtual(d) && !def[b].count(d))
        use[b].insert(d);  // partial write reads the old value
    }
  }
  result.num_positions = position;

  // Iterative backward dataflow.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nblocks; b-- > 0;) {
      std::set<RegId> out;
      for (std::size_t s : succ[b])
        out.insert(live_in[s].begin(), live_in[s].end());
      std::set<RegId> in = use[b];
      for (RegId r : out)
        if (!def[b].count(r)) in.insert(r);
      if (out != live_out[b] || in != live_in[b]) {
        live_out[b] = std::move(out);
        live_in[b] = std::move(in);
        changed = true;
      }
    }
  }

  // Build intervals.
  std::map<RegId, LiveInterval> intervals;
  auto touch = [&](RegId r, std::size_t pos, bool is_use) {
    auto [it, inserted] = intervals.try_emplace(r);
    LiveInterval& iv = it->second;
    if (inserted) {
      iv.vreg = r;
      iv.start = pos;
      iv.end = pos;
    } else {
      iv.start = std::min(iv.start, pos);
      iv.end = std::max(iv.end, pos);
    }
    if (is_use) ++iv.uses;
  };

  std::vector<RegId> reads;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = result.block_start_position[b];
    const std::size_t last =
        begin + (mf.blocks[b].insts.empty() ? 0 : mf.blocks[b].insts.size() - 1);
    for (RegId r : live_in[b]) touch(r, begin, false);
    for (RegId r : live_out[b]) touch(r, last, false);
    for (std::size_t i = 0; i < mf.blocks[b].insts.size(); ++i) {
      const Inst& inst = mf.blocks[b].insts[i];
      const std::size_t pos = begin + i;
      reads.clear();
      x86::collect_reads(inst, reads);
      for (RegId r : reads)
        if (x86::is_virtual(r)) touch(r, pos, true);
      const RegId d = x86::dest_reg(inst);
      if (x86::is_virtual(d)) touch(d, pos, true);
    }
  }

  // Mark call crossings.
  // Only real calls clobber caller-saved registers: builtins execute as a
  // single simulated instruction and preserve everything except their
  // RAX/XMM0 return slot.
  std::vector<std::size_t> call_positions;
  for (std::size_t b = 0; b < nblocks; ++b)
    for (std::size_t i = 0; i < mf.blocks[b].insts.size(); ++i) {
      if (mf.blocks[b].insts[i].op == Op::Call)
        call_positions.push_back(result.block_start_position[b] + i);
    }
  for (auto& [r, iv] : intervals) {
    for (std::size_t cp : call_positions)
      if (iv.start < cp && cp < iv.end) {
        iv.crosses_call = true;
        break;
      }
  }

  result.intervals.reserve(intervals.size());
  for (auto& [r, iv] : intervals) result.intervals.push_back(iv);
  std::sort(result.intervals.begin(), result.intervals.end());
  return result;
}

}  // namespace faultlab::backend
