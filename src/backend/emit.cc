#include "backend/emit.h"

#include <map>
#include <stdexcept>

#include "support/bitutil.h"

namespace faultlab::backend {

namespace {
using x86::Inst;
using x86::Op;
}  // namespace

x86::Program emit_program(std::vector<x86::MachineFunction> functions,
                          const LoweringContext& ctx) {
  x86::Program program;
  program.builtins = ctx.builtins;

  std::vector<std::size_t> function_entry(functions.size(), 0);

  for (std::size_t f = 0; f < functions.size(); ++f) {
    const auto& mf = functions[f];
    if (mf.func_ordinal != f)
      throw std::logic_error("emit: functions not ordered by ordinal");
    const std::size_t entry = program.code.size();
    function_entry[f] = entry;

    // First pass: label positions.
    std::map<std::int64_t, std::size_t> label_pos;
    std::size_t cursor = entry;
    for (const auto& block : mf.blocks) {
      label_pos[block.label] = cursor;
      cursor += block.insts.size();
    }
    // Second pass: copy instructions, patching intra-function jumps.
    for (const auto& block : mf.blocks) {
      for (Inst inst : block.insts) {
        if (inst.op == Op::Jmp || inst.op == Op::Jcc) {
          auto it = label_pos.find(inst.target);
          if (it == label_pos.end())
            throw std::logic_error("emit: unresolved label");
          inst.target = static_cast<std::int64_t>(it->second);
        }
        program.code.push_back(inst);
      }
    }

    x86::FunctionInfo info;
    info.name = mf.name;
    info.entry = entry;
    info.size = program.code.size() - entry;
    program.functions.push_back(std::move(info));
  }

  // Patch direct calls (ordinal -> entry index).
  for (Inst& inst : program.code) {
    if (inst.op == Op::Call) {
      const auto ordinal = static_cast<std::size_t>(inst.target);
      if (ordinal >= function_entry.size())
        throw std::logic_error("emit: call to unknown function");
      inst.target = static_cast<std::int64_t>(function_entry[ordinal]);
    }
  }

  // Data image: globals then the double pool.
  const auto& module = *ctx.module;
  for (const auto& g : module.globals()) {
    x86::DataSegment seg;
    seg.address = ctx.globals->address_of(g.get());
    seg.bytes = g->initializer();
    program.data.push_back(std::move(seg));
  }
  for (const auto& [bits, addr] : ctx.double_pool) {
    x86::DataSegment seg;
    seg.address = addr;
    seg.bytes.resize(8);
    for (int b = 0; b < 8; ++b)
      seg.bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(bits >> (8 * b));
    program.data.push_back(std::move(seg));
  }
  program.data_size = ctx.pool_cursor - machine::Layout::kGlobalBase;

  const x86::FunctionInfo* main_fn = program.function_by_name("main");
  if (main_fn == nullptr) throw std::logic_error("emit: no main function");
  program.entry_index = main_fn->entry;
  return program;
}

}  // namespace faultlab::backend
