#include "backend/isel.h"

#include <cassert>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>

#include "ir/irbuilder.h"
#include "support/bitutil.h"

namespace faultlab::backend {

namespace {

using ir::Opcode;
using x86::Cond;
using x86::Inst;
using x86::MemOperand;
using x86::Op;
using x86::RegId;
using x86::SrcKind;

unsigned width_of(const ir::Type* t) {
  if (t->is_double() || t->is_ptr()) return 8;
  const unsigned bytes = static_cast<unsigned>(t->size_in_bytes());
  return bytes == 0 ? 8 : bytes;
}

bool fits_imm32(std::uint64_t raw, unsigned width_bytes) {
  if (width_bytes <= 4) return true;
  const auto s = static_cast<std::int64_t>(raw);
  return s >= std::numeric_limits<std::int32_t>::min() &&
         s <= std::numeric_limits<std::int32_t>::max();
}

}  // namespace

LoweringContext LoweringContext::build(const ir::Module& module,
                                       const machine::GlobalLayout& globals) {
  LoweringContext ctx;
  ctx.module = &module;
  ctx.globals = &globals;
  std::size_t next_func = 0;
  for (const auto& f : module.functions()) {
    if (f->is_builtin()) {
      ctx.builtin_ordinal[f.get()] = ctx.builtins.size();
      x86::BuiltinSig sig;
      sig.name = f->name();
      sig.returns_value = !f->return_type()->is_void();
      sig.returns_double = f->return_type()->is_double();
      for (const ir::Type* p : f->func_type()->func_params())
        sig.arg_is_double.push_back(p->is_double());
      ctx.builtins.push_back(std::move(sig));
    } else {
      ctx.func_ordinal[f.get()] = next_func++;
    }
  }
  // The double pool sits just past the globals region, 16-aligned.
  ctx.pool_cursor =
      (machine::Layout::kGlobalBase + globals.total_size() + 15) / 16 * 16;
  return ctx;
}

std::uint64_t LoweringContext::pool_address(double value) {
  const std::uint64_t bits = bits_of(value);
  auto it = double_pool.find(bits);
  if (it != double_pool.end()) return it->second;
  const std::uint64_t addr = pool_cursor;
  pool_cursor += 8;
  double_pool[bits] = addr;
  return addr;
}

void split_critical_edges(ir::Function& fn) {
  ir::IRBuilder builder(*fn.parent());
  // Collect edges first; splitting mutates the block list.
  struct Edge {
    ir::BranchInst* branch;
    unsigned target_index;
  };
  std::vector<Edge> critical;
  auto preds = fn.predecessors();
  for (const auto& bb : fn.blocks()) {
    auto* br = dynamic_cast<ir::BranchInst*>(bb->terminator());
    if (br == nullptr || !br->is_conditional()) continue;
    for (unsigned t = 0; t < br->num_targets(); ++t) {
      ir::BasicBlock* succ = br->target(t);
      if (preds.at(succ).size() > 1 && !succ->phis().empty())
        critical.push_back({br, t});
    }
  }
  for (const Edge& e : critical) {
    ir::BasicBlock* pred = e.branch->parent();
    ir::BasicBlock* succ = e.branch->target(e.target_index);
    ir::BasicBlock* mid = fn.create_block(pred->name() + ".split");
    builder.set_insert_point(mid);
    builder.br(succ);
    e.branch->set_target(e.target_index, mid);
    for (ir::PhiInst* phi : succ->phis()) {
      for (unsigned i = 0; i < phi->num_incoming(); ++i)
        if (phi->incoming_block(i) == pred) phi->set_incoming_block(i, mid);
    }
  }
  fn.renumber();
}

namespace {

class FunctionSelector {
 public:
  FunctionSelector(const ir::Function& fn, LoweringContext& ctx)
      : fn_(fn), ctx_(ctx) {}

  IselResult run() {
    mf_.name = fn_.name();
    mf_.func_ordinal = ctx_.func_ordinal.at(&fn_);

    find_fused_cmps();
    assign_alloca_slots();
    assign_phi_regs();

    for (const auto& bb : fn_.blocks()) {
      mf_.blocks.push_back({});
      cur_ = &mf_.blocks.back();
      cur_->label = bb->id();
      cur_->name = bb->name();
      if (bb.get() == fn_.entry()) emit_argument_loads();
      lower_block(*bb);
    }
    record_phi_copies();
    mf_.frame.size = (frame_cursor_ + 15) / 16 * 16;
    return {std::move(mf_), std::move(phi_copies_)};
  }

 private:
  [[noreturn]] void unsupported(const std::string& what) {
    throw std::runtime_error("isel: unsupported construct in @" + fn_.name() +
                             ": " + what);
  }

  // -- emission ----------------------------------------------------------

  Inst& emit(Inst inst) {
    cur_->insts.push_back(inst);
    return cur_->insts.back();
  }

  Inst make(Op op) {
    Inst i;
    i.op = op;
    return i;
  }

  void emit_rr(Op op, RegId dst, RegId src, unsigned width = 8) {
    Inst i = make(op);
    i.dst = dst;
    i.src = src;
    i.src_kind = SrcKind::Reg;
    i.width = static_cast<std::uint8_t>(width);
    emit(i);
  }

  void emit_ri(Op op, RegId dst, std::int64_t imm, unsigned width = 8) {
    Inst i = make(op);
    i.dst = dst;
    i.imm = imm;
    i.src_kind = SrcKind::Imm;
    i.width = static_cast<std::uint8_t>(width);
    emit(i);
  }

  // -- pre-passes ----------------------------------------------------------

  void find_fused_cmps() {
    for (const auto& bb : fn_.blocks()) {
      auto* br = dynamic_cast<ir::BranchInst*>(bb->terminator());
      if (br == nullptr || !br->is_conditional()) continue;
      auto* cmp = dynamic_cast<ir::Instruction*>(br->condition());
      if (cmp == nullptr || cmp->parent() != bb.get()) continue;
      if (cmp->opcode() != Opcode::ICmp && cmp->opcode() != Opcode::FCmp)
        continue;
      if (cmp->uses().size() != 1) continue;
      fused_cmps_.insert(cmp);
    }
  }

  void assign_alloca_slots() {
    for (const auto& bb : fn_.blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (auto* al = dynamic_cast<const ir::AllocaInst*>(instr.get())) {
          const std::uint64_t size = al->allocated_type()->size_in_bytes();
          const std::uint64_t align =
              std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
          frame_cursor_ = (frame_cursor_ + size + align - 1) / align * align;
          alloca_offset_[al] = frame_cursor_;
        }
      }
    }
  }

  void assign_phi_regs() {
    for (const auto& bb : fn_.blocks())
      for (ir::PhiInst* phi : bb->phis())
        value_reg_[phi] =
            phi->type()->is_double() ? mf_.fresh_xmm() : mf_.fresh_gpr();
  }

  void emit_argument_loads() {
    // Arguments live at [rbp + 16 + 8*i] (saved rbp at [rbp], return
    // address at [rbp + 8]).
    for (std::size_t i = 0; i < fn_.num_args(); ++i) {
      const ir::Argument* arg = fn_.arg(i);
      MemOperand mem;
      mem.base = x86::RBP;
      mem.disp = 16 + 8 * static_cast<std::int64_t>(i);
      if (arg->type()->is_double()) {
        const RegId x = mf_.fresh_xmm();
        Inst in = make(Op::MovsdRM);
        in.dst = x;
        in.mem = mem;
        emit(in);
        value_reg_[arg] = x;
      } else {
        const RegId r = mf_.fresh_gpr();
        Inst in = make(Op::MovRM);
        in.dst = r;
        in.mem = mem;
        in.width = 8;
        emit(in);
        value_reg_[arg] = r;
      }
    }
  }

  // -- value access ----------------------------------------------------------

  RegId use_gpr(ir::Value* v) {
    auto it = value_reg_.find(v);
    if (it != value_reg_.end()) return it->second;
    switch (v->vkind()) {
      case ir::ValueKind::ConstantInt: {
        const RegId r = mf_.fresh_gpr();
        emit_ri(Op::MovRI, r,
                static_cast<std::int64_t>(
                    static_cast<const ir::ConstantInt*>(v)->raw()),
                8);
        return r;
      }
      case ir::ValueKind::ConstantNull: {
        const RegId r = mf_.fresh_gpr();
        emit_ri(Op::MovRI, r, 0, 8);
        return r;
      }
      case ir::ValueKind::GlobalVariable: {
        const RegId r = mf_.fresh_gpr();
        emit_ri(Op::MovRI, r,
                static_cast<std::int64_t>(ctx_.globals->address_of(
                    static_cast<const ir::GlobalVariable*>(v))),
                8);
        return r;
      }
      case ir::ValueKind::Instruction: {
        auto* instr = static_cast<ir::Instruction*>(v);
        // Deferred (foldable) load being used as a register after all.
        auto lf = folded_loads_.find(instr);
        if (lf != folded_loads_.end()) {
          const MemOperand mem = lf->second;
          folded_loads_.erase(lf);
          return materialize_load(static_cast<ir::LoadInst*>(instr), mem);
        }
        unsupported("use of unlowered value " + v->name());
      }
      default:
        unsupported("gpr use of value kind");
    }
  }

  RegId use_xmm(ir::Value* v) {
    auto it = value_reg_.find(v);
    if (it != value_reg_.end()) return it->second;
    if (v->vkind() == ir::ValueKind::ConstantDouble) {
      const double d = static_cast<const ir::ConstantDouble*>(v)->value();
      // Materialized constants are reused within the block (compilers keep
      // them in registers; re-loading per use would inflate load counts).
      const std::uint64_t bits = bits_of(d);
      auto cached = block_doubles_.find(bits);
      if (cached != block_doubles_.end()) return cached->second;
      const RegId x = mf_.fresh_xmm();
      Inst in = make(Op::MovsdRM);
      in.dst = x;
      in.mem.disp = static_cast<std::int64_t>(ctx_.pool_address(d));
      emit(in);
      block_doubles_[bits] = x;
      return x;
    }
    if (v->vkind() == ir::ValueKind::Instruction) {
      auto* instr = static_cast<ir::Instruction*>(v);
      auto lf = folded_loads_.find(instr);
      if (lf != folded_loads_.end()) {
        const MemOperand mem = lf->second;
        folded_loads_.erase(lf);
        return materialize_load(static_cast<ir::LoadInst*>(instr), mem);
      }
    }
    unsupported("xmm use of value " + v->name());
  }

  /// Sets the src fields of `inst` from `v` (reg / imm / folded-load mem).
  void set_int_src(Inst& inst, ir::Value* v, unsigned width) {
    if (auto* c = dynamic_cast<ir::ConstantInt*>(v)) {
      if (fits_imm32(c->raw(), width)) {
        inst.src_kind = SrcKind::Imm;
        inst.imm = static_cast<std::int64_t>(c->raw());
        return;
      }
    }
    if (auto* c = dynamic_cast<ir::ConstantNull*>(v)) {
      (void)c;
      inst.src_kind = SrcKind::Imm;
      inst.imm = 0;
      return;
    }
    if (auto mem = take_folded_load(v)) {
      inst.src_kind = SrcKind::Mem;
      inst.mem = *mem;
      return;
    }
    inst.src_kind = SrcKind::Reg;
    inst.src = use_gpr(v);
  }

  void set_fp_src(Inst& inst, ir::Value* v) {
    if (v->vkind() == ir::ValueKind::ConstantDouble) {
      const double d = static_cast<const ir::ConstantDouble*>(v)->value();
      inst.src_kind = SrcKind::Mem;
      inst.mem = MemOperand{};
      inst.mem.disp = static_cast<std::int64_t>(ctx_.pool_address(d));
      return;
    }
    if (auto mem = take_folded_load(v)) {
      inst.src_kind = SrcKind::Mem;
      inst.mem = *mem;
      return;
    }
    inst.src_kind = SrcKind::Reg;
    inst.src = use_xmm(v);
  }

  std::optional<MemOperand> take_folded_load(ir::Value* v) {
    auto* instr = dynamic_cast<ir::Instruction*>(v);
    if (instr == nullptr) return std::nullopt;
    auto it = folded_loads_.find(instr);
    if (it == folded_loads_.end()) return std::nullopt;
    const MemOperand mem = it->second;
    folded_loads_.erase(it);
    return mem;
  }

  /// Emits the deferred load at the current position.
  RegId materialize_load(ir::LoadInst* load, const MemOperand& mem) {
    const RegId r = emit_load_instruction(load->type(), mem);
    value_reg_[load] = r;
    return r;
  }

  RegId emit_load_instruction(const ir::Type* type, const MemOperand& mem) {
    if (type->is_double()) {
      const RegId x = mf_.fresh_xmm();
      Inst in = make(Op::MovsdRM);
      in.dst = x;
      in.mem = mem;
      emit(in);
      return x;
    }
    const unsigned bytes = width_of(type);
    const RegId r = mf_.fresh_gpr();
    if (bytes >= 4) {
      Inst in = make(Op::MovRM);
      in.dst = r;
      in.mem = mem;
      in.width = static_cast<std::uint8_t>(bytes);
      emit(in);
    } else {
      Inst in = make(Op::MovzxRM);
      in.dst = r;
      in.mem = mem;
      in.src_width = static_cast<std::uint8_t>(bytes);
      emit(in);
    }
    return r;
  }

  // -- addressing -------------------------------------------------------------

  /// Memory operand for a pointer value used by a load/store.
  MemOperand mem_for_pointer(ir::Value* ptr) {
    if (auto* gep = dynamic_cast<ir::GepInst*>(ptr)) {
      auto it = addr_expr_.find(gep);
      if (it != addr_expr_.end()) return it->second;
    }
    if (auto* al = dynamic_cast<ir::AllocaInst*>(ptr)) {
      MemOperand mem;
      mem.base = x86::RBP;
      mem.disp = -static_cast<std::int64_t>(alloca_offset_.at(al));
      return mem;
    }
    if (auto* g = dynamic_cast<ir::GlobalVariable*>(ptr)) {
      MemOperand mem;
      mem.disp = static_cast<std::int64_t>(ctx_.globals->address_of(g));
      return mem;
    }
    MemOperand mem;
    mem.base = use_gpr(ptr);
    return mem;
  }

  /// Computes the address expression of a GEP, folding what fits into
  /// [base + index*scale + disp] and emitting imul/lea for the rest.
  MemOperand compute_gep_addr(ir::GepInst& gep) {
    MemOperand me = mem_for_pointer(gep.base());

    const ir::Type* current = gep.base()->type()->pointee();
    for (unsigned i = 0; i < gep.num_indices(); ++i) {
      std::uint64_t elem_size;
      if (i == 0) {
        elem_size = current->size_in_bytes();
      } else if (current->is_array()) {
        current = current->array_element();
        elem_size = current->size_in_bytes();
      } else {
        // Struct field: verifier guarantees a constant index.
        auto* ci = static_cast<ir::ConstantInt*>(gep.index(i));
        const auto field = static_cast<std::size_t>(ci->raw());
        me.disp += static_cast<std::int64_t>(
            current->struct_field_offset(field));
        current = current->struct_fields()[field];
        continue;
      }
      if (auto* ci = dynamic_cast<ir::ConstantInt*>(gep.index(i))) {
        me.disp += ci->signed_value() * static_cast<std::int64_t>(elem_size);
        continue;
      }
      // Variable index.
      RegId idx = use_gpr(gep.index(i));
      std::uint8_t scale = 1;
      if (elem_size == 1 || elem_size == 2 || elem_size == 4 || elem_size == 8) {
        scale = static_cast<std::uint8_t>(elem_size);
      } else {
        // Scale by a non-power-of-two: imul into a temp (arithmetic at the
        // assembly level — the paper's GEP-expansion case).
        const RegId tmp = mf_.fresh_gpr();
        emit_rr(Op::MovRR, tmp, idx, 8);
        Inst mul = make(Op::Imul);
        mul.dst = tmp;
        mul.src_kind = SrcKind::Imm;
        mul.imm = static_cast<std::int64_t>(elem_size);
        mul.width = 8;
        emit(mul);
        idx = tmp;
        scale = 1;
      }
      if (!me.has_index()) {
        me.index = idx;
        me.scale = scale;
      } else {
        // Second variable term: collapse the existing base+index into a new
        // base via lea, freeing the index slot.
        const RegId nb = mf_.fresh_gpr();
        Inst lea = make(Op::Lea);
        lea.dst = nb;
        lea.mem = me;
        emit(lea);
        me = MemOperand{};
        me.base = nb;
        me.index = idx;
        me.scale = scale;
      }
    }
    return me;
  }

  /// True when every use of the GEP can consume the folded address.
  static bool gep_fully_foldable(const ir::GepInst& gep) {
    for (const ir::Use& use : gep.uses()) {
      if (use.user->opcode() == Opcode::Load && use.index == 0) continue;
      if (use.user->opcode() == Opcode::Store && use.index == 1) continue;
      return false;
    }
    return !gep.uses().empty();
  }

  // -- load folding ------------------------------------------------------------

  /// Decides whether `load` can defer into its single user's memory
  /// operand: single use, same block, user consumes memory sources, and no
  /// store/call between the load and the (effective) use position.
  bool try_defer_load(ir::LoadInst& load, const MemOperand& mem) {
    if (load.uses().size() != 1) return false;
    const ir::Use use = load.uses()[0];
    ir::Instruction* user = use.user;
    if (user->parent() != load.parent()) return false;

    // The memory source must be the RIGHT-hand operand of a two-address op
    // (or the compared value of cmp/ucomisd).
    const Opcode uop = user->opcode();
    const bool int_rhs = (ir::is_int_binary(uop) && use.index == 1 &&
                          uop != Opcode::Shl && uop != Opcode::LShr &&
                          uop != Opcode::AShr);
    const bool fp_rhs = ir::is_fp_binary(uop) && use.index == 1;
    const bool cmp_rhs =
        (uop == Opcode::ICmp || uop == Opcode::FCmp) && use.index == 1;
    if (!int_rhs && !fp_rhs && !cmp_rhs) return false;
    if (load.type()->is_int() && load.type()->int_bits() < 32) return false;

    // No memory clobber (store/call) between load and effective use.
    const ir::BasicBlock* bb = load.parent();
    const std::size_t from = bb->index_of(&load);
    std::size_t to = bb->index_of(user);
    if (fused_cmps_.count(user)) to = bb->size() - 1;  // emitted at branch
    for (std::size_t i = from + 1; i < to; ++i) {
      const Opcode mid = bb->instr(i)->opcode();
      if (mid == Opcode::Store || mid == Opcode::Call) return false;
    }
    folded_loads_[&load] = mem;
    return true;
  }

  // -- lowering ------------------------------------------------------------

  void lower_block(const ir::BasicBlock& bb) {
    cur_->terminator_begin = 0;  // patched when we reach the terminator
    block_doubles_.clear();
    for (const auto& instr : bb.instructions()) lower(*instr);
  }

  void lower(ir::Instruction& instr) {
    switch (instr.opcode()) {
      case Opcode::Alloca:
        // Address materializes lazily: loads/stores fold [rbp-off]; other
        // uses get a lea.
        if (!alloca_fully_folded(static_cast<ir::AllocaInst&>(instr))) {
          const RegId r = mf_.fresh_gpr();
          Inst lea = make(Op::Lea);
          lea.dst = r;
          lea.mem.base = x86::RBP;
          lea.mem.disp = -static_cast<std::int64_t>(
              alloca_offset_.at(&instr));
          emit(lea);
          value_reg_[&instr] = r;
        }
        return;
      case Opcode::Gep: {
        auto& gep = static_cast<ir::GepInst&>(instr);
        const MemOperand me = compute_gep_addr(gep);
        addr_expr_[&gep] = me;
        if (!gep_fully_foldable(gep)) {
          const RegId r = mf_.fresh_gpr();
          Inst lea = make(Op::Lea);
          lea.dst = r;
          lea.mem = me;
          emit(lea);
          value_reg_[&gep] = r;
        }
        return;
      }
      case Opcode::Load: {
        auto& load = static_cast<ir::LoadInst&>(instr);
        const MemOperand mem = mem_for_pointer(load.pointer());
        if (try_defer_load(load, mem)) return;
        value_reg_[&load] = emit_load_instruction(load.type(), mem);
        return;
      }
      case Opcode::Store:
        lower_store(static_cast<ir::StoreInst&>(instr));
        return;
      case Opcode::Phi:
        return;  // vreg pre-assigned; copies inserted by phi_elim
      case Opcode::ICmp:
      case Opcode::FCmp:
        if (fused_cmps_.count(&instr)) return;  // emitted with the branch
        lower_cmp_to_bool(instr);
        return;
      case Opcode::Select:
        lower_select(static_cast<ir::SelectInst&>(instr));
        return;
      case Opcode::Call:
        lower_call(static_cast<ir::CallInst&>(instr));
        return;
      case Opcode::Br:
        lower_branch(static_cast<ir::BranchInst&>(instr));
        return;
      case Opcode::Ret:
        lower_ret(static_cast<ir::RetInst&>(instr));
        return;
      default:
        break;
    }
    if (ir::is_int_binary(instr.opcode())) {
      lower_int_binary(instr);
      return;
    }
    if (ir::is_fp_binary(instr.opcode())) {
      lower_fp_binary(instr);
      return;
    }
    if (ir::is_cast(instr.opcode())) {
      lower_cast(instr);
      return;
    }
    unsupported(ir::opcode_name(instr.opcode()));
  }

  bool alloca_fully_folded(const ir::AllocaInst& al) {
    for (const ir::Use& use : al.uses()) {
      if (use.user->opcode() == Opcode::Load && use.index == 0) continue;
      if (use.user->opcode() == Opcode::Store && use.index == 1) continue;
      if (use.user->opcode() == Opcode::Gep && use.index == 0) continue;
      return false;
    }
    return true;
  }

  void lower_store(ir::StoreInst& store) {
    const MemOperand mem = mem_for_pointer(store.pointer());
    ir::Value* value = store.stored_value();
    const ir::Type* t = value->type();
    if (t->is_double()) {
      Inst in = make(Op::MovsdMR);
      in.dst = use_xmm(value);
      in.mem = mem;
      emit(in);
      return;
    }
    const unsigned bytes = width_of(t);
    if (auto* c = dynamic_cast<ir::ConstantInt*>(value);
        c != nullptr && fits_imm32(c->raw(), bytes)) {
      Inst in = make(Op::MovMI);
      in.mem = mem;
      in.imm = static_cast<std::int64_t>(c->raw());
      in.width = static_cast<std::uint8_t>(bytes);
      emit(in);
      return;
    }
    if (dynamic_cast<ir::ConstantNull*>(value) != nullptr) {
      Inst in = make(Op::MovMI);
      in.mem = mem;
      in.imm = 0;
      in.width = 8;
      emit(in);
      return;
    }
    Inst in = make(Op::MovMR);
    in.dst = use_gpr(value);
    in.mem = mem;
    in.width = static_cast<std::uint8_t>(bytes);
    emit(in);
  }

  void lower_int_binary(ir::Instruction& instr) {
    const unsigned bits = instr.type()->int_bits();
    const unsigned w = std::max(4u, bits / 8);
    const Opcode op = instr.opcode();

    Op mop;
    switch (op) {
      case Opcode::Add: mop = Op::Add; break;
      case Opcode::Sub: mop = Op::Sub; break;
      case Opcode::Mul: mop = Op::Imul; break;
      case Opcode::And: mop = Op::And; break;
      case Opcode::Or: mop = Op::Or; break;
      case Opcode::Xor: mop = Op::Xor; break;
      case Opcode::Shl: mop = Op::Shl; break;
      case Opcode::LShr: mop = Op::Shr; break;
      case Opcode::AShr: mop = Op::Sar; break;
      case Opcode::SDiv: mop = Op::Idiv; break;
      case Opcode::SRem: mop = Op::Irem; break;
      default:
        unsupported(std::string(ir::opcode_name(op)) +
                    " (unsigned division is not lowered)");
    }

    // Sign-sensitive narrow operations run at their true width: the
    // simulator's sar/idiv sign-extend from the operand width internally,
    // and i8/i16 division overflow must trap exactly as the VM's does
    // (x86 #DE raises for -128/-1 at byte width too).
    const bool needs_sign = op == Opcode::AShr || op == Opcode::SDiv ||
                            op == Opcode::SRem;
    if (needs_sign && bits == 1) unsupported("signed i1 operation");
    const unsigned alu_width = needs_sign && bits < 32 ? bits / 8 : w;

    const RegId dst = mf_.fresh_gpr();
    emit_rr(Op::MovRR, dst, use_gpr(instr.operand(0)), 8);  // dst = lhs
    Inst alu = make(mop);  // dst op= rhs
    alu.dst = dst;
    alu.width = static_cast<std::uint8_t>(alu_width);
    set_int_src(alu, instr.operand(1), alu_width);
    emit(alu);
    // Results of sub-32-bit ops are stored zero-extended (the register
    // invariant every use relies on).
    if (bits < 32 && bits > 1) {
      Inst zx = make(Op::MovzxRR);
      zx.dst = dst;
      zx.src = dst;
      zx.src_kind = SrcKind::Reg;
      zx.src_width = static_cast<std::uint8_t>(bits / 8);
      emit(zx);
    } else if (bits == 1) {
      Inst an = make(Op::And);
      an.dst = dst;
      an.src_kind = SrcKind::Imm;
      an.imm = 1;
      an.width = 4;
      emit(an);
    }
    value_reg_[&instr] = dst;
  }

  void lower_fp_binary(ir::Instruction& instr) {
    Op mop;
    switch (instr.opcode()) {
      case Opcode::FAdd: mop = Op::Addsd; break;
      case Opcode::FSub: mop = Op::Subsd; break;
      case Opcode::FMul: mop = Op::Mulsd; break;
      default: mop = Op::Divsd; break;
    }
    const RegId dst = mf_.fresh_xmm();
    emit_rr(Op::MovsdRR, dst, use_xmm(instr.operand(0)));
    Inst alu = make(mop);
    alu.dst = dst;
    set_fp_src(alu, instr.operand(1));
    emit(alu);
    value_reg_[&instr] = dst;
  }

  Cond icmp_cond(ir::ICmpPred pred) {
    switch (pred) {
      case ir::ICmpPred::EQ: return Cond::E;
      case ir::ICmpPred::NE: return Cond::NE;
      case ir::ICmpPred::SLT: return Cond::L;
      case ir::ICmpPred::SLE: return Cond::LE;
      case ir::ICmpPred::SGT: return Cond::G;
      case ir::ICmpPred::SGE: return Cond::GE;
      case ir::ICmpPred::ULT: return Cond::B;
      case ir::ICmpPred::ULE: return Cond::BE;
      case ir::ICmpPred::UGT: return Cond::A;
      case ir::ICmpPred::UGE: return Cond::AE;
    }
    return Cond::E;
  }

  static bool icmp_pred_is_signed(ir::ICmpPred pred) {
    switch (pred) {
      case ir::ICmpPred::SLT:
      case ir::ICmpPred::SLE:
      case ir::ICmpPred::SGT:
      case ir::ICmpPred::SGE:
        return true;
      default:
        return false;
    }
  }

  /// Emits the flag-setting compare and returns the condition to test.
  Cond emit_compare(ir::Instruction& cmp_instr) {
    if (cmp_instr.opcode() == Opcode::ICmp) {
      auto& cmp = static_cast<ir::ICmpInst&>(cmp_instr);
      const ir::Type* t = cmp.lhs()->type();
      unsigned w = t->is_ptr() ? 8 : std::max(4u, t->int_bits() / 8);
      RegId lhs;
      if (t->is_int() && t->int_bits() == 1 &&
          icmp_pred_is_signed(cmp.predicate()))
        unsupported("signed compare on i1");
      if (t->is_int() && t->int_bits() < 32 &&
          icmp_pred_is_signed(cmp.predicate())) {
        // Zero-extended storage would corrupt signed sub-32-bit compares;
        // normalize both sides through sign extension.
        lhs = mf_.fresh_gpr();
        Inst sx = make(Op::MovsxRR);
        sx.dst = lhs;
        sx.src = use_gpr(cmp.lhs());
        sx.src_kind = SrcKind::Reg;
        sx.src_width = static_cast<std::uint8_t>(t->int_bits() / 8);
        emit(sx);
        const RegId rhs = mf_.fresh_gpr();
        Inst sx2 = make(Op::MovsxRR);
        sx2.dst = rhs;
        sx2.src = use_gpr(cmp.rhs());
        sx2.src_kind = SrcKind::Reg;
        sx2.src_width = static_cast<std::uint8_t>(t->int_bits() / 8);
        emit(sx2);
        Inst c = make(Op::Cmp);
        c.dst = lhs;
        c.src_kind = SrcKind::Reg;
        c.src = rhs;
        c.width = 4;
        emit(c);
        return icmp_cond(cmp.predicate());
      }
      Inst c = make(Op::Cmp);
      c.dst = use_gpr(cmp.lhs());
      c.width = static_cast<std::uint8_t>(w);
      set_int_src(c, cmp.rhs(), w);
      emit(c);
      return icmp_cond(cmp.predicate());
    }
    auto& cmp = static_cast<ir::FCmpInst&>(cmp_instr);
    // Ordered compares: arrange operands so NaN makes the condition false.
    ir::Value* a = cmp.lhs();
    ir::Value* b = cmp.rhs();
    Cond cond;
    bool swap = false;
    switch (cmp.predicate()) {
      case ir::FCmpPred::OLT: cond = Cond::A; swap = true; break;
      case ir::FCmpPred::OLE: cond = Cond::AE; swap = true; break;
      case ir::FCmpPred::OGT: cond = Cond::A; break;
      case ir::FCmpPred::OGE: cond = Cond::AE; break;
      case ir::FCmpPred::OEQ: cond = Cond::FpEq; break;
      case ir::FCmpPred::ONE: cond = Cond::FpNe; break;
      default: cond = Cond::FpEq; break;
    }
    if (swap) std::swap(a, b);
    Inst u = make(Op::Ucomisd);
    u.dst = use_xmm(a);
    set_fp_src(u, b);
    emit(u);
    return cond;
  }

  void lower_cmp_to_bool(ir::Instruction& instr) {
    const Cond cond = emit_compare(instr);
    const RegId dst = mf_.fresh_gpr();
    Inst set = make(Op::Setcc);
    set.dst = dst;
    set.cond = cond;
    emit(set);
    Inst zx = make(Op::MovzxRR);
    zx.dst = dst;
    zx.src = dst;
    zx.src_kind = SrcKind::Reg;
    zx.src_width = 1;
    emit(zx);
    value_reg_[&instr] = dst;
  }

  void lower_select(ir::SelectInst& sel) {
    if (sel.type()->is_double())
      unsupported("select on double (lower via control flow instead)");
    const unsigned w = std::max(4u, width_of(sel.type()));
    const RegId cond = use_gpr(sel.condition());
    const RegId dst = mf_.fresh_gpr();
    emit_rr(Op::MovRR, dst, use_gpr(sel.false_value()), 8);
    const RegId tval = use_gpr(sel.true_value());
    Inst test = make(Op::Test);
    test.dst = cond;
    test.src_kind = SrcKind::Reg;
    test.src = cond;
    test.width = 8;
    emit(test);
    Inst cmov = make(Op::Cmov);
    cmov.dst = dst;
    cmov.cond = Cond::NE;
    cmov.src_kind = SrcKind::Reg;
    cmov.src = tval;
    cmov.width = static_cast<std::uint8_t>(std::max(4u, w));
    emit(cmov);
    value_reg_[&sel] = dst;
  }

  void lower_cast(ir::Instruction& instr) {
    const ir::Type* from = instr.operand(0)->type();
    const ir::Type* to = instr.type();
    switch (instr.opcode()) {
      case Opcode::Trunc: {
        const unsigned to_bits = to->int_bits();
        const RegId dst = mf_.fresh_gpr();
        const RegId src = use_gpr(instr.operand(0));
        if (to_bits == 32) {
          emit_rr(Op::MovRR, dst, src, 4);  // implicit zero-extension
        } else if (to_bits == 1) {
          emit_rr(Op::MovRR, dst, src, 8);
          Inst an = make(Op::And);
          an.dst = dst;
          an.src_kind = SrcKind::Imm;
          an.imm = 1;
          an.width = 4;
          emit(an);
        } else {
          Inst zx = make(Op::MovzxRR);
          zx.dst = dst;
          zx.src = src;
          zx.src_kind = SrcKind::Reg;
          zx.src_width = static_cast<std::uint8_t>(to_bits / 8);
          emit(zx);
        }
        value_reg_[&instr] = dst;
        return;
      }
      case Opcode::ZExt: {
        // The register invariant (sub-width values stored zero-extended)
        // makes zext a plain register move — one of the IR casts with no
        // assembly counterpart (Table I row 5).
        const RegId dst = mf_.fresh_gpr();
        emit_rr(Op::MovRR, dst, use_gpr(instr.operand(0)), 8);
        value_reg_[&instr] = dst;
        return;
      }
      case Opcode::SExt: {
        const unsigned from_bits = from->int_bits();
        const RegId dst = mf_.fresh_gpr();
        if (from_bits == 1) {
          // sext i1: 0 -> 0, 1 -> -1.
          emit_rr(Op::MovRR, dst, use_gpr(instr.operand(0)), 8);
          Inst neg = make(Op::Neg);
          neg.dst = dst;
          neg.width = 8;
          emit(neg);
        } else {
          Inst sx = make(Op::MovsxRR);
          sx.dst = dst;
          sx.src = use_gpr(instr.operand(0));
          sx.src_kind = SrcKind::Reg;
          sx.src_width = static_cast<std::uint8_t>(from_bits / 8);
          emit(sx);
        }
        // Normalize back down if the destination is narrower than 64.
        normalize_width(dst, to->int_bits());
        value_reg_[&instr] = dst;
        return;
      }
      case Opcode::FPToSI: {
        const RegId dst = mf_.fresh_gpr();
        Inst cv = make(Op::Cvttsd2si);
        cv.dst = dst;
        cv.src = use_xmm(instr.operand(0));
        cv.src_kind = SrcKind::Reg;
        cv.width = static_cast<std::uint8_t>(std::max(4u, to->int_bits() / 8));
        emit(cv);
        normalize_width(dst, to->int_bits());
        value_reg_[&instr] = dst;
        return;
      }
      case Opcode::SIToFP: {
        const RegId dst = mf_.fresh_xmm();
        RegId src = use_gpr(instr.operand(0));
        unsigned src_bytes = std::max<unsigned>(1, from->int_bits() / 8);
        if (from->int_bits() == 1) {
          // sitofp i1: true is the signed value -1. Materialize it.
          const RegId t = mf_.fresh_gpr();
          emit_rr(Op::MovRR, t, src, 8);
          Inst neg = make(Op::Neg);
          neg.dst = t;
          neg.width = 8;
          emit(neg);
          src = t;
          src_bytes = 8;
        }
        Inst cv = make(Op::Cvtsi2sd);
        cv.dst = dst;
        cv.src = src;
        cv.src_kind = SrcKind::Reg;
        cv.src_width = static_cast<std::uint8_t>(src_bytes);
        emit(cv);
        value_reg_[&instr] = dst;
        return;
      }
      case Opcode::Bitcast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr: {
        const RegId dst = mf_.fresh_gpr();
        emit_rr(Op::MovRR, dst, use_gpr(instr.operand(0)), 8);
        value_reg_[&instr] = dst;
        return;
      }
      default:
        unsupported(ir::opcode_name(instr.opcode()));
    }
  }

  /// Re-establishes the zero-extension invariant for sub-32-bit values.
  void normalize_width(RegId reg, unsigned bits) {
    if (bits >= 32) return;
    if (bits == 1) {
      Inst an = make(Op::And);
      an.dst = reg;
      an.src_kind = SrcKind::Imm;
      an.imm = 1;
      an.width = 4;
      emit(an);
      return;
    }
    Inst zx = make(Op::MovzxRR);
    zx.dst = reg;
    zx.src = reg;
    zx.src_kind = SrcKind::Reg;
    zx.src_width = static_cast<std::uint8_t>(bits / 8);
    emit(zx);
  }

  void lower_call(ir::CallInst& call) {
    const ir::Function* callee = call.callee();
    const unsigned n = call.num_args();

    if (n > 0) {
      Inst sub = make(Op::Sub);
      sub.dst = x86::RSP;
      sub.src_kind = SrcKind::Imm;
      sub.imm = 8 * static_cast<std::int64_t>(n);
      sub.width = 8;
      emit(sub);
    }
    for (unsigned i = 0; i < n; ++i) {
      ir::Value* arg = call.arg(i);
      MemOperand slot;
      slot.base = x86::RSP;
      slot.disp = 8 * static_cast<std::int64_t>(i);
      if (arg->type()->is_double()) {
        Inst st = make(Op::MovsdMR);
        st.dst = use_xmm(arg);
        st.mem = slot;
        emit(st);
      } else if (auto* c = dynamic_cast<ir::ConstantInt*>(arg);
                 c != nullptr && fits_imm32(c->raw(), 8)) {
        Inst st = make(Op::MovMI);
        st.mem = slot;
        st.imm = static_cast<std::int64_t>(c->raw());
        st.width = 8;
        emit(st);
      } else {
        Inst st = make(Op::MovMR);
        st.dst = use_gpr(arg);
        st.mem = slot;
        st.width = 8;
        emit(st);
      }
    }

    Inst ci = make(callee->is_builtin() ? Op::CallBuiltin : Op::Call);
    ci.target = callee->is_builtin()
                    ? static_cast<std::int64_t>(ctx_.builtin_ordinal.at(callee))
                    : static_cast<std::int64_t>(ctx_.func_ordinal.at(callee));
    ci.arg_slots = static_cast<std::uint16_t>(n);
    emit(ci);

    // Return value lands in RAX / XMM0; copy it out immediately.
    if (call.has_result()) {
      if (call.type()->is_double()) {
        const RegId x = mf_.fresh_xmm();
        emit_rr(Op::MovsdRR, x, x86::kXmmBase + 0);
        value_reg_[&call] = x;
      } else {
        const RegId r = mf_.fresh_gpr();
        emit_rr(Op::MovRR, r, x86::RAX, 8);
        value_reg_[&call] = r;
      }
    }
    if (n > 0) {
      Inst add = make(Op::Add);
      add.dst = x86::RSP;
      add.src_kind = SrcKind::Imm;
      add.imm = 8 * static_cast<std::int64_t>(n);
      add.width = 8;
      emit(add);
    }
  }

  void lower_branch(ir::BranchInst& br) {
    if (!br.is_conditional()) {
      cur_->terminator_begin = cur_->insts.size();
      Inst j = make(Op::Jmp);
      j.target = br.true_target()->id();
      emit(j);
      return;
    }
    auto* cond_instr = dynamic_cast<ir::Instruction*>(br.condition());
    if (cond_instr != nullptr && fused_cmps_.count(cond_instr)) {
      cur_->terminator_begin = cur_->insts.size();
      const Cond cond = emit_compare(*cond_instr);
      Inst jcc = make(Op::Jcc);
      jcc.cond = cond;
      jcc.target = br.true_target()->id();
      emit(jcc);
      Inst jmp = make(Op::Jmp);
      jmp.target = br.false_target()->id();
      emit(jmp);
      return;
    }
    const RegId c = use_gpr(br.condition());
    cur_->terminator_begin = cur_->insts.size();
    Inst test = make(Op::Test);
    test.dst = c;
    test.src_kind = SrcKind::Reg;
    test.src = c;
    test.width = 8;
    emit(test);
    Inst jcc = make(Op::Jcc);
    jcc.cond = Cond::NE;
    jcc.target = br.true_target()->id();
    emit(jcc);
    Inst jmp = make(Op::Jmp);
    jmp.target = br.false_target()->id();
    emit(jmp);
  }

  void lower_ret(ir::RetInst& ret) {
    if (ret.has_value()) {
      ir::Value* v = ret.value();
      if (v->type()->is_double()) {
        const RegId x = use_xmm(v);
        cur_->terminator_begin = cur_->insts.size();
        emit_rr(Op::MovsdRR, x86::kXmmBase + 0, x);
      } else {
        const RegId r = use_gpr(v);
        cur_->terminator_begin = cur_->insts.size();
        emit_rr(Op::MovRR, x86::RAX, r, 8);
      }
    } else {
      cur_->terminator_begin = cur_->insts.size();
    }
    emit(make(Op::Ret));
  }

  void record_phi_copies() {
    for (const auto& bb : fn_.blocks()) {
      for (ir::PhiInst* phi : bb->phis()) {
        for (unsigned i = 0; i < phi->num_incoming(); ++i) {
          PhiCopy copy;
          copy.pred_label = phi->incoming_block(i)->id();
          copy.dest = value_reg_.at(phi);
          copy.is_xmm = phi->type()->is_double();
          ir::Value* in = phi->incoming_value(i);
          switch (in->vkind()) {
            case ir::ValueKind::ConstantInt:
              copy.src_is_imm = true;
              copy.imm = static_cast<std::int64_t>(
                  static_cast<ir::ConstantInt*>(in)->raw());
              break;
            case ir::ValueKind::ConstantNull:
              copy.src_is_imm = true;
              copy.imm = 0;
              break;
            case ir::ValueKind::ConstantDouble:
              copy.src_is_imm = true;  // imm = pool address for xmm copies
              copy.imm = static_cast<std::int64_t>(ctx_.pool_address(
                  static_cast<ir::ConstantDouble*>(in)->value()));
              break;
            case ir::ValueKind::GlobalVariable:
              copy.src_is_imm = true;
              copy.imm = static_cast<std::int64_t>(ctx_.globals->address_of(
                  static_cast<ir::GlobalVariable*>(in)));
              break;
            default:
              copy.src_reg = value_reg_.at(in);
              break;
          }
          phi_copies_.push_back(copy);
        }
      }
    }
  }

  const ir::Function& fn_;
  LoweringContext& ctx_;
  x86::MachineFunction mf_;
  std::vector<PhiCopy> phi_copies_;
  x86::MBlock* cur_ = nullptr;

  std::map<const ir::Value*, RegId> value_reg_;
  std::map<const ir::Instruction*, MemOperand> addr_expr_;
  std::map<const ir::Instruction*, MemOperand> folded_loads_;
  std::set<const ir::Instruction*> fused_cmps_;
  std::map<const ir::Instruction*, std::uint64_t> alloca_offset_;
  std::map<std::uint64_t, RegId> block_doubles_;  // per-block constant cache
  std::uint64_t frame_cursor_ = 0;
};

}  // namespace

IselResult select_instructions(const ir::Function& fn, LoweringContext& ctx) {
  return FunctionSelector(fn, ctx).run();
}

}  // namespace faultlab::backend
