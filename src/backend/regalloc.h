// Linear-scan register allocation with spilling.
//
// Allocatable GPRs: rcx, rdx, rsi, rdi, r8, r9, r12-r15.
// Allocatable XMMs: xmm1-xmm12.
// Reserved: rax/xmm0 (return values), rsp/rbp (stack discipline),
// rbx/r10/r11 and xmm13-15 (spill-code scratch).
//
// Spilled virtual registers get 8-byte frame slots; a rewrite pass loads
// them into scratch registers at each use and stores after each def. The
// spill traffic this generates is the assembly-level manifestation of
// register pressure (the paper's phi/spill discussion, Table I row 2).
#pragma once

#include "backend/liveness.h"
#include "x86/program.h"

namespace faultlab::backend {

struct RegAllocStats {
  std::size_t vregs = 0;
  std::size_t spilled = 0;
  std::size_t spill_loads = 0;
  std::size_t spill_stores = 0;
};

/// Allocates registers in place; grows mf.frame.size for spill slots.
RegAllocStats allocate_registers(x86::MachineFunction& mf);

}  // namespace faultlab::backend
