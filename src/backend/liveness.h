// Liveness analysis over machine functions (virtual + physical registers),
// producing the live intervals consumed by the linear-scan allocator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "x86/program.h"

namespace faultlab::backend {

/// Positions number instructions across the whole function in block order
/// (each instruction occupies one position).
struct LiveInterval {
  x86::RegId vreg = x86::kNoReg;
  std::size_t start = 0;  // first def position
  std::size_t end = 0;    // last position where the value is live
  std::size_t uses = 0;   // number of positions touching the register
  bool crosses_call = false;
  bool operator<(const LiveInterval& o) const { return start < o.start; }

  /// Spill weight: cheap-to-spill intervals have few uses over a long
  /// range. Hot loop-carried values score high and stay in registers.
  double weight() const {
    return static_cast<double>(uses) / static_cast<double>(end - start + 1);
  }
};

struct LivenessResult {
  std::vector<LiveInterval> intervals;            // virtual registers only
  std::vector<std::size_t> block_start_position;  // per block
  std::size_t num_positions = 0;
};

LivenessResult compute_liveness(const x86::MachineFunction& mf);

}  // namespace faultlab::backend
